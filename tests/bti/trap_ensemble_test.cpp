#include "ash/bti/trap_ensemble.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::bti {
namespace {

TrapEnsemble fresh(std::uint64_t seed = 1) {
  return TrapEnsemble(default_td_parameters(), seed);
}

OperatingCondition ref_stress() { return dc_stress(Volts{1.2}, Celsius{110.0}); }

TEST(TrapEnsemble, FreshDeviceHasNoShift) {
  EXPECT_DOUBLE_EQ(fresh().delta_vth(), 0.0);
}

TEST(TrapEnsemble, StressIncreasesShiftMonotonically) {
  auto e = fresh();
  double prev = 0.0;
  for (int hour = 1; hour <= 24; ++hour) {
    e.evolve(ref_stress(), Seconds{hours(1.0)});
    const double now = e.delta_vth();
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(TrapEnsemble, StressGrowthIsSubLinear) {
  // log(1+Ct): the second 12 hours add less than the first 12 hours.
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(12.0)});
  const double first_half = e.delta_vth();
  e.evolve(ref_stress(), Seconds{hours(12.0)});
  const double total = e.delta_vth();
  EXPECT_LT(total - first_half, first_half * 0.8);
}

TEST(TrapEnsemble, TwentyFourHourShiftIsInCalibratedRange) {
  // DESIGN.md Sec. 5: ~35 mV after 24 h DC at the stress reference, which
  // maps to ~2.2 % delay degradation in the FPGA layer.
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(24.0)});
  EXPECT_GT(e.delta_vth(), 20e-3);
  EXPECT_LT(e.delta_vth(), 55e-3);
}

TEST(TrapEnsemble, RecoveryDecreasesShiftMonotonically) {
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(24.0)});
  double prev = e.delta_vth();
  for (int i = 0; i < 12; ++i) {
    e.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(0.5)});
    const double now = e.delta_vth();
    EXPECT_LE(now, prev);
    prev = now;
  }
}

TEST(TrapEnsemble, RecoveryIsFastThenSlow) {
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(24.0)});
  const double stressed = e.delta_vth();
  e.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(1.0)});
  const double first_hour_gain = stressed - e.delta_vth();
  e.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(1.0)});
  const double second_hour_gain = stressed - first_hour_gain - e.delta_vth() +
                                  0.0;  // == gain during hour 2
  EXPECT_GT(first_hour_gain, 2.0 * std::max(second_hour_gain, 0.0));
}

TEST(TrapEnsemble, PassiveRecoveryIsPartial) {
  // R20Z6-style: 6 h power-gated at 20 C recovers far less than the
  // accelerated conditions — the motivation for the whole paper.
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(24.0)});
  const double stressed = e.delta_vth();
  e.evolve(recovery(Volts{0.0}, Celsius{20.0}), Seconds{hours(6.0)});
  const double recovered_fraction = 1.0 - e.delta_vth() / stressed;
  EXPECT_GT(recovered_fraction, 0.15);
  EXPECT_LT(recovered_fraction, 0.70);
}

TEST(TrapEnsemble, AcceleratedRecoveryReaches90Percent) {
  // AR110N6: 110 C and -0.3 V for 1/4 of the stress time recovers >= ~90 %
  // of the recoverable damage (headline claim of the paper).
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(24.0)});
  const double stressed = e.delta_vth();
  e.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  const double recovered_fraction = 1.0 - e.delta_vth() / stressed;
  EXPECT_GT(recovered_fraction, 0.85);
}

TEST(TrapEnsemble, RecoveryConditionOrderingMatchesFig8) {
  // (110 C, -0.3 V) > (110 C, 0 V) > (20 C, -0.3 V) > (20 C, 0 V).
  const OperatingCondition conds[] = {
      recovery(Volts{-0.3}, Celsius{110.0}), recovery(Volts{0.0}, Celsius{110.0}), recovery(Volts{-0.3}, Celsius{20.0}),
      recovery(Volts{0.0}, Celsius{20.0})};
  double remaining[4] = {};
  for (int i = 0; i < 4; ++i) {
    auto e = fresh(7);  // same chip for all four what-ifs
    e.evolve(ref_stress(), Seconds{hours(24.0)});
    e.evolve(conds[i], Seconds{hours(6.0)});
    remaining[i] = e.delta_vth();
  }
  EXPECT_LT(remaining[0], remaining[1]);
  EXPECT_LT(remaining[1], remaining[2]);
  EXPECT_LT(remaining[2], remaining[3]);
}

TEST(TrapEnsemble, PermanentDamageBoundsRecovery) {
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(24.0)});
  const double permanent = e.permanent_delta_vth();
  EXPECT_GT(permanent, 0.0);
  // A very long, very aggressive recovery cannot go below the permanent part.
  for (int i = 0; i < 100; ++i) e.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_GE(e.delta_vth(), permanent * 0.999);
  EXPECT_NEAR(e.delta_vth(), permanent, permanent * 0.25 + 1e-4);
}

TEST(TrapEnsemble, AcStressShiftIsAQuarterToHalfOfDc) {
  // Device-level AC/DC ratio ~0.27: the *measured* RO-frequency ratio of
  // "about half" (Fig. 4) then emerges at the circuit level because DC
  // stress ages only one of the two transition paths (see fpga tests).
  auto dc = fresh(3);
  auto ac = fresh(3);
  dc.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  ac.evolve(ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double ratio = ac.delta_vth() / dc.delta_vth();
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.45);
}

TEST(TrapEnsemble, HotterStressDegradesMore) {
  auto hot = fresh(5);
  auto warm = fresh(5);
  hot.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  warm.evolve(dc_stress(Volts{1.2}, Celsius{100.0}), Seconds{hours(24.0)});
  EXPECT_GT(hot.delta_vth(), warm.delta_vth());
  // Table 2 ratio ~ 1.7/2.2.
  EXPECT_NEAR(warm.delta_vth() / hot.delta_vth(), 0.77, 0.12);
}

TEST(TrapEnsemble, HigherVoltageStressDegradesMore) {
  auto nominal = fresh(9);
  auto overdriven = fresh(9);
  nominal.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  overdriven.evolve(dc_stress(Volts{1.4}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_GT(overdriven.delta_vth(), nominal.delta_vth());
}

TEST(TrapEnsemble, UnrecoveredResidueAccumulatesAcrossCycles) {
  // Fig. 1: with symmetric stress/recovery cycles at *passive* recovery,
  // each cycle ends higher than the last.
  auto e = fresh();
  std::vector<double> end_of_cycle;
  for (int cycle = 0; cycle < 4; ++cycle) {
    e.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(4.0)});
    e.evolve(recovery(Volts{0.0}, Celsius{20.0}), Seconds{hours(4.0)});
    end_of_cycle.push_back(e.delta_vth());
  }
  for (std::size_t i = 1; i < end_of_cycle.size(); ++i) {
    EXPECT_GT(end_of_cycle[i], end_of_cycle[i - 1]);
  }
}

TEST(TrapEnsemble, DeterministicForSameSeed) {
  auto a = fresh(1234);
  auto b = fresh(1234);
  a.evolve(ref_stress(), Seconds{hours(3.0)});
  b.evolve(ref_stress(), Seconds{hours(3.0)});
  EXPECT_DOUBLE_EQ(a.delta_vth(), b.delta_vth());
}

TEST(TrapEnsemble, DifferentSeedsGiveSimilarButDistinctDevices) {
  auto a = fresh(1);
  auto b = fresh(2);
  a.evolve(ref_stress(), Seconds{hours(24.0)});
  b.evolve(ref_stress(), Seconds{hours(24.0)});
  EXPECT_NE(a.delta_vth(), b.delta_vth());
  // Statistically alike: within ~40 % of each other.
  EXPECT_NEAR(a.delta_vth() / b.delta_vth(), 1.0, 0.4);
}

TEST(TrapEnsemble, SegmentedEvolutionMatchesSingleSegment) {
  // Exact per-interval solution: 24 x 1 h == 1 x 24 h under constant
  // conditions.
  auto once = fresh(11);
  auto stepped = fresh(11);
  once.evolve(ref_stress(), Seconds{hours(24.0)});
  for (int i = 0; i < 24; ++i) stepped.evolve(ref_stress(), Seconds{hours(1.0)});
  EXPECT_NEAR(once.delta_vth(), stepped.delta_vth(),
              once.delta_vth() * 1e-10);
}

TEST(TrapEnsemble, ResetRestoresFreshState) {
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(24.0)});
  e.reset();
  EXPECT_DOUBLE_EQ(e.delta_vth(), 0.0);
}

TEST(TrapEnsemble, OccupancySnapshotRoundTrips) {
  auto e = fresh();
  e.evolve(ref_stress(), Seconds{hours(5.0)});
  const auto snapshot = e.occupancies();
  const double shift = e.delta_vth();
  e.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(5.0)});
  EXPECT_NE(e.delta_vth(), shift);
  e.set_occupancies(snapshot);
  EXPECT_DOUBLE_EQ(e.delta_vth(), shift);
}

TEST(TrapEnsemble, SnapshotValidatesInput) {
  auto e = fresh();
  EXPECT_THROW(e.set_occupancies(std::vector<double>{0.5}),
               std::invalid_argument);
  std::vector<double> bad(static_cast<std::size_t>(e.trap_count()), 2.0);
  EXPECT_THROW(e.set_occupancies(bad), std::invalid_argument);
}

TEST(TrapEnsemble, RejectsUnsafeConditions) {
  auto e = fresh();
  EXPECT_THROW(e.evolve(recovery(Volts{-0.6}, Celsius{20.0}), Seconds{1.0}), std::invalid_argument);
  EXPECT_THROW(e.evolve(dc_stress(Volts{1.2}, Celsius{150.0}), Seconds{1.0}), std::invalid_argument);
  EXPECT_THROW(e.evolve(ref_stress(), Seconds{-1.0}), std::invalid_argument);
}

TEST(TrapEnsemble, MaxShiftBoundsActualShift) {
  auto e = fresh();
  for (int i = 0; i < 10; ++i) e.evolve(ref_stress(), Seconds{hours(24.0)});
  EXPECT_LT(e.delta_vth(), e.max_delta_vth());
}

}  // namespace
}  // namespace ash::bti
