#include "ash/bti/acceleration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::bti {
namespace {

const TdParameters& P() { return default_td_parameters(); }

TEST(Arrhenius, UnityAtReference) {
  EXPECT_DOUBLE_EQ(arrhenius_factor(0.6, Kelvin{383.15}, Kelvin{383.15}), 1.0);
}

TEST(Arrhenius, AcceleratesWithTemperature) {
  EXPECT_GT(arrhenius_factor(0.6, Kelvin{393.15}, Kelvin{383.15}), 1.0);
  EXPECT_LT(arrhenius_factor(0.6, Kelvin{373.15}, Kelvin{383.15}), 1.0);
}

TEST(Arrhenius, ZeroActivationEnergyIsTemperatureIndependent) {
  EXPECT_DOUBLE_EQ(arrhenius_factor(0.0, Kelvin{500.0}, Kelvin{300.0}), 1.0);
}

TEST(CaptureAcceleration, UnityAtStressReference) {
  EXPECT_NEAR(capture_acceleration(P(), P().capture_ea_mean_ev,
                                   Volts{P().stress_ref_voltage_v},
                                   Kelvin{P().stress_ref_temp_k}),
              1.0, 1e-12);
}

TEST(CaptureAcceleration, ZeroBelowThresholdVoltage) {
  EXPECT_DOUBLE_EQ(
      capture_acceleration(P(), 0.2, Volts{/*voltage=*/0.0}, Kelvin{celsius(110.0)}), 0.0);
  EXPECT_DOUBLE_EQ(
      capture_acceleration(P(), 0.2, Volts{/*voltage=*/-0.3}, Kelvin{celsius(110.0)}), 0.0);
}

TEST(CaptureAcceleration, GrowsWithOverdrive) {
  const double nominal =
      capture_acceleration(P(), 0.2, Volts{1.2}, Kelvin{P().stress_ref_temp_k});
  const double overdriven =
      capture_acceleration(P(), 0.2, Volts{1.4}, Kelvin{P().stress_ref_temp_k});
  EXPECT_GT(overdriven, nominal);
  // exp(3.5 * 0.2) ~ 2.01x for the default field factor.
  EXPECT_NEAR(overdriven / nominal, std::exp(0.2 * P().capture_field_accel_per_v),
              1e-9);
}

TEST(EmissionAcceleration, UnityAtPassiveReference) {
  EXPECT_NEAR(emission_acceleration(P(), P().emission_ea_mean_ev,
                                    Volts{/*voltage=*/0.0}, Kelvin{P().recovery_ref_temp_k}),
              1.0, 1e-12);
}

TEST(EmissionAcceleration, HighTemperatureIsAStrongKnob) {
  // ~18x at 0.31 eV — worth ~2.5 decades of extra recovery coverage on the
  // ~2.9-decade measurable spectrum, i.e. most of the reversible damage.
  const double at_110c = emission_acceleration(P(), P().emission_ea_mean_ev,
                                               Volts{0.0}, Kelvin{celsius(110.0)});
  EXPECT_GT(at_110c, 8.0);
  EXPECT_LT(at_110c, 100.0);
}

TEST(EmissionAcceleration, NegativeBiasIsAStrongKnob) {
  const double at_neg = emission_acceleration(P(), P().emission_ea_mean_ev,
                                              Volts{-0.3}, Kelvin{P().recovery_ref_temp_k});
  EXPECT_GT(at_neg, 8.0);
  EXPECT_LT(at_neg, 100.0);
}

TEST(EmissionAcceleration, PositiveBiasDoesNotBoost) {
  const double passive = emission_acceleration(P(), 0.9, Volts{0.0}, Kelvin{celsius(20.0)});
  const double positive = emission_acceleration(P(), 0.9, Volts{0.5}, Kelvin{celsius(20.0)});
  EXPECT_DOUBLE_EQ(passive, positive);
}

TEST(EmissionAcceleration, KnobsCompose) {
  const double t_only = emission_acceleration(P(), 0.9, Volts{0.0}, Kelvin{celsius(110.0)});
  const double v_only = emission_acceleration(P(), 0.9, Volts{-0.3}, Kelvin{celsius(20.0)});
  const double both = emission_acceleration(P(), 0.9, Volts{-0.3}, Kelvin{celsius(110.0)});
  EXPECT_NEAR(both, t_only * v_only, both * 1e-9);
}

TEST(OccupancyAmplitude, InUnitIntervalAndTemperatureOrdered) {
  const double at_110 = occupancy_amplitude(P(), Volts{1.2}, Kelvin{celsius(110.0)});
  const double at_100 = occupancy_amplitude(P(), Volts{1.2}, Kelvin{celsius(100.0)});
  const double at_20 = occupancy_amplitude(P(), Volts{1.2}, Kelvin{celsius(20.0)});
  EXPECT_GT(at_110, at_100);
  EXPECT_GT(at_100, at_20);
  EXPECT_GT(at_20, 0.0);
  EXPECT_LE(at_110, 1.0);
}

TEST(OccupancyAmplitude, CalibratedForTable2Ratio) {
  // Table 2: 24 h DC @100 C -> ~1.7 % vs @110 C -> ~2.2 %; amplitude ratio
  // must land near 1.7/2.2 ~ 0.77.
  const double ratio = occupancy_amplitude(P(), Volts{1.2}, Kelvin{celsius(100.0)}) /
                       occupancy_amplitude(P(), Volts{1.2}, Kelvin{celsius(110.0)});
  EXPECT_NEAR(ratio, 0.77, 0.05);
}

TEST(OccupancyAmplitude, NearDesignPointValue) {
  // Calibration note in parameters.h: phi(1.2 V, 110 C) ~ 0.75.
  EXPECT_NEAR(occupancy_amplitude(P(), Volts{1.2}, Kelvin{celsius(110.0)}), 0.75, 0.08);
}

}  // namespace
}  // namespace ash::bti
