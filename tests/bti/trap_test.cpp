#include "ash/bti/trap.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ash::bti {
namespace {

TEST(Trap, CaptureApproachesAmplitudeNotOne) {
  Trap t;
  t.occupancy = 0.0;
  // Pure capture toward phi = 0.75.
  evolve_trap(t, Hertz{/*rc=*/1.0}, Hertz{/*re=*/0.0}, /*phi=*/0.75, Seconds{/*dt=*/100.0});
  EXPECT_NEAR(t.occupancy, 0.75, 1e-9);
}

TEST(Trap, ExactExponentialSolutionAtOneTau) {
  Trap t;
  t.occupancy = 0.0;
  evolve_trap(t, Hertz{1.0}, Hertz{0.0}, 1.0, Seconds{1.0});
  EXPECT_NEAR(t.occupancy, 1.0 - std::exp(-1.0), 1e-12);
}

TEST(Trap, PureEmissionDecays) {
  Trap t;
  t.occupancy = 0.8;
  evolve_trap(t, Hertz{0.0}, Hertz{2.0}, 0.0, Seconds{1.0});
  EXPECT_NEAR(t.occupancy, 0.8 * std::exp(-2.0), 1e-12);
}

TEST(Trap, PermanentTrapNeverEmits) {
  Trap t;
  t.permanent = true;
  t.occupancy = 0.6;
  evolve_trap(t, Hertz{0.0}, Hertz{100.0}, 0.0, Seconds{1e9});
  EXPECT_DOUBLE_EQ(t.occupancy, 0.6);
}

TEST(Trap, PermanentTrapStillCaptures) {
  Trap t;
  t.permanent = true;
  t.occupancy = 0.0;
  evolve_trap(t, Hertz{1.0}, Hertz{5.0}, 0.9, Seconds{100.0});  // re is ignored for permanent traps
  EXPECT_NEAR(t.occupancy, 0.9, 1e-9);
}

TEST(Trap, CompetingRatesReachMixedEquilibrium) {
  Trap t;
  t.occupancy = 0.0;
  // rc = re = 1: p_inf = phi/2.
  evolve_trap(t, Hertz{1.0}, Hertz{1.0}, 0.8, Seconds{1000.0});
  EXPECT_NEAR(t.occupancy, 0.4, 1e-9);
}

TEST(Trap, ZeroRatesAndZeroDtAreNoOps) {
  Trap t;
  t.occupancy = 0.3;
  evolve_trap(t, Hertz{0.0}, Hertz{0.0}, 1.0, Seconds{100.0});
  EXPECT_DOUBLE_EQ(t.occupancy, 0.3);
  evolve_trap(t, Hertz{1.0}, Hertz{1.0}, 1.0, Seconds{0.0});
  EXPECT_DOUBLE_EQ(t.occupancy, 0.3);
}

TEST(Trap, EquilibriumDropReleasesExcessOccupancy) {
  // A trap filled at high amplitude relaxes downward when the equilibrium
  // amplitude drops (e.g. stress continues at lower temperature).
  Trap t;
  t.occupancy = 0.9;
  evolve_trap(t, Hertz{1.0}, Hertz{0.0}, 0.5, Seconds{1000.0});
  EXPECT_NEAR(t.occupancy, 0.5, 1e-9);
}

TEST(Trap, TwoHalfStepsEqualOneFullStep) {
  // The exact solution must compose: evolving dt then dt equals 2dt.
  Trap a;
  Trap b;
  a.occupancy = b.occupancy = 0.1;
  evolve_trap(a, Hertz{0.7}, Hertz{0.3}, 0.6, Seconds{2.0});
  evolve_trap(b, Hertz{0.7}, Hertz{0.3}, 0.6, Seconds{1.0});
  evolve_trap(b, Hertz{0.7}, Hertz{0.3}, 0.6, Seconds{1.0});
  EXPECT_NEAR(a.occupancy, b.occupancy, 1e-12);
}

TEST(Trap, HugeExponentDoesNotOverflow) {
  Trap t;
  t.occupancy = 0.0;
  evolve_trap(t, Hertz{1e6}, Hertz{0.0}, 0.5, Seconds{1e6});
  EXPECT_NEAR(t.occupancy, 0.5, 1e-12);
}

}  // namespace
}  // namespace ash::bti
