#include "ash/bti/reaction_diffusion.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ash/bti/trap_ensemble.h"
#include "ash/util/constants.h"

namespace ash::bti {
namespace {

RdModel make_model() { return RdModel(RdParameters{}); }

TEST(RdModel, StressFollowsPowerLaw) {
  const auto m = make_model();
  const auto cond = dc_stress(Volts{1.2}, Celsius{110.0});
  const double d1 = m.stress_delta_vth(Seconds{1e3}, cond);
  const double d2 = m.stress_delta_vth(Seconds{64e3}, cond);
  // t^(1/6): a 64x time stretch doubles the shift.
  EXPECT_NEAR(d2 / d1, 2.0, 1e-9);
}

TEST(RdModel, AmplitudeNormalizedAtReference) {
  const RdParameters p;
  const RdModel m(p);
  EXPECT_NEAR(m.amplitude(p.stress_ref_voltage_v, p.stress_ref_temp_k),
              p.amplitude_ref_v.value(), 1e-15);
  EXPECT_LT(m.amplitude(Volts{1.2}, Kelvin{celsius(100.0)}),
            p.amplitude_ref_v.value());
}

TEST(RdModel, RecoveryIsTheUniversalCurve) {
  const auto m = make_model();
  // remaining depends only on t2/t1.
  EXPECT_DOUBLE_EQ(m.remaining_fraction(Seconds{100.0}, Seconds{25.0}),
                   m.remaining_fraction(Seconds{400.0}, Seconds{100.0}));
  // At t2 = t1/4, xi = 0.5: 1/(1 + sqrt(0.125)) ~ 0.739.
  EXPECT_NEAR(m.remaining_fraction(Seconds{hours(24.0)}, Seconds{hours(6.0)}),
              1.0 / (1.0 + std::sqrt(0.5 * 0.25)), 1e-12);
}

TEST(RdModel, RecoveryMonotoneAndBounded) {
  const auto m = make_model();
  double prev = 1.0;
  for (double t2 = 60.0; t2 < hours(100.0); t2 *= 3.0) {
    const double rem = m.remaining_fraction(Seconds{hours(24.0)}, Seconds{t2});
    EXPECT_LT(rem, prev);
    EXPECT_GT(rem, 0.0);
    prev = rem;
  }
}

TEST(RdModel, ValidatesParameters) {
  RdParameters bad;
  bad.time_exponent = 0.0;
  EXPECT_THROW(RdModel{bad}, std::invalid_argument);
  bad = RdParameters{};
  bad.xi = -1.0;
  EXPECT_THROW(RdModel{bad}, std::invalid_argument);
}

TEST(RdFit, RecoversKnownPowerLaw) {
  Series s("synthetic");
  for (double t = 600.0; t <= hours(24.0); t += hours(0.5)) {
    s.append(t, 2e-10 * std::pow(t, 1.0 / 6.0));
  }
  const auto fit = fit_rd_stress(s, RdParameters{}, /*fit_exponent=*/true);
  EXPECT_NEAR(fit.time_exponent, 1.0 / 6.0, 0.01);
  EXPECT_NEAR(fit.amplitude, 2e-10, 2e-12);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(RdFit, FitsTdGeneratedStressDataTolerably) {
  // The "Physics Matters" setup: over two decades of accelerated stress,
  // a power law can mimic the log law well enough that stress data alone
  // cannot reject RD...
  TrapEnsemble e(default_td_parameters(), 4);
  Series s("ensemble");
  double t = 0.0;
  const auto cond = dc_stress(Volts{1.2}, Celsius{110.0});
  for (int i = 0; i < 48; ++i) {
    e.evolve(cond, Seconds{hours(0.5)});
    t += hours(0.5);
    s.append(t, e.delta_vth());
  }
  const auto fit = fit_rd_stress(s, RdParameters{}, true);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(RdVsTd, RecoveryConditionsSeparateTheModels) {
  // ...but recovery data rejects RD: the measured remaining fraction
  // spreads hugely across sleep conditions while RD predicts one number.
  const auto rd = make_model();
  const double rd_prediction =
      rd.remaining_fraction(Seconds{hours(24.0)}, Seconds{hours(6.0)});

  double remaining[4] = {};
  const OperatingCondition conds[] = {recovery(Volts{0.0}, Celsius{20.0}),
                                      recovery(Volts{-0.3}, Celsius{20.0}),
                                      recovery(Volts{0.0}, Celsius{110.0}),
                                      recovery(Volts{-0.3}, Celsius{110.0})};
  for (int i = 0; i < 4; ++i) {
    TrapEnsemble e(default_td_parameters(), 4);
    e.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
    const double damage = e.delta_vth();
    e.evolve(conds[i], Seconds{hours(6.0)});
    remaining[i] = e.delta_vth() / damage;
  }
  // RD can at best match one of the four conditions; the accelerated ones
  // sit far below its universal prediction.
  EXPECT_GT(rd_prediction - remaining[3], 0.4);
  EXPECT_GT(remaining[0] - remaining[3], 0.25);
}

}  // namespace
}  // namespace ash::bti
