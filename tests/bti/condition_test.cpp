#include "ash/bti/condition.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::bti {
namespace {

TEST(Condition, DcStressBuilder) {
  const auto c = dc_stress(Volts{1.2}, Celsius{110.0});
  EXPECT_DOUBLE_EQ(c.voltage_v.value(), 1.2);
  EXPECT_DOUBLE_EQ(c.temperature_k.value(), celsius(110.0));
  EXPECT_DOUBLE_EQ(c.gate_stress_duty, 1.0);
  EXPECT_TRUE(c.is_stressing());
}

TEST(Condition, AcStressBuilderDefaultsToHalfDuty) {
  const auto c = ac_stress(Volts{1.2}, Celsius{110.0});
  EXPECT_DOUBLE_EQ(c.gate_stress_duty, 0.5);
  const auto c2 = ac_stress(Volts{1.2}, Celsius{110.0}, 0.3);
  EXPECT_DOUBLE_EQ(c2.gate_stress_duty, 0.3);
}

TEST(Condition, RecoveryBuilderIsUnstressed) {
  const auto c = recovery(Volts{-0.3}, Celsius{110.0});
  EXPECT_DOUBLE_EQ(c.voltage_v.value(), -0.3);
  EXPECT_DOUBLE_EQ(c.gate_stress_duty, 0.0);
  EXPECT_FALSE(c.is_stressing());
}

TEST(Condition, DescribeIsHumanReadable) {
  EXPECT_EQ(dc_stress(Volts{1.2}, Celsius{110.0}).describe(), "1.20V/110.0C/duty=1.00");
  EXPECT_EQ(recovery(Volts{-0.3}, Celsius{20.0}).describe(), "-0.30V/20.0C/duty=0.00");
}

TEST(Constants, TemperatureConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius(0.0), 273.15);
  EXPECT_DOUBLE_EQ(to_celsius(celsius(110.0)), 110.0);
}

TEST(Constants, TimeHelpers) {
  EXPECT_DOUBLE_EQ(hours(24.0), 86400.0);
  EXPECT_DOUBLE_EQ(to_hours(kSecondsPerDay), 24.0);
}

}  // namespace
}  // namespace ash::bti
