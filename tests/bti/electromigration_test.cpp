#include "ash/bti/electromigration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::bti {
namespace {

EmInterconnect make_segment() { return EmInterconnect(EmParameters{}); }

constexpr double kYear = 365.25 * 86400.0;

TEST(Em, FreshSegmentHasNoDrift) {
  const auto seg = make_segment();
  EXPECT_DOUBLE_EQ(seg.drift(), 0.0);
  EXPECT_FALSE(seg.failed());
}

TEST(Em, CalibratedTenYearLifeAtReference) {
  const auto seg = make_segment();
  const double ttf = seg.time_to_failure(1.0, Kelvin{378.15}).value();
  EXPECT_NEAR(ttf / kYear, 10.0, 0.2);
}

TEST(Em, NoCurrentNoWear) {
  // The property that makes hot rejuvenation EM-free: power-gated sleep
  // carries no current.
  auto seg = make_segment();
  seg.evolve(0.0, Kelvin{celsius(110.0)}, Seconds{100.0 * kYear});
  EXPECT_DOUBLE_EQ(seg.drift(), 0.0);
  EXPECT_TRUE(std::isinf(seg.time_to_failure(0.0, Kelvin{celsius(110.0)}).value()));
}

TEST(Em, DriftIsIrreversible) {
  auto seg = make_segment();
  seg.evolve(1.0, Kelvin{378.15}, Seconds{kYear});
  const double d = seg.drift();
  EXPECT_GT(d, 0.0);
  // "Recovery" conditions (no current, any temperature) never reduce it.
  seg.evolve(0.0, Kelvin{celsius(110.0)}, Seconds{10.0 * kYear});
  EXPECT_DOUBLE_EQ(seg.drift(), d);
}

TEST(Em, BlackCurrentExponent) {
  const auto seg = make_segment();
  const double r1 = seg.drift_rate(1.0, Kelvin{378.15});
  const double r2 = seg.drift_rate(2.0, Kelvin{378.15});
  EXPECT_NEAR(r2 / r1, 4.0, 1e-9);  // n = 2
}

TEST(Em, ArrheniusTemperatureAcceleration) {
  const auto seg = make_segment();
  const double cool = seg.drift_rate(1.0, Kelvin{celsius(45.0)});
  const double ref = seg.drift_rate(1.0, Kelvin{378.15});
  const double hot = seg.drift_rate(1.0, Kelvin{celsius(125.0)});
  EXPECT_LT(cool, ref);
  EXPECT_GT(hot, ref);
  // 0.9 eV: idle-temperature operation is orders of magnitude gentler.
  EXPECT_GT(ref / cool, 50.0);
}

TEST(Em, FailureThresholdTripsExactly) {
  auto seg = make_segment();
  const double ttf = seg.time_to_failure(1.0, Kelvin{378.15}).value();
  seg.evolve(1.0, Kelvin{378.15}, Seconds{ttf * 0.99});
  EXPECT_FALSE(seg.failed());
  seg.evolve(1.0, Kelvin{378.15}, Seconds{ttf * 0.02});
  EXPECT_TRUE(seg.failed());
  EXPECT_DOUBLE_EQ(seg.time_to_failure(1.0, Kelvin{378.15}).value(), 0.0);
}

TEST(Em, DutyCycleExtendsLifeProportionally) {
  // 80 % duty (the paper's alpha = 4 circadian schedule) stretches EM life
  // by 1/duty at equal temperature.
  auto always = make_segment();
  auto circadian = make_segment();
  for (int day = 0; day < 365; ++day) {
    always.evolve(1.0, Kelvin{celsius(80.0)}, Seconds{86400.0});
    circadian.evolve(1.0, Kelvin{celsius(80.0)}, Seconds{0.8 * 86400.0});
    circadian.evolve(0.0, Kelvin{celsius(110.0)}, Seconds{0.2 * 86400.0});  // hot sleep: free
  }
  EXPECT_NEAR(circadian.drift() / always.drift(), 0.8, 1e-9);
}

TEST(Em, ValidatesInputs) {
  EmParameters bad;
  bad.drift_rate_per_s = 0.0;
  EXPECT_THROW(EmInterconnect{bad}, std::invalid_argument);
  auto seg = make_segment();
  EXPECT_THROW(seg.evolve(-1.0, Kelvin{300.0}, Seconds{1.0}), std::invalid_argument);
  EXPECT_THROW(seg.evolve(1.0, Kelvin{0.0}, Seconds{1.0}), std::invalid_argument);
  EXPECT_THROW(seg.evolve(1.0, Kelvin{300.0}, Seconds{-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ash::bti
