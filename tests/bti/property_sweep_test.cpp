/// Property-style parameterized sweeps over the BTI condition space.
///
/// These TEST_P suites assert the model's structural invariants across a
/// grid of operating conditions — monotonicity in every knob, agreement
/// between the stochastic ensemble and its closed-form abstraction, and
/// the bounds that recovery can never violate.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "ash/bti/closed_form.h"
#include "ash/bti/trap_ensemble.h"
#include "ash/util/constants.h"

namespace ash::bti {
namespace {

ClosedFormParameters cf_params() {
  return ClosedFormParameters::from_td(default_td_parameters());
}

// ---------------------------------------------------------------------------
// Sweep 1: stress conditions (voltage x temperature).
// ---------------------------------------------------------------------------

using StressPoint = std::tuple<double, double>;  // (voltage, temp_c)

class StressConditionSweep : public ::testing::TestWithParam<StressPoint> {};

TEST_P(StressConditionSweep, EnsembleMatchesClosedFormWithin35Percent) {
  const auto [v, t_c] = GetParam();
  TrapEnsemble e(default_td_parameters(), 42);
  const ClosedFormModel m(cf_params());
  const auto cond = dc_stress(Volts{v}, Celsius{t_c});
  e.evolve(cond, Seconds{hours(24.0)});
  const double ens = e.delta_vth();
  const double cf = m.stress_delta_vth(Seconds{hours(24.0)}, cond);
  ASSERT_GT(ens, 0.0);
  EXPECT_NEAR(cf / ens, 1.0, 0.35)
      << "V=" << v << " T=" << t_c << " ens=" << ens << " cf=" << cf;
}

TEST_P(StressConditionSweep, StressIsMonotoneInTime) {
  const auto [v, t_c] = GetParam();
  TrapEnsemble e(default_td_parameters(), 7);
  const auto cond = dc_stress(Volts{v}, Celsius{t_c});
  double prev = 0.0;
  for (int i = 0; i < 8; ++i) {
    e.evolve(cond, Seconds{hours(3.0)});
    EXPECT_GE(e.delta_vth(), prev - 1e-12);
    prev = e.delta_vth();
  }
}

TEST_P(StressConditionSweep, ClosedFormAgerTracksStatelessModel) {
  const auto [v, t_c] = GetParam();
  ClosedFormAger ager(cf_params());
  const ClosedFormModel m(cf_params());
  const auto cond = dc_stress(Volts{v}, Celsius{t_c});
  ager.evolve(cond, Seconds{hours(24.0)});
  const double stateless = m.stress_delta_vth(Seconds{hours(24.0)}, cond);
  EXPECT_NEAR(ager.delta_vth(), stateless,
              std::max(stateless, 1e-9) * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StressConditionSweep,
    ::testing::Values(StressPoint{1.1, 90.0}, StressPoint{1.2, 90.0},
                      StressPoint{1.3, 90.0}, StressPoint{1.1, 100.0},
                      StressPoint{1.2, 100.0}, StressPoint{1.3, 100.0},
                      StressPoint{1.1, 110.0}, StressPoint{1.2, 110.0},
                      StressPoint{1.3, 110.0}),
    [](const ::testing::TestParamInfo<StressPoint>& info) {
      return "V" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_T" + std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Sweep 2: recovery conditions (voltage x temperature).
// ---------------------------------------------------------------------------

using RecoveryPoint = std::tuple<double, double>;  // (voltage, temp_c)

class RecoveryConditionSweep
    : public ::testing::TestWithParam<RecoveryPoint> {};

TEST_P(RecoveryConditionSweep, RecoveryNeverIncreasesShift) {
  const auto [v, t_c] = GetParam();
  TrapEnsemble e(default_td_parameters(), 3);
  e.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  double prev = e.delta_vth();
  for (int i = 0; i < 6; ++i) {
    e.evolve(recovery(Volts{v}, Celsius{t_c}), Seconds{hours(1.0)});
    EXPECT_LE(e.delta_vth(), prev + 1e-12);
    prev = e.delta_vth();
  }
}

TEST_P(RecoveryConditionSweep, RecoveryBoundedByPermanentFloor) {
  const auto [v, t_c] = GetParam();
  TrapEnsemble e(default_td_parameters(), 3);
  e.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double perm = e.permanent_delta_vth();
  for (int i = 0; i < 20; ++i) e.evolve(recovery(Volts{v}, Celsius{t_c}), Seconds{hours(24.0)});
  EXPECT_GE(e.delta_vth(), perm * 0.999);
}

TEST_P(RecoveryConditionSweep, ClosedFormRemainingFractionInBounds) {
  const auto [v, t_c] = GetParam();
  const ClosedFormModel m(cf_params());
  for (double t2_h : {0.1, 1.0, 6.0, 48.0}) {
    const double rem =
        m.remaining_fraction(Seconds{hours(24.0)}, Seconds{hours(t2_h)}, recovery(Volts{v}, Celsius{t_c}));
    EXPECT_GE(rem, m.parameters().permanent_ratio - 1e-12);
    EXPECT_LE(rem, 1.0 + 1e-12);
  }
}

TEST_P(RecoveryConditionSweep, EnsembleAndClosedFormAgreeOnRecovery) {
  const auto [v, t_c] = GetParam();
  TrapEnsemble e(default_td_parameters(), 11);
  const ClosedFormModel m(cf_params());
  e.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double damage = e.delta_vth();
  e.evolve(recovery(Volts{v}, Celsius{t_c}), Seconds{hours(6.0)});
  const double remaining_ens = e.delta_vth() / damage;
  const double remaining_cf =
      m.remaining_fraction(Seconds{hours(24.0)}, Seconds{hours(6.0)}, recovery(Volts{v}, Celsius{t_c}));
  // First-order agreement: within 15 percentage points of remaining share.
  EXPECT_NEAR(remaining_ens, remaining_cf, 0.15)
      << "V=" << v << " T=" << t_c;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RecoveryConditionSweep,
    ::testing::Values(RecoveryPoint{0.0, 20.0}, RecoveryPoint{-0.15, 20.0},
                      RecoveryPoint{-0.3, 20.0}, RecoveryPoint{0.0, 65.0},
                      RecoveryPoint{-0.3, 65.0}, RecoveryPoint{0.0, 110.0},
                      RecoveryPoint{-0.15, 110.0},
                      RecoveryPoint{-0.3, 110.0}),
    [](const ::testing::TestParamInfo<RecoveryPoint>& info) {
      const int mv = static_cast<int>(-std::get<0>(info.param) * 1000);
      return "N" + std::to_string(mv) + "mV_T" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Sweep 3: duty cycle.
// ---------------------------------------------------------------------------

class DutySweep : public ::testing::TestWithParam<double> {};

TEST_P(DutySweep, ShiftIsMonotoneInDuty) {
  const double duty = GetParam();
  TrapEnsemble lo(default_td_parameters(), 5);
  TrapEnsemble hi(default_td_parameters(), 5);
  lo.evolve(ac_stress(Volts{1.2}, Celsius{110.0}, duty), Seconds{hours(24.0)});
  hi.evolve(ac_stress(Volts{1.2}, Celsius{110.0}, std::min(1.0, duty + 0.2)), Seconds{hours(24.0)});
  EXPECT_LE(lo.delta_vth(), hi.delta_vth() + 1e-9);
}

TEST_P(DutySweep, ClosedFormAcFactorDecreasesWithIdleShare) {
  const double duty = GetParam();
  const ClosedFormModel m(cf_params());
  const double f1 = m.ac_amplitude_factor(ac_stress(Volts{1.2}, Celsius{110.0}, duty));
  const double f2 =
      m.ac_amplitude_factor(ac_stress(Volts{1.2}, Celsius{110.0}, std::min(1.0, duty + 0.2)));
  EXPECT_LE(f1, f2 + 1e-12);
  EXPECT_GT(f1, 0.0);
  EXPECT_LE(f1, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, DutySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.8),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "duty" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

// ---------------------------------------------------------------------------
// Sweep 4: alpha (active/sleep ratio) — Eq. (12)'s central knob.
// ---------------------------------------------------------------------------

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, SteadyCycleResidueGrowsWithAlpha) {
  const double alpha = GetParam();
  ClosedFormAger a(cf_params());
  ClosedFormAger b(cf_params());
  const auto stress = dc_stress(Volts{1.2}, Celsius{110.0});
  const auto heal = recovery(Volts{-0.3}, Celsius{110.0});
  const double cycle = hours(30.0);
  for (int i = 0; i < 5; ++i) {
    a.evolve(stress, Seconds{cycle * alpha / (1.0 + alpha)});
    a.evolve(heal, Seconds{cycle / (1.0 + alpha)});
    b.evolve(stress, Seconds{cycle * (2.0 * alpha) / (1.0 + 2.0 * alpha)});
    b.evolve(heal, Seconds{cycle / (1.0 + 2.0 * alpha)});
  }
  // Doubling alpha (less sleep) leaves at least as much residue.
  EXPECT_LE(a.delta_vth(), b.delta_vth() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, AlphaSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0, 16.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "alpha" + std::to_string(static_cast<int>(
                                                info.param));
                         });

}  // namespace
}  // namespace ash::bti
