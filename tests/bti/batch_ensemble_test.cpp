#include "ash/bti/batch_ensemble.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ash/bti/trap_ensemble.h"
#include "ash/util/random.h"
#include "ash/util/thread_pool.h"

namespace ash::bti {
namespace {

// A schedule exercising every evolve path: recurring stress/recovery
// conditions (cache hits), a drifting-temperature stretch (every interval
// unique — the solo ensemble's transient path), measurement wakes with a
// different duty and dt, and a dt change on a cached condition.
struct Step {
  OperatingCondition condition;
  double dt_s;
};

std::vector<Step> mixed_schedule() {
  std::vector<Step> steps;
  const auto stress = dc_stress(Volts{1.2}, Celsius{110.0});
  const auto recover = recovery(Volts{-0.3}, Celsius{110.0});
  const auto wake = ac_stress(Volts{1.2}, Celsius{110.0}, 0.5);
  for (int i = 0; i < 6; ++i) steps.push_back({stress, 60.0});
  steps.push_back({wake, 2.7});
  for (int i = 0; i < 4; ++i) steps.push_back({stress, 60.0});
  steps.push_back({stress, 1200.0});  // dt change on a cached condition
  // Drifting chamber: every step is a one-shot condition.
  for (int i = 0; i < 12; ++i) {
    OperatingCondition c = stress;
    c.temperature_k = c.temperature_k + Kelvin{0.013 * (i + 1)};
    steps.push_back({c, 60.0});
  }
  steps.push_back({wake, 2.7});
  for (int i = 0; i < 6; ++i) steps.push_back({recover, 600.0});
  for (int i = 0; i < 3; ++i) steps.push_back({stress, 60.0});
  return steps;
}

std::vector<BatchMemberSpec> distinct_seed_population(int n) {
  std::vector<BatchMemberSpec> specs;
  for (int m = 0; m < n; ++m) {
    specs.push_back({default_td_parameters(),
                     derive_seed(0xBA7C4, static_cast<std::uint64_t>(m))});
  }
  return specs;
}

// A homogeneous-kinetics population: one shared seed, per-member DeltaVth
// scale (the corner/mismatch axis) — the fleet-sweep shape that collapses
// to a single trap class.
std::vector<BatchMemberSpec> one_class_population(int n) {
  std::vector<BatchMemberSpec> specs;
  Rng scales(0x5CA1E5);
  for (int m = 0; m < n; ++m) {
    TdParameters p = default_td_parameters();
    p.delta_vth_mean_v = p.delta_vth_mean_v * std::exp(scales.normal(0.0, 0.05));
    specs.push_back({p, 0xF1EE7});
  }
  return specs;
}

void expect_bit_identical_trajectories(
    const std::vector<BatchMemberSpec>& specs, const BatchConfig& config) {
  std::vector<TrapEnsemble> solo;
  solo.reserve(specs.size());
  for (const auto& s : specs) solo.emplace_back(s.params, s.seed);
  BatchEnsemble batch(specs, config);

  int step_index = 0;
  for (const auto& step : mixed_schedule()) {
    batch.evolve(step.condition, Seconds{step.dt_s});
    for (std::size_t m = 0; m < solo.size(); ++m) {
      solo[m].evolve(step.condition, Seconds{step.dt_s});
    }
    for (std::size_t m = 0; m < solo.size(); ++m) {
      ASSERT_EQ(batch.delta_vth(static_cast<int>(m)), solo[m].delta_vth())
          << "member " << m << " diverged at step " << step_index;
    }
    ++step_index;
  }
  for (std::size_t m = 0; m < solo.size(); ++m) {
    ASSERT_EQ(batch.occupancies(static_cast<int>(m)), solo[m].occupancies())
        << "member " << m;
  }
}

// The satellite-2 acceptance assertion: exact mode is bit-for-bit equal to
// N independent TrapEnsemble runs for a seeded 64-chip population.
TEST(BatchEnsemble, ExactModeBitIdenticalDistinctSeeds64) {
  const auto specs = distinct_seed_population(64);
  BatchEnsemble batch(specs, {});
  EXPECT_EQ(batch.member_count(), 64);
  EXPECT_EQ(batch.class_count(), 64);  // distinct seeds: one class each
  expect_bit_identical_trajectories(specs, {});
}

TEST(BatchEnsemble, ExactModeBitIdenticalOneClass64) {
  const auto specs = one_class_population(64);
  BatchEnsemble batch(specs, {});
  EXPECT_EQ(batch.member_count(), 64);
  // Shared seed + shared kinetics constants: rates are computed once per
  // condition for the whole population.
  EXPECT_EQ(batch.class_count(), 1);
  expect_bit_identical_trajectories(specs, {});
}

TEST(BatchEnsemble, AdoptedEnsemblesContinueBitIdentically) {
  const auto specs = distinct_seed_population(8);
  std::vector<TrapEnsemble> solo;
  for (const auto& s : specs) solo.emplace_back(s.params, s.seed);
  // Age the solos first; adoption must pick up mid-campaign state.
  const auto stress = dc_stress(Volts{1.2}, Celsius{110.0});
  for (auto& e : solo) {
    e.evolve(stress, Seconds{3600.0});
    e.evolve(stress, Seconds{3600.0});
  }
  std::vector<const TrapEnsemble*> ptrs;
  for (const auto& e : solo) ptrs.push_back(&e);
  BatchEnsemble batch(ptrs, {});
  for (std::size_t m = 0; m < solo.size(); ++m) {
    ASSERT_EQ(batch.delta_vth(static_cast<int>(m)), solo[m].delta_vth());
  }
  for (const auto& step : mixed_schedule()) {
    batch.evolve(step.condition, Seconds{step.dt_s});
    for (auto& e : solo) e.evolve(step.condition, Seconds{step.dt_s});
  }
  for (std::size_t m = 0; m < solo.size(); ++m) {
    ASSERT_EQ(batch.occupancies(static_cast<int>(m)), solo[m].occupancies());
  }
}

// The tsan-job target: the apply sweep sharded over a ThreadPool must be
// data-race-free and bit-identical to the serial sweep.
TEST(BatchEnsemble, ThreadPoolShardingBitIdentical) {
  const auto specs = one_class_population(48);
  util::ThreadPool pool(4);
  BatchConfig threaded;
  threaded.pool = &pool;
  BatchEnsemble parallel_batch(specs, threaded);
  BatchEnsemble serial_batch(specs, {});
  for (const auto& step : mixed_schedule()) {
    parallel_batch.evolve(step.condition, Seconds{step.dt_s});
    serial_batch.evolve(step.condition, Seconds{step.dt_s});
  }
  for (int m = 0; m < serial_batch.member_count(); ++m) {
    ASSERT_EQ(parallel_batch.occupancies(m), serial_batch.occupancies(m));
  }
}

// Fast mode is approximate but tightly bounded: per-step factor error is
// <= util::kFastExpRelErr, and it compounds only linearly with the step
// count of the schedule, so the end-of-campaign shift agrees to ~1e-6.
TEST(BatchEnsemble, FastModeStaysWithinErrorBudget) {
  const auto specs = one_class_population(16);
  BatchConfig fast;
  fast.fast_exp = true;
  BatchEnsemble exact_batch(specs, {});
  BatchEnsemble fast_batch(specs, fast);
  for (const auto& step : mixed_schedule()) {
    exact_batch.evolve(step.condition, Seconds{step.dt_s});
    fast_batch.evolve(step.condition, Seconds{step.dt_s});
  }
  for (int m = 0; m < exact_batch.member_count(); ++m) {
    const double exact = exact_batch.delta_vth(m);
    const double approx = fast_batch.delta_vth(m);
    ASSERT_GT(exact, 0.0);
    ASSERT_NEAR(approx / exact, 1.0, 1e-6) << "member " << m;
  }
}

TEST(BatchEnsemble, ValidationMatchesSoloAndLeavesStateUntouched) {
  const auto specs = distinct_seed_population(4);
  BatchEnsemble batch(specs, {});
  const auto stress = dc_stress(Volts{1.2}, Celsius{110.0});
  batch.evolve(stress, Seconds{60.0});
  const auto before = batch.occupancies(2);
  const auto version = batch.state_version();

  EXPECT_THROW(batch.evolve(stress, Seconds{-1.0}), std::invalid_argument);
  OperatingCondition too_negative = stress;
  too_negative.voltage_v = Volts{-0.6};  // below min_safe_voltage_v
  EXPECT_THROW(batch.evolve(too_negative, Seconds{60.0}),
               std::invalid_argument);
  OperatingCondition too_hot = stress;
  too_hot.temperature_k = Kelvin{273.15 + 126.0};  // above max_safe_temp_k
  EXPECT_THROW(batch.evolve(too_hot, Seconds{60.0}), std::invalid_argument);

  // dt == 0 is a no-op, not an error — and not a state change.
  batch.evolve(stress, Seconds{0.0});
  EXPECT_EQ(batch.state_version(), version);
  EXPECT_EQ(batch.occupancies(2), before);
}

TEST(BatchEnsemble, SetOccupanciesRoundTripAndReset) {
  const auto specs = distinct_seed_population(3);
  BatchEnsemble batch(specs, {});
  batch.evolve(dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{3600.0});
  const auto snapshot = batch.occupancies(1);
  const double shift = batch.delta_vth(1);

  batch.reset();
  EXPECT_EQ(batch.delta_vth(1), 0.0);

  batch.set_occupancies(1, snapshot);
  EXPECT_EQ(batch.occupancies(1), snapshot);
  EXPECT_EQ(batch.delta_vth(1), shift);

  EXPECT_THROW(batch.set_occupancies(0, std::vector<double>{0.5}),
               std::invalid_argument);
  auto bad = snapshot;
  bad[0] = 1.5;
  EXPECT_THROW(batch.set_occupancies(1, bad), std::invalid_argument);
}

TEST(BatchEnsemble, RejectsEmptyAndNullPopulations) {
  EXPECT_THROW(BatchEnsemble(std::vector<BatchMemberSpec>{}, {}),
               std::invalid_argument);
  EXPECT_THROW(BatchEnsemble(std::vector<const TrapEnsemble*>{}, {}),
               std::invalid_argument);
  std::vector<const TrapEnsemble*> with_null{nullptr};
  EXPECT_THROW(BatchEnsemble(with_null, {}), std::invalid_argument);
}

TEST(BatchEnsemble, ClassGroupingSplitsOnKineticsChanges) {
  // Same seed but a kinetics field differs -> separate classes.
  std::vector<BatchMemberSpec> specs;
  specs.push_back({default_td_parameters(), 7});
  specs.push_back({default_td_parameters(), 7});
  TdParameters hot = default_td_parameters();
  hot.emission_ea_mean_ev += 0.01;
  specs.push_back({hot, 7});
  BatchEnsemble batch(specs, {});
  EXPECT_EQ(batch.class_count(), 2);
  EXPECT_EQ(batch.member_count(), 3);
}

}  // namespace
}  // namespace ash::bti
