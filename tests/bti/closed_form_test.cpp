#include "ash/bti/closed_form.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ash/bti/trap_ensemble.h"
#include "ash/util/constants.h"

namespace ash::bti {
namespace {

ClosedFormParameters params() {
  return ClosedFormParameters::from_td(default_td_parameters());
}

OperatingCondition ref_stress() { return dc_stress(Volts{1.2}, Celsius{110.0}); }

TEST(ClosedFormModel, FreshDeviceStressStartsAtZero) {
  const ClosedFormModel m(params());
  EXPECT_DOUBLE_EQ(m.stress_delta_vth(Seconds{0.0}, ref_stress()), 0.0);
}

TEST(ClosedFormModel, StressIsLogarithmicInTime) {
  const ClosedFormModel m(params());
  // For t >> tau_s, DeltaVth(10 t) - DeltaVth(t) == beta * ln(10), constant.
  const double d1 = m.stress_delta_vth(Seconds{1e5}, ref_stress());
  const double d2 = m.stress_delta_vth(Seconds{1e6}, ref_stress());
  const double d3 = m.stress_delta_vth(Seconds{1e7}, ref_stress());
  EXPECT_NEAR(d2 - d1, d3 - d2, (d3 - d2) * 1e-3);
}

TEST(ClosedFormModel, BetaNormalizedAtReference) {
  const auto p = params();
  const ClosedFormModel m(p);
  EXPECT_NEAR(m.beta(p.stress_ref_voltage_v, p.stress_ref_temp_k),
              p.beta_ref_v.value(), 1e-15);
}

TEST(ClosedFormModel, AmplitudeTemperatureRatioMatchesTable2) {
  const ClosedFormModel m(params());
  const double ratio =
      m.beta(Volts{1.2}, Kelvin{celsius(100.0)}) / m.beta(Volts{1.2}, Kelvin{celsius(110.0)});
  EXPECT_NEAR(ratio, 0.77, 0.05);
}

TEST(ClosedFormModel, RemainingFractionBounds) {
  const auto p = params();
  const ClosedFormModel m(p);
  const double t1 = hours(24.0);
  // Immediately after stress: everything remains.
  EXPECT_NEAR(m.remaining_fraction(Seconds{t1}, Seconds{0.0}, recovery(Volts{0.0}, Celsius{20.0})), 1.0, 1e-12);
  // After an eternity of aggressive recovery: only the permanent part.
  EXPECT_NEAR(m.remaining_fraction(Seconds{t1}, Seconds{hours(1e6)}, recovery(Volts{-0.3}, Celsius{110.0})),
              p.permanent_ratio, 1e-9);
}

TEST(ClosedFormModel, RemainingFractionMonotoneInTime) {
  const ClosedFormModel m(params());
  const double t1 = hours(24.0);
  double prev = 1.0;
  for (double t2 = 60.0; t2 <= hours(6.0); t2 *= 2.0) {
    const double rem = m.remaining_fraction(Seconds{t1}, Seconds{t2}, recovery(Volts{-0.3}, Celsius{110.0}));
    EXPECT_LE(rem, prev);
    prev = rem;
  }
}

TEST(ClosedFormModel, RecoveryOrderingMatchesFig8) {
  // Sample early in the recovery (20 min), before the strongest conditions
  // saturate at the permanent floor; Fig. 8's separation is largest there.
  const ClosedFormModel m(params());
  const double t1 = hours(24.0);
  const double t2 = hours(1.0 / 3.0);
  const double hot_neg = m.remaining_fraction(Seconds{t1}, Seconds{t2}, recovery(Volts{-0.3}, Celsius{110.0}));
  const double hot = m.remaining_fraction(Seconds{t1}, Seconds{t2}, recovery(Volts{0.0}, Celsius{110.0}));
  const double neg = m.remaining_fraction(Seconds{t1}, Seconds{t2}, recovery(Volts{-0.3}, Celsius{20.0}));
  const double passive = m.remaining_fraction(Seconds{t1}, Seconds{t2}, recovery(Volts{0.0}, Celsius{20.0}));
  EXPECT_LT(hot_neg, hot);
  EXPECT_LT(hot, neg);
  EXPECT_LT(neg, passive);
  // At the 6 h endpoint the ordering is non-strict (saturation).
  const double t6 = hours(6.0);
  EXPECT_LE(m.remaining_fraction(Seconds{t1}, Seconds{t6}, recovery(Volts{-0.3}, Celsius{110.0})),
            m.remaining_fraction(Seconds{t1}, Seconds{t6}, recovery(Volts{0.0}, Celsius{110.0})));
  EXPECT_LE(m.remaining_fraction(Seconds{t1}, Seconds{t6}, recovery(Volts{0.0}, Celsius{110.0})),
            m.remaining_fraction(Seconds{t1}, Seconds{t6}, recovery(Volts{-0.3}, Celsius{20.0})));
}

TEST(ClosedFormModel, AcceleratedRecoveryHitsHeadline) {
  // All accelerated cases recover >= ~85 % of the damage in t1/4.
  const ClosedFormModel m(params());
  const double t1 = hours(24.0);
  const double t2 = hours(6.0);
  for (const auto& cond :
       {recovery(Volts{-0.3}, Celsius{110.0}), recovery(Volts{0.0}, Celsius{110.0}), recovery(Volts{-0.3}, Celsius{20.0})}) {
    EXPECT_LT(m.remaining_fraction(Seconds{t1}, Seconds{t2}, cond), 0.18)
        << cond.describe();
  }
  // Passive recovery is clearly partial.
  EXPECT_GT(m.remaining_fraction(Seconds{t1}, Seconds{t2}, recovery(Volts{0.0}, Celsius{20.0})), 0.35);
}

TEST(ClosedFormModel, AcAmplitudeFactorMatchesEquilibriumAnalysis) {
  const ClosedFormModel m(params());
  const double f = m.ac_amplitude_factor(ac_stress(Volts{1.2}, Celsius{110.0}));
  EXPECT_GT(f, 0.15);
  EXPECT_LT(f, 0.45);
  EXPECT_DOUBLE_EQ(m.ac_amplitude_factor(dc_stress(Volts{1.2}, Celsius{110.0})), 1.0);
}

TEST(ClosedFormModel, MatchesEnsembleDuringStress) {
  // The closed form derived via from_td() must track the trap ensemble it
  // abstracts — this is the "model validation" of Sec. 5 in miniature.
  const ClosedFormModel m(params());
  TrapEnsemble e(default_td_parameters(), 42);
  const auto cond = ref_stress();
  double worst_rel = 0.0;
  double elapsed = 0.0;
  for (int i = 0; i < 24; ++i) {
    e.evolve(cond, Seconds{hours(1.0)});
    elapsed += hours(1.0);
    const double model = m.stress_delta_vth(Seconds{elapsed}, cond);
    const double ensemble = e.delta_vth();
    worst_rel = std::max(worst_rel,
                         std::abs(model - ensemble) / std::max(ensemble, 1e-9));
  }
  EXPECT_LT(worst_rel, 0.30);
}

TEST(ClosedFormAger, MatchesStatelessModelOnSingleStress) {
  const auto p = params();
  ClosedFormAger ager(p);
  const ClosedFormModel m(p);
  ager.evolve(ref_stress(), Seconds{hours(24.0)});
  EXPECT_NEAR(ager.delta_vth(), m.stress_delta_vth(Seconds{hours(24.0)}, ref_stress()),
              ager.delta_vth() * 1e-9);
}

TEST(ClosedFormAger, SegmentedStressMatchesSingleSegment) {
  const auto p = params();
  ClosedFormAger once(p);
  ClosedFormAger stepped(p);
  once.evolve(ref_stress(), Seconds{hours(24.0)});
  for (int i = 0; i < 96; ++i) stepped.evolve(ref_stress(), Seconds{hours(0.25)});
  EXPECT_NEAR(once.delta_vth(), stepped.delta_vth(),
              once.delta_vth() * 1e-6);
}

TEST(ClosedFormAger, SegmentedRecoveryMatchesSingleSegment) {
  const auto p = params();
  ClosedFormAger once(p);
  ClosedFormAger stepped(p);
  once.evolve(ref_stress(), Seconds{hours(24.0)});
  stepped.evolve(ref_stress(), Seconds{hours(24.0)});
  once.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  for (int i = 0; i < 24; ++i) {
    stepped.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(0.25)});
  }
  EXPECT_NEAR(once.delta_vth(), stepped.delta_vth(),
              std::max(once.delta_vth(), 1e-6) * 1e-6);
}

TEST(ClosedFormAger, RecoveryThenRestressRefillsQuickly) {
  // Fig. 9 behaviour: after healing, re-stress initially degrades fast
  // (fast traps refill) — the ager must show accelerated early re-aging.
  const auto p = params();
  ClosedFormAger ager(p);
  ager.evolve(ref_stress(), Seconds{hours(24.0)});
  const double aged = ager.delta_vth();
  ager.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  const double healed = ager.delta_vth();
  EXPECT_LT(healed, aged * 0.3);
  ager.evolve(ref_stress(), Seconds{hours(1.0)});
  const double restressed = ager.delta_vth();
  // One hour of re-stress regains a large chunk of the previous damage —
  // much more than one fresh hour would produce relative to 24 h.
  EXPECT_GT(restressed, healed);
}

TEST(ClosedFormAger, PermanentPartGrowsAndPersists) {
  const auto p = params();
  ClosedFormAger ager(p);
  ager.evolve(ref_stress(), Seconds{hours(24.0)});
  const double perm = ager.permanent_delta_vth();
  EXPECT_GT(perm, 0.0);
  ager.evolve(recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(1000.0)});
  EXPECT_NEAR(ager.delta_vth(), perm, perm * 1e-6);
  EXPECT_DOUBLE_EQ(ager.permanent_delta_vth(), perm);
}

TEST(ClosedFormAger, MatchesEnsembleThroughStressRecoverCycle) {
  const auto p = params();
  ClosedFormAger ager(p);
  TrapEnsemble e(default_td_parameters(), 77);
  const auto s = ref_stress();
  const auto r = recovery(Volts{-0.3}, Celsius{110.0});
  double peak = 0.0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ager.evolve(s, Seconds{hours(8.0)});
    e.evolve(s, Seconds{hours(8.0)});
    peak = std::max(peak, e.delta_vth());
    ager.evolve(r, Seconds{hours(2.0)});
    e.evolve(r, Seconds{hours(2.0)});
  }
  // Post-recovery residues are small numbers; judge agreement against the
  // peak stressed magnitude (what the first-order model is "first order"
  // relative to), as the paper's Fig. 8 overlays do.
  EXPECT_LT(std::abs(ager.delta_vth() - e.delta_vth()), 0.35 * peak);
}

TEST(ClosedFormAger, ResetRestoresFresh) {
  ClosedFormAger ager(params());
  ager.evolve(ref_stress(), Seconds{hours(24.0)});
  ager.reset();
  EXPECT_DOUBLE_EQ(ager.delta_vth(), 0.0);
  EXPECT_DOUBLE_EQ(ager.permanent_delta_vth(), 0.0);
}

TEST(ClosedFormParameters, ValidateRejectsNonsense) {
  auto p = params();
  p.beta_ref_v = Volts{-1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = params();
  p.permanent_ratio = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = params();
  p.tau_stress_s = Seconds{0.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace ash::bti
