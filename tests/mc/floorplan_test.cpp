#include "ash/mc/floorplan.h"

#include <gtest/gtest.h>

namespace ash::mc {
namespace {

TEST(Floorplan, DefaultIsEightCoresPlusCache) {
  const Floorplan fp;
  EXPECT_EQ(fp.core_count(), 8);
  EXPECT_EQ(fp.node_count(), 9);
  EXPECT_EQ(fp.cache_node(), 8);
  EXPECT_EQ(fp.kind(0), NodeKind::kCore);
  EXPECT_EQ(fp.kind(8), NodeKind::kCache);
}

TEST(Floorplan, GridCoordinates) {
  const Floorplan fp;
  EXPECT_EQ(fp.row_of(0), 0);
  EXPECT_EQ(fp.row_of(3), 0);
  EXPECT_EQ(fp.row_of(4), 1);
  EXPECT_EQ(fp.col_of(5), 1);
}

TEST(Floorplan, AdjacencyIsSymmetric) {
  const Floorplan fp;
  for (int a = 0; a < fp.node_count(); ++a) {
    for (int b : fp.neighbors(a)) {
      EXPECT_TRUE(fp.adjacent(b, a)) << a << " " << b;
    }
  }
}

TEST(Floorplan, NoSelfOrDiagonalAdjacency) {
  const Floorplan fp;
  EXPECT_FALSE(fp.adjacent(0, 0));
  EXPECT_FALSE(fp.adjacent(0, 5));  // diagonal
  EXPECT_FALSE(fp.adjacent(0, 2));  // two apart in a row
}

TEST(Floorplan, CoreGridFourNeighbourhood) {
  const Floorplan fp;
  EXPECT_TRUE(fp.adjacent(0, 1));   // row neighbours
  EXPECT_TRUE(fp.adjacent(0, 4));   // column neighbours
  EXPECT_TRUE(fp.adjacent(2, 6));
}

TEST(Floorplan, CacheTouchesBottomRowOnly) {
  const Floorplan fp;
  for (int c = 0; c < 4; ++c) EXPECT_FALSE(fp.adjacent(c, fp.cache_node()));
  for (int c = 4; c < 8; ++c) EXPECT_TRUE(fp.adjacent(c, fp.cache_node()));
}

TEST(Floorplan, CoreNeighborCounts) {
  const Floorplan fp;
  EXPECT_EQ(fp.core_neighbor_count(0), 2);  // corner
  EXPECT_EQ(fp.core_neighbor_count(1), 3);  // edge
  EXPECT_EQ(fp.core_neighbor_count(5), 3);  // bottom edge (cache excluded)
}

TEST(Floorplan, ScalesToWiderGrids) {
  const Floorplan fp(6);
  EXPECT_EQ(fp.core_count(), 12);
  EXPECT_TRUE(fp.adjacent(5, 11));
  EXPECT_THROW(Floorplan{1}, std::invalid_argument);
}

}  // namespace
}  // namespace ash::mc
