#include "ash/mc/reliability.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ash/mc/system.h"

namespace ash::mc {
namespace {

constexpr double kYearS = 365.25 * 86400.0;

/// Inner-policy probe: records the sanitized context the manager hands
/// down and optionally returns a canned assignment.
class StubScheduler final : public Scheduler {
 public:
  std::string name() const override { return "stub"; }
  Assignment assign(const SchedulerContext& ctx) override {
    last_ctx = ctx;
    ++calls;
    if (!canned.empty()) return canned;
    const int n = ctx.floorplan->core_count();
    Assignment a(static_cast<std::size_t>(n), CoreMode::kActive);
    for (int i = 0; i < n - ctx.cores_needed; ++i) {
      a[static_cast<std::size_t>(n - 1 - i)] = CoreMode::kSleepRejuvenate;
    }
    return a;
  }
  Assignment canned;
  SchedulerContext last_ctx;
  int calls = 0;
};

/// Context with slightly drifting readings so the frozen-sensor detector
/// never fires by accident.
SchedulerContext context(int interval, int need = 6, double aging = 2e-3) {
  static const Floorplan fp;
  SchedulerContext ctx;
  ctx.interval_index = interval;
  ctx.cores_needed = need;
  ctx.floorplan = &fp;
  ctx.delta_vth.resize(8);
  for (int i = 0; i < 8; ++i) {
    ctx.delta_vth[static_cast<std::size_t>(i)] =
        aging + 1e-6 * interval + 1e-7 * i;
  }
  ctx.status.assign(8, CoreStatus{});
  return ctx;
}

TEST(ReliabilityManager, ValidatesConfig) {
  StubScheduler stub;
  ReliabilityConfig bad;
  bad.fail_after_intervals = 0;
  EXPECT_THROW(ReliabilityManager(stub, bad), std::invalid_argument);
  bad = ReliabilityConfig{};
  bad.quarantine_release_frac = 1.2;  // >= enter
  EXPECT_THROW(ReliabilityManager(stub, bad), std::invalid_argument);
  bad = ReliabilityConfig{};
  bad.telemetry_ema_alpha = 0.0;
  EXPECT_THROW(ReliabilityManager(stub, bad), std::invalid_argument);
}

TEST(ReliabilityManager, NameWrapsInner) {
  StubScheduler stub;
  ReliabilityManager m(stub);
  EXPECT_EQ(m.name(), "reliability(stub)");
}

TEST(ReliabilityManager, FiltersNaNBeforeTheInnerPolicy) {
  StubScheduler stub;
  ReliabilityReport report;
  ReliabilityManager m(stub, {}, &report);
  m.assign(context(0));
  auto ctx = context(1);
  ctx.delta_vth[0] = std::nan("");
  m.assign(ctx);
  ASSERT_EQ(stub.calls, 2);
  for (double v : stub.last_ctx.delta_vth) EXPECT_FALSE(std::isnan(v));
  // The NaN core's estimate held at the last good filtered value.
  EXPECT_NEAR(stub.last_ctx.delta_vth[0], 2e-3, 1e-4);
  EXPECT_EQ(report.telemetry_rejections, 1);
}

TEST(ReliabilityManager, RejectsFrozenSensorReadings) {
  StubScheduler stub;
  ReliabilityReport report;
  ReliabilityManager m(stub, {}, &report);
  auto ctx = context(0);
  m.assign(ctx);
  // Bit-identical repeat on every core: all eight rejected as frozen.
  m.assign(ctx);
  EXPECT_EQ(report.telemetry_rejections, 8);
  // Honest drift is accepted again.
  m.assign(context(2));
  EXPECT_EQ(report.telemetry_rejections, 8);
}

TEST(ReliabilityManager, HeartbeatQuarantineNeedsAStreak) {
  StubScheduler stub;
  ReliabilityReport report;
  ReliabilityManager m(stub, {}, &report);  // fail_after_intervals = 2
  auto ctx = context(0);
  ctx.status[3].responsive = false;  // one blip: a transient
  m.assign(ctx);
  EXPECT_FALSE(m.quarantined(3));
  auto ctx1 = context(1);
  m.assign(ctx1);  // heartbeat back: streak resets
  auto ctx2 = context(2);
  ctx2.status[3].responsive = false;
  m.assign(ctx2);
  EXPECT_FALSE(m.quarantined(3));
  auto ctx3 = context(3);
  ctx3.status[3].responsive = false;  // second consecutive miss: dead
  const auto out = m.assign(ctx3);
  EXPECT_TRUE(m.quarantined(3));
  EXPECT_EQ(out[3], CoreMode::kSleepPassive);
  EXPECT_EQ(report.cores_quarantined, 1);
}

TEST(ReliabilityManager, QuarantineThenFailoverKeepsDemandWhole) {
  StubScheduler stub;
  // Inner policy insists on sleeping cores 6 and 7.
  stub.canned.assign(8, CoreMode::kActive);
  stub.canned[6] = CoreMode::kSleepRejuvenate;
  stub.canned[7] = CoreMode::kSleepRejuvenate;
  ReliabilityReport report;
  ReliabilityManager m(stub, {}, &report);
  for (int k = 0; k < 2; ++k) {
    auto ctx = context(k);
    ctx.status[0].responsive = false;
    m.assign(ctx);
  }
  ASSERT_TRUE(m.quarantined(0));
  auto ctx = context(2);
  ctx.status[0].responsive = false;
  const auto out = m.assign(ctx);
  // Core 0 is forced out; a spare sleeper is woken to keep 6 cores active.
  EXPECT_EQ(out[0], CoreMode::kSleepPassive);
  EXPECT_EQ(active_count(out), 6);
  EXPECT_GE(report.failovers, 1);
  EXPECT_GE(report.assignments_repaired, 1);
  EXPECT_EQ(m.healthy_count(), 7);
}

TEST(ReliabilityManager, MarginQuarantineEntersHighReleasesLow) {
  StubScheduler stub;
  ReliabilityReport report;
  ReliabilityManager m(stub, {}, &report);  // margin 12 mV, enter 1.05x
  auto hot = context(0);
  hot.delta_vth[2] = 20e-3;  // way past 12.6 mV entry
  const auto out = m.assign(hot);
  EXPECT_TRUE(m.quarantined(2));
  EXPECT_EQ(out[2], CoreMode::kSleepRejuvenate);  // deep rejuvenation
  EXPECT_EQ(report.margin_quarantines, 1);
  // Healing: feed low readings until the EMA sinks under 0.7 x margin.
  bool released = false;
  for (int k = 1; k < 40 && !released; ++k) {
    auto cool = context(k);
    cool.delta_vth[2] = 1e-3 + 1e-6 * k;
    m.assign(cool);
    released = !m.quarantined(2);
  }
  EXPECT_TRUE(released);
  EXPECT_EQ(report.quarantine_releases, 1);
}

TEST(ReliabilityManager, StuckRailMeansPassiveOnly) {
  StubScheduler stub;
  stub.canned.assign(8, CoreMode::kActive);
  stub.canned[5] = CoreMode::kSleepRejuvenate;
  ReliabilityReport report;
  ReliabilityManager m(stub, {}, &report);
  auto ctx = context(0, 7);
  ctx.status[5].rail_ok = false;
  const auto out = m.assign(ctx);
  EXPECT_TRUE(m.passive_only(5));
  EXPECT_EQ(out[5], CoreMode::kSleepPassive);  // rejuvenate downgraded
  EXPECT_EQ(report.rails_flagged, 1);
  EXPECT_GE(report.rail_downgrades, 1);
  // Flagged once, not every interval.
  m.assign(context(1, 7));
  EXPECT_EQ(report.rails_flagged, 1);
}

TEST(ReliabilityManager, ThermalGuardTripsAfterSustainedOvertemp) {
  StubScheduler stub;
  ReliabilityConfig cfg;
  cfg.thermal_trip_intervals = 3;
  cfg.thermal_cooldown_intervals = 2;
  ReliabilityReport report;
  ReliabilityManager m(stub, cfg, &report);
  int k = 0;
  for (; k < 2; ++k) {
    auto ctx = context(k);
    ctx.temp_c.assign(8, Celsius{80.0});
    ctx.temp_c[1] = Celsius{110.0};
    const auto out = m.assign(ctx);
    EXPECT_EQ(out[1], CoreMode::kActive) << "tripped too early";
  }
  auto ctx = context(k++);
  ctx.temp_c.assign(8, Celsius{80.0});
  ctx.temp_c[1] = Celsius{110.0};
  auto out = m.assign(ctx);  // third consecutive over-temp: trip
  EXPECT_EQ(out[1], CoreMode::kSleepPassive);
  EXPECT_EQ(report.thermal_trips, 1);
  // Cooldown holds for the configured window even at normal temperature.
  ctx = context(k++);
  ctx.temp_c.assign(8, Celsius{70.0});
  out = m.assign(ctx);
  EXPECT_EQ(out[1], CoreMode::kSleepPassive);
  ctx = context(k++);
  ctx.temp_c.assign(8, Celsius{70.0});
  out = m.assign(ctx);
  EXPECT_EQ(out[1], CoreMode::kActive);  // back in service
  EXPECT_EQ(report.thermal_trips, 1);
}

TEST(ReliabilityManager, RepairsWrongSizedInnerOutput) {
  StubScheduler stub;
  stub.canned.assign(3, CoreMode::kActive);  // wrong size
  ReliabilityReport report;
  ReliabilityManager m(stub, {}, &report);
  const auto out = m.assign(context(0));
  EXPECT_EQ(out.size(), 8u);
  EXPECT_GE(report.assignments_repaired, 1);
}

TEST(ReliabilityManager, ClampsDemandToHealthyCapacity) {
  StubScheduler stub;
  ReliabilityManager m(stub);
  auto ctx = context(0);
  ctx.cores_needed = 99;
  m.assign(ctx);
  EXPECT_EQ(stub.last_ctx.cores_needed, 8);
  EXPECT_EQ(stub.last_ctx.demand_deficit, 91);
}

// ---------------------------------------------------------------------------
// Fault-aware system integration (the acceptance scenario).
// ---------------------------------------------------------------------------

// Fig. 10 study under faults.  The margin sits at 8 mV rather than the
// ideal-study 9 mV: permanent deaths turn cores into dark silicon, the
// fleet runs cooler, and by two years even the all-active survivors stay
// under 9 mV — 8 mV restores a margin both policies can reach so their
// time-to-first-margin ordering is observable.
SystemConfig fig10_config() {
  SystemConfig cfg;
  cfg.horizon_s = Seconds{2.0 * kYearS};
  cfg.margin_delta_vth_v = Volts{8e-3};
  return cfg;
}

ReliabilityConfig fig10_reliability() {
  ReliabilityConfig cfg;
  cfg.margin_delta_vth_v = Volts{8e-3};
  return cfg;
}

TEST(FaultAwareSystem, IdealPlanReproducesTheIdealRun) {
  auto cfg = fig10_config();
  cfg.horizon_s = Seconds{0.25 * kYearS};  // keep it quick
  HeaterAwareCircadianScheduler a;
  HeaterAwareCircadianScheduler b;
  const auto ideal = simulate_system(cfg, a);
  ReliabilityReport report;
  const auto faulted = simulate_system(cfg, b, CoreFaultPlan::none(), &report);
  EXPECT_DOUBLE_EQ(faulted.throughput_core_s.value(), ideal.throughput_core_s.value());
  EXPECT_DOUBLE_EQ(faulted.worst_end_delta_vth_v.value(),
                   ideal.worst_end_delta_vth_v.value());
  EXPECT_DOUBLE_EQ(faulted.demand_deficit_core_s.value(), 0.0);
  EXPECT_TRUE(report.clean());
}

TEST(FaultAwareSystem, DefaultSeedKillsACoreMidMission) {
  const auto plan = CoreFaultPlan::representative();
  HeaterAwareCircadianScheduler inner;
  ReliabilityReport report;
  ReliabilityManager managed(inner, fig10_reliability(), &report);
  const auto r = simulate_system(fig10_config(), managed, plan, &report);
  EXPECT_GE(report.permanent_deaths, 1);
  // The whole horizon completed: delivered + deficit == demanded.
  const double demanded = 6.0 * std::floor(2.0 * kYearS / (6.0 * 3600.0)) *
                          6.0 * 3600.0;
  EXPECT_NEAR((r.throughput_core_s + r.demand_deficit_core_s).value(), demanded,
              1.0);
  // Every injected fault was met by a manager response.
  EXPECT_TRUE(report.accounted()) << report.render();
}

TEST(FaultAwareSystem, ManagedCircadianOutlivesManagedAllActive) {
  const auto plan = CoreFaultPlan::representative();
  const auto cfg = fig10_config();

  AllActiveScheduler all_inner;
  ReliabilityReport all_report;
  ReliabilityManager all_managed(all_inner, fig10_reliability(), &all_report);
  const auto r_all = simulate_system(cfg, all_managed, plan, &all_report);

  HeaterAwareCircadianScheduler cir_inner;
  ReliabilityReport cir_report;
  ReliabilityManager cir_managed(cir_inner, fig10_reliability(), &cir_report);
  const auto r_cir = simulate_system(cfg, cir_managed, plan, &cir_report);

  // The all-active fleet blows the aging budget mid-mission even with the
  // manager (quarantine enters only after the crossing, by design); the
  // heater-aware circadian fleet holds out months longer.
  EXPECT_TRUE(r_all.margin_exceeded);
  EXPECT_GT(r_cir.time_to_first_margin_s, r_all.time_to_first_margin_s);
  EXPECT_TRUE(all_report.accounted()) << all_report.render();
  EXPECT_TRUE(cir_report.accounted()) << cir_report.render();
}

TEST(FaultAwareSystem, UnmanagedFleetDegradesUnderTheSamePlan) {
  const auto plan = CoreFaultPlan::representative();
  const auto cfg = fig10_config();

  HeaterAwareCircadianScheduler raw;
  ReliabilityReport raw_report;
  const auto r_raw = simulate_system(cfg, raw, plan, &raw_report);

  HeaterAwareCircadianScheduler inner;
  ReliabilityReport managed_report;
  ReliabilityManager managed(inner, fig10_reliability(), &managed_report);
  const auto r_managed = simulate_system(cfg, managed, plan, &managed_report);

  // The raw policy keeps scheduling dead cores (it cannot see heartbeats),
  // so work is lost every interval after the first death; the manager
  // fails over instead.
  EXPECT_GE(raw_report.permanent_deaths, 1);
  EXPECT_GT(raw_report.core_intervals_lost, 0);
  EXPECT_GT(r_raw.demand_deficit_core_s, r_managed.demand_deficit_core_s);
  EXPECT_GT(r_managed.throughput_core_s, r_raw.throughput_core_s);
  EXPECT_FALSE(raw_report.accounted());
}

}  // namespace
}  // namespace ash::mc
