#include "ash/mc/fault.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ash::mc {
namespace {

constexpr double kIntervalS = 6.0 * 3600.0;

std::vector<double> flat_truth(double v = 5e-3) {
  return std::vector<double>(8, v);
}

TEST(CoreFaultPlan, PresetsByName) {
  EXPECT_TRUE(CoreFaultPlan::by_name("none").ideal());
  EXPECT_FALSE(CoreFaultPlan::by_name("representative").ideal());
  EXPECT_FALSE(CoreFaultPlan::by_name("harsh").ideal());
  EXPECT_THROW(CoreFaultPlan::by_name("nope"), std::invalid_argument);
  // Harsh dominates representative on every hazard.
  const auto rep = CoreFaultPlan::representative();
  const auto harsh = CoreFaultPlan::harsh();
  EXPECT_GT(harsh.transient_per_core_day, rep.transient_per_core_day);
  EXPECT_GT(harsh.random_death_per_core_year, rep.random_death_per_core_year);
  EXPECT_GT(harsh.sensor_dropout_probability, rep.sensor_dropout_probability);
}

TEST(CoreFaultPlan, DefaultIsIdeal) {
  CoreFaultPlan p;
  EXPECT_TRUE(p.ideal());
  p.sensor_noise_v = Volts{1e-3};
  EXPECT_FALSE(p.ideal());
}

TEST(CoreFaultModel, ValidatesArguments) {
  EXPECT_THROW(CoreFaultModel(CoreFaultPlan{}, 0, Seconds{kIntervalS}),
               std::invalid_argument);
  EXPECT_THROW(CoreFaultModel(CoreFaultPlan{}, 8, Seconds{0.0}), std::invalid_argument);
  CoreFaultModel m(CoreFaultPlan{}, 8, Seconds{kIntervalS});
  EXPECT_THROW(m.begin_interval(0, std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST(CoreFaultModel, IdealPlanIsTransparent) {
  ReliabilityReport report;
  CoreFaultModel m(CoreFaultPlan::none(), 8, Seconds{kIntervalS}, &report);
  const auto truth = flat_truth();
  for (long k = 0; k < 50; ++k) {
    m.begin_interval(k, truth);
    for (int i = 0; i < 8; ++i) {
      EXPECT_FALSE(m.dead(i));
      EXPECT_TRUE(m.status(i).responsive);
      EXPECT_TRUE(m.status(i).rail_ok);
      EXPECT_DOUBLE_EQ(m.measured_delta_vth(i, Volts{truth[static_cast<std::size_t>(i)]}),
                       truth[static_cast<std::size_t>(i)]);
      EXPECT_EQ(m.effective_mode(i, CoreMode::kSleepRejuvenate),
                CoreMode::kSleepRejuvenate);
    }
  }
  EXPECT_EQ(m.alive_count(), 8);
  EXPECT_TRUE(report.clean());
}

TEST(CoreFaultModel, SameSeedReplaysBitIdentically) {
  const auto plan = CoreFaultPlan::harsh();
  ReliabilityReport ra;
  ReliabilityReport rb;
  CoreFaultModel a(plan, 8, Seconds{kIntervalS}, &ra);
  CoreFaultModel b(plan, 8, Seconds{kIntervalS}, &rb);
  const long intervals = 400;
  for (long k = 0; k < intervals; ++k) {
    // Aging trajectory rises over the run so the wearout hazard engages.
    const auto truth = flat_truth(1e-3 + 10e-3 * static_cast<double>(k) /
                                             static_cast<double>(intervals));
    a.begin_interval(k, truth);
    b.begin_interval(k, truth);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(a.dead(i), b.dead(i)) << "core " << i << " interval " << k;
      ASSERT_EQ(a.transient_faulted(i), b.transient_faulted(i));
      ASSERT_EQ(a.rail_stuck(i), b.rail_stuck(i));
      const double ma =
          a.measured_delta_vth(i, Volts{truth[static_cast<std::size_t>(i)]});
      const double mb =
          b.measured_delta_vth(i, Volts{truth[static_cast<std::size_t>(i)]});
      // NaN == NaN is false; compare the bit pattern of the channel.
      ASSERT_EQ(std::isnan(ma), std::isnan(mb));
      if (!std::isnan(ma)) {
        ASSERT_DOUBLE_EQ(ma, mb);
      }
    }
  }
  EXPECT_EQ(ra, rb);
  EXPECT_FALSE(ra.clean());  // harsh over 100 days must inject something
}

TEST(CoreFaultModel, SeedChangesTheHistory) {
  auto plan = CoreFaultPlan::harsh();
  ReliabilityReport ra;
  CoreFaultModel a(plan, 8, Seconds{kIntervalS}, &ra);
  plan.seed ^= 0x9E3779B97F4A7C15ull;
  ReliabilityReport rb;
  CoreFaultModel b(plan, 8, Seconds{kIntervalS}, &rb);
  const auto truth = flat_truth();
  for (long k = 0; k < 400; ++k) {
    a.begin_interval(k, truth);
    b.begin_interval(k, truth);
    for (int i = 0; i < 8; ++i) {
      a.measured_delta_vth(i, Volts{truth[static_cast<std::size_t>(i)]});
      b.measured_delta_vth(i, Volts{truth[static_cast<std::size_t>(i)]});
    }
  }
  EXPECT_NE(ra, rb);
}

TEST(CoreFaultModel, DeadCoresStayDeadAndReadNaN) {
  auto plan = CoreFaultPlan::none();
  plan.random_death_per_core_year = 50.0;  // deaths come quickly
  ReliabilityReport report;
  CoreFaultModel m(plan, 8, Seconds{kIntervalS}, &report);
  const auto truth = flat_truth();
  int first_dead = -1;
  for (long k = 0; k < 200 && first_dead < 0; ++k) {
    m.begin_interval(k, truth);
    for (int i = 0; i < 8; ++i) {
      if (m.dead(i)) {
        first_dead = i;
        break;
      }
    }
  }
  ASSERT_GE(first_dead, 0) << "hazard of 50/core-year produced no death";
  EXPECT_FALSE(m.status(first_dead).responsive);
  EXPECT_TRUE(std::isnan(m.measured_delta_vth(first_dead, Volts{5e-3})));
  EXPECT_LT(m.alive_count(), 8);
  const int deaths_so_far = report.permanent_deaths;
  // Death is permanent: the core never comes back.
  m.begin_interval(500, truth);
  EXPECT_TRUE(m.dead(first_dead));
  EXPECT_GE(report.permanent_deaths, deaths_so_far);
}

TEST(CoreFaultModel, WearHazardPrefersAgedCores) {
  // With only the wearout channel enabled, deaths should concentrate on
  // the aged half of the fleet.
  auto plan = CoreFaultPlan::none();
  plan.wear_death_per_core_year = 20.0;
  plan.wear_death_ref_v = Volts{12e-3};
  std::vector<double> truth(8, 0.5e-3);
  for (int i = 4; i < 8; ++i) truth[static_cast<std::size_t>(i)] = 15e-3;
  ReliabilityReport report;
  CoreFaultModel m(plan, 8, Seconds{kIntervalS}, &report);
  for (long k = 0; k < 400; ++k) m.begin_interval(k, truth);
  int young_dead = 0;
  int old_dead = 0;
  for (int i = 0; i < 8; ++i) {
    (i < 4 ? young_dead : old_dead) += m.dead(i) ? 1 : 0;
  }
  EXPECT_GT(old_dead, young_dead);
  EXPECT_EQ(report.wear_deaths, young_dead + old_dead);
}

TEST(CoreFaultModel, StuckRailDowngradesRejuvenationOnly) {
  auto plan = CoreFaultPlan::none();
  plan.stuck_rail_per_core_year = 80.0;
  ReliabilityReport report;
  CoreFaultModel m(plan, 8, Seconds{kIntervalS}, &report);
  const auto truth = flat_truth();
  int stuck = -1;
  for (long k = 0; k < 200 && stuck < 0; ++k) {
    m.begin_interval(k, truth);
    for (int i = 0; i < 8; ++i) {
      if (m.rail_stuck(i)) {
        stuck = i;
        break;
      }
    }
  }
  ASSERT_GE(stuck, 0);
  EXPECT_FALSE(m.status(stuck).rail_ok);
  EXPECT_TRUE(m.status(stuck).responsive);  // the core itself is fine
  EXPECT_EQ(m.effective_mode(stuck, CoreMode::kSleepRejuvenate),
            CoreMode::kSleepPassive);
  EXPECT_EQ(m.effective_mode(stuck, CoreMode::kActive), CoreMode::kActive);
  EXPECT_EQ(m.effective_mode(stuck, CoreMode::kSleepPassive),
            CoreMode::kSleepPassive);
  EXPECT_GE(report.stuck_rails, 1);
}

TEST(CoreFaultModel, StuckSensorRepeatsBitIdentically) {
  auto plan = CoreFaultPlan::none();
  plan.sensor_noise_v = Volts{0.5e-3};
  plan.sensor_stuck_probability = 1.0;  // freeze immediately
  plan.sensor_stuck_intervals = 4;
  ReliabilityReport report;
  CoreFaultModel m(plan, 8, Seconds{kIntervalS}, &report);
  m.begin_interval(0, flat_truth(2e-3));
  const double frozen = m.measured_delta_vth(0, Volts{2e-3});
  for (long k = 1; k <= 3; ++k) {
    // Truth moves; the frozen reading must not.
    m.begin_interval(k, flat_truth(2e-3 + 1e-3 * static_cast<double>(k)));
    EXPECT_DOUBLE_EQ(m.measured_delta_vth(0, Volts{2e-3 + 1e-3 * static_cast<double>(k)}),
                     frozen);
  }
  EXPECT_GE(report.sensor_stuck_windows, 1);
}

TEST(CoreFaultModel, SensorNoiseIsUnbiased) {
  auto plan = CoreFaultPlan::none();
  plan.sensor_noise_v = Volts{0.5e-3};
  CoreFaultModel m(plan, 8, Seconds{kIntervalS});
  const double truth = 6e-3;
  double sum = 0.0;
  int count = 0;
  for (long k = 0; k < 500; ++k) {
    m.begin_interval(k, flat_truth(truth));
    for (int i = 0; i < 8; ++i) {
      sum += m.measured_delta_vth(i, Volts{truth});
      ++count;
    }
  }
  // 4000 samples at sigma 0.5 mV: the mean sits within ~4 sigma/sqrt(n).
  EXPECT_NEAR(sum / count, truth, 4.0 * 0.5e-3 / std::sqrt(4000.0));
}

TEST(ReliabilityReport, MergeSumsAndTakesEarliestMargin) {
  ReliabilityReport a;
  a.permanent_deaths = 1;
  a.cores_quarantined = 1;
  a.healthy_margin_exceeded = true;
  a.healthy_time_to_first_margin_s = Seconds{5000.0};
  ReliabilityReport b;
  b.permanent_deaths = 2;
  b.telemetry_rejections = 7;
  b.healthy_time_to_first_margin_s = Seconds{3000.0};
  a.merge(b);
  EXPECT_EQ(a.permanent_deaths, 3);
  EXPECT_EQ(a.telemetry_rejections, 7);
  EXPECT_TRUE(a.healthy_margin_exceeded);
  EXPECT_DOUBLE_EQ(a.healthy_time_to_first_margin_s.value(), 3000.0);
  // 0 means "never recorded" and must not clobber a real crossing.
  ReliabilityReport c;
  a.merge(c);
  EXPECT_DOUBLE_EQ(a.healthy_time_to_first_margin_s.value(), 3000.0);
}

TEST(ReliabilityReport, AccountedMatchesResponsesToInjections) {
  ReliabilityReport r;
  EXPECT_TRUE(r.accounted());  // vacuously
  r.permanent_deaths = 2;
  EXPECT_FALSE(r.accounted());
  r.cores_quarantined = 2;
  EXPECT_TRUE(r.accounted());
  r.stuck_rails = 1;
  EXPECT_FALSE(r.accounted());
  r.rails_flagged = 1;
  r.sensor_dropouts = 5;
  r.telemetry_rejections = 4;
  EXPECT_FALSE(r.accounted());
  r.telemetry_rejections = 9;
  EXPECT_TRUE(r.accounted());
}

TEST(ReliabilityReport, RenderMentionsTheHeadlines) {
  ReliabilityReport r;
  r.permanent_deaths = 3;
  r.healthy_margin_exceeded = true;
  const auto text = r.render();
  EXPECT_NE(text.find("3 core death(s)"), std::string::npos);
  EXPECT_NE(text.find("EXCEEDED"), std::string::npos);
}

}  // namespace
}  // namespace ash::mc
