#include "ash/mc/workload.h"

#include <gtest/gtest.h>

#include "ash/mc/system.h"

namespace ash::mc {
namespace {

TEST(Workload, ConstantAlwaysReturnsTheSame) {
  const ConstantWorkload w(5);
  EXPECT_EQ(w.cores_needed(0, Seconds{0.0}), 5);
  EXPECT_EQ(w.cores_needed(1000, Seconds{9e9}), 5);
}

TEST(Workload, DiurnalDayNightPattern) {
  const DiurnalWorkload w(/*day=*/8, /*night=*/3);
  // Day: first 58 % of each 24 h period.
  EXPECT_EQ(w.cores_needed(0, Seconds{0.0}), 8);
  EXPECT_EQ(w.cores_needed(0, Seconds{10.0 * 3600.0}), 8);
  EXPECT_EQ(w.cores_needed(0, Seconds{20.0 * 3600.0}), 3);
  // Next day repeats.
  EXPECT_EQ(w.cores_needed(0, Seconds{24.0 * 3600.0 + 1.0}), 8);
  EXPECT_EQ(w.cores_needed(0, Seconds{24.0 * 3600.0 + 20.0 * 3600.0}), 3);
}

TEST(Workload, BurstyIsDeterministicPerInterval) {
  const BurstyWorkload w(2, 7, 42);
  const int first = w.cores_needed(3, Seconds{0.0});
  EXPECT_EQ(w.cores_needed(3, Seconds{0.0}), first);  // call-order independent
  EXPECT_GE(first, 2);
  EXPECT_LE(first, 7);
  // Different intervals vary.
  bool any_different = false;
  for (long k = 0; k < 50; ++k) {
    if (w.cores_needed(k, Seconds{0.0}) != first) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Workload, BurstyCoversItsRange) {
  const BurstyWorkload w(0, 3, 7);
  int lo = 99;
  int hi = -1;
  for (long k = 0; k < 500; ++k) {
    const int c = w.cores_needed(k, Seconds{0.0});
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 3);
}

SystemConfig quick_config() {
  SystemConfig c;
  c.horizon_s = Seconds{60.0 * 86400.0};  // two months
  return c;
}

TEST(WorkloadSystem, DiurnalDemandCreatesMoreSleepThanPeakDemand) {
  HeaterAwareCircadianScheduler s1;
  HeaterAwareCircadianScheduler s2;
  const auto cfg = quick_config();
  const DiurnalWorkload diurnal(8, 3);
  const ConstantWorkload peak(8);
  const auto r_diurnal = simulate_system(cfg, s1, diurnal);
  const auto r_peak = simulate_system(cfg, s2, peak);
  EXPECT_GT(r_diurnal.sleep_share, 0.15);
  EXPECT_LT(r_peak.sleep_share, 0.01);
  EXPECT_LT(r_diurnal.mean_end_delta_vth_v, r_peak.mean_end_delta_vth_v);
}

TEST(WorkloadSystem, ThroughputTracksDemand) {
  HeaterAwareCircadianScheduler s;
  auto cfg = quick_config();
  // Hourly intervals avoid aliasing the 58 % day fraction.
  cfg.interval_s = Seconds{3600.0};
  const DiurnalWorkload diurnal(8, 3);
  const auto r = simulate_system(cfg, s, diurnal);
  // Expected mean demand: (14 day-hours * 8 + 10 night-hours * 3) / 24.
  const double mean_active = r.throughput_core_s / cfg.horizon_s;
  EXPECT_NEAR(mean_active, (14.0 * 8.0 + 10.0 * 3.0) / 24.0, 0.25);
}

TEST(WorkloadSystem, DemandIsClampedToCoreCount) {
  HeaterAwareCircadianScheduler s;
  const ConstantWorkload absurd(999);
  const auto r = simulate_system(quick_config(), s, absurd);
  // Clamped to 8 cores: everything runs, nothing breaks.
  EXPECT_DOUBLE_EQ(r.sleep_share, 0.0);
}

TEST(WorkloadSystem, ConstantOverloadMatchesTwoArgOverload) {
  HeaterAwareCircadianScheduler s1;
  HeaterAwareCircadianScheduler s2;
  const auto cfg = quick_config();
  const ConstantWorkload w(cfg.cores_needed);
  const auto a = simulate_system(cfg, s1);
  const auto b = simulate_system(cfg, s2, w);
  EXPECT_DOUBLE_EQ(a.mean_end_delta_vth_v.value(), b.mean_end_delta_vth_v.value());
  EXPECT_DOUBLE_EQ(a.throughput_core_s.value(), b.throughput_core_s.value());
}

}  // namespace
}  // namespace ash::mc
