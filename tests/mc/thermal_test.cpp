#include "ash/mc/thermal.h"

#include <gtest/gtest.h>

namespace ash::mc {
namespace {

const Floorplan& fp() {
  static const Floorplan instance;
  return instance;
}

ThermalModel model(ThermalConfig c = {}) { return ThermalModel(fp(), c); }

std::vector<double> zero_powers() {
  return std::vector<double>(static_cast<std::size_t>(fp().node_count()), 0.0);
}

TEST(Thermal, NoPowerSitsAtAmbient) {
  const auto temps = model().solve_steady_state(zero_powers());
  for (double t : temps) EXPECT_NEAR(t, 45.0, 1e-9);
}

TEST(Thermal, PowerBalanceHolds) {
  // Total heat in == total heat out through the sink conductances.
  ThermalConfig cfg;
  const auto m = model(cfg);
  auto powers = zero_powers();
  powers[0] = 10.0;
  powers[5] = 7.0;
  powers[8] = 3.0;
  const auto temps = m.solve_steady_state(powers);
  double out_flux = 0.0;
  for (int i = 0; i < fp().node_count(); ++i) {
    const double g = fp().kind(i) == NodeKind::kCache
                         ? cfg.cache_to_sink_w_per_k
                         : cfg.core_to_sink_w_per_k;
    out_flux += g * (temps[static_cast<std::size_t>(i)] - cfg.ambient_c.value());
  }
  EXPECT_NEAR(out_flux, 20.0, 1e-9);
}

TEST(Thermal, HeatedNodeIsHottest) {
  auto powers = zero_powers();
  powers[2] = 12.0;
  const auto temps = model().solve_steady_state(powers);
  for (int i = 0; i < fp().node_count(); ++i) {
    if (i != 2) {
      EXPECT_LT(temps[static_cast<std::size_t>(i)], temps[2]);
    }
  }
}

TEST(Thermal, NeighborsOfAHotCoreAreWarm) {
  // The on-chip heater effect: a powered-off node adjacent to hot nodes
  // sits well above ambient.
  auto powers = zero_powers();
  for (int i = 0; i < 8; ++i) powers[static_cast<std::size_t>(i)] = 12.0;
  powers[2] = 0.5;  // core 2 sleeps amid active neighbours
  const auto temps = model().solve_steady_state(powers);
  EXPECT_GT(temps[2], 65.0);
  EXPECT_LT(temps[2], temps[1]);
}

TEST(Thermal, SleeperBetweenActivesBeatsCornerSleeper) {
  // Placement matters: a sleeper with three active core neighbours runs
  // hotter than a corner sleeper with two.
  auto powers_mid = zero_powers();
  for (int i = 0; i < 8; ++i) powers_mid[static_cast<std::size_t>(i)] = 12.0;
  powers_mid[1] = 0.5;  // edge core: 3 core neighbours
  auto powers_corner = powers_mid;
  powers_corner[1] = 12.0;
  powers_corner[0] = 0.5;  // corner core: 2 core neighbours
  const auto t_mid = model().solve_steady_state(powers_mid);
  const auto t_corner = model().solve_steady_state(powers_corner);
  EXPECT_GT(t_mid[1], t_corner[0]);
}

TEST(Thermal, LateralConductanceSpreadsHeat) {
  ThermalConfig isolated;
  isolated.lateral_w_per_k = 0.0;
  ThermalConfig coupled;
  auto powers = zero_powers();
  powers[0] = 12.0;
  const auto t_iso = model(isolated).solve_steady_state(powers);
  const auto t_cpl = model(coupled).solve_steady_state(powers);
  // Without lateral coupling the neighbour stays at ambient and the hot
  // node runs hotter.
  EXPECT_NEAR(t_iso[1], 45.0, 1e-9);
  EXPECT_GT(t_cpl[1], 50.0);
  EXPECT_GT(t_iso[0], t_cpl[0]);
}

TEST(Thermal, TransientConvergesToSteadyState) {
  const auto m = model();
  auto powers = zero_powers();
  powers[3] = 10.0;
  powers[6] = 10.0;
  const auto target = m.solve_steady_state(powers);
  std::vector<double> temps(static_cast<std::size_t>(fp().node_count()), 45.0);
  const double dt = 0.5 * m.max_stable_dt_s().value();
  for (int i = 0; i < 20000; ++i) temps = m.step(temps, powers, Seconds{dt});
  for (int i = 0; i < fp().node_count(); ++i) {
    EXPECT_NEAR(temps[static_cast<std::size_t>(i)],
                target[static_cast<std::size_t>(i)], 0.01);
  }
}

TEST(Thermal, StepRejectsUnstableDt) {
  const auto m = model();
  std::vector<double> temps(static_cast<std::size_t>(fp().node_count()), 45.0);
  EXPECT_THROW(m.step(temps, zero_powers(), Seconds{10.0 * m.max_stable_dt_s()}),
               std::invalid_argument);
  EXPECT_THROW(m.step(temps, zero_powers(), Seconds{0.0}), std::invalid_argument);
}

TEST(Thermal, ValidatesInputs) {
  EXPECT_THROW(model().solve_steady_state(std::vector<double>(3, 0.0)),
               std::invalid_argument);
  ThermalConfig bad;
  bad.core_to_sink_w_per_k = 0.0;
  EXPECT_THROW(model(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ash::mc
