#include "ash/mc/margin.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ash/bti/closed_form.h"
#include "ash/bti/condition.h"
#include "ash/util/units.h"

namespace ash::mc {
namespace {

bti::ClosedFormModel model() { return bti::ClosedFormModel({}); }

TEST(MarginOutlook, FreshDeviceUnderHarshStressEventuallyCrosses) {
  MarginQuery q;
  q.delta_vth = Volts{0.0};
  q.margin = Volts{5e-3};  // tight budget
  q.duty = 1.0;
  q.vdd = Volts{2.5};  // the paper's accelerated-stress overdrive regime
  q.temp = Celsius{110.0};
  q.horizon = Seconds{1e15};
  const MarginOutlook outlook = margin_outlook(model(), q);
  EXPECT_TRUE(outlook.crosses);
  EXPECT_GT(outlook.time_to_margin.value(), 0.0);
  EXPECT_LT(outlook.time_to_margin.value(), q.horizon.value());
}

TEST(MarginOutlook, AlreadyPastMarginCrossesImmediately) {
  MarginQuery q;
  q.delta_vth = Volts{13e-3};
  q.margin = Volts{12e-3};
  const MarginOutlook outlook = margin_outlook(model(), q);
  EXPECT_TRUE(outlook.crosses);
  EXPECT_EQ(outlook.time_to_margin.value(), 0.0);
}

TEST(MarginOutlook, GentleConditionIsRightCensoredAtHorizon) {
  MarginQuery q;
  q.delta_vth = Volts{1e-3};
  q.margin = Volts{12e-3};
  q.duty = 0.1;
  q.vdd = Volts{0.9};  // mild use condition
  q.temp = Celsius{25.0};
  q.horizon = units::hours(24.0);  // short horizon: no way it crosses
  const MarginOutlook outlook = margin_outlook(model(), q);
  EXPECT_FALSE(outlook.crosses);
  EXPECT_EQ(outlook.time_to_margin.value(), q.horizon.value());
}

TEST(MarginOutlook, MoreAgedDeviceCrossesSooner) {
  MarginQuery young;
  young.delta_vth = Volts{1e-3};
  young.margin = Volts{8e-3};
  young.duty = 1.0;
  young.vdd = Volts{2.5};
  young.temp = Celsius{110.0};
  young.horizon = Seconds{1e15};
  MarginQuery old = young;
  old.delta_vth = Volts{6e-3};
  const MarginOutlook young_outlook = margin_outlook(model(), young);
  const MarginOutlook old_outlook = margin_outlook(model(), old);
  ASSERT_TRUE(young_outlook.crosses);
  ASSERT_TRUE(old_outlook.crosses);
  EXPECT_LT(old_outlook.time_to_margin.value(),
            young_outlook.time_to_margin.value());
}

TEST(MarginOutlook, HigherDutyCrossesSooner) {
  MarginQuery busy;
  busy.delta_vth = Volts{2e-3};
  busy.margin = Volts{8e-3};
  busy.duty = 1.0;
  busy.vdd = Volts{2.5};
  busy.temp = Celsius{110.0};
  busy.horizon = Seconds{1e15};
  MarginQuery lazy = busy;
  lazy.duty = 0.25;
  const MarginOutlook busy_outlook = margin_outlook(model(), busy);
  const MarginOutlook lazy_outlook = margin_outlook(model(), lazy);
  ASSERT_TRUE(busy_outlook.crosses);
  if (lazy_outlook.crosses) {
    EXPECT_LT(busy_outlook.time_to_margin.value(),
              lazy_outlook.time_to_margin.value());
  }
}

TEST(MarginOutlook, AnswerIsBitDeterministic) {
  // Two fleet daemons (one chaos-ridden, one not) must answer a margin
  // query with identical bytes — which requires identical doubles here.
  MarginQuery q;
  q.delta_vth = Volts{3.3e-3};
  q.margin = Volts{12e-3};
  q.duty = 0.61803398874989484;
  q.vdd = Volts{2.1};
  q.temp = Celsius{97.5};
  q.horizon = Seconds{1e14};
  const MarginOutlook a = margin_outlook(model(), q);
  const MarginOutlook b = margin_outlook(model(), q);
  EXPECT_EQ(a.crosses, b.crosses);
  EXPECT_EQ(a.time_to_margin.value(), b.time_to_margin.value());
}

TEST(MarginOutlook, MalformedQueriesThrow) {
  MarginQuery q;
  q.duty = 1.5;
  EXPECT_THROW(margin_outlook(model(), q), std::invalid_argument);
  q = MarginQuery{};
  q.duty = -0.1;
  EXPECT_THROW(margin_outlook(model(), q), std::invalid_argument);
  q = MarginQuery{};
  q.margin = Volts{-1e-3};
  EXPECT_THROW(margin_outlook(model(), q), std::invalid_argument);
  q = MarginQuery{};
  q.horizon = Seconds{-1.0};
  EXPECT_THROW(margin_outlook(model(), q), std::invalid_argument);
  q = MarginQuery{};
  q.delta_vth = Volts{std::nan("")};
  EXPECT_THROW(margin_outlook(model(), q), std::invalid_argument);
}

TEST(MarginOutlook, ZeroDutyPureRecoveryNeverCrosses) {
  MarginQuery q;
  q.delta_vth = Volts{5e-3};
  q.margin = Volts{12e-3};
  q.duty = 0.0;  // pure recovery: no stress, no further growth
  q.horizon = Seconds{1e15};
  const MarginOutlook outlook = margin_outlook(model(), q);
  EXPECT_FALSE(outlook.crosses);
  EXPECT_EQ(outlook.time_to_margin.value(), q.horizon.value());
}

TEST(MarginOutlook, BatchedOverloadIsBitIdenticalToSingleCalls) {
  // A whole-shard query: many devices share a handful of schedules, which
  // is exactly the (condition, ceiling) hoisting case the overload exists
  // for.  The contract is bit-identity, not closeness.
  std::vector<MarginQuery> queries;
  const double duties[] = {0.0, 0.25, 0.25, 1.0};
  const double vdds[] = {1.2, 1.2, 2.5, 2.5};
  for (int i = 0; i < 64; ++i) {
    MarginQuery q;
    q.delta_vth = Volts{1e-4 * static_cast<double>(i)};
    q.margin = Volts{12e-3};
    q.duty = duties[i % 4];
    q.vdd = Volts{vdds[i % 4]};
    q.temp = Celsius{i % 2 == 0 ? 80.0 : 110.0};
    q.horizon = Seconds{1e15};
    queries.push_back(q);
  }
  const std::vector<MarginOutlook> batched = margin_outlook(model(), queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const MarginOutlook solo = margin_outlook(model(), queries[i]);
    EXPECT_EQ(batched[i].crosses, solo.crosses) << "query " << i;
    EXPECT_EQ(batched[i].time_to_margin.value(),
              solo.time_to_margin.value())
        << "query " << i;
  }
}

TEST(MarginOutlook, BatchedOverloadValidatesEveryQueryUpFront) {
  MarginQuery good;
  MarginQuery bad;
  bad.duty = 1.5;
  // All-or-nothing: one malformed query rejects the whole batch.
  EXPECT_THROW(margin_outlook(model(), std::vector<MarginQuery>{good, bad}),
               std::invalid_argument);
  EXPECT_TRUE(margin_outlook(model(), std::vector<MarginQuery>{}).empty());
}

}  // namespace
}  // namespace ash::mc
