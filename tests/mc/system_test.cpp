#include "ash/mc/system.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ash::mc {
namespace {

SystemConfig quick_config() {
  SystemConfig c;
  c.horizon_s = Seconds{0.5 * 365.25 * 86400.0};  // half a year keeps tests fast
  return c;
}

TEST(System, AllActiveNeverSleeps) {
  AllActiveScheduler s;
  const auto r = simulate_system(quick_config(), s);
  EXPECT_DOUBLE_EQ(r.sleep_share, 0.0);
  EXPECT_TRUE(std::isnan(r.mean_sleep_temp_c.value()));
  EXPECT_GT(r.worst_end_delta_vth_v.value(), 0.0);
}

TEST(System, ThroughputAccountsActiveCores) {
  const auto cfg = quick_config();
  AllActiveScheduler all;
  HeaterAwareCircadianScheduler circadian;
  const auto r_all = simulate_system(cfg, all);
  const auto r_cir = simulate_system(cfg, circadian);
  // All-active delivers 8/6 of the demanded throughput.
  EXPECT_NEAR(r_all.throughput_core_s / r_cir.throughput_core_s, 8.0 / 6.0,
              1e-6);
}

TEST(System, SleepingCoresAreHeatedByNeighbors) {
  // The Fig. 10 claim, measured: sleeping cores sit way above the 45 degC
  // ambient because the active neighbours heat them.
  HeaterAwareCircadianScheduler s;
  const auto r = simulate_system(quick_config(), s);
  EXPECT_GT(r.mean_sleep_temp_c.value(), 62.0);
  EXPECT_GT(r.sleep_share, 0.2);
  EXPECT_LT(r.sleep_share, 0.3);  // 2 of 8 cores
}

TEST(System, CircadianRejuvenationBeatsNoSleepOnAging) {
  const auto cfg = quick_config();
  AllActiveScheduler all;
  HeaterAwareCircadianScheduler circadian;
  const auto r_all = simulate_system(cfg, all);
  const auto r_cir = simulate_system(cfg, circadian);
  EXPECT_LT(r_cir.mean_end_delta_vth_v, r_all.mean_end_delta_vth_v);
}

TEST(System, RejuvenatingSleepBeatsPassiveSleep) {
  // With generous sleep budgets the neighbour heat alone heals everything
  // a nap can heal; the negative rail's edge shows when naps are scarce
  // relative to the accumulated damage.
  auto cfg = quick_config();
  cfg.cores_needed = 7;  // one sleeper: 42 h active between 6 h naps
  RoundRobinSleepScheduler passive(/*rejuvenate=*/false);
  RoundRobinSleepScheduler active(/*rejuvenate=*/true);
  const auto r_passive = simulate_system(cfg, passive);
  const auto r_active = simulate_system(cfg, active);
  EXPECT_LT(r_active.mean_end_delta_vth_v, r_passive.mean_end_delta_vth_v);
}

TEST(System, CircadianExtendsTimeToMargin) {
  auto cfg = quick_config();
  cfg.horizon_s = Seconds{2.0 * 365.25 * 86400.0};
  // Margin above the first-day log-law front-loading but below the
  // baseline's end-of-horizon aging, so only the baseline trips it.
  cfg.margin_delta_vth_v = Volts{9e-3};
  AllActiveScheduler all;
  HeaterAwareCircadianScheduler circadian;
  const auto r_all = simulate_system(cfg, all);
  const auto r_cir = simulate_system(cfg, circadian);
  // Baseline trips the margin inside the horizon; the circadian schedule
  // survives the whole (right-censored) horizon.
  ASSERT_TRUE(r_all.margin_exceeded);
  EXPECT_FALSE(r_cir.margin_exceeded);
  EXPECT_GT(r_cir.time_to_first_margin_s, r_all.time_to_first_margin_s);
}

TEST(System, TdpIsRespectedWhenCoresSleep) {
  auto cfg = quick_config();
  // 8 x 12 W + 3 W cache = 99 W > 90 W TDP; sleeping 2 cores brings it to
  // 76 W.
  AllActiveScheduler all;
  HeaterAwareCircadianScheduler circadian;
  const auto r_all = simulate_system(cfg, all);
  const auto r_cir = simulate_system(cfg, circadian);
  EXPECT_GT(r_all.tdp_violations, 0);
  EXPECT_EQ(r_cir.tdp_violations, 0);
}

TEST(System, PermanentWearIsFairUnderRotation) {
  // Instantaneous end-state aging depends on who slept last; the fairness
  // observable is the irreversible wear, which rotation must spread evenly.
  HeaterAwareCircadianScheduler s;
  const auto r = simulate_system(quick_config(), s);
  double lo = 1e9;
  double hi = 0.0;
  for (const Volts v : r.end_permanent_v) {
    lo = std::min(lo, v.value());
    hi = std::max(hi, v.value());
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi / lo, 1.3);
}

TEST(System, WorstTraceIsRecorded) {
  HeaterAwareCircadianScheduler s;
  const auto cfg = quick_config();
  const auto r = simulate_system(cfg, s);
  EXPECT_GE(r.worst_trace.size(), 50u);
  EXPECT_LE(r.worst_trace.t_end(), (cfg.horizon_s + cfg.interval_s).value());
}

TEST(System, MaxTempStaysPhysical) {
  AllActiveScheduler s;
  const auto r = simulate_system(quick_config(), s);
  EXPECT_GT(r.max_temp_c.value(), 60.0);
  EXPECT_LT(r.max_temp_c.value(), 120.0);
}

TEST(System, StarvingSchedulerIsAccountedNotRejected) {
  // A scheduler that starves the workload no longer aborts the study: the
  // undelivered demand is recorded as deficit and throughput is zero.
  class Starver final : public Scheduler {
   public:
    std::string name() const override { return "starver"; }
    Assignment assign(const SchedulerContext& ctx) override {
      return Assignment(
          static_cast<std::size_t>(ctx.floorplan->core_count()),
          CoreMode::kSleepPassive);
    }
  };
  Starver s;
  const auto cfg = quick_config();
  const auto r = simulate_system(cfg, s);
  EXPECT_DOUBLE_EQ(r.throughput_core_s.value(), 0.0);
  const double demanded =
      static_cast<double>(cfg.cores_needed) *
      std::floor(cfg.horizon_s / cfg.interval_s) * cfg.interval_s.value();
  EXPECT_DOUBLE_EQ(r.demand_deficit_core_s.value(), demanded);
}

TEST(System, IdealRunHasNoDeficit) {
  AllActiveScheduler s;
  const auto r = simulate_system(quick_config(), s);
  EXPECT_DOUBLE_EQ(r.demand_deficit_core_s.value(), 0.0);
}

TEST(System, ValidatesConfig) {
  auto bad = quick_config();
  bad.cores_needed = 99;
  AllActiveScheduler s;
  EXPECT_THROW(simulate_system(bad, s), std::invalid_argument);
  bad = quick_config();
  bad.interval_s = Seconds{0.0};
  EXPECT_THROW(simulate_system(bad, s), std::invalid_argument);
  bad = quick_config();
  bad.active_power_w = 0.1;
  EXPECT_THROW(simulate_system(bad, s), std::invalid_argument);
}

}  // namespace
}  // namespace ash::mc
