#include "ash/mc/scheduler.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace ash::mc {
namespace {

SchedulerContext context(int interval, int cores_needed,
                         std::vector<double> aging = {}) {
  static const Floorplan fp;
  SchedulerContext ctx;
  ctx.interval_index = interval;
  ctx.cores_needed = cores_needed;
  ctx.floorplan = &fp;
  ctx.delta_vth = aging.empty() ? std::vector<double>(8, 0.0) : std::move(aging);
  return ctx;
}

TEST(AllActive, EveryoneRuns) {
  AllActiveScheduler s;
  const auto a = s.assign(context(0, 6));
  EXPECT_EQ(active_count(a), 8);
}

TEST(RoundRobin, SleepsExactlyTheSlack) {
  RoundRobinSleepScheduler s(/*rejuvenate=*/true);
  const auto a = s.assign(context(0, 6));
  EXPECT_EQ(active_count(a), 6);
  int rejuvenating = 0;
  for (auto m : a) {
    if (m == CoreMode::kSleepRejuvenate) ++rejuvenating;
  }
  EXPECT_EQ(rejuvenating, 2);
}

TEST(RoundRobin, PassiveVariantUsesPassiveSleep) {
  RoundRobinSleepScheduler s(/*rejuvenate=*/false);
  const auto a = s.assign(context(0, 6));
  for (auto m : a) EXPECT_NE(m, CoreMode::kSleepRejuvenate);
}

TEST(RoundRobin, RotatesThroughAllCores) {
  RoundRobinSleepScheduler s(true);
  std::set<int> ever_slept;
  for (int k = 0; k < 8; ++k) {
    const auto a = s.assign(context(k, 6));
    for (int i = 0; i < 8; ++i) {
      if (a[static_cast<std::size_t>(i)] != CoreMode::kActive) {
        ever_slept.insert(i);
      }
    }
  }
  EXPECT_EQ(ever_slept.size(), 8u);  // fairness
}

TEST(HeaterAware, SleepsExactlyTheSlackAndRejuvenates) {
  HeaterAwareCircadianScheduler s;
  const auto a = s.assign(context(0, 6));
  EXPECT_EQ(active_count(a), 6);
  for (auto m : a) EXPECT_NE(m, CoreMode::kSleepPassive);
}

TEST(HeaterAware, SleepersAreNotAdjacent) {
  // With two sleepers on the 2x4 grid, spreading them keeps each one
  // surrounded by heaters; adjacent sleepers would shade each other.
  HeaterAwareCircadianScheduler s;
  static const Floorplan fp;
  for (int k = 0; k < 16; ++k) {
    const auto a = s.assign(context(k, 6));
    std::vector<int> sleepers;
    for (int i = 0; i < 8; ++i) {
      if (a[static_cast<std::size_t>(i)] != CoreMode::kActive) {
        sleepers.push_back(i);
      }
    }
    ASSERT_EQ(sleepers.size(), 2u);
    EXPECT_FALSE(fp.adjacent(sleepers[0], sleepers[1])) << "interval " << k;
  }
}

TEST(HeaterAware, RotatesForFairness) {
  HeaterAwareCircadianScheduler s;
  std::set<int> ever_slept;
  for (int k = 0; k < 32; ++k) {
    const auto a = s.assign(context(k, 6));
    for (int i = 0; i < 8; ++i) {
      if (a[static_cast<std::size_t>(i)] != CoreMode::kActive) {
        ever_slept.insert(i);
      }
    }
  }
  EXPECT_GE(ever_slept.size(), 6u);
}

TEST(HeaterAware, PrefersAgedCores) {
  HeaterAwareCircadianScheduler s;
  std::vector<double> aging(8, 0.0);
  aging[3] = 10e-3;  // badly aged corner-ish core
  const auto a = s.assign(context(0, 7, aging));  // one sleeper
  EXPECT_EQ(a[3], CoreMode::kSleepRejuvenate);
}

TEST(Reactive, SleepsNothingWhenHealthy) {
  ReactiveScheduler s(Volts{5e-3});
  const auto a = s.assign(context(0, 6));
  EXPECT_EQ(active_count(a), 8);
}

TEST(Reactive, SleepsMostAgedAboveThreshold) {
  ReactiveScheduler s(Volts{5e-3});
  std::vector<double> aging{1e-3, 6e-3, 2e-3, 9e-3, 1e-3, 7e-3, 0.0, 0.0};
  const auto a = s.assign(context(0, 6, aging));  // at most 2 sleepers
  EXPECT_EQ(active_count(a), 6);
  EXPECT_EQ(a[3], CoreMode::kSleepRejuvenate);  // worst
  EXPECT_EQ(a[5], CoreMode::kSleepRejuvenate);  // second worst
  EXPECT_EQ(a[1], CoreMode::kActive);           // above threshold but capped
}

TEST(Reactive, NeverStarvesTheWorkload) {
  ReactiveScheduler s(Volts{1e-6});
  std::vector<double> aging(8, 1e-3);  // everyone above threshold
  const auto a = s.assign(context(0, 6, aging));
  EXPECT_EQ(active_count(a), 6);
}

TEST(Schedulers, ValidateContext) {
  AllActiveScheduler s;
  SchedulerContext bad;
  bad.floorplan = nullptr;
  EXPECT_THROW(s.assign(bad), std::invalid_argument);
  auto ctx2 = context(0, 6);
  ctx2.delta_vth.resize(3);
  EXPECT_THROW(s.assign(ctx2), std::invalid_argument);
}

TEST(Schedulers, OverloadedDemandIsClampedNotThrown) {
  // Demand beyond the core count degrades gracefully: every core runs and
  // the overhang is the caller's deficit, not an exception.
  RoundRobinSleepScheduler rr(/*rejuvenate=*/true);
  auto ctx = context(0, 6);
  ctx.cores_needed = 99;
  EXPECT_EQ(active_count(rr.assign(ctx)), 8);
  HeaterAwareCircadianScheduler h;
  EXPECT_EQ(active_count(h.assign(ctx)), 8);
  ReactiveScheduler reactive(Volts{1e-6});
  EXPECT_EQ(active_count(reactive.assign(ctx)), 8);
}

TEST(SchedulerContext, SetDemandClampsAndRecordsDeficit) {
  static const Floorplan fp;
  SchedulerContext ctx;
  ctx.floorplan = &fp;
  ctx.set_demand(11);
  EXPECT_EQ(ctx.cores_needed, 8);
  EXPECT_EQ(ctx.demand_deficit, 3);
  ctx.set_demand(-2);
  EXPECT_EQ(ctx.cores_needed, 0);
  EXPECT_EQ(ctx.demand_deficit, 0);
  ctx.set_demand(5);
  EXPECT_EQ(ctx.cores_needed, 5);
  EXPECT_EQ(ctx.demand_deficit, 0);
  SchedulerContext no_fp;
  EXPECT_THROW(no_fp.set_demand(4), std::invalid_argument);
}

TEST(Schedulers, TolerateNaNTelemetry) {
  // Poisoned telemetry (dropped odometer readings, dead cores) must not
  // propagate NaN into scores or sort comparators.
  std::vector<double> poisoned(8, std::nan(""));
  poisoned[2] = 4e-3;
  HeaterAwareCircadianScheduler h;
  const auto a = h.assign(context(0, 6, poisoned));
  EXPECT_EQ(active_count(a), 6);
  ReactiveScheduler reactive(Volts{1e-3});
  const auto b = reactive.assign(context(0, 6, poisoned));
  // The only finite reading is above threshold: it sleeps; the NaN cores
  // are treated as unaged and must not be chosen reactively.
  EXPECT_EQ(active_count(b), 7);
  EXPECT_EQ(b[2], CoreMode::kSleepRejuvenate);
  for (int i = 0; i < 8; ++i) {
    if (i != 2) EXPECT_EQ(b[static_cast<std::size_t>(i)], CoreMode::kActive);
  }
}

TEST(Schedulers, AllNaNTelemetryStillSchedules) {
  const std::vector<double> poisoned(8, std::nan(""));
  HeaterAwareCircadianScheduler h;
  for (int k = 0; k < 8; ++k) {
    const auto a = h.assign(context(k, 6, poisoned));
    EXPECT_EQ(active_count(a), 6) << "interval " << k;
  }
  ReactiveScheduler reactive(Volts{1e-3});
  const auto b = reactive.assign(context(0, 6, poisoned));
  EXPECT_EQ(active_count(b), 8);  // no evidence of aging: nobody sleeps
}

TEST(Schedulers, NamesAreDistinct) {
  AllActiveScheduler a;
  RoundRobinSleepScheduler r(true);
  RoundRobinSleepScheduler rp(false);
  HeaterAwareCircadianScheduler h;
  ReactiveScheduler x(Volts{1e-3});
  const std::set<std::string> names{a.name(), r.name(), rp.name(), h.name(),
                                    x.name()};
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace ash::mc
