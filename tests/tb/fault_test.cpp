#include "ash/tb/fault.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "ash/core/metrics.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/constants.h"

namespace ash::tb {
namespace {

fpga::FpgaChip small_chip(int id = 2) {
  fpga::ChipConfig c;
  c.chip_id = id;
  c.seed = 42 + static_cast<std::uint64_t>(id);
  c.ro_stages = 15;
  return fpga::FpgaChip(c);
}

TestCase short_case() {
  TestCase tc;
  tc.name = "short";
  tc.chip_id = 2;
  tc.phases = {dc_stress_phase("STRESS", Celsius{110.0}, units::hours(2.0), units::minutes(/*sample min=*/30.0)),
               recovery_phase("RECOVER", Volts{-0.3}, Celsius{110.0}, units::hours(0.5), units::minutes(10.0))};
  return tc;
}

void expect_logs_identical(const DataLog& a, const DataLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a.records()[i];
    const auto& rb = b.records()[i];
    EXPECT_EQ(ra.phase, rb.phase) << "record " << i;
    EXPECT_EQ(ra.quality, rb.quality) << "record " << i;
    EXPECT_EQ(ra.retries, rb.retries) << "record " << i;
    EXPECT_EQ(ra.t_campaign_s, rb.t_campaign_s) << "record " << i;
    EXPECT_EQ(ra.t_phase_s, rb.t_phase_s) << "record " << i;
    EXPECT_EQ(ra.chamber_c, rb.chamber_c) << "record " << i;
    EXPECT_EQ(ra.counts, rb.counts) << "record " << i;
    EXPECT_EQ(ra.frequency_hz, rb.frequency_hz) << "record " << i;
    EXPECT_EQ(ra.delay_s, rb.delay_s) << "record " << i;
  }
}

TEST(FaultPlan, PresetsAndLookup) {
  EXPECT_TRUE(FaultPlan::none().ideal());
  EXPECT_TRUE(FaultPlan{}.ideal());
  EXPECT_FALSE(FaultPlan::representative().ideal());
  EXPECT_FALSE(FaultPlan::harsh().ideal());
  EXPECT_TRUE(FaultPlan::by_name("none").ideal());
  EXPECT_FALSE(FaultPlan::by_name("representative").ideal());
  EXPECT_THROW(FaultPlan::by_name("imaginary"), std::invalid_argument);
}

TEST(FaultReport, SerializeRoundTripsAndMerges) {
  FaultReport r;
  r.chamber_excursions = 2;
  r.readings_dropped = 17;
  r.samples_lost = 3;
  r.phase_aborts = 1;
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(FaultReport{}.clean());
  EXPECT_EQ(FaultReport::deserialize(r.serialize()), r);

  FaultReport sum = r;
  sum.merge(r);
  EXPECT_EQ(sum.chamber_excursions, 4);
  EXPECT_EQ(sum.readings_dropped, 34);
  EXPECT_THROW(FaultReport::deserialize("1 2 three"), std::runtime_error);
}

TEST(FaultInjector, DeterministicPerPhaseAndAttempt) {
  const auto plan = FaultPlan::harsh();
  FaultInjector a(plan, /*phase=*/1, /*attempt=*/0, Seconds{7200.0});
  FaultInjector b(plan, 1, 0, Seconds{7200.0});
  for (double t : {0.0, 600.0, 3000.0, 7000.0}) {
    EXPECT_EQ(a.chamber_offset_c(Seconds{t}), b.chamber_offset_c(Seconds{t}));
    EXPECT_EQ(a.supply_offset_v(Seconds{t}), b.supply_offset_v(Seconds{t}));
  }
  EXPECT_EQ(a.clock_offset_ppm(), b.clock_offset_ppm());
  // The same phase re-run as a later attempt draws a different scenario
  // stream (probabilities are also recurrence-scaled).
  FaultInjector c(plan, 1, 1, Seconds{7200.0});
  bool any_differs = false;
  for (double t = 0.0; t < 7200.0; t += 60.0) {
    if (a.chamber_offset_c(Seconds{t}) != c.chamber_offset_c(Seconds{t}) ||
        a.supply_offset_v(Seconds{t}) != c.supply_offset_v(Seconds{t})) {
      any_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_differs || a.clock_offset_ppm() != c.clock_offset_ppm());
}

TEST(FaultInjector, ExcursionGuaranteedAtUnitProbability) {
  FaultPlan plan;
  plan.chamber.excursion_probability = 1.0;
  plan.chamber.excursion_magnitude_c = Celsius{25.0};
  plan.chamber.excursion_duration_s = Seconds{1000.0};
  FaultReport report;
  FaultInjector inj(plan, 0, 0, Seconds{7200.0}, &report);
  EXPECT_EQ(report.chamber_excursions, 1);
  double peak = 0.0;
  for (double t = 0.0; t < 7200.0; t += 10.0) {
    peak = std::max(peak, inj.chamber_offset_c(Seconds{t}).value());
  }
  EXPECT_DOUBLE_EQ(peak, 25.0);
}

TEST(FaultTolerantRunner, IdenticalPlanAndSeedReplayBitIdentically) {
  RunnerConfig config = tolerant_runner_config(FaultPlan::harsh());
  auto chip_a = small_chip();
  auto chip_b = small_chip();
  const auto ra = ExperimentRunner(config).run_campaign(chip_a, short_case());
  const auto rb = ExperimentRunner(config).run_campaign(chip_b, short_case());
  expect_logs_identical(ra.log, rb.log);
  EXPECT_EQ(ra.faults, rb.faults);
  EXPECT_EQ(ra.checkpoint.chip_state, rb.checkpoint.chip_state);
}

TEST(FaultTolerantRunner, HarshLabActuallyFlagsSamples) {
  RunnerConfig config = tolerant_runner_config(FaultPlan::harsh());
  auto chip = small_chip();
  const auto result = ExperimentRunner(config).run_campaign(chip, short_case());
  EXPECT_FALSE(result.faults.clean());
  // Flagged samples stay in the log; the series skip only lost ones.
  EXPECT_EQ(result.log.size(),
            result.log.count_quality(SampleQuality::kGood) +
                result.log.count_quality(SampleQuality::kRetried) +
                result.log.count_quality(SampleQuality::kSuspect) +
                result.log.count_quality(SampleQuality::kLost));
}

TEST(FaultTolerantRunner, WatchdogAbortsAndRewindsOnPersistentExcursion) {
  FaultPlan plan;
  plan.chamber.excursion_probability = 1.0;
  plan.chamber.excursion_magnitude_c = Celsius{30.0};
  plan.chamber.excursion_duration_s = Seconds{5400.0};
  RunnerConfig config = tolerant_runner_config(plan);
  auto chip = small_chip();
  const auto result = ExperimentRunner(config).run_campaign(chip, short_case());
  // Attempt 0 of each phase is guaranteed an excursion far beyond the
  // 5 degC plausibility band, spanning several consecutive samples.
  EXPECT_GE(result.faults.phase_aborts, 1);
  EXPECT_GT(result.faults.samples_discarded, 0);
  EXPECT_TRUE(result.completed);
  // The discarded attempts never reach the final log.
  for (const auto& r : result.log.records()) {
    EXPECT_NE(r.quality, SampleQuality::kLost);
  }
}

TEST(NaiveRunner, LosesEverySampleWhenAllReadingsDrop) {
  FaultPlan plan;
  plan.rig.dropped_reading_probability = 1.0;
  RunnerConfig config = naive_runner_config(plan);
  auto chip = small_chip();
  const auto result = ExperimentRunner(config).run_campaign(chip, short_case());
  // Graceful degradation: nothing is silently dropped — every scheduled
  // sample is logged, flagged kLost, and excluded from the series.
  EXPECT_GT(result.log.size(), 0u);
  EXPECT_EQ(result.log.count_quality(SampleQuality::kLost), result.log.size());
  EXPECT_TRUE(result.log.delay_series("STRESS").empty());
  EXPECT_EQ(core::campaign_yield(result.log).usable_fraction(), 0.0);
}

TEST(FaultTolerantRunner, RetriesRecoverSamplesAndCostSimulatedTime) {
  FaultPlan plan;
  plan.comm.loss_probability = 0.4;  // frequent, but retries get through
  RunnerConfig tolerant = tolerant_runner_config(plan);
  auto chip_a = small_chip();
  const auto faulty =
      ExperimentRunner(tolerant).run_campaign(chip_a, short_case());
  ASSERT_GT(faulty.faults.samples_retried, 0);
  for (const auto& r : faulty.log.records()) {
    if (r.quality == SampleQuality::kRetried) {
      EXPECT_GT(r.retries, 0);
      EXPECT_GT(r.frequency_hz.value(), 0.0);
    }
  }
  // Backoffs run on the simulated clock, so the dirty campaign finishes
  // later than the same schedule in a clean lab.
  auto chip_b = small_chip();
  const auto clean = ExperimentRunner(tolerant_runner_config(FaultPlan::none()))
                         .run_campaign(chip_b, short_case());
  EXPECT_GT(faulty.log.records().back().t_campaign_s,
            clean.log.records().back().t_campaign_s);
}

TEST(CampaignCheckpoint, KillAndResumeReplaysBitIdentically) {
  const auto tc = short_case();
  RunnerConfig config = tolerant_runner_config(FaultPlan::representative());

  auto chip_ref = small_chip();
  const auto reference =
      ExperimentRunner(config).run_campaign(chip_ref, tc);
  ASSERT_TRUE(reference.completed);

  // Kill the campaign mid-way through the second phase...
  RunnerConfig killed_cfg = config;
  killed_cfg.abort_at_campaign_s = Seconds{hours(2.0) + 600.0};
  auto chip_kill = small_chip();
  const auto killed =
      ExperimentRunner(killed_cfg).run_campaign(chip_kill, tc);
  EXPECT_FALSE(killed.completed);
  EXPECT_EQ(killed.checkpoint.next_phase, 1);
  EXPECT_LT(killed.log.size(), reference.log.size());

  // ...and resume from the checkpoint on a freshly constructed chip.
  auto chip_resume = small_chip();
  const auto resumed = ExperimentRunner(config).run_campaign(
      chip_resume, tc, killed.checkpoint);
  ASSERT_TRUE(resumed.completed);
  expect_logs_identical(resumed.log, reference.log);
  EXPECT_EQ(resumed.faults, reference.faults);
  EXPECT_EQ(resumed.checkpoint.chip_state, reference.checkpoint.chip_state);
}

TEST(CampaignCheckpoint, SaveLoadStreamRoundTrip) {
  RunnerConfig config = tolerant_runner_config(FaultPlan::representative());
  config.abort_at_campaign_s = Seconds{hours(1.0)};
  auto chip = small_chip();
  const auto killed = ExperimentRunner(config).run_campaign(chip, short_case());
  ASSERT_FALSE(killed.completed);

  std::stringstream stream;
  killed.checkpoint.save(stream);
  const auto loaded = CampaignCheckpoint::load(stream);

  EXPECT_EQ(loaded.next_phase, killed.checkpoint.next_phase);
  EXPECT_DOUBLE_EQ(loaded.t_campaign_s.value(),
                   killed.checkpoint.t_campaign_s.value());
  EXPECT_DOUBLE_EQ(loaded.chamber_c.value(),
                   killed.checkpoint.chamber_c.value());
  EXPECT_EQ(loaded.chip_state, killed.checkpoint.chip_state);
  EXPECT_EQ(loaded.faults, killed.checkpoint.faults);
  ASSERT_EQ(loaded.log.size(), killed.checkpoint.log.size());
  for (std::size_t i = 0; i < loaded.log.size(); ++i) {
    EXPECT_EQ(loaded.log.records()[i].quality,
              killed.checkpoint.log.records()[i].quality);
    // CSV keeps 6 decimals on times / 9 significant digits on delays.
    EXPECT_NEAR(loaded.log.records()[i].t_campaign_s.value(),
                killed.checkpoint.log.records()[i].t_campaign_s.value(), 1e-5);
    EXPECT_NEAR(loaded.log.records()[i].delay_s.value(),
                killed.checkpoint.log.records()[i].delay_s.value(), 1e-15);
  }

  std::istringstream garbage("not a checkpoint\n");
  EXPECT_THROW(CampaignCheckpoint::load(garbage), std::runtime_error);
}

TEST(CampaignCheckpoint, SerializeDeserializeMatchesStreamForms) {
  auto chip = small_chip();
  const auto ckpt =
      initial_checkpoint(chip, short_case(), tolerant_runner_config(
                                                 FaultPlan::representative()));
  const std::string bytes = ckpt.serialize();
  std::ostringstream via_stream;
  ckpt.save(via_stream);
  EXPECT_EQ(bytes, via_stream.str());

  const auto back = CampaignCheckpoint::deserialize(bytes);
  EXPECT_EQ(back.next_phase, ckpt.next_phase);
  EXPECT_EQ(back.chip_state, ckpt.chip_state);
  // Text-level stability: one parse->print cycle is a fixed point (the
  // property the fleet's payload comparison rests on).
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(CampaignCheckpoint, LoadRejectsTruncationEverywhereWithFieldContext) {
  // Truncate the serialized checkpoint at every line boundary: each prefix
  // must be rejected (never a partially-filled checkpoint), and the error
  // must carry a field name and a stream offset for diagnosis.
  auto chip = small_chip();
  RunnerConfig config = tolerant_runner_config(FaultPlan::representative());
  config.abort_at_campaign_s = Seconds{hours(1.0)};
  const auto killed = ExperimentRunner(config).run_campaign(chip, short_case());
  const std::string doc = killed.checkpoint.serialize();

  int rejected = 0;
  for (std::size_t cut = doc.find('\n'); cut != std::string::npos;
       cut = doc.find('\n', cut + 1)) {
    const std::string prefix = doc.substr(0, cut + 1);
    if (prefix.size() == doc.size()) break;
    try {
      (void)CampaignCheckpoint::deserialize(prefix);
      FAIL() << "prefix of " << prefix.size() << " bytes loaded";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("offset"), std::string::npos) << what;
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 5);
}

TEST(CampaignCheckpoint, LoadNamesTheMangledField) {
  auto chip = small_chip();
  const auto ckpt = initial_checkpoint(chip, short_case(), RunnerConfig{});
  std::string doc = ckpt.serialize();
  const auto pos = doc.find("t_campaign ");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, std::string("t_campaign ").size() + 1, "t_campaign garb");
  try {
    (void)CampaignCheckpoint::deserialize(doc);
    FAIL() << "mangled t_campaign loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("t_campaign"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignCheckpoint, PhaseSteppingMatchesOneShotRun) {
  // The fleet workers' stepping primitive: advancing one phase per call
  // through serialized checkpoints must replay the one-shot campaign
  // bit-identically.
  const auto tc = short_case();
  const RunnerConfig config = tolerant_runner_config(FaultPlan::representative());

  auto chip_ref = small_chip();
  const auto reference = ExperimentRunner(config).run_campaign(chip_ref, tc);

  auto chip_step = small_chip();
  ExperimentRunner runner(config);
  auto ckpt = initial_checkpoint(chip_step, tc, config);
  int steps = 0;
  for (;;) {
    // Round-trip through bytes each step, exactly like the durable store.
    ckpt = CampaignCheckpoint::deserialize(ckpt.serialize());
    const auto result = runner.run_campaign(chip_step, tc, ckpt, 1);
    EXPECT_EQ(result.checkpoint.next_phase, ckpt.next_phase + 1);
    ckpt = result.checkpoint;
    ++steps;
    if (result.completed) break;
    ASSERT_LT(steps, 10) << "stepping never completed";
  }
  EXPECT_EQ(steps, static_cast<int>(tc.phases.size()));
  EXPECT_EQ(ckpt.faults, reference.faults);
  EXPECT_EQ(ckpt.chip_state, reference.checkpoint.chip_state);
  // The stepped log passed through a lossy CSV parse each step, so compare
  // at the serialized-text level: print->parse->print is a fixed point, so
  // the N-cycle stepped text must equal the reference after one cycle.
  const std::string ref_text =
      CampaignCheckpoint::deserialize(reference.checkpoint.serialize())
          .serialize();
  EXPECT_EQ(ckpt.serialize(), ref_text);
}

TEST(CampaignCheckpoint, ZeroAndNegativeMaxPhasesBehave) {
  const auto tc = short_case();
  auto chip = small_chip();
  ExperimentRunner runner{RunnerConfig{}};
  const auto ckpt = initial_checkpoint(chip, tc, RunnerConfig{});
  // max_phases = 0: a no-op step that reports not-completed.
  const auto none = runner.run_campaign(chip, tc, ckpt, 0);
  EXPECT_FALSE(none.completed);
  EXPECT_EQ(none.checkpoint.next_phase, 0);
  // Negative = unbounded (runs to the end).
  const auto all = runner.run_campaign(chip, tc, ckpt, -1);
  EXPECT_TRUE(all.completed);
  EXPECT_EQ(all.checkpoint.next_phase, static_cast<int>(tc.phases.size()));
}

}  // namespace
}  // namespace ash::tb
