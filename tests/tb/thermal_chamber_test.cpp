#include "ash/tb/thermal_chamber.h"

#include <vector>

#include <gtest/gtest.h>

#include "ash/util/constants.h"
#include "ash/util/stats.h"

namespace ash::tb {
namespace {

TEST(ThermalChamber, StartsAtInitialTemperature) {
  ChamberConfig c;
  c.initial_c = Celsius{20.0};
  const ThermalChamber chamber(c);
  EXPECT_NEAR(chamber.temperature_c().value(), 20.0, 0.5);
  EXPECT_TRUE(chamber.at_target());
}

TEST(ThermalChamber, RampsTowardSetpointAtConfiguredRate) {
  ChamberConfig c;
  c.initial_c = Celsius{20.0};
  c.ramp_c_per_s = 0.05;  // 3 degC/min
  ThermalChamber chamber(c);
  chamber.set_target(Celsius{110.0});
  EXPECT_FALSE(chamber.at_target());
  EXPECT_NEAR(chamber.seconds_to_target().value(), 90.0 / 0.05, 1e-9);
  chamber.advance(Seconds{60.0});
  EXPECT_NEAR(chamber.temperature_c().value(), 23.0, 0.5);
  chamber.advance(Seconds{1e5});
  EXPECT_TRUE(chamber.at_target());
  EXPECT_NEAR(chamber.temperature_c().value(), 110.0, 0.5);
}

TEST(ThermalChamber, NeverOvershootsSetpointBase) {
  ChamberConfig c;
  c.initial_c = Celsius{20.0};
  c.ramp_c_per_s = 1.0;
  ThermalChamber chamber(c);
  chamber.set_target(Celsius{25.0});
  chamber.advance(Seconds{100.0});
  EXPECT_TRUE(chamber.at_target());
  chamber.set_target(Celsius{20.0});  // cool back down
  chamber.advance(Seconds{2.0});
  EXPECT_NEAR(chamber.temperature_c().value(), 23.0, 0.5);
}

TEST(ThermalChamber, FluctuationStaysWithinPaperBand) {
  // +/-0.3 degC: our OU sigma of 0.1 keeps essentially all samples inside.
  ChamberConfig c;
  c.initial_c = Celsius{110.0};
  ThermalChamber chamber(c);
  std::vector<double> temps;
  for (int i = 0; i < 5000; ++i) {
    chamber.advance(Seconds{60.0});
    temps.push_back(chamber.temperature_c().value());
  }
  EXPECT_NEAR(mean(temps), 110.0, 0.02);
  EXPECT_NEAR(stddev(temps), 0.1, 0.02);
  EXPECT_GT(percentile(temps, 0.1), 110.0 - 0.5);
  EXPECT_LT(percentile(temps, 99.9), 110.0 + 0.5);
}

TEST(ThermalChamber, KelvinConversion) {
  ChamberConfig c;
  c.initial_c = Celsius{20.0};
  c.fluctuation_sigma_c = Celsius{0.0};
  const ThermalChamber chamber(c);
  EXPECT_DOUBLE_EQ(chamber.temperature_k().value(), celsius(20.0));
}

TEST(ThermalChamber, RejectsBadConfigAndNegativeDt) {
  ChamberConfig c;
  c.ramp_c_per_s = 0.0;
  EXPECT_THROW(ThermalChamber{c}, std::invalid_argument);
  ThermalChamber ok{ChamberConfig{}};
  EXPECT_THROW(ok.advance(Seconds{-1.0}), std::invalid_argument);
}

TEST(ThermalChamber, SameSeedSameTrajectory) {
  ChamberConfig c;
  ThermalChamber a(c);
  ThermalChamber b(c);
  for (int i = 0; i < 100; ++i) {
    a.advance(Seconds{10.0});
    b.advance(Seconds{10.0});
    EXPECT_DOUBLE_EQ(a.temperature_c().value(), b.temperature_c().value());
  }
}

}  // namespace
}  // namespace ash::tb
