#include "ash/tb/experiment_runner.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::tb {
namespace {

/// A small chip (15 stages) keeps these tests fast; physics is per-device,
/// so the behaviour matches the 75-stage CUT up to averaging noise.
fpga::FpgaChip small_chip(int id = 2) {
  fpga::ChipConfig c;
  c.chip_id = id;
  c.seed = 42 + static_cast<std::uint64_t>(id);
  c.ro_stages = 15;
  return fpga::FpgaChip(c);
}

/// A compressed stress+recovery schedule (hours instead of days).
TestCase short_case() {
  TestCase tc;
  tc.name = "short";
  tc.chip_id = 2;
  tc.phases = {dc_stress_phase("STRESS", Celsius{110.0}, units::hours(2.0), units::minutes(/*sample min=*/30.0)),
               recovery_phase("RECOVER", Volts{-0.3}, Celsius{110.0}, units::hours(0.5), units::minutes(10.0))};
  return tc;
}

TEST(ExperimentRunner, LogsExpectedSampleCount) {
  auto chip = small_chip();
  ExperimentRunner runner{RunnerConfig{}};
  const auto log = runner.run(chip, short_case());
  // STRESS: sample at 0 plus every 30 min over 2 h -> 5 samples.
  EXPECT_EQ(log.phase_records("STRESS").size(), 5u);
  // RECOVER: sample at 0 plus every 10 min over 30 min -> 4 samples.
  EXPECT_EQ(log.phase_records("RECOVER").size(), 4u);
}

TEST(ExperimentRunner, StressDegradesMeasuredFrequency) {
  auto chip = small_chip();
  ExperimentRunner runner{RunnerConfig{}};
  const auto log = runner.run(chip, short_case());
  const auto f = log.frequency_series("STRESS");
  EXPECT_LT(f.back().value, f.front().value);
}

TEST(ExperimentRunner, RecoveryRaisesMeasuredFrequency) {
  auto chip = small_chip();
  ExperimentRunner runner{RunnerConfig{}};
  const auto log = runner.run(chip, short_case());
  const auto f = log.frequency_series("RECOVER");
  EXPECT_GT(f.back().value, f.front().value);
}

TEST(ExperimentRunner, PhaseTimeRestartsPerPhase) {
  auto chip = small_chip();
  ExperimentRunner runner{RunnerConfig{}};
  const auto log = runner.run(chip, short_case());
  EXPECT_DOUBLE_EQ(log.phase_records("STRESS").front().t_phase_s.value(), 0.0);
  EXPECT_DOUBLE_EQ(log.phase_records("RECOVER").front().t_phase_s.value(),
                   0.0);
  // Campaign time keeps increasing monotonically.
  double prev = -1.0;
  for (const auto& r : log.records()) {
    EXPECT_GE(r.t_campaign_s.value(), prev);
    prev = r.t_campaign_s.value();
  }
}

TEST(ExperimentRunner, RecordsEnvironmentPerSample) {
  auto chip = small_chip();
  ExperimentRunner runner{RunnerConfig{}};
  const auto log = runner.run(chip, short_case());
  for (const auto& r : log.phase_records("STRESS")) {
    EXPECT_NEAR(r.chamber_c.value(), 110.0, 0.5);
    EXPECT_DOUBLE_EQ(r.supply_v.value(), 1.2);
  }
  for (const auto& r : log.phase_records("RECOVER")) {
    EXPECT_DOUBLE_EQ(r.supply_v.value(), -0.3);
  }
}

TEST(ExperimentRunner, DeterministicForSameSeeds) {
  auto chip_a = small_chip();
  auto chip_b = small_chip();
  ExperimentRunner runner_a{RunnerConfig{}};
  ExperimentRunner runner_b{RunnerConfig{}};
  const auto log_a = runner_a.run(chip_a, short_case());
  const auto log_b = runner_b.run(chip_b, short_case());
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(log_a.records()[i].frequency_hz.value(),
                     log_b.records()[i].frequency_hz.value());
  }
}

TEST(ExperimentRunner, InstrumentNoiseSeedChangesReadings) {
  auto chip_a = small_chip();
  auto chip_b = small_chip();
  RunnerConfig ca;
  RunnerConfig cb;
  cb.seed = 12345;
  const auto log_a = ExperimentRunner(ca).run(chip_a, short_case());
  const auto log_b = ExperimentRunner(cb).run(chip_b, short_case());
  bool any_different = false;
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    if (log_a.records()[i].counts != log_b.records()[i].counts) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(ExperimentRunner, FiniteChamberRampDelaysTheCampaignClock) {
  // Stress at 110 degC followed by room-temperature recovery: the cooldown
  // (90 degC at 3 degC/min = 30 min) precedes the recovery phase clock.
  TestCase tc;
  tc.name = "ramped";
  tc.chip_id = 2;
  tc.phases = {dc_stress_phase("STRESS", Celsius{110.0}, units::hours(2.0), units::minutes(30.0)),
               recovery_phase("R20", Volts{0.0}, Celsius{20.0}, units::hours(0.5), units::minutes(10.0))};
  auto instant_chip = small_chip();
  auto ramped_chip = small_chip();
  RunnerConfig instant;
  RunnerConfig ramped;
  ramped.instant_chamber = false;
  const auto log_i = ExperimentRunner(instant).run(instant_chip, tc);
  const auto log_r = ExperimentRunner(ramped).run(ramped_chip, tc);
  EXPECT_GT(log_r.records().back().t_campaign_s,
            log_i.records().back().t_campaign_s + Seconds{1000.0});
  // The recovery phase starts only once the chamber reached ~20 degC.
  EXPECT_NEAR(log_r.phase_records("R20").front().chamber_c.value(), 20.0, 1.0);
}

TEST(ExperimentRunner, FiniteRampAgesChipAtIntermediateTemperatures) {
  // A cold DC soak followed by a hot DC phase.  With a finite ramp the
  // chip spends the 30-minute climb (20 -> 110 degC at 3 degC/min) under
  // DC stress at the instantaneous temperature, so by the first hot sample
  // it is more aged than with an instant chamber — but less aged than if
  // it had spent that half hour at the full 110 degC.
  TestCase tc;
  tc.name = "ramp-aging";
  tc.chip_id = 2;
  tc.phases = {dc_stress_phase("LOW", Celsius{20.0}, units::hours(2.0), units::minutes(60.0)),
               dc_stress_phase("HIGH", Celsius{110.0}, units::hours(1.0), units::minutes(30.0))};

  TestCase tc_hold = tc;
  tc_hold.phases.insert(tc_hold.phases.begin() + 1,
                        dc_stress_phase("HOLD110", Celsius{110.0}, units::hours(0.5), units::minutes(0.0)));

  RunnerConfig instant;
  RunnerConfig ramped;
  ramped.instant_chamber = false;

  auto chip_i = small_chip();
  auto chip_r = small_chip();
  auto chip_h = small_chip();
  const double d_instant = ExperimentRunner(instant)
                               .run(chip_i, tc)
                               .phase_records("HIGH")
                               .front()
                               .delay_s.value();
  const double d_ramped = ExperimentRunner(ramped)
                              .run(chip_r, tc)
                              .phase_records("HIGH")
                              .front()
                              .delay_s.value();
  const double d_hold = ExperimentRunner(instant)
                            .run(chip_h, tc_hold)
                            .phase_records("HIGH")
                            .front()
                            .delay_s.value();
  EXPECT_LT(d_instant, d_ramped);
  EXPECT_LT(d_ramped, d_hold);
}

TEST(ExperimentRunner, MeasurementsAreQuantizedCounts) {
  auto chip = small_chip();
  ExperimentRunner runner{RunnerConfig{}};
  const auto log = runner.run(chip, short_case());
  for (const auto& r : log.records()) {
    // Averaged over 4 readings: counts land on quarter-integers.
    const double q = r.counts * 4.0;
    EXPECT_NEAR(q, std::round(q), 1e-9);
  }
}

TEST(ExperimentRunner, UnsampledPhaseStillLogsEndpoints) {
  TestCase tc;
  tc.name = "endpoints";
  tc.chip_id = 1;
  Phase p = dc_stress_phase("NOSAMPLES", Celsius{110.0}, units::hours(1.0));
  p.sample_every_s = Seconds{0.0};
  tc.phases = {p};
  auto chip = small_chip(1);
  const auto log = ExperimentRunner(RunnerConfig{}).run(chip, tc);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log.records()[0].t_phase_s.value(), 0.0);
  EXPECT_DOUBLE_EQ(log.records()[1].t_phase_s.value(), hours(1.0));
}

}  // namespace
}  // namespace ash::tb
