#include "ash/tb/power_supply.h"

#include <vector>

#include <gtest/gtest.h>

#include "ash/util/stats.h"

namespace ash::tb {
namespace {

TEST(PowerSupply, StartsAtNominal) {
  const PowerSupply psu{SupplyConfig{}};
  EXPECT_DOUBLE_EQ(psu.setpoint_v().value(), 1.2);
}

TEST(PowerSupply, ProgramsWithinInterlockWindow) {
  PowerSupply psu{SupplyConfig{}};
  EXPECT_NO_THROW(psu.set_voltage(Volts{-0.3}));
  EXPECT_DOUBLE_EQ(psu.setpoint_v().value(), -0.3);
  EXPECT_NO_THROW(psu.set_voltage(Volts{0.0}));
  EXPECT_NO_THROW(psu.set_voltage(Volts{1.4}));
}

TEST(PowerSupply, BreakdownInterlockRejectsDeepNegative) {
  // Sec. 6.1: the negative voltage "must be at the level below the lateral
  // pn-junction breakdown voltage" — the interlock enforces it.
  PowerSupply psu{SupplyConfig{}};
  EXPECT_THROW(psu.set_voltage(Volts{-0.6}), std::out_of_range);
  EXPECT_THROW(psu.set_voltage(Volts{2.0}), std::out_of_range);
  EXPECT_DOUBLE_EQ(psu.setpoint_v().value(), 1.2);  // unchanged after rejection
}

TEST(PowerSupply, RippleIsSmallAndZeroMean) {
  PowerSupply psu{SupplyConfig{}};
  std::vector<double> vs;
  for (int i = 0; i < 5000; ++i) {
    psu.advance(Seconds{10.0});
    vs.push_back(psu.output_v().value());
  }
  EXPECT_NEAR(mean(vs), 1.2, 1e-3);
  EXPECT_NEAR(stddev(vs), 1e-3, 3e-4);
}

TEST(PowerSupply, RejectsBadConfig) {
  SupplyConfig bad;
  bad.min_v = Volts{2.0};
  bad.max_v = Volts{1.0};
  EXPECT_THROW(PowerSupply{bad}, std::invalid_argument);
}

TEST(PowerSupply, NegativeDtRejected) {
  PowerSupply psu{SupplyConfig{}};
  EXPECT_THROW(psu.advance(Seconds{-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ash::tb
