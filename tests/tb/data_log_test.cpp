#include "ash/tb/data_log.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ash::tb {
namespace {

SampleRecord record(const std::string& phase, double t_phase, double delay) {
  SampleRecord r;
  r.test_case = "chip2";
  r.chip_id = 2;
  r.phase = phase;
  r.t_campaign_s = 1000.0 + t_phase;
  r.t_phase_s = t_phase;
  r.chamber_c = 110.0;
  r.supply_v = 1.2;
  r.counts = 3300.0;
  r.frequency_hz = 1.0 / (2.0 * delay);
  r.delay_s = delay;
  return r;
}

DataLog sample_log() {
  DataLog log;
  log.add(record("AS110DC24", 0.0, 150e-9));
  log.add(record("AS110DC24", 3600.0, 151e-9));
  log.add(record("R20Z6", 0.0, 151e-9));
  log.add(record("R20Z6", 1800.0, 150.5e-9));
  return log;
}

TEST(DataLog, PhasesInFirstAppearanceOrder) {
  const auto log = sample_log();
  const auto phases = log.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0], "AS110DC24");
  EXPECT_EQ(phases[1], "R20Z6");
}

TEST(DataLog, PhaseRecordsFilter) {
  const auto log = sample_log();
  EXPECT_EQ(log.phase_records("AS110DC24").size(), 2u);
  EXPECT_EQ(log.phase_records("R20Z6").size(), 2u);
  EXPECT_TRUE(log.phase_records("NOPE").empty());
}

TEST(DataLog, DelaySeriesUsesPhaseTime) {
  const auto s = sample_log().delay_series("AS110DC24");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].t, 0.0);
  EXPECT_DOUBLE_EQ(s[1].t, 3600.0);
  EXPECT_DOUBLE_EQ(s[1].value, 151e-9);
}

TEST(DataLog, FrequencySeriesConsistentWithDelay) {
  const auto log = sample_log();
  const auto f = log.frequency_series("R20Z6");
  const auto d = log.delay_series("R20Z6");
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i].value, 1.0 / (2.0 * d[i].value), 1.0);
  }
}

TEST(DataLog, CsvRoundTrip) {
  const auto log = sample_log();
  std::ostringstream os;
  log.write_csv(os);
  std::istringstream is(os.str());
  const auto back = DataLog::read_csv(is);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.records()[i].phase, log.records()[i].phase);
    EXPECT_EQ(back.records()[i].chip_id, log.records()[i].chip_id);
    EXPECT_NEAR(back.records()[i].delay_s, log.records()[i].delay_s, 1e-15);
    EXPECT_NEAR(back.records()[i].frequency_hz,
                log.records()[i].frequency_hz, 1e-3);
  }
}

TEST(DataLog, AppendMergesLogs) {
  auto a = sample_log();
  const auto b = sample_log();
  a.append(b);
  EXPECT_EQ(a.size(), 8u);
}

}  // namespace
}  // namespace ash::tb
