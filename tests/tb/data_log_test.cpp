#include "ash/tb/data_log.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ash::tb {
namespace {

SampleRecord record(const std::string& phase, double t_phase, double delay) {
  SampleRecord r;
  r.test_case = "chip2";
  r.chip_id = 2;
  r.phase = phase;
  r.t_campaign_s = Seconds{1000.0 + t_phase};
  r.t_phase_s = Seconds{t_phase};
  r.chamber_c = Celsius{110.0};
  r.supply_v = Volts{1.2};
  r.counts = 3300.0;
  r.frequency_hz = Hertz{1.0 / (2.0 * delay)};
  r.delay_s = Seconds{delay};
  return r;
}

DataLog sample_log() {
  DataLog log;
  log.add(record("AS110DC24", 0.0, 150e-9));
  log.add(record("AS110DC24", 3600.0, 151e-9));
  log.add(record("R20Z6", 0.0, 151e-9));
  log.add(record("R20Z6", 1800.0, 150.5e-9));
  return log;
}

TEST(DataLog, PhasesInFirstAppearanceOrder) {
  const auto log = sample_log();
  const auto phases = log.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0], "AS110DC24");
  EXPECT_EQ(phases[1], "R20Z6");
}

TEST(DataLog, PhaseRecordsFilter) {
  const auto log = sample_log();
  EXPECT_EQ(log.phase_records("AS110DC24").size(), 2u);
  EXPECT_EQ(log.phase_records("R20Z6").size(), 2u);
  EXPECT_TRUE(log.phase_records("NOPE").empty());
}

TEST(DataLog, DelaySeriesUsesPhaseTime) {
  const auto s = sample_log().delay_series("AS110DC24");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].t, 0.0);
  EXPECT_DOUBLE_EQ(s[1].t, 3600.0);
  EXPECT_DOUBLE_EQ(s[1].value, 151e-9);
}

TEST(DataLog, FrequencySeriesConsistentWithDelay) {
  const auto log = sample_log();
  const auto f = log.frequency_series("R20Z6");
  const auto d = log.delay_series("R20Z6");
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i].value, 1.0 / (2.0 * d[i].value), 1.0);
  }
}

TEST(DataLog, CsvRoundTrip) {
  const auto log = sample_log();
  std::ostringstream os;
  log.write_csv(os);
  std::istringstream is(os.str());
  const auto back = DataLog::read_csv(is);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.records()[i].phase, log.records()[i].phase);
    EXPECT_EQ(back.records()[i].chip_id, log.records()[i].chip_id);
    EXPECT_NEAR(back.records()[i].delay_s.value(),
                log.records()[i].delay_s.value(), 1e-15);
    EXPECT_NEAR(back.records()[i].frequency_hz.value(),
                log.records()[i].frequency_hz.value(), 1e-3);
  }
}

TEST(DataLog, AppendMergesLogs) {
  auto a = sample_log();
  const auto b = sample_log();
  a.append(b);
  EXPECT_EQ(a.size(), 8u);
}

TEST(DataLog, QualityFlagsRoundTripThroughCsv) {
  auto log = sample_log();
  auto flagged = record("R20Z6", 2400.0, 150.2e-9);
  flagged.quality = SampleQuality::kRetried;
  flagged.retries = 2;
  log.add(flagged);
  auto lost = record("R20Z6", 3000.0, 0.0);
  lost.quality = SampleQuality::kLost;
  lost.counts = 0.0;
  lost.frequency_hz = Hertz{0.0};
  lost.retries = 3;
  log.add(lost);

  std::ostringstream os;
  log.write_csv(os);
  std::istringstream is(os.str());
  const auto back = DataLog::read_csv(is);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.records()[i].quality, log.records()[i].quality);
    EXPECT_EQ(back.records()[i].retries, log.records()[i].retries);
  }
  EXPECT_EQ(back.count_quality(SampleQuality::kRetried), 1u);
  EXPECT_EQ(back.count_quality(SampleQuality::kLost), 1u);
}

TEST(DataLog, SeriesSkipLostSamplesButKeepFlaggedOnes) {
  auto log = sample_log();
  auto suspect = record("R20Z6", 2400.0, 150.2e-9);
  suspect.quality = SampleQuality::kSuspect;
  log.add(suspect);
  auto lost = record("R20Z6", 3000.0, 0.0);
  lost.quality = SampleQuality::kLost;
  log.add(lost);

  EXPECT_EQ(log.phase_records("R20Z6").size(), 4u);  // nothing dropped
  EXPECT_EQ(log.delay_series("R20Z6").size(), 3u);   // lost excluded
  EXPECT_EQ(log.frequency_series("R20Z6").size(), 3u);
}

TEST(DataLog, ReadsLegacyCsvWithoutQualityColumns) {
  // Logs written before fault tolerance carry no quality/retries columns;
  // they load as all-good.
  const std::string legacy =
      "test_case,chip_id,phase,t_campaign_s,t_phase_s,chamber_c,supply_v,"
      "counts,frequency_hz,delay_s\n"
      "chip2,2,AS110DC24,1000.0,0.0,110.0,1.2,3300.0,3300000.0,1.5e-7\n";
  std::istringstream is(legacy);
  const auto log = DataLog::read_csv(is);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].quality, SampleQuality::kGood);
  EXPECT_EQ(log.records()[0].retries, 0);
}

TEST(SampleQuality, NamesRoundTrip) {
  for (const auto q : {SampleQuality::kGood, SampleQuality::kRetried,
                       SampleQuality::kSuspect, SampleQuality::kLost}) {
    EXPECT_EQ(parse_sample_quality(to_string(q)), q);
  }
  EXPECT_THROW(parse_sample_quality("fine"), std::invalid_argument);
}

TEST(SampleQuality, ParseErrorNamesTokenAndExpectedSet) {
  try {
    parse_sample_quality("suspct");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'suspct'"), std::string::npos) << what;
    EXPECT_NE(what.find("good|retried|suspect|lost"), std::string::npos)
        << what;
  }
}

TEST(DataLog, AllFourQualitiesRoundTripExactly) {
  // Regression guard for the full quality vocabulary in one log: every
  // SampleQuality value and its retry count must survive export -> import
  // bit-for-bit, in order.
  DataLog log;
  const SampleQuality qualities[] = {
      SampleQuality::kGood, SampleQuality::kRetried, SampleQuality::kSuspect,
      SampleQuality::kLost};
  int retries = 0;
  for (const auto q : qualities) {
    auto r = record("AS110DC24", 600.0 * retries, 150e-9);
    r.quality = q;
    r.retries = retries++;
    log.add(r);
  }

  std::ostringstream os;
  log.write_csv(os);
  std::istringstream is(os.str());
  const auto back = DataLog::read_csv(is);
  ASSERT_EQ(back.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.records()[i].quality, qualities[i]) << "record " << i;
    EXPECT_EQ(back.records()[i].retries, static_cast<int>(i))
        << "record " << i;
  }
}

TEST(DataLog, FractionalDegradationFirstToLastUsable) {
  DataLog log;
  log.add(record("AS110DC24", 0.0, 150e-9));     // f ~ 3.333 MHz
  log.add(record("AS110DC24", 3600.0, 153e-9));  // slower = degraded
  const double f0 = log.records()[0].frequency_hz.value();
  const double f1 = log.records()[1].frequency_hz.value();
  EXPECT_NEAR(log.fractional_degradation(), (f0 - f1) / f0, 1e-12);
  EXPECT_GT(log.fractional_degradation(), 0.0);
}

TEST(DataLog, FractionalDegradationSkipsLostRecords) {
  DataLog log;
  log.add(record("AS110DC24", 0.0, 150e-9));
  auto lost = record("AS110DC24", 1800.0, 0.0);
  lost.quality = SampleQuality::kLost;
  lost.frequency_hz = Hertz{0.0};
  log.add(lost);
  log.add(record("AS110DC24", 3600.0, 152e-9));
  const double f0 = log.records()[0].frequency_hz.value();
  const double f2 = log.records()[2].frequency_hz.value();
  EXPECT_NEAR(log.fractional_degradation(), (f0 - f2) / f0, 1e-12);
}

TEST(DataLog, FractionalDegradationDegenerateCasesAreZero) {
  DataLog empty;
  EXPECT_EQ(empty.fractional_degradation(), 0.0);
  DataLog one;
  one.add(record("AS110DC24", 0.0, 150e-9));
  EXPECT_EQ(one.fractional_degradation(), 0.0);  // one usable record
}

TEST(DataLog, FractionalDegradationNegativeAfterRecovery) {
  // A device that healed past its first sample reports a negative
  // degradation — the rejuvenation ranking must prefer others.
  DataLog log;
  log.add(record("R20Z6", 0.0, 152e-9));
  log.add(record("R20Z6", 1800.0, 150e-9));
  EXPECT_LT(log.fractional_degradation(), 0.0);
}

}  // namespace
}  // namespace ash::tb
