#include "ash/tb/test_case.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::tb {
namespace {

TEST(PaperCampaign, HasFiveChips) {
  const auto campaign = paper_campaign();
  ASSERT_EQ(campaign.size(), 5u);
  for (std::size_t i = 0; i < campaign.size(); ++i) {
    EXPECT_EQ(campaign[i].chip_id, static_cast<int>(i) + 1);
  }
}

TEST(PaperCampaign, EveryChipStartsWithBurnIn) {
  for (const auto& tc : paper_campaign()) {
    ASSERT_FALSE(tc.phases.empty());
    EXPECT_EQ(tc.phases.front().label, "BURNIN");
    EXPECT_EQ(tc.phases.front().chamber_c, Celsius{20.0});
    EXPECT_DOUBLE_EQ(tc.phases.front().supply_v.value(), 1.2);
    EXPECT_DOUBLE_EQ(tc.phases.front().duration_s.value(), hours(2.0));
  }
}

TEST(PaperCampaign, Table1RowsPresent) {
  // Every Table 1 case label must exist somewhere in the campaign.
  for (const char* label :
       {"AS110AC24", "AS110DC24", "AS100DC24", "AS110DC48", "R20Z6", "AR20N6",
        "AR110Z6", "AR110N6", "AR110N12"}) {
    EXPECT_NO_THROW(campaign_case(label)) << label;
  }
  EXPECT_THROW(campaign_case("NOPE"), std::out_of_range);
}

TEST(PaperCampaign, Chip1IsAcStressOnly) {
  const auto tc = campaign_case("AS110AC24");
  EXPECT_EQ(tc.chip_id, 1);
  ASSERT_EQ(tc.phases.size(), 2u);
  EXPECT_EQ(tc.phases[1].mode, fpga::RoMode::kAcOscillating);
  EXPECT_EQ(tc.phases[1].chamber_c, Celsius{110.0});
  EXPECT_DOUBLE_EQ(tc.phases[1].duration_s.value(), hours(24.0));
}

TEST(PaperCampaign, RecoveryConditionsMatchTable1) {
  struct Expect {
    const char* label;
    double v;
    double t_c;
    double hours_;
  };
  for (const auto& e : std::initializer_list<Expect>{
           {"R20Z6", 0.0, 20.0, 6.0},
           {"AR20N6", -0.3, 20.0, 6.0},
           {"AR110Z6", 0.0, 110.0, 6.0},
           {"AR110N6", -0.3, 110.0, 6.0},
           {"AR110N12", -0.3, 110.0, 12.0}}) {
    const auto tc = campaign_case(e.label);
    bool found = false;
    for (const auto& p : tc.phases) {
      if (p.label != e.label) continue;
      found = true;
      EXPECT_EQ(p.mode, fpga::RoMode::kSleep) << e.label;
      EXPECT_DOUBLE_EQ(p.supply_v.value(), e.v) << e.label;
      EXPECT_DOUBLE_EQ(p.chamber_c.value(), e.t_c) << e.label;
      EXPECT_DOUBLE_EQ(p.duration_s.value(), hours(e.hours_)) << e.label;
    }
    EXPECT_TRUE(found) << e.label;
  }
}

TEST(PaperCampaign, ActiveSleepRatioIsFourForBothChip5Rounds) {
  const auto tc = campaign_case("AR110N12");
  double stress24 = 0.0;
  double rec6 = 0.0;
  double stress48 = 0.0;
  double rec12 = 0.0;
  for (const auto& p : tc.phases) {
    if (p.label == "AS110DC24") stress24 = p.duration_s.value();
    if (p.label == "AR110N6") rec6 = p.duration_s.value();
    if (p.label == "AS110DC48") stress48 = p.duration_s.value();
    if (p.label == "AR110N12") rec12 = p.duration_s.value();
  }
  EXPECT_DOUBLE_EQ(stress24 / rec6, 4.0);
  EXPECT_DOUBLE_EQ(stress48 / rec12, 4.0);
}

TEST(PaperCampaign, SamplingCadencesMatchSection4) {
  const auto tc = campaign_case("AR110N6");
  for (const auto& p : tc.phases) {
    if (p.label == "AS110DC24") {
      EXPECT_DOUBLE_EQ(p.sample_every_s.value(), 20.0 * 60.0);  // 20 minutes
    }
    if (p.label == "AR110N6") {
      EXPECT_DOUBLE_EQ(p.sample_every_s.value(), 30.0 * 60.0);  // 30 minutes
    }
  }
}

TEST(TestCase, TotalDurationSumsPhases) {
  const auto tc = campaign_case("R20Z6");
  EXPECT_DOUBLE_EQ(tc.total_duration_s().value(), hours(2.0 + 24.0 + 6.0));
}

TEST(PhaseBuilders, StressPhasesUseNominalSupply) {
  EXPECT_DOUBLE_EQ(
      dc_stress_phase("x", Celsius{110.0}, units::hours(1.0)).supply_v.value(),
      1.2);
  EXPECT_DOUBLE_EQ(
      ac_stress_phase("x", Celsius{110.0}, units::hours(1.0)).supply_v.value(),
      1.2);
  EXPECT_DOUBLE_EQ(ac_stress_phase("x", Celsius{110.0}, units::hours(1.0)).ac_duty, 0.5);
}

}  // namespace
}  // namespace ash::tb
