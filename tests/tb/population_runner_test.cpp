#include "ash/tb/population_runner.h"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/util/thread_pool.h"

namespace ash::tb {
namespace {

fpga::ChipConfig chip_config(int i) {
  fpga::ChipConfig cc;
  cc.chip_id = i + 1;
  cc.seed = 0x9B0 + static_cast<std::uint64_t>(i);
  cc.ro_stages = 7;  // small ring keeps the lockstep x solo matrix cheap
  return cc;
}

// A schedule touching every engine path: an AC burn-in, a DC stress phase
// (frozen ring, measurement wakes), and a sleep recovery phase.
TestCase mini_campaign() {
  TestCase tc;
  tc.name = "population";
  Phase burn_in;
  burn_in.label = "BURNIN";
  burn_in.mode = fpga::RoMode::kAcOscillating;
  burn_in.supply_v = Volts{1.2};
  burn_in.chamber_c = Celsius{30.0};
  burn_in.duration_s = Seconds{600.0};
  burn_in.sample_every_s = Seconds{300.0};
  tc.phases.push_back(burn_in);
  Phase stress;
  stress.label = "AS110DC";
  stress.mode = fpga::RoMode::kDcFrozen;
  stress.supply_v = Volts{1.2};
  stress.chamber_c = Celsius{110.0};
  stress.duration_s = Seconds{3600.0};
  stress.sample_every_s = Seconds{1200.0};
  tc.phases.push_back(stress);
  Phase recover;
  recover.label = "AR110N";
  recover.mode = fpga::RoMode::kSleep;
  recover.supply_v = Volts{-0.3};
  recover.chamber_c = Celsius{110.0};
  recover.duration_s = Seconds{1800.0};
  recover.sample_every_s = Seconds{900.0};
  tc.phases.push_back(recover);
  return tc;
}

std::string csv_of(const DataLog& log) {
  std::ostringstream os;
  log.write_csv(os);
  return os.str();
}

// The tentpole determinism contract: a population run is byte-identical to
// N independent solo campaigns with the same config and schedule.
TEST(PopulationRunner, ExactModeByteIdenticalToSoloRuns) {
  const int kChips = 4;
  const RunnerConfig config;
  const TestCase tc = mini_campaign();

  std::vector<std::string> solo_csv;
  for (int i = 0; i < kChips; ++i) {
    fpga::FpgaChip chip(chip_config(i));
    ExperimentRunner runner(config);
    solo_csv.push_back(csv_of(runner.run(chip, tc)));
  }

  std::vector<fpga::FpgaChip> chips;
  chips.reserve(kChips);
  for (int i = 0; i < kChips; ++i) chips.emplace_back(chip_config(i));
  std::vector<fpga::FpgaChip*> ptrs;
  for (auto& c : chips) ptrs.push_back(&c);

  PopulationRunner runner(config);
  const auto logs = runner.run(ptrs, tc);
  ASSERT_EQ(logs.size(), static_cast<std::size_t>(kChips));
  for (int i = 0; i < kChips; ++i) {
    EXPECT_EQ(csv_of(logs[static_cast<std::size_t>(i)]), solo_csv[
        static_cast<std::size_t>(i)])
        << "chip " << i + 1 << " diverged from its solo run";
  }
}

// The aging state left on the chips matches solo too: a post-campaign
// frequency read is the log's own final frequency path.
TEST(PopulationRunner, LeavesChipsInSoloAgingState) {
  const RunnerConfig config;
  const TestCase tc = mini_campaign();

  fpga::FpgaChip solo_chip(chip_config(0));
  ExperimentRunner solo(config);
  solo.run(solo_chip, tc);

  fpga::FpgaChip pop_chip(chip_config(0));
  std::vector<fpga::FpgaChip*> ptrs{&pop_chip};
  PopulationRunner runner(config);
  runner.run(ptrs, tc);

  EXPECT_EQ(pop_chip.ro_frequency_hz(Volts{1.2}, Kelvin{383.15}),
            solo_chip.ro_frequency_hz(Volts{1.2}, Kelvin{383.15}));
}

// Sharding the occupancy sweeps over a pool must not change a single byte.
TEST(PopulationRunner, ThreadPoolShardingByteIdentical) {
  const RunnerConfig config;
  const TestCase tc = mini_campaign();
  const int kChips = 3;

  const auto run_with = [&](PopulationRunnerConfig pop) {
    std::vector<fpga::FpgaChip> chips;
    chips.reserve(kChips);
    for (int i = 0; i < kChips; ++i) chips.emplace_back(chip_config(i));
    std::vector<fpga::FpgaChip*> ptrs;
    for (auto& c : chips) ptrs.push_back(&c);
    std::vector<std::string> csv;
    for (const auto& log : PopulationRunner(config, pop).run(ptrs, tc)) {
      csv.push_back(csv_of(log));
    }
    return csv;
  };

  util::ThreadPool pool(4);
  PopulationRunnerConfig threaded;
  threaded.pool = &pool;
  EXPECT_EQ(run_with(threaded), run_with({}));
}

// Fast mode keeps the sample grid and metadata while perturbing only the
// physics-derived values within the documented budget.
TEST(PopulationRunner, FastModeTracksExactClosely) {
  const RunnerConfig config;
  const TestCase tc = mini_campaign();

  const auto run_one = [&](PopulationRunnerConfig pop) {
    fpga::FpgaChip chip(chip_config(0));
    std::vector<fpga::FpgaChip*> ptrs{&chip};
    return PopulationRunner(config, pop).run(ptrs, tc).front();
  };

  PopulationRunnerConfig fast;
  fast.fast_exp = true;
  const DataLog exact = run_one({});
  const DataLog approx = run_one(fast);
  ASSERT_EQ(exact.size(), approx.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto& e = exact.records()[i];
    const auto& a = approx.records()[i];
    EXPECT_EQ(e.t_campaign_s, a.t_campaign_s);
    EXPECT_EQ(e.phase, a.phase);
    ASSERT_GT(e.frequency_hz.value(), 0.0);
    EXPECT_NEAR(a.frequency_hz / e.frequency_hz, 1.0, 1e-9) << "record " << i;
  }
}

TEST(PopulationRunner, RejectsUnsupportedConfigurations) {
  RunnerConfig killed;
  killed.abort_at_campaign_s = Seconds{3600.0};
  EXPECT_THROW(PopulationRunner{killed}, std::invalid_argument);

  PopulationRunner runner{RunnerConfig{}};
  const TestCase tc = mini_campaign();
  std::vector<fpga::FpgaChip*> empty;
  EXPECT_THROW(runner.run(empty, tc), std::invalid_argument);

  std::vector<fpga::FpgaChip*> with_null{nullptr};
  EXPECT_THROW(runner.run(with_null, tc), std::invalid_argument);

  fpga::FpgaChip seven(chip_config(0));
  fpga::ChipConfig other_cc = chip_config(1);
  other_cc.ro_stages = 9;
  fpga::FpgaChip nine(other_cc);
  std::vector<fpga::FpgaChip*> mixed{&seven, &nine};
  EXPECT_THROW(runner.run(mixed, tc), std::invalid_argument);
}

TEST(PopulationRunner, EmptyScheduleYieldsEmptyLogs) {
  fpga::FpgaChip chip(chip_config(0));
  std::vector<fpga::FpgaChip*> ptrs{&chip};
  TestCase tc;
  tc.name = "empty";
  const auto logs = PopulationRunner{RunnerConfig{}}.run(ptrs, tc);
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs.front().size(), 0u);
}

}  // namespace
}  // namespace ash::tb
