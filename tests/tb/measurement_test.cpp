#include "ash/tb/measurement.h"

#include <vector>

#include <gtest/gtest.h>

#include "ash/util/stats.h"

namespace ash::tb {
namespace {

TEST(MeasurementRig, RecoversTrueFrequencyOnAverage) {
  MeasurementConfig c;
  MeasurementRig rig(c);
  const double f = 3.3e6;
  std::vector<double> fs;
  for (int i = 0; i < 2000; ++i) {
    fs.push_back(rig.measure(Hertz{f}).frequency_hz.value());
  }
  EXPECT_NEAR(mean(fs), f, 100.0);
}

TEST(MeasurementRig, AveragingReducesSpread) {
  MeasurementConfig one;
  one.readings_per_sample = 1;
  MeasurementConfig many;
  many.readings_per_sample = 16;
  MeasurementRig rig1(one);
  MeasurementRig rig16(many);
  std::vector<double> s1;
  std::vector<double> s16;
  for (int i = 0; i < 2000; ++i) {
    s1.push_back(rig1.measure(Hertz{3.3e6}).frequency_hz.value());
    s16.push_back(rig16.measure(Hertz{3.3e6}).frequency_hz.value());
  }
  EXPECT_GT(stddev(s1), 2.5 * stddev(s16));
}

TEST(MeasurementRig, ClockErrorBiasesInference) {
  MeasurementConfig c;
  c.clock.error_ppm = 1000.0;  // reference runs 0.1 % fast
  c.counter.noise_counts_sigma = 0.0;
  MeasurementRig rig(c);
  const double f = 3.2e6;
  // A fast reference opens the gate for less wall time than believed, so
  // the inferred frequency reads low by ~0.1 %.
  const double inferred = rig.measure(Hertz{f}).frequency_hz.value();
  EXPECT_NEAR(inferred / f, 1.0 - 1e-3, 2e-4);
}

TEST(MeasurementRig, DelayIsHalfInversePeriod) {
  MeasurementConfig c;
  c.counter.noise_counts_sigma = 0.0;
  MeasurementRig rig(c);
  const auto m = rig.measure(Hertz{3.3e6});
  EXPECT_NEAR(m.delay_s.value(), 1.0 / (2.0 * m.frequency_hz.value()), 1e-18);
}

TEST(MeasurementRig, SampleDurationIsUnderPaperOverheadBudget) {
  // 16 ref periods x 4 readings at 500 Hz = 128 ms << 3 s budget.
  MeasurementRig rig{MeasurementConfig{}};
  EXPECT_LT(rig.sample_duration_s().value(), 3.0);
  EXPECT_GT(rig.sample_duration_s().value(), 0.0);
}

TEST(MeasurementRig, RejectsNonPositiveReadingCount) {
  MeasurementConfig c;
  c.readings_per_sample = 0;
  EXPECT_THROW(MeasurementRig{c}, std::invalid_argument);
}

TEST(ClockGenerator, ActualFrequencyAppliesPpm) {
  ClockGenerator clk;
  clk.nominal_hz = Hertz{500.0};
  clk.error_ppm = 2000.0;
  EXPECT_DOUBLE_EQ(clk.actual_hz().value(), 501.0);
}

}  // namespace
}  // namespace ash::tb
