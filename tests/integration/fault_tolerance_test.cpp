/// Acceptance test for the fault-injection layer: under the representative
/// dirty-lab plan (one chamber excursion per phase, ~1 % dropped readings,
/// occasional supply glitches and comm losses), the fault-tolerant campaign
/// runner must still reproduce the paper's Table 4 headline — the best-case
/// design-margin-relaxed parameter — within 2 percentage points of the
/// ideal-lab value, while a naive runner (no retries, no robust estimator,
/// no watchdog) deviates more.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ash/core/metrics.h"
#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/fault.h"
#include "ash/tb/test_case.h"

namespace {

using namespace ash;

/// First three phases of the chip-5 schedule: burn-in, the 24 h DC stress
/// and the best-case accelerated recovery (110 degC, -0.3 V) whose
/// margin-relaxed parameter is the 72.4 % headline.
tb::TestCase chip5_head() {
  tb::TestCase tc = tb::campaign_case("AR110N6");
  tc.phases.resize(3);
  return tc;
}

fpga::FpgaChip paper_chip() {
  fpga::ChipConfig cc;
  cc.chip_id = 5;
  cc.seed = 0x40A0 + 5;
  cc.ro_stages = 15;  // per-device physics; smaller RO keeps the test fast
  return fpga::FpgaChip(cc);
}

/// Worst fractional per-sample delay error against the ideal-lab log,
/// index-aligned over usable records.  The margin headline only reads the
/// recovery-series endpoints; this covers everything else a downstream
/// recovery-dynamics fit would consume.
double worst_sample_error(const tb::DataLog& log, const tb::DataLog& ideal) {
  std::vector<double> a;
  std::vector<double> b;
  for (const auto& r : log.records()) {
    if (r.usable()) a.push_back(r.delay_s.value());
  }
  for (const auto& r : ideal.records()) {
    if (r.usable()) b.push_back(r.delay_s.value());
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    worst = std::max(worst, std::abs(a[i] / b[i] - 1.0));
  }
  return worst;
}

double margin_relaxed(const tb::DataLog& log) {
  double fresh_delay = 0.0;
  for (const auto& r : log.records()) {
    if (r.usable()) {
      fresh_delay = r.delay_s.value();
      break;
    }
  }
  return core::design_margin_relaxed(log.delay_series("AR110N6"),
                                     fresh_delay);
}

TEST(FaultTolerance, TolerantRunnerReproducesHeadlineUnderFaults) {
  const auto tc = chip5_head();
  const auto plan = tb::FaultPlan::representative();

  auto ideal_chip = paper_chip();
  const auto ideal =
      tb::ExperimentRunner(tb::RunnerConfig{}).run_campaign(ideal_chip, tc);

  auto tolerant_chip = paper_chip();
  const auto tolerant = tb::ExperimentRunner(tb::tolerant_runner_config(plan))
                            .run_campaign(tolerant_chip, tc);

  auto naive_chip = paper_chip();
  const auto naive = tb::ExperimentRunner(tb::naive_runner_config(plan))
                         .run_campaign(naive_chip, tc);

  const double m_ideal = margin_relaxed(ideal.log);
  const double m_tolerant = margin_relaxed(tolerant.log);
  const double m_naive = margin_relaxed(naive.log);

  // The ideal lab reproduces the Table 4 ballpark (the precise window is
  // asserted by paper_headlines_test on the full 75-stage chip).
  EXPECT_GT(m_ideal, 0.6);
  EXPECT_LT(m_ideal, 0.85);

  // Acceptance criterion: tolerant lab within 2 points of ideal...
  EXPECT_LE(std::abs(m_tolerant - m_ideal), 0.02)
      << "tolerant=" << m_tolerant << " ideal=" << m_ideal;
  // ...and strictly closer than the naive lab under identical faults.
  EXPECT_GT(std::abs(m_naive - m_ideal), std::abs(m_tolerant - m_ideal))
      << "naive=" << m_naive << " tolerant=" << m_tolerant
      << " ideal=" << m_ideal;

  // Beyond the endpoint-robust headline: the tolerant runner's whole
  // recovery trajectory stays within a couple of percent of the ideal
  // lab's, while the naive runner writes outlier readings straight into
  // its log (a single corrupted gated count shifts a sample's delay by
  // tens of percent).
  const double traj_tolerant = worst_sample_error(tolerant.log, ideal.log);
  const double traj_naive = worst_sample_error(naive.log, ideal.log);
  EXPECT_LT(traj_tolerant, 0.02) << "tolerant trajectory off ideal";
  EXPECT_GT(traj_naive, 0.05) << "naive log should contain corrupt samples";
  EXPECT_GT(traj_naive, traj_tolerant);

  // The dirty lab really was dirty, and the tolerant runner really worked.
  EXPECT_FALSE(tolerant.faults.clean());
  EXPECT_FALSE(naive.faults.clean());
}

TEST(FaultTolerance, FaultReportAccountsForEveryFlaggedSample) {
  const auto tc = chip5_head();
  auto chip = paper_chip();
  const auto result =
      tb::ExperimentRunner(tb::tolerant_runner_config(
                               tb::FaultPlan::representative()))
          .run_campaign(chip, tc);
  const auto yield = core::campaign_yield(result.log);
  EXPECT_EQ(yield.total, result.log.size());
  EXPECT_EQ(static_cast<int>(yield.retried), result.faults.samples_retried);
  EXPECT_EQ(static_cast<int>(yield.suspect), result.faults.samples_suspect);
  EXPECT_EQ(static_cast<int>(yield.lost), result.faults.samples_lost);
}

}  // namespace
