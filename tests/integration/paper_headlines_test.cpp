/// Integration tests: the paper's headline numbers, end to end.
///
/// These run the virtual lab through (reduced) Table 1 schedules and assert
/// the quantitative claims of the paper's abstract and evaluation — the
/// same checks the bench binaries print, but enforced.  A 15-stage RO keeps
/// the suite fast; the physics is per-device, so ratios match the 75-stage
/// CUT up to averaging noise.

#include <gtest/gtest.h>

#include "ash/core/metrics.h"
#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/constants.h"

namespace ash {
namespace {

struct RunResult {
  tb::DataLog log;
  double fresh_delay_s = 0.0;
  double fresh_frequency_hz = 0.0;
};

RunResult run_case(const tb::TestCase& tc, int stages = 15) {
  fpga::ChipConfig cc;
  cc.chip_id = tc.chip_id;
  cc.seed = 0x40A0 + static_cast<std::uint64_t>(tc.chip_id);
  cc.ro_stages = stages;
  fpga::FpgaChip chip(cc);
  tb::ExperimentRunner runner{tb::RunnerConfig{}};
  RunResult r;
  r.log = runner.run(chip, tc);
  r.fresh_delay_s = r.log.records().front().delay_s.value();
  r.fresh_frequency_hz = r.log.records().front().frequency_hz.value();
  return r;
}

double end_degradation(const RunResult& r, const std::string& phase) {
  const auto f = r.log.frequency_series(phase);
  return 1.0 - f.back().value / r.fresh_frequency_hz;
}

class PaperCampaign : public ::testing::Test {
 protected:
  // One shared campaign run for the whole suite (expensive setup).
  static void SetUpTestSuite() {
    results_ = new std::vector<RunResult>();
    for (const auto& tc : tb::paper_campaign()) {
      results_->push_back(run_case(tc));
    }
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }
  static const RunResult& chip(int id) {
    return results_->at(static_cast<std::size_t>(id - 1));
  }
  static std::vector<RunResult>* results_;
};

std::vector<RunResult>* PaperCampaign::results_ = nullptr;

TEST_F(PaperCampaign, Table2DcDegradationAt110C) {
  // Paper: ~2.2 %.
  const double deg = end_degradation(chip(2), "AS110DC24");
  EXPECT_GT(deg, 0.017);
  EXPECT_LT(deg, 0.028);
}

TEST_F(PaperCampaign, Table2DcDegradationAt100C) {
  // Paper: ~1.7 %, i.e. ~0.77x of the 110 degC case.
  const double deg100 = end_degradation(chip(4), "AS100DC24");
  const double deg110 = end_degradation(chip(2), "AS110DC24");
  EXPECT_GT(deg100, 0.012);
  EXPECT_LT(deg100, 0.022);
  EXPECT_NEAR(deg100 / deg110, 0.77, 0.12);
}

TEST_F(PaperCampaign, Fig4AcIsAboutHalfOfDc) {
  const double ac = end_degradation(chip(1), "AS110AC24");
  const double dc = end_degradation(chip(2), "AS110DC24");
  EXPECT_GT(ac / dc, 0.35);
  EXPECT_LT(ac / dc, 0.70);
}

TEST_F(PaperCampaign, Fig4FastThenSlowShape) {
  // A large share of the 24 h DC damage lands in the first 3 hours, but
  // clearly not all of it.
  const auto f = chip(2).log.frequency_series("AS110DC24");
  const double fresh = chip(2).fresh_frequency_hz;
  const double at3h = 1.0 - f.at(hours(3.0)) / fresh;
  const double at24h = 1.0 - f.back().value / fresh;
  EXPECT_GT(at3h / at24h, 0.50);
  EXPECT_LT(at3h / at24h, 0.85);
}

TEST_F(PaperCampaign, HeadlineAcceleratedCasesRecoverMostDamage) {
  // Abstract: "bring stressed chips back to within 90 % of their original
  // margin by actively rejuvenating for only 1/4 of the stress time".
  struct Case {
    int chip;
    const char* phase;
    double min_recovered;
  };
  for (const auto& c : {Case{3, "AR20N6", 0.78}, Case{4, "AR110Z6", 0.80},
                        Case{5, "AR110N6", 0.90}}) {
    const double frac = core::recovered_fraction(
        chip(c.chip).log.delay_series(c.phase), chip(c.chip).fresh_delay_s);
    EXPECT_GT(frac, c.min_recovered) << c.phase;
  }
}

TEST_F(PaperCampaign, PassiveRecoveryIsClearlyPartial) {
  const double frac = core::recovered_fraction(
      chip(2).log.delay_series("R20Z6"), chip(2).fresh_delay_s);
  EXPECT_GT(frac, 0.30);
  EXPECT_LT(frac, 0.70);
}

TEST_F(PaperCampaign, Fig8RecoveryOrderingHolds) {
  // Normalized remaining damage after 1 h of recovery, per condition.
  const auto remaining_frac = [&](int id, const char* phase) {
    const auto& r = chip(id);
    const auto d = r.log.delay_series(phase);
    const double damage0 = d.front().value - r.fresh_delay_s;
    const double damage1h = d.at(hours(1.0)) - r.fresh_delay_s;
    return damage1h / damage0;
  };
  const double hot_neg = remaining_frac(5, "AR110N6");
  const double hot = remaining_frac(4, "AR110Z6");
  const double neg = remaining_frac(3, "AR20N6");
  const double passive = remaining_frac(2, "R20Z6");
  EXPECT_LT(hot_neg, hot + 0.03);
  EXPECT_LT(hot, neg + 0.03);
  EXPECT_LT(neg, passive);
}

TEST_F(PaperCampaign, Table4MarginRelaxedNearPaperValue) {
  // Paper: 72.4 % for the best case.  (Our guardband convention maps the
  // ~90 % recovered fraction to ~72-77 %.)
  const double relaxed = core::design_margin_relaxed(
      chip(5).log.delay_series("AR110N6"), chip(5).fresh_delay_s);
  EXPECT_GT(relaxed, 0.64);
  EXPECT_LT(relaxed, 0.82);
}

TEST_F(PaperCampaign, Table5SameAlphaSameMarginRelaxed) {
  const auto& r5 = chip(5);
  const double relaxed6 = core::design_margin_relaxed(
      r5.log.delay_series("AR110N6"), r5.fresh_delay_s);
  const double fresh2 = r5.log.delay_series("AS110DC48").front().value;
  const double relaxed12 = core::design_margin_relaxed(
      r5.log.delay_series("AR110N12"), fresh2);
  EXPECT_NEAR(relaxed6, relaxed12, 0.06);
}

TEST_F(PaperCampaign, RecoverySamplingCadenceIsThirtyMinutes) {
  const auto recs = chip(5).log.phase_records("AR110N6");
  ASSERT_GE(recs.size(), 3u);
  EXPECT_NEAR((recs[1].t_phase_s - recs[0].t_phase_s).value(), 1800.0, 1.0);
}

TEST_F(PaperCampaign, BurnInBarelyAgesTheChips) {
  // Room-temperature burn-in is a baseline, not a stress: < 0.3 %.
  for (int id = 1; id <= 5; ++id) {
    const double deg = end_degradation(chip(id), "BURNIN");
    EXPECT_LT(deg, 0.003) << "chip " << id;
    EXPECT_GT(deg, -0.001) << "chip " << id;
  }
}

}  // namespace
}  // namespace ash
