/// Integration: Section 5's "test results and model validation" —
/// the closed-form model extracted from one chip's measurements must
/// predict other chips and other phases (the paper overlays model curves
/// on every measured figure; these tests enforce the match numerically).

#include <cmath>

#include <gtest/gtest.h>

#include "ash/core/metrics.h"
#include "ash/core/model_fit.h"
#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/constants.h"

namespace ash {
namespace {

struct Run {
  tb::DataLog log;
  double fresh_delay_s = 0.0;
};

Run run_chip(int id, const tb::TestCase& tc) {
  fpga::ChipConfig cc;
  cc.chip_id = id;
  cc.seed = 0x40A0 + static_cast<std::uint64_t>(id);
  cc.ro_stages = 15;
  fpga::FpgaChip chip(cc);
  tb::ExperimentRunner runner{tb::RunnerConfig{}};
  Run r;
  r.log = runner.run(chip, tc);
  r.fresh_delay_s = r.log.records().front().delay_s.value();
  return r;
}

tb::TestCase stress_recover_case(int chip, const char* rec_label,
                                 double rec_v, double rec_t) {
  tb::TestCase tc;
  tc.name = "validate";
  tc.chip_id = chip;
  tc.phases = {tb::burn_in_phase(),
               tb::dc_stress_phase("AS110DC24", Celsius{110.0}, units::hours(24.0)),
               tb::recovery_phase(rec_label, Volts{rec_v}, Celsius{rec_t}, units::hours(6.0))};
  return tc;
}

TEST(ModelValidation, StressFitIsExcellentOnEveryChip) {
  for (int chip = 1; chip <= 3; ++chip) {
    const auto run =
        run_chip(chip, stress_recover_case(chip, "AR110N6", -0.3, 110.0));
    const auto dtd = core::delay_change_series(
        run.log.delay_series("AS110DC24"), run.fresh_delay_s);
    const auto fit = core::ModelFitter().fit_stress(dtd);
    EXPECT_GT(fit.r_squared, 0.99) << "chip " << chip;
  }
}

TEST(ModelValidation, FitFromOneChipPredictsAnother) {
  // Extract Eq. (10) parameters on chip 1, predict chip 2's curve shape.
  const auto run1 =
      run_chip(1, stress_recover_case(1, "AR110N6", -0.3, 110.0));
  const auto run2 =
      run_chip(2, stress_recover_case(2, "AR110N6", -0.3, 110.0));
  const auto fit = core::ModelFitter().fit_stress(core::delay_change_series(
      run1.log.delay_series("AS110DC24"), run1.fresh_delay_s));

  const auto observed = core::delay_change_series(
      run2.log.delay_series("AS110DC24"), run2.fresh_delay_s);
  // Relative prediction error stays within ~15 % after the first hour.
  for (const auto& s : observed.samples()) {
    if (s.t < hours(1.0)) continue;
    const double predicted = fit.delta_td(s.t);
    EXPECT_NEAR(predicted / s.value, 1.0, 0.15) << "t=" << s.t;
  }
}

TEST(ModelValidation, RecoveryFitTransfersAcrossConditions) {
  // Fit the recovery law on the combined-knob case; its permanent ratio
  // must agree with the fit from the temperature-only case (the parameter
  // is a device property, not a condition property).
  const auto run_both =
      run_chip(5, stress_recover_case(5, "AR110N6", -0.3, 110.0));
  const auto run_hot =
      run_chip(4, stress_recover_case(4, "AR110Z6", 0.0, 110.0));
  const core::ModelFitter fitter;
  const auto fit_both = fitter.fit_recovery(
      core::delay_change_series(run_both.log.delay_series("AR110N6"),
                                run_both.fresh_delay_s),
      hours(24.0));
  const auto fit_hot = fitter.fit_recovery(
      core::delay_change_series(run_hot.log.delay_series("AR110Z6"),
                                run_hot.fresh_delay_s),
      hours(24.0));
  EXPECT_GT(fit_both.r_squared, 0.97);
  EXPECT_GT(fit_hot.r_squared, 0.97);
  // Combined knobs fit a larger acceleration than temperature alone.
  EXPECT_GT(fit_both.acceleration, fit_hot.acceleration);
}

TEST(ModelValidation, ClosedFormPredictsCampaignEndpointsBlind) {
  // No fitting at all: the from_td() closed form must predict the
  // *measured* recovered fraction of the AR110N6 case within 10 pp.
  const auto run =
      run_chip(5, stress_recover_case(5, "AR110N6", -0.3, 110.0));
  const double measured = core::recovered_fraction(
      run.log.delay_series("AR110N6"), run.fresh_delay_s);
  const bti::ClosedFormModel model(
      bti::ClosedFormParameters::from_td(bti::default_td_parameters()));
  const double predicted =
      1.0 - model.remaining_fraction(Seconds{hours(24.0)}, Seconds{hours(6.0)},
                                     bti::recovery(Volts{-0.3}, Celsius{110.0}));
  EXPECT_NEAR(measured, predicted, 0.10);
}

}  // namespace
}  // namespace ash
