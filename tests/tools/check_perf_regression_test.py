#!/usr/bin/env python3
"""Tests for tools/check_perf_regression.py — the CI perf gate.

Covers the contract edges the CI job relies on: a baseline missing the
gated kernel, malformed JSON input, and the exactly-at-threshold boundary
(2.00x must PASS; the gate is `ratio <= factor`, regression is strictly
beyond the factor).

Run directly or via ctest (`ctest -L perf`).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
GATE = os.path.join(REPO, "tools", "check_perf_regression.py")
KERNEL = "bti.trap_ensemble.evolve"


def bench_doc(ns_per_call, kernel=KERNEL):
    return {"kernels": [{"name": kernel, "ns_per_call": ns_per_call}]}


class CheckPerfRegressionTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_gate(self, *argv):
        proc = subprocess.run(
            [sys.executable, GATE, *argv], capture_output=True, text=True)
        return proc.returncode, proc.stdout, proc.stderr

    def test_ok_within_factor(self):
        cur = self.write("cur.json", bench_doc(120.0))
        base = self.write("base.json", bench_doc(100.0))
        code, out, _ = self.run_gate(cur, base)
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_regression_beyond_factor(self):
        cur = self.write("cur.json", bench_doc(250.0))
        base = self.write("base.json", bench_doc(100.0))
        code, out, _ = self.run_gate(cur, base)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_exactly_at_factor_passes(self):
        # ratio == factor is inside the gate: 2x on the nose is noise
        # tolerance, not a regression.
        cur = self.write("cur.json", bench_doc(200.0))
        base = self.write("base.json", bench_doc(100.0))
        code, out, _ = self.run_gate(cur, base)
        self.assertEqual(code, 0, out)
        self.assertIn("2.00x", out)
        self.assertIn("OK", out)

    def test_just_beyond_factor_fails(self):
        cur = self.write("cur.json", bench_doc(200.0001))
        base = self.write("base.json", bench_doc(100.0))
        code, out, _ = self.run_gate(cur, base)
        self.assertEqual(code, 1, out)

    def test_custom_factor(self):
        cur = self.write("cur.json", bench_doc(140.0))
        base = self.write("base.json", bench_doc(100.0))
        code, _, _ = self.run_gate(cur, base, "--factor=1.5")
        self.assertEqual(code, 0)
        code, _, _ = self.run_gate(cur, base, "--factor=1.3")
        self.assertEqual(code, 1)

    def test_missing_kernel_key_in_baseline(self):
        cur = self.write("cur.json", bench_doc(100.0))
        base = self.write("base.json", bench_doc(100.0, kernel="other.kernel"))
        code, _, err = self.run_gate(cur, base)
        self.assertEqual(code, 2)
        self.assertIn(KERNEL, err)

    def test_missing_kernels_array(self):
        cur = self.write("cur.json", bench_doc(100.0))
        base = self.write("base.json", {"not_kernels": []})
        code, _, err = self.run_gate(cur, base)
        self.assertEqual(code, 2)
        self.assertIn("check_perf_regression", err)

    def test_malformed_json(self):
        cur = self.write("cur.json", "{not json at all")
        base = self.write("base.json", bench_doc(100.0))
        code, _, err = self.run_gate(cur, base)
        self.assertEqual(code, 2)
        self.assertIn("check_perf_regression", err)

    def test_missing_baseline_file(self):
        cur = self.write("cur.json", bench_doc(100.0))
        missing = os.path.join(self.dir.name, "nope.json")
        code, _, err = self.run_gate(cur, missing)
        self.assertEqual(code, 2)
        self.assertIn("check_perf_regression", err)

    def test_no_arguments_prints_usage(self):
        code, _, err = self.run_gate()
        self.assertEqual(code, 2)
        self.assertIn("Usage", err)

    def test_zero_baseline_is_regression(self):
        cur = self.write("cur.json", bench_doc(100.0))
        base = self.write("base.json", bench_doc(0.0))
        code, _, _ = self.run_gate(cur, base)
        self.assertEqual(code, 1)

    def test_mixed_old_and_new_baseline_kernels(self):
        # A refreshed bench emits kernels an old baseline has never heard
        # of (bti.batch.evolve) and may drop retired ones.  Names present
        # in only one file are reported and skipped; the shared set is
        # still gated.
        cur = self.write("cur.json", {"kernels": [
            {"name": KERNEL, "ns_per_call": 120.0},
            {"name": "bti.batch.evolve", "ns_per_call": 50.0},
        ]})
        base = self.write("base.json", {"kernels": [
            {"name": KERNEL, "ns_per_call": 100.0},
            {"name": "retired.kernel", "ns_per_call": 10.0},
        ]})
        code, out, _ = self.run_gate(cur, base)
        self.assertEqual(code, 0, out)
        self.assertIn("bti.batch.evolve: only in current -> SKIPPED", out)
        self.assertIn("retired.kernel: only in baseline -> SKIPPED", out)

    def test_shared_secondary_kernel_is_gated_too(self):
        cur = self.write("cur.json", {"kernels": [
            {"name": KERNEL, "ns_per_call": 100.0},
            {"name": "bti.batch.evolve", "ns_per_call": 500.0},
        ]})
        base = self.write("base.json", {"kernels": [
            {"name": KERNEL, "ns_per_call": 100.0},
            {"name": "bti.batch.evolve", "ns_per_call": 100.0},
        ]})
        code, out, _ = self.run_gate(cur, base)
        self.assertEqual(code, 1, out)
        self.assertIn("bti.batch.evolve", out)
        self.assertIn("REGRESSION", out)

    def test_population_speedup_floors(self):
        # The batch-engine speedups are hard floors, not ratios against
        # the baseline: below 5x exact / 8x fast the fused sweep has
        # degenerated and no noise allowance forgives it.
        base = self.write("base.json", bench_doc(100.0))
        ok = dict(bench_doc(100.0), population_speedup_exact=6.0,
                  population_speedup_fast=9.0)
        code, out, _ = self.run_gate(self.write("ok.json", ok), base)
        self.assertEqual(code, 0, out)
        self.assertIn("population_speedup_exact: 6.00x", out)
        slow = dict(bench_doc(100.0), population_speedup_exact=4.5,
                    population_speedup_fast=9.0)
        code, out, _ = self.run_gate(self.write("slow.json", slow), base)
        self.assertEqual(code, 1, out)
        self.assertIn("population_speedup_exact: 4.50x", out)
        self.assertIn("REGRESSION", out)
        # A run without the summary (old binary) is not penalized.
        code, _, _ = self.run_gate(self.write("bare.json", bench_doc(100.0)),
                                   base)
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
