/// Flight recorder: ring semantics, crash-tolerant serialization, and the
/// async-signal-safe dump path.
///
/// The contract under test mirrors CheckpointStore's: a dump written by a
/// dying process may be torn anywhere, and load() must return the valid
/// prefix instead of failing — evidence beats completeness.  The torn-tail
/// sweep below cuts a real dump at *every* byte offset and requires each
/// cut to either parse to a prefix of the full event list or (only while
/// the header itself is torn) reject loudly.

#include "ash/obs/flight_recorder.h"

#include <unistd.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

using ash::obs::FlightEventKind;
using ash::obs::FlightRecord;
using ash::obs::FlightRecorder;

// The recorder holds atomics, so it is neither movable nor copyable;
// tests populate one in place.
void record_busy_session(FlightRecorder& rec) {
  rec.record(FlightEventKind::kDaemonStart, 17);
  rec.record(FlightEventKind::kStateLoaded, 17);
  rec.record(FlightEventKind::kConnectionAccepted, 1);
  rec.record(FlightEventKind::kSnapshotSaved, 18, 4096);
  rec.record(FlightEventKind::kMutationApplied, 3, 18);
  rec.record(FlightEventKind::kFrameError, 4);
  rec.record(FlightEventKind::kDrainBegin);
  rec.record(FlightEventKind::kDrainEnd, 18);
}

TEST(FlightRecorder, DisabledRecorderIsInert) {
  FlightRecorder rec(0);
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.capacity(), 0u);
  rec.record(FlightEventKind::kDaemonStart, 1, 2);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
  // A disabled recorder still serializes a valid (empty) document.
  const auto loaded = FlightRecorder::load(rec.serialize());
  EXPECT_TRUE(loaded.empty());
}

TEST(FlightRecorder, RecordsCarrySequenceKindAndDetails) {
  FlightRecorder rec(16);
  record_busy_session(rec);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
    if (i > 0) {
      EXPECT_GE(events[i].t_ms, events[i - 1].t_ms);
    }
  }
  EXPECT_EQ(events[0].kind, FlightEventKind::kDaemonStart);
  EXPECT_EQ(events[0].a, 17u);
  EXPECT_EQ(events[3].kind, FlightEventKind::kSnapshotSaved);
  EXPECT_EQ(events[3].a, 18u);
  EXPECT_EQ(events[3].b, 4096u);
  EXPECT_EQ(events[7].kind, FlightEventKind::kDrainEnd);
}

TEST(FlightRecorder, RingKeepsNewestEventsAndGlobalSequence) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(FlightEventKind::kConnectionAccepted,
               static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 10u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 7 + i);  // oldest retained is seq 7
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(FlightRecorder, SerializeLoadRoundTrip) {
  FlightRecorder rec(16);
  record_busy_session(rec);
  const auto original = rec.events();
  const auto loaded = FlightRecorder::load(rec.serialize());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].seq, original[i].seq);
    EXPECT_EQ(loaded[i].kind, original[i].kind);
    EXPECT_EQ(loaded[i].a, original[i].a);
    EXPECT_EQ(loaded[i].b, original[i].b);
    // t_ms survives with the dump's fixed three-decimal precision.
    EXPECT_NEAR(loaded[i].t_ms, original[i].t_ms, 1e-3);
  }
}

TEST(FlightRecorder, TornDumpSweepYieldsValidPrefixAtEveryCut) {
  FlightRecorder rec(16);
  record_busy_session(rec);
  const std::string dump = rec.serialize();
  const auto full = FlightRecorder::load(dump);
  ASSERT_EQ(full.size(), 8u);
  constexpr std::string_view kHeader = "ash-flight-recorder v1";
  for (std::size_t cut = 0; cut <= dump.size(); ++cut) {
    const std::string torn = dump.substr(0, cut);
    std::vector<FlightRecord> events;
    try {
      events = FlightRecorder::load(torn);
    } catch (const std::runtime_error&) {
      // Only a torn *header* may reject; any torn body must degrade.
      EXPECT_LT(cut, kHeader.size() + 1) << "rejected at cut " << cut;
      continue;
    }
    ASSERT_LE(events.size(), full.size()) << "cut " << cut;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].seq, full[i].seq) << "cut " << cut;
      EXPECT_EQ(events[i].kind, full[i].kind) << "cut " << cut;
      EXPECT_EQ(events[i].a, full[i].a) << "cut " << cut;
      EXPECT_EQ(events[i].b, full[i].b) << "cut " << cut;
    }
  }
}

TEST(FlightRecorder, TrailingGarbageAfterValidEventsIsDropped) {
  FlightRecorder rec(16);
  record_busy_session(rec);
  std::string dump = rec.serialize();
  dump += "event not-a-number bogus line\n\x01\x02binary trash";
  const auto events = FlightRecorder::load(dump);
  EXPECT_EQ(events.size(), 8u);
}

TEST(FlightRecorder, LoadRejectsForeignDocuments) {
  EXPECT_THROW((void)FlightRecorder::load(""), std::runtime_error);
  EXPECT_THROW((void)FlightRecorder::load("snapshot v3\n"),
               std::runtime_error);
}

TEST(FlightRecorder, WriteFdIsByteIdenticalToSerialize) {
  FlightRecorder rec(16);
  record_busy_session(rec);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(rec.write_fd(fds[1]));
  ::close(fds[1]);
  std::string read_back;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    read_back.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  EXPECT_EQ(read_back, rec.serialize());
}

TEST(FlightRecorder, WriteFdReportsFailure) {
  FlightRecorder rec(4);
  record_busy_session(rec);
  EXPECT_FALSE(rec.write_fd(-1));
}

TEST(FlightRecorder, RenderNamesEveryEvent) {
  FlightRecorder rec(16);
  record_busy_session(rec);
  const std::string table = FlightRecorder::render(rec.events());
  EXPECT_NE(table.find("daemon-start"), std::string::npos);
  EXPECT_NE(table.find("snapshot-saved"), std::string::npos);
  EXPECT_NE(table.find("drain-end"), std::string::npos);
}

TEST(FlightRecorder, EventKindNamesRoundTrip) {
  const int count = static_cast<int>(FlightEventKind::kCount);
  for (int i = 0; i < count; ++i) {
    const auto kind = static_cast<FlightEventKind>(i);
    EXPECT_EQ(ash::obs::parse_flight_event(ash::obs::to_string(kind)), kind);
  }
  EXPECT_EQ(ash::obs::parse_flight_event("no-such-event"),
            FlightEventKind::kCount);
}

}  // namespace
