/// TraceWriter: the streaming JSONL sink must cap resident trace memory
/// at its chunk size however long the mission, write every event it was
/// handed, and produce the same lines the buffering sink would.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ash/mc/fault.h"
#include "ash/mc/reliability.h"
#include "ash/mc/scheduler.h"
#include "ash/mc/system.h"
#include "ash/obs/trace.h"

namespace {

using namespace ash;

class SinkGuard {
 public:
  explicit SinkGuard(obs::TraceSink* sink) { obs::set_trace_sink(sink); }
  ~SinkGuard() { obs::set_trace_sink(nullptr); }
};

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

obs::TraceEvent make_event(int i) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kMeasurement;
  e.name = "sample-" + std::to_string(i);
  e.category = "test";
  e.sim_begin_s = e.sim_end_s = Seconds{static_cast<double>(i)};
  e.args.emplace_back("index", std::to_string(i));
  return e;
}

TEST(TraceWriter, ChunkedFlushBoundsTheBufferAndWritesEverything) {
  const std::string path = temp_path("trace_writer_chunks.jsonl");
  constexpr std::size_t kChunk = 16;
  constexpr int kEvents = 1000;
  {
    obs::TraceWriter writer(path, kChunk);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < kEvents; ++i) writer.record(make_event(i));
    EXPECT_LE(writer.max_buffered(), kChunk);
    // 1000 = 62 full chunks + a 8-event tail still buffered.
    EXPECT_EQ(writer.events_written(), (kEvents / kChunk) * kChunk);
  }  // destructor flushes the tail
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kEvents));
  EXPECT_NE(lines.front().find("\"name\":\"sample-0\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"name\":\"sample-999\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriter, MatchesTraceBufferJsonlByteForByte) {
  const std::string path = temp_path("trace_writer_equiv.jsonl");
  obs::TraceBuffer buffer;
  {
    obs::TraceWriter writer(path, 7);  // odd chunk: exercises the tail
    for (int i = 0; i < 100; ++i) {
      auto e = make_event(i);
      buffer.record(e);
      writer.record(std::move(e));
    }
  }
  std::ostringstream expected;
  buffer.write_jsonl(expected);
  std::ifstream is(path);
  std::ostringstream actual;
  actual << is.rdbuf();
  EXPECT_EQ(actual.str(), expected.str());
  std::remove(path.c_str());
}

TEST(TraceWriter, ReportsUnwritablePath) {
  obs::TraceWriter writer("/nonexistent-dir/trace.jsonl");
  EXPECT_FALSE(writer.ok());
}

TEST(TraceWriter, LongMcMissionStreamsWithBoundedMemory) {
  const std::string path = temp_path("trace_writer_mission.jsonl");
  constexpr std::size_t kChunk = 64;
  std::uint64_t written = 0;
  {
    obs::TraceWriter writer(path, kChunk);
    SinkGuard guard(&writer);

    mc::SystemConfig cfg;
    cfg.horizon_s = Seconds{365.25 * 86400.0};  // one year: 1461 intervals
    mc::HeaterAwareCircadianScheduler policy;
    mc::ReliabilityConfig rel;
    rel.margin_delta_vth_v = cfg.margin_delta_vth_v;
    mc::ReliabilityReport report;
    mc::ReliabilityManager managed(policy, rel, &report);
    const auto result = mc::simulate_system(
        cfg, managed, mc::CoreFaultPlan::harsh(), &report);
    ASSERT_GT(result.throughput_core_s.value(), 0.0);

    writer.flush();
    written = writer.events_written();
    // The mission must actually have traced (faults, quarantines, the run
    // span) and the writer must never have held more than one chunk.
    EXPECT_GT(written, kChunk);
    EXPECT_LE(writer.max_buffered(), kChunk);
    EXPECT_TRUE(writer.ok());
  }
  const auto lines = read_lines(path);
  EXPECT_EQ(lines.size(), written);
  EXPECT_NE(lines.back().find("\"kind\":\"run\""), std::string::npos)
      << "run span should close last";
  std::remove(path.c_str());
}

}  // namespace
