/// End-to-end observability: run real campaigns with a trace sink attached
/// and check that the trace, the fault/reliability reports and the metrics
/// registry all tell the same story.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "ash/fpga/chip.h"
#include "ash/mc/reliability.h"
#include "ash/mc/system.h"
#include "ash/obs/metrics.h"
#include "ash/obs/trace.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"

namespace {

using namespace ash;

class SinkGuard {
 public:
  explicit SinkGuard(obs::TraceSink* sink) { obs::set_trace_sink(sink); }
  ~SinkGuard() { obs::set_trace_sink(nullptr); }
};

tb::CampaignResult run_chip5(const tb::RunnerConfig& config) {
  tb::TestCase tc = tb::campaign_case("AR110N6");  // the chip-5 schedule
  fpga::ChipConfig cc;
  cc.chip_id = tc.chip_id;
  cc.seed = 0x40A0 + static_cast<std::uint64_t>(tc.chip_id);
  cc.ro_stages = 15;  // small chip keeps the test quick
  fpga::FpgaChip chip(cc);
  return tb::ExperimentRunner(config).run_campaign(chip, tc);
}

TEST(TraceCampaign, EveryPhaseGetsASpanAndEveryFaultAnEvent) {
  obs::TraceBuffer buffer;
  SinkGuard guard(&buffer);

  tb::FaultPlan plan = tb::FaultPlan::representative();
  const auto result = run_chip5(tb::tolerant_runner_config(plan));
  ASSERT_TRUE(result.completed);

  // One phase span per (phase, attempt); at least one per phase.
  std::set<std::string> span_labels;
  for (const auto& e : buffer.events()) {
    if (e.kind == obs::EventKind::kPhase) {
      EXPECT_TRUE(e.span);
      EXPECT_GE(e.sim_end_s, e.sim_begin_s);
      span_labels.insert(e.name);
    }
  }
  const tb::TestCase tc = tb::campaign_case("AR110N6");
  for (const auto& phase : tc.phases) {
    EXPECT_TRUE(span_labels.count(phase.label))
        << "no span for phase " << phase.label;
  }
  EXPECT_EQ(buffer.count(obs::EventKind::kRun), 1u);
  EXPECT_EQ(buffer.count(obs::EventKind::kPhaseTransition), tc.phases.size());

  // Every injected fault event in the report has a matching trace instant
  // (injected tallies survive phase rewinds, and so do their instants).
  const auto& faults = result.faults;
  const auto injected = static_cast<std::size_t>(
      faults.chamber_excursions + faults.sensor_faults +
      faults.supply_glitches + faults.clock_jumps + faults.readings_dropped +
      faults.outlier_readings + faults.comm_losses);
  EXPECT_EQ(buffer.count(obs::EventKind::kFaultInjected), injected);
  EXPECT_GT(injected, 0u) << "representative plan injected nothing";

  // Accepted samples each logged a measurement instant; rewound attempts
  // may add more (their samples left the log but the instants remain).
  EXPECT_GE(buffer.count(obs::EventKind::kMeasurement), result.log.size());
  EXPECT_EQ(buffer.count(obs::EventKind::kCheckpointSave), tc.phases.size());
  EXPECT_EQ(buffer.count(obs::EventKind::kCheckpointRewind),
            static_cast<std::size_t>(faults.phase_aborts));

  // Publishing the report yields counters equal to the report, which in
  // turn equal the trace: three views, one truth.
  obs::Registry reg;
  faults.publish(reg);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("tb.fault.chamber_excursions"),
            static_cast<std::uint64_t>(faults.chamber_excursions));
  EXPECT_EQ(snap.counter("tb.fault.phase_aborts"),
            buffer.count(obs::EventKind::kCheckpointRewind));
}

TEST(TraceCampaign, IdealRunInjectsNothing) {
  obs::TraceBuffer buffer;
  SinkGuard guard(&buffer);
  const auto result = run_chip5(tb::RunnerConfig{});
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.faults.clean());
  EXPECT_EQ(buffer.count(obs::EventKind::kFaultInjected), 0u);
  EXPECT_EQ(buffer.count(obs::EventKind::kRetry), 0u);
  EXPECT_GT(buffer.count(obs::EventKind::kMeasurement), 0u);
}

TEST(TraceMulticore, ManagerResponsesMatchReportAndTrace) {
  obs::TraceBuffer buffer;
  SinkGuard guard(&buffer);

  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{0.5 * 365.25 * 86400.0};
  cfg.margin_delta_vth_v = Volts{8e-3};
  auto plan = mc::CoreFaultPlan::harsh();  // plenty of events in half a year

  mc::HeaterAwareCircadianScheduler circadian;
  mc::ReliabilityConfig rel;
  rel.margin_delta_vth_v = cfg.margin_delta_vth_v;
  mc::ReliabilityReport report;
  mc::ReliabilityManager managed(circadian, rel, &report);
  const auto r = mc::simulate_system(cfg, managed, plan, &report);
  EXPECT_GT(r.throughput_core_s.value(), 0.0);

  EXPECT_EQ(buffer.count(obs::EventKind::kRun), 1u);
  const auto injected = static_cast<std::size_t>(
      report.transient_faults + report.permanent_deaths + report.stuck_rails +
      report.sensor_dropouts + report.sensor_stuck_windows);
  EXPECT_EQ(buffer.count(obs::EventKind::kFaultInjected), injected);
  EXPECT_GT(injected, 0u) << "harsh plan injected nothing in half a year";
  EXPECT_EQ(buffer.count(obs::EventKind::kQuarantine),
            static_cast<std::size_t>(report.cores_quarantined));
  EXPECT_EQ(buffer.count(obs::EventKind::kQuarantineRelease),
            static_cast<std::size_t>(report.quarantine_releases));
  EXPECT_EQ(buffer.count(obs::EventKind::kFailover),
            static_cast<std::size_t>(report.failovers));
  EXPECT_EQ(buffer.count(obs::EventKind::kFaultDetected),
            static_cast<std::size_t>(report.rails_flagged +
                                     report.thermal_trips));
}

}  // namespace
