/// Tests for the ash::obs observability layer: histogram bucketing, span
/// nesting, registry snapshots, report publishing (metrics == report,
/// bit-for-bit) and the trace exporters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ash/mc/fault.h"
#include "ash/obs/metrics.h"
#include "ash/obs/profile.h"
#include "ash/obs/trace.h"
#include "ash/tb/fault.h"

namespace {

using namespace ash;

/// RAII sink attachment so a failing assertion cannot leak a dangling
/// global sink into the next test.
class SinkGuard {
 public:
  explicit SinkGuard(obs::TraceSink* sink) { obs::set_trace_sink(sink); }
  ~SinkGuard() { obs::set_trace_sink(nullptr); }
};

TEST(Histogram, BucketsFollowLogScale) {
  obs::HistogramOptions opt;
  opt.min = 1e-3;
  opt.max = 1e3;
  opt.buckets_per_decade = 2;
  obs::Histogram h(opt);
  // 6 decades x 2 buckets.
  EXPECT_EQ(h.bucket_count(), 12);
  EXPECT_EQ(h.bucket_index(1e-3), 0);
  // One bucket spans half a decade: 10^0.5 ~ 3.162.
  EXPECT_EQ(h.bucket_index(2e-3), 0);
  EXPECT_EQ(h.bucket_index(4e-3), 1);
  EXPECT_EQ(h.bucket_index(1.0), 6);
  EXPECT_EQ(h.bucket_index(5.0), 7);
  // Clamped at both ends; NaN lands in bucket 0 rather than vanishing.
  EXPECT_EQ(h.bucket_index(1e-9), 0);
  EXPECT_EQ(h.bucket_index(1e9), 11);
  EXPECT_EQ(h.bucket_index(std::nan("")), 0);
  // Lower bounds are exact decade fractions.
  EXPECT_NEAR(h.bucket_lower_bound(0), 1e-3, 1e-12);
  EXPECT_NEAR(h.bucket_lower_bound(6), 1.0, 1e-9);
}

TEST(Histogram, ObserveAccumulatesCountSumAndBuckets) {
  obs::Histogram h;
  h.observe(1.0);
  h.observe(1.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 102.0);
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets[static_cast<std::size_t>(h.bucket_index(1.0))], 2u);
  EXPECT_EQ(buckets[static_cast<std::size_t>(h.bucket_index(100.0))], 1u);
}

TEST(Histogram, QuantileInterpolatesInLogSpace) {
  obs::HistogramOptions opt;
  opt.min = 1e-3;
  opt.max = 1e3;
  opt.buckets_per_decade = 4;
  obs::Histogram h(opt);
  for (int i = 0; i < 100; ++i) h.observe(1.0);
  // All mass in one bucket: every quantile lands inside that bucket's
  // log-space range [10^0, 10^0.25).
  const double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LT(p50, std::pow(10.0, 0.25));
  // Quantiles are monotone in p.
  EXPECT_LE(h.quantile(0.10), h.quantile(0.50));
  EXPECT_LE(h.quantile(0.50), h.quantile(0.99));
}

TEST(Histogram, QuantileBoundariesClampToHonestEdges) {
  obs::HistogramOptions opt;
  opt.min = 1e-3;
  opt.max = 1e3;
  opt.buckets_per_decade = 4;
  obs::Histogram h(opt);
  // Below-min and at/above-max observations live in the clamped edge
  // buckets; their quantile estimates must not invent values outside
  // [min, max] — the edges are the tightest honest bounds.
  for (int i = 0; i < 10; ++i) h.observe(1e-9);
  for (int i = 0; i < 10; ++i) h.observe(1e9);
  EXPECT_GE(h.quantile(0.0), opt.min);
  EXPECT_LE(h.quantile(0.25), std::pow(10.0, -2.75));  // first bucket
  EXPECT_LE(h.quantile(1.0), opt.max);
  EXPECT_GE(h.quantile(0.9), std::pow(10.0, 2.75));  // last bucket
  // p itself is clamped, not trusted.
  EXPECT_GE(h.quantile(-4.0), opt.min);
  EXPECT_LE(h.quantile(7.0), opt.max);
}

TEST(Histogram, QuantileNanPaths) {
  obs::Histogram empty;
  EXPECT_TRUE(std::isnan(empty.quantile(0.5)));  // no observations
  obs::Histogram h;
  h.observe(1.0);
  EXPECT_TRUE(std::isnan(h.quantile(std::nan(""))));  // NaN p
  EXPECT_FALSE(std::isnan(h.quantile(0.5)));
}

TEST(Registry, SnapshotReadsEverything) {
  obs::Registry reg;
  reg.counter("a").add(3);
  reg.counter("a").add(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h").observe(0.25);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a"), 5u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 1.5);
  EXPECT_TRUE(std::isnan(snap.gauge("missing")));
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_FALSE(snap.one_line().empty());
}

TEST(Registry, FilteredKeepsOnlyThePrefix) {
  obs::Registry reg;
  reg.counter("fleet.service.requests").add(4);
  reg.counter("fleet.client.calls").add(2);
  reg.gauge("fleet.service.backoff").set(0.5);
  reg.histogram("fleet.service.latency.ping").observe(1e-4);
  reg.histogram("mc.rel.margin").observe(1.0);
  const auto snap = reg.snapshot();
  const auto fleet = snap.filtered("fleet.service.");
  EXPECT_EQ(fleet.counters.size(), 1u);
  EXPECT_EQ(fleet.counter("fleet.service.requests"), 4u);
  EXPECT_EQ(fleet.gauges.size(), 1u);
  ASSERT_EQ(fleet.histograms.size(), 1u);
  EXPECT_EQ(fleet.histograms[0].name, "fleet.service.latency.ping");
  // "" keeps everything; an unmatched prefix keeps nothing.
  EXPECT_EQ(snap.filtered("").counters.size(), snap.counters.size());
  EXPECT_TRUE(snap.filtered("nope.").counters.empty());
  EXPECT_TRUE(snap.filtered("nope.").histograms.empty());
}

TEST(Registry, RenderedSnapshotsCarryQuantiles) {
  obs::Registry reg;
  auto& h = reg.histogram("lat");
  for (int i = 0; i < 32; ++i) h.observe(1e-3);
  reg.histogram("empty");  // zero-count: no quantile lines
  const auto snap = reg.snapshot();
  const std::string line = snap.one_line();
  EXPECT_NE(line.find("lat.p50="), std::string::npos);
  EXPECT_NE(line.find("lat.p95="), std::string::npos);
  EXPECT_NE(line.find("lat.p99="), std::string::npos);
  EXPECT_EQ(line.find("empty.p50="), std::string::npos);
  const std::string full = snap.render();
  EXPECT_NE(full.find("lat.p50="), std::string::npos);
  EXPECT_NE(full.find("lat.p99="), std::string::npos);
  EXPECT_EQ(full.find("empty.p50="), std::string::npos);
}

TEST(Registry, ReferencesAreStableAcrossRegistrations) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("stable");
  for (int i = 0; i < 100; ++i) {
    reg.counter("churn" + std::to_string(i));
  }
  a.add(1);
  EXPECT_EQ(reg.counter("stable").value(), 1u);
}

TEST(Publish, TbFaultReportMatchesCountersBitForBit) {
  tb::FaultReport r;
  r.chamber_excursions = 3;
  r.sensor_faults = 1;
  r.supply_glitches = 2;
  r.clock_jumps = 4;
  r.readings_dropped = 17;
  r.outlier_readings = 5;
  r.comm_losses = 6;
  r.samples_retried = 21;
  r.samples_suspect = 7;
  r.samples_lost = 2;
  r.phase_aborts = 1;
  r.phases_degraded = 1;
  r.samples_discarded = 40;

  obs::Registry reg;
  r.publish(reg);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("tb.fault.chamber_excursions"),
            static_cast<std::uint64_t>(r.chamber_excursions));
  EXPECT_EQ(snap.counter("tb.fault.sensor_faults"),
            static_cast<std::uint64_t>(r.sensor_faults));
  EXPECT_EQ(snap.counter("tb.fault.supply_glitches"),
            static_cast<std::uint64_t>(r.supply_glitches));
  EXPECT_EQ(snap.counter("tb.fault.clock_jumps"),
            static_cast<std::uint64_t>(r.clock_jumps));
  EXPECT_EQ(snap.counter("tb.fault.readings_dropped"),
            static_cast<std::uint64_t>(r.readings_dropped));
  EXPECT_EQ(snap.counter("tb.fault.outlier_readings"),
            static_cast<std::uint64_t>(r.outlier_readings));
  EXPECT_EQ(snap.counter("tb.fault.comm_losses"),
            static_cast<std::uint64_t>(r.comm_losses));
  EXPECT_EQ(snap.counter("tb.fault.samples_retried"),
            static_cast<std::uint64_t>(r.samples_retried));
  EXPECT_EQ(snap.counter("tb.fault.samples_suspect"),
            static_cast<std::uint64_t>(r.samples_suspect));
  EXPECT_EQ(snap.counter("tb.fault.samples_lost"),
            static_cast<std::uint64_t>(r.samples_lost));
  EXPECT_EQ(snap.counter("tb.fault.phase_aborts"),
            static_cast<std::uint64_t>(r.phase_aborts));
  EXPECT_EQ(snap.counter("tb.fault.phases_degraded"),
            static_cast<std::uint64_t>(r.phases_degraded));
  EXPECT_EQ(snap.counter("tb.fault.samples_discarded"),
            static_cast<std::uint64_t>(r.samples_discarded));
}

TEST(Publish, McReliabilityReportMatchesCountersBitForBit) {
  mc::ReliabilityReport r;
  r.transient_faults = 11;
  r.permanent_deaths = 2;
  r.wear_deaths = 1;
  r.stuck_rails = 3;
  r.sensor_dropouts = 29;
  r.cores_quarantined = 4;
  r.quarantine_releases = 2;
  r.failovers = 5;
  r.core_intervals_lost = 1234;
  r.healthy_margin_exceeded = true;
  r.healthy_time_to_first_margin_s = Seconds{86400.0};

  obs::Registry reg;
  r.publish(reg);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("mc.rel.transient_faults"), 11u);
  EXPECT_EQ(snap.counter("mc.rel.permanent_deaths"), 2u);
  EXPECT_EQ(snap.counter("mc.rel.wear_deaths"), 1u);
  EXPECT_EQ(snap.counter("mc.rel.stuck_rails"), 3u);
  EXPECT_EQ(snap.counter("mc.rel.sensor_dropouts"), 29u);
  EXPECT_EQ(snap.counter("mc.rel.cores_quarantined"), 4u);
  EXPECT_EQ(snap.counter("mc.rel.quarantine_releases"), 2u);
  EXPECT_EQ(snap.counter("mc.rel.failovers"), 5u);
  EXPECT_EQ(snap.counter("mc.rel.core_intervals_lost"), 1234u);
  EXPECT_DOUBLE_EQ(snap.gauge("mc.rel.healthy_margin_exceeded"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauge("mc.rel.healthy_time_to_first_margin_s"),
                   86400.0);
}

TEST(Trace, SpansNestAndCarrySimTime) {
  obs::TraceBuffer buffer;
  SinkGuard guard(&buffer);
  obs::set_sim_now(10.0);
  {
    obs::Span outer(obs::EventKind::kRun, "outer", "test");
    obs::set_sim_now(20.0);
    {
      obs::Span inner(obs::EventKind::kPhase, "inner", "test");
      inner.arg("k", "v");
      obs::set_sim_now(30.0);
    }
    obs::set_sim_now(40.0);
  }
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_DOUBLE_EQ(events[0].sim_begin_s.value(), 20.0);
  EXPECT_DOUBLE_EQ(events[0].sim_end_s.value(), 30.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "k");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_DOUBLE_EQ(events[1].sim_begin_s.value(), 10.0);
  EXPECT_DOUBLE_EQ(events[1].sim_end_s.value(), 40.0);
  EXPECT_GE(events[1].wall_end_ns, events[1].wall_begin_ns);
}

TEST(Trace, InstantsRecordAtSimNow) {
  obs::TraceBuffer buffer;
  SinkGuard guard(&buffer);
  obs::set_sim_now(5.5);
  obs::instant(obs::EventKind::kFaultInjected, "chamber.excursion",
               "tb.fault", {{"magnitude_c", "30"}});
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].span);
  EXPECT_DOUBLE_EQ(events[0].sim_begin_s.value(), 5.5);
  EXPECT_DOUBLE_EQ(events[0].sim_end_s.value(), 5.5);
  EXPECT_EQ(buffer.count(obs::EventKind::kFaultInjected), 1u);
  EXPECT_EQ(buffer.count(obs::EventKind::kRetry), 0u);
}

TEST(Trace, NothingRecordedWithoutSink) {
  obs::TraceBuffer buffer;
  obs::set_trace_sink(nullptr);
  obs::instant(obs::EventKind::kRetry, "x", "y");
  {
    obs::Span s(obs::EventKind::kPhase, "p", "c");
    EXPECT_FALSE(s.active());
  }
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(obs::tracing());
}

TEST(Trace, ChromeJsonIsWellFormed) {
  obs::TraceBuffer buffer;
  SinkGuard guard(&buffer);
  obs::set_sim_now(0.0);
  {
    obs::Span s(obs::EventKind::kPhase, "AS110\"DC\"24", "tb.phase");
    obs::set_sim_now(1.0);
  }
  obs::instant(obs::EventKind::kMeasurement, "sample", "tb.sample");
  std::ostringstream os;
  buffer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // The quote in the phase label must be escaped.
  EXPECT_NE(json.find("AS110\\\"DC\\\"24"), std::string::npos);
  // Balanced braces/brackets (crude but catches truncation).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  std::ostringstream jsonl;
  buffer.write_jsonl(jsonl);
  const std::string lines = jsonl.str();
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
}

TEST(Profile, TimersAggregateWhenEnabled) {
  obs::reset_profile();
  obs::enable_profiling(true);
  {
    obs::ScopedKernelTimer t(obs::Kernel::kTrapEnsembleEvolve);
  }
  {
    obs::ScopedKernelTimer t(obs::Kernel::kTrapEnsembleEvolve);
  }
  obs::enable_profiling(false);
  const auto snap = obs::profile_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kernel, obs::Kernel::kTrapEnsembleEvolve);
  EXPECT_EQ(snap[0].calls, 2u);
  EXPECT_FALSE(obs::profile_table().empty());
  obs::reset_profile();
  EXPECT_TRUE(obs::profile_snapshot().empty());
}

TEST(Profile, TimersIdleWhenDisabled) {
  obs::reset_profile();
  obs::enable_profiling(false);
  {
    obs::ScopedKernelTimer t(obs::Kernel::kMcInterval);
  }
  EXPECT_TRUE(obs::profile_snapshot().empty());
}

}  // namespace
