/// Overhead guard: the tracing/profiling instrumentation threaded through
/// the simulators must compile down to (almost) nothing when no sink is
/// attached and profiling is off.  The guard runs `mc::simulate_system` —
/// the most densely instrumented loop — both ways and fails if the
/// instrumented-but-idle build costs more than 5% (plus an absolute slack
/// for timer noise on small baselines).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "ash/mc/scheduler.h"
#include "ash/mc/system.h"
#include "ash/obs/flight_recorder.h"
#include "ash/obs/metrics.h"
#include "ash/obs/profile.h"
#include "ash/obs/trace.h"

namespace {

using namespace ash;

double run_once_s() {
  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{60.0 * 86400.0};  // two simulated months
  mc::HeaterAwareCircadianScheduler scheduler;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = mc::simulate_system(cfg, scheduler);
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_GT(r.throughput_core_s.value(), 0.0);
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best of N runs: the minimum is the least-noisy estimate of the true
/// cost on a shared CI machine.
double best_of(int n) {
  double best = run_once_s();
  for (int i = 1; i < n; ++i) best = std::min(best, run_once_s());
  return best;
}

TEST(Overhead, IdleInstrumentationWithinFivePercent) {
  // Baseline: no sink, no profiling — the instrumentation's idle state.
  obs::set_trace_sink(nullptr);
  obs::enable_profiling(false);

  // The guard tolerates scheduler jitter by retrying: a genuine overhead
  // regression fails every round, CI noise does not.
  constexpr double kRelativeBudget = 0.05;
  constexpr double kAbsoluteSlackS = 0.02;
  bool passed = false;
  double baseline_s = 0.0;
  double idle_s = 0.0;
  for (int round = 0; round < 3 && !passed; ++round) {
    baseline_s = best_of(3);
    idle_s = best_of(3);
    passed =
        idle_s <= baseline_s * (1.0 + kRelativeBudget) + kAbsoluteSlackS;
  }
  EXPECT_TRUE(passed) << "idle instrumentation run took " << idle_s
                      << " s against a baseline of " << baseline_s << " s";
}

TEST(Overhead, NullSinkStaysCheap) {
  // With a NullTraceSink attached and profiling on, everything is emitted
  // and thrown away; this exercises the full hot path.  Budget is looser
  // (the point is "usable", not "free"), and the same retry logic damps
  // machine noise.
  obs::set_trace_sink(nullptr);
  obs::enable_profiling(false);

  obs::NullTraceSink null_sink;
  constexpr double kRelativeBudget = 0.25;
  constexpr double kAbsoluteSlackS = 0.05;
  bool passed = false;
  double baseline_s = 0.0;
  double active_s = 0.0;
  for (int round = 0; round < 3 && !passed; ++round) {
    baseline_s = best_of(3);
    obs::set_trace_sink(&null_sink);
    obs::enable_profiling(true);
    active_s = best_of(3);
    obs::set_trace_sink(nullptr);
    obs::enable_profiling(false);
    passed =
        active_s <= baseline_s * (1.0 + kRelativeBudget) + kAbsoluteSlackS;
  }
  obs::reset_profile();
  EXPECT_TRUE(passed) << "null-sink instrumented run took " << active_s
                      << " s against a baseline of " << baseline_s << " s";
}

TEST(Overhead, DisabledPrimitivesAreBranchCheap) {
  // Micro-guard: a disabled timer/span/clock-publish must cost on the
  // order of a branch, not a clock read or an allocation.  100k disabled
  // timer+span pairs in well under a (generous) 50 ms even on a loaded
  // machine.
  obs::set_trace_sink(nullptr);
  obs::enable_profiling(false);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 100000; ++i) {
    obs::set_sim_now(static_cast<double>(i));
    obs::ScopedKernelTimer timer(obs::Kernel::kMcInterval);
    obs::Span span(obs::EventKind::kPhase, "p", "c");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  EXPECT_LT(elapsed_s, 0.05) << "100k disabled primitives took " << elapsed_s
                             << " s";
  EXPECT_TRUE(obs::profile_snapshot().empty());
}

TEST(Overhead, DisabledFlightRecorderAndNullTimersAreBranchCheap) {
  // The fleet daemon's uninstrumented request path: a capacity-0 flight
  // recorder and nullptr latency histograms.  Both must cost a branch —
  // no clock read, no atomic claim, no store.  Same 50 ms budget for 100k
  // iterations as the trace/profile micro-guard above.
  obs::FlightRecorder recorder(0);
  ASSERT_FALSE(recorder.enabled());
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 100000; ++i) {
    recorder.record(obs::FlightEventKind::kConnectionAccepted,
                    static_cast<std::uint64_t>(i));
    const obs::ScopedLatencyTimer timer(nullptr);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  EXPECT_LT(elapsed_s, 0.05) << "100k disabled recorder+timer iterations "
                             << "took " << elapsed_s << " s";
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.events().empty());
}

}  // namespace
