/// Chaos acceptance for the fleet service (`ctest -L faults`):
///
///   * a retrying client under the protocol chaos preset — dropped
///     connections, torn frames, stalled writes, daemon SIGKILL + restart —
///     converges to a transcript byte-identical to an undisturbed run;
///   * malformed-frame fuzz (truncations at every boundary, header bit
///     flips, hostile lengths, plain garbage) never crashes or hangs the
///     daemon;
///   * SIGTERM drains with a final durable snapshot; SIGKILL restarts
///     resume the acknowledged state and replay acknowledged mutations.
///
/// The daemon runs as a forked child (real sockets, real SIGKILL), the
/// same harness `ash_fleetd drill` uses.

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ash/fleet/client.h"
#include "ash/fleet/fault.h"
#include "ash/fleet/protocol.h"
#include "ash/fleet/service.h"
#include "ash/util/crc32.h"
#include "ash/util/syscall.h"

namespace ash::fleet {
namespace {

/// A forked daemon: SIGKILL-able, restartable, drainable.
class ForkedDaemon {
 public:
  explicit ForkedDaemon(ServiceConfig config) : config_(std::move(config)) {}
  ~ForkedDaemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
    }
  }

  void start() {
    pid_ = ::fork();
    ASSERT_GE(pid_, 0) << "fork failed";
    if (pid_ == 0) {
      try {
        Service service(config_);
        service.run();
        std::_Exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fleetd[test daemon]: %s\n", e.what());
        std::_Exit(3);
      }
    }
  }

  void kill_and_restart() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
      pid_ = -1;
    }
    start();
  }

  /// SIGTERM and reap; 0 = clean drain.
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

 private:
  ServiceConfig config_;
  pid_t pid_ = -1;
};

/// Blocking raw connect with a startup-grace retry loop.
int raw_connect(const std::string& socket_path) {
  for (int tries = 0; tries < 500; ++tries) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    const auto ret = util::retry_eintr([&] {
      return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr);
    });
    if (ret == 0) return fd;
    ::close(fd);
    ::usleep(10'000);
  }
  return -1;
}

void send_raw(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto n = util::retry_eintr([&] {
      return ::send(fd, bytes.data() + sent, bytes.size() - sent,
                    MSG_NOSIGNAL);
    });
    if (n <= 0) return;  // daemon dropped us — exactly what fuzz expects
    sent += static_cast<std::size_t>(n);
  }
}

class ServiceChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ash_chaos_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  ServiceConfig daemon_config(const std::string& name) {
    const std::string root = dir_ + "/" + name;
    const std::string cmd = "mkdir -p '" + root + "/state'";
    if (std::system(cmd.c_str()) != 0) ADD_FAILURE() << "mkdir " << root;
    ServiceConfig config;
    config.socket_path = root + "/fleetd.sock";
    config.state_dir = root + "/state";
    config.devices = 6;
    config.seed = 0xC4A05;
    // Tight deadline: the 400 ms chaos stall triggers a real slow-loris
    // eviction; honest requests never park that long.
    config.io_timeout_ms = 150;
    config.poll_interval_ms = 5;
    return config;
  }

  /// The scripted session both the clean and the chaos run replay.
  struct SessionResult {
    std::string transcript;
    ClientStats stats;
  };
  static SessionResult run_session(ForkedDaemon& daemon,
                                   const ServiceConfig& config,
                                   const FleetFaultPlan& chaos) {
    ClientConfig cc;
    cc.socket_path = config.socket_path;
    cc.client_id = 42;
    cc.chaos = chaos;
    cc.kill_daemon = [&daemon] { daemon.kill_and_restart(); };
    Client client(cc);
    for (int i = 0; i < 12; ++i) {
      const auto device = static_cast<std::uint64_t>(i % 6);
      switch (i % 4) {
        case 0:
          (void)client.status();
          break;
        case 1: {
          MarginRequest req;
          req.device_id = device;
          req.duty = 0.25 * (1 + i % 3);
          (void)client.margin(req);
          break;
        }
        case 2: {
          ScheduleSleepRequest req;
          req.device_id = device;
          req.start = Seconds{3600.0 * i};
          (void)client.schedule_sleep(req);
          break;
        }
        default:
          (void)client.ping();
          break;
      }
    }
    (void)client.status();  // final durable-state fingerprint
    return {client.transcript(), client.stats()};
  }

  std::string dir_;
};

TEST_F(ServiceChaosTest, ChaosTranscriptIsByteIdenticalToCleanRun) {
  SessionResult results[2];
  const char* names[2] = {"clean", "chaos"};
  for (int session = 0; session < 2; ++session) {
    const ServiceConfig config = daemon_config(names[session]);
    ForkedDaemon daemon(config);
    daemon.start();
    results[session] = run_session(
        daemon, config,
        session == 0 ? FleetFaultPlan::none() : FleetFaultPlan::protocol());
    EXPECT_EQ(daemon.terminate(), 0) << names[session] << " daemon drained";
  }
  // The chaos actually happened...
  const ClientStats& chaos = results[1].stats;
  EXPECT_GT(chaos.drops_injected, 0u);
  EXPECT_GT(chaos.truncations_injected, 0u);
  EXPECT_GT(chaos.stalls_injected, 0u);
  EXPECT_GT(chaos.daemon_kills_injected, 0u);
  EXPECT_GT(chaos.reconnects, results[0].stats.reconnects);
  // ...and the transcripts are still byte-identical.
  ASSERT_FALSE(results[0].transcript.empty());
  EXPECT_EQ(util::crc32(results[0].transcript),
            util::crc32(results[1].transcript));
  EXPECT_EQ(results[0].transcript, results[1].transcript);
}

TEST_F(ServiceChaosTest, MalformedFrameFuzzNeverCrashesOrHangsTheDaemon) {
  const ServiceConfig config = daemon_config("fuzz");
  ForkedDaemon daemon(config);
  daemon.start();

  // Corpus: a valid status request torn at every byte boundary, every
  // single-bit corruption of its header, hostile garbage, and a frame
  // declaring a 16-exabyte payload with a self-consistent header CRC.
  const std::string good =
      frame_message(MessageType::kStatusRequest, 1, StatusRequest().encode());
  std::vector<std::string> corpus;
  for (std::size_t cut = 0; cut <= good.size(); ++cut) {
    corpus.push_back(good.substr(0, cut));
  }
  for (std::size_t bit = 0; bit < kFrameHeaderSize * 8; ++bit) {
    std::string bad = good;
    bad[bit / 8] = static_cast<char>(bad[bit / 8] ^ (1u << (bit % 8)));
    corpus.push_back(bad);
  }
  corpus.push_back("GET / HTTP/1.1\r\nHost: fleetd\r\n\r\n");
  corpus.push_back(std::string(512, '\xff'));
  corpus.push_back(std::string(512, '\0'));
  {
    std::string huge = good;
    for (int i = 0; i < 8; ++i) huge[24 + i] = '\xff';
    const std::uint32_t crc =
        util::crc32(std::string_view(huge).substr(0, 36));
    for (int i = 0; i < 4; ++i) {
      huge[36 + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
    }
    corpus.push_back(huge.substr(0, kFrameHeaderSize));
  }

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const int fd = raw_connect(config.socket_path);
    ASSERT_GE(fd, 0) << "daemon unreachable before case " << i;
    send_raw(fd, corpus[i]);
    ::close(fd);
  }

  // The daemon survived every case: a well-formed client still gets
  // answers within its deadline (no hang), and SIGTERM drains cleanly.
  ClientConfig cc;
  cc.socket_path = config.socket_path;
  cc.io_timeout_ms = 2000;
  Client client(cc);
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(client.status().devices, 6u);
  EXPECT_EQ(daemon.terminate(), 0);
}

TEST_F(ServiceChaosTest, SigkillRestartReplaysAcknowledgedMutations) {
  const ServiceConfig config = daemon_config("sigkill");
  ForkedDaemon daemon(config);
  daemon.start();

  std::string first_transcript;
  {
    ClientConfig cc;
    cc.socket_path = config.socket_path;
    cc.client_id = 7;
    Client client(cc);
    ScheduleSleepRequest req;
    req.device_id = 2;
    req.start = Seconds{7200.0};
    EXPECT_EQ(client.schedule_sleep(req).windows, 1u);
    req.device_id = 3;
    EXPECT_EQ(client.schedule_sleep(req).windows, 1u);
    EXPECT_EQ(client.status().sequence, 2u);
    first_transcript = client.transcript();
  }

  daemon.kill_and_restart();

  // A fresh client with the same client_id re-issues the same request ids
  // from 1: every call must replay against the restarted daemon's durable
  // idempotency table — same bytes, nothing double-booked.
  ClientConfig cc;
  cc.socket_path = config.socket_path;
  cc.client_id = 7;
  Client client(cc);
  ScheduleSleepRequest req;
  req.device_id = 2;
  req.start = Seconds{7200.0};
  EXPECT_EQ(client.schedule_sleep(req).windows, 1u);
  req.device_id = 3;
  EXPECT_EQ(client.schedule_sleep(req).windows, 1u);
  const StatusResponse status = client.status();
  EXPECT_EQ(status.sequence, 2u);  // replays, not new mutations
  EXPECT_EQ(status.windows, 2u);
  EXPECT_EQ(client.transcript(), first_transcript);
  EXPECT_EQ(daemon.terminate(), 0);
}

TEST_F(ServiceChaosTest, SigtermDrainWritesFinalSnapshotAndMetrics) {
  ServiceConfig config = daemon_config("drain");
  config.metrics_path = dir_ + "/drain/metrics.txt";
  {
    ForkedDaemon daemon(config);
    daemon.start();
    ClientConfig cc;
    cc.socket_path = config.socket_path;
    Client client(cc);
    ScheduleSleepRequest req;
    req.device_id = 1;
    (void)client.schedule_sleep(req);
    EXPECT_TRUE(client.ping());
    EXPECT_EQ(daemon.terminate(), 0);
  }
  // The drain published its metrics snapshot...
  std::string metrics;
  {
    std::FILE* f = std::fopen(config.metrics_path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "metrics snapshot missing";
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    std::fclose(f);
    metrics.assign(buf, n);
  }
  EXPECT_NE(metrics.find("fleet.service.requests"), std::string::npos);
  EXPECT_NE(metrics.find("fleet.service.mutations"), std::string::npos);
  // ...and the socket file is gone (clean unbind).
  EXPECT_NE(::access(config.socket_path.c_str(), F_OK), 0);
  // A restarted daemon resumes the acknowledged state.
  ForkedDaemon reborn(config);
  reborn.start();
  ClientConfig cc;
  cc.socket_path = config.socket_path;
  Client client(cc);
  const StatusResponse status = client.status();
  EXPECT_EQ(status.sequence, 1u);
  EXPECT_EQ(status.windows, 1u);
  EXPECT_EQ(reborn.terminate(), 0);
}

TEST_F(ServiceChaosTest, SlowLorisIsEvictedWhileHonestClientsAreServed) {
  const ServiceConfig config = daemon_config("loris");
  ForkedDaemon daemon(config);
  daemon.start();

  // Park half a frame and go silent.
  const std::string bytes =
      frame_message(MessageType::kStatusRequest, 9, StatusRequest().encode());
  const int loris = raw_connect(config.socket_path);
  ASSERT_GE(loris, 0);
  send_raw(loris, bytes.substr(0, kFrameHeaderSize / 2));

  // Honest clients keep getting served while the loris squats.
  ClientConfig cc;
  cc.socket_path = config.socket_path;
  Client client(cc);
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.ping());

  // The daemon evicts the loris at its I/O deadline: our end sees EOF.
  char drain[64];
  const auto n = util::retry_eintr(
      [&] { return ::recv(loris, drain, sizeof drain, 0); });
  EXPECT_EQ(n, 0) << "loris connection should be closed by the daemon";
  ::close(loris);

  EXPECT_TRUE(client.ping());  // and honest service continues
  EXPECT_EQ(daemon.terminate(), 0);
}

}  // namespace
}  // namespace ash::fleet
