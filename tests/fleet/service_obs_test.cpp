/// Observability acceptance for the fleet service (`ctest -L faults`):
///
///   * the volatile scrape channel (metrics / profile / health) answers
///     over the real wire with the daemon's live tallies;
///   * scrapes interleaved mid-session stay out of the client transcript,
///     so the chaos transcript-identity gate is unperturbed by watching;
///   * a SIGKILLed daemon leaves a loadable flight-recorder dump whose
///     events explain the life it led;
///   * the SIGTERM drain's metrics dump is atomic: complete content, no
///     temp-file debris, readable while torn-write chaos reigns elsewhere.
///
/// The daemon runs as a forked child (real sockets, real signals), the
/// same harness the chaos suite and `ash_fleetd drill` use.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ash/fleet/client.h"
#include "ash/fleet/protocol.h"
#include "ash/fleet/service.h"
#include "ash/obs/flight_recorder.h"
#include "ash/obs/metrics.h"
#include "ash/util/atomic_file.h"
#include "ash/util/syscall.h"

namespace ash::fleet {
namespace {

class ForkedDaemon {
 public:
  explicit ForkedDaemon(ServiceConfig config) : config_(std::move(config)) {}
  ~ForkedDaemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
    }
  }

  void start() {
    pid_ = ::fork();
    ASSERT_GE(pid_, 0) << "fork failed";
    if (pid_ == 0) {
      try {
        Service service(config_);
        service.run();
        std::_Exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fleetd[obs test daemon]: %s\n", e.what());
        std::_Exit(3);
      }
    }
  }

  void sigkill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
    pid_ = -1;
  }

  /// SIGTERM and reap; 0 = clean drain.
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

 private:
  ServiceConfig config_;
  pid_t pid_ = -1;
};

/// Parse a `MetricsSnapshot::render()` document into name -> value.
double metric_value(const std::string& text, const std::string& name,
                    bool* found = nullptr) {
  if (found != nullptr) *found = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    if (line.substr(0, eq) != name) continue;
    if (found != nullptr) *found = true;
    return std::strtod(line.c_str() + eq + 1, nullptr);
  }
  return 0.0;
}

class ServiceObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ash_obs_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  ServiceConfig daemon_config(const std::string& name) {
    const std::string root = dir_ + "/" + name;
    const std::string cmd = "mkdir -p '" + root + "/state'";
    if (std::system(cmd.c_str()) != 0) ADD_FAILURE() << "mkdir " << root;
    ServiceConfig config;
    config.socket_path = root + "/fleetd.sock";
    config.state_dir = root + "/state";
    config.devices = 6;
    config.seed = 0x0B5;
    config.poll_interval_ms = 5;
    config.flight_recorder_path = root + "/flight.txt";
    config.metrics_path = root + "/metrics.txt";
    return config;
  }

  std::string dir_;
};

TEST_F(ServiceObsTest, InProcessScrapesAnswerLiveTallies) {
  // Drive respond() directly: the scrape responses must agree with the
  // service's own accessors, request by request.
  ServiceConfig config = daemon_config("inproc");
  Service service(config);

  ScheduleSleepRequest sleep_req;
  sleep_req.client_id = 9;
  sleep_req.device_id = 2;
  const Frame ack = service.respond(
      {MessageType::kScheduleSleepRequest, 1, sleep_req.encode()});
  ASSERT_EQ(ack.type, MessageType::kScheduleSleepResponse);
  EXPECT_EQ(ScheduleSleepResponse::parse(ack.payload).windows, 1u);

  const Frame health_frame = service.respond(
      {MessageType::kHealthRequest, 2, HealthRequest{}.encode()});
  ASSERT_EQ(health_frame.type, MessageType::kHealthResponse);
  const HealthResponse health = HealthResponse::parse(health_frame.payload);
  EXPECT_EQ(health.snapshot_lag, service.snapshot_lag());
  EXPECT_FALSE(health.draining);

  MetricsRequest metrics_req;
  metrics_req.prefix = "fleet.service.";
  const Frame metrics_frame = service.respond(
      {MessageType::kMetricsRequest, 3, metrics_req.encode()});
  ASSERT_EQ(metrics_frame.type, MessageType::kMetricsResponse);
  const MetricsResponse metrics =
      MetricsResponse::parse(metrics_frame.payload);
  // The scrape text is the publish_volatile view: the mutation above must
  // already be visible, and the prefix filter must hold.
  bool found = false;
  EXPECT_EQ(metric_value(metrics.text, "fleet.service.mutations", &found),
            1.0);
  EXPECT_TRUE(found);
  EXPECT_EQ(metrics.text.find("fleet.protocol."), std::string::npos)
      << "prefix filter leaked foreign metrics";

  const Frame profile_frame = service.respond(
      {MessageType::kProfileRequest, 4, ProfileRequest{}.encode()});
  ASSERT_EQ(profile_frame.type, MessageType::kProfileResponse);
  EXPECT_EQ(ProfileResponse::parse(profile_frame.payload).status,
            Status::kOk);

  // Scrapes are reads: no mutation applied, no durable sequence advance.
  EXPECT_EQ(service.state().sequence, 1u);
}

TEST_F(ServiceObsTest, WireScrapesReportTheDaemonsLife) {
  const ServiceConfig config = daemon_config("wire");
  ForkedDaemon daemon(config);
  daemon.start();

  ClientConfig cc;
  cc.socket_path = config.socket_path;
  cc.client_id = 5;
  Client client(cc);

  ScheduleSleepRequest req;
  req.client_id = cc.client_id;
  req.device_id = 3;
  EXPECT_EQ(client.schedule_sleep(req).windows, 1u);
  EXPECT_TRUE(client.ping());

  const HealthResponse health = client.health();
  EXPECT_EQ(health.status, Status::kOk);
  EXPECT_GE(health.requests, 2u);
  EXPECT_GE(health.connections, 1u);
  EXPECT_GE(health.connections_high_water, health.connections);
  EXPECT_EQ(health.snapshot_lag, 0u) << "write-ahead means no lag at rest";
  EXPECT_FALSE(health.draining);

  const MetricsResponse metrics = client.metrics("fleet.");
  ASSERT_EQ(metrics.status, Status::kOk);
  bool found = false;
  EXPECT_GE(metric_value(metrics.text, "fleet.service.requests", &found),
            2.0);
  EXPECT_TRUE(found);
  EXPECT_EQ(metric_value(metrics.text, "fleet.service.mutations", &found),
            1.0);
  EXPECT_TRUE(found);
  // The daemon decodes frames through the same tallied choke point the
  // protocol tests pin, and publishes the counters under fleet.protocol.*.
  EXPECT_GE(
      metric_value(metrics.text, "fleet.protocol.frames_decoded", &found),
      3.0);
  EXPECT_TRUE(found);
  // The instrumented request path recorded per-verb latency histograms.
  EXPECT_GE(metric_value(metrics.text,
                         "fleet.service.latency.schedule_sleep.count",
                         &found),
            1.0);
  EXPECT_TRUE(found);

  const ProfileResponse profile = client.profile();
  EXPECT_EQ(profile.status, Status::kOk);
  EXPECT_FALSE(profile.profiling) << "profiling defaults off daemon-side";

  EXPECT_EQ(daemon.terminate(), 0);
}

TEST_F(ServiceObsTest, ScrapesStayOutOfTheTranscript) {
  // Two sessions issue the identical deterministic request sequence; the
  // second also scrapes between every request.  Transcripts must match
  // byte-for-byte — the "watching cannot perturb the gate" guarantee the
  // drill relies on.
  std::string transcripts[2];
  const char* names[2] = {"quiet", "watched"};
  for (int session = 0; session < 2; ++session) {
    const ServiceConfig config = daemon_config(names[session]);
    ForkedDaemon daemon(config);
    daemon.start();
    ClientConfig cc;
    cc.socket_path = config.socket_path;
    cc.client_id = 11;
    Client client(cc);
    for (int i = 0; i < 6; ++i) {
      if (i % 2 == 0) {
        (void)client.status();
      } else {
        ScheduleSleepRequest req;
        req.client_id = cc.client_id;
        req.device_id = static_cast<std::uint64_t>(i);
        (void)client.schedule_sleep(req);
      }
      if (session == 1) {
        (void)client.health();
        (void)client.metrics("fleet.service.");
        (void)client.profile();
      }
    }
    transcripts[session] = client.transcript();
    EXPECT_EQ(daemon.terminate(), 0);
  }
  ASSERT_FALSE(transcripts[0].empty());
  EXPECT_EQ(transcripts[0], transcripts[1]);
}

TEST_F(ServiceObsTest, SigkilledDaemonLeavesALoadableFlightDump) {
  const ServiceConfig config = daemon_config("sigkill");
  ForkedDaemon daemon(config);
  daemon.start();

  {
    ClientConfig cc;
    cc.socket_path = config.socket_path;
    cc.client_id = 8;
    Client client(cc);
    // Each mutation checkpoints durable state, and every checkpoint
    // persists the flight recorder — so the dump on disk at SIGKILL time
    // explains at least the acknowledged life.
    ScheduleSleepRequest req;
    req.client_id = cc.client_id;
    req.device_id = 1;
    EXPECT_EQ(client.schedule_sleep(req).windows, 1u);
    req.device_id = 4;
    EXPECT_EQ(client.schedule_sleep(req).windows, 1u);
  }

  daemon.sigkill();

  const std::string dump = util::read_file(config.flight_recorder_path);
  const auto events = obs::FlightRecorder::load(dump);
  ASSERT_FALSE(events.empty());
  bool saw_start = false, saw_accept = false, saw_snapshot = false,
       saw_mutation = false;
  for (const auto& e : events) {
    saw_start |= e.kind == obs::FlightEventKind::kDaemonStart;
    saw_accept |= e.kind == obs::FlightEventKind::kConnectionAccepted;
    saw_snapshot |= e.kind == obs::FlightEventKind::kSnapshotSaved;
    saw_mutation |= e.kind == obs::FlightEventKind::kMutationApplied;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_accept);
  EXPECT_TRUE(saw_snapshot);
  EXPECT_TRUE(saw_mutation);
  // The render is the post-mortem view `ash_fleetd flight` prints.
  const std::string table = obs::FlightRecorder::render(events);
  EXPECT_NE(table.find("mutation-applied"), std::string::npos);
}

TEST_F(ServiceObsTest, DrainMetricsDumpIsAtomicAndComplete) {
  const ServiceConfig config = daemon_config("drain");
  {
    ForkedDaemon daemon(config);
    daemon.start();
    ClientConfig cc;
    cc.socket_path = config.socket_path;
    cc.client_id = 3;
    Client client(cc);
    ScheduleSleepRequest req;
    req.client_id = cc.client_id;
    req.device_id = 2;
    (void)client.schedule_sleep(req);
    EXPECT_TRUE(client.ping());
    EXPECT_EQ(daemon.terminate(), 0);
  }

  // The dump went through atomic_write_file: full content, trailing
  // newline, and no temp-file debris anywhere in the daemon's directory.
  const std::string metrics = util::read_file(config.metrics_path);
  ASSERT_FALSE(metrics.empty());
  EXPECT_EQ(metrics.back(), '\n');
  bool found = false;
  EXPECT_EQ(metric_value(metrics, "fleet.service.mutations", &found), 1.0);
  EXPECT_TRUE(found);
  EXPECT_GE(metric_value(metrics, "fleet.protocol.frames_decoded", &found),
            2.0);
  EXPECT_TRUE(found);
  const std::string root = dir_ + "/drain";
  const std::string find_cmd =
      "test -z \"$(find '" + root + "' -name '*.tmp*' -print -quit)\"";
  EXPECT_EQ(std::system(find_cmd.c_str()), 0) << "temp-file debris left";

  // The flight dump from the drain is loadable and records the drain.
  const auto events =
      obs::FlightRecorder::load(util::read_file(config.flight_recorder_path));
  bool saw_drain_begin = false, saw_drain_end = false;
  for (const auto& e : events) {
    saw_drain_begin |= e.kind == obs::FlightEventKind::kDrainBegin;
    saw_drain_end |= e.kind == obs::FlightEventKind::kDrainEnd;
  }
  EXPECT_TRUE(saw_drain_begin);
  EXPECT_TRUE(saw_drain_end);
}

}  // namespace
}  // namespace ash::fleet
