#include "ash/fleet/supervisor.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "ash/obs/metrics.h"
#include "ash/util/crc32.h"

namespace ash::fleet {
namespace {

/// Per-test private checkpoint directories (one per fleet run, so chaos
/// debris from one run never leaks into another).
class FleetSupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ash_fleet_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + root_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  /// A fresh subdirectory for one fleet run.
  std::string fresh_dir(const std::string& name) {
    const std::string dir = root_ + "/" + name;
    const std::string cmd = "mkdir -p '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
  }
  std::string root_;
};

/// Small chips keep the campaigns fast; supervision logic is size-blind.
constexpr int kStages = 11;
constexpr std::uint64_t kSeed = 7;

FleetConfig fast_config(const std::string& dir) {
  FleetConfig config;
  config.checkpoint_dir = dir;
  config.backoff_initial_ms = 1;
  config.backoff_max_ms = 20;
  return config;
}

TEST_F(FleetSupervisorTest, CleanFleetCompletesAllShardsClean) {
  FleetSupervisor supervisor(fast_config(fresh_dir("clean")),
                             paper_fleet_shards(3, kSeed, kStages));
  const FleetReport report = supervisor.run();
  ASSERT_EQ(report.shards.size(), 3u);
  EXPECT_TRUE(report.all_completed());
  for (const auto& s : report.shards) {
    EXPECT_EQ(s.quality, ShardQuality::kClean);
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.restarts, 0);
    EXPECT_EQ(s.phases_done, s.phases_total);
    EXPECT_TRUE(s.have_state);
    EXPECT_GT(s.state.log.size(), 0u);
  }
  EXPECT_EQ(report.stats.workers_launched, 3);
  EXPECT_EQ(report.stats.worker_crashes, 0);
  EXPECT_EQ(report.stats.restarts, 0);
  EXPECT_EQ(report.stats.quarantined, 0);
}

TEST_F(FleetSupervisorTest, PayloadHasVersionedHeaderAndStableCrc) {
  FleetSupervisor supervisor(fast_config(fresh_dir("payload")),
                             paper_fleet_shards(2, kSeed, kStages));
  const FleetReport report = supervisor.run();
  const std::string payload = report.payload();
  EXPECT_EQ(payload.rfind("ash-fleet-report v1\n", 0), 0u);
  EXPECT_NE(payload.find("shards 2\n"), std::string::npos);
  EXPECT_NE(payload.find("shard 0 "), std::string::npos);
  EXPECT_EQ(report.payload_crc(), util::crc32(payload));
  // render() carries the human summary, including supervision tallies.
  EXPECT_NE(report.render().find("fleet supervision"), std::string::npos);
}

// The tentpole acceptance test: a chaos run that SIGKILLs every worker at
// least once AND corrupts snapshot files converges to a final report
// payload bit-identical to an undisturbed run of the same seed.
TEST_F(FleetSupervisorTest, TornChaosConvergesToUndisturbedPayload) {
  FleetSupervisor clean(fast_config(fresh_dir("undisturbed")),
                        paper_fleet_shards(3, kSeed, kStages));
  const FleetReport undisturbed = clean.run();

  FleetConfig chaos_config = fast_config(fresh_dir("torn"));
  chaos_config.chaos = FleetFaultPlan::torn();
  FleetSupervisor chaotic(chaos_config, paper_fleet_shards(3, kSeed, kStages));
  const FleetReport disturbed = chaotic.run();

  // Every worker was SIGKILLed at least once...
  for (const auto& s : disturbed.shards) {
    EXPECT_GE(s.restarts, 1) << "shard " << s.shard_id << " was never killed";
    EXPECT_EQ(s.quality, ShardQuality::kRecovered);
    EXPECT_TRUE(s.completed);
  }
  EXPECT_GE(disturbed.stats.worker_crashes, 3);
  // ...at least one snapshot file was corrupted and stepped over...
  EXPECT_GE(disturbed.stats.corrupt_snapshots_skipped, 1);
  // ...and the payload is bit-identical to the undisturbed run.
  EXPECT_EQ(disturbed.payload(), undisturbed.payload());
  EXPECT_EQ(disturbed.payload_crc(), undisturbed.payload_crc());
}

TEST_F(FleetSupervisorTest, HungWorkersAreKilledAndRecovered) {
  FleetConfig config = fast_config(fresh_dir("stall"));
  config.chaos = FleetFaultPlan::full();
  // Workers heartbeat once per phase checkpoint, so the deadline must
  // clear the worst-case wall time of ONE phase on a loaded CI box —
  // sustained sub-deadline phases would starve every attempt into
  // quarantine.  Stretch the stall instead of tightening the deadline,
  // and budget strikes generously: spurious timeout kills are harmless
  // for the payload, only quarantine would change it.
  config.chaos.stall_ms = 3000.0;
  config.heartbeat_timeout_ms = 1500;
  config.max_restarts = 25;
  FleetSupervisor supervisor(config, paper_fleet_shards(2, kSeed, kStages));
  const FleetReport report = supervisor.run();
  EXPECT_GE(report.stats.heartbeat_timeouts, 2);
  EXPECT_TRUE(report.all_completed());

  FleetSupervisor clean(fast_config(fresh_dir("stall_ref")),
                        paper_fleet_shards(2, kSeed, kStages));
  EXPECT_EQ(report.payload(), clean.run().payload());
}

TEST_F(FleetSupervisorTest, RestartsRideCappedBackoff) {
  FleetConfig config = fast_config(fresh_dir("backoff"));
  config.chaos = FleetFaultPlan::kill();
  FleetSupervisor supervisor(config, paper_fleet_shards(2, kSeed, kStages));
  const FleetReport report = supervisor.run();
  EXPECT_GE(report.stats.restarts, 2);
  EXPECT_EQ(report.stats.backoffs, report.stats.restarts);
  EXPECT_GT(report.stats.backoff_total_ms, 0.0);
}

TEST_F(FleetSupervisorTest, RelentlessKillsEndInQuarantineWithPartialState) {
  FleetConfig config = fast_config(fresh_dir("quarantine"));
  config.max_restarts = 1;
  config.chaos.kill_attempts = 99;  // every attempt dies
  config.chaos.min_phases_before_kill = 1;
  config.chaos.max_phases_before_kill = 1;
  FleetSupervisor supervisor(config, paper_fleet_shards(2, kSeed, kStages));
  const FleetReport report = supervisor.run();

  // Graceful degradation: the report ships anyway, flagged.
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_FALSE(report.all_completed());
  EXPECT_EQ(report.stats.quarantined, 2);
  for (const auto& s : report.shards) {
    EXPECT_EQ(s.quality, ShardQuality::kQuarantined);
    // Two attempts, one phase each: the durable store preserved them.
    EXPECT_TRUE(s.have_state);
    EXPECT_EQ(s.phases_done, 2);
  }
  // Shard 1 runs the 3-phase chip-2 case: partial by construction.
  EXPECT_FALSE(report.shards[1].completed);
  EXPECT_LT(report.shards[1].phases_done, report.shards[1].phases_total);
}

TEST_F(FleetSupervisorTest, SecondRunResumesFromDurableState) {
  // Kill the whole fleet (here: a completed run standing in for one) and
  // run the same command again over the same directory: workers load the
  // newest snapshots instead of recomputing, and the payload is identical.
  const std::string dir = fresh_dir("resume");
  FleetSupervisor first(fast_config(dir), paper_fleet_shards(2, kSeed, kStages));
  const FleetReport before = first.run();

  FleetSupervisor second(fast_config(dir), paper_fleet_shards(2, kSeed, kStages));
  const FleetReport after = second.run();
  EXPECT_EQ(after.stats.workers_launched, 2);
  EXPECT_EQ(after.stats.restarts, 0);
  EXPECT_EQ(after.payload(), before.payload());
}

TEST_F(FleetSupervisorTest, StatsPublishMirrorsTheStruct) {
  SupervisionStats stats;
  stats.workers_launched = 5;
  stats.worker_crashes = 2;
  stats.heartbeat_timeouts = 1;
  stats.restarts = 2;
  stats.backoffs = 2;
  stats.backoff_total_ms = 12.5;
  stats.quarantined = 1;
  stats.corrupt_snapshots_skipped = 3;
  obs::Registry registry;
  stats.publish(registry);
  EXPECT_EQ(registry.counter("fleet.workers_launched").value(), 5u);
  EXPECT_EQ(registry.counter("fleet.worker_crashes").value(), 2u);
  EXPECT_EQ(registry.counter("fleet.heartbeat_timeouts").value(), 1u);
  EXPECT_EQ(registry.counter("fleet.restarts").value(), 2u);
  EXPECT_EQ(registry.counter("fleet.quarantined").value(), 1u);
  EXPECT_EQ(registry.counter("fleet.corrupt_snapshots_skipped").value(), 3u);
  EXPECT_DOUBLE_EQ(registry.gauge("fleet.backoff_total_ms").value(), 12.5);
}

TEST_F(FleetSupervisorTest, ConstructorRejectsBadFleets) {
  const std::string dir = fresh_dir("validate");
  auto shards = paper_fleet_shards(2, kSeed, kStages);
  shards[1].shard_id = shards[0].shard_id;
  EXPECT_THROW(FleetSupervisor(fast_config(dir), shards),
               std::invalid_argument);
  EXPECT_THROW(FleetSupervisor(fast_config(dir), {}), std::invalid_argument);
  EXPECT_THROW(FleetSupervisor(fast_config(dir + "/missing"),
                               paper_fleet_shards(1, kSeed, kStages)),
               std::runtime_error);
}

TEST(PaperFleetShards, CyclesThePaperCampaign) {
  const auto shards = paper_fleet_shards(7, 123, 11);
  ASSERT_EQ(shards.size(), 7u);
  // Chip ids cycle through the five paper cases.
  EXPECT_EQ(shards[0].chip.chip_id, shards[5].chip.chip_id);
  EXPECT_EQ(shards[1].chip.chip_id, shards[6].chip.chip_id);
  EXPECT_EQ(shards[0].test_case.name, shards[5].test_case.name);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].shard_id, static_cast<int>(i));
    EXPECT_EQ(shards[i].chip.ro_stages, 11);
    for (std::size_t j = i + 1; j < shards.size(); ++j) {
      // Every shard is a distinct physical chip (its own seed), even when
      // it repeats a paper case.
      EXPECT_NE(shards[i].chip.seed, shards[j].chip.seed);
    }
  }
}

TEST(ShardQualityNames, AreStable) {
  EXPECT_STREQ(to_string(ShardQuality::kClean), "clean");
  EXPECT_STREQ(to_string(ShardQuality::kRecovered), "recovered");
  EXPECT_STREQ(to_string(ShardQuality::kQuarantined), "quarantined");
}

}  // namespace
}  // namespace ash::fleet
