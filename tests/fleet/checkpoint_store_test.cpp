#include "ash/fleet/checkpoint_store.h"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "ash/util/atomic_file.h"
#include "ash/util/crc32.h"

namespace ash::fleet {
namespace {

/// mkdtemp fixture: each test gets a private directory.
class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ash_ckpt_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  std::string dir_;
};

/// A payload with embedded NULs, newlines and high bytes — framing must be
/// 8-bit clean.
std::string binary_payload() {
  std::string p = "campaign checkpoint v1\n";
  p.push_back('\0');
  p += "\xff\xfe line2\n";
  p.push_back('\0');
  return p;
}

TEST(SnapshotFrame, RoundTripIsBitExact) {
  const std::string payload = binary_payload();
  const std::string frame = frame_snapshot(7, 42, payload);
  const DecodedSnapshot snap = decode_snapshot(frame);
  EXPECT_EQ(snap.shard_id, 7);
  EXPECT_EQ(snap.sequence, 42u);
  EXPECT_EQ(snap.payload, payload);
}

TEST(SnapshotFrame, EmptyPayloadRoundTrips) {
  const std::string frame = frame_snapshot(0, 0, "");
  const DecodedSnapshot snap = decode_snapshot(frame);
  EXPECT_EQ(snap.payload, "");
}

TEST(SnapshotFrame, TruncationAtEveryByteBoundaryIsRejected) {
  // The torn-write acceptance sweep: a frame cut at ANY byte boundary —
  // mid-magic, mid-header, mid-payload — must be rejected, never decoded
  // into a partial snapshot.
  const std::string frame = frame_snapshot(3, 9, binary_payload());
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW(decode_snapshot(frame.substr(0, cut)), CorruptSnapshot)
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_NO_THROW(decode_snapshot(frame));
}

TEST(SnapshotFrame, EveryAppendedGarbageByteIsRejected) {
  const std::string frame = frame_snapshot(3, 9, binary_payload());
  EXPECT_THROW(decode_snapshot(frame + 'x'), CorruptSnapshot);
  EXPECT_THROW(decode_snapshot(frame + frame), CorruptSnapshot);
}

TEST(SnapshotFrame, EverySingleBitFlipIsRejected) {
  // CRC32 detects all single-bit errors; sweep every bit of header AND
  // payload.
  const std::string frame = frame_snapshot(1, 5, "short payload");
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::string bad = frame;
    bad[bit / 8] = static_cast<char>(bad[bit / 8] ^ (1u << (bit % 8)));
    EXPECT_THROW(decode_snapshot(bad), CorruptSnapshot)
        << "bit " << bit << " flip decoded";
  }
}

TEST(SnapshotFrame, ErrorMessagesNameTheFailure) {
  const std::string frame = frame_snapshot(1, 5, binary_payload());
  try {
    decode_snapshot(frame.substr(0, 10));
    FAIL() << "torn header decoded";
  } catch (const CorruptSnapshot& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  try {
    decode_snapshot(frame.substr(0, frame.size() - 3));
    FAIL() << "torn payload decoded";
  } catch (const CorruptSnapshot& e) {
    EXPECT_NE(std::string(e.what()).find("torn write"), std::string::npos);
  }
  try {
    decode_snapshot(frame + "zz");
    FAIL() << "trailing garbage decoded";
  } catch (const CorruptSnapshot& e) {
    EXPECT_NE(std::string(e.what()).find("trailing garbage"),
              std::string::npos);
  }
  try {
    decode_snapshot("not a snapshot at all, but long enough to have a header");
    FAIL() << "foreign bytes decoded";
  } catch (const CorruptSnapshot& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST_F(CheckpointStoreTest, SaveLoadRoundTrip) {
  const CheckpointStore store(dir_);
  const std::string payload = binary_payload();
  store.save(4, 17, payload);
  const auto loaded = store.load_newest_valid(4);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 17u);
  EXPECT_EQ(loaded->payload, payload);
  EXPECT_EQ(loaded->corrupt_skipped, 0);
}

TEST_F(CheckpointStoreTest, MissingDirectoryThrows) {
  EXPECT_THROW(CheckpointStore(dir_ + "/nope"), std::runtime_error);
}

TEST_F(CheckpointStoreTest, EmptyStoreLoadsNothing) {
  const CheckpointStore store(dir_);
  EXPECT_FALSE(store.load_newest_valid(0).has_value());
}

TEST_F(CheckpointStoreTest, NewestSequenceWins) {
  const CheckpointStore store(dir_);
  store.save(2, 1, "one");
  store.save(2, 3, "three");
  store.save(2, 2, "two");
  const auto loaded = store.load_newest_valid(2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 3u);
  EXPECT_EQ(loaded->payload, "three");
}

TEST_F(CheckpointStoreTest, CorruptNewestFallsBackToPreviousValid) {
  const CheckpointStore store(dir_);
  store.save(2, 1, "one");
  store.save(2, 2, "two");
  const std::string newest = store.save(2, 3, "three");
  // Tear the newest file mid-payload.
  const std::string bytes = util::read_file(newest);
  // Deliberately torn write; the store must reject it, not us.
  std::ofstream os(newest,  // ash-lint: allow(unchecked-io): torn write is the test
                   std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 2));
  os.close();
  const auto loaded = store.load_newest_valid(2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 2u);
  EXPECT_EQ(loaded->payload, "two");
  EXPECT_EQ(loaded->corrupt_skipped, 1);
}

TEST_F(CheckpointStoreTest, AllCorruptLoadsNothingAndCountsSkips) {
  const CheckpointStore store(dir_);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    const std::string path = store.save(9, seq, "payload");
    // Deliberate corruption; short writes here are the point.
    std::ofstream os(path,  // ash-lint: allow(unchecked-io): torn write is the test
                    std::ios::binary | std::ios::trunc);
    os << "garbage";
  }
  EXPECT_FALSE(store.load_newest_valid(9).has_value());
}

TEST_F(CheckpointStoreTest, ShardsAreIsolated) {
  const CheckpointStore store(dir_);
  store.save(1, 5, "shard one");
  store.save(2, 9, "shard two");
  const auto one = store.load_newest_valid(1);
  const auto two = store.load_newest_valid(2);
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(one->payload, "shard one");
  EXPECT_EQ(two->payload, "shard two");
  EXPECT_FALSE(store.load_newest_valid(3).has_value());
}

TEST_F(CheckpointStoreTest, MisfiledFrameIsSkipped) {
  // A frame that *verifies* but names another shard must not be loaded —
  // defends against a file copied/renamed into the wrong slot.
  const CheckpointStore store(dir_);
  util::atomic_write_file(dir_ + "/" + CheckpointStore::file_name(5, 2),
                          frame_snapshot(6, 2, "imposter"));
  store.save(5, 1, "legit");
  const auto loaded = store.load_newest_valid(5);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "legit");
  EXPECT_EQ(loaded->corrupt_skipped, 1);
}

TEST_F(CheckpointStoreTest, PruneKeepsNewest) {
  const CheckpointStore store(dir_);
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    store.save(0, seq, "p" + std::to_string(seq));
  }
  store.prune(0, 2);
  const auto files = store.shard_files(0);
  ASSERT_EQ(files.size(), 2u);
  const auto loaded = store.load_newest_valid(0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 5u);
}

TEST_F(CheckpointStoreTest, SaveIsAtomicNoTempFilesRemain) {
  const CheckpointStore store(dir_);
  store.save(0, 1, binary_payload());
  // Only the final name may exist — no .tmp litter from the write path.
  const auto files = store.shard_files(0);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].find(".ckpt"), std::string::npos);
}

TEST(CheckpointStoreNames, FileNamesSortBySequence) {
  EXPECT_EQ(CheckpointStore::file_name(3, 7),
            "shard-00003.seq-0000000007.ckpt");
  EXPECT_LT(CheckpointStore::file_name(0, 9),
            CheckpointStore::file_name(0, 10));
}

}  // namespace
}  // namespace ash::fleet
