#include "ash/fleet/protocol.h"

#include <array>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ash/obs/metrics.h"
#include "ash/util/crc32.h"
#include "ash/util/units.h"

namespace ash::fleet {
namespace {

/// A payload with embedded NULs, newlines and high bytes — framing must be
/// 8-bit clean (payload *documents* are text, but the envelope may not
/// assume so).
std::string binary_payload() {
  std::string p = "key value\n";
  p.push_back('\0');
  p += "\xff\xfe tail\n";
  return p;
}

/// Rewrite the declared payload size at offset 24 and recompute the header
/// self-CRC so only the *length* lies — the hostile-length attack an
/// attacker who can compute CRCs would mount.
std::string with_declared_size(std::string frame, std::uint64_t size) {
  for (int i = 0; i < 8; ++i) {
    frame[24 + i] = static_cast<char>((size >> (8 * i)) & 0xFFu);
  }
  const std::uint32_t crc = util::crc32(std::string_view(frame).substr(0, 36));
  for (int i = 0; i < 4; ++i) {
    frame[36 + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  return frame;
}

TEST(WireFrame, RoundTripIsBitExact) {
  const std::string payload = binary_payload();
  const std::string bytes =
      frame_message(MessageType::kMarginRequest, 71, payload);
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.type, MessageType::kMarginRequest);
  EXPECT_EQ(frame.request_id, 71u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(WireFrame, EmptyPayloadRoundTrips) {
  const std::string bytes = frame_message(MessageType::kPingRequest, 1, "");
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.type, MessageType::kPingRequest);
  EXPECT_EQ(frame.payload, "");
  EXPECT_EQ(bytes.size(), kFrameHeaderSize);
}

TEST(WireFrame, TruncationAtEveryByteBoundaryIsRejected) {
  // The torn-write acceptance sweep, identical in spirit to the snapshot
  // store's: a frame cut at ANY byte boundary — mid-magic, mid-header,
  // mid-payload — must be rejected, never decoded partially.
  const std::string bytes =
      frame_message(MessageType::kScheduleSleepRequest, 9, binary_payload());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_frame(bytes.substr(0, cut)), ProtocolError)
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_NO_THROW(decode_frame(bytes));
}

TEST(WireFrame, EverySingleBitFlipIsRejected) {
  // Sweep every bit of header AND payload; whichever check fires first
  // (magic, version, length cap, header CRC, payload CRC), the flip must
  // never survive to a decoded frame.
  const std::string bytes =
      frame_message(MessageType::kStatusRequest, 5, "status probe\n");
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string bad = bytes;
    bad[bit / 8] = static_cast<char>(bad[bit / 8] ^ (1u << (bit % 8)));
    EXPECT_THROW(decode_frame(bad), ProtocolError)
        << "bit " << bit << " flip decoded";
  }
}

TEST(WireFrame, TrailingGarbageIsRejected) {
  const std::string bytes = frame_message(MessageType::kPingRequest, 2, "");
  EXPECT_THROW(decode_frame(bytes + 'x'), ProtocolError);
  EXPECT_THROW(decode_frame(bytes + bytes), ProtocolError);
}

TEST(WireFrame, HostileDeclaredLengthIsRejectedFromHeaderAlone) {
  // A header declaring a 16-exabyte payload — with a *valid* header CRC —
  // must be rejected before any payload byte is buffered.
  const std::string huge = with_declared_size(
      frame_message(MessageType::kPingRequest, 3, ""), ~std::uint64_t{0});
  try {
    decode_frame(huge);
    FAIL() << "hostile length decoded";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("hostile length"), std::string::npos);
  }
  // The incremental reader rejects it as soon as the size field is
  // complete (offset 32) — it never waits for, or allocates, the payload.
  FrameReader reader;
  EXPECT_THROW(reader.feed(huge.substr(0, 32)), ProtocolError);
  EXPECT_TRUE(reader.poisoned());
}

TEST(WireFrame, OversizedPayloadRefusesToFrame) {
  const std::string big(kMaxFramePayload + 1, 'p');
  EXPECT_THROW(frame_message(MessageType::kPingRequest, 1, big),
               ProtocolError);
}

TEST(WireFrame, UnknownMessageTypeIsRejected) {
  // Type 99 with all CRCs valid: the envelope verifies, the type does not.
  std::string bytes = frame_message(MessageType::kPingRequest, 4, "");
  bytes[12] = 99;
  const std::uint32_t crc = util::crc32(std::string_view(bytes).substr(0, 36));
  for (int i = 0; i < 4; ++i) {
    bytes[36 + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  try {
    decode_frame(bytes);
    FAIL() << "unknown type decoded";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown message type"),
              std::string::npos);
  }
}

TEST(WireFrame, ErrorMessagesNameTheFailure) {
  const std::string bytes =
      frame_message(MessageType::kMarginRequest, 6, binary_payload());
  try {
    decode_frame(bytes.substr(0, bytes.size() - 2));
    FAIL() << "torn payload decoded";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("torn write"), std::string::npos);
  }
  try {
    decode_frame(bytes + "zz");
    FAIL() << "trailing garbage decoded";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing garbage"),
              std::string::npos);
  }
  try {
    decode_frame("HTTP/1.1 GET / please serve me a margin estimate\r\n");
    FAIL() << "foreign bytes decoded";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(FrameReaderTest, ByteAtATimeStreamYieldsFramesInOrder) {
  const std::string a = frame_message(MessageType::kPingRequest, 1, "");
  const std::string b =
      frame_message(MessageType::kStatusRequest, 2, binary_payload());
  const std::string wire = a + b;
  FrameReader reader;
  std::vector<Frame> frames;
  for (char byte : wire) {
    reader.feed(std::string_view(&byte, 1));
    while (auto frame = reader.next()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kPingRequest);
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_EQ(frames[1].type, MessageType::kStatusRequest);
  EXPECT_EQ(frames[1].payload, binary_payload());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, GarbageAtEveryOffsetPoisonsTheReader) {
  // Corrupt one byte at every offset of a valid frame and stream the
  // result: the reader must either throw (poisoned) or never yield a
  // frame — at no offset may corrupt input decode.
  const std::string good =
      frame_message(MessageType::kRejuvenationRequest, 8, "epoch_s 86400\n");
  for (std::size_t at = 0; at < good.size(); ++at) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] + 1);
    FrameReader reader;
    bool decoded = false;
    try {
      reader.feed(bad);
      decoded = reader.next().has_value();
    } catch (const ProtocolError&) {
      EXPECT_TRUE(reader.poisoned()) << "offset " << at;
    }
    EXPECT_FALSE(decoded) << "corrupt byte at offset " << at << " decoded";
  }
}

TEST(FrameReaderTest, FirstWrongMagicByteIsRejectedImmediately) {
  FrameReader reader;
  EXPECT_THROW(reader.feed("G"), ProtocolError);  // 'G' != 'A' at offset 0
  EXPECT_TRUE(reader.poisoned());
  EXPECT_THROW(reader.feed("ET"), ProtocolError);  // poisoned stays poisoned
  EXPECT_THROW(reader.next(), ProtocolError);
}

TEST(FrameReaderTest, IncompleteFrameIsHeldNotDecoded) {
  const std::string bytes =
      frame_message(MessageType::kMarginRequest, 7, binary_payload());
  FrameReader reader;
  reader.feed(bytes.substr(0, bytes.size() - 1));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), bytes.size() - 1);
  reader.feed(bytes.substr(bytes.size() - 1));
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, binary_payload());
}

// ---------------------------------------------------------------------------
// Payload codecs: strong-unit round trips and strict-document rejection.
// ---------------------------------------------------------------------------

TEST(PayloadCodec, MarginRequestRoundTripsBitExactDoubles) {
  MarginRequest req;
  req.device_id = 17;
  req.duty = 0.1 + 0.2;  // famously not 0.3
  req.vdd = Volts{1.0 / 3.0};
  req.temp = Celsius{81.234567890123456};
  req.horizon = Seconds{3.0e8 + 1.0 / 7.0};
  const MarginRequest back = MarginRequest::parse(req.encode());
  EXPECT_EQ(back.device_id, req.device_id);
  EXPECT_EQ(back.duty, req.duty);  // bit-exact, hence EQ not NEAR
  EXPECT_EQ(back.vdd.value(), req.vdd.value());
  EXPECT_EQ(back.temp.value(), req.temp.value());
  EXPECT_EQ(back.horizon.value(), req.horizon.value());
  // Canonical encoding: re-encoding the parsed struct reproduces the bytes.
  EXPECT_EQ(back.encode(), req.encode());
}

TEST(PayloadCodec, AllResponseTypesRoundTrip) {
  MarginResponse margin;
  margin.status = Status::kOk;
  margin.crosses = true;
  margin.time_to_margin = Seconds{12345.6789};
  margin.delta_vth = Volts{7.5e-3};
  margin.margin = Volts{12e-3};
  const MarginResponse margin2 = MarginResponse::parse(margin.encode());
  EXPECT_EQ(margin2.crosses, true);
  EXPECT_EQ(margin2.time_to_margin.value(), margin.time_to_margin.value());

  RejuvenationResponse rejuv;
  rejuv.any = true;
  rejuv.shard_id = 3;
  rejuv.degradation = 0.0123456789;
  const RejuvenationResponse rejuv2 =
      RejuvenationResponse::parse(rejuv.encode());
  EXPECT_EQ(rejuv2.shard_id, 3);
  EXPECT_EQ(rejuv2.degradation, rejuv.degradation);

  ScheduleSleepResponse sleep;
  sleep.newly_applied = true;
  sleep.windows = 4;
  const ScheduleSleepResponse sleep2 =
      ScheduleSleepResponse::parse(sleep.encode());
  EXPECT_TRUE(sleep2.newly_applied);
  EXPECT_EQ(sleep2.windows, 4u);

  StatusResponse status;
  status.devices = 64;
  status.windows = 9;
  status.sequence = 42;
  status.draining = true;
  const StatusResponse status2 = StatusResponse::parse(status.encode());
  EXPECT_EQ(status2.sequence, 42u);
  EXPECT_TRUE(status2.draining);

  ErrorResponse error;
  error.status = Status::kOverloaded;
  error.message = "request queue full (8 admitted per tick)";
  const ErrorResponse error2 = ErrorResponse::parse(error.encode());
  EXPECT_EQ(error2.status, Status::kOverloaded);
  EXPECT_EQ(error2.message, error.message);
}

TEST(PayloadCodec, StrictDocumentRejectsHostileShapes) {
  const std::string good = MarginRequest().encode();
  // Missing field.
  EXPECT_THROW(MarginRequest::parse("device 0\nduty 0.5\n"), ProtocolError);
  // Unknown field (valid CRC wouldn't save it; the schema is closed).
  EXPECT_THROW(MarginRequest::parse(good + "evil 1\n"), ProtocolError);
  // Duplicate field.
  EXPECT_THROW(MarginRequest::parse(good + "device 0\n"), ProtocolError);
  // Line without terminator.
  EXPECT_THROW(MarginRequest::parse("device 0"), ProtocolError);
  // Empty-key line.
  EXPECT_THROW(MarginRequest::parse(" 0\n" + good), ProtocolError);
  // Ping/status requests carry no fields — anything present is hostile.
  EXPECT_NO_THROW(StatusRequest::parse(""));
  EXPECT_THROW(StatusRequest::parse("x 1\n"), ProtocolError);
}

TEST(PayloadCodec, PingPayloadsAreEmptyByDefinition) {
  EXPECT_TRUE(PingRequest{}.encode().empty());
  EXPECT_TRUE(PingResponse{}.encode().empty());
  EXPECT_NO_THROW(PingRequest::parse(""));
  EXPECT_NO_THROW(PingResponse::parse(""));
  // A liveness probe carrying data is hostile by definition — the closed
  // (empty) schema rejects any field, valid grammar or not.
  EXPECT_THROW(PingRequest::parse("x 1\n"), ProtocolError);
  EXPECT_THROW(PingResponse::parse("evil 1\n"), ProtocolError);
  EXPECT_THROW(PingRequest::parse("no terminator"), ProtocolError);
  // The framing layer carries them as ordinary verbs.
  const Frame f = decode_frame(frame_message(MessageType::kPingResponse, 7,
                                             PingResponse{}.encode()));
  EXPECT_EQ(f.type, MessageType::kPingResponse);
  EXPECT_TRUE(f.payload.empty());
}

TEST(PayloadCodec, RejuvenationResponseRejectsHostileDocuments) {
  // The well-formed kRejuvenationResponse document round-trips.
  RejuvenationResponse r;
  r.any = true;
  r.shard_id = 3;
  r.degradation = 0.25;
  const std::string good = r.encode();
  const RejuvenationResponse r2 = RejuvenationResponse::parse(good);
  EXPECT_EQ(r2.shard_id, 3);
  EXPECT_DOUBLE_EQ(r2.degradation, 0.25);
  // Hostile shapes: missing field, unknown field, non-boolean flag,
  // out-of-range shard id, non-finite degradation.
  EXPECT_THROW(RejuvenationResponse::parse("status ok\nany 1\n"),
               ProtocolError);
  EXPECT_THROW(RejuvenationResponse::parse(good + "evil 1\n"),
               ProtocolError);
  EXPECT_THROW(
      RejuvenationResponse::parse(
          "status ok\nany yes\nshard 0\ndegradation 0\n"),
      ProtocolError);
  EXPECT_THROW(
      RejuvenationResponse::parse(
          "status ok\nany 1\nshard -2\ndegradation 0\n"),
      ProtocolError);
  EXPECT_THROW(
      RejuvenationResponse::parse(
          "status ok\nany 1\nshard 0\ndegradation nan\n"),
      ProtocolError);
}

TEST(PayloadCodec, StatusResponseRejectsHostileDocuments) {
  // The well-formed kStatusResponse document round-trips (exercised in
  // PayloadCodec.AllResponseTypesRoundTrip); here every field is attacked.
  const std::string good = StatusResponse().encode();
  EXPECT_THROW(StatusResponse::parse(""), ProtocolError);
  EXPECT_THROW(StatusResponse::parse(good + "evil 1\n"), ProtocolError);
  EXPECT_THROW(StatusResponse::parse(good + "devices 0\n"), ProtocolError);
  EXPECT_THROW(
      StatusResponse::parse("status weird\ndevices 0\nwindows 0\n"
                            "sequence 0\ndraining 0\n"),
      ProtocolError);
  EXPECT_THROW(
      StatusResponse::parse("status ok\ndevices -1\nwindows 0\n"
                            "sequence 0\ndraining 0\n"),
      ProtocolError);
  EXPECT_THROW(
      StatusResponse::parse("status ok\ndevices 0\nwindows 0\n"
                            "sequence 0\ndraining maybe\n"),
      ProtocolError);
}

TEST(PayloadCodec, NumericFieldsRejectHostileValues) {
  auto patched = [&](const std::string& key, const std::string& value) {
    // Rebuild the document with one field replaced.
    const std::string lines[] = {"device 3", "duty 0.5", "vdd_v 1.2",
                                 "temp_c 80", "horizon_s 3600"};
    std::string out;
    for (const std::string& line : lines) {
      const std::string k = line.substr(0, line.find(' '));
      out += (k == key) ? (k + " " + value) : line;
      out += '\n';
    }
    return out;
  };
  // Non-finite numbers.
  EXPECT_THROW(MarginRequest::parse(patched("duty", "nan")), ProtocolError);
  EXPECT_THROW(MarginRequest::parse(patched("horizon_s", "inf")),
               ProtocolError);
  // Range violations.
  EXPECT_THROW(MarginRequest::parse(patched("duty", "1.5")), ProtocolError);
  EXPECT_THROW(MarginRequest::parse(patched("duty", "-0.1")), ProtocolError);
  EXPECT_THROW(MarginRequest::parse(patched("temp_c", "-400")),
               ProtocolError);
  EXPECT_THROW(MarginRequest::parse(patched("horizon_s", "-1")),
               ProtocolError);
  // Trailing junk after the number.
  EXPECT_THROW(MarginRequest::parse(patched("duty", "0.5x")), ProtocolError);
  // Unsigned-integer fields: sign, overflow, garbage.
  EXPECT_THROW(MarginRequest::parse(patched("device", "-1")), ProtocolError);
  EXPECT_THROW(
      MarginRequest::parse(patched("device", "99999999999999999999999")),
      ProtocolError);
  EXPECT_THROW(MarginRequest::parse(patched("device", "0x10")),
               ProtocolError);
  // Booleans are strictly 0/1.
  EXPECT_THROW(ScheduleSleepResponse::parse(
                   "status ok\nnewly_applied yes\nwindows 1\n"),
               ProtocolError);
  // Unknown status string.
  EXPECT_THROW(ScheduleSleepResponse::parse(
                   "status weird\nnewly_applied 1\nwindows 1\n"),
               ProtocolError);
}

TEST(PayloadCodec, MessageTypeNamesAreStable) {
  EXPECT_STREQ(to_string(MessageType::kMarginRequest), "margin-request");
  EXPECT_STREQ(to_string(Status::kOverloaded), "overloaded");
  EXPECT_TRUE(known_message_type(1));
  EXPECT_TRUE(known_message_type(11));
  EXPECT_FALSE(known_message_type(0));
  EXPECT_FALSE(known_message_type(12));
  // The volatile scrape channel: types 13..18.
  EXPECT_TRUE(known_message_type(13));
  EXPECT_TRUE(known_message_type(18));
  // The margin batch (19/20) follows the scrape block and is known but
  // NOT volatile: it is deterministic science payload, transcripted like
  // its single-device sibling.
  EXPECT_STREQ(to_string(MessageType::kMarginBatchRequest),
               "margin-batch-request");
  EXPECT_TRUE(known_message_type(19));
  EXPECT_TRUE(known_message_type(20));
  EXPECT_FALSE(known_message_type(21));
  EXPECT_FALSE(volatile_message_type(MessageType::kStatusRequest));
  EXPECT_TRUE(volatile_message_type(MessageType::kMetricsRequest));
  EXPECT_TRUE(volatile_message_type(MessageType::kHealthResponse));
  EXPECT_FALSE(volatile_message_type(MessageType::kMarginBatchRequest));
  EXPECT_FALSE(volatile_message_type(MessageType::kMarginBatchResponse));
}

TEST(PayloadCodec, MarginBatchRequestRoundTripAndRejection) {
  MarginBatchRequest req;
  req.device_ids = {0, 7, 3};
  req.duty = 0.25;
  req.vdd = Volts{1.1};
  req.temp = Celsius{95.0};
  req.horizon = Seconds{3.15e8};
  const MarginBatchRequest back = MarginBatchRequest::parse(req.encode());
  EXPECT_EQ(back.device_ids, req.device_ids);
  EXPECT_EQ(back.duty, req.duty);
  EXPECT_EQ(back.vdd.value(), req.vdd.value());
  EXPECT_EQ(back.temp.value(), req.temp.value());
  EXPECT_EQ(back.horizon.value(), req.horizon.value());

  // An empty batch is legal on the wire (the service answers zero rows).
  MarginBatchRequest empty;
  empty.device_ids = {};
  EXPECT_TRUE(MarginBatchRequest::parse(empty.encode()).device_ids.empty());

  const auto payload = [&](const char* devices_block) {
    return std::string("duty 0.5\nvdd_v 1.2\ntemp_c 80\nhorizon_s 1000\n") +
           devices_block;
  };
  // Hostile row count, declared-vs-actual mismatch, junk rows.
  EXPECT_THROW(MarginBatchRequest::parse(payload("devices 1000000\n")),
               ProtocolError);
  EXPECT_THROW(MarginBatchRequest::parse(payload("devices 2\ndevice 1\n")),
               ProtocolError);
  EXPECT_THROW(
      MarginBatchRequest::parse(payload("devices 1\ndevice -3\n")),
      ProtocolError);
  EXPECT_THROW(
      MarginBatchRequest::parse(payload("devices 0\ndevice 1\n")),
      ProtocolError);  // trailing bytes
  // Out-of-range schedule fields.
  EXPECT_THROW(MarginBatchRequest::parse(
                   "duty 1.5\nvdd_v 1.2\ntemp_c 80\nhorizon_s 1\ndevices 0\n"),
               ProtocolError);
  EXPECT_THROW(MarginBatchRequest::parse(
                   "duty 0.5\nvdd_v 9\ntemp_c 80\nhorizon_s 1\ndevices 0\n"),
               ProtocolError);
  EXPECT_THROW(MarginBatchRequest::parse(
                   "duty 0.5\nvdd_v 1.2\ntemp_c 80\nhorizon_s -1\ndevices 0\n"),
               ProtocolError);
}

TEST(PayloadCodec, MarginBatchResponseRoundTripAndRejection) {
  MarginBatchResponse resp;
  resp.status = Status::kOk;
  resp.margin = Volts{12e-3};
  resp.rows = {{0, true, Seconds{123.25}, Volts{0.011}},
               {42, false, Seconds{3.15e8}, Volts{0.0005}}};
  const MarginBatchResponse back = MarginBatchResponse::parse(resp.encode());
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_EQ(back.margin.value(), resp.margin.value());
  for (std::size_t i = 0; i < back.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].device_id, resp.rows[i].device_id);
    EXPECT_EQ(back.rows[i].crosses, resp.rows[i].crosses);
    EXPECT_EQ(back.rows[i].time_to_margin.value(),
              resp.rows[i].time_to_margin.value());
    EXPECT_EQ(back.rows[i].delta_vth.value(), resp.rows[i].delta_vth.value());
  }

  const std::string head = "status ok\nmargin_v 0.012\n";
  EXPECT_THROW(MarginBatchResponse::parse(head + "rows 1000000\n"),
               ProtocolError);
  EXPECT_THROW(MarginBatchResponse::parse(head + "rows 1\nrow 1 2 3\n"),
               ProtocolError);  // too few tokens
  EXPECT_THROW(MarginBatchResponse::parse(head + "rows 1\nrow 1 yes 3 4\n"),
               ProtocolError);  // crosses not 0/1
  EXPECT_THROW(
      MarginBatchResponse::parse(head + "rows 1\nrow 1 1 -5 0.01\n"),
      ProtocolError);  // negative time_to_margin
}

TEST(ScrapeCodec, MetricsRoundTripIncludingRawText) {
  MetricsRequest req;
  req.prefix = "fleet.service.";
  const auto req2 = MetricsRequest::parse(req.encode());
  EXPECT_EQ(req2.prefix, req.prefix);
  // Empty prefix survives ("" means everything).
  EXPECT_EQ(MetricsRequest::parse(MetricsRequest{}.encode()).prefix, "");

  MetricsResponse resp;
  resp.status = Status::kOk;
  // Metric lines use '=', blank lines and arbitrary text — the response
  // body is length-prefixed raw text, not a strict document.
  resp.text = "a.count=3\na.sum=0.25\n\nweird = line\n";
  const auto resp2 = MetricsResponse::parse(resp.encode());
  EXPECT_EQ(resp2.status, Status::kOk);
  EXPECT_EQ(resp2.text, resp.text);
  // A lying length prefix is rejected, not buffered past the payload.
  EXPECT_THROW(MetricsResponse::parse("status ok\nbytes 9999\nshort"),
               ProtocolError);
}

TEST(ScrapeCodec, ProfileRoundTripWithRepeatedKernelRows) {
  ProfileResponse resp;
  resp.status = Status::kOk;
  resp.profiling = true;
  resp.kernels.push_back({"bti.trap_ensemble.evolve", 12345, 6789012});
  resp.kernels.push_back({"mc.interval", 7, 42});
  const auto resp2 = ProfileResponse::parse(resp.encode());
  EXPECT_EQ(resp2.status, Status::kOk);
  EXPECT_TRUE(resp2.profiling);
  ASSERT_EQ(resp2.kernels.size(), 2u);
  EXPECT_EQ(resp2.kernels[0].kernel, "bti.trap_ensemble.evolve");
  EXPECT_EQ(resp2.kernels[0].calls, 12345u);
  EXPECT_EQ(resp2.kernels[0].total_ns, 6789012u);
  EXPECT_EQ(resp2.kernels[1].kernel, "mc.interval");
  // Hostile row counts are rejected.
  EXPECT_THROW(
      ProfileResponse::parse("status ok\nprofiling 1\nkernels 4096000000\n"),
      ProtocolError);
}

TEST(ScrapeCodec, HealthRoundTrip) {
  HealthResponse resp;
  resp.status = Status::kOk;
  resp.poll_iterations = 4096;
  resp.connections = 3;
  resp.connections_high_water = 9;
  resp.queue_depth_high_water = 8;
  resp.requests = 512;
  resp.shed = 4;
  resp.snapshot_lag = 0;
  resp.draining = true;
  const auto resp2 = HealthResponse::parse(resp.encode());
  EXPECT_EQ(resp2.poll_iterations, 4096u);
  EXPECT_EQ(resp2.connections, 3u);
  EXPECT_EQ(resp2.connections_high_water, 9u);
  EXPECT_EQ(resp2.queue_depth_high_water, 8u);
  EXPECT_EQ(resp2.requests, 512u);
  EXPECT_EQ(resp2.shed, 4u);
  EXPECT_EQ(resp2.snapshot_lag, 0u);
  EXPECT_TRUE(resp2.draining);
  // The strict-document grammar still applies: duplicate keys reject.
  EXPECT_THROW(HealthResponse::parse(resp.encode() + "shed 1\n"),
               ProtocolError);
  // Empty-payload requests round-trip and reject junk.
  EXPECT_NO_THROW(HealthRequest::parse(HealthRequest{}.encode()));
  EXPECT_THROW(HealthRequest::parse("junk 1\n"), ProtocolError);
  EXPECT_NO_THROW(ProfileRequest::parse(ProfileRequest{}.encode()));
}

TEST(ProtocolTalliesTest, SweepRejectionsMatchPublishedMetricsBitForBit) {
  // Re-run the truncation and bit-flip sweeps keeping this test's OWN
  // per-class tally (from the violation each ProtocolError carries), then
  // require the global tallies AND the published fleet.protocol.* counters
  // to agree with it bit-for-bit.  The wire-level reject choke point and
  // the metrics view can never drift apart unnoticed.
  auto& tallies = protocol_tallies();
  tallies.reset();
  std::array<std::uint64_t,
             static_cast<std::size_t>(ProtocolViolation::kCount)>
      expected{};
  std::uint64_t expected_decoded = 0;
  const auto count_rejection = [&](const ProtocolError& e) {
    ASSERT_NE(e.violation(), ProtocolViolation::kNone)
        << "wire rejection without a violation class: " << e.what();
    ++expected[static_cast<std::size_t>(e.violation())];
  };

  const std::string bytes =
      frame_message(MessageType::kStatusRequest, 5, "status probe\n");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    try {
      (void)decode_frame(bytes.substr(0, cut));
      FAIL() << "prefix of " << cut << " bytes decoded";
    } catch (const ProtocolError& e) {
      count_rejection(e);
    }
  }
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string bad = bytes;
    bad[bit / 8] = static_cast<char>(bad[bit / 8] ^ (1u << (bit % 8)));
    try {
      (void)decode_frame(bad);
      FAIL() << "bit " << bit << " flip decoded";
    } catch (const ProtocolError& e) {
      count_rejection(e);
    }
  }
  try {
    (void)decode_frame(bytes + 'x');
    FAIL() << "trailing garbage decoded";
  } catch (const ProtocolError& e) {
    count_rejection(e);
  }
  (void)decode_frame(bytes);
  ++expected_decoded;

  // The sweep must have exercised several distinct violation classes.
  EXPECT_GT(expected[static_cast<std::size_t>(ProtocolViolation::kBadMagic)],
            0u);
  EXPECT_GT(expected[static_cast<std::size_t>(ProtocolViolation::kHeaderCrc)],
            0u);
  EXPECT_GT(
      expected[static_cast<std::size_t>(ProtocolViolation::kPayloadCrc)], 0u);
  EXPECT_GT(expected[static_cast<std::size_t>(ProtocolViolation::kTruncated)],
            0u);

  std::uint64_t expected_total = 0;
  for (int v = 1; v < static_cast<int>(ProtocolViolation::kCount); ++v) {
    const auto violation = static_cast<ProtocolViolation>(v);
    EXPECT_EQ(tallies.rejected(violation),
              expected[static_cast<std::size_t>(v)])
        << to_string(violation);
    expected_total += expected[static_cast<std::size_t>(v)];
  }
  EXPECT_EQ(tallies.rejected_total(), expected_total);
  EXPECT_EQ(tallies.decoded(), expected_decoded);

  obs::Registry registry;
  tallies.publish(registry);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("fleet.protocol.frames_decoded"), expected_decoded);
  EXPECT_EQ(snap.counter("fleet.protocol.rejected.total"), expected_total);
  const std::pair<ProtocolViolation, const char*> kSuffixes[] = {
      {ProtocolViolation::kBadMagic, "fleet.protocol.rejected.bad_magic"},
      {ProtocolViolation::kBadVersion, "fleet.protocol.rejected.bad_version"},
      {ProtocolViolation::kHostileLength,
       "fleet.protocol.rejected.hostile_length"},
      {ProtocolViolation::kHeaderCrc, "fleet.protocol.rejected.header_crc"},
      {ProtocolViolation::kPayloadCrc, "fleet.protocol.rejected.payload_crc"},
      {ProtocolViolation::kUnknownType,
       "fleet.protocol.rejected.unknown_type"},
      {ProtocolViolation::kTruncated, "fleet.protocol.rejected.truncated"},
      {ProtocolViolation::kTrailingGarbage,
       "fleet.protocol.rejected.trailing_garbage"},
  };
  for (const auto& [violation, name] : kSuffixes) {
    EXPECT_EQ(snap.counter(name),
              expected[static_cast<std::size_t>(violation)])
        << name;
  }
  tallies.reset();
  EXPECT_EQ(tallies.rejected_total(), 0u);
  EXPECT_EQ(tallies.decoded(), 0u);
}

}  // namespace
}  // namespace ash::fleet
