#include "ash/fleet/fault.h"

#include <string>

#include <gtest/gtest.h>

#include "ash/fleet/checkpoint_store.h"

namespace ash::fleet {
namespace {

TEST(FleetFaultPlan, DefaultIsIdeal) {
  EXPECT_TRUE(FleetFaultPlan{}.ideal());
  EXPECT_TRUE(FleetFaultPlan::none().ideal());
}

TEST(FleetFaultPlan, PresetsEnableTheirChannels) {
  EXPECT_FALSE(FleetFaultPlan::kill().ideal());
  EXPECT_EQ(FleetFaultPlan::kill().corrupt_attempts, 0);
  EXPECT_GE(FleetFaultPlan::torn().corrupt_attempts, 1);
  EXPECT_GE(FleetFaultPlan::full().stall_attempts, 1);
  // full() schedules kills beyond the stall attempt so corruption happens
  // even when the supervisor kills attempt 0 mid-stall.
  EXPECT_GT(FleetFaultPlan::full().kill_attempts,
            FleetFaultPlan::full().stall_attempts);
}

TEST(FleetFaultPlan, ByNameRoundTripsAndRejectsUnknown) {
  EXPECT_TRUE(FleetFaultPlan::by_name("none").ideal());
  EXPECT_EQ(FleetFaultPlan::by_name("kill").kill_attempts, 1);
  EXPECT_GE(FleetFaultPlan::by_name("torn").corrupt_attempts, 1);
  EXPECT_GE(FleetFaultPlan::by_name("full").stall_attempts, 1);
  EXPECT_THROW(FleetFaultPlan::by_name("tornado"), std::invalid_argument);
}

TEST(FleetFaultAgent, SameSeedSameSchedule) {
  const FleetFaultPlan plan = FleetFaultPlan::full();
  for (int shard = 0; shard < 4; ++shard) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const FleetFaultAgent a(plan, shard, attempt);
      const FleetFaultAgent b(plan, shard, attempt);
      EXPECT_EQ(a.kill_scheduled(), b.kill_scheduled());
      EXPECT_EQ(a.kill_after_phases(), b.kill_after_phases());
      EXPECT_EQ(a.stall_scheduled(), b.stall_scheduled());
      EXPECT_EQ(a.corrupt_scheduled(), b.corrupt_scheduled());
      EXPECT_EQ(a.corruption_kind(), b.corruption_kind());
      EXPECT_EQ(a.corrupted("some snapshot bytes"),
                b.corrupted("some snapshot bytes"));
    }
  }
}

TEST(FleetFaultAgent, AttemptsBeyondThePlanAreClean) {
  const FleetFaultPlan plan = FleetFaultPlan::torn();
  const FleetFaultAgent late(plan, 0, plan.kill_attempts);
  EXPECT_FALSE(late.kill_scheduled());
  EXPECT_FALSE(late.corrupt_scheduled());
  EXPECT_FALSE(late.stall_scheduled());
}

TEST(FleetFaultAgent, KillDrawStaysInRange) {
  FleetFaultPlan plan = FleetFaultPlan::kill();
  plan.min_phases_before_kill = 1;
  plan.max_phases_before_kill = 4;
  for (int shard = 0; shard < 64; ++shard) {
    const FleetFaultAgent agent(plan, shard, 0);
    EXPECT_GE(agent.kill_after_phases(), 1);
    EXPECT_LE(agent.kill_after_phases(), 4);
  }
}

TEST(FleetFaultAgent, CorruptingAttemptsKeepAFallbackSnapshot) {
  // A corrupting death must happen at phase >= 2 so the fall-back to the
  // previous snapshot still nets one phase per attempt (no livelock).
  FleetFaultPlan plan = FleetFaultPlan::torn();
  plan.min_phases_before_kill = 1;
  plan.max_phases_before_kill = 1;
  for (int shard = 0; shard < 64; ++shard) {
    const FleetFaultAgent agent(plan, shard, 0);
    ASSERT_TRUE(agent.corrupt_scheduled());
    EXPECT_GE(agent.kill_after_phases(), 2);
  }
}

TEST(FleetFaultAgent, EveryCorruptionKindInvalidatesTheFrame) {
  // Whatever the drawn kind (bit flip, payload tear, header tear), the
  // mangled frame must fail decode_snapshot — sweep seeds until all three
  // kinds have been seen.
  const std::string frame =
      frame_snapshot(0, 3, "a realistic checkpoint payload, long enough "
                           "to tear somewhere interesting");
  bool seen[3] = {false, false, false};
  for (int shard = 0; shard < 200; ++shard) {
    FleetFaultPlan plan = FleetFaultPlan::torn();
    const FleetFaultAgent agent(plan, shard, 0);
    const std::string bad = agent.corrupted(frame);
    seen[static_cast<int>(agent.corruption_kind())] = true;
    EXPECT_NE(bad, frame);
    EXPECT_THROW(decode_snapshot(bad), CorruptSnapshot)
        << to_string(agent.corruption_kind());
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
}

TEST(FleetFaultAgent, DifferentShardsDrawDifferentSchedules) {
  FleetFaultPlan plan = FleetFaultPlan::kill();
  plan.min_phases_before_kill = 1;
  plan.max_phases_before_kill = 100;
  bool diverged = false;
  const FleetFaultAgent first(plan, 0, 0);
  for (int shard = 1; shard < 16 && !diverged; ++shard) {
    diverged = FleetFaultAgent(plan, shard, 0).kill_after_phases() !=
               first.kill_after_phases();
  }
  EXPECT_TRUE(diverged);
}

TEST(SnapshotCorruptionNames, AreStable) {
  EXPECT_STREQ(to_string(SnapshotCorruption::kFlipBit), "flip-bit");
  EXPECT_STREQ(to_string(SnapshotCorruption::kTruncate), "truncate");
  EXPECT_STREQ(to_string(SnapshotCorruption::kTornHeader), "torn-header");
}

}  // namespace
}  // namespace ash::fleet
