#include "ash/fleet/service.h"

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ash/fleet/checkpoint_store.h"
#include "ash/fleet/protocol.h"
#include "ash/mc/margin.h"
#include "ash/obs/metrics.h"

namespace ash::fleet {
namespace {

/// mkdtemp fixture: each test gets a private state directory and a service
/// configured for in-process respond()/process_tick() testing (no socket).
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ash_fleetd_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  ServiceConfig small_config() const {
    ServiceConfig config;
    config.socket_path = dir_ + "/fleet.sock";
    config.state_dir = dir_;
    config.devices = 8;
    config.seed = 0xF1EE7;
    config.max_request_queue = 4;
    return config;
  }

  static Frame request(MessageType type, std::uint64_t id,
                       const std::string& payload) {
    Frame frame;
    frame.type = type;
    frame.request_id = id;
    frame.payload = payload;
    return frame;
  }

  std::string dir_;
};

TEST_F(ServiceTest, GenesisIsDeterministic) {
  const ServiceState a = ServiceState::genesis(8, Volts{12e-3}, 42);
  const ServiceState b = ServiceState::genesis(8, Volts{12e-3}, 42);
  const ServiceState c = ServiceState::genesis(8, Volts{12e-3}, 43);
  ASSERT_EQ(a.devices.size(), 8u);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_NE(a.serialize(), c.serialize());
  for (const DeviceAging& device : a.devices) {
    EXPECT_GE(device.delta_vth.value(), 0.0);
    EXPECT_LE(device.delta_vth.value(), 0.9 * 12e-3);
  }
}

TEST_F(ServiceTest, StateSerializationRoundTripsBitExactly) {
  ServiceState state = ServiceState::genesis(3, Volts{12e-3}, 7);
  state.sequence = 5;
  state.devices[1].windows.push_back({Seconds{3600.0}, Seconds{21600.0}});
  state.applied.push_back({42, 9, 1});
  const std::string bytes = state.serialize();
  const ServiceState back = ServiceState::deserialize(bytes);
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_EQ(back.sequence, 5u);
  EXPECT_EQ(back.total_windows(), 1u);
  ASSERT_NE(back.find_applied(42, 9), nullptr);
  EXPECT_EQ(back.find_applied(42, 9)->windows_after, 1u);
  EXPECT_EQ(back.find_applied(42, 10), nullptr);
}

TEST_F(ServiceTest, StateDeserializeRejectsMalformedInput) {
  const std::string good = ServiceState::genesis(2, Volts{12e-3}, 1)
                               .serialize();
  EXPECT_THROW(ServiceState::deserialize(""), std::runtime_error);
  EXPECT_THROW(ServiceState::deserialize("not a state doc\n"),
               std::runtime_error);
  // Missing terminator: a torn text body must not deserialize.
  EXPECT_THROW(ServiceState::deserialize(good.substr(0, good.size() - 4)),
               std::runtime_error);
}

TEST_F(ServiceTest, MarginQueryMatchesDirectProjection) {
  Service service(small_config());
  MarginRequest req;
  req.device_id = 2;
  req.duty = 0.75;
  const Frame reply = service.respond(
      request(MessageType::kMarginRequest, 1, req.encode()));
  ASSERT_EQ(reply.type, MessageType::kMarginResponse);
  EXPECT_EQ(reply.request_id, 1u);
  const MarginResponse resp = MarginResponse::parse(reply.payload);
  EXPECT_EQ(resp.status, Status::kOk);
  // The service's answer is the closed-form projection of the device's
  // durable aging estimate — recompute it directly and demand equality.
  mc::MarginQuery query;
  query.delta_vth = service.state().devices[2].delta_vth;
  query.margin = service.state().margin;
  query.duty = req.duty;
  query.vdd = req.vdd;
  query.temp = req.temp;
  query.horizon = req.horizon;
  const mc::MarginOutlook outlook = mc::margin_outlook(
      bti::ClosedFormModel(service.config().physics), query);
  EXPECT_EQ(resp.crosses, outlook.crosses);
  EXPECT_EQ(resp.time_to_margin.value(), outlook.time_to_margin.value());
  EXPECT_EQ(resp.delta_vth.value(),
            service.state().devices[2].delta_vth.value());
}

TEST_F(ServiceTest, MarginBatchRowsMatchSingleMarginAnswersBitExactly) {
  Service service(small_config());
  MarginBatchRequest batch;
  batch.device_ids = {5, 0, 3, 5};  // out of order + repeated: both legal
  batch.duty = 0.75;
  batch.vdd = Volts{1.1};
  batch.temp = Celsius{95.0};
  const Frame reply = service.respond(
      request(MessageType::kMarginBatchRequest, 7, batch.encode()));
  ASSERT_EQ(reply.type, MessageType::kMarginBatchResponse);
  EXPECT_EQ(reply.request_id, 7u);
  const MarginBatchResponse resp = MarginBatchResponse::parse(reply.payload);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.margin.value(), service.state().margin.value());
  ASSERT_EQ(resp.rows.size(), batch.device_ids.size());
  for (std::size_t i = 0; i < batch.device_ids.size(); ++i) {
    MarginRequest solo;
    solo.device_id = batch.device_ids[i];
    solo.duty = batch.duty;
    solo.vdd = batch.vdd;
    solo.temp = batch.temp;
    solo.horizon = batch.horizon;
    const Frame solo_reply = service.respond(
        request(MessageType::kMarginRequest, 100 + i, solo.encode()));
    ASSERT_EQ(solo_reply.type, MessageType::kMarginResponse);
    const MarginResponse solo_resp = MarginResponse::parse(solo_reply.payload);
    EXPECT_EQ(resp.rows[i].device_id, batch.device_ids[i]);
    EXPECT_EQ(resp.rows[i].crosses, solo_resp.crosses) << "row " << i;
    EXPECT_EQ(resp.rows[i].time_to_margin.value(),
              solo_resp.time_to_margin.value())
        << "row " << i;
    EXPECT_EQ(resp.rows[i].delta_vth.value(), solo_resp.delta_vth.value())
        << "row " << i;
  }
}

TEST_F(ServiceTest, MarginBatchWithUnknownDeviceEarnsUnknownDeviceStatus) {
  Service service(small_config());
  MarginBatchRequest batch;
  batch.device_ids = {1, 999, 2};  // 999 does not exist: whole batch fails
  const Frame reply = service.respond(
      request(MessageType::kMarginBatchRequest, 8, batch.encode()));
  ASSERT_EQ(reply.type, MessageType::kErrorResponse);
  const ErrorResponse err = ErrorResponse::parse(reply.payload);
  EXPECT_EQ(err.status, Status::kUnknownDevice);
  EXPECT_NE(err.message.find("not tracked"), std::string::npos);
}

TEST_F(ServiceTest, UnknownDeviceEarnsUnknownDeviceStatus) {
  Service service(small_config());
  MarginRequest req;
  req.device_id = 999;  // only 8 devices exist
  const Frame reply = service.respond(
      request(MessageType::kMarginRequest, 2, req.encode()));
  ASSERT_EQ(reply.type, MessageType::kErrorResponse);
  const ErrorResponse err = ErrorResponse::parse(reply.payload);
  EXPECT_EQ(err.status, Status::kUnknownDevice);
  EXPECT_NE(err.message.find("not tracked"), std::string::npos);
}

TEST_F(ServiceTest, HostilePayloadEarnsErrorResponseNeverThrows) {
  Service service(small_config());
  const std::vector<std::string> hostile = {
      "",                        // missing every field
      "duty 0.5\n",              // missing fields
      "device 0\nduty 2.0\nvdd_v 1.2\ntemp_c 80\nhorizon_s 1\n",  // range
      std::string(512, '\xff'),  // binary garbage
      "device 0 device 0\n",     // malformed line
  };
  for (const std::string& payload : hostile) {
    Frame reply;
    ASSERT_NO_THROW(
        reply = service.respond(
            request(MessageType::kMarginRequest, 3, payload)))
        << "payload threw instead of answering";
    ASSERT_EQ(reply.type, MessageType::kErrorResponse);
    EXPECT_EQ(ErrorResponse::parse(reply.payload).status,
              Status::kBadRequest);
  }
}

TEST_F(ServiceTest, ScheduleSleepIsIdempotentAndByteStable) {
  Service service(small_config());
  ScheduleSleepRequest req;
  req.client_id = 42;
  req.device_id = 1;
  req.start = Seconds{3600.0};
  const Frame first = service.respond(
      request(MessageType::kScheduleSleepRequest, 10, req.encode()));
  ASSERT_EQ(first.type, MessageType::kScheduleSleepResponse);
  const ScheduleSleepResponse ack =
      ScheduleSleepResponse::parse(first.payload);
  EXPECT_EQ(ack.status, Status::kOk);
  EXPECT_TRUE(ack.newly_applied);
  EXPECT_EQ(ack.windows, 1u);
  EXPECT_EQ(service.state().sequence, 1u);
  EXPECT_EQ(service.stats().mutations, 1u);

  // The retry: same (client, request id) — the replay must reproduce the
  // ORIGINAL acknowledgement bytes and must not double-book the window.
  const Frame retry = service.respond(
      request(MessageType::kScheduleSleepRequest, 10, req.encode()));
  EXPECT_EQ(retry.payload, first.payload);
  EXPECT_EQ(retry.request_id, first.request_id);
  EXPECT_EQ(service.state().devices[1].windows.size(), 1u);
  EXPECT_EQ(service.state().sequence, 1u);
  EXPECT_EQ(service.stats().replays, 1u);

  // A different request id from the same client is a new booking.
  const Frame second = service.respond(
      request(MessageType::kScheduleSleepRequest, 11, req.encode()));
  EXPECT_EQ(ScheduleSleepResponse::parse(second.payload).windows, 2u);
  EXPECT_EQ(service.state().sequence, 2u);
}

TEST_F(ServiceTest, MutationIsDurableBeforeTheAck) {
  // Write-ahead contract: once respond() returns the acknowledgement, a
  // brand-new Service over the same state_dir (the SIGKILL-and-restart
  // path) must already know the mutation AND replay the same ack bytes.
  const ServiceConfig config = small_config();
  std::string first_payload;
  {
    Service service(config);
    ScheduleSleepRequest req;
    req.client_id = 7;
    req.device_id = 3;
    first_payload =
        service
            .respond(request(MessageType::kScheduleSleepRequest, 5,
                             req.encode()))
            .payload;
  }
  Service reborn(config);
  EXPECT_EQ(reborn.state().sequence, 1u);
  EXPECT_EQ(reborn.state().devices[3].windows.size(), 1u);
  ScheduleSleepRequest req;
  req.client_id = 7;
  req.device_id = 3;
  const Frame replay = reborn.respond(
      request(MessageType::kScheduleSleepRequest, 5, req.encode()));
  EXPECT_EQ(replay.payload, first_payload);
  EXPECT_EQ(reborn.state().sequence, 1u);  // not double-applied
}

TEST_F(ServiceTest, BoundedQueueShedsExactlyTheOverflow) {
  Service service(small_config());  // max_request_queue = 4
  std::vector<Frame> requests;
  for (std::uint64_t i = 0; i < 9; ++i) {
    requests.push_back(request(MessageType::kPingRequest, 100 + i, ""));
  }
  const std::vector<Frame> replies = service.process_tick(requests);
  ASSERT_EQ(replies.size(), 9u);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i].request_id, 100 + i);  // 1:1, in order
    if (i < 4) {
      EXPECT_EQ(replies[i].type, MessageType::kPingResponse);
    } else {
      ASSERT_EQ(replies[i].type, MessageType::kErrorResponse);
      EXPECT_EQ(ErrorResponse::parse(replies[i].payload).status,
                Status::kOverloaded);
    }
  }
  EXPECT_EQ(service.stats().requests, 4u);
  EXPECT_EQ(service.stats().shed, 5u);
}

TEST_F(ServiceTest, RejuvenationWithNoCampaignSaysNone) {
  Service service(small_config());  // no campaign_dir configured
  const Frame reply = service.respond(request(
      MessageType::kRejuvenationRequest, 20, RejuvenationRequest().encode()));
  const RejuvenationResponse resp =
      RejuvenationResponse::parse(reply.payload);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_FALSE(resp.any);
  EXPECT_EQ(resp.shard_id, -1);
}

TEST_F(ServiceTest, StatusReportsDurableStateOnly) {
  Service service(small_config());
  const Frame reply = service.respond(
      request(MessageType::kStatusRequest, 30, StatusRequest().encode()));
  const StatusResponse resp = StatusResponse::parse(reply.payload);
  EXPECT_EQ(resp.devices, 8u);
  EXPECT_EQ(resp.windows, 0u);
  EXPECT_EQ(resp.sequence, 0u);
  EXPECT_FALSE(resp.draining);
  // The payload must not contain any operational tally (those are
  // chaos-dependent and live in metrics instead).
  EXPECT_EQ(reply.payload.find("requests"), std::string::npos);
  EXPECT_EQ(reply.payload.find("evictions"), std::string::npos);
}

TEST_F(ServiceTest, StatsPublishMirrorsTheStruct) {
  Service service(small_config());
  (void)service.process_tick(
      {request(MessageType::kPingRequest, 1, std::string())});
  obs::Registry registry;
  service.stats().publish(registry);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("fleet.service.requests"), 1u);
  EXPECT_EQ(snapshot.counter("fleet.service.responses"), 1u);
  EXPECT_EQ(snapshot.counter("fleet.service.shed"), 0u);
}

TEST_F(ServiceTest, RestartAfterGenesisIsStable) {
  const ServiceConfig config = small_config();
  std::string first;
  {
    Service service(config);
    first = service.state().serialize();
  }
  // Same dir, same seed: the reborn service resumes the SAME durable state
  // (from the snapshot, not a re-roll of genesis).
  Service reborn(config);
  EXPECT_EQ(reborn.state().serialize(), first);
}

TEST_F(ServiceTest, NonsensicalTunablesAreRejected) {
  ServiceConfig config = small_config();
  config.max_request_queue = 0;
  EXPECT_THROW(Service{config}, std::invalid_argument);
  config = small_config();
  config.io_timeout_ms = -5;
  EXPECT_THROW(Service{config}, std::invalid_argument);
  config = small_config();
  config.devices = 0;
  EXPECT_THROW(Service{config}, std::invalid_argument);
  config = small_config();
  config.state_dir = dir_ + "/missing";
  EXPECT_THROW(Service{config}, std::runtime_error);
  config = small_config();
  config.socket_path = dir_ + "/" + std::string(200, 'x') + ".sock";
  EXPECT_THROW(Service{config}, std::invalid_argument);
}

}  // namespace
}  // namespace ash::fleet
