#include "ash/util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ash {
namespace {

TEST(Stats, MeanOfConstantsIsTheConstant) {
  const std::vector<double> xs{3.5, 3.5, 3.5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.5);
}

TEST(Stats, MeanOfArithmeticSequence) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, StddevMatchesHandComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev with n-1 denominator: sqrt(32/7).
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, PercentileInterpolatesBetweenRanks) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Stats, RmseOfIdenticalSpansIsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Stats, RmseOfConstantOffset) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), 1.0);
}

TEST(Stats, RSquaredPerfectFitIsOne) {
  const std::vector<double> obs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
}

TEST(Stats, RSquaredMeanModelIsZero) {
  const std::vector<double> obs{1.0, 2.0, 3.0};
  const std::vector<double> model{2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(obs, model), 0.0, 1e-12);
}

TEST(Stats, RSquaredWorseThanMeanIsNegative) {
  const std::vector<double> obs{1.0, 2.0, 3.0};
  const std::vector<double> model{3.0, 2.0, 1.0};
  EXPECT_LT(r_squared(obs, model), 0.0);
}

TEST(Stats, PearsonPerfectPositiveAndNegative) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> up{2.0, 4.0, 6.0};
  const std::vector<double> down{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, TrimmedMeanDropsTails) {
  const std::vector<double> xs{100.0, 1.0, 2.0, 3.0, -50.0};
  // 20 % trim on n=5 drops one value per tail: mean of {1, 2, 3}.
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.2), 2.0);
  // Zero trim is the plain mean.
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.0), mean(xs));
}

TEST(Stats, MedianAbsDeviationIgnoresOneOutlier) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 1000.0};
  EXPECT_DOUBLE_EQ(median_abs_deviation(xs), 1.0);
}

TEST(Stats, RobustLocationSelectsEstimator) {
  const std::vector<double> xs{10.0, 11.0, 12.0, 13.0, 1000.0};
  EXPECT_DOUBLE_EQ(robust_location(xs, RobustEstimator::kMean), mean(xs));
  EXPECT_DOUBLE_EQ(robust_location(xs, RobustEstimator::kMedian), 12.0);
  // 25 % trim on n=5 drops one from each tail.
  EXPECT_DOUBLE_EQ(robust_location(xs, RobustEstimator::kTrimmedMean, 0.25),
                   12.0);
  // The robust estimators shrug off the outlier; the mean cannot.
  EXPECT_GT(robust_location(xs, RobustEstimator::kMean), 200.0);
}

TEST(Stats, RobustEstimatorNames) {
  EXPECT_STREQ(to_string(RobustEstimator::kMean), "mean");
  EXPECT_STREQ(to_string(RobustEstimator::kMedian), "median");
  EXPECT_STREQ(to_string(RobustEstimator::kTrimmedMean), "trimmed-mean");
}

TEST(RunningStats, VarianceOfFewSamplesIsZero) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(1.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace ash
