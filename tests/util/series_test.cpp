#include "ash/util/series.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace ash {
namespace {

Series ramp() {
  Series s("ramp");
  s.append(0.0, 0.0);
  s.append(10.0, 100.0);
  return s;
}

TEST(Series, AppendRejectsTimeTravel) {
  Series s;
  s.append(1.0, 0.0);
  EXPECT_THROW(s.append(0.5, 0.0), std::invalid_argument);
}

TEST(Series, AppendAllowsRepeatedTimes) {
  Series s;
  s.append(1.0, 2.0);
  EXPECT_NO_THROW(s.append(1.0, 3.0));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Series, InterpolationIsLinear) {
  const Series s = ramp();
  EXPECT_DOUBLE_EQ(s.at(5.0), 50.0);
  EXPECT_DOUBLE_EQ(s.at(2.5), 25.0);
}

TEST(Series, InterpolationClampsOutsideRange) {
  const Series s = ramp();
  EXPECT_DOUBLE_EQ(s.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.at(99.0), 100.0);
}

TEST(Series, ResampleKeepsEndpointsAndShape) {
  const Series r = ramp().resampled(11);
  ASSERT_EQ(r.size(), 11u);
  EXPECT_DOUBLE_EQ(r.front().t, 0.0);
  EXPECT_DOUBLE_EQ(r.back().t, 10.0);
  EXPECT_DOUBLE_EQ(r[3].value, 30.0);
}

TEST(Series, MappedTransformsValuesOnly) {
  const Series doubled = ramp().mapped([](double v) { return 2.0 * v; });
  EXPECT_DOUBLE_EQ(doubled.at(5.0), 100.0);
  EXPECT_DOUBLE_EQ(doubled.t_end(), 10.0);
}

TEST(Series, TimeShiftedMovesAxis) {
  const Series shifted = ramp().time_shifted(-5.0);
  EXPECT_DOUBLE_EQ(shifted.t_begin(), -5.0);
  EXPECT_DOUBLE_EQ(shifted.at(0.0), 50.0);
}

TEST(Series, MinMaxValues) {
  Series s;
  s.append(0.0, 3.0);
  s.append(1.0, -2.0);
  s.append(2.0, 7.0);
  EXPECT_DOUBLE_EQ(s.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 7.0);
}

TEST(Series, RmseAgainstSelfIsZero) {
  const Series s = ramp();
  EXPECT_DOUBLE_EQ(s.rmse_against(s), 0.0);
}

TEST(Series, RmseAgainstOffsetSeries) {
  const Series s = ramp();
  const Series o = ramp().mapped([](double v) { return v + 2.0; });
  EXPECT_NEAR(s.rmse_against(o), 2.0, 1e-12);
}

TEST(Series, MonotonicityPredicates) {
  Series up;
  up.append(0.0, 1.0);
  up.append(1.0, 2.0);
  up.append(2.0, 2.0);
  EXPECT_TRUE(up.is_non_decreasing());
  EXPECT_FALSE(up.is_non_increasing());

  Series noisy;
  noisy.append(0.0, 1.0);
  noisy.append(1.0, 0.999);
  EXPECT_FALSE(noisy.is_non_decreasing());
  EXPECT_TRUE(noisy.is_non_decreasing(/*eps=*/0.01));
}

}  // namespace
}  // namespace ash
