#include "ash/util/fast_exp.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace ash::util {
namespace {

double rel_err(double x) {
  const double exact = std::exp(x);
  return std::abs(fast_exp(x) - exact) / exact;
}

// The documented contract: relative error <= kFastExpRelErr everywhere in
// [-708, 708].  Dense uniform sweep with an irrational-ish step so the
// samples don't land on the range-reduction grid.
TEST(FastExp, FullDomainRelativeErrorBound) {
  double worst = 0.0;
  for (double x = -708.0; x <= 708.0; x += 0.0317) {
    worst = std::max(worst, rel_err(x));
  }
  EXPECT_LE(worst, kFastExpRelErr) << "sweep max " << worst;
}

// The decay domain the trap kernels actually evaluate: exp(-lambda * dt)
// with the kernel short-circuiting x > 700 to zero, so fast_exp sees
// exponents in [-700, 0].  Finer sweep near zero where decay factors of
// real campaign steps live (lambda*dt between ~1e-9 and ~10).
TEST(FastExp, DecayDomainRelativeErrorBound) {
  double worst = 0.0;
  for (double x = -700.0; x <= 0.0; x += 0.0071) {
    worst = std::max(worst, rel_err(x));
  }
  for (double x = -10.0; x <= 0.0; x += 1.3e-4) {
    worst = std::max(worst, rel_err(x));
  }
  EXPECT_LE(worst, kFastExpRelErr) << "sweep max " << worst;
}

// The Arrhenius domain: exponents -Ea * arr_x for Ea in [0, ~0.6] eV and
// |arr_x| up to ~70 /eV (20 degC vs 110 degC against the reference
// temperatures), i.e. roughly [-42, 42].
TEST(FastExp, ArrheniusDomainRelativeErrorBound) {
  double worst = 0.0;
  for (double x = -42.0; x <= 42.0; x += 3.3e-4) {
    worst = std::max(worst, rel_err(x));
  }
  EXPECT_LE(worst, kFastExpRelErr) << "sweep max " << worst;
}

TEST(FastExp, UnderflowEdgeReturnsExactZero) {
  EXPECT_EQ(fast_exp(-708.0000001), 0.0);
  EXPECT_EQ(fast_exp(-709.0), 0.0);
  EXPECT_EQ(fast_exp(-1e6), 0.0);
  EXPECT_EQ(fast_exp(-std::numeric_limits<double>::infinity()), 0.0);
}

TEST(FastExp, OverflowEdgeMatchesStdExp) {
  EXPECT_EQ(fast_exp(709.0), std::exp(709.0));
  EXPECT_EQ(fast_exp(800.0), std::exp(800.0));  // inf
  EXPECT_EQ(fast_exp(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
}

TEST(FastExp, NanPropagates) {
  EXPECT_TRUE(std::isnan(fast_exp(std::numeric_limits<double>::quiet_NaN())));
}

TEST(FastExp, ExactAtZero) { EXPECT_EQ(fast_exp(0.0), 1.0); }

// Results never go negative and stay monotone enough for physics use: a
// larger decay exponent magnitude never yields a larger factor on the
// sweep grid (weak monotonicity; the approximation error is far below the
// grid-to-grid change).
TEST(FastExp, NonNegativeAndWeaklyMonotoneOnGrid) {
  double prev = 0.0;
  for (double x = -740.0; x <= 20.0; x += 0.01) {
    const double y = fast_exp(x);
    EXPECT_GE(y, 0.0);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

}  // namespace
}  // namespace ash::util
