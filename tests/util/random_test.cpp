#include "ash/util/random.h"

#include <vector>

#include <gtest/gtest.h>

#include "ash/util/ou_noise.h"
#include "ash/util/stats.h"

namespace ash {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(SeedStreams, DefaultSeedsAreDistinctDerivedStreams) {
  const std::vector<SeedStream> streams{
      SeedStream::kRunner, SeedStream::kMeasurement, SeedStream::kChamber,
      SeedStream::kSupply, SeedStream::kFaultPlan};
  std::vector<std::uint64_t> seeds;
  for (const auto s : streams) seeds.push_back(default_seed(s));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    // Derived, never the raw root or a raw literal.
    EXPECT_NE(seeds[i], kDefaultSeedRoot);
    EXPECT_EQ(seeds[i],
              derive_seed(kDefaultSeedRoot,
                          static_cast<std::uint64_t>(streams[i])));
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]);
    }
  }
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, -1.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, -1.0);
  }
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(11);
  std::vector<double> xs;
  xs.reserve(50000);
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.exponential(4.0));
  EXPECT_NEAR(mean(xs), 4.0, 0.1);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, LogUniformCoversDecadesUniformly) {
  Rng rng(17);
  // Count draws per decade of [1e-3, 1e3]; expect roughly equal occupancy.
  std::vector<int> decade_counts(6, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.loguniform(1e-3, 1e3);
    ASSERT_GE(x, 1e-3);
    ASSERT_LE(x, 1e3);
    const int d = static_cast<int>(std::floor(std::log10(x) + 3.0));
    if (d >= 0 && d < 6) ++decade_counts[d];
  }
  for (int c : decade_counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 6.0, n * 0.01);
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(DeriveSeed, IsStableAndStreamSensitive) {
  EXPECT_EQ(derive_seed(100, 1), derive_seed(100, 1));
  EXPECT_NE(derive_seed(100, 1), derive_seed(100, 2));
  EXPECT_NE(derive_seed(100, 1), derive_seed(101, 1));
}

TEST(OrnsteinUhlenbeck, StationaryStddevMatches) {
  OrnsteinUhlenbeck ou(/*sigma=*/0.3, /*tau=*/60.0, Rng(23));
  // Warm up past several correlation times, then sample.
  for (int i = 0; i < 100; ++i) ou.advance(Seconds{60.0});
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(ou.advance(Seconds{120.0}));
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 0.3, 0.02);
}

TEST(OrnsteinUhlenbeck, ConsecutiveSamplesAreCorrelated) {
  OrnsteinUhlenbeck ou(1.0, 100.0, Rng(29));
  for (int i = 0; i < 50; ++i) ou.advance(Seconds{100.0});
  std::vector<double> a;
  std::vector<double> b;
  double prev = ou.value();
  for (int i = 0; i < 20000; ++i) {
    // Step far smaller than tau: strong positive autocorrelation expected.
    const double next = ou.advance(Seconds{5.0});
    a.push_back(prev);
    b.push_back(next);
    prev = next;
  }
  EXPECT_GT(pearson(a, b), 0.8);
}

}  // namespace
}  // namespace ash
