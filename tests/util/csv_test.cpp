#include "ash/util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ash {
namespace {

TEST(Csv, EscapePassesPlainCellsThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
}

TEST(Csv, EscapeQuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RoundTripSimpleDocument) {
  std::ostringstream os;
  write_csv_row(os, {"t_s", "freq_hz", "note"});
  write_csv_row(os, {"0", "3300000", "fresh"});
  write_csv_row(os, {"3600", "3295000", "after 1h, \"hot\""});

  std::istringstream is(os.str());
  const CsvDocument doc = read_csv(is);
  ASSERT_EQ(doc.header.size(), 3u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "after 1h, \"hot\"");
  EXPECT_EQ(doc.column("freq_hz"), 1u);
}

TEST(Csv, ColumnLookupThrowsOnMissing) {
  std::istringstream is("a,b\n1,2\n");
  const CsvDocument doc = read_csv(is);
  EXPECT_THROW(doc.column("missing"), std::out_of_range);
}

TEST(Csv, ReadsCrlfAndMissingTrailingNewline) {
  std::istringstream is("a,b\r\n1,2\r\n3,4");
  const CsvDocument doc = read_csv(is);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(Csv, QuotedCellWithEmbeddedNewline) {
  std::istringstream is("a\n\"x\ny\"\n");
  const CsvDocument doc = read_csv(is);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "x\ny");
}

TEST(Csv, RaggedRowsRejected) {
  std::istringstream is("a,b\n1\n");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

}  // namespace
}  // namespace ash
