#include "ash/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ash::util {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 40; });
  auto b = pool.submit([] { return 2; });
  EXPECT_EQ(a.get() + b.get(), 42);
}

TEST(ThreadPool, InlineModeRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0);
  const auto caller = std::this_thread::get_id();
  auto fut = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPool, ParallelForPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto results = pool.parallel_for(64, [](int i) { return i * i; });
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, ParallelForMatchesSerialBitForBit) {
  // The determinism contract: a floating-point reduction over
  // parallel_for results (ordered by index) equals the serial loop's.
  auto work = [](int i) {
    double acc = 1.0;
    for (int k = 0; k < 1000; ++k) acc += 1.0 / (i + k + 1.0);
    return acc;
  };
  std::vector<double> serial;
  for (int i = 0; i < 32; ++i) serial.push_back(work(i));

  ThreadPool pool(4);
  const auto parallel = pool.parallel_for(32, work);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]);  // exact, not approximate
  }
  EXPECT_EQ(std::accumulate(parallel.begin(), parallel.end(), 0.0),
            std::accumulate(serial.begin(), serial.end(), 0.0));
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](int i) -> int {
                          if (i == 3) throw std::runtime_error("task 3");
                          return i;
                        }),
      std::runtime_error);
  // The pool is still usable afterwards.
  EXPECT_EQ(pool.parallel_for(4, [](int i) { return i; }).size(), 4u);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, RecommendedPoolSizeBounds) {
  EXPECT_GE(recommended_pool_size(5), 0);
  EXPECT_LE(recommended_pool_size(5), 5);
  EXPECT_EQ(recommended_pool_size(0), 0);
}

}  // namespace
}  // namespace ash::util
