#include "ash/util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace ash::util {
namespace {

TEST(Crc32Test, CheckValue) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(crc32(""), 0u); }

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
  EXPECT_EQ(crc32(std::string(1, '\0')), 0xD202EF8Du);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string text = "ash-fleet checkpoint payload, framed and fsynced";
  Crc32 crc;
  for (std::size_t split = 0; split <= text.size(); ++split) {
    Crc32 two;
    two.update(text.substr(0, split));
    two.update(text.substr(split));
    EXPECT_EQ(two.value(), crc32(text)) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesValue) {
  std::string text = "durable";
  const std::uint32_t clean = crc32(text);
  for (std::size_t i = 0; i < text.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = text;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      EXPECT_NE(crc32(corrupt), clean) << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace ash::util
