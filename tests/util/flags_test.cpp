#include "ash/util/flags.h"

#include <gtest/gtest.h>

namespace ash {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesSpaceAndEqualsForms) {
  const auto f = parse({"--temp", "110", "--volts=-0.3"});
  EXPECT_EQ(f.get("temp", 0), 110);
  EXPECT_DOUBLE_EQ(f.get("volts", 0.0), -0.3);
}

TEST(Flags, BooleanForms) {
  const auto f = parse({"--fast", "--verbose=false", "--strict=yes"});
  EXPECT_TRUE(f.get("fast", false));
  EXPECT_FALSE(f.get("verbose", true));
  EXPECT_TRUE(f.get("strict", false));
  EXPECT_FALSE(f.get("absent", false));
}

TEST(Flags, PositionalArgumentsSurvive) {
  const auto f = parse({"campaign", "--out", "dir", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "campaign");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get("stages", 75), 75);
  EXPECT_EQ(f.get("name", std::string("x")), "x");
  EXPECT_FALSE(f.has("stages"));
}

TEST(Flags, NegativeNumberAsValueIsNotAFlag) {
  const auto f = parse({"--volts", "-0.3"});
  EXPECT_DOUBLE_EQ(f.get("volts", 0.0), -0.3);
}

TEST(Flags, TypeErrorsThrow) {
  const auto f = parse({"--temp", "hot", "--n", "3.5"});
  EXPECT_THROW(f.get("temp", 0.0), std::invalid_argument);
  EXPECT_THROW(f.get("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get("temp", false), std::invalid_argument);
}

TEST(Flags, UnknownFlagCheck) {
  const auto f = parse({"--chp", "5"});
  EXPECT_THROW(f.check_known({"chip", "out"}), std::invalid_argument);
  EXPECT_NO_THROW(f.check_known({"chp"}));
}

TEST(Flags, BareDoubleDashRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

}  // namespace
}  // namespace ash
