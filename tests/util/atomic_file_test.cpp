#include "ash/util/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <system_error>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ash::util {
namespace {

/// Fresh scratch directory per test, removed on teardown.
class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ash_atomic_file_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") {
          ::unlink((dir_ + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
};

TEST_F(AtomicFileTest, RoundTrip) {
  const std::string path = dir_ + "/data.bin";
  const std::string payload = std::string("binary\0payload\n", 15);
  atomic_write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
}

TEST_F(AtomicFileTest, ReplacesExistingContentWhole) {
  const std::string path = dir_ + "/data.bin";
  atomic_write_file(path, "first version, longer than the second");
  atomic_write_file(path, "v2");
  EXPECT_EQ(read_file(path), "v2");
}

TEST_F(AtomicFileTest, LeavesNoTempFileBehind) {
  atomic_write_file(dir_ + "/data.bin", "payload");
  int entries = 0;
  DIR* d = ::opendir(dir_.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    EXPECT_EQ(name, "data.bin");
    ++entries;
  }
  ::closedir(d);
  EXPECT_EQ(entries, 1);
}

TEST_F(AtomicFileTest, FailureLeavesDestinationUntouched) {
  const std::string path = dir_ + "/keep.bin";
  atomic_write_file(path, "survivor");
  // Make the directory unwritable: the temp-file create must fail and the
  // original content must survive.
  ASSERT_EQ(::chmod(dir_.c_str(), 0555), 0);
  if (::access((dir_ + "/probe").c_str(), W_OK) != 0 && ::geteuid() != 0) {
    EXPECT_THROW(atomic_write_file(path, "usurper"), std::system_error);
    ASSERT_EQ(::chmod(dir_.c_str(), 0755), 0);
    EXPECT_EQ(read_file(path), "survivor");
  } else {
    // Running as root: chmod does not revoke access; skip the probe.
    ASSERT_EQ(::chmod(dir_.c_str(), 0755), 0);
  }
}

TEST_F(AtomicFileTest, MissingDirectoryThrows) {
  EXPECT_THROW(atomic_write_file(dir_ + "/no/such/dir/f", "x"),
               std::system_error);
}

TEST_F(AtomicFileTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_file(dir_ + "/absent"), std::system_error);
}

TEST(DirnameOfTest, Components) {
  EXPECT_EQ(dirname_of("a/b/c.txt"), "a/b");
  EXPECT_EQ(dirname_of("/c.txt"), "/");
  EXPECT_EQ(dirname_of("c.txt"), ".");
}

TEST_F(AtomicFileTest, WritableDirectoryProbe) {
  EXPECT_TRUE(writable_directory(dir_));
  EXPECT_FALSE(writable_directory(dir_ + "/absent"));
  EXPECT_FALSE(writable_directory(dir_ + "/file-not-dir"));
}

}  // namespace
}  // namespace ash::util
