#include "ash/util/table.h"

#include <gtest/gtest.h>

namespace ash {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Case", "Value"});
  t.add_row({"AS110DC24", "2.2%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Case"), std::string::npos);
  EXPECT_NE(out.find("AS110DC24"), std::string::npos);
  EXPECT_NE(out.find("2.2%"), std::string::npos);
}

TEST(Table, ColumnWidthTracksWidestCell) {
  Table t({"A"});
  t.add_row({"a-very-long-cell"});
  const std::string out = t.render();
  // Every rendered line must be equally wide (a rectangular table).
  std::size_t expected = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(Table, RuleInsertsSeparator) {
  Table t({"A"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule (=), outer rules and the inner rule: at least 4 '+' lines.
  int plus_lines = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    if (out[pos] == '+') ++plus_lines;
    pos = out.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  EXPECT_GE(plus_lines, 4);
}

TEST(Table, AlignmentPadsCorrectSide) {
  Table t({"L", "R"});
  t.set_align(0, Align::kLeft);
  t.set_align(1, Align::kRight);
  t.add_row({"x", "y"});
  t.add_row({"longer", "widest-cell"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| x      |"), std::string::npos);
  EXPECT_NE(out.find("|           y |"), std::string::npos);
}

TEST(Strformat, FormatsLikePrintf) {
  EXPECT_EQ(strformat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(strformat("%.3f", 1.23456), "1.235");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(FmtHelpers, FixedAndPercent) {
  EXPECT_EQ(fmt_fixed(2.236, 2), "2.24");
  EXPECT_EQ(fmt_percent(0.0224, 1), "2.2%");
  EXPECT_EQ(fmt_percent(0.724, 1), "72.4%");
}

TEST(AsciiChart, ProducesLegendAndMarks) {
  const std::string chart =
      ascii_chart({"dc", "ac"}, {{0.0, 1.0, 2.0}, {0.0, 0.5, 1.0}}, 32, 8);
  EXPECT_NE(chart.find("[*] dc"), std::string::npos);
  EXPECT_NE(chart.find("[o] ac"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

TEST(AsciiChart, HandlesFlatSeries) {
  const std::string chart = ascii_chart({"flat"}, {{1.0, 1.0, 1.0}}, 16, 4);
  EXPECT_FALSE(chart.empty());
}

}  // namespace
}  // namespace ash
