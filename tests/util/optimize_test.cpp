#include "ash/util/optimize.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ash {
namespace {

TEST(NelderMead, MinimizesShiftedQuadratic) {
  const Objective f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.5) * (x[1] + 1.5);
  };
  const auto result = nelder_mead(f, {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.5, 1e-4);
  EXPECT_NEAR(result.cost, 0.0, 1e-8);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const Objective f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 20000;
  const auto result = nelder_mead(f, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensionalParabola) {
  const Objective f = [](const std::vector<double>& x) {
    return (x[0] - 7.0) * (x[0] - 7.0) + 2.0;
  };
  const auto result = nelder_mead(f, {0.0});
  EXPECT_NEAR(result.x[0], 7.0, 1e-4);
  EXPECT_NEAR(result.cost, 2.0, 1e-8);
}

TEST(NelderMead, RespectsPenaltyConstraints) {
  // Minimum of (x-2)^2 subject to x <= 1 (penalized): expect x -> 1.
  const Objective f = [](const std::vector<double>& x) {
    if (x[0] > 1.0) return 1e6 + x[0];
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  const auto result = nelder_mead(f, {0.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const double x =
      golden_section([](double v) { return (v - 2.5) * (v - 2.5); }, 0.0, 10.0);
  EXPECT_NEAR(x, 2.5, 1e-6);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  const double x = golden_section([](double v) { return v; }, 1.0, 4.0);
  EXPECT_NEAR(x, 1.0, 1e-6);
}

TEST(SolveLinear, SolvesTwoByTwo) {
  // [2 1; 1 3] x = [5; 10]  =>  x = [1; 3].
  const auto x = solve_linear({2.0, 1.0, 1.0, 3.0}, {5.0, 10.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Leading zero forces a row swap: [0 1; 1 0] x = [2; 3].
  const auto x = solve_linear({0.0, 1.0, 1.0, 0.0}, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, ThrowsOnSingular) {
  EXPECT_THROW(solve_linear({1.0, 2.0, 2.0, 4.0}, {1.0, 2.0}),
               std::runtime_error);
}

TEST(LinearLeastSquares, ExactLineRecovery) {
  // y = 2 + 3x sampled without noise -> coefficients recovered exactly.
  std::vector<double> rows;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    const double x = static_cast<double>(i);
    rows.push_back(1.0);
    rows.push_back(x);
    y.push_back(2.0 + 3.0 * x);
  }
  const auto c = linear_least_squares(rows, 2, y);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 2.0, 1e-10);
  EXPECT_NEAR(c[1], 3.0, 1e-10);
}

TEST(LinearLeastSquares, OverdeterminedAveragesNoise) {
  // y = 5 + symmetric noise: intercept-only model recovers 5 exactly.
  const std::vector<double> rows{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> y{4.0, 6.0, 5.5, 4.5};
  const auto c = linear_least_squares(rows, 1, y);
  EXPECT_NEAR(c[0], 5.0, 1e-12);
}

}  // namespace
}  // namespace ash
