// Parallel fan-outs must be bit-identical to the serial loops they
// replace (DESIGN.md Sec. 8): every task owns its chip/runner/ager, the
// pool only schedules, and results merge in index order.  These tests
// pin that contract with an explicit 4-worker pool (the CI box may be
// single-core, where the default pool degenerates to inline mode and
// would not exercise the cross-thread path at all).

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "ash/fpga/chip.h"
#include "ash/mc/scheduler.h"
#include "ash/mc/system.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/thread_pool.h"

namespace {

using namespace ash;

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// A short three-chip campaign: burn-in + 2 h DC stress + 1 h recovery
// per chip, enough phases to exercise instruments, chamber settling and
// the trap kernel without Table-1 runtimes.
std::vector<tb::TestCase> mini_campaign() {
  std::vector<tb::TestCase> cases;
  for (int chip = 1; chip <= 3; ++chip) {
    tb::TestCase tc;
    tc.name = "mini";
    tc.chip_id = chip;
    tc.phases = {tb::burn_in_phase(),
                 tb::dc_stress_phase("AS110DC2", Celsius{110.0}, units::hours(2.0)),
                 tb::recovery_phase("AR110N1", Volts{-0.3}, Celsius{110.0}, units::hours(1.0))};
    cases.push_back(tc);
  }
  return cases;
}

tb::DataLog run_one(const tb::TestCase& tc) {
  fpga::ChipConfig cc;
  cc.chip_id = tc.chip_id;
  cc.seed = 0x5150 + static_cast<std::uint64_t>(tc.chip_id);
  cc.ro_stages = 25;
  fpga::FpgaChip chip(cc);
  tb::ExperimentRunner runner{tb::RunnerConfig{}};
  return runner.run(chip, tc);
}

TEST(ParallelCampaign, FiveChipFanOutMatchesSerialBitForBit) {
  const auto cases = mini_campaign();

  std::vector<tb::DataLog> serial;
  for (const auto& tc : cases) serial.push_back(run_one(tc));

  util::ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4) << "pool must actually spawn workers";
  const auto parallel = pool.parallel_for(
      static_cast<int>(cases.size()),
      [&](int i) { return run_one(cases[static_cast<std::size_t>(i)]); });

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    const auto& s = serial[c].records();
    const auto& p = parallel[c].records();
    ASSERT_EQ(s.size(), p.size()) << "chip " << c + 1;
    for (std::size_t r = 0; r < s.size(); ++r) {
      EXPECT_TRUE(bit_equal(s[r].delay_s.value(), p[r].delay_s.value()))
          << "chip " << c + 1 << " record " << r;
      EXPECT_TRUE(bit_equal(s[r].frequency_hz.value(), p[r].frequency_hz.value()))
          << "chip " << c + 1 << " record " << r;
      EXPECT_TRUE(bit_equal(s[r].t_campaign_s.value(), p[r].t_campaign_s.value()))
          << "chip " << c + 1 << " record " << r;
    }
  }
}

mc::SystemResult run_mc(int aging_threads) {
  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{30.0 * 86400.0};  // 30 days: 120 intervals
  cfg.aging_threads = aging_threads;
  mc::HeaterAwareCircadianScheduler sched;
  return mc::simulate_system(cfg, sched);
}

TEST(ParallelCampaign, McAgingFanOutMatchesSerialBitForBit) {
  const auto serial = run_mc(1);
  const auto parallel = run_mc(4);

  ASSERT_EQ(serial.end_delta_vth_v.size(), parallel.end_delta_vth_v.size());
  for (std::size_t i = 0; i < serial.end_delta_vth_v.size(); ++i) {
    EXPECT_TRUE(
        bit_equal(serial.end_delta_vth_v[i].value(),
                  parallel.end_delta_vth_v[i].value()))
        << "core " << i;
    EXPECT_TRUE(
        bit_equal(serial.end_permanent_v[i].value(),
                  parallel.end_permanent_v[i].value()))
        << "core " << i;
  }
  EXPECT_TRUE(bit_equal(serial.worst_end_delta_vth_v.value(),
                        parallel.worst_end_delta_vth_v.value()));
  EXPECT_TRUE(bit_equal(serial.mean_end_delta_vth_v.value(),
                        parallel.mean_end_delta_vth_v.value()));
  EXPECT_TRUE(
      bit_equal(serial.throughput_core_s.value(), parallel.throughput_core_s.value()));
  ASSERT_EQ(serial.worst_trace.size(), parallel.worst_trace.size());
  for (std::size_t i = 0; i < serial.worst_trace.size(); ++i) {
    EXPECT_TRUE(bit_equal(serial.worst_trace[i].value,
                          parallel.worst_trace[i].value))
        << "trace point " << i;
  }
}

}  // namespace
