/// Bit-exactness regression guard for the hot-kernel overhaul.
///
/// The SoA trap kernel, the per-condition rate cache and the path-delay
/// memoization are all pure refactors: they may not change the physics.
/// This test replays the chip-5 Fig. 9 campaign (the paper's longest
/// schedule: burn-in, 24 h DC stress, 6 h combined-knob recovery, 48 h
/// re-stress, 12 h recovery) and compares every sampled delta_vth — plus
/// the fault-tolerant runner's logged delays — against golden values
/// captured from the pre-refactor AoS implementation, to 1 ulp.
///
/// If this test fails after an *intentional* physics change, regenerate
/// tests/perf/golden_chip5_data.h with the collection logic below.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/constants.h"
#include "golden_chip5_data.h"

namespace ash {
namespace {

double stage_delta_vth(const fpga::RoStage& s) {
  double acc = 0.0;
  for (int d = 0; d < fpga::kLutDeviceCount; ++d) {
    acc += s.lut.device(d).delta_vth();
  }
  for (int d = 0; d < fpga::kRoutingDeviceCount; ++d) {
    acc += s.routing.device(d).delta_vth();
  }
  return acc;
}

double chip_delta_vth(const fpga::FpgaChip& chip) {
  double acc = 0.0;
  for (int i = 0; i < chip.ro().stage_count(); ++i) {
    acc += stage_delta_vth(chip.ro().stage(i));
  }
  return acc;
}

fpga::ChipConfig chip5_config() {
  fpga::ChipConfig cc;
  cc.chip_id = 5;
  cc.seed = 0x40A0 + 5;  // ash_lab chip5 default
  cc.ro_stages = 75;
  return cc;
}

double from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Distance in representable doubles (0 = bit-identical).  Signs never
/// differ here (all golden values are positive shifts/delays).
std::uint64_t ulp_distance(double a, double b) {
  std::uint64_t ia;
  std::uint64_t ib;
  std::memcpy(&ia, &a, sizeof ia);
  std::memcpy(&ib, &b, sizeof ib);
  return ia > ib ? ia - ib : ib - ia;
}

template <std::size_t N>
void expect_matches(const std::uint64_t (&golden)[N],
                    const std::vector<double>& actual, const char* what) {
  ASSERT_EQ(N, actual.size()) << what << ": sample count changed";
  for (std::size_t i = 0; i < N; ++i) {
    const double expected = from_bits(golden[i]);
    EXPECT_LE(ulp_distance(expected, actual[i]), 1u)
        << what << "[" << i << "]: expected " << expected << ", got "
        << actual[i];
  }
}

TEST(GoldenTrajectory, Chip5ManualDriveMatchesPreRefactorBits) {
  const tb::TestCase tc = tb::paper_campaign().at(4);
  ASSERT_EQ(tc.name, "chip5");

  fpga::FpgaChip chip(chip5_config());
  std::vector<double> trajectory;
  std::vector<double> stage_sums;
  for (const auto& phase : tc.phases) {
    bti::OperatingCondition cond;
    cond.voltage_v = phase.supply_v;
    cond.temperature_k = Kelvin{celsius(phase.chamber_c.value())};
    const int steps =
        std::max(1, static_cast<int>(phase.duration_s / phase.sample_every_s));
    const double dt = phase.duration_s.value() / steps;
    for (int s = 0; s < steps; ++s) {
      chip.evolve(phase.mode, cond, Seconds{dt});
      trajectory.push_back(chip_delta_vth(chip));
    }
    for (int i : {0, 37, 74}) {
      stage_sums.push_back(stage_delta_vth(chip.ro().stage(i)));
    }
  }

  expect_matches(golden::kChip5DeltaVthTrajectoryBits, trajectory,
                 "delta_vth trajectory");
  expect_matches(golden::kChip5StageSumBits, stage_sums, "stage sums");
}

TEST(GoldenTrajectory, Chip5RunnerCampaignMatchesPreRefactorBits) {
  const tb::TestCase tc = tb::paper_campaign().at(4);
  fpga::FpgaChip chip(chip5_config());
  tb::ExperimentRunner runner{tb::RunnerConfig{}};
  const auto result = runner.run_campaign(chip, tc);
  ASSERT_TRUE(result.completed);

  std::vector<double> log_delays;
  for (const auto& r : result.log.records()) {
    log_delays.push_back(r.delay_s.value());
  }
  expect_matches(golden::kChip5LogDelayBits, log_delays, "logged delays");
}

}  // namespace
}  // namespace ash
