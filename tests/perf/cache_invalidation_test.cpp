/// Invalidation coverage for the caches added by the hot-kernel overhaul:
/// the trap ensemble's delta_vth dot product and the fpga path-delay memos
/// must refresh on *every* state mutation — evolve, reset, and in
/// particular set_occupancies (the checkpoint-restore path, which
/// historically bypassed derived-state refreshes in naive dirty-flag
/// schemes; here the version counter covers it by construction).

#include <gtest/gtest.h>

#include <vector>

#include "ash/bti/trap_ensemble.h"
#include "ash/fpga/checkpoint.h"
#include "ash/fpga/chip.h"
#include "ash/fpga/lut.h"

namespace ash {
namespace {

bti::OperatingCondition stress_condition() {
  bti::OperatingCondition c;
  c.voltage_v = Volts{1.2};
  c.temperature_k = Kelvin{383.0};
  c.gate_stress_duty = 1.0;
  return c;
}

TEST(CacheInvalidation, EvolveBumpsVersionAndRefreshesDeltaVth) {
  bti::TrapEnsemble e(bti::TdParameters{}, 7);
  const std::uint64_t v0 = e.state_version();
  EXPECT_EQ(e.delta_vth(), 0.0);

  e.evolve(stress_condition(), Seconds{3600.0});
  EXPECT_GT(e.state_version(), v0);
  const double aged = e.delta_vth();
  EXPECT_GT(aged, 0.0);

  // dt = 0 is a no-op: no state change, no version bump.
  const std::uint64_t v1 = e.state_version();
  e.evolve(stress_condition(), Seconds{0.0});
  EXPECT_EQ(e.state_version(), v1);
  EXPECT_EQ(e.delta_vth(), aged);
}

TEST(CacheInvalidation, SetOccupanciesRefreshesDeltaVth) {
  bti::TrapEnsemble e(bti::TdParameters{}, 7);
  e.evolve(stress_condition(), Seconds{3600.0});
  const double aged = e.delta_vth();
  const std::vector<double> snapshot = e.occupancies();

  // Rewind to fresh via set_occupancies: the cached dot product must not
  // survive the state swap.
  e.set_occupancies(std::vector<double>(snapshot.size(), 0.0));
  EXPECT_EQ(e.delta_vth(), 0.0);

  // And forward again: restoring the exact snapshot restores the exact
  // value.
  e.set_occupancies(snapshot);
  EXPECT_EQ(e.delta_vth(), aged);
}

TEST(CacheInvalidation, ResetRefreshesDeltaVth) {
  bti::TrapEnsemble e(bti::TdParameters{}, 7);
  e.evolve(stress_condition(), Seconds{3600.0});
  ASSERT_GT(e.delta_vth(), 0.0);
  e.reset();
  EXPECT_EQ(e.delta_vth(), 0.0);
}

TEST(CacheInvalidation, LutPathDelayTracksDirectEnsembleMutation) {
  const bti::TdParameters params;
  fpga::PassTransistorLut2 lut(fpga::inverter_config(), 1.0, params, 11);
  const fpga::DelayParams dp;
  const double vdd = 1.0;
  const double temp = 298.15;

  const double fresh = lut.path_delay(true, true, dp, Volts{vdd}, Kelvin{temp});
  // Repeated read: cached, bit-identical.
  EXPECT_EQ(lut.path_delay(true, true, dp, Volts{vdd}, Kelvin{temp}), fresh);

  // Mutate one on-path device's ensemble directly (not via age_*): the
  // version stamp must catch it.
  const auto path = lut.conducting_path(true, true);
  lut.device(path[0]).evolve(stress_condition(), Seconds{24.0 * 3600.0});
  const double aged = lut.path_delay(true, true, dp, Volts{vdd}, Kelvin{temp});
  EXPECT_GT(aged, fresh);

  // Rewind that device via set_occupancies: delay returns to the fresh
  // value bit-for-bit.
  auto& ens = lut.device(path[0]).ensemble();
  ens.set_occupancies(std::vector<double>(
      static_cast<std::size_t>(ens.trap_count()), 0.0));
  EXPECT_EQ(lut.path_delay(true, true, dp, Volts{vdd}, Kelvin{temp}), fresh);
}

TEST(CacheInvalidation, LutPathDelayTracksMeasurementKnobs) {
  const bti::TdParameters params;
  fpga::PassTransistorLut2 lut(fpga::inverter_config(), 1.0, params, 11);
  fpga::DelayParams dp;
  dp.temp_coeff_per_k = 1e-3;  // default 0 makes delay T-independent
  const double d_nom = lut.path_delay(false, true, dp, Volts{1.0}, Kelvin{298.15});
  // Same state, different measurement knobs: the cache must not serve the
  // stale point.
  const double d_low_vdd = lut.path_delay(false, true, dp, Volts{0.9}, Kelvin{298.15});
  const double d_hot = lut.path_delay(false, true, dp, Volts{1.0}, Kelvin{358.15});
  EXPECT_NE(d_nom, d_low_vdd);
  EXPECT_NE(d_nom, d_hot);
  // And back: bit-identical re-reads at each point.
  EXPECT_EQ(lut.path_delay(false, true, dp, Volts{1.0}, Kelvin{298.15}), d_nom);
}

TEST(CacheInvalidation, CheckpointRewindThenMeasure) {
  fpga::ChipConfig cc;
  cc.chip_id = 3;
  cc.seed = 0x5150;
  cc.ro_stages = 15;
  fpga::FpgaChip chip(cc);
  const double vdd = 1.0;
  const double temp = 298.15;

  bti::OperatingCondition env = stress_condition();
  chip.evolve(fpga::RoMode::kDcFrozen, env, Seconds{3600.0});
  const double f_mid = chip.ro_frequency_hz(Volts{vdd}, Kelvin{temp}).value();
  const std::string snapshot = fpga::checkpoint_string(chip);

  chip.evolve(fpga::RoMode::kDcFrozen, env, Seconds{48.0 * 3600.0});
  const double f_late = chip.ro_frequency_hz(Volts{vdd}, Kelvin{temp}).value();
  EXPECT_LT(f_late, f_mid);

  // Rewind to the snapshot and measure immediately: every cached delay on
  // the chip must reflect the restored occupancies, bit-for-bit.
  fpga::restore_checkpoint(snapshot, chip);
  EXPECT_EQ(chip.ro_frequency_hz(Volts{vdd}, Kelvin{temp}).value(), f_mid);

  // Aging forward from the restored state diverges again (the caches do
  // not pin the chip to the snapshot).
  chip.evolve(fpga::RoMode::kDcFrozen, env, Seconds{3600.0});
  EXPECT_LT(chip.ro_frequency_hz(Volts{vdd}, Kelvin{temp}).value(), f_mid);
}

}  // namespace
}  // namespace ash
