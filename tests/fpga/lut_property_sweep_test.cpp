/// Property sweep over all 16 LUT configurations: the structural
/// invariants of the bias-derived stress analysis must hold for *every*
/// function a 2-LUT can implement, not just the paper's inverter example.

#include <algorithm>

#include <gtest/gtest.h>

#include "ash/fpga/lut.h"
#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

LutConfig config_from_bits(int bits) {
  LutConfig c{};
  for (int i = 0; i < 4; ++i) c[static_cast<std::size_t>(i)] = (bits >> i) & 1;
  return c;
}

class LutConfigSweep : public ::testing::TestWithParam<int> {
 protected:
  PassTransistorLut2 make() const {
    return PassTransistorLut2(config_from_bits(GetParam()), 1.0,
                              bti::default_td_parameters(), 17);
  }
};

TEST_P(LutConfigSweep, StressSetIsAPureFunctionOfInputs) {
  auto lut = make();
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      const auto before = lut.stressed_devices(in0 != 0, in1 != 0);
      lut.age_static(in0 != 0, in1 != 0, bti::dc_stress(Volts{1.2}, Celsius{110.0}),
                     Seconds{hours(4.0)});
      EXPECT_EQ(before, lut.stressed_devices(in0 != 0, in1 != 0));
    }
  }
}

TEST_P(LutConfigSweep, ExactlyTwoBufferDevicesAlwaysStressed) {
  const auto lut = make();
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      const auto stressed = lut.stressed_devices(in0 != 0, in1 != 0);
      int buffer_devices = 0;
      for (int d : stressed) {
        if (d == kM7 || d == kM8 || d == kM9 || d == kM10) ++buffer_devices;
      }
      EXPECT_EQ(buffer_devices, 2);
      // One per buffer stage, of opposite polarity.
      const bool t = lut.evaluate(in0 != 0, in1 != 0);
      EXPECT_TRUE(std::count(stressed.begin(), stressed.end(),
                             t ? kM7 : kM8) == 1);
      EXPECT_TRUE(std::count(stressed.begin(), stressed.end(),
                             t ? kM10 : kM9) == 1);
    }
  }
}

TEST_P(LutConfigSweep, PassStressRequiresAConductingZero) {
  const auto lut = make();
  const auto config = config_from_bits(GetParam());
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      const auto stressed = lut.stressed_devices(in0 != 0, in1 != 0);
      // Level-2 device stressed implies the selected branch carries a 0,
      // i.e. the tree output is 0.
      const bool t = lut.evaluate(in0 != 0, in1 != 0);
      const bool m5 = std::count(stressed.begin(), stressed.end(), kM5) > 0;
      const bool m6 = std::count(stressed.begin(), stressed.end(), kM6) > 0;
      if (in1 != 0) {
        EXPECT_FALSE(m6);
        EXPECT_EQ(m5, !t);
      } else {
        EXPECT_FALSE(m5);
        EXPECT_EQ(m6, !t);
      }
      // Level-1 stress requires the passed config bit to be 0.
      if (std::count(stressed.begin(), stressed.end(), kM1) > 0) {
        EXPECT_TRUE(in0 != 0 && !config[3]);
      }
      if (std::count(stressed.begin(), stressed.end(), kM4) > 0) {
        EXPECT_TRUE(in0 == 0 && !config[0]);
      }
    }
  }
}

TEST_P(LutConfigSweep, ConductingPathIsOnSelectedBranch) {
  const auto lut = make();
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      const auto path = lut.conducting_path(in0 != 0, in1 != 0);
      if (in1 != 0) {
        EXPECT_TRUE(path[0] == kM1 || path[0] == kM2);
        EXPECT_EQ(path[1], kM5);
      } else {
        EXPECT_TRUE(path[0] == kM3 || path[0] == kM4);
        EXPECT_EQ(path[1], kM6);
      }
    }
  }
}

TEST_P(LutConfigSweep, FreshDelayIsInputIndependentAndPositive) {
  const auto lut = make();
  const DelayParams dp;
  const double d = lut.path_delay(false, false, dp, Volts{1.2}, Kelvin{celsius(20.0)});
  EXPECT_GT(d, 0.0);
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      EXPECT_NEAR(lut.path_delay(in0 != 0, in1 != 0, dp, Volts{1.2}, Kelvin{celsius(20.0)}),
                  d, 1e-15);
    }
  }
}

TEST_P(LutConfigSweep, DcAgingNeverTouchesUnstressedDevices) {
  auto lut = make();
  const auto stressed = lut.stressed_devices(true, false);
  lut.age_static(true, false, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  for (int d = 0; d < kLutDeviceCount; ++d) {
    const bool is_stressed =
        std::count(stressed.begin(), stressed.end(), d) > 0;
    if (is_stressed) {
      EXPECT_GT(lut.device(d).delta_vth(), 0.0) << "device " << d;
    } else {
      EXPECT_DOUBLE_EQ(lut.device(d).delta_vth(), 0.0) << "device " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, LutConfigSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace ash::fpga
