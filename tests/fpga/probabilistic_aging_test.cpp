/// Tests for signal-probability propagation and probabilistic aging —
/// the EDA-style mission-profile analysis on the mapped fabric.

#include <gtest/gtest.h>

#include "ash/fpga/fabric.h"
#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

Fabric make_fabric(Netlist nl, std::uint64_t seed = 1) {
  FabricConfig c;
  c.seed = seed;
  return Fabric(std::move(nl), c);
}

Netlist and_gate() {
  Netlist nl;
  nl.name = "and1";
  nl.primary_inputs = {"a", "b"};
  nl.nodes = {{"u0", lut_and(), {"a", "b"}, "out"}};
  nl.primary_outputs = {"out"};
  return nl;
}

TEST(ProbabilisticAging, AndGateProbabilityIsProduct) {
  const auto fab = make_fabric(and_gate());
  const auto p = fab.propagate_probabilities({{"a", 0.5}, {"b", 0.25}});
  EXPECT_NEAR(p.at("out"), 0.125, 1e-12);
}

TEST(ProbabilisticAging, XorGateProbability) {
  Netlist nl = and_gate();
  nl.nodes[0].config = lut_xor();
  const auto fab = make_fabric(std::move(nl));
  const auto p = fab.propagate_probabilities({{"a", 0.3}, {"b", 0.6}});
  // P(xor) = p(1-q) + (1-p)q.
  EXPECT_NEAR(p.at("out"), 0.3 * 0.4 + 0.7 * 0.6, 1e-12);
}

TEST(ProbabilisticAging, PropagatesThroughDepth) {
  // c17 with all inputs at 0.5: every NAND of independent 0.5 inputs is
  // 0.75 at its output; deeper nodes mix accordingly.
  const auto fab = make_fabric(c17());
  NetProbabilities pi;
  for (const auto& name : fab.netlist().primary_inputs) pi[name] = 0.5;
  const auto p = fab.propagate_probabilities(pi);
  EXPECT_NEAR(p.at("n10"), 0.75, 1e-12);
  EXPECT_NEAR(p.at("n11"), 0.75, 1e-12);
  // n16 = !(n2 & n11) with p(n2)=0.5, p(n11)=0.75.
  EXPECT_NEAR(p.at("n16"), 1.0 - 0.5 * 0.75, 1e-12);
  for (const auto& [net, prob] : p) {
    EXPECT_GE(prob, 0.0) << net;
    EXPECT_LE(prob, 1.0) << net;
  }
}

TEST(ProbabilisticAging, ValidatesInputs) {
  const auto fab = make_fabric(and_gate());
  EXPECT_THROW(fab.propagate_probabilities({{"a", 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(fab.propagate_probabilities({{"a", 1.5}, {"b", 0.5}}),
               std::invalid_argument);
}

TEST(ProbabilisticAging, DegenerateProbabilitiesMatchStaticAging) {
  // P(in) in {0,1} must reproduce age_static exactly (same per-device
  // duties, same conditions).
  auto prob_fab = make_fabric(and_gate(), 9);
  auto static_fab = make_fabric(and_gate(), 9);
  const auto env = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  prob_fab.age_probabilistic({{"a", 1.0}, {"b", 1.0}}, env, Seconds{hours(24.0)});
  static_fab.age_static({{"a", true}, {"b", true}}, env, Seconds{hours(24.0)});
  for (int d = 0; d < kLutDeviceCount; ++d) {
    EXPECT_NEAR(prob_fab.lut_of("u0").device(d).delta_vth(),
                static_fab.lut_of("u0").device(d).delta_vth(), 1e-9)
        << "device " << d;
  }
  for (int d = 0; d < kRoutingDeviceCount; ++d) {
    EXPECT_NEAR(prob_fab.routing_of("u0").device(d).delta_vth(),
                static_fab.routing_of("u0").device(d).delta_vth(), 1e-9)
        << "routing device " << d;
  }
}

TEST(ProbabilisticAging, BiasedInputsAgeAsymmetrically) {
  // a mostly-1 workload stresses the 1-sensitized devices harder.
  auto mostly1 = make_fabric(and_gate(), 3);
  auto mostly0 = make_fabric(and_gate(), 3);
  const auto env = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  mostly1.age_probabilistic({{"a", 0.95}, {"b", 0.95}}, env, Seconds{hours(24.0)});
  mostly0.age_probabilistic({{"a", 0.05}, {"b", 0.05}}, env, Seconds{hours(24.0)});
  // Routing carries out=AND: mostly 1 vs mostly 0 — R1N vs R1P asymmetry
  // flips between the two workloads.
  EXPECT_GT(mostly1.routing_of("u0").device(kR1N).delta_vth(),
            mostly1.routing_of("u0").device(kR1P).delta_vth());
  EXPECT_LT(mostly0.routing_of("u0").device(kR1N).delta_vth(),
            mostly0.routing_of("u0").device(kR1P).delta_vth());
}

TEST(ProbabilisticAging, IntermediateProbabilitiesAgeBetweenExtremes) {
  auto p50 = make_fabric(and_gate(), 5);
  auto p100 = make_fabric(and_gate(), 5);
  const auto env = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  p50.age_probabilistic({{"a", 0.5}, {"b", 0.5}}, env, Seconds{hours(24.0)});
  p100.age_probabilistic({{"a", 1.0}, {"b", 1.0}}, env, Seconds{hours(24.0)});
  // M1 is stressed only in the (1,1) corner for the AND config... its duty
  // under p=0.5 is a quarter of the p=1 duty, so it ages strictly less.
  const double d50 = p50.lut_of("u0").device(kM1).delta_vth();
  const double d100 = p100.lut_of("u0").device(kM1).delta_vth();
  if (d100 > 0.0) {
    EXPECT_LT(d50, d100);
  }
  // Whole-LUT wear is also bounded by the DC extreme.
  EXPECT_LE(p50.lut_of("u0").max_delta_vth(),
            p100.lut_of("u0").max_delta_vth() * 1.5);
}

TEST(ProbabilisticAging, TimingDriftFollowsWorkloadBias) {
  // A month of a biased mission profile on the adder in one call.
  FabricConfig cfg;
  cfg.seed = 7;
  Fabric fab(ripple_carry_adder(2), cfg);
  const double fresh = fab.timing(Volts{1.2}, Kelvin{celsius(60.0)}).worst_arrival_s.value();
  NetProbabilities pi{{"cin", 0.1}};
  for (int i = 0; i < 2; ++i) {
    pi["a" + std::to_string(i)] = 0.5;
    pi["b" + std::to_string(i)] = 0.9;
  }
  fab.age_probabilistic(pi, bti::dc_stress(Volts{1.2}, Celsius{80.0}), Seconds{hours(24.0 * 30)});
  const double aged = fab.timing(Volts{1.2}, Kelvin{celsius(60.0)}).worst_arrival_s.value();
  EXPECT_GT(aged, fresh * 1.001);
}

}  // namespace
}  // namespace ash::fpga
