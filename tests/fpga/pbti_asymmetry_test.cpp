/// Tests for the NBTI/PBTI asymmetry knob (Sec. 1 of the paper: PBTI was
/// negligible before high-k gates; the calibrated default treats them
/// alike at the 40 nm node).

#include <gtest/gtest.h>

#include "ash/fpga/chip.h"
#include "ash/fpga/lut.h"
#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

const double kRoom = celsius(20.0);

TEST(PbtiAsymmetry, RatioScalesNmosParametersOnly) {
  const auto& base = bti::default_td_parameters();
  const auto nmos = td_for_device(DeviceType::kNmos, base, 0.3);
  const auto pmos = td_for_device(DeviceType::kPmos, base, 0.3);
  EXPECT_NEAR(nmos.delta_vth_mean_v.value(), base.delta_vth_mean_v.value() * 0.3,
              1e-12);
  EXPECT_DOUBLE_EQ(pmos.delta_vth_mean_v.value(), base.delta_vth_mean_v.value());
}

TEST(PbtiAsymmetry, UnityRatioIsIdentity) {
  const auto& base = bti::default_td_parameters();
  const auto nmos = td_for_device(DeviceType::kNmos, base, 1.0);
  EXPECT_DOUBLE_EQ(nmos.delta_vth_mean_v.value(), base.delta_vth_mean_v.value());
}

TEST(PbtiAsymmetry, WeakPbtiSparesNmosDevices) {
  // SiON-era ratio: the PBTI-stressed pass devices age far less, the
  // NBTI-stressed buffer PMOS is untouched by the knob.
  PassTransistorLut2 strong(inverter_config(), 1.0,
                            bti::default_td_parameters(), 7, 1.0);
  PassTransistorLut2 weak(inverter_config(), 1.0,
                          bti::default_td_parameters(), 7, 0.2);
  strong.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  weak.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  // M1 (NMOS pass, PBTI) shrinks by ~the ratio.
  EXPECT_NEAR(weak.device(kM1).delta_vth() / strong.device(kM1).delta_vth(),
              0.2, 0.08);
  // M8 (PMOS buffer, NBTI) is statistically unchanged (same seed => same
  // trap population, ratio does not touch PMOS).
  EXPECT_DOUBLE_EQ(weak.device(kM8).delta_vth(),
                   strong.device(kM8).delta_vth());
}

TEST(PbtiAsymmetry, WeakPbtiReducesRoDegradation) {
  ChipConfig hk;
  hk.seed = 5;
  hk.ro_stages = 15;
  ChipConfig sion = hk;
  sion.pbti_amplitude_ratio = 0.3;
  FpgaChip chip_hk(hk);
  FpgaChip chip_sion(sion);
  const double f_hk = chip_hk.ro_frequency_hz(Volts{1.2}, Kelvin{kRoom}).value();
  const double f_sion = chip_sion.ro_frequency_hz(Volts{1.2}, Kelvin{kRoom}).value();
  chip_hk.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  chip_sion.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}),
                   Seconds{hours(24.0)});
  const double deg_hk = 1.0 - chip_hk.ro_frequency_hz(Volts{1.2}, Kelvin{kRoom}).value() / f_hk;
  const double deg_sion =
      1.0 - chip_sion.ro_frequency_hz(Volts{1.2}, Kelvin{kRoom}).value() / f_sion;
  EXPECT_LT(deg_sion, 0.75 * deg_hk);
  EXPECT_GT(deg_sion, 0.2 * deg_hk);  // the NBTI share remains
}

TEST(PbtiAsymmetry, RejectsNonPositiveRatio) {
  EXPECT_THROW(PassTransistorLut2(inverter_config(), 1.0,
                                  bti::default_td_parameters(), 1, 0.0),
               std::invalid_argument);
  EXPECT_THROW(PassTransistorLut2(inverter_config(), 1.0,
                                  bti::default_td_parameters(), 1, -1.0),
               std::invalid_argument);
}

TEST(PbtiAsymmetry, HighKWorseThanUnityIsAllowed) {
  // "Rapidly becoming an important reliability issue": ratios above 1
  // model PBTI-dominant stacks.
  PassTransistorLut2 lut(inverter_config(), 1.0,
                         bti::default_td_parameters(), 7, 1.5);
  lut.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  PassTransistorLut2 base(inverter_config(), 1.0,
                          bti::default_td_parameters(), 7, 1.0);
  base.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_GT(lut.device(kM1).delta_vth(), base.device(kM1).delta_vth());
}

}  // namespace
}  // namespace ash::fpga
