#include "ash/fpga/fabric.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"
#include "ash/util/table.h"

namespace ash::fpga {
namespace {

Fabric make_fabric(Netlist nl, std::uint64_t seed = 1) {
  FabricConfig c;
  c.seed = seed;
  return Fabric(std::move(nl), c);
}

const double kRoom = celsius(20.0);

// --- Functional evaluation -------------------------------------------------

TEST(Fabric, AdderComputesCorrectSumsExhaustively) {
  auto fab = make_fabric(ripple_carry_adder(3));
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      for (int cin = 0; cin <= 1; ++cin) {
        NetValues in;
        in["cin"] = cin != 0;
        for (int i = 0; i < 3; ++i) {
          in[strformat("a%d", i)] = (a >> i) & 1;
          in[strformat("b%d", i)] = (b >> i) & 1;
        }
        const auto out = fab.evaluate(in);
        int sum = 0;
        for (int i = 0; i < 3; ++i) {
          if (out.at(strformat("s%d", i))) sum |= 1 << i;
        }
        if (out.at("cout")) sum |= 1 << 3;
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(Fabric, C17MatchesGateLevelTruth) {
  auto fab = make_fabric(c17());
  // Reference: n22 = !(n10 & n16), etc.  Check all 32 input vectors
  // against a direct NAND evaluation.
  for (int v = 0; v < 32; ++v) {
    const bool n1 = v & 1, n2 = v & 2, n3 = v & 4, n6 = v & 8, n7 = v & 16;
    NetValues in{{"n1", n1}, {"n2", n2}, {"n3", n3}, {"n6", n6}, {"n7", n7}};
    const auto out = fab.evaluate(in);
    const bool n10 = !(n1 && n3);
    const bool n11 = !(n3 && n6);
    const bool n16 = !(n2 && n11);
    const bool n19 = !(n11 && n7);
    EXPECT_EQ(out.at("n22"), !(n10 && n16)) << v;
    EXPECT_EQ(out.at("n23"), !(n16 && n19)) << v;
  }
}

TEST(Fabric, ChainInvertsByParity) {
  auto odd = make_fabric(inverter_chain(5));
  auto even = make_fabric(inverter_chain(6));
  EXPECT_EQ(odd.evaluate({{"in", true}}).at("out"), false);
  EXPECT_EQ(even.evaluate({{"in", true}}).at("out"), true);
}

TEST(Fabric, EvaluateRequiresAllInputs) {
  auto fab = make_fabric(c17());
  EXPECT_THROW(fab.evaluate({{"n1", true}}), std::invalid_argument);
}

TEST(Fabric, UnknownInstanceLookupThrows) {
  auto fab = make_fabric(c17());
  EXPECT_THROW(fab.lut_of("nope"), std::out_of_range);
}

// --- Timing ---------------------------------------------------------------

TEST(Fabric, FreshTimingScalesWithLogicDepth) {
  auto shallow = make_fabric(inverter_chain(3), 7);
  auto deep = make_fabric(inverter_chain(9), 7);
  const double t3 = shallow.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value();
  const double t9 = deep.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value();
  EXPECT_NEAR(t9 / t3, 3.0, 0.4);  // mismatch-limited
}

TEST(Fabric, CriticalPathCoversTheChain) {
  auto fab = make_fabric(inverter_chain(4));
  const auto report = fab.timing(Volts{1.2}, Kelvin{kRoom});
  ASSERT_EQ(report.critical_path.size(), 4u);
  EXPECT_EQ(report.critical_path.front(), "u0");
  EXPECT_EQ(report.critical_path.back(), "u3");
  EXPECT_EQ(report.critical_output, "out");
}

TEST(Fabric, AdderCriticalPathIsTheCarryChain) {
  auto fab = make_fabric(ripple_carry_adder(4));
  const auto report = fab.timing(Volts{1.2}, Kelvin{kRoom});
  // Worst arrival is cout or the top sum bit; its path traverses roughly
  // 2 LUT levels per bit.
  EXPECT_GE(report.critical_path.size(), 5u);
  EXPECT_TRUE(report.critical_output == "cout" ||
              report.critical_output == "s3");
  // Every primary output has an arrival.
  EXPECT_EQ(report.arrival_s.size(), 5u);
}

TEST(Fabric, AgingSlowsTheDesign) {
  auto fab = make_fabric(c17());
  const double fresh = fab.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value();
  fab.age_toggling(bti::ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double aged = fab.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value();
  EXPECT_GT(aged, fresh * 1.005);
}

TEST(Fabric, RejuvenationRestoresTiming) {
  auto fab = make_fabric(c17());
  const double fresh = fab.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value();
  fab.age_toggling(bti::ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double aged = fab.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value();
  fab.age_sleep(bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  const double healed = fab.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value();
  EXPECT_LT(healed, fresh + 0.2 * (aged - fresh));
}

// --- Workload-dependent (DC) aging -----------------------------------------

TEST(Fabric, StaticAgingIsWorkloadDependent) {
  // Hold a = b = 1 on an AND: the gate's output stays 1; a complementary
  // workload ages different devices.  The two fabrics must diverge.
  Netlist nl;
  nl.name = "and1";
  nl.primary_inputs = {"a", "b"};
  nl.nodes = {{"u0", lut_and(), {"a", "b"}, "out"}};
  nl.primary_outputs = {"out"};

  auto fab_hi = make_fabric(nl, 3);
  auto fab_lo = make_fabric(nl, 3);
  const auto env = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  fab_hi.age_static({{"a", true}, {"b", true}}, env, Seconds{hours(24.0)});
  fab_lo.age_static({{"a", false}, {"b", false}}, env, Seconds{hours(24.0)});

  // Different devices aged: compare the per-device shift patterns.
  bool any_different = false;
  for (int d = 0; d < kLutDeviceCount; ++d) {
    if (std::abs(fab_hi.lut_of("u0").device(d).delta_vth() -
                 fab_lo.lut_of("u0").device(d).delta_vth()) > 1e-4) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Fabric, StaticAgingOnlyTouchesSensitizedDevices) {
  auto fab = make_fabric(inverter_chain(2), 5);
  fab.age_static({{"in", true}}, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  // u0 sees in0 = 1 (inverter: stressed set includes M1, M5); its
  // complementary-path pass device M2 stays fresh.
  EXPECT_GT(fab.lut_of("u0").device(kM1).delta_vth(), 1e-3);
  EXPECT_DOUBLE_EQ(fab.lut_of("u0").device(kM2).delta_vth(), 0.0);
  // u1 sees in0 = 0: M1 fresh, buffer NMOS (M7) stressed.
  EXPECT_DOUBLE_EQ(fab.lut_of("u1").device(kM1).delta_vth(), 0.0);
  EXPECT_GT(fab.lut_of("u1").device(kM7).delta_vth(), 1e-3);
}

TEST(Fabric, SkewedWorkloadShiftsTheCriticalPath) {
  // Two parallel buffers into an AND; age one branch only — it must end
  // up on the critical path.
  Netlist nl;
  nl.name = "y";
  nl.primary_inputs = {"a", "b"};
  nl.nodes = {{"left", lut_buf_a(), {"a", "a"}, "l"},
              {"right", lut_buf_a(), {"b", "b"}, "r"},
              {"join", lut_and(), {"l", "r"}, "out"}};
  nl.primary_outputs = {"out"};
  FabricConfig cfg;
  cfg.seed = 11;
  cfg.mismatch_sigma = 0.0;  // identical branches before aging
  Fabric fab(nl, cfg);

  // DC workload that sensitizes only the left branch's 0-passing devices:
  // a = 0 stresses 'left' harder than b = 1 stresses 'right'.
  fab.age_static({{"a", false}, {"b", true}}, bti::dc_stress(Volts{1.2}, Celsius{110.0}),
                 Seconds{hours(48.0)});
  const auto report = fab.timing(Volts{1.2}, Kelvin{kRoom});
  ASSERT_EQ(report.critical_path.size(), 2u);
  EXPECT_EQ(report.critical_path.front(), "left");
}

TEST(Fabric, DeterministicForSameSeed) {
  auto a = make_fabric(c17(), 99);
  auto b = make_fabric(c17(), 99);
  a.age_toggling(bti::ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(5.0)});
  b.age_toggling(bti::ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(5.0)});
  EXPECT_DOUBLE_EQ(a.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value(),
                   b.timing(Volts{1.2}, Kelvin{kRoom}).worst_arrival_s.value());
}

}  // namespace
}  // namespace ash::fpga
