#include "ash/fpga/counter.h"

#include <vector>

#include <gtest/gtest.h>

#include "ash/util/stats.h"

namespace ash::fpga {
namespace {

FrequencyCounter make_counter(CounterConfig c = {}, std::uint64_t seed = 1) {
  return FrequencyCounter(c, Rng(seed));
}

TEST(Counter, ResolutionMatchesGateLength) {
  CounterConfig c;
  c.f_ref_hz = Hertz{500.0};
  c.gate_ref_periods = 16;
  const auto counter = make_counter(c);
  // 2 * 500 / 16 = 62.5 Hz per count.
  EXPECT_DOUBLE_EQ(counter.resolution_hz().value(), 62.5);
}

TEST(Counter, Equation14RoundTripsWithoutNoise) {
  CounterConfig c;
  c.noise_counts_sigma = 0.0;
  auto counter = make_counter(c);
  // Pick a frequency that is an exact multiple of the resolution.
  const double f = 3.3e6;
  const auto r = counter.measure(Hertz{f});
  EXPECT_NEAR(r.frequency_hz.value(), f, counter.resolution_hz().value());
  EXPECT_NEAR(r.delay_s.value(), 1.0 / (2.0 * f), 1e-11);
}

TEST(Counter, Equation15DelayFromCounts) {
  CounterConfig c;
  c.noise_counts_sigma = 0.0;
  c.gate_ref_periods = 1;
  auto counter = make_counter(c);
  const auto r = counter.measure(Hertz{3.3e6});
  // Td = 1/(4 * Cout * fref), Eq. (15), for a single reference period.
  EXPECT_NEAR(r.delay_s.value(), 1.0 / (4.0 * r.counts * c.f_ref_hz.value()), 1e-15);
}

TEST(Counter, PaperOperatingPointFitsIn16Bits) {
  CounterConfig c;  // 500 Hz, 16 periods, 16 bits
  auto counter = make_counter(c);
  const auto r = counter.measure(Hertz{3.33e6});
  // ~3.33e6 * (16/500) / 2 = ~53 280 counts < 65 535: no wrap.
  EXPECT_EQ(static_cast<double>(r.raw_counts), r.counts);
  EXPECT_LT(r.raw_counts, 65536u);
}

TEST(Counter, WrapsPastSixteenBits) {
  CounterConfig c;
  c.noise_counts_sigma = 0.0;
  c.gate_ref_periods = 64;  // 4x the gate -> counts exceed 2^16
  auto counter = make_counter(c);
  const auto r = counter.measure(Hertz{3.33e6});
  EXPECT_GT(r.counts, 65535.0);
  EXPECT_EQ(r.raw_counts, static_cast<std::uint32_t>(r.counts) & 0xFFFFu);
  EXPECT_GT(3.33e6, counter.max_unwrapped_frequency_hz().value());
}

TEST(Counter, NoiseMatchesConfiguredSigma) {
  CounterConfig c;
  c.noise_counts_sigma = 1.7;
  auto counter = make_counter(c, 99);
  std::vector<double> counts;
  for (int i = 0; i < 20000; ++i) counts.push_back(counter.measure(Hertz{3.3e6}).counts);
  // Quantization adds ~1/12 variance on top of the Gaussian noise.
  EXPECT_NEAR(ash::stddev(counts), 1.7, 0.25);
}

TEST(Counter, RepeatabilityMatchesPaperBound) {
  // The paper quotes +/-5 counts; with sigma = 1.7 essentially all readings
  // sit within that band.
  auto counter = make_counter({}, 7);
  const double f = 3.3e6;
  double lo = 1e18;
  double hi = -1e18;
  for (int i = 0; i < 1000; ++i) {
    const double counts = counter.measure(Hertz{f}).counts;
    lo = std::min(lo, counts);
    hi = std::max(hi, counts);
  }
  EXPECT_LE(hi - lo, 12.0);
  EXPECT_GE(hi - lo, 2.0);  // noise actually present
}

TEST(Counter, RejectsBadConfigAndInput) {
  CounterConfig bad;
  bad.f_ref_hz = Hertz{0.0};
  EXPECT_THROW(make_counter(bad), std::invalid_argument);
  bad = {};
  bad.bits = 40;
  EXPECT_THROW(make_counter(bad), std::invalid_argument);
  auto counter = make_counter();
  EXPECT_THROW(counter.measure(Hertz{0.0}), std::invalid_argument);
  EXPECT_THROW(counter.measure(Hertz{-1.0}), std::invalid_argument);
}

TEST(Counter, LongerGateImprovesRelativeResolution) {
  CounterConfig coarse;
  coarse.gate_ref_periods = 1;
  CounterConfig fine;
  fine.gate_ref_periods = 32;
  EXPECT_GT(make_counter(coarse).resolution_hz(),
            make_counter(fine).resolution_hz());
}

}  // namespace
}  // namespace ash::fpga
