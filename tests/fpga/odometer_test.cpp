#include "ash/fpga/odometer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

SiliconOdometer make_odometer(std::uint64_t seed = 0x0D0) {
  OdometerConfig c;
  c.seed = seed;
  return SiliconOdometer(c);
}

const double kRoom = celsius(20.0);

TEST(Odometer, FreshSensorReadsNearZero) {
  auto odo = make_odometer();
  const auto r = odo.read(Kelvin{kRoom});
  // Counter quantization only: well below 0.1 %.
  EXPECT_NEAR(r.degradation_estimate, 0.0, 1e-3);
}

TEST(Odometer, CalibrationCancelsStaticMismatch) {
  // The two mirrors are deliberately mismatched; the fresh differential
  // must still read ~0 thanks to the t = 0 calibration.
  OdometerConfig c;
  c.mismatch_sigma = 0.05;
  SiliconOdometer odo(c);
  EXPECT_NEAR(odo.read(Kelvin{kRoom}).degradation_estimate, 0.0, 1.5e-3);
}

TEST(Odometer, TracksTrueDegradationUnderStress) {
  auto odo = make_odometer();
  odo.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double truth = odo.true_degradation(Kelvin{kRoom});
  const auto r = odo.read(Kelvin{kRoom});
  ASSERT_GT(truth, 0.01);
  EXPECT_NEAR(r.degradation_estimate, truth, 0.25 * truth);
}

TEST(Odometer, EstimateGrowsWithStressTime) {
  auto odo = make_odometer();
  odo.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(2.0)});
  const double early = odo.read(Kelvin{kRoom}).degradation_estimate;
  odo.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(22.0)});
  const double late = odo.read(Kelvin{kRoom}).degradation_estimate;
  EXPECT_GT(late, early);
}

TEST(Odometer, ReferenceMirrorStaysNearlyFresh) {
  auto odo = make_odometer();
  odo.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const auto r = odo.read(Kelvin{kRoom});
  // If the reference aged with the mirror, the differential would read ~0.
  EXPECT_GT(r.degradation_estimate, 0.01);
}

TEST(Odometer, SensorHealsWithTheFabric) {
  auto odo = make_odometer();
  odo.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double stressed = odo.read(Kelvin{kRoom}).degradation_estimate;
  odo.sleep(bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  const double healed = odo.read(Kelvin{kRoom}).degradation_estimate;
  EXPECT_LT(healed, 0.3 * stressed);
}

TEST(Odometer, RepeatedReadsBarelyDisturbTheSensor) {
  // 1000 reads = ~32 s of cumulative AC at room conditions: the estimate
  // drift must stay below the counter noise floor.
  auto odo = make_odometer();
  for (int i = 0; i < 1000; ++i) odo.read(Kelvin{kRoom});
  EXPECT_EQ(odo.reads_taken(), 1001 - 1);
  EXPECT_NEAR(odo.read(Kelvin{kRoom}).degradation_estimate, 0.0, 2e-3);
}

TEST(Odometer, DifferentialCancelsTemperatureOfTheRead) {
  // Enable the delay temperature coefficient: absolute frequencies move
  // with the read temperature, but the differential estimate must not.
  OdometerConfig c;
  c.delay.temp_coeff_per_k = 1.2e-3;
  SiliconOdometer odo(c);
  odo.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double cold = odo.read(Kelvin{celsius(20.0)}).degradation_estimate;
  const double hot = odo.read(Kelvin{celsius(110.0)}).degradation_estimate;
  EXPECT_NEAR(cold, hot, 0.15 * cold);
}

TEST(Odometer, ReadDropoutsAreInvalidNaNButStillAge) {
  OdometerConfig c;
  c.read_dropout_probability = 0.3;
  SiliconOdometer odo(c);
  int dropped = 0;
  const int reads = 400;
  for (int i = 0; i < reads; ++i) {
    const auto r = odo.read(Kelvin{kRoom});
    if (!r.valid) {
      ++dropped;
      EXPECT_TRUE(std::isnan(r.degradation_estimate));
      EXPECT_DOUBLE_EQ(r.stressed_hz.value(), 0.0);
    } else {
      EXPECT_FALSE(std::isnan(r.degradation_estimate));
    }
  }
  // ~30% of reads drop (binomial, +-5 sigma), and every attempt — dropped
  // or not — spun the rings.
  EXPECT_NEAR(dropped, 0.3 * reads, 5.0 * std::sqrt(reads * 0.3 * 0.7));
  EXPECT_EQ(odo.reads_taken(), reads);
}

TEST(Odometer, DropoutsAreOffByDefaultAndSeedDeterministic) {
  auto odo = make_odometer();
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(odo.read(Kelvin{kRoom}).valid);
  OdometerConfig c;
  c.read_dropout_probability = 0.2;
  SiliconOdometer a(c);
  SiliconOdometer b(c);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.read(Kelvin{kRoom}).valid, b.read(Kelvin{kRoom}).valid) << "read " << i;
  }
}

TEST(Odometer, DeterministicForSameSeed) {
  auto a = make_odometer(7);
  auto b = make_odometer(7);
  a.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(5.0)});
  b.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(5.0)});
  EXPECT_DOUBLE_EQ(a.read(Kelvin{kRoom}).degradation_estimate,
                   b.read(Kelvin{kRoom}).degradation_estimate);
}

}  // namespace
}  // namespace ash::fpga
