#include "ash/fpga/routing.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

RoutingBlock make_block(std::uint64_t seed = 1) {
  return RoutingBlock(1.0, bti::default_td_parameters(), seed);
}

TEST(Routing, ConductingPathForValueOne) {
  const auto rb = make_block();
  const auto path = rb.conducting_path(true);
  EXPECT_EQ(path[0], kR1N);
  EXPECT_EQ(path[1], kR2P);
}

TEST(Routing, ConductingPathForValueZero) {
  const auto rb = make_block();
  const auto path = rb.conducting_path(false);
  EXPECT_EQ(path[0], kR1P);
  EXPECT_EQ(path[1], kR2N);
}

TEST(Routing, StressedDevicesAreTheConductingOnes) {
  const auto rb = make_block();
  for (bool v : {false, true}) {
    const auto path = rb.conducting_path(v);
    const auto stressed = rb.stressed_devices(v);
    ASSERT_EQ(stressed.size(), 2u);
    EXPECT_EQ(stressed[0], path[0]);
    EXPECT_EQ(stressed[1], path[1]);
  }
}

TEST(Routing, FreshDelayIsTwoSegments) {
  const auto rb = make_block();
  const DelayParams dp;
  EXPECT_NEAR(rb.path_delay(true, dp, Volts{1.2}, Kelvin{celsius(20.0)}), 0.8e-9, 1e-15);
}

TEST(Routing, StaticAgingOnlyAffectsCarriedValuePath) {
  auto rb = make_block();
  rb.age_static(true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_GT(rb.device(kR1N).delta_vth(), 0.0);
  EXPECT_GT(rb.device(kR2P).delta_vth(), 0.0);
  EXPECT_DOUBLE_EQ(rb.device(kR1P).delta_vth(), 0.0);
  EXPECT_DOUBLE_EQ(rb.device(kR2N).delta_vth(), 0.0);
}

TEST(Routing, AgedPathSlowsDown) {
  auto rb = make_block();
  const DelayParams dp;
  const double fresh = rb.path_delay(true, dp, Volts{1.2}, Kelvin{celsius(20.0)});
  rb.age_static(true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_GT(rb.path_delay(true, dp, Volts{1.2}, Kelvin{celsius(20.0)}), fresh * 1.01);
  // The complementary path is untouched.
  EXPECT_NEAR(rb.path_delay(false, dp, Volts{1.2}, Kelvin{celsius(20.0)}), 0.8e-9, 1e-15);
}

TEST(Routing, SleepHealsAgedDevices) {
  auto rb = make_block();
  rb.age_static(true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double aged = rb.device(kR1N).delta_vth();
  rb.age_sleep(bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  EXPECT_LT(rb.device(kR1N).delta_vth(), aged * 0.2);
}

TEST(Routing, DeviceTypesAlternate) {
  const auto rb = make_block();
  EXPECT_EQ(rb.device(kR1N).type(), DeviceType::kNmos);
  EXPECT_EQ(rb.device(kR1P).type(), DeviceType::kPmos);
  EXPECT_EQ(rb.device(kR2N).type(), DeviceType::kNmos);
  EXPECT_EQ(rb.device(kR2P).type(), DeviceType::kPmos);
}

}  // namespace
}  // namespace ash::fpga
