#include "ash/fpga/delay.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

const DelayParams kDefault;

TEST(DelayModel, FreshSegmentAtNominalIsUnscaled) {
  EXPECT_DOUBLE_EQ(
      segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(20.0)}), 1e-9);
}

TEST(DelayModel, ThresholdShiftSlowsTheSegment) {
  const double fresh = segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(20.0)});
  const double aged = segment_delay(kDefault, Seconds{1e-9}, Volts{30e-3}, Volts{1.2}, Kelvin{celsius(20.0)});
  // Eq. (6) linearization: dtd/td ~ dVth/(Vdd - Vth) = 30m/0.8 = 3.75 %.
  EXPECT_NEAR(aged / fresh, 1.0 + 0.03/0.8 * 1.25, 0.01);
  EXPECT_GT(aged, fresh);
}

TEST(DelayModel, LinearizationMatchesEq6ForSmallShifts) {
  const double td0 = 1e-9;
  const double dvth = 1e-3;
  const double aged = segment_delay(kDefault, Seconds{td0}, Volts{dvth}, Volts{1.2}, Kelvin{celsius(20.0)});
  const double eq6 = td0 * (1.0 + dvth / (1.2 - 0.4));
  EXPECT_NEAR(aged, eq6, td0 * 2e-5);
}

TEST(DelayModel, LowerSupplyIsSlower) {
  EXPECT_GT(segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.0}, Kelvin{celsius(20.0)}),
            segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(20.0)}));
}

TEST(DelayModel, BoostedSupplyIsFaster) {
  EXPECT_LT(segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.32}, Kelvin{celsius(20.0)}),
            segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(20.0)}));
}

TEST(DelayModel, FunctionalityBoundary) {
  EXPECT_TRUE(is_functional(kDefault, Volts{1.2}, Volts{0.0}));
  EXPECT_TRUE(is_functional(kDefault, Volts{1.2}, Volts{0.5}));
  EXPECT_FALSE(is_functional(kDefault, Volts{1.2}, Volts{0.76}));
  EXPECT_FALSE(is_functional(kDefault, Volts{0.44}, Volts{0.0}));
}

TEST(DelayModel, ThrowsWithoutOverdrive) {
  EXPECT_THROW(segment_delay(kDefault, Seconds{1e-9}, Volts{0.8}, Volts{1.2}, Kelvin{celsius(20.0)}),
               std::domain_error);
  EXPECT_THROW(segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{0.3}, Kelvin{celsius(20.0)}),
               std::domain_error);
}

TEST(DelayModel, TemperatureCoefficientOptIn) {
  DelayParams tc = kDefault;
  tc.temp_coeff_per_k = 1e-3;
  const double cold = segment_delay(tc, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(20.0)});
  const double hot = segment_delay(tc, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(110.0)});
  EXPECT_NEAR(hot / cold, 1.09, 1e-6);
  // Default: temperature-insensitive.
  EXPECT_DOUBLE_EQ(segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(110.0)}),
                   segment_delay(kDefault, Seconds{1e-9}, Volts{0.0}, Volts{1.2}, Kelvin{celsius(20.0)}));
}

}  // namespace
}  // namespace ash::fpga
