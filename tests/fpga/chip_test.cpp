#include "ash/fpga/chip.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

constexpr double kVdd = 1.2;
const double kRoomK = celsius(20.0);

ChipConfig config_for(int id) {
  ChipConfig c;
  c.chip_id = id;
  c.seed = 1000 + static_cast<std::uint64_t>(id);
  return c;
}

TEST(Chip, FreshFrequenciesDifferAcrossChips) {
  // The paper: "the initial RO frequencies for different fresh chips differ
  // due to variations" — motivation for the recovered-delay metric.
  const FpgaChip a(config_for(1));
  const FpgaChip b(config_for(2));
  EXPECT_NE(a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value(), b.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value());
  // But they are the same part: within a few percent of each other.
  EXPECT_NEAR(a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / b.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value(),
              1.0, 0.2);
}

TEST(Chip, SameSeedIsSameChip) {
  const FpgaChip a(config_for(1));
  const FpgaChip b(config_for(1));
  EXPECT_DOUBLE_EQ(a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value(),
                   b.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value());
}

TEST(Chip, CornerScaleIsPlausible) {
  const FpgaChip a(config_for(1));
  EXPECT_GT(a.chip_corner_scale(), 0.85);
  EXPECT_LT(a.chip_corner_scale(), 1.15);
}

TEST(Chip, CutDelayMatchesHalfPeriod) {
  const FpgaChip a(config_for(1));
  EXPECT_DOUBLE_EQ(a.cut_delay_s(Volts{kVdd}, Kelvin{kRoomK}).value(),
                   0.5 / a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value());
}

TEST(Chip, EvolveForwardsToRing) {
  FpgaChip a(config_for(1));
  const double fresh = a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  a.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_LT(a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value(), fresh);
}

TEST(Chip, AgingIsIndependentOfChipIdentity) {
  // Two different chips degrade by a similar *fraction* even though their
  // absolute frequencies differ.
  FpgaChip a(config_for(1));
  FpgaChip b(config_for(2));
  const double fa = a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  const double fb = b.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  a.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  b.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double da = 1.0 - a.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / fa;
  const double db = 1.0 - b.ro_frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / fb;
  EXPECT_NEAR(da / db, 1.0, 0.2);
}

TEST(Chip, TemperatureCoefficientOptInAffectsFrequency) {
  ChipConfig c = config_for(1);
  c.delay.temp_coeff_per_k = 1.2e-3;
  const FpgaChip chip(c);
  EXPECT_LT(chip.ro_frequency_hz(Volts{kVdd}, Kelvin{celsius(110.0)}).value(),
            chip.ro_frequency_hz(Volts{kVdd}, Kelvin{celsius(20.0)}).value());
}

TEST(Chip, DefaultMeasurementIsTemperatureInsensitive) {
  const FpgaChip chip(config_for(1));
  EXPECT_DOUBLE_EQ(chip.ro_frequency_hz(Volts{kVdd}, Kelvin{celsius(110.0)}).value(),
                   chip.ro_frequency_hz(Volts{kVdd}, Kelvin{celsius(20.0)}).value());
}

}  // namespace
}  // namespace ash::fpga
