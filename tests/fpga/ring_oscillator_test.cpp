#include "ash/fpga/ring_oscillator.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

RingOscillator make_ro(int stages = 75, std::uint64_t seed = 1) {
  return RingOscillator(stages, std::vector<double>(static_cast<std::size_t>(stages), 1.0),
                        DelayParams{}, bti::default_td_parameters(), seed);
}

constexpr double kVdd = 1.2;
const double kRoomK = celsius(20.0);

TEST(RingOscillator, FreshFrequencyNearDesignPoint) {
  const auto ro = make_ro();
  // 75 stages x 2 ns, period 300 ns -> ~3.33 MHz.
  EXPECT_NEAR(ro.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value(), 3.333e6, 0.05e6);
}

TEST(RingOscillator, RejectsEvenOrTinyRings) {
  EXPECT_THROW(make_ro(74), std::invalid_argument);
  EXPECT_THROW(make_ro(1), std::invalid_argument);
}

TEST(RingOscillator, RejectsMismatchedScaleVector) {
  EXPECT_THROW(RingOscillator(75, std::vector<double>(10, 1.0), DelayParams{},
                              bti::default_td_parameters(), 1),
               std::invalid_argument);
}

TEST(RingOscillator, PeriodIsSumOfBothTraversals) {
  const auto ro = make_ro();
  EXPECT_DOUBLE_EQ(ro.period_s(Volts{kVdd}, Kelvin{kRoomK}).value(),
                   ro.traversal_delay_s(false, Volts{kVdd}, Kelvin{kRoomK}).value() +
                       ro.traversal_delay_s(true, Volts{kVdd}, Kelvin{kRoomK}).value());
}

TEST(RingOscillator, LowerSupplyOscillatesSlower) {
  const auto ro = make_ro();
  EXPECT_LT(ro.frequency_hz(Volts{1.0}, Kelvin{kRoomK}).value(), ro.frequency_hz(Volts{1.2}, Kelvin{kRoomK}).value());
}

TEST(RingOscillator, DcStress24hDegradesFrequencyLikeThePaper) {
  // Table 2 / Fig. 4: 24 h DC @110 C -> ~2.2 % frequency degradation.
  auto ro = make_ro();
  const double fresh = ro.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  ro.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double degradation = 1.0 - ro.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / fresh;
  EXPECT_GT(degradation, 0.015);
  EXPECT_LT(degradation, 0.030);
}

TEST(RingOscillator, AcStressIsAboutHalfOfDc) {
  // Fig. 4's headline shape at the circuit level.
  auto dc = make_ro(75, 3);
  auto ac = make_ro(75, 3);
  const double fresh_dc = dc.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  const double fresh_ac = ac.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  dc.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  ac.evolve(RoMode::kAcOscillating, bti::ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double deg_dc = 1.0 - dc.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / fresh_dc;
  const double deg_ac = 1.0 - ac.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / fresh_ac;
  const double ratio = deg_ac / deg_dc;
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.70);
}

TEST(RingOscillator, StressAt100CDegradesLessThan110C) {
  auto hot = make_ro(75, 5);
  auto warm = make_ro(75, 5);
  const double fresh = hot.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  hot.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  warm.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{100.0}), Seconds{hours(24.0)});
  const double deg_hot = 1.0 - hot.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / fresh;
  const double deg_warm = 1.0 - warm.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() / fresh;
  EXPECT_LT(deg_warm, deg_hot);
  // Table 2 ratio ~ 1.7 / 2.2 = 0.77.
  EXPECT_NEAR(deg_warm / deg_hot, 0.77, 0.12);
}

TEST(RingOscillator, AcceleratedSleepRecoversMostOfTheDegradation) {
  auto ro = make_ro();
  const double fresh = ro.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  ro.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double stressed = ro.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  ro.evolve(RoMode::kSleep, bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  const double healed = ro.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  const double recovered_share = (healed - stressed) / (fresh - stressed);
  EXPECT_GT(recovered_share, 0.80);
  EXPECT_LT(recovered_share, 1.001);
}

TEST(RingOscillator, PassiveSleepRecoversLess) {
  auto active = make_ro(75, 7);
  auto passive = make_ro(75, 7);
  const auto stress_then = [&](RingOscillator& ro,
                               const bti::OperatingCondition& rec) {
    ro.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
    ro.evolve(RoMode::kSleep, rec, Seconds{hours(6.0)});
    return ro.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value();
  };
  const double f_active = stress_then(active, bti::recovery(Volts{-0.3}, Celsius{110.0}));
  const double f_passive = stress_then(passive, bti::recovery(Volts{0.0}, Celsius{20.0}));
  EXPECT_GT(f_active, f_passive);
}

TEST(RingOscillator, DcInputAlternatesAcrossStages) {
  EXPECT_TRUE(RingOscillator::dc_input_of_stage(0));
  EXPECT_FALSE(RingOscillator::dc_input_of_stage(1));
  EXPECT_TRUE(RingOscillator::dc_input_of_stage(2));
}

TEST(RingOscillator, VariationScalesShiftFrequency) {
  const int n = 75;
  const RingOscillator nominal = make_ro(n, 9);
  const RingOscillator slow(n, std::vector<double>(n, 1.05), DelayParams{},
                            bti::default_td_parameters(), 9);
  EXPECT_NEAR(nominal.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value() /
                  slow.frequency_hz(Volts{kVdd}, Kelvin{kRoomK}).value(),
              1.05, 1e-9);
}

}  // namespace
}  // namespace ash::fpga
