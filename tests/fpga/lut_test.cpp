#include "ash/fpga/lut.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

using bti::default_td_parameters;

PassTransistorLut2 make_lut(LutConfig config = inverter_config(),
                            std::uint64_t seed = 1) {
  return PassTransistorLut2(config, 1.0, default_td_parameters(), seed);
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// ---- Logic function: exhaustive over all 16 configs x 4 input vectors ----

class LutTruthTable : public ::testing::TestWithParam<int> {};

TEST_P(LutTruthTable, EvaluatesConfiguredFunction) {
  const int bits = GetParam();
  LutConfig config{};
  for (int i = 0; i < 4; ++i) config[static_cast<std::size_t>(i)] = (bits >> i) & 1;
  const auto lut = make_lut(config);
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      const bool expected = config[static_cast<std::size_t>(2 * in1 + in0)];
      EXPECT_EQ(lut.evaluate(in0 != 0, in1 != 0), expected)
          << "config=" << bits << " in0=" << in0 << " in1=" << in1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, LutTruthTable, ::testing::Range(0, 16));

TEST(Lut, InverterConfigInverts) {
  const auto lut = make_lut();
  EXPECT_TRUE(lut.evaluate(false, true));
  EXPECT_FALSE(lut.evaluate(true, true));
  EXPECT_TRUE(lut.evaluate(false, false));
  EXPECT_FALSE(lut.evaluate(true, false));
}

// ---- Stress-set analysis: the paper's Sec. 3.2 example --------------------

TEST(Lut, PaperExampleIn0HighStressesM1AndM5) {
  const auto lut = make_lut();
  const auto poi = lut.stressed_on_poi(/*in0=*/true, /*in1=*/true);
  EXPECT_TRUE(contains(poi, kM1));
  EXPECT_TRUE(contains(poi, kM5));
  EXPECT_FALSE(contains(poi, kM2));
  EXPECT_FALSE(contains(poi, kM7));
}

TEST(Lut, PaperExampleIn0LowStressesM7) {
  const auto lut = make_lut();
  const auto poi = lut.stressed_on_poi(/*in0=*/false, /*in1=*/true);
  EXPECT_TRUE(contains(poi, kM7));
  EXPECT_FALSE(contains(poi, kM1));
  EXPECT_FALSE(contains(poi, kM5));
  EXPECT_FALSE(contains(poi, kM2));
}

TEST(Lut, OffPoiDevicesAlsoAgeUnderDc) {
  // For the inverter at In0 = 1, the unselected branch's M3 (gate In0,
  // passing C1 = 0) is stressed even though it is off the timed path.
  const auto lut = make_lut();
  const auto all = lut.stressed_devices(true, true);
  const auto poi = lut.stressed_on_poi(true, true);
  EXPECT_TRUE(contains(all, kM3));
  EXPECT_FALSE(contains(poi, kM3));
}

TEST(Lut, Hypothesis1StressSetIsConstantUnderDc) {
  // The stress set is a pure function of (config, inputs): identical before
  // and after arbitrary aging.
  auto lut = make_lut();
  const auto before = lut.stressed_devices(true, true);
  lut.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const auto after = lut.stressed_devices(true, true);
  EXPECT_EQ(before, after);
}

TEST(Lut, StressSetDependsOnInputs) {
  const auto lut = make_lut();
  EXPECT_NE(lut.stressed_devices(true, true), lut.stressed_devices(false, true));
}

TEST(Lut, PassDeviceStressRequiresPassingZero) {
  // Constant-1 config: every selected bit is 1, so no pass transistor ever
  // passes a 0 and only buffer devices are stressed.
  const auto lut = make_lut(LutConfig{true, true, true, true});
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      const auto stressed = lut.stressed_devices(in0 != 0, in1 != 0);
      for (int d : stressed) {
        EXPECT_TRUE(d == kM7 || d == kM8 || d == kM9 || d == kM10)
            << "unexpected stressed pass device " << d;
      }
    }
  }
}

TEST(Lut, ConstantZeroConfigStressesConductingTree) {
  // Constant-0 config: the conducting tree always passes 0, so both
  // conducting pass devices are stressed for every input vector.
  const auto lut = make_lut(LutConfig{false, false, false, false});
  for (int in1 = 0; in1 <= 1; ++in1) {
    for (int in0 = 0; in0 <= 1; ++in0) {
      const auto poi = lut.stressed_on_poi(in0 != 0, in1 != 0);
      const auto path = lut.conducting_path(in0 != 0, in1 != 0);
      EXPECT_TRUE(contains(poi, path[0]));
      EXPECT_TRUE(contains(poi, path[1]));
    }
  }
}

// ---- Conducting path and delay -------------------------------------------

TEST(Lut, ConductingPathSelectsByInputs) {
  const auto lut = make_lut();
  const auto p11 = lut.conducting_path(true, true);
  EXPECT_EQ(p11[0], kM1);
  EXPECT_EQ(p11[1], kM5);
  const auto p01 = lut.conducting_path(false, true);
  EXPECT_EQ(p01[0], kM2);
  EXPECT_EQ(p01[1], kM5);
  const auto p10 = lut.conducting_path(true, false);
  EXPECT_EQ(p10[0], kM3);
  EXPECT_EQ(p10[1], kM6);
  const auto p00 = lut.conducting_path(false, false);
  EXPECT_EQ(p00[0], kM4);
  EXPECT_EQ(p00[1], kM6);
}

TEST(Lut, FreshPathDelayMatchesSegmentSum) {
  const auto lut = make_lut();
  const DelayParams dp;
  // 2 x 0.25 ns pass + 2 x 0.35 ns buffer = 1.2 ns.
  EXPECT_NEAR(lut.path_delay(true, true, dp, Volts{1.2}, Kelvin{celsius(20.0)}), 1.2e-9,
              1e-15);
}

TEST(Lut, DelayGrowsOnlyOnStressedPath) {
  auto lut = make_lut();
  const DelayParams dp;
  const double fresh1 = lut.path_delay(true, true, dp, Volts{1.2}, Kelvin{celsius(20.0)});
  const double fresh0 = lut.path_delay(false, true, dp, Volts{1.2}, Kelvin{celsius(20.0)});
  lut.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double aged1 = lut.path_delay(true, true, dp, Volts{1.2}, Kelvin{celsius(20.0)});
  const double aged0 = lut.path_delay(false, true, dp, Volts{1.2}, Kelvin{celsius(20.0)});
  EXPECT_GT(aged1, fresh1 * 1.01);  // stressed path clearly slower
  // The complementary path shares only M5 with the stressed set, so it
  // slows a little — but far less than the stressed path.
  EXPECT_GT(aged0, fresh0);
  EXPECT_LT(aged0 - fresh0, 0.35 * (aged1 - fresh1));
}

TEST(Lut, Hypothesis2RecoveryLeavesFreshDevicesFresh) {
  auto lut = make_lut();
  lut.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  ASSERT_DOUBLE_EQ(lut.device(kM2).delta_vth(), 0.0);
  ASSERT_DOUBLE_EQ(lut.device(kM7).delta_vth(), 0.0);
  lut.age_sleep(bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  EXPECT_DOUBLE_EQ(lut.device(kM2).delta_vth(), 0.0);
  EXPECT_DOUBLE_EQ(lut.device(kM7).delta_vth(), 0.0);
}

TEST(Lut, RecoveryHealsStressedDevices) {
  auto lut = make_lut();
  lut.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double stressed = lut.device(kM1).delta_vth();
  ASSERT_GT(stressed, 0.0);
  lut.age_sleep(bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  EXPECT_LT(lut.device(kM1).delta_vth(), stressed * 0.2);
}

TEST(Lut, TogglingAgesBothPaths) {
  auto lut = make_lut();
  lut.age_toggling(bti::ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_GT(lut.device(kM1).delta_vth(), 0.0);
  EXPECT_GT(lut.device(kM2).delta_vth(), 0.0);
  EXPECT_GT(lut.device(kM7).delta_vth(), 0.0);
  EXPECT_GT(lut.device(kM8).delta_vth(), 0.0);
}

TEST(Lut, DeviceTypesMatchNetlistRoles) {
  const auto lut = make_lut();
  EXPECT_EQ(lut.device(kM1).type(), DeviceType::kNmos);
  EXPECT_EQ(lut.device(kM5).type(), DeviceType::kNmos);
  EXPECT_EQ(lut.device(kM7).type(), DeviceType::kNmos);
  EXPECT_EQ(lut.device(kM8).type(), DeviceType::kPmos);
  EXPECT_EQ(lut.device(kM8).stress_type(), bti::StressType::kNbti);
  EXPECT_EQ(lut.device(kM7).stress_type(), bti::StressType::kPbti);
}

TEST(Lut, MaxDeltaVthTracksWorstDevice) {
  auto lut = make_lut();
  EXPECT_DOUBLE_EQ(lut.max_delta_vth(), 0.0);
  lut.age_static(true, true, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  EXPECT_GE(lut.max_delta_vth(), lut.device(kM1).delta_vth());
  EXPECT_GT(lut.max_delta_vth(), 0.0);
}

}  // namespace
}  // namespace ash::fpga
