#include "ash/fpga/checkpoint.h"

#include <sstream>

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::fpga {
namespace {

ChipConfig small_chip_config(std::uint64_t seed = 77) {
  ChipConfig c;
  c.seed = seed;
  c.ro_stages = 9;
  return c;
}

TEST(Checkpoint, ChipRoundTripsBitExact) {
  FpgaChip chip(small_chip_config());
  chip.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(7.0)});
  const double f_before = chip.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value();

  std::ostringstream os;
  save_checkpoint(os, chip);

  // A freshly constructed twin restored from the checkpoint matches
  // exactly.
  FpgaChip twin(small_chip_config());
  EXPECT_NE(twin.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value(), f_before);
  std::istringstream is(os.str());
  load_checkpoint(is, twin);
  EXPECT_DOUBLE_EQ(twin.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value(), f_before);
}

TEST(Checkpoint, ResumedCampaignMatchesUninterruptedRun) {
  // stress 7 h | checkpoint | stress 5 h  ==  stress 12 h straight.
  FpgaChip straight(small_chip_config(3));
  straight.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(12.0)});

  FpgaChip first(small_chip_config(3));
  first.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(7.0)});
  std::ostringstream os;
  save_checkpoint(os, first);

  FpgaChip resumed(small_chip_config(3));
  std::istringstream is(os.str());
  load_checkpoint(is, resumed);
  resumed.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(5.0)});

  EXPECT_NEAR(resumed.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value(),
              straight.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value(), 1e-3);
}

TEST(Checkpoint, FabricRoundTrips) {
  FabricConfig cfg;
  cfg.seed = 5;
  Fabric fab(c17(), cfg);
  fab.age_toggling(bti::ac_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  const double t_before = fab.timing(Volts{1.2}, Kelvin{celsius(20.0)}).worst_arrival_s.value();

  std::ostringstream os;
  save_checkpoint(os, fab);
  Fabric twin(c17(), cfg);
  std::istringstream is(os.str());
  load_checkpoint(is, twin);
  EXPECT_DOUBLE_EQ(twin.timing(Volts{1.2}, Kelvin{celsius(20.0)}).worst_arrival_s.value(), t_before);
}

TEST(Checkpoint, RejectsKindMismatch) {
  FpgaChip chip(small_chip_config());
  std::ostringstream os;
  save_checkpoint(os, chip);
  FabricConfig cfg;
  Fabric fab(c17(), cfg);
  std::istringstream is(os.str());
  EXPECT_THROW(load_checkpoint(is, fab), std::runtime_error);
}

TEST(Checkpoint, RejectsStructureMismatch) {
  FpgaChip chip(small_chip_config());
  std::ostringstream os;
  save_checkpoint(os, chip);
  ChipConfig other = small_chip_config();
  other.ro_stages = 11;  // different structure
  FpgaChip wrong(other);
  std::istringstream is(os.str());
  EXPECT_THROW(load_checkpoint(is, wrong), std::runtime_error);
}

TEST(Checkpoint, RejectsCorruptedStreams) {
  FpgaChip chip(small_chip_config());
  std::ostringstream os;
  save_checkpoint(os, chip);
  const std::string good = os.str();

  FpgaChip target(small_chip_config());
  {
    std::istringstream is("not-a-checkpoint\n");
    EXPECT_THROW(load_checkpoint(is, target), std::runtime_error);
  }
  {
    // Truncate mid-document.
    std::istringstream is(good.substr(0, good.size() / 2));
    EXPECT_THROW(load_checkpoint(is, target), std::runtime_error);
  }
  {
    // Version bump.
    std::string bad = good;
    bad.replace(bad.find("v1"), 2, "v9");
    std::istringstream is(bad);
    EXPECT_THROW(load_checkpoint(is, target), std::runtime_error);
  }
  {
    // Out-of-range occupancy.
    std::string bad = good;
    const auto pos = bad.find("\nD ");
    bad.replace(pos + 1, 4, "D 2.5");  // mangle a row
    std::istringstream is(bad);
    EXPECT_THROW(load_checkpoint(is, target), std::runtime_error);
  }
}

TEST(Checkpoint, FailedLoadLeavesObjectUntouched) {
  FpgaChip chip(small_chip_config());
  chip.evolve(RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(3.0)});
  const double f = chip.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value();
  std::istringstream is("ash-checkpoint v1 chip devices=3\nD 1 0.5\n");
  EXPECT_THROW(load_checkpoint(is, chip), std::runtime_error);
  EXPECT_DOUBLE_EQ(chip.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value(), f);
}

}  // namespace
}  // namespace ash::fpga
