#include "ash/fpga/netlist.h"

#include <gtest/gtest.h>

namespace ash::fpga {
namespace {

Netlist two_gate() {
  Netlist nl;
  nl.name = "two_gate";
  nl.primary_inputs = {"a", "b"};
  nl.nodes = {{"u0", lut_and(), {"a", "b"}, "n0"},
              {"u1", lut_not_a(), {"n0", "n0"}, "out"}};
  nl.primary_outputs = {"out"};
  return nl;
}

TEST(Netlist, ValidNetlistPassesValidation) {
  EXPECT_NO_THROW(two_gate().validate());
  EXPECT_NO_THROW(c17().validate());
  EXPECT_NO_THROW(inverter_chain(5).validate());
  EXPECT_NO_THROW(ripple_carry_adder(4).validate());
}

TEST(Netlist, RejectsUndrivenInputNet) {
  auto nl = two_gate();
  nl.nodes[0].inputs[1] = "ghost";
  EXPECT_THROW(nl.validate(), std::invalid_argument);
}

TEST(Netlist, RejectsMultiplyDrivenNet) {
  auto nl = two_gate();
  nl.nodes.push_back({"u2", lut_or(), {"a", "b"}, "n0"});
  EXPECT_THROW(nl.validate(), std::invalid_argument);
}

TEST(Netlist, RejectsDuplicateInstanceNames) {
  auto nl = two_gate();
  nl.nodes.push_back({"u0", lut_or(), {"a", "b"}, "n9"});
  EXPECT_THROW(nl.validate(), std::invalid_argument);
}

TEST(Netlist, RejectsUndrivenPrimaryOutput) {
  auto nl = two_gate();
  nl.primary_outputs.push_back("nowhere");
  EXPECT_THROW(nl.validate(), std::invalid_argument);
}

TEST(Netlist, RejectsMissingOutputs) {
  auto nl = two_gate();
  nl.primary_outputs.clear();
  EXPECT_THROW(nl.validate(), std::invalid_argument);
}

TEST(Netlist, RejectsCombinationalCycle) {
  Netlist nl;
  nl.name = "loop";
  nl.primary_inputs = {"a"};
  nl.nodes = {{"u0", lut_and(), {"a", "n1"}, "n0"},
              {"u1", lut_or(), {"n0", "a"}, "n1"}};
  nl.primary_outputs = {"n1"};
  EXPECT_THROW(nl.validate(), std::invalid_argument);
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const auto nl = c17();
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), nl.nodes.size());
  // Producer of each input net must appear before its user.
  std::unordered_map<std::string, std::size_t> position;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    position[nl.nodes[order[pos]].output] = pos;
  }
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    for (const auto& in : nl.nodes[order[pos]].inputs) {
      const auto it = position.find(in);
      if (it != position.end()) {
        EXPECT_LT(it->second, pos);
      }
    }
  }
}

TEST(Netlist, GeneratorShapesAreRight) {
  const auto chain = inverter_chain(7);
  EXPECT_EQ(chain.nodes.size(), 7u);
  EXPECT_EQ(chain.primary_outputs.front(), "out");

  const auto adder = ripple_carry_adder(4);
  EXPECT_EQ(adder.nodes.size(), 20u);               // 5 LUTs per bit
  EXPECT_EQ(adder.primary_inputs.size(), 9u);       // cin + 2*4
  EXPECT_EQ(adder.primary_outputs.size(), 5u);      // s0..s3 + cout

  const auto iscas = c17();
  EXPECT_EQ(iscas.nodes.size(), 6u);
  EXPECT_EQ(iscas.primary_outputs.size(), 2u);
}

TEST(Netlist, GeneratorsRejectBadSizes) {
  EXPECT_THROW(inverter_chain(0), std::invalid_argument);
  EXPECT_THROW(ripple_carry_adder(0), std::invalid_argument);
}

TEST(LutLibrary, TruthTablesAreCorrect) {
  // config[2*in1 + in0]
  EXPECT_TRUE(lut_and()[3]);
  EXPECT_FALSE(lut_and()[1]);
  EXPECT_TRUE(lut_or()[1]);
  EXPECT_FALSE(lut_or()[0]);
  EXPECT_TRUE(lut_xor()[1]);
  EXPECT_FALSE(lut_xor()[3]);
  EXPECT_FALSE(lut_nand()[3]);
  EXPECT_TRUE(lut_nand()[0]);
  EXPECT_TRUE(lut_xnor()[0]);
  EXPECT_TRUE(lut_not_a()[0]);
  EXPECT_FALSE(lut_not_a()[1]);
  EXPECT_TRUE(lut_buf_a()[1]);
}

}  // namespace
}  // namespace ash::fpga
