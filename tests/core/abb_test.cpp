#include "ash/core/abb.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ash::core {
namespace {

AbbConfig quick() {
  AbbConfig c;
  c.horizon_s = Seconds{2.0 * 365.25 * 86400.0};
  return c;
}

TEST(Abb, LeakageRatioIsExponentialInCompensation) {
  const AbbConfig c;
  EXPECT_DOUBLE_EQ(leakage_ratio(c, 0.0), 1.0);
  const double one_swing = leakage_ratio(c, c.subthreshold_swing_v.value());
  EXPECT_NEAR(one_swing, std::exp(1.0), 1e-12);
  // Compensating 10 mV of drift costs ~29 % more leakage.
  EXPECT_NEAR(leakage_ratio(c, 10e-3), std::exp(10e-3 / 0.039), 1e-9);
  // Negative input clamps to no change.
  EXPECT_DOUBLE_EQ(leakage_ratio(c, -0.1), 1.0);
}

TEST(Abb, AbbCancelsTimingDriftWhileBiasLasts) {
  const auto study = run_abb_study(quick());
  // Residual drift seen by timing is ~0 for ABB (perfect tracking)...
  EXPECT_LT(std::abs(study.abb.end_residual_vth_v.value()), 1e-6);
  // ...while the underlying device keeps aging like the baseline.
  EXPECT_NEAR(study.abb.end_delta_vth_v.value(),
              study.none.end_delta_vth_v.value(),
              study.none.end_delta_vth_v.value() * 0.01);
}

TEST(Abb, AdaptationIsNoPanacea) {
  // The paper's Sec. 1 claim, quantified: ABB keeps timing but burns
  // leakage; self-healing removes the drift at fresh-like leakage.
  const auto study = run_abb_study(quick());
  EXPECT_GT(study.abb.mean_leakage_ratio, 1.1);
  EXPECT_DOUBLE_EQ(study.self_healing.mean_leakage_ratio, 1.0);
  EXPECT_LT(study.self_healing.end_delta_vth_v.value(),
            0.2 * study.none.end_delta_vth_v.value());
}

TEST(Abb, SelfHealingPaysInAvailability) {
  const auto study = run_abb_study(quick());
  EXPECT_DOUBLE_EQ(study.abb.availability, 1.0);
  EXPECT_NEAR(study.self_healing.availability, 0.8, 1e-9);
}

TEST(Abb, BiasRailExhaustsOnLongHorizons) {
  AbbConfig c = quick();
  c.max_body_bias_v = Volts{0.02};  // tiny range: runs out quickly
  const auto study = run_abb_study(c);
  EXPECT_TRUE(study.abb.bias_exhausted);
  // Once exhausted, residual drift leaks through to the timing path.
  EXPECT_GT(study.abb.end_residual_vth_v.value(), 1e-3);
}

TEST(Abb, AmpleBiasRangeNeverExhausts) {
  AbbConfig c = quick();
  c.max_body_bias_v = Volts{1.0};
  const auto study = run_abb_study(c);
  EXPECT_FALSE(study.abb.bias_exhausted);
}

TEST(Abb, TracesCoverTheHorizon) {
  const auto c = quick();
  const auto study = run_abb_study(c);
  EXPECT_NEAR(study.none.residual_trace.t_end(), c.horizon_s.value(),
              c.cycle_period_s.value() * 1.5);
  EXPECT_EQ(study.none.residual_trace.size(),
            study.abb.residual_trace.size());
}

TEST(Abb, ValidatesConfig) {
  AbbConfig bad = quick();
  bad.body_effect = 0.0;
  EXPECT_THROW(run_abb_study(bad), std::invalid_argument);
  bad = quick();
  bad.alpha = 0.0;
  EXPECT_THROW(run_abb_study(bad), std::invalid_argument);
  bad = quick();
  bad.horizon_s = bad.cycle_period_s;
  EXPECT_THROW(run_abb_study(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ash::core
