#include "ash/core/lifetime.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::core {
namespace {

LifetimeConfig base_config(Policy policy) {
  LifetimeConfig c;
  c.policy = policy;
  c.horizon_s = Seconds{2.0 * 365.25 * 86400.0};  // 2 years keeps tests quick
  return c;
}

TEST(Lifetime, PolicyNamesArePrintable) {
  EXPECT_EQ(to_string(Policy::kNoRecovery), "no-recovery");
  EXPECT_EQ(to_string(Policy::kProactive), "proactive");
  EXPECT_EQ(to_string(Policy::kReactive), "reactive");
  EXPECT_EQ(to_string(Policy::kPassiveSleep), "passive-sleep");
}

TEST(Lifetime, NoRecoveryAgesMonotonically) {
  const auto r = simulate_lifetime(base_config(Policy::kNoRecovery));
  EXPECT_TRUE(r.trace.is_non_decreasing(1e-6));
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_EQ(r.recovery_events, 0);
}

TEST(Lifetime, ProactiveKeepsAverageAgingFarBelowBaseline) {
  // The log-time law means the *peak* (end of each active span) refills
  // quickly; the headline benefit shows in the time-average aging level —
  // the system spends most of its life "refreshed" (Sec. 2.2).
  const auto none = simulate_lifetime(base_config(Policy::kNoRecovery));
  const auto pro = simulate_lifetime(base_config(Policy::kProactive));
  double mean_none = 0.0;
  double mean_pro = 0.0;
  for (const auto& s : none.trace.samples()) mean_none += s.value;
  for (const auto& s : pro.trace.samples()) mean_pro += s.value;
  mean_none /= static_cast<double>(none.trace.size());
  mean_pro /= static_cast<double>(pro.trace.size());
  EXPECT_LT(mean_pro, mean_none * 0.75);
  // And the worst-case point is also (more mildly) reduced.
  EXPECT_LT(pro.worst_delta_vth_v, none.worst_delta_vth_v);
}

TEST(Lifetime, ProactiveBeatsPassiveSleepAtEqualAvailability) {
  // Same schedule, different sleep *conditions* — the paper's core claim.
  const auto passive = simulate_lifetime(base_config(Policy::kPassiveSleep));
  const auto pro = simulate_lifetime(base_config(Policy::kProactive));
  EXPECT_NEAR(pro.availability, passive.availability, 1e-9);
  EXPECT_LT(pro.end_delta_vth_v, passive.end_delta_vth_v);
}

TEST(Lifetime, ProactiveExtendsTimeToMargin) {
  auto cfg_none = base_config(Policy::kNoRecovery);
  auto cfg_pro = base_config(Policy::kProactive);
  // Pick a margin above the proactive per-cycle refill peak but well below
  // the baseline's end-of-horizon aging.
  cfg_none.margin_delta_vth_v = cfg_pro.margin_delta_vth_v = Volts{9e-3};
  const auto none = simulate_lifetime(cfg_none);
  const auto pro = simulate_lifetime(cfg_pro);
  // The baseline trips the margin inside the horizon; the proactive
  // schedule keeps the device below it for the whole (right-censored)
  // horizon — an unbounded lifetime extension at this margin.
  EXPECT_TRUE(none.margin_exceeded);
  EXPECT_FALSE(pro.margin_exceeded);
  EXPECT_GT(pro.time_to_margin_s, 1.5 * none.time_to_margin_s);
}

TEST(Lifetime, ReactiveTriggersOnlyWhenNeeded) {
  auto cfg = base_config(Policy::kReactive);
  cfg.margin_delta_vth_v = Volts{9e-3};
  const auto r = simulate_lifetime(cfg);
  EXPECT_GT(r.recovery_events, 0);
  // Reactive keeps the worst case near the high-water mark.
  EXPECT_LT(r.worst_delta_vth_v, cfg.margin_delta_vth_v * 1.1);
  // It sleeps less than the proactive 1/(1+alpha) budget...
  EXPECT_GT(r.availability, 0.8);
}

TEST(Lifetime, ReactiveOperatesMoreAgedThanProactive) {
  // Sec. 2.2: reactive "operates more time in an aged/stress mode" — its
  // average aging level exceeds proactive's.
  auto cfg_r = base_config(Policy::kReactive);
  auto cfg_p = base_config(Policy::kProactive);
  cfg_r.margin_delta_vth_v = cfg_p.margin_delta_vth_v = Volts{9e-3};
  const auto reactive = simulate_lifetime(cfg_r);
  const auto proactive = simulate_lifetime(cfg_p);
  double mean_r = 0.0;
  double mean_p = 0.0;
  for (const auto& s : reactive.trace.samples()) mean_r += s.value;
  for (const auto& s : proactive.trace.samples()) mean_p += s.value;
  mean_r /= static_cast<double>(reactive.trace.size());
  mean_p /= static_cast<double>(proactive.trace.size());
  EXPECT_GT(mean_r, mean_p);
}

TEST(Lifetime, PermanentDamageSurvivesAllPolicies) {
  const auto pro = simulate_lifetime(base_config(Policy::kProactive));
  EXPECT_GT(pro.end_permanent_v.value(), 0.0);
  EXPECT_GE(pro.end_delta_vth_v, pro.end_permanent_v * 0.99);
}

TEST(Lifetime, PermanentDamageDoesNotBlowUpUnderCycling) {
  // Regression guard for the permanent-envelope bug: cycling must not
  // accumulate more permanent damage than never-recovered operation.
  const auto none = simulate_lifetime(base_config(Policy::kNoRecovery));
  const auto pro = simulate_lifetime(base_config(Policy::kProactive));
  EXPECT_LE(pro.end_permanent_v, none.end_permanent_v * 1.05);
}

TEST(Lifetime, AvailabilityMatchesAlpha) {
  auto cfg = base_config(Policy::kProactive);
  cfg.knobs.active_sleep_ratio = 4.0;
  const auto r = simulate_lifetime(cfg);
  EXPECT_NEAR(r.availability, 0.8, 0.01);
}

TEST(Lifetime, LargerAlphaMeansMoreAging) {
  auto lo = base_config(Policy::kProactive);
  auto hi = base_config(Policy::kProactive);
  lo.knobs.active_sleep_ratio = 2.0;
  hi.knobs.active_sleep_ratio = 16.0;
  const auto r_lo = simulate_lifetime(lo);
  const auto r_hi = simulate_lifetime(hi);
  EXPECT_LT(r_lo.end_delta_vth_v, r_hi.end_delta_vth_v);
  EXPECT_LT(r_lo.availability, r_hi.availability);
}

TEST(Lifetime, TraceSpansHorizon) {
  const auto r = simulate_lifetime(base_config(Policy::kProactive));
  EXPECT_NEAR(r.trace.t_begin(), 0.0, 1.0);
  EXPECT_GT(r.trace.t_end(), 0.95 * base_config(Policy::kProactive).horizon_s.value());
}

TEST(Lifetime, ValidatesConfig) {
  auto bad = base_config(Policy::kProactive);
  bad.cycle_period_s = Seconds{0.0};
  EXPECT_THROW(simulate_lifetime(bad), std::invalid_argument);
  bad = base_config(Policy::kProactive);
  bad.margin_delta_vth_v = Volts{-1.0};
  EXPECT_THROW(simulate_lifetime(bad), std::invalid_argument);
  bad = base_config(Policy::kReactive);
  bad.reactive_low_water = 0.95;
  EXPECT_THROW(simulate_lifetime(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ash::core
