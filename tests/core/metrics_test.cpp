#include "ash/core/metrics.h"

#include <gtest/gtest.h>

namespace ash::core {
namespace {

Series recovery_delay_example() {
  // Fresh delay 150 ns, stressed to 153 ns, recovering to 150.3 ns.
  Series s("recovery");
  s.append(0.0, 153e-9);
  s.append(3600.0, 151e-9);
  s.append(7200.0, 150.5e-9);
  s.append(21600.0, 150.3e-9);
  return s;
}

TEST(Metrics, DelayChangeSubtractsBaseline) {
  Series d("delay");
  d.append(0.0, 150e-9);
  d.append(10.0, 152e-9);
  const auto dc = delay_change_series(d, 150e-9);
  EXPECT_DOUBLE_EQ(dc[0].value, 0.0);
  EXPECT_NEAR(dc[1].value, 2e-9, 1e-18);
}

TEST(Metrics, FrequencyDegradationFraction) {
  Series f("freq");
  f.append(0.0, 3.3e6);
  f.append(10.0, 3.3e6 * 0.978);
  const auto deg = frequency_degradation_series(f, 3.3e6);
  EXPECT_DOUBLE_EQ(deg[0].value, 0.0);
  EXPECT_NEAR(deg[1].value, 0.022, 1e-12);
}

TEST(Metrics, FrequencyDegradationRejectsBadBaseline) {
  Series f("freq");
  f.append(0.0, 1.0);
  EXPECT_THROW(frequency_degradation_series(f, 0.0), std::invalid_argument);
}

TEST(Metrics, RecoveredDelayIsEquation16) {
  const auto rd = recovered_delay_series(recovery_delay_example());
  EXPECT_DOUBLE_EQ(rd[0].value, 0.0);
  EXPECT_NEAR(rd[1].value, 2e-9, 1e-18);
  EXPECT_NEAR(rd.back().value, 2.7e-9, 1e-18);
  EXPECT_TRUE(rd.is_non_decreasing(1e-15));
}

TEST(Metrics, RecoveredDelayRejectsEmpty) {
  EXPECT_THROW(recovered_delay_series(Series{}), std::invalid_argument);
}

TEST(Metrics, RecoveredFractionAgainstFreshBaseline) {
  // Damage = 3 ns, recovered 2.7 ns -> 90 %.
  const double frac =
      recovered_fraction(recovery_delay_example(), /*fresh=*/150e-9);
  EXPECT_NEAR(frac, 0.9, 1e-9);
}

TEST(Metrics, RecoveredFractionClampsNoiseOvershoot) {
  Series s("noisy");
  s.append(0.0, 153e-9);
  s.append(10.0, 149.5e-9);  // counter noise below fresh
  EXPECT_LE(recovered_fraction(s, 150e-9), 1.05);
}

TEST(Metrics, RecoveredFractionRejectsUnstressedSeries) {
  Series s("flat");
  s.append(0.0, 150e-9);
  s.append(10.0, 150e-9);
  EXPECT_THROW(recovered_fraction(s, 150e-9), std::invalid_argument);
}

TEST(Metrics, MarginRelaxedIsRecoveredOverGuardband) {
  // 90 % recovered with a 1.25x guardband -> 72 %: the paper's two headline
  // numbers from one definition.
  const double relaxed =
      design_margin_relaxed(recovery_delay_example(), 150e-9);
  EXPECT_NEAR(relaxed, 0.72, 1e-9);
}

TEST(Metrics, MarginRelaxedHonorsCustomGuardband) {
  MarginSpec spec;
  spec.guardband_factor = 1.0;
  const double relaxed =
      design_margin_relaxed(recovery_delay_example(), 150e-9, spec);
  EXPECT_NEAR(relaxed, 0.9, 1e-9);
  spec.guardband_factor = 0.0;
  EXPECT_THROW(design_margin_relaxed(recovery_delay_example(), 150e-9, spec),
               std::invalid_argument);
}

}  // namespace
}  // namespace ash::core
