#include "ash/core/statistical.h"

#include <gtest/gtest.h>

namespace ash::core {
namespace {

PopulationConfig quick(Policy policy) {
  PopulationConfig c;
  c.chips = 40;
  c.policy = policy;
  c.horizon_s = Seconds{1.0 * 365.25 * 86400.0};
  return c;
}

TEST(Statistical, PercentilesAreOrdered) {
  const auto r = simulate_population(quick(Policy::kNoRecovery));
  EXPECT_LE(r.p50_v, r.p95_v);
  EXPECT_LE(r.p95_v, r.p99_v);
  EXPECT_LE(r.p99_v, r.worst_v);
  EXPECT_GT(r.p50_v.value(), 0.0);
  EXPECT_EQ(r.per_chip_margin_v.size(), 40u);
}

TEST(Statistical, DeterministicUnderSeed) {
  const auto a = simulate_population(quick(Policy::kNoRecovery));
  const auto b = simulate_population(quick(Policy::kNoRecovery));
  EXPECT_DOUBLE_EQ(a.p99_v.value(), b.p99_v.value());
  auto cfg = quick(Policy::kNoRecovery);
  cfg.seed = 999;
  const auto c = simulate_population(cfg);
  EXPECT_NE(a.p99_v.value(), c.p99_v.value());
}

TEST(Statistical, ZeroSigmaCollapsesTheDistribution) {
  auto cfg = quick(Policy::kNoRecovery);
  cfg.amplitude_sigma = 0.0;
  cfg.permanent_sigma = 0.0;
  const auto r = simulate_population(cfg);
  EXPECT_NEAR(r.worst_v.value(), r.per_chip_margin_v.front().value(), 1e-12);
}

TEST(Statistical, HealingCompressesTheTail) {
  // The population-level payoff: proactive recovery cuts the p99 design
  // margin, not just the median.
  const auto none = simulate_population(quick(Policy::kNoRecovery));
  const auto pro = simulate_population(quick(Policy::kProactive));
  EXPECT_LT(pro.p99_v, none.p99_v * 0.8);
  EXPECT_LT(pro.p50_v, none.p50_v);
  // Absolute tail spread also shrinks: less reversible damage to vary.
  EXPECT_LT(pro.p99_v - pro.p50_v, none.p99_v - none.p50_v);
}

TEST(Statistical, WiderAmplitudeSpreadWidensTheTail) {
  auto narrow = quick(Policy::kNoRecovery);
  narrow.amplitude_sigma = 0.02;
  auto wide = quick(Policy::kNoRecovery);
  wide.amplitude_sigma = 0.3;
  const auto rn = simulate_population(narrow);
  const auto rw = simulate_population(wide);
  EXPECT_GT(rw.p99_v / rw.p50_v, rn.p99_v / rn.p50_v);
}

TEST(Statistical, MarginAtArbitraryPercentile) {
  const auto r = simulate_population(quick(Policy::kNoRecovery));
  EXPECT_LE(r.margin_at(10.0), r.margin_at(90.0));
  EXPECT_DOUBLE_EQ(r.margin_at(100.0).value(), r.worst_v.value());
}

TEST(Statistical, ValidatesConfig) {
  auto bad = quick(Policy::kProactive);
  bad.chips = 0;
  EXPECT_THROW(simulate_population(bad), std::invalid_argument);
  bad = quick(Policy::kProactive);
  bad.amplitude_sigma = -0.1;
  EXPECT_THROW(simulate_population(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ash::core
