#include "ash/core/circadian.h"

#include <gtest/gtest.h>

namespace ash::core {
namespace {

CircadianSweepConfig quick_sweep() {
  CircadianSweepConfig c;
  c.horizon_s = Seconds{1.0 * 365.25 * 86400.0};
  c.periods_s = {6.0 * 3600.0, 24.0 * 3600.0, 72.0 * 3600.0};
  c.alphas = {2.0, 4.0, 8.0};
  return c;
}

TEST(Circadian, SweepCoversTheFullGrid) {
  const auto points = explore_circadian(quick_sweep());
  EXPECT_EQ(points.size(), 9u);
}

TEST(Circadian, AvailabilityMatchesAlpha) {
  for (const auto& p : explore_circadian(quick_sweep())) {
    EXPECT_NEAR(p.availability, p.alpha / (1.0 + p.alpha), 0.02);
  }
}

TEST(Circadian, MoreSleepMeansLessAging) {
  const auto points = explore_circadian(quick_sweep());
  // At fixed period, higher alpha (less sleep) => more mean aging.
  for (std::size_t i = 0; i < points.size(); i += 3) {
    EXPECT_LE(points[i].mean_delta_vth_v.value(),
              points[i + 1].mean_delta_vth_v.value() + 1e-9);
    EXPECT_LE(points[i + 1].mean_delta_vth_v.value(),
              points[i + 2].mean_delta_vth_v.value() + 1e-9);
  }
}

TEST(Circadian, ShorterCyclesBoundTheWorstCaseTighter) {
  const auto points = explore_circadian(quick_sweep());
  // At fixed alpha = 4 (index 1 within each period group), the 6 h cycle's
  // worst-case aging is below the 72 h cycle's: less damage accrues per
  // active span before the next heal.
  const auto& short_cycle = points[1];   // period 6 h, alpha 4
  const auto& long_cycle = points[7];    // period 72 h, alpha 4
  EXPECT_LT(short_cycle.worst_delta_vth_v, long_cycle.worst_delta_vth_v);
}

TEST(Circadian, PermanentWearIsScheduleInsensitive) {
  // Permanent damage tracks cumulative active exposure, which is equal for
  // equal alpha — and close across alphas at these horizons.
  const auto points = explore_circadian(quick_sweep());
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& p : points) {
    lo = std::min(lo, p.end_permanent_v.value());
    hi = std::max(hi, p.end_permanent_v.value());
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi / lo, 1.5);
}

TEST(Circadian, ParetoFrontierIsMonotone) {
  const auto frontier = pareto_schedules(explore_circadian(quick_sweep()));
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].availability, frontier[i - 1].availability);
    // Along the frontier, buying availability costs worst-case margin.
    EXPECT_GE(frontier[i].worst_delta_vth_v.value(),
              frontier[i - 1].worst_delta_vth_v.value() - 1e-12);
  }
}

TEST(Circadian, ParetoPointsAreNotDominated) {
  const auto all = explore_circadian(quick_sweep());
  const auto frontier = pareto_schedules(all);
  for (const auto& f : frontier) {
    for (const auto& p : all) {
      const bool dominates =
          (p.availability > f.availability &&
           p.worst_delta_vth_v <= f.worst_delta_vth_v) ||
          (p.availability >= f.availability &&
           p.worst_delta_vth_v < f.worst_delta_vth_v);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Circadian, RejectsEmptyGrids) {
  CircadianSweepConfig bad = quick_sweep();
  bad.alphas.clear();
  EXPECT_THROW(explore_circadian(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ash::core
