#include "ash/core/gnomo.h"

#include <gtest/gtest.h>

namespace ash::core {
namespace {

TEST(Gnomo, SpeedupExceedsOneForBoost) {
  GnomoConfig c;
  EXPECT_GT(gnomo_speedup(c), 1.0);
  EXPECT_LT(gnomo_speedup(c), 1.3);
}

TEST(Gnomo, StudyReproducesReference12Tradeoff) {
  // GNOMO reduces aging relative to always-on nominal (less stress time
  // dominates the higher stress voltage) but pays a power overhead.
  const auto study = run_gnomo_study(GnomoConfig{});
  EXPECT_LT(study.gnomo.end_delta_vth_v, study.nominal.end_delta_vth_v);
  EXPECT_GT(study.gnomo.energy_ratio, 1.0);
  EXPECT_LT(study.gnomo.stress_duty, 1.0);
}

TEST(Gnomo, SelfHealingBeatsGnomoOnAging) {
  // The paper's positioning: active recovery out-heals during-operation
  // mitigation, at nominal work energy.
  const auto study = run_gnomo_study(GnomoConfig{});
  EXPECT_LT(study.self_healing.end_delta_vth_v,
            study.gnomo.end_delta_vth_v);
  EXPECT_DOUBLE_EQ(study.self_healing.energy_ratio, 1.0);
}

TEST(Gnomo, EnergyRatioIsVoltageSquared) {
  GnomoConfig c;
  c.boost_v = Volts{1.32};
  const auto study = run_gnomo_study(c);
  EXPECT_NEAR(study.gnomo.energy_ratio, (1.32 / 1.2) * (1.32 / 1.2), 1e-12);
}

TEST(Gnomo, HigherBoostAgesGnomoMore) {
  GnomoConfig mild;
  mild.boost_v = Volts{1.26};
  GnomoConfig aggressive;
  aggressive.boost_v = Volts{1.44};
  const auto a = run_gnomo_study(mild);
  const auto b = run_gnomo_study(aggressive);
  // More overdrive: more field acceleration and amplitude, less time — the
  // voltage exponential wins at these settings.
  EXPECT_GT(b.gnomo.end_delta_vth_v, a.gnomo.end_delta_vth_v);
}

TEST(Gnomo, ValidatesConfig) {
  GnomoConfig bad;
  bad.boost_v = Volts{1.1};
  EXPECT_THROW(run_gnomo_study(bad), std::invalid_argument);
  bad = GnomoConfig{};
  bad.utilization = 0.0;
  EXPECT_THROW(run_gnomo_study(bad), std::invalid_argument);
  bad = GnomoConfig{};
  bad.horizon_s = bad.period_s;
  EXPECT_THROW(run_gnomo_study(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ash::core
