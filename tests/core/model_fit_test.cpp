#include "ash/core/model_fit.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ash/bti/trap_ensemble.h"
#include "ash/util/constants.h"
#include "ash/util/random.h"

namespace ash::core {
namespace {

/// Synthetic stress series from a known law (optionally noisy).
Series synthetic_stress(double amplitude_s, double tau_s, double noise_s,
                        std::uint64_t seed = 5) {
  Rng rng(seed);
  Series s("synthetic");
  for (double t = 0.0; t <= hours(24.0); t += hours(0.5)) {
    const double v = amplitude_s * std::log1p(t / tau_s) +
                     (noise_s > 0.0 ? rng.normal(0.0, noise_s) : 0.0);
    s.append(t, v);
  }
  return s;
}

TEST(ModelFitter, RecoversKnownStressLawExactly) {
  const ModelFitter fitter;
  const auto fit = fitter.fit_stress(synthetic_stress(2e-9, 1e-3, 0.0));
  EXPECT_NEAR(fit.amplitude_s.value(), 2e-9, 2e-11);
  EXPECT_GT(fit.r_squared, 0.9999);
  EXPECT_LT(fit.rmse_s.value(), 1e-12);
}

TEST(ModelFitter, ToleratesMeasurementNoise) {
  const ModelFitter fitter;
  // Noise comparable to the counter quantization (~0.05 ns).
  const auto fit = fitter.fit_stress(synthetic_stress(2e-9, 1e-3, 5e-11));
  EXPECT_NEAR(fit.amplitude_s.value(), 2e-9, 1.5e-10);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(ModelFitter, FittedLawInterpolatesAndExtrapolates) {
  const ModelFitter fitter;
  const auto fit = fitter.fit_stress(synthetic_stress(2e-9, 1e-3, 0.0));
  EXPECT_NEAR(fit.delta_td(hours(12.0)), 2e-9 * std::log1p(hours(12.0) / 1e-3),
              1e-11);
}

TEST(ModelFitter, StressFitRejectsTinySeries) {
  Series s("tiny");
  s.append(0.0, 0.0);
  s.append(1.0, 1e-9);
  EXPECT_THROW(ModelFitter().fit_stress(s), std::invalid_argument);
}

TEST(ModelFitter, FitsEnsembleStressWithGoodR2) {
  // The Table 3 scenario: extract the law from 'measured' (simulated)
  // device data.
  bti::TrapEnsemble e(bti::default_td_parameters(), 3);
  const auto cond = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  Series s("ensemble");
  double t = 0.0;
  s.append(0.0, 0.0);
  for (int i = 0; i < 48; ++i) {
    e.evolve(cond, Seconds{hours(0.5)});
    t += hours(0.5);
    s.append(t, e.delta_vth());
  }
  const auto fit = ModelFitter().fit_stress(s);
  EXPECT_GT(fit.r_squared, 0.98);
  EXPECT_GT(fit.amplitude_s.value(), 0.0);
}

Series synthetic_recovery(double d0, double af, double perm, double tau_r,
                          double denom) {
  Series s("rec");
  for (double t = 0.0; t <= hours(6.0); t += hours(0.25)) {
    const double recovered = std::min(1.0, std::log1p(af * t / tau_r) / denom);
    s.append(t, d0 * (perm + (1.0 - perm) * (1.0 - recovered)));
  }
  return s;
}

TEST(ModelFitter, RecoversKnownRecoveryLaw) {
  // af = 5 keeps the 6 h synthetic series comfortably below saturation
  // (saturated series cannot identify the acceleration — anything above
  // the cap fits).
  const ModelFitter fitter;
  const auto& priors = fitter.priors();
  const double t1 = hours(24.0);
  const double denom = std::log1p(t1 / priors.tau_stress_s.value());
  const auto series =
      synthetic_recovery(3e-9, 5.0, 0.06, priors.tau_recovery_s.value(), denom);
  const auto fit = fitter.fit_recovery(series, t1);
  EXPECT_NEAR(std::log10(fit.acceleration), std::log10(5.0), 0.15);
  EXPECT_NEAR(fit.permanent_ratio, 0.06, 0.03);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(ModelFitter, RecoveryFitOrdersConditionsByAcceleration) {
  const ModelFitter fitter;
  const auto& priors = fitter.priors();
  const double t1 = hours(24.0);
  const double denom = std::log1p(t1 / priors.tau_stress_s.value());
  const auto fast = fitter.fit_recovery(
      synthetic_recovery(3e-9, 30.0, 0.06, priors.tau_recovery_s.value(), denom), t1);
  const auto slow = fitter.fit_recovery(
      synthetic_recovery(3e-9, 0.3, 0.06, priors.tau_recovery_s.value(), denom), t1);
  EXPECT_GT(fast.acceleration, slow.acceleration * 10.0);
}

TEST(ModelFitter, RecoveryFitValidatesInput) {
  const ModelFitter fitter;
  Series bad("bad");
  bad.append(0.0, 0.0);  // starts at zero damage
  bad.append(1.0, 0.0);
  bad.append(2.0, 0.0);
  bad.append(3.0, 0.0);
  EXPECT_THROW(fitter.fit_recovery(bad, hours(24.0)), std::invalid_argument);
  Series ok("ok");
  ok.append(0.0, 1e-9);
  ok.append(1.0, 0.9e-9);
  ok.append(2.0, 0.8e-9);
  ok.append(3.0, 0.75e-9);
  EXPECT_THROW(fitter.fit_recovery(ok, 0.0), std::invalid_argument);
}

TEST(ModelFitter, RemainingFractionWithinBounds) {
  RecoveryFit fit;
  fit.acceleration = 1e4;
  fit.permanent_ratio = 0.06;
  fit.tau_recovery_s = Seconds{2.0};
  fit.denom_ln = 18.0;
  EXPECT_NEAR(fit.remaining_fraction(0.0), 1.0, 1e-12);
  EXPECT_GE(fit.remaining_fraction(1e12), 0.06 - 1e-12);
  EXPECT_LE(fit.remaining_fraction(1e12), 0.06 + 1e-12);
}

}  // namespace
}  // namespace ash::core
