#include "ash/core/planner.h"

#include <gtest/gtest.h>

#include "ash/util/constants.h"

namespace ash::core {
namespace {

TEST(Planner, FindsAFeasiblePlanForThePaperScenario) {
  // Heal 24 h of reference stress to >= 90 % within 6 h: the paper shows
  // several knob settings can (Table 4), so the planner must find one.
  PlannerConfig cfg;
  const auto plan = plan_recovery(cfg);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.achieved_fraction, 0.9 - 1e-6);
  EXPECT_LE(plan.sleep_s, cfg.max_sleep_s + Seconds{1.0});
  EXPECT_GE(plan.voltage_v, cfg.min_voltage_v);
  EXPECT_LE(plan.temp_c, cfg.max_temp_c);
}

TEST(Planner, InfeasibleWhenKnobsAreDisabled) {
  // Room temperature, 0 V, short budget: passive recovery cannot reach 90 %.
  PlannerConfig cfg;
  cfg.min_voltage_v = Volts{0.0};
  cfg.max_temp_c = Celsius{20.0};
  cfg.max_sleep_s = Seconds{hours(6.0)};
  const auto plan = plan_recovery(cfg);
  EXPECT_FALSE(plan.feasible);
}

TEST(Planner, CheaperTargetNeedsLessSleep) {
  PlannerConfig easy;
  easy.target_recovered_fraction = 0.5;
  PlannerConfig hard;
  hard.target_recovered_fraction = 0.93;
  const auto p_easy = plan_recovery(easy);
  const auto p_hard = plan_recovery(hard);
  ASSERT_TRUE(p_easy.feasible);
  ASSERT_TRUE(p_hard.feasible);
  EXPECT_LT(p_easy.cost, p_hard.cost);
}

TEST(Planner, ExpensiveHeatShiftsPlanTowardNegativeBias) {
  PlannerConfig heat_pricey;
  heat_pricey.heat_cost_per_c = 10.0;
  heat_pricey.bias_cost_per_v = 0.1;
  const auto plan = plan_recovery(heat_pricey);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.voltage_v.value(), -0.1);  // leans on the negative rail

  PlannerConfig bias_pricey;
  bias_pricey.heat_cost_per_c = 0.001;
  bias_pricey.bias_cost_per_v = 1000.0;
  const auto plan2 = plan_recovery(bias_pricey);
  ASSERT_TRUE(plan2.feasible);
  EXPECT_GT(plan2.temp_c.value(), 80.0);  // leans on temperature
}

TEST(Planner, PlanCostIsMonotoneInEachKnob) {
  PlannerConfig cfg;
  EXPECT_LT(plan_cost(cfg, Volts{0.0}, Celsius{20.0}, Seconds{100.0}),
            plan_cost(cfg, Volts{0.0}, Celsius{110.0}, Seconds{100.0}));
  EXPECT_LT(plan_cost(cfg, Volts{0.0}, Celsius{20.0}, Seconds{100.0}),
            plan_cost(cfg, Volts{-0.3}, Celsius{20.0}, Seconds{100.0}));
  EXPECT_LT(plan_cost(cfg, Volts{0.0}, Celsius{20.0}, Seconds{100.0}),
            plan_cost(cfg, Volts{0.0}, Celsius{20.0}, Seconds{200.0}));
}

TEST(Planner, MinimumSleepFloorIsRespected) {
  PlannerConfig cfg;
  cfg.min_sleep_s = Seconds{1800.0};
  const auto plan = plan_recovery(cfg);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.sleep_s.value(), 1800.0 - 1.0);
  PlannerConfig bad;
  bad.min_sleep_s = Seconds{-1.0};
  EXPECT_THROW(plan_recovery(bad), std::invalid_argument);
  bad = PlannerConfig{};
  bad.min_sleep_s = bad.max_sleep_s * 2.0;
  EXPECT_THROW(plan_recovery(bad), std::invalid_argument);
}

TEST(Planner, MinimalSleepMeetsTargetTightly) {
  PlannerConfig cfg;
  cfg.min_sleep_s = Seconds{0.0};  // disable the floor to expose the bisection
  const auto plan = plan_recovery(cfg);
  ASSERT_TRUE(plan.feasible);
  // Bisection converges to the minimum: sleeping 10 % less must miss.
  const bti::ClosedFormModel model(cfg.model);
  const auto cond = bti::recovery(plan.voltage_v, plan.temp_c);
  const double remaining_short = model.remaining_fraction(
      cfg.t1_equiv_s, plan.sleep_s * 0.9, cond);
  EXPECT_GT(remaining_short, 1.0 - cfg.target_recovered_fraction - 1e-6);
}

TEST(Planner, ValidatesConfig) {
  PlannerConfig bad;
  bad.target_recovered_fraction = 1.5;
  EXPECT_THROW(plan_recovery(bad), std::invalid_argument);
  bad = PlannerConfig{};
  bad.min_voltage_v = Volts{0.5};
  bad.max_voltage_v = Volts{0.0};
  EXPECT_THROW(plan_recovery(bad), std::invalid_argument);
  bad = PlannerConfig{};
  bad.t1_equiv_s = Seconds{0.0};
  EXPECT_THROW(plan_recovery(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ash::core
