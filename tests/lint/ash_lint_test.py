#!/usr/bin/env python3
"""Self-tests for tools/ash_lint.py.

For every rule there are three fixture cases under tests/lint/fixtures/:
a positive file that must produce exactly that rule's finding, a
suppressed file whose violation carries a full `ash-lint:
allow(rule): <reason>` escape, a bare file whose escape omits the
mandatory reason (and therefore still reports), and a clean file that
must produce nothing.  The fixtures mirror the repo layout where a rule
is path-scoped (float-physics, raw-double-api).

Run directly or via ctest (`ctest -L lint`).
"""

import json
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "ash_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# rule -> (fixture dir, relative path of each case inside the fixture dir)
CASES = {
    "wall-clock": ("wall_clock", ""),
    "rng": ("rng", ""),
    "unordered-iter": ("unordered_iter", ""),
    "float-physics": ("float_physics", "src/bti"),
    "raw-double-api": ("raw_double_api", "src/bti/include"),
    "unchecked-io": ("unchecked_io", ""),
    "eintr": ("eintr", "src/fleet"),
    "metric-name": ("metric_name", ""),
}

HEADER_RULES = {"raw-double-api"}


def run_lint(root, paths, rule):
    cmd = [sys.executable, LINT, "--root", root, "--json", "--rule", rule]
    cmd += paths
    proc = subprocess.run(cmd, capture_output=True, text=True)
    try:
        payload = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        raise AssertionError(
            f"ash_lint did not emit JSON: {err}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    return proc.returncode, payload


class AshLintSelfTest(unittest.TestCase):
    def case_path(self, rule, case):
        subdir, scope = CASES[rule]
        ext = ".h" if rule in HEADER_RULES else ".cpp"
        rel = os.path.join(scope, case + ext) if scope else case + ext
        self.assertTrue(
            os.path.isfile(os.path.join(FIXTURES, subdir, rel)),
            f"missing fixture {subdir}/{rel}")
        return os.path.join(FIXTURES, subdir), rel

    def check(self, rule, case, want_findings, want_suppressed):
        root, rel = self.case_path(rule, case)
        code, payload = run_lint(root, [rel], rule)
        findings = payload["findings"]
        self.assertEqual(
            len(findings) > 0, want_findings,
            f"{rule}/{case}: findings = {findings}")
        self.assertEqual(
            payload["suppressed"] > 0, want_suppressed,
            f"{rule}/{case}: suppressed = {payload['suppressed']}")
        self.assertEqual(code, 1 if want_findings else 0,
                         f"{rule}/{case}: exit code {code}")
        for f in findings:
            self.assertEqual(f["rule"], rule)
            self.assertGreater(f["line"], 0)
            self.assertTrue(f["message"])


def _add_cases():
    for rule in CASES:
        safe = rule.replace("-", "_")

        def positive(self, rule=rule):
            self.check(rule, "positive", want_findings=True,
                       want_suppressed=False)

        def suppressed(self, rule=rule):
            self.check(rule, "suppressed", want_findings=False,
                       want_suppressed=True)

        def clean(self, rule=rule):
            self.check(rule, "clean", want_findings=False,
                       want_suppressed=False)

        def bare(self, rule=rule):
            # An allow() escape without a `: <reason>` tail does not
            # suppress; the finding it reports names the missing reason.
            root, rel = self.case_path(rule, "bare")
            code, payload = run_lint(root, [rel], rule)
            self.assertEqual(code, 1, payload)
            self.assertGreater(len(payload["findings"]), 0)
            self.assertEqual(payload["suppressed"], 0, payload)
            self.assertTrue(
                any("carries no reason" in f["message"]
                    for f in payload["findings"]), payload)

        setattr(AshLintSelfTest, f"test_{safe}_positive", positive)
        setattr(AshLintSelfTest, f"test_{safe}_suppressed", suppressed)
        setattr(AshLintSelfTest, f"test_{safe}_clean", clean)
        setattr(AshLintSelfTest, f"test_{safe}_bare_allow", bare)


_add_cases()


class AshLintMetricHotPathTest(unittest.TestCase):
    """The metric-name rule's second half: any registration in an
    instrumented hot-path kernel file is a finding, even a well-named one."""

    def test_hot_kernel_registration(self):
        root = os.path.join(FIXTURES, "metric_name")
        rel = os.path.join("src", "mc", "system.cpp")
        self.assertTrue(os.path.isfile(os.path.join(root, rel)))
        code, payload = run_lint(root, [rel], "metric-name")
        self.assertEqual(code, 1)
        self.assertEqual(len(payload["findings"]), 1)
        self.assertIn("hot-path", payload["findings"][0]["message"])


class AshLintFastExpScopeTest(unittest.TestCase):
    """float-physics' exponential half: util/fast_exp.h is the only
    allowed site for a non-std::exp exponential, and the scope reaches
    src/util (where a second approximation would most plausibly appear),
    not just the physics modules."""

    def test_homebrew_exponential_in_util_is_flagged(self):
        root = os.path.join(FIXTURES, "float_physics")
        rel = os.path.join("src", "util", "homebrew.cpp")
        self.assertTrue(os.path.isfile(os.path.join(root, rel)))
        code, payload = run_lint(root, [rel], "float-physics")
        self.assertEqual(code, 1)
        self.assertEqual(len(payload["findings"]), 1)
        self.assertIn("util/fast_exp.h is the only allowed site",
                      payload["findings"][0]["message"])

    def test_real_fast_exp_header_is_exempt(self):
        rel = os.path.join("src", "util", "include", "ash", "util",
                           "fast_exp.h")
        self.assertTrue(os.path.isfile(os.path.join(REPO, rel)))
        code, payload = run_lint(REPO, [rel], "float-physics")
        self.assertEqual(code, 0, payload)
        self.assertEqual(payload["findings"], [])
        # ... and not because of suppression comments.
        self.assertEqual(payload["suppressed"], 0)


class AshLintRepoTest(unittest.TestCase):
    """The real tree must be finding-free — CI enforces the same."""

    def test_repo_is_clean(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--root", REPO, "--json"],
            capture_output=True, text=True)
        payload = json.loads(proc.stdout)
        self.assertEqual(
            payload["findings"], [],
            "lint findings on the tree:\n" +
            "\n".join(f"{f['path']}:{f['line']}: [{f['rule']}]"
                      for f in payload["findings"]))
        self.assertEqual(proc.returncode, 0)
        self.assertGreater(payload["files_scanned"], 100)

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(
            proc.stdout.split(),
            ["wall-clock", "rng", "unordered-iter", "float-physics",
             "raw-double-api", "unchecked-io", "eintr", "metric-name"])


class AshLintExitCodeTest(unittest.TestCase):
    """Exit status contract: 0 clean, 1 findings, 2 usage/internal
    errors — so CI can tell "the tree is dirty" from "the tool is
    broken"."""

    def test_findings_exit_one(self):
        root = os.path.join(FIXTURES, "rng")
        proc = subprocess.run(
            [sys.executable, LINT, "--root", root, "positive.cpp"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_clean_exit_zero(self):
        root = os.path.join(FIXTURES, "rng")
        proc = subprocess.run(
            [sys.executable, LINT, "--root", root, "clean.cpp"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_bad_root_exit_two(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--root", "/nonexistent/xyzzy"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("not a directory", proc.stderr)

    def test_no_files_matched_exit_two(self):
        root = os.path.join(FIXTURES, "rng")
        proc = subprocess.run(
            [sys.executable, LINT, "--root", root, "no_such_subdir"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("no source files matched", proc.stderr)

    def test_unknown_rule_exit_two(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--rule", "bogus"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
