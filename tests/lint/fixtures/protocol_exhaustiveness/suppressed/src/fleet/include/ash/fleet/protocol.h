// Fixture: the same gaps as the positive case, but each incomplete
// enumerator carries a reasoned ash-check escape on its line.
#pragma once

#include <string>
#include <string_view>

namespace ash::fleet {

enum class MessageType : unsigned {
  kEchoRequest = 1,
  kEchoResponse = 2,  // ash-check: allow(protocol-exhaustiveness): fixture-sanctioned gap
};

enum class ProtocolViolation : unsigned {
  kNone = 0,
  kBadMagic,
  kHostileLength,  // ash-check: allow(protocol-exhaustiveness): fixture-sanctioned gap
  kCount,
};

struct EchoRequest {
  std::string body;
  std::string encode() const;
  static EchoRequest parse(std::string_view payload);
};

const char* to_string(MessageType type);

}  // namespace ash::fleet
