// Fixture tests covering only the request half of the protocol:
// kEchoRequest and kBadMagic are referenced; the response verb and the
// hostile-length violation are deliberately never mentioned.
#include "ash/fleet/protocol.h"

namespace ash::fleet {

void round_trip_request() {
  const EchoRequest r = EchoRequest::parse(EchoRequest{"x"}.encode());
  (void)r;
}

void hostile_magic() {
  (void)classify_magic("Z");
}

}  // namespace ash::fleet
