// Fixture: a complete two-verb protocol — every MessageType has a codec
// struct, a to_string classification and a hostile-input test; every
// ProtocolViolation is classified and exercised.
#pragma once

#include <string>
#include <string_view>

namespace ash::fleet {

enum class MessageType : unsigned {
  kEchoRequest = 1,
  kEchoResponse = 2,
};

enum class ProtocolViolation : unsigned {
  kNone = 0,
  kBadMagic,
  kCount,
};

struct EchoRequest {
  std::string body;
  std::string encode() const;
  static EchoRequest parse(std::string_view payload);
};

struct EchoResponse {
  std::string body;
  std::string encode() const;
  static EchoResponse parse(std::string_view payload);
};

const char* to_string(MessageType type);

}  // namespace ash::fleet
