// Fixture hostile-input tests: reference every wire verb and violation.
#include "ash/fleet/protocol.h"

namespace ash::fleet {

void round_trip_request() {
  // kEchoRequest round-trips and rejects nothing (free-form body).
  const EchoRequest r = EchoRequest::parse(EchoRequest{"x"}.encode());
  (void)r;
}

void round_trip_response() {
  // kEchoResponse round-trips likewise.
  const EchoResponse r = EchoResponse::parse(EchoResponse{"y"}.encode());
  (void)r;
}

void hostile_magic() {
  // A wrong first byte classifies as kBadMagic.
  (void)classify_magic("Z");
}

}  // namespace ash::fleet
