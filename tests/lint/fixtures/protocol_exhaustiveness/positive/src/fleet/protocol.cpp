#include "ash/fleet/protocol.h"

namespace ash::fleet {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kEchoRequest: return "echo-request";
    default: return "?";
  }
}

ProtocolViolation classify_magic(std::string_view bytes) {
  if (bytes.empty() || bytes[0] != 'A') {
    return ProtocolViolation::kBadMagic;
  }
  return ProtocolViolation::kNone;
}

std::string EchoRequest::encode() const { return body; }

EchoRequest EchoRequest::parse(std::string_view payload) {
  return EchoRequest{std::string(payload)};
}

}  // namespace ash::fleet
