// Fixture: kEchoResponse ships with no codec struct, no to_string
// classification and no test; kHostileLength is declared but never
// classified or exercised.  Both are findings.
#pragma once

#include <string>
#include <string_view>

namespace ash::fleet {

enum class MessageType : unsigned {
  kEchoRequest = 1,
  kEchoResponse = 2,
};

enum class ProtocolViolation : unsigned {
  kNone = 0,
  kBadMagic,
  kHostileLength,
  kCount,
};

struct EchoRequest {
  std::string body;
  std::string encode() const;
  static EchoRequest parse(std::string_view payload);
};

const char* to_string(MessageType type);

}  // namespace ash::fleet
