#pragma once
double free_fn(double temp_k);
class Model {
 public:
  void evolve(double dt_s);
 private:
  double state_v_ = 0.0;
};
