#pragma once
namespace units {
struct Seconds { double v; };
struct Kelvin { double v; };
}  // namespace units
double free_fn(units::Kelvin temp);
class Model {
 public:
  void evolve(units::Seconds dt);
  double delay_s() const { return delay_s_; }  // returns are out of scope
 private:
  void advance(double dt_s);  // private helpers may stay raw
  double delay_s_ = 0.0;      // data members are out of scope
};
