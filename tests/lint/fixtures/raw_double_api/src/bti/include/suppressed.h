#pragma once
// Legacy entry point kept raw for ABI stability.
double free_fn(double temp_k);  // ash-lint: allow(raw-double-api): fixture-sanctioned violation
