// Fixture: suffix-named raw doubles as public members and return types.
#pragma once

#include <vector>

namespace fix {

struct Readout {
  double delay_s = 0.0;
  std::vector<double> periods_s;
};

double settle_time_s(int steps);

}  // namespace fix
