// Fixture: the same raw-double API surface, each line carrying a
// reasoned ash-check escape.
#pragma once

#include <vector>

namespace fix {

struct Readout {
  double delay_s = 0.0;  // ash-check: allow(unit-flow): fixture-sanctioned violation
  std::vector<double> periods_s;  // ash-check: allow(unit-flow): fixture-sanctioned violation
};

double settle_time_s(int steps);  // ash-check: allow(unit-flow): fixture-sanctioned violation

}  // namespace fix
