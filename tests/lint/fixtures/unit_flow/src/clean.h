// Fixture: strong-unit API surface plus the two sanctioned exemptions —
// rate-named doubles (a rate has no single base unit) and non-public
// members (implementation detail, not API).
#pragma once

#include <vector>

namespace fix {

struct Readout {
  ash::Seconds delay_s{0.0};
  std::vector<ash::Seconds> periods_s;
  double ramp_c_per_s = 0.05;
};

class Integrator {
 public:
  ash::Volts level() const;

 private:
  double accum_v = 0.0;
};

ash::Seconds settle_time_s(int steps);

}  // namespace fix
