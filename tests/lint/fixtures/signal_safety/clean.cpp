// Fixture: an AS-safe handler — write(2) into a stack buffer, then _exit.
#include <csignal>
#include <unistd.h>

namespace fix {

void handle_fatal(int sig) {
  char msg[2];
  msg[0] = '!';
  msg[1] = static_cast<char>('0' + sig % 10);
  (void)write(2, msg, 2);
  _exit(70);
}

void install() { signal(SIGABRT, handle_fatal); }

}  // namespace fix
