// Fixture: the same stdio violation, acknowledged with a reasoned
// ash-check escape — suppressed, not a finding.
#include <csignal>
#include <cstdio>
#include <unistd.h>

namespace fix {

void handle_fatal(int sig) {
  char byte = static_cast<char>(sig);
  (void)write(2, &byte, 1);
  std::printf("down\n");  // ash-check: allow(signal-safety): fixture-sanctioned violation
}

void install() { signal(SIGTERM, handle_fatal); }

}  // namespace fix
