// Fixture: a fatal-signal handler whose path allocates and hits stdio —
// both findings for the signal-safety checker.
#include <csignal>
#include <cstdio>
#include <unistd.h>

namespace fix {

void dump_state() {
  std::printf("state\n");  // stdio on the handler path
}

void handle_fatal(int sig) {
  dump_state();
  char* tail = new char[64];  // operator new on the handler path
  tail[0] = static_cast<char>(sig);
  (void)write(2, tail, 1);
}

void install() { signal(SIGSEGV, handle_fatal); }

}  // namespace fix
