// Fixture: a bare blocking syscall in the supervision layer.  A SIGCHLD
// from a dying worker (or SIGTERM during drain) can interrupt it with
// EINTR, and this code would treat the spurious failure as a real one —
// a missed heartbeat, a false worker death.
#include <sys/wait.h>
#include <unistd.h>

int drain_heartbeat(int fd) {
  char byte = 0;
  return static_cast<int>(::read(fd, &byte, 1));
}

int reap(int pid) {
  int status = 0;
  return static_cast<int>(::waitpid(pid, &status, 0));
}
