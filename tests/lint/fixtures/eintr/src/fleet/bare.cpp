// Fixture: a deliberate one-shot write whose EINTR loss is acceptable
// (best-effort diagnostics on the way down) carries the allow() escape.
#include <unistd.h>

void last_gasp(int fd) {
  const char byte = '!';
  (void)::write(fd, &byte, 1);  // ash-lint: allow(eintr)
}
