// Fixture: every retryable syscall goes through util::retry_eintr, and
// ::close stays bare — retrying close can close a descriptor the kernel
// already reused for another connection.
#include <unistd.h>

namespace util {
template <class Call>
auto retry_eintr(Call&& call) -> decltype(call()) {  // fixture stand-in
  return call();
}
}  // namespace util

long drain_heartbeat(int fd) {
  char byte = 0;
  return util::retry_eintr([&] { return ::read(fd, &byte, 1); });
}

long send_heartbeat(int fd) {
  const char byte = '.';
  const auto ret = util::retry_eintr(
      [&] { return ::write(fd, &byte, 1); });
  ::close(fd);
  return ret;
}
