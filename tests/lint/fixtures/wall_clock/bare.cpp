#include <chrono>
double now_s() {
  const auto t = std::chrono::steady_clock::now()  // ash-lint: allow(wall-clock)
                     .time_since_epoch();
  return std::chrono::duration<double>(t).count();
}
