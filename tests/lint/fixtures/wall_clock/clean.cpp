// Simulated time only: the campaign clock is plain arithmetic.
double advance(double t_campaign_s, double dt_s) { return t_campaign_s + dt_s; }
