#include <random>
unsigned draw() {
  std::random_device rd;  // ash-lint: allow(rng): fixture-sanctioned violation
  return rd();
}
