// All randomness flows through the lab's seeded generator.
struct Rng { unsigned long s; unsigned long next() { return s += 0x9E3779B97F4A7C15ull; } };
unsigned long draw(Rng& rng) { return rng.next(); }
