#include <cstdlib>
#include <random>
int draw() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}
