// Fixture: a pure shard body — writes only the state it owns by index.
#include <vector>

namespace fix {

void sweep(util::ThreadPool& pool, std::vector<double>& out) {
  pool.parallel_for(0, static_cast<int>(out.size()), [&](int i) {
    out[i] = 2.0 * static_cast<double>(i) + 1.0;
  });
}

}  // namespace fix
