// Fixture: one sharded-loop violation carrying a reasoned escape.
#include <cstdlib>
#include <vector>

namespace fix {

void sweep(util::ThreadPool& pool, std::vector<double>& out) {
  pool.parallel_for(0, static_cast<int>(out.size()), [&](int i) {
    out[i] = static_cast<double>(std::rand());  // ash-check: allow(shard-purity): fixture-sanctioned violation
  });
}

}  // namespace fix
