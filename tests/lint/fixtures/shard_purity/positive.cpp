// Fixture: a sharded loop body touching every kind of forbidden state —
// a file-scope mutable, a mutable static local, and a non-util RNG.
#include <cstdlib>
#include <vector>

namespace fix {

int g_hits = 0;

void sweep(util::ThreadPool& pool, std::vector<double>& out) {
  pool.parallel_for(0, static_cast<int>(out.size()), [&](int i) {
    static int calls = 0;
    ++calls;
    g_hits += i;
    out[i] = static_cast<double>(std::rand());
  });
}

}  // namespace fix
