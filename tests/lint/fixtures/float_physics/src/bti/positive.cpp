float delta_vth_v(float t_s) { return 0.001f * t_s; }
double decay(double x) { return expf(x); }
double arrhenius(double x) { return std::exp2f(x); }
double exp_approx(double x) { return 1.0 + x; }
