float delta_vth_v(float t_s) { return 0.001f * t_s; }
