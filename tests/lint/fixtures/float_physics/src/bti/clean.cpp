double delta_vth_v(double t_s) { return 0.001 * t_s; }
double decay(double x) { return std::exp(x); }
double fast_decay(double x) { return util::fast_exp(x); }
