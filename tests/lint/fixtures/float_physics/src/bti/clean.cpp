double delta_vth_v(double t_s) { return 0.001 * t_s; }
