double pack(double x) {
  const float narrowed = static_cast<float>(x);  // ash-lint: allow(float-physics)
  return static_cast<double>(narrowed);
}
double legacy_decay(double x) {
  return expf(x);  // ash-lint: allow(float-physics)
}
double fast_exp_shim(double x) {  // ash-lint: allow(float-physics)
  return 1.0 + x;
}
