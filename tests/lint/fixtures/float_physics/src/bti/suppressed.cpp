double pack(double x) {
  const float narrowed = static_cast<float>(x);  // ash-lint: allow(float-physics)
  return static_cast<double>(narrowed);
}
