double pack(double x) {
  const float narrowed = static_cast<float>(x);  // ash-lint: allow(float-physics): fixture-sanctioned violation
  return static_cast<double>(narrowed);
}
double legacy_decay(double x) {
  return expf(x);  // ash-lint: allow(float-physics): fixture-sanctioned violation
}
double fast_exp_shim(double x) {  // ash-lint: allow(float-physics): fixture-sanctioned violation
  return 1.0 + x;
}
