double quick_exp(double x) { return 1.0 + x * (1.0 + 0.5 * x); }
