#include <string>
#include <unordered_map>
double total(const std::unordered_map<std::string, double>& weights) {
  std::unordered_map<std::string, double> scaled = weights;
  double sum = 0.0;
  // Addition here is order-sensitive in principle, accepted deliberately.
  for (const auto& kv : scaled) sum += kv.second;  // ash-lint: allow(unordered-iter): fixture-sanctioned violation
  return sum;
}
