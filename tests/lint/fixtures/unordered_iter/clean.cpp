#include <map>
#include <string>
#include <vector>
double total(const std::map<std::string, double>& weights,
             const std::vector<double>& extra) {
  double sum = 0.0;
  for (const auto& kv : weights) sum += kv.second;
  for (double x : extra) sum += x;
  return sum;
}
