#include <string>
#include <unordered_map>
double total(const std::unordered_map<std::string, double>& weights) {
  std::unordered_map<std::string, double> scaled = weights;
  double sum = 0.0;
  for (const auto& kv : scaled) sum += kv.second;  // order-dependent merge
  return sum;
}
