// Fixture: metric names outside [a-z0-9_.]+.  Uppercase, dashes and
// spaces break the scrape-prefix filter and the key=value dump grammar
// (a '=' or ' ' in a name makes the dump unparseable).
namespace obs {
struct Registry {
  int& counter(const char*);
  double& gauge(const char*);
};
Registry& registry();
}  // namespace obs

void publish_badly() {
  obs::registry().counter("Fleet.Requests");
  obs::registry().gauge("fleet latency-ms");
}
