// Fixture: a legacy dashboard consumes this exact name; the violation is
// acknowledged with the allow() escape until the dashboard migrates.
namespace obs {
struct Registry {
  int& counter(const char*);
};
Registry& registry();
}  // namespace obs

void publish_legacy() {
  obs::registry().counter("Fleet-Requests");  // ash-lint: allow(metric-name): fixture-sanctioned violation
}
