// Fixture: a registration inside an instrumented hot-path kernel file.
// The name is perfectly well-formed — the finding is about *where* the
// registration happens: inside the region ScopedKernelTimer measures,
// where the registry mutex and map lookup bill the kernel under test.
#include <string>

namespace obs {
struct Registry {
  int& counter(const std::string&);
};
Registry& registry();
}  // namespace obs

void interval_kernel() {
  obs::registry().counter("mc.intervals") = 1;
}
