// Fixture: well-formed names (dots namespace, underscores separate
// words), plus a computed name the static rule deliberately skips.
#include <string>

namespace obs {
struct Registry {
  int& counter(const std::string&);
  double& histogram(const std::string&);
};
Registry& registry();
}  // namespace obs

void publish_well(const std::string& prefix) {
  obs::registry().counter("fleet.service.requests");
  obs::registry().histogram("fleet.client.rtt_s");
  obs::registry().counter(prefix + "frames_decoded");
}
