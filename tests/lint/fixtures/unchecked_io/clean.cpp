// Fixture: the stream state is tested after the write, so a short write
// surfaces as an error instead of a silent truncation.
#include <fstream>
#include <stdexcept>
#include <string>

void dump_results(const std::string& path) {
  std::ofstream os(path);
  os << "t_campaign_s,freq_hz\n";
  os.flush();
  if (!os) {
    throw std::runtime_error("short write to " + path);
  }
}
