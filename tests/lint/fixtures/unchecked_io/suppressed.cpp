// Fixture: a deliberate fire-and-forget write (scratch output whose loss
// is harmless) carries the allow() escape on the declaration line.
#include <fstream>

void scribble(const char* path) {
  std::ofstream os(path);  // ash-lint: allow(unchecked-io): fixture-sanctioned violation
  os << "scratch\n";
}
