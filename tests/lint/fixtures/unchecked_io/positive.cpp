// Fixture: the stream is written and closed but its state is never
// examined, so a full disk or torn write would pass silently.
#include <fstream>

void dump_results(const char* path) {
  std::ofstream os(path);
  os << "t_campaign_s,freq_hz\n";
  os << "0.0,987.6\n";
  os.close();
}
