#!/usr/bin/env python3
"""Self-tests for tools/ash_check.py.

Each of the four checkers has positive / suppressed / clean fixtures
under tests/lint/fixtures/ (the protocol checker's fixtures are whole
mini-repo roots, since it cross-checks protocol.h, protocol.cpp and
tests/fleet/).  The suite pins the deterministic fallback frontend
(`--frontend fallback`) so results do not depend on an optional libclang
wheel, asserts the real tree scans to zero findings, and covers the exit
status contract: 0 clean, 1 findings, 2 usage/internal errors.

Run directly or via ctest (`ctest -L lint`).
"""

import json
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
CHECK = os.path.join(REPO, "tools", "ash_check.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_check(root, paths, check=None, extra=()):
    cmd = [sys.executable, CHECK, "--root", root, "--json",
           "--frontend", "fallback"]
    if check:
        cmd += ["--check", check]
    cmd += list(extra) + list(paths)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    try:
        payload = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        raise AssertionError(
            f"ash_check did not emit JSON: {err}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    return proc.returncode, payload


class SingleFileCheckerTest(unittest.TestCase):
    """signal-safety, shard-purity and unit-flow run per fixture file."""

    # check -> (fixture dir, case path template)
    CASES = {
        "signal-safety": ("signal_safety", "{case}.cpp"),
        "shard-purity": ("shard_purity", "{case}.cpp"),
        # unit-flow only looks under src/, so the fixtures live there.
        "unit-flow": ("unit_flow", os.path.join("src", "{case}.h")),
    }

    def run_case(self, check, case):
        subdir, template = self.CASES[check]
        rel = template.format(case=case)
        root = os.path.join(FIXTURES, subdir)
        self.assertTrue(os.path.isfile(os.path.join(root, rel)),
                        f"missing fixture {subdir}/{rel}")
        return run_check(root, [rel], check)

    def assert_positive(self, check, min_findings):
        code, payload = self.run_case(check, "positive")
        self.assertEqual(code, 1, payload)
        self.assertGreaterEqual(len(payload["findings"]), min_findings,
                                payload)
        for f in payload["findings"]:
            self.assertEqual(f["check"], check)
            self.assertGreater(f["line"], 0)
            self.assertTrue(f["message"])

    def assert_suppressed(self, check):
        code, payload = self.run_case(check, "suppressed")
        self.assertEqual(code, 0, payload)
        self.assertEqual(payload["findings"], [])
        self.assertGreater(payload["suppressed"], 0, payload)

    def assert_clean(self, check):
        code, payload = self.run_case(check, "clean")
        self.assertEqual(code, 0, payload)
        self.assertEqual(payload["findings"], [])
        self.assertEqual(payload["suppressed"], 0, payload)

    def test_signal_safety_positive(self):
        # printf via a callee plus operator new in the handler itself.
        self.assert_positive("signal-safety", 2)

    def test_signal_safety_suppressed(self):
        self.assert_suppressed("signal-safety")

    def test_signal_safety_clean(self):
        self.assert_clean("signal-safety")

    def test_shard_purity_positive(self):
        # static local + file-scope global + non-util RNG.
        self.assert_positive("shard-purity", 3)

    def test_shard_purity_suppressed(self):
        self.assert_suppressed("shard-purity")

    def test_shard_purity_clean(self):
        self.assert_clean("shard-purity")

    def test_unit_flow_positive(self):
        # double member + vector<double> member + double return.
        self.assert_positive("unit-flow", 3)

    def test_unit_flow_suppressed(self):
        self.assert_suppressed("unit-flow")

    def test_unit_flow_clean(self):
        self.assert_clean("unit-flow")


class ProtocolCheckerTest(unittest.TestCase):
    """protocol-exhaustiveness cross-checks a whole mini-repo root."""

    def run_root(self, case):
        root = os.path.join(FIXTURES, "protocol_exhaustiveness", case)
        self.assertTrue(os.path.isdir(root), f"missing fixture root {case}")
        return run_check(root, ["src"], "protocol-exhaustiveness")

    def test_positive(self):
        code, payload = self.run_root("positive")
        self.assertEqual(code, 1, payload)
        messages = [f["message"] for f in payload["findings"]]
        self.assertTrue(any("kEchoResponse" in m and "codec" in m
                            for m in messages), messages)
        self.assertTrue(any("kHostileLength" in m for m in messages),
                        messages)

    def test_suppressed(self):
        code, payload = self.run_root("suppressed")
        self.assertEqual(code, 0, payload)
        self.assertEqual(payload["findings"], [])
        self.assertGreaterEqual(payload["suppressed"], 2, payload)

    def test_clean(self):
        code, payload = self.run_root("clean")
        self.assertEqual(code, 0, payload)
        self.assertEqual(payload["findings"], [])
        self.assertEqual(payload["suppressed"], 0, payload)


class BareAllowTest(unittest.TestCase):
    """An ash-check escape without `: <reason>` does not suppress."""

    def test_bare_escape_reports(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "src")
            os.makedirs(src)
            with open(os.path.join(src, "bare.h"), "w") as f:
                f.write("struct R {\n"
                        "  double delay_s = 0.0;"
                        "  // ash-check: allow(unit-flow)\n"
                        "};\n")
            code, payload = run_check(tmp, [os.path.join("src", "bare.h")],
                                      "unit-flow")
        self.assertEqual(code, 1, payload)
        self.assertEqual(payload["suppressed"], 0, payload)
        self.assertTrue(any("carries no reason" in f["message"]
                            for f in payload["findings"]), payload)


class WholeRepoTest(unittest.TestCase):
    """The real tree must be finding-free — CI enforces the same."""

    def test_repo_is_clean(self):
        code, payload = run_check(REPO, ["src", "tools", "tests"])
        self.assertEqual(
            payload["findings"], [],
            "ash_check findings on the tree:\n" +
            "\n".join(f"{f['path']}:{f['line']}: [{f['check']}] "
                      f"{f['message']}" for f in payload["findings"]))
        self.assertEqual(code, 0)
        self.assertGreater(payload["files_scanned"], 150)
        self.assertEqual(payload["frontend"], "fallback")


class ExitCodeTest(unittest.TestCase):
    """Exit status contract: 0 clean, 1 findings, 2 usage/internal
    errors — CI must tell \"dirty tree\" from \"broken tool\"."""

    def test_findings_exit_one(self):
        root = os.path.join(FIXTURES, "unit_flow")
        code, _ = run_check(root, [os.path.join("src", "positive.h")],
                            "unit-flow")
        self.assertEqual(code, 1)

    def test_bad_root_exit_two(self):
        proc = subprocess.run(
            [sys.executable, CHECK, "--root", "/nonexistent/xyzzy"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("not a directory", proc.stderr)

    def test_no_files_matched_exit_two(self):
        root = os.path.join(FIXTURES, "unit_flow")
        proc = subprocess.run(
            [sys.executable, CHECK, "--root", root, "no_such_subdir"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("no source files matched", proc.stderr)

    def test_unknown_check_exit_two(self):
        proc = subprocess.run(
            [sys.executable, CHECK, "--check", "bogus"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_unreadable_compile_commands_exit_two(self):
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".json") as bad:
            bad.write("{ not json")
            bad.flush()
            proc = subprocess.run(
                [sys.executable, CHECK, "--root", REPO,
                 "--compile-commands", bad.name, "tools"],
                capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_list_checks(self):
        proc = subprocess.run(
            [sys.executable, CHECK, "--list-checks"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(
            proc.stdout.split(),
            ["signal-safety", "shard-purity", "unit-flow",
             "protocol-exhaustiveness"])


if __name__ == "__main__":
    unittest.main()
