/// fpga_aging_campaign — runs the paper's full Table 1 campaign in the
/// virtual lab and exports every measurement to CSV.
///
/// Five chips, each through its burn-in + stress + recovery schedule, with
/// the measurement procedure of Sec. 4 (gated 16-bit counting at fref =
/// 500 Hz, samples every 20 min under stress / 30 min during recovery).
/// The per-chip CSV logs can be plotted directly against Figures 4–8.
///
/// Usage:
///   ./build/examples/fpga_aging_campaign [output_dir]
/// (default output_dir: current directory; files campaign_chipN.csv)

#include <cstdio>
#include <fstream>
#include <string>

#include "ash/core/metrics.h"
#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/table.h"

int main(int argc, char** argv) {
  using namespace ash;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  tb::ExperimentRunner runner{tb::RunnerConfig{}};
  Table summary({"chip", "schedule", "samples", "fresh f (MHz)",
                 "worst degradation", "final recovered"});

  for (const auto& test_case : tb::paper_campaign()) {
    fpga::ChipConfig cc;
    cc.chip_id = test_case.chip_id;
    cc.seed = 0x40A0 + static_cast<std::uint64_t>(test_case.chip_id);
    fpga::FpgaChip chip(cc);

    std::printf("running %s (chip %d, %.0f h of schedule)...\n",
                test_case.name.c_str(), test_case.chip_id,
                test_case.total_duration_s() / 3600.0);
    const tb::DataLog log = runner.run(chip, test_case);

    const std::string path =
        out_dir + "/campaign_chip" + std::to_string(test_case.chip_id) +
        ".csv";
    std::ofstream os(path);
    log.write_csv(os);
    std::printf("  wrote %zu samples to %s\n", log.size(), path.c_str());

    // Summary metrics.
    const double fresh_hz = log.records().front().frequency_hz.value();
    const double fresh_delay = log.records().front().delay_s.value();
    double worst_deg = 0.0;
    for (const auto& r : log.records()) {
      worst_deg = std::max(worst_deg, 1.0 - r.frequency_hz.value() / fresh_hz);
    }
    // Recovery summary: recovered fraction of the last recovery phase, if
    // the schedule has one.
    std::string recovered = "-";
    const auto phases = log.phases();
    for (auto it = phases.rbegin(); it != phases.rend(); ++it) {
      if (it->rfind("AR", 0) == 0 || it->rfind("R2", 0) == 0) {
        recovered = fmt_percent(
            core::recovered_fraction(log.delay_series(*it), fresh_delay), 1);
        break;
      }
    }

    std::string schedule;
    for (const auto& p : test_case.phases) {
      if (!schedule.empty()) schedule += " > ";
      schedule += p.label;
    }
    summary.add_row({strformat("%d", test_case.chip_id), schedule,
                     strformat("%zu", log.size()),
                     fmt_fixed(fresh_hz / 1e6, 3),
                     fmt_percent(worst_deg, 2), recovered});
  }

  std::printf("\n%s", summary.render().c_str());
  std::printf(
      "\nColumns map to the paper: worst degradation ~ Table 2; final\n"
      "recovered ~ the 'within 90%% of original margin' headline (Table 4).\n");
  return 0;
}
