/// multicore_circadian — the Section 6.2 application: circadian
/// self-healing scheduling on an 8-core system.
///
/// Simulates the Fig. 10 floorplan for a configurable number of years
/// under each shipped scheduling policy and prints the system-architect's
/// view: sleeping-core temperature (the free "on-chip heater" effect),
/// aging statistics, TDP compliance and per-core wear fairness.
///
/// Usage:
///   ./build/examples/multicore_circadian [years] [cores_needed]
/// defaults: 3 years, 6-of-8 cores demanded.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ash/mc/system.h"
#include "ash/util/table.h"

int main(int argc, char** argv) {
  using namespace ash;
  const double years = argc > 1 ? std::atof(argv[1]) : 3.0;
  const int cores_needed = argc > 2 ? std::atoi(argv[2]) : 6;

  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{years * 365.25 * 86400.0};
  cfg.cores_needed = cores_needed;
  cfg.margin_delta_vth_v = Volts{9e-3};

  std::printf("8-core system, %d cores demanded, %.1f-year horizon, "
              "margin %.1f mV\n\n",
              cfg.cores_needed, years, cfg.margin_delta_vth_v.value() * 1e3);

  mc::AllActiveScheduler all_active;
  mc::RoundRobinSleepScheduler rr_passive(false);
  mc::RoundRobinSleepScheduler rr_rejuvenate(true);
  mc::HeaterAwareCircadianScheduler circadian;

  Table t({"policy", "sleep T (degC)", "mean aging (mV)", "worst (mV)",
           "perm spread", "TDP viol.", "lifetime (days)"});
  mc::Scheduler* schedulers[] = {&all_active, &rr_passive, &rr_rejuvenate,
                                 &circadian};
  for (mc::Scheduler* s : schedulers) {
    const auto r = simulate_system(cfg, *s);
    double perm_lo = 1e9;
    double perm_hi = 0.0;
    for (const Volts v : r.end_permanent_v) {
      perm_lo = std::min(perm_lo, v.value());
      perm_hi = std::max(perm_hi, v.value());
    }
    t.add_row({r.scheduler,
               std::isnan(r.mean_sleep_temp_c.value())
                   ? std::string("-")
                   : fmt_fixed(r.mean_sleep_temp_c.value(), 1),
               fmt_fixed(r.mean_end_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(r.worst_end_delta_vth_v.value() * 1e3, 2),
               perm_lo > 0.0 ? fmt_fixed(perm_hi / perm_lo, 2) : "-",
               strformat("%d", r.tdp_violations),
               r.margin_exceeded
                   ? fmt_fixed(r.time_to_first_margin_s.value() / 86400.0, 0)
                   : ">" + fmt_fixed(cfg.horizon_s.value() / 86400.0, 0)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "reading: sleepers sit ~20 degC above ambient thanks to their active\n"
      "neighbours (free heat for recovery); the heater-aware circadian\n"
      "policy keeps every core under the aging margin for the whole horizon\n"
      "while the always-on baseline burns through it, and rotation keeps\n"
      "irreversible wear spread evenly (perm spread ~ 1).\n");
  return 0;
}
