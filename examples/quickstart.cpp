/// quickstart — the five-minute tour of libash.
///
/// Builds one virtual 40 nm FPGA chip, stresses it for 24 hours the way the
/// paper does (DC, 110 degC, 1.2 V), then deeply rejuvenates it for 6 hours
/// (110 degC, -0.3 V — the paper's best case, alpha = 4) and prints what a
/// ring-oscillator measurement sees at each step.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "ash/bti/condition.h"
#include "ash/fpga/chip.h"
#include "ash/util/constants.h"

int main() {
  using namespace ash;

  // One chip of the virtual family.  Everything is deterministic in the
  // seed: rerunning reproduces the exact numbers below.
  fpga::ChipConfig config;
  config.chip_id = 1;
  config.seed = 2026;
  fpga::FpgaChip chip(config);

  const double vdd = 1.2;
  const double room = celsius(20.0);
  const double fresh_hz = chip.ro_frequency_hz(Volts{vdd}, Kelvin{room}).value();
  std::printf("fresh RO frequency      : %.3f MHz (CUT delay %.1f ns)\n",
              fresh_hz / 1e6, chip.cut_delay_s(Volts{vdd}, Kelvin{room}).value() * 1e9);

  // Accelerated wearout: freeze the ring (DC stress) in the hot chamber.
  chip.evolve(fpga::RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}),
              Seconds{hours(24.0)});
  const double stressed_hz = chip.ro_frequency_hz(Volts{vdd}, Kelvin{room}).value();
  std::printf("after 24 h DC @110 degC : %.3f MHz (degraded %.2f %%)\n",
              stressed_hz / 1e6, 100.0 * (1.0 - stressed_hz / fresh_hz));

  // Accelerated self-healing: sleep is an *active* recovery period —
  // negative bias plus heat, for only a quarter of the stress time.
  chip.evolve(fpga::RoMode::kSleep, bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  const double healed_hz = chip.ro_frequency_hz(Volts{vdd}, Kelvin{room}).value();
  const double recovered =
      (healed_hz - stressed_hz) / (fresh_hz - stressed_hz);
  std::printf("after 6 h deep sleep    : %.3f MHz (recovered %.0f %% of the "
              "damage)\n",
              healed_hz / 1e6, 100.0 * recovered);

  std::printf("\nThat is the paper's headline: a stressed chip back to within"
              "\n~90%% of its original margin in 1/4 of the stress time.\n");
  return 0;
}
