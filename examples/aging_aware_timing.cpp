/// aging_aware_timing — aging-aware static timing analysis of a mapped
/// design.
///
/// Maps a 4-bit ripple-carry adder onto the virtual fabric, runs it under
/// a *biased* workload for a month (real workloads are not 50 % duty on
/// every net — some operands sit at constants), and shows what the paper's
/// margins discussion means for a concrete design: which path drifted,
/// by how much, and what one deep-rejuvenation sleep buys back.
///
/// Usage: ./build/examples/aging_aware_timing [days]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ash/fpga/fabric.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"

namespace {

std::string path_string(const std::vector<std::string>& path) {
  std::string s;
  for (const auto& p : path) {
    if (!s.empty()) s += " > ";
    s += p;
  }
  return s;
}

void report(const char* label, const ash::fpga::Fabric& fab, double fresh_s) {
  const auto t = fab.timing(ash::Volts{1.2}, ash::Kelvin{ash::celsius(60.0)});
  std::printf("%-28s worst arrival %7.3f ns (%+5.2f%%)  critical: %s via %s\n",
              label, t.worst_arrival_s.value() * 1e9,
              100.0 * (t.worst_arrival_s.value() / fresh_s - 1.0),
              t.critical_output.c_str(), path_string(t.critical_path).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ash;
  const double days = argc > 1 ? std::atof(argv[1]) : 30.0;

  fpga::FabricConfig cfg;
  cfg.seed = 7;
  fpga::Fabric fab(fpga::ripple_carry_adder(4), cfg);
  const double fresh =
      fab.timing(Volts{1.2}, Kelvin{celsius(60.0)}).worst_arrival_s.value();
  report("fresh", fab, fresh);

  // A biased mission workload at 60 degC: operand A is a live data path
  // (toggling), operand B is a configuration constant (0xA pattern), carry
  // in tied low.  Model: alternate an hour of toggling activity with an
  // hour parked on the static vector.
  fpga::NetValues parked{{"cin", false}};
  for (int i = 0; i < 4; ++i) {
    parked[strformat("a%d", i)] = false;
    parked[strformat("b%d", i)] = (0xA >> i) & 1;
  }
  const auto active = bti::ac_stress(Volts{1.2}, Celsius{60.0});
  const auto idle_dc = bti::dc_stress(Volts{1.2}, Celsius{60.0});
  for (int h = 0; h < static_cast<int>(days * 24.0); h += 2) {
    fab.age_toggling(active, Seconds{hours(1.0)});
    fab.age_static(parked, idle_dc, Seconds{hours(1.0)});
  }
  report(strformat("after %.0f days of mission", days).c_str(), fab, fresh);

  // One scheduled deep-rejuvenation sleep: 110 degC, -0.3 V, 6 h.
  fab.age_sleep(bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(6.0)});
  report("after one 6 h deep sleep", fab, fresh);

  std::printf(
      "\nPer-output drift shows the workload bias (parked bits age their\n"
      "sensitized devices only):\n");
  Table t({"output", "fresh (ns)", "aged (ns)", "healed (ns)"});
  fpga::Fabric fresh_fab(fpga::ripple_carry_adder(4), cfg);
  const auto fresh_t = fresh_fab.timing(Volts{1.2}, Kelvin{celsius(60.0)});
  const auto healed_t = fab.timing(Volts{1.2}, Kelvin{celsius(60.0)});
  fpga::Fabric aged_fab(fpga::ripple_carry_adder(4), cfg);
  for (int h = 0; h < static_cast<int>(days * 24.0); h += 2) {
    aged_fab.age_toggling(active, Seconds{hours(1.0)});
    aged_fab.age_static(parked, idle_dc, Seconds{hours(1.0)});
  }
  const auto aged_t = aged_fab.timing(Volts{1.2}, Kelvin{celsius(60.0)});
  for (const auto& po : fab.netlist().primary_outputs) {
    t.add_row({po, fmt_fixed(fresh_t.arrival_s.at(po) * 1e9, 3),
               fmt_fixed(aged_t.arrival_s.at(po) * 1e9, 3),
               fmt_fixed(healed_t.arrival_s.at(po) * 1e9, 3)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
