/// recovery_policy_explorer — interactive what-if tool for rejuvenation
/// planning.
///
/// Given a stress exposure and a recovery target, asks the planner for the
/// cheapest sleep conditions under three cost regimes (balanced, heat is
/// expensive, negative rail is expensive), then races the four lifetime
/// policies at the chosen margin — the workflow a designer would follow to
/// size sleep schedules with this library.
///
/// Usage:
///   ./build/examples/recovery_policy_explorer [target_fraction] [max_sleep_h]
/// defaults: 0.9 recovered, 6 h budget.

#include <cstdio>
#include <cstdlib>

#include "ash/core/lifetime.h"
#include "ash/core/planner.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"

namespace {

void show_plan(const char* regime, const ash::core::PlannerConfig& cfg) {
  using namespace ash;
  const auto plan = core::plan_recovery(cfg);
  if (!plan.feasible) {
    std::printf("  %-22s : no feasible plan within the budget\n", regime);
    return;
  }
  std::printf(
      "  %-22s : sleep %5.2f h at %5.1f degC, %+.2f V  (achieves %.1f%%, "
      "cost %.0f)\n",
      regime, to_hours(plan.sleep_s.value()), plan.temp_c.value(), plan.voltage_v.value(),
      plan.achieved_fraction * 100.0, plan.cost);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ash;
  const double target = argc > 1 ? std::atof(argv[1]) : 0.9;
  const double max_sleep_h = argc > 2 ? std::atof(argv[2]) : 6.0;

  std::printf("goal: recover %.0f%% of a 24 h reference stress within %.1f h\n\n",
              target * 100.0, max_sleep_h);

  core::PlannerConfig base;
  base.target_recovered_fraction = target;
  base.max_sleep_s = Seconds{hours(max_sleep_h)};

  std::printf("cheapest sleep conditions by cost regime:\n");
  show_plan("balanced costs", base);

  core::PlannerConfig heat_pricey = base;
  heat_pricey.heat_cost_per_c = 1.0;
  show_plan("heating is expensive", heat_pricey);

  core::PlannerConfig bias_pricey = base;
  bias_pricey.bias_cost_per_v = 500.0;
  show_plan("neg. rail is expensive", bias_pricey);

  std::printf("\nlifetime policies at a 9.5 mV margin (5-year mission):\n");
  Table t({"policy", "lifetime (days)", "availability", "mean aging (mV)"});
  for (const auto policy :
       {core::Policy::kNoRecovery, core::Policy::kPassiveSleep,
        core::Policy::kReactive, core::Policy::kProactive}) {
    core::LifetimeConfig cfg;
    cfg.policy = policy;
    cfg.horizon_s = Seconds{5.0 * 365.25 * 86400.0};
    cfg.margin_delta_vth_v = Volts{9.5e-3};
    const auto r = simulate_lifetime(cfg);
    double mean_mv = 0.0;
    for (const auto& s : r.trace.samples()) mean_mv += s.value;
    mean_mv = mean_mv / static_cast<double>(r.trace.size()) * 1e3;
    t.add_row({to_string(policy),
               r.margin_exceeded ? fmt_fixed(r.time_to_margin_s.value() / 86400.0, 0)
                                 : ">" + fmt_fixed(cfg.horizon_s.value() / 86400.0, 0),
               fmt_percent(r.availability, 1), fmt_fixed(mean_mv, 2)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
