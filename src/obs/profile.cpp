#include "ash/obs/profile.h"

#include "ash/util/table.h"

namespace ash::obs {

const char* to_string(Kernel kernel) {
  switch (kernel) {
    case Kernel::kTrapEnsembleEvolve: return "bti.trap_ensemble.evolve";
    case Kernel::kRoDelayEval: return "fpga.ro.delay_eval";
    case Kernel::kTbPhaseAttempt: return "tb.runner.phase_attempt";
    case Kernel::kMcInterval: return "mc.system.interval";
    case Kernel::kMcThermalSolve: return "mc.thermal.solve";
    case Kernel::kMcSchedDecide: return "mc.sched.decide";
    case Kernel::kMcFaultSample: return "mc.fault.sample";
    case Kernel::kMcTelemetry: return "mc.telemetry";
    case Kernel::kBtiBatchEvolve: return "bti.batch.evolve";
    case Kernel::kCount: break;
  }
  return "unknown";
}

void enable_profiling(bool on) {
  detail::g_profiling.store(on, std::memory_order_relaxed);
}

void reset_profile() {
  for (auto& slot : detail::g_kernel_slots) {
    slot.calls.store(0, std::memory_order_relaxed);
    slot.total_ns.store(0, std::memory_order_relaxed);
  }
}

std::vector<KernelProfile> profile_snapshot() {
  std::vector<KernelProfile> out;
  for (int k = 0; k < kKernelCount; ++k) {
    const auto& slot = detail::g_kernel_slots[static_cast<std::size_t>(k)];
    KernelProfile p;
    p.kernel = static_cast<Kernel>(k);
    p.calls = slot.calls.load(std::memory_order_relaxed);
    p.total_ns = slot.total_ns.load(std::memory_order_relaxed);
    if (p.calls > 0) out.push_back(p);
  }
  return out;
}

std::string profile_table() {
  const auto profiles = profile_snapshot();
  if (profiles.empty()) {
    return "profile: no instrumented kernel ran (is profiling enabled?)\n";
  }
  double total_ns = 0.0;
  for (const auto& p : profiles) total_ns += static_cast<double>(p.total_ns);

  Table t({"kernel", "calls", "total (ms)", "ns/call", "share"});
  for (const auto& p : profiles) {
    const double ns = static_cast<double>(p.total_ns);
    t.add_row({to_string(p.kernel), strformat("%llu",
                   static_cast<unsigned long long>(p.calls)),
               fmt_fixed(ns / 1e6, 2),
               fmt_fixed(ns / static_cast<double>(p.calls), 0),
               fmt_percent(total_ns > 0.0 ? ns / total_ns : 0.0, 1)});
  }
  return t.render();
}

}  // namespace ash::obs
