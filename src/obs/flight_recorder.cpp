#include "ash/obs/flight_recorder.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "ash/util/table.h"

namespace ash::obs {

namespace {

constexpr char kHeader[] = "ash-flight-recorder v1";

std::uint64_t host_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Async-signal-safe line formatting ----------------------------------
// The fatal-signal dump path may not allocate or call printf, so every
// line is built into a caller-owned stack buffer with these helpers; the
// normal serialize() path reuses them, which is what makes the two dumps
// byte-identical.

void append_char(char* buf, std::size_t cap, std::size_t& pos, char c) {
  if (pos + 1 < cap) buf[pos++] = c;
}

void append_str(char* buf, std::size_t cap, std::size_t& pos,
                const char* s) {
  while (*s != '\0') append_char(buf, cap, pos, *s++);
}

void append_u64(char* buf, std::size_t cap, std::size_t& pos,
                std::uint64_t v) {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) append_char(buf, cap, pos, digits[--n]);
}

/// Milliseconds with fixed three decimals (integer math only).
void append_ms(char* buf, std::size_t cap, std::size_t& pos, double t_ms) {
  if (t_ms < 0.0) t_ms = 0.0;
  const std::uint64_t micros = static_cast<std::uint64_t>(t_ms * 1000.0 + 0.5);
  append_u64(buf, cap, pos, micros / 1000);
  append_char(buf, cap, pos, '.');
  const std::uint64_t frac = micros % 1000;
  append_char(buf, cap, pos, static_cast<char>('0' + frac / 100));
  append_char(buf, cap, pos, static_cast<char>('0' + frac / 10 % 10));
  append_char(buf, cap, pos, static_cast<char>('0' + frac % 10));
}

/// One "event ..." line; returns its length.
std::size_t format_event_line(char* buf, std::size_t cap,
                              const FlightRecord& e) {
  std::size_t pos = 0;
  append_str(buf, cap, pos, "event ");
  append_u64(buf, cap, pos, e.seq);
  append_char(buf, cap, pos, ' ');
  append_ms(buf, cap, pos, e.t_ms);
  append_char(buf, cap, pos, ' ');
  append_str(buf, cap, pos, to_string(e.kind));
  append_char(buf, cap, pos, ' ');
  append_u64(buf, cap, pos, e.a);
  append_char(buf, cap, pos, ' ');
  append_u64(buf, cap, pos, e.b);
  append_char(buf, cap, pos, '\n');
  buf[pos] = '\0';
  return pos;
}

std::size_t format_header(char* buf, std::size_t cap, std::size_t capacity,
                          std::uint64_t recorded) {
  std::size_t pos = 0;
  append_str(buf, cap, pos, kHeader);
  append_char(buf, cap, pos, '\n');
  append_str(buf, cap, pos, "capacity ");
  append_u64(buf, cap, pos, capacity);
  append_char(buf, cap, pos, '\n');
  append_str(buf, cap, pos, "recorded ");
  append_u64(buf, cap, pos, recorded);
  append_char(buf, cap, pos, '\n');
  buf[pos] = '\0';
  return pos;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

constexpr std::size_t kLineCap = 160;

}  // namespace

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kDaemonStart: return "daemon-start";
    case FlightEventKind::kStateGenesis: return "state-genesis";
    case FlightEventKind::kStateLoaded: return "state-loaded";
    case FlightEventKind::kSnapshotSaved: return "snapshot-saved";
    case FlightEventKind::kConnectionAccepted: return "connection-accepted";
    case FlightEventKind::kConnectionRejected: return "connection-rejected";
    case FlightEventKind::kEviction: return "eviction";
    case FlightEventKind::kFrameError: return "frame-error";
    case FlightEventKind::kRequestShed: return "request-shed";
    case FlightEventKind::kMutationApplied: return "mutation-applied";
    case FlightEventKind::kMutationReplayed: return "mutation-replayed";
    case FlightEventKind::kDrainBegin: return "drain-begin";
    case FlightEventKind::kDrainEnd: return "drain-end";
    case FlightEventKind::kFatalSignal: return "fatal-signal";
    case FlightEventKind::kCount: break;
  }
  return "unknown";
}

FlightEventKind parse_flight_event(std::string_view name) {
  for (std::uint32_t k = 0;
       k < static_cast<std::uint32_t>(FlightEventKind::kCount); ++k) {
    const auto kind = static_cast<FlightEventKind>(k);
    if (name == to_string(kind)) return kind;
  }
  return FlightEventKind::kCount;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(capacity), epoch_ns_(host_now_ns()) {}

double FlightRecorder::elapsed_ms() const {
  return static_cast<double>(host_now_ns() - epoch_ns_) * 1e-6;
}

void FlightRecorder::record(FlightEventKind kind, std::uint64_t a,
                            std::uint64_t b) {
  if (slots_.empty()) return;  // disabled: one branch, no clock read
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[static_cast<std::size_t>((seq - 1) % slots_.size())];
  // Invalidate, fill, publish: a reader that races the fill sees either
  // stamp 0 or mismatched stamps and drops the slot instead of tearing.
  slot.stamp.store(0, std::memory_order_release);
  slot.t_ms = elapsed_ms();
  slot.kind = static_cast<std::uint32_t>(kind);
  slot.a = a;
  slot.b = b;
  slot.stamp.store(seq, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::events() const {
  std::vector<FlightRecord> out;
  const std::uint64_t total = next_seq_.load(std::memory_order_acquire);
  if (slots_.empty() || total == 0) return out;
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = total > cap ? total - cap + 1 : 1;
  out.reserve(static_cast<std::size_t>(total - first + 1));
  for (std::uint64_t seq = first; seq <= total; ++seq) {
    const Slot& slot =
        slots_[static_cast<std::size_t>((seq - 1) % cap)];
    const std::uint64_t before = slot.stamp.load(std::memory_order_acquire);
    FlightRecord rec;
    rec.seq = before;
    rec.t_ms = slot.t_ms;
    rec.kind = static_cast<FlightEventKind>(slot.kind);
    rec.a = slot.a;
    rec.b = slot.b;
    const std::uint64_t after = slot.stamp.load(std::memory_order_acquire);
    if (before != seq || after != seq) continue;  // torn or overwritten
    out.push_back(rec);
  }
  return out;
}

std::string FlightRecorder::serialize() const {
  char line[kLineCap];
  std::string out;
  out.append(line, format_header(line, sizeof line, slots_.size(),
                                 next_seq_.load(std::memory_order_relaxed)));
  for (const FlightRecord& e : events()) {
    out.append(line, format_event_line(line, sizeof line, e));
  }
  out += "end\n";
  return out;
}

bool FlightRecorder::write_fd(int fd) const {
  char line[kLineCap];
  std::size_t n = format_header(line, sizeof line, slots_.size(),
                                next_seq_.load(std::memory_order_relaxed));
  if (!write_all(fd, line, n)) return false;
  // Walk the ring oldest-first without allocating (fatal-signal path).
  const std::uint64_t total = next_seq_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  if (cap != 0 && total != 0) {
    const std::uint64_t first = total > cap ? total - cap + 1 : 1;
    for (std::uint64_t seq = first; seq <= total; ++seq) {
      const Slot& slot =
          slots_[static_cast<std::size_t>((seq - 1) % cap)];
      if (slot.stamp.load(std::memory_order_acquire) != seq) continue;
      FlightRecord rec;
      rec.seq = seq;
      rec.t_ms = slot.t_ms;
      rec.kind = static_cast<FlightEventKind>(slot.kind);
      rec.a = slot.a;
      rec.b = slot.b;
      n = format_event_line(line, sizeof line, rec);
      if (!write_all(fd, line, n)) return false;
    }
  }
  return write_all(fd, "end\n", 4);
}

namespace {

/// Parse one decimal u64 token; false on empty/malformed.
bool parse_u64_token(std::string_view token, std::uint64_t& out) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string_view::npos) {
    return false;
  }
  errno = 0;
  out = std::strtoull(std::string(token).c_str(), nullptr, 10);
  return errno != ERANGE;
}

/// Split on single spaces; a torn line yields fewer tokens and fails the
/// caller's arity check.
std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t space = line.find(' ', pos);
    if (space == std::string_view::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return out;
}

}  // namespace

std::vector<FlightRecord> FlightRecorder::load(std::string_view bytes) {
  std::size_t pos = 0;
  bool terminated = false;
  const auto next_line = [&](std::string_view& line) {
    if (pos >= bytes.size()) return false;
    const std::size_t eol = bytes.find('\n', pos);
    if (eol == std::string_view::npos) {
      // No terminator: the write died mid-line.  A torn tail can end
      // mid-*token* ("... 4096" cut to "... 4") and still look
      // well-formed, so the missing newline itself is the tear marker.
      line = bytes.substr(pos);
      pos = bytes.size();
      terminated = false;
      return true;
    }
    line = bytes.substr(pos, eol - pos);
    pos = eol + 1;
    terminated = true;
    return true;
  };

  std::string_view line;
  if (!next_line(line) || line != kHeader || !terminated) {
    throw std::runtime_error(
        "flight recorder: not a dump (missing '" + std::string(kHeader) +
        "' header)");
  }
  std::vector<FlightRecord> out;
  while (next_line(line)) {
    if (!terminated) break;  // torn final line: drop it
    if (line == "end") break;
    const std::vector<std::string_view> tokens = split_tokens(line);
    if (tokens.empty()) break;
    if (tokens[0] == "capacity" || tokens[0] == "recorded") {
      std::uint64_t ignored = 0;
      if (tokens.size() != 2 || !parse_u64_token(tokens[1], ignored)) break;
      continue;
    }
    if (tokens[0] != "event" || tokens.size() != 6) break;  // torn tail
    FlightRecord rec;
    char* end = nullptr;
    const std::string t_str(tokens[2]);
    rec.t_ms = std::strtod(t_str.c_str(), &end);
    rec.kind = parse_flight_event(tokens[3]);
    if (!parse_u64_token(tokens[1], rec.seq) ||
        end != t_str.c_str() + t_str.size() ||
        rec.kind == FlightEventKind::kCount ||
        !parse_u64_token(tokens[4], rec.a) ||
        !parse_u64_token(tokens[5], rec.b)) {
      break;  // first malformed line: drop it and everything after
    }
    out.push_back(rec);
  }
  return out;
}

std::string FlightRecorder::render(const std::vector<FlightRecord>& events) {
  std::string out = strformat("flight recorder: %zu event(s)\n",
                              events.size());
  if (events.empty()) return out;
  out += "     seq        t_ms  event                            a"
         "            b\n";
  for (const FlightRecord& e : events) {
    out += strformat("%8llu  %10.3f  %-22s %12llu %12llu\n",
                     static_cast<unsigned long long>(e.seq), e.t_ms,
                     to_string(e.kind),
                     static_cast<unsigned long long>(e.a),
                     static_cast<unsigned long long>(e.b));
  }
  return out;
}

}  // namespace ash::obs
