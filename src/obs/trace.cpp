#include "ash/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <fstream>
#include <ostream>

#include "ash/util/table.h"

namespace ash::obs {

namespace {

/// JSON string escaping (control characters, quotes, backslashes).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_args_object(std::ostream& os, const TraceEvent& e) {
  os << "{\"kind\":\"" << to_string(e.kind) << "\",\"depth\":" << e.depth
     << ",\"wall_ms\":"
     << strformat("%.3f",
                  static_cast<double>(e.wall_end_ns - e.wall_begin_ns) / 1e6);
  for (const auto& [k, v] : e.args) {
    os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  os << "}";
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRun: return "run";
    case EventKind::kPhase: return "phase";
    case EventKind::kPhaseTransition: return "phase_transition";
    case EventKind::kMeasurement: return "measurement";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kFaultDetected: return "fault_detected";
    case EventKind::kRetry: return "retry";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kQuarantineRelease: return "quarantine_release";
    case EventKind::kFailover: return "failover";
    case EventKind::kCheckpointSave: return "checkpoint_save";
    case EventKind::kCheckpointRewind: return "checkpoint_rewind";
    case EventKind::kHeartbeatMiss: return "heartbeat_miss";
    case EventKind::kWorkerRestart: return "worker_restart";
    case EventKind::kBackoff: return "backoff";
    case EventKind::kWorkerQuarantine: return "worker_quarantine";
    case EventKind::kFleetAccept: return "fleet_accept";
    case EventKind::kFleetRequest: return "fleet_request";
    case EventKind::kFleetApply: return "fleet_apply";
    case EventKind::kFleetSnapshot: return "fleet_snapshot";
    case EventKind::kFleetAck: return "fleet_ack";
  }
  return "unknown";
}

namespace detail {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void emit(TraceEvent&& event) {
  TraceSink* sink = g_trace_sink.load(std::memory_order_acquire);
  if (sink != nullptr) sink->record(std::move(event));
}

}  // namespace detail

void set_trace_sink(TraceSink* sink) {
  detail::g_trace_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() {
  return detail::g_trace_sink.load(std::memory_order_acquire);
}

void instant(EventKind kind, std::string_view name, std::string_view category,
             std::vector<std::pair<std::string, std::string>> args) {
  if (!tracing()) return;
  TraceEvent e;
  e.kind = kind;
  e.name.assign(name);
  e.category.assign(category);
  e.sim_begin_s = e.sim_end_s = Seconds{sim_now()};
  e.wall_begin_ns = e.wall_end_ns = detail::wall_now_ns();
  e.span = false;
  e.depth = detail::g_span_depth;
  e.args = std::move(args);
  detail::emit(std::move(e));
}

Span::Span(EventKind kind, std::string_view name, std::string_view category)
    : Span(kind, name, category, sim_now()) {}

Span::Span(EventKind kind, std::string_view name, std::string_view category,
           double sim_begin_s) {
  if (!tracing()) return;
  active_ = true;
  event_.kind = kind;
  event_.name.assign(name);
  event_.category.assign(category);
  event_.sim_begin_s = Seconds{sim_begin_s};
  event_.wall_begin_ns = detail::wall_now_ns();
  event_.span = true;
  event_.depth = detail::g_span_depth++;
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

void Span::end_at(double sim_end_s) {
  if (!active_) return;
  have_end_ = true;
  sim_end_s_ = sim_end_s;
}

Span::~Span() {
  if (!active_) return;
  --detail::g_span_depth;
  event_.sim_end_s = Seconds{have_end_ ? sim_end_s_ : sim_now()};
  event_.wall_end_ns = detail::wall_now_ns();
  detail::emit(std::move(event_));
}

void TraceBuffer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceBuffer::count(EventKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void TraceBuffer::write_chrome_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"pid\":1,\"tid\":1,\"ts\":"
       << strformat("%.3f", e.sim_begin_s.value() * 1e6);
    if (e.span) {
      os << ",\"ph\":\"X\",\"dur\":"
         << strformat("%.3f", (e.sim_end_s - e.sim_begin_s).value() * 1e6);
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"args\":";
    write_args_object(os, e);
    os << "}";
  }
  os << "\n]}\n";
}

void write_jsonl_line(std::ostream& os, const TraceEvent& e) {
  os << "{\"kind\":\"" << to_string(e.kind) << "\",\"name\":\""
     << json_escape(e.name) << "\",\"cat\":\"" << json_escape(e.category)
     << "\",\"span\":" << (e.span ? "true" : "false")
     << ",\"depth\":" << e.depth
     << ",\"sim_begin_s\":" << strformat("%.6f", e.sim_begin_s.value())
     << ",\"sim_end_s\":" << strformat("%.6f", e.sim_end_s.value())
     << ",\"wall_begin_ns\":" << strformat("%" PRIu64, e.wall_begin_ns)
     << ",\"wall_end_ns\":" << strformat("%" PRIu64, e.wall_end_ns);
  for (const auto& [k, v] : e.args) {
    os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  os << "}\n";
}

void TraceBuffer::write_jsonl(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : events_) write_jsonl_line(os, e);
}

TraceWriter::TraceWriter(const std::string& path, std::size_t flush_every)
    : os_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      flush_every_(std::max<std::size_t>(1, flush_every)) {
  buffer_.reserve(flush_every_);
}

TraceWriter::~TraceWriter() {
  const std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void TraceWriter::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  buffer_.push_back(std::move(event));
  max_buffered_ = std::max(max_buffered_, buffer_.size());
  if (buffer_.size() >= flush_every_) flush_locked();
}

void TraceWriter::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void TraceWriter::flush_locked() {
  for (const auto& e : buffer_) write_jsonl_line(*os_, e);
  written_ += buffer_.size();
  buffer_.clear();
  os_->flush();
}

bool TraceWriter::ok() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return os_->good();
}

std::uint64_t TraceWriter::events_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

std::size_t TraceWriter::max_buffered() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_buffered_;
}

}  // namespace ash::obs
