#pragma once

/// \file profile.h
/// Scoped kernel timers aggregated per hot-path kernel.
///
/// The ROADMAP north star ("as fast as the hardware allows") needs to
/// know where simulated wall-clock time actually goes before any perf PR
/// can be honest.  Each instrumented kernel owns one fixed slot — an
/// atomic (calls, nanoseconds) pair — so recording is two relaxed
/// fetch_adds and *checking* whether to record is a single relaxed load:
/// with profiling off (the default) a `ScopedKernelTimer` costs one load
/// and a predictable branch, no clock reads (enforced by
/// tests/obs/overhead_test.cpp).
///
/// Enable with `enable_profiling(true)` (or `ash_lab --profile` /
/// `bench_perf_kernels`), read back with `profile_snapshot()` or the
/// rendered `profile_table()`.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ash::obs {

/// Instrumented kernels.  Keep `to_string` in sync when extending.
enum class Kernel : int {
  kTrapEnsembleEvolve = 0,  ///< bti: one trap-ensemble aging step
  kRoDelayEval,             ///< fpga: one RO period/frequency evaluation
  kTbPhaseAttempt,          ///< tb: one phase attempt of a campaign
  kMcInterval,              ///< mc: one scheduling interval (whole body)
  kMcThermalSolve,          ///< mc: one steady-state thermal solve
  kMcSchedDecide,           ///< mc: one scheduler policy decision
  kMcFaultSample,           ///< mc: fault sampling + telemetry corruption
  kMcTelemetry,             ///< mc: margin bookkeeping + trace recording
  kBtiBatchEvolve,          ///< bti: one whole-population batch aging step
  kCount,                   // sentinel
};

const char* to_string(Kernel kernel);

inline constexpr int kKernelCount = static_cast<int>(Kernel::kCount);

namespace detail {
struct KernelSlot {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
};
inline std::atomic<bool> g_profiling{false};
inline std::array<KernelSlot, kKernelCount> g_kernel_slots{};

inline std::uint64_t profile_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace detail

inline bool profiling() {
  return detail::g_profiling.load(std::memory_order_relaxed);
}

void enable_profiling(bool on);
void reset_profile();

/// RAII per-kernel timer.  Free (one relaxed load + branch) when
/// profiling is off at construction.
class ScopedKernelTimer {
 public:
  explicit ScopedKernelTimer(Kernel kernel) {
    if (profiling()) {
      kernel_ = kernel;
      begin_ns_ = detail::profile_now_ns();
      active_ = true;
    }
  }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;
  ~ScopedKernelTimer() {
    if (active_) {
      auto& slot = detail::g_kernel_slots[static_cast<std::size_t>(kernel_)];
      slot.calls.fetch_add(1, std::memory_order_relaxed);
      slot.total_ns.fetch_add(detail::profile_now_ns() - begin_ns_,
                              std::memory_order_relaxed);
    }
  }

 private:
  bool active_ = false;
  Kernel kernel_ = Kernel::kTrapEnsembleEvolve;
  std::uint64_t begin_ns_ = 0;
};

/// One kernel's aggregate.
struct KernelProfile {
  Kernel kernel = Kernel::kTrapEnsembleEvolve;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
};

/// Aggregates of every kernel that recorded at least one call.
std::vector<KernelProfile> profile_snapshot();

/// Rendered per-kernel table (calls, total ms, ns/call, share of the
/// instrumented total) — what `ash_lab --profile` prints.
std::string profile_table();

}  // namespace ash::obs
