#pragma once

/// \file flight_recorder.h
/// Crash-safe flight recorder: a fixed-size lock-free ring of structured
/// events that survives the death of its process.
///
/// Metrics answer "how much"; traces answer "where did the time go"; the
/// flight recorder answers the post-mortem question — *what was the daemon
/// doing right before it died?*  A SIGKILLed or wedged `ash_fleetd` leaves
/// no stack trace and no drain-time metrics dump, so the recorder keeps
/// the last `capacity` structured events (state transitions, evictions,
/// shed requests, framing rejections, snapshot writes) in a ring the
/// daemon persists via `util::atomic_write_file` at every durable-state
/// checkpoint and periodically from the poll loop.  After a kill, the
/// newest dump on disk explains the run.
///
/// Cost model, mirroring ScopedKernelTimer: a recorder constructed with
/// capacity 0 is *disabled* — `record()` is one branch, no clock read, no
/// store (enforced by tests/obs/overhead_test.cpp).  An enabled record()
/// is a relaxed fetch_add to claim a slot plus plain stores — lock-free
/// and signal-safe, so a fatal-signal handler may both record and dump.
///
/// The serialized form is a line-oriented text document.  `load()`
/// tolerates torn dumps the way `CheckpointStore` tolerates torn
/// snapshots: a valid prefix parses, the torn tail is dropped — a
/// best-effort dump written from a crashing process is still evidence.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ash::obs {

/// Event vocabulary of the fleet daemon's flight recorder.  Keep
/// `to_string` / `parse_flight_event` in sync when extending.
enum class FlightEventKind : std::uint32_t {
  kDaemonStart = 0,      ///< service constructed (a = resumed sequence)
  kStateGenesis,         ///< no snapshot verified; fresh genesis state
  kStateLoaded,          ///< resumed from a durable snapshot (a = sequence)
  kSnapshotSaved,        ///< durable state written (a = sequence, b = bytes)
  kConnectionAccepted,   ///< a = live connection count after accept
  kConnectionRejected,   ///< over the connection cap
  kEviction,             ///< slow-loris I/O deadline expiry
  kFrameError,           ///< framing violation poisoned a connection
  kRequestShed,          ///< bounded queue overflow (a = request id)
  kMutationApplied,      ///< schedule-sleep applied (a = device, b = seq)
  kMutationReplayed,     ///< idempotent re-ack (a = client, b = request id)
  kDrainBegin,           ///< SIGTERM/SIGINT received, drain started
  kDrainEnd,             ///< drain finished; final snapshot durable
  kFatalSignal,          ///< fatal signal handler fired (a = signal number)
  kCount,                // sentinel
};

const char* to_string(FlightEventKind kind);
/// Parse a to_string name back; returns kCount for unknown names.
FlightEventKind parse_flight_event(std::string_view name);

/// One recorded event.  `t_ms` is milliseconds since the recorder was
/// constructed (host time: the recorder exists to explain real crashes).
struct FlightRecord {
  std::uint64_t seq = 0;  ///< 1-based global event number (never wraps)
  double t_ms = 0.0;
  FlightEventKind kind = FlightEventKind::kDaemonStart;
  std::uint64_t a = 0;  ///< event-specific detail (see FlightEventKind)
  std::uint64_t b = 0;
};

/// Fixed-capacity lock-free event ring.  Thread-safe for concurrent
/// record(); events() tolerates in-flight writers by re-checking each
/// slot's sequence stamp around the copy.
class FlightRecorder {
 public:
  /// capacity 0 disables the recorder entirely (record() = one branch).
  explicit FlightRecorder(std::size_t capacity = 0);

  bool enabled() const { return !slots_.empty(); }
  std::size_t capacity() const { return slots_.size(); }

  void record(FlightEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Total events ever recorded (>= events().size(); old ones wrapped).
  std::uint64_t recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// The retained events, oldest first.
  std::vector<FlightRecord> events() const;

  /// Line-oriented text dump of the current ring.
  std::string serialize() const;

  /// Async-signal-safe dump to an open file descriptor (fatal-signal
  /// path): byte-identical to serialize(), built with stack buffers and
  /// ::write only.  Returns false when a write fails.
  bool write_fd(int fd) const;

  /// Parse a dump.  Torn tails are tolerated: events parse until the
  /// first malformed/truncated line and the rest is dropped.  Throws
  /// std::runtime_error only when `bytes` does not start with a flight
  /// recorder header.
  static std::vector<FlightRecord> load(std::string_view bytes);

  /// Human-readable table of a loaded (or live) event list.
  static std::string render(const std::vector<FlightRecord>& events);

 private:
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  ///< 0 = empty; else the seq
    double t_ms = 0.0;
    std::uint32_t kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  double elapsed_ms() const;

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace ash::obs
