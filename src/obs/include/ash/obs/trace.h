#pragma once

/// \file trace.h
/// Cross-layer tracing for the virtual lab: typed events and RAII spans.
///
/// The paper's whole argument is made by *watching* degradation and
/// recovery unfold over time; the fault-injection and reliability layers
/// (PR 1/PR 2) additionally make dozens of hidden decisions per campaign.
/// This layer makes all of it visible: every phase, measurement, injected
/// fault, retry, quarantine and checkpoint rewind can be recorded as a
/// `TraceEvent` carrying both the *simulated* campaign clock and the host
/// wall clock, and exported as Chrome trace-event JSON (loadable in
/// Perfetto / `chrome://tracing`) or as JSONL for ad-hoc analysis.
///
/// Cost model: a process-global sink pointer (null by default) gates every
/// emission.  With no sink attached the instrumentation is a relaxed
/// atomic load and a predictable branch — hot paths guard string
/// construction behind `if (ash::obs::tracing())`, so idle tracing is
/// near-zero cost (enforced by tests/obs/overhead_test.cpp).
///
/// Time model: trace timestamps live on the *simulated* campaign clock
/// (that is the timeline the physics cares about); host wall time rides
/// along in every event for profiling the simulator itself.  Because the
/// emitting layers (fault injectors, schedulers, reliability manager) do
/// not own the campaign clock, the driving loop publishes it through a
/// thread-local via `set_sim_now()`, and emitters read it back with
/// `sim_now()`.

#include <atomic>
#include <cstdint>

#include "ash/util/units.h"
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ash::obs {

/// Typed event vocabulary.  Spans use kPhase/kRun; the rest are instants.
enum class EventKind {
  kRun = 0,             ///< one whole campaign / mission (span)
  kPhase,               ///< one Table 1 phase attempt (span)
  kPhaseTransition,     ///< campaign advanced to a new phase
  kMeasurement,         ///< one logged sample
  kFaultInjected,       ///< a fault plan event fired (truth or sensor)
  kFaultDetected,       ///< watchdog / manager recognised a fault
  kRetry,               ///< sample retry with simulated-time backoff
  kQuarantine,          ///< core pulled from service (heartbeat or margin)
  kQuarantineRelease,   ///< healed core returned to service
  kFailover,            ///< spare core woken to cover demand
  kCheckpointSave,      ///< campaign state saved at a phase boundary
  kCheckpointRewind,    ///< chip state rewound after a phase abort
  // Fleet-supervision vocabulary (process-level, emitted by ash::fleet).
  kHeartbeatMiss,       ///< worker missed its heartbeat deadline
  kWorkerRestart,       ///< crashed/hung shard worker restarted
  kBackoff,             ///< supervisor waited out a restart backoff
  kWorkerQuarantine,    ///< shard quarantined after repeated strikes
  // Fleet-daemon request path (emitted by fleet::Service / fleet::Client).
  kFleetAccept,         ///< daemon accepted a client connection
  kFleetRequest,        ///< one decoded request, accept→ack (span)
  kFleetApply,          ///< mutation applied to durable state
  kFleetSnapshot,       ///< write-ahead durable snapshot persisted
  kFleetAck,            ///< response frame queued for the client
};

const char* to_string(EventKind kind);

/// One recorded event.  For instants sim_end_s == sim_begin_s.
struct TraceEvent {
  EventKind kind = EventKind::kRun;
  std::string name;      ///< e.g. the phase label or fault channel
  std::string category;  ///< emitting layer, e.g. "tb.phase", "mc.fault"
  Seconds sim_begin_s{0.0};
  Seconds sim_end_s{0.0};
  std::uint64_t wall_begin_ns = 0;
  std::uint64_t wall_end_ns = 0;
  bool span = false;
  int depth = 0;  ///< span nesting depth at emission (0 = top level)
  std::vector<std::pair<std::string, std::string>> args;
};

/// Receiver of trace events.  Implementations must tolerate concurrent
/// `record` calls (the multi-core study may one day shard across threads).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(TraceEvent event) = 0;
};

/// A sink that discards everything — the "enabled but writing nowhere"
/// state used by the overhead guard test.
class NullTraceSink final : public TraceSink {
 public:
  void record(TraceEvent) override {}
};

/// In-memory sink with exporters.  This is what `ash_lab --trace` attaches.
class TraceBuffer final : public TraceSink {
 public:
  void record(TraceEvent event) override;

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t count(EventKind kind) const;

  /// Chrome trace-event format ("traceEvents" array of "X"/"i" phases,
  /// timestamps in microseconds of *simulated* time).  Loadable in
  /// Perfetto and chrome://tracing.
  void write_chrome_json(std::ostream& os) const;

  /// One JSON object per line, all fields, for jq/pandas consumption.
  void write_jsonl(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Serialize one event as a single JSONL line (shared by `TraceBuffer`
/// and `TraceWriter`, and handy for ad-hoc tooling).
void write_jsonl_line(std::ostream& os, const TraceEvent& event);

/// Streaming JSONL sink: events flush to disk in bounded chunks instead
/// of accumulating for the whole run.  A three-year mc mission emits an
/// event stream whose in-memory form dwarfs the simulator state;
/// `TraceWriter` caps resident trace memory at `flush_every` events
/// regardless of mission length (pinned by tests/obs/trace_writer_test).
/// Thread-safe like every sink; the destructor flushes the tail.
class TraceWriter final : public TraceSink {
 public:
  /// Opens `path` for writing (truncates).  `flush_every` is the buffered
  /// event count that triggers a chunk write; clamped to >= 1.
  explicit TraceWriter(const std::string& path, std::size_t flush_every = 256);
  ~TraceWriter() override;

  void record(TraceEvent event) override;

  /// Write out any buffered events now.
  void flush();

  /// False when the underlying stream failed (e.g. unwritable path).
  bool ok() const;

  /// Events already written to the stream (excludes the buffered tail).
  std::uint64_t events_written() const;
  /// High-water mark of the in-memory buffer — the bounded-memory
  /// observable: stays <= flush_every however long the run.
  std::size_t max_buffered() const;

 private:
  void flush_locked();

  mutable std::mutex mu_;
  std::unique_ptr<std::ofstream> os_;
  std::size_t flush_every_;
  std::vector<TraceEvent> buffer_;
  std::uint64_t written_ = 0;
  std::size_t max_buffered_ = 0;
};

namespace detail {
inline std::atomic<TraceSink*> g_trace_sink{nullptr};
inline thread_local double g_sim_now_s = 0.0;
inline thread_local int g_span_depth = 0;
void emit(TraceEvent&& event);
std::uint64_t wall_now_ns();
}  // namespace detail

/// Attach a sink (nullptr detaches; the default is detached).  The sink
/// must outlive every emission; detach before destroying it.
void set_trace_sink(TraceSink* sink);
TraceSink* trace_sink();

/// True when a sink is attached.  Hot paths guard argument construction
/// behind this check.
inline bool tracing() {
  return detail::g_trace_sink.load(std::memory_order_relaxed) != nullptr;
}

/// Publish / read the simulated campaign clock (thread-local, seconds).
inline void set_sim_now(double t_s) { detail::g_sim_now_s = t_s; }
inline double sim_now() { return detail::g_sim_now_s; }

/// Emit an instant event at the current simulated time.  No-op without a
/// sink, but the arguments are still constructed — guard expensive call
/// sites with `if (tracing())`.
void instant(EventKind kind, std::string_view name, std::string_view category,
             std::vector<std::pair<std::string, std::string>> args = {});

/// RAII span.  Opens at construction (simulated begin defaults to
/// `sim_now()`), closes at destruction (simulated end defaults to the
/// then-current `sim_now()`).  Inactive — and free of any allocation —
/// when no sink is attached at construction time.
class Span {
 public:
  Span(EventKind kind, std::string_view name, std::string_view category);
  Span(EventKind kind, std::string_view name, std::string_view category,
       double sim_begin_s);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attach a key/value argument (no-op when inactive).
  void arg(std::string_view key, std::string_view value);
  /// Override the simulated end time (default: sim_now() at destruction).
  void end_at(double sim_end_s);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  bool have_end_ = false;
  double sim_end_s_ = 0.0;
  TraceEvent event_;
};

}  // namespace ash::obs
