#pragma once

/// \file metrics.h
/// Metrics registry: counters, gauges and log-scale histograms.
///
/// Registration (name lookup) takes a mutex and is meant to happen once,
/// at setup; the returned references are stable for the registry's
/// lifetime, and every update through them is a relaxed atomic — the hot
/// path is lock-free and wait-free.  A `snapshot()` reads everything at
/// once into a plain value type that can be rendered, diffed in CI logs
/// (`one_line()`), or written as `key=value` lines.
///
/// The fault/reliability reports of the tb and mc layers publish their
/// final tallies into a registry via `FaultReport::publish` /
/// `ReliabilityReport::publish`, so the metrics snapshot an operator
/// exports and the reports the benches print can never disagree — they
/// are the same integers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ash::obs {

/// Monotonic (or published-snapshot) integer metric.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Overwrite with an externally accumulated tally (report publishing).
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value floating-point metric.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-scale bucket layout: `buckets_per_decade` buckets per decade
/// between `min` and `max`.  Values below `min` land in bucket 0, values
/// at or above `max` in the last bucket — nothing is ever dropped.
struct HistogramOptions {
  double min = 1e-9;
  double max = 1e3;
  int buckets_per_decade = 4;
};

/// Quantile estimate from a log-scale bucket layout: find the bucket where
/// the cumulative count crosses `p * total`, then interpolate *in log
/// space* within it (the buckets are log-uniform, so log interpolation is
/// the layout-consistent choice).  The estimate is clamped to
/// [options.min, options.max] — the first bucket also holds values below
/// `min` and the last also holds values at or above `max`, so the edges
/// are the tightest honest bounds.  Returns NaN when the histogram is
/// empty or `p` is NaN; `p` itself is clamped to [0, 1].
double histogram_quantile(const HistogramOptions& options,
                          const std::vector<std::uint64_t>& buckets, double p);

/// Lock-free histogram with fixed log-scale buckets.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void observe(double value);

  int bucket_count() const { return static_cast<int>(buckets_.size()); }
  /// Bucket index `value` falls into (clamped; NaN observes into bucket 0).
  int bucket_index(double value) const;
  /// Inclusive lower bound of bucket i.
  double bucket_lower_bound(int i) const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::vector<std::uint64_t> bucket_counts() const;
  const HistogramOptions& options() const { return options_; }

  /// Log-interpolated quantile estimate of the observed values (NaN when
  /// empty).  See histogram_quantile for the exact semantics.
  double quantile(double p) const {
    return histogram_quantile(options_, bucket_counts(), p);
  }

 private:
  HistogramOptions options_;
  double log10_min_ = 0.0;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of a registry, for rendering and assertions.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    HistogramOptions options;
    std::vector<std::uint64_t> buckets;

    double quantile(double p) const {
      return histogram_quantile(options, buckets, p);
    }
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted
  std::vector<std::pair<std::string, double>> gauges;           // sorted
  std::vector<HistogramData> histograms;                        // sorted

  /// Counter value by name (0 when absent).
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value by name (NaN when absent).
  double gauge(std::string_view name) const;

  /// Copy holding only the metrics whose name starts with `prefix` (the
  /// scrape-channel filter; "" keeps everything).
  MetricsSnapshot filtered(std::string_view prefix) const;

  /// Single-line `k=v k=v ...` dump (sorted), for diffable CI logs.
  /// Non-empty histograms carry .p50/.p95/.p99 quantile estimates.
  std::string one_line() const;
  /// `key=value` lines, one metric per line (histograms expand to
  /// .count/.sum/.p50/.p95/.p99/.bucketN lines).
  void write(std::ostream& os) const;
  std::string render() const;
};

/// Named metric owner.  Thread-safe; returned references remain valid for
/// the registry's lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, HistogramOptions options = {});

  MetricsSnapshot snapshot() const;
  /// Drop every metric (tests and multi-run tools).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide default registry (what `ash_lab --metrics` snapshots).
Registry& registry();

/// RAII latency timer feeding a histogram in *seconds*.  The histogram
/// pointer is the on/off switch: constructed with nullptr the timer does
/// nothing — no clock read, one branch (enforced by
/// tests/obs/overhead_test.cpp), which is how uninstrumented request paths
/// stay free.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;
  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) {
      histogram_->observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - begin_)
                              .count());
    }
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point begin_{};
};

}  // namespace ash::obs
