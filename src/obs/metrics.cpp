#include "ash/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ash/util/table.h"

namespace ash::obs {

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (!(options_.min > 0.0) || !(options_.max > options_.min) ||
      options_.buckets_per_decade < 1) {
    throw std::invalid_argument(
        "HistogramOptions: need 0 < min < max and buckets_per_decade >= 1");
  }
  log10_min_ = std::log10(options_.min);
  const double decades = std::log10(options_.max) - log10_min_;
  const int n = static_cast<int>(
      std::ceil(decades * options_.buckets_per_decade - 1e-9));
  buckets_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(std::max(1, n)));
}

int Histogram::bucket_index(double value) const {
  if (!(value > options_.min)) return 0;  // also catches NaN
  const int idx = static_cast<int>(
      std::floor((std::log10(value) - log10_min_) *
                 options_.buckets_per_decade));
  return std::clamp(idx, 0, bucket_count() - 1);
}

double Histogram::bucket_lower_bound(int i) const {
  return std::pow(
      10.0, log10_min_ + static_cast<double>(i) / options_.buckets_per_decade);
}

void Histogram::observe(double value) {
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS accumulate (atomic<double>::fetch_add is C++20 but spotty
  // across standard libraries; the loop is equivalent and portable).
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

double histogram_quantile(const HistogramOptions& options,
                          const std::vector<std::uint64_t>& buckets,
                          double p) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0 || std::isnan(p)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  p = std::clamp(p, 0.0, 1.0);
  // Target rank in [1, total]: p = 0 asks for the smallest observation,
  // p = 1 for the largest, everything else linear in between.
  const double target =
      std::max(1.0, p * static_cast<double>(total));
  const double log10_min = std::log10(options.min);
  const double log10_max = std::log10(options.max);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = cum;
    cum += static_cast<double>(buckets[i]);
    if (cum + 1e-9 < target) continue;
    // Log-interpolate within the bucket; the first/last buckets clamp to
    // [min, max] because they also absorb out-of-range observations.
    const double frac = (target - before) / static_cast<double>(buckets[i]);
    const double lo = std::min(
        log10_min + static_cast<double>(i) / options.buckets_per_decade,
        log10_max);
    const double hi = std::min(
        log10_min + static_cast<double>(i + 1) / options.buckets_per_decade,
        log10_max);
    return std::pow(10.0, lo + frac * (hi - lo));
  }
  return options.max;  // unreachable: cum == total >= target by the end
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               HistogramOptions options) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(options))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.name = name;
    d.count = h->count();
    d.sum = h->sum();
    d.options = h->options();
    d.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(d));
  }
  return snap;
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [k, v] : gauges) {
    if (k == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

MetricsSnapshot MetricsSnapshot::filtered(std::string_view prefix) const {
  if (prefix.empty()) return *this;
  MetricsSnapshot out;
  for (const auto& kv : counters) {
    if (kv.first.compare(0, prefix.size(), prefix) == 0) {
      out.counters.push_back(kv);
    }
  }
  for (const auto& kv : gauges) {
    if (kv.first.compare(0, prefix.size(), prefix) == 0) {
      out.gauges.push_back(kv);
    }
  }
  for (const auto& h : histograms) {
    if (h.name.compare(0, prefix.size(), prefix) == 0) {
      out.histograms.push_back(h);
    }
  }
  return out;
}

std::string MetricsSnapshot::one_line() const {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ' ';
    first = false;
  };
  for (const auto& [k, v] : counters) {
    sep();
    os << k << '=' << v;
  }
  for (const auto& [k, v] : gauges) {
    sep();
    os << k << '=' << strformat("%g", v);
  }
  for (const auto& h : histograms) {
    sep();
    os << h.name << ".count=" << h.count << ' ' << h.name
       << ".sum=" << strformat("%g", h.sum);
    if (h.count > 0) {
      os << ' ' << h.name << ".p50=" << strformat("%g", h.quantile(0.50))
         << ' ' << h.name << ".p95=" << strformat("%g", h.quantile(0.95))
         << ' ' << h.name << ".p99=" << strformat("%g", h.quantile(0.99));
    }
  }
  return os.str();
}

void MetricsSnapshot::write(std::ostream& os) const {
  for (const auto& [k, v] : counters) os << k << '=' << v << '\n';
  for (const auto& [k, v] : gauges) {
    os << k << '=' << strformat("%.9g", v) << '\n';
  }
  for (const auto& h : histograms) {
    os << h.name << ".count=" << h.count << '\n';
    os << h.name << ".sum=" << strformat("%.9g", h.sum) << '\n';
    if (h.count > 0) {
      os << h.name << ".p50=" << strformat("%.9g", h.quantile(0.50)) << '\n';
      os << h.name << ".p95=" << strformat("%.9g", h.quantile(0.95)) << '\n';
      os << h.name << ".p99=" << strformat("%.9g", h.quantile(0.99)) << '\n';
    }
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // sparse: only occupied buckets
      os << h.name << ".bucket" << i << '=' << h.buckets[i] << '\n';
    }
  }
}

std::string MetricsSnapshot::render() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace ash::obs
