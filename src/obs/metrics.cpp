#include "ash/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ash/util/table.h"

namespace ash::obs {

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (!(options_.min > 0.0) || !(options_.max > options_.min) ||
      options_.buckets_per_decade < 1) {
    throw std::invalid_argument(
        "HistogramOptions: need 0 < min < max and buckets_per_decade >= 1");
  }
  log10_min_ = std::log10(options_.min);
  const double decades = std::log10(options_.max) - log10_min_;
  const int n = static_cast<int>(
      std::ceil(decades * options_.buckets_per_decade - 1e-9));
  buckets_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(std::max(1, n)));
}

int Histogram::bucket_index(double value) const {
  if (!(value > options_.min)) return 0;  // also catches NaN
  const int idx = static_cast<int>(
      std::floor((std::log10(value) - log10_min_) *
                 options_.buckets_per_decade));
  return std::clamp(idx, 0, bucket_count() - 1);
}

double Histogram::bucket_lower_bound(int i) const {
  return std::pow(
      10.0, log10_min_ + static_cast<double>(i) / options_.buckets_per_decade);
}

void Histogram::observe(double value) {
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS accumulate (atomic<double>::fetch_add is C++20 but spotty
  // across standard libraries; the loop is equivalent and portable).
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               HistogramOptions options) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(options))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.name = name;
    d.count = h->count();
    d.sum = h->sum();
    d.options = h->options();
    d.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(d));
  }
  return snap;
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [k, v] : gauges) {
    if (k == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string MetricsSnapshot::one_line() const {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ' ';
    first = false;
  };
  for (const auto& [k, v] : counters) {
    sep();
    os << k << '=' << v;
  }
  for (const auto& [k, v] : gauges) {
    sep();
    os << k << '=' << strformat("%g", v);
  }
  for (const auto& h : histograms) {
    sep();
    os << h.name << ".count=" << h.count << ' ' << h.name
       << ".sum=" << strformat("%g", h.sum);
  }
  return os.str();
}

void MetricsSnapshot::write(std::ostream& os) const {
  for (const auto& [k, v] : counters) os << k << '=' << v << '\n';
  for (const auto& [k, v] : gauges) {
    os << k << '=' << strformat("%.9g", v) << '\n';
  }
  for (const auto& h : histograms) {
    os << h.name << ".count=" << h.count << '\n';
    os << h.name << ".sum=" << strformat("%.9g", h.sum) << '\n';
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // sparse: only occupied buckets
      os << h.name << ".bucket" << i << '=' << h.buckets[i] << '\n';
    }
  }
}

std::string MetricsSnapshot::render() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace ash::obs
