#include "ash/core/metrics.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ash::core {

Series delay_change_series(const Series& delay, double fresh_delay_s) {
  return delay.mapped([fresh_delay_s](double d) { return d - fresh_delay_s; });
}

Series frequency_degradation_series(const Series& frequency,
                                    double fresh_frequency_hz) {
  if (fresh_frequency_hz <= 0.0) {
    throw std::invalid_argument(
        "frequency_degradation_series: non-positive fresh frequency");
  }
  return frequency.mapped(
      [fresh_frequency_hz](double f) { return 1.0 - f / fresh_frequency_hz; });
}

Series recovered_delay_series(const Series& recovery_delay) {
  if (recovery_delay.empty()) {
    throw std::invalid_argument("recovered_delay_series: empty series");
  }
  const double start = recovery_delay.front().value;
  return recovery_delay.mapped([start](double d) { return start - d; });
}

double recovered_fraction(const Series& recovery_delay,
                          double fresh_delay_s) {
  if (recovery_delay.empty()) {
    throw std::invalid_argument("recovered_fraction: empty series");
  }
  const double stressed = recovery_delay.front().value;
  const double damage = stressed - fresh_delay_s;
  if (damage <= 0.0) {
    throw std::invalid_argument(
        "recovered_fraction: recovery series starts at or below fresh delay");
  }
  const double rd = stressed - recovery_delay.back().value;
  return std::clamp(rd / damage, 0.0, 1.05);
}

double design_margin_relaxed(const Series& recovery_delay,
                             double fresh_delay_s, const MarginSpec& spec) {
  if (spec.guardband_factor <= 0.0) {
    throw std::invalid_argument(
        "design_margin_relaxed: guardband factor must be positive");
  }
  return recovered_fraction(recovery_delay, fresh_delay_s) /
         spec.guardband_factor;
}

CampaignYield campaign_yield(const tb::DataLog& log) {
  CampaignYield y;
  y.total = log.size();
  y.good = log.count_quality(tb::SampleQuality::kGood);
  y.retried = log.count_quality(tb::SampleQuality::kRetried);
  y.suspect = log.count_quality(tb::SampleQuality::kSuspect);
  y.lost = log.count_quality(tb::SampleQuality::kLost);
  return y;
}

}  // namespace ash::core
