#include "ash/core/model_fit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ash/util/optimize.h"
#include "ash/util/stats.h"

namespace ash::core {

namespace {

std::vector<double> values_of(const Series& s) {
  std::vector<double> out;
  out.reserve(s.size());
  for (const auto& sample : s.samples()) out.push_back(sample.value);
  return out;
}

}  // namespace

double StressFit::delta_td(double t_s) const {
  return amplitude_s.value() * std::log1p(t_s / tau_s.value());
}

double RecoveryFit::remaining_fraction(double t2_s) const {
  if (denom_ln <= 0.0) return 1.0;
  const double recovered = std::min(
      1.0,
      std::log1p(acceleration * std::max(0.0, t2_s) / tau_recovery_s.value()) /
          denom_ln);
  return permanent_ratio + (1.0 - permanent_ratio) * (1.0 - recovered);
}

ModelFitter::ModelFitter(bti::ClosedFormParameters priors)
    : priors_(priors) {
  priors_.validate();
}

StressFit ModelFitter::fit_stress(const Series& delay_change) const {
  if (delay_change.size() < 4) {
    throw std::invalid_argument("fit_stress: need at least 4 samples");
  }
  const auto observed = values_of(delay_change);

  // Linear prefit of the amplitude for the prior tau: DeltaTd is linear in
  // ln(1 + t/tau), so an amplitude-only least squares seeds the simplex.
  const double tau0 = priors_.tau_stress_s.value();
  double num = 0.0;
  double den = 0.0;
  for (const auto& s : delay_change.samples()) {
    const double x = std::log1p(s.t / tau0);
    num += x * s.value;
    den += x * x;
  }
  const double amp0 = den > 0.0 ? num / den : 1e-9;

  // Refine (amplitude, log10 tau) jointly.
  const Objective cost = [&](const std::vector<double>& p) {
    const double amp = p[0];
    const double tau = std::pow(10.0, p[1]);
    if (amp <= 0.0 || tau <= 0.0 || !std::isfinite(tau)) return 1e30;
    double acc = 0.0;
    for (const auto& s : delay_change.samples()) {
      const double model = amp * std::log1p(s.t / tau);
      acc += (s.value - model) * (s.value - model);
    }
    return acc;
  };
  const auto result =
      nelder_mead(cost, {std::max(amp0, 1e-15), std::log10(tau0)});

  StressFit fit;
  fit.amplitude_s = Seconds{result.x[0]};
  fit.tau_s = Seconds{std::pow(10.0, result.x[1])};
  fit.converged = result.converged;
  std::vector<double> model;
  model.reserve(delay_change.size());
  for (const auto& s : delay_change.samples()) model.push_back(fit.delta_td(s.t));
  fit.rmse_s = Seconds{rmse(observed, model)};
  fit.r_squared = r_squared(observed, model);
  return fit;
}

RecoveryFit ModelFitter::fit_recovery(const Series& delay_change,
                                      double t1_equiv_s) const {
  if (delay_change.size() < 4) {
    throw std::invalid_argument("fit_recovery: need at least 4 samples");
  }
  if (t1_equiv_s <= 0.0) {
    throw std::invalid_argument("fit_recovery: non-positive stress time");
  }
  const double d0 = delay_change.front().value;
  if (d0 <= 0.0) {
    throw std::invalid_argument(
        "fit_recovery: series must start at a positive delay change");
  }

  RecoveryFit fit;
  fit.tau_recovery_s = priors_.tau_recovery_s;
  fit.denom_ln = std::log1p(t1_equiv_s / priors_.tau_stress_s.value());

  // Fit (log10 acceleration, permanent ratio) against the normalized
  // remaining fraction.
  const double tau_r = fit.tau_recovery_s.value();
  const double denom = fit.denom_ln;
  const Objective cost = [&](const std::vector<double>& p) {
    const double af = std::pow(10.0, p[0]);
    const double perm = p[1];
    if (!std::isfinite(af) || perm < 0.0 || perm >= 1.0) return 1e30;
    double acc = 0.0;
    for (const auto& s : delay_change.samples()) {
      const double recovered =
          std::min(1.0, std::log1p(af * s.t / tau_r) / denom);
      const double model = perm + (1.0 - perm) * (1.0 - recovered);
      const double obs = s.value / d0;
      acc += (obs - model) * (obs - model);
    }
    return acc;
  };
  const auto result = nelder_mead(cost, {2.0, priors_.permanent_ratio});

  fit.acceleration = std::pow(10.0, result.x[0]);
  fit.permanent_ratio = std::clamp(result.x[1], 0.0, 0.999);
  fit.converged = result.converged;

  std::vector<double> observed;
  std::vector<double> model;
  for (const auto& s : delay_change.samples()) {
    observed.push_back(s.value);
    model.push_back(d0 * fit.remaining_fraction(s.t));
  }
  fit.rmse_s = Seconds{rmse(observed, model)};
  fit.r_squared = r_squared(observed, model);
  return fit;
}

}  // namespace ash::core
