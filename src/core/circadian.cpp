#include "ash/core/circadian.h"

#include <algorithm>
#include <stdexcept>

namespace ash::core {

std::vector<CircadianPoint> explore_circadian(
    const CircadianSweepConfig& config) {
  if (config.periods_s.empty() || config.alphas.empty()) {
    throw std::invalid_argument("CircadianSweepConfig: empty grids");
  }
  std::vector<CircadianPoint> out;
  out.reserve(config.periods_s.size() * config.alphas.size());
  for (double period : config.periods_s) {
    for (double alpha : config.alphas) {
      LifetimeConfig lc;
      lc.mission = config.mission;
      lc.policy = Policy::kProactive;
      lc.knobs = config.knobs;
      lc.knobs.active_sleep_ratio = alpha;
      lc.cycle_period_s = Seconds{period};
      lc.horizon_s = config.horizon_s;
      // A margin far above reach: we want the trajectory, not censoring.
      lc.margin_delta_vth_v = Volts{1.0};
      lc.model = config.model;
      const LifetimeResult r = simulate_lifetime(lc);

      CircadianPoint p;
      p.cycle_period_s = Seconds{period};
      p.alpha = alpha;
      p.availability = r.availability;
      p.worst_delta_vth_v = r.worst_delta_vth_v;
      p.end_permanent_v = r.end_permanent_v;
      double mean = 0.0;
      for (const auto& s : r.trace.samples()) mean += s.value;
      p.mean_delta_vth_v = Volts{mean / static_cast<double>(r.trace.size())};
      out.push_back(p);
    }
  }
  return out;
}

std::vector<CircadianPoint> pareto_schedules(
    std::vector<CircadianPoint> points) {
  std::vector<CircadianPoint> frontier;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      const bool strictly_better =
          (other.availability > candidate.availability &&
           other.worst_delta_vth_v <= candidate.worst_delta_vth_v) ||
          (other.availability >= candidate.availability &&
           other.worst_delta_vth_v < candidate.worst_delta_vth_v);
      if (strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const CircadianPoint& a, const CircadianPoint& b) {
              if (a.availability != b.availability) {
                return a.availability < b.availability;
              }
              return a.worst_delta_vth_v < b.worst_delta_vth_v;
            });
  return frontier;
}

}  // namespace ash::core
