#pragma once

/// \file statistical.h
/// Statistical aging prediction across a chip population.
///
/// The TD model the paper builds on was introduced for *statistical* aging
/// prediction (ref. [15]: "Physics Matters: Statistical Aging Prediction
/// under Trapping/Detrapping"), and design margins are set for the tail
/// chip, not the mean chip.  `simulate_population` runs a seeded population
/// of virtual chips (per-chip amplitude and permanent-fraction spread)
/// through a recovery policy and reports the percentile margins a designer
/// would actually budget — which is where accelerated self-healing pays
/// off hardest: healing compresses not just the mean but the tail.

#include <vector>

#include "ash/core/lifetime.h"

namespace ash::core {

/// Population study configuration.
struct PopulationConfig {
  /// Population size and seed (chip i derives its model from seed+i).
  int chips = 100;
  std::uint64_t seed = 0x5747;
  /// Chip-to-chip lognormal sigma of the aging amplitude (beta_ref).
  double amplitude_sigma = 0.10;
  /// Chip-to-chip lognormal sigma of the permanent fraction.
  double permanent_sigma = 0.20;

  /// Scenario: mission profile, policy and schedule (margin field unused).
  MissionProfile mission;
  Policy policy = Policy::kProactive;
  RejuvenationKnobs knobs;
  Seconds cycle_period_s{30.0 * 3600.0};
  Seconds horizon_s{5.0 * 365.25 * 86400.0};
  /// Margin the reactive policy triggers against (other policies are
  /// schedule-driven and ignore it).
  Volts reactive_margin_v{9.5e-3};

  /// Base model the per-chip variants jitter around.
  bti::ClosedFormParameters model =
      bti::ClosedFormParameters::from_td(bti::default_td_parameters());
};

/// Population outcome: the margin (worst-case DeltaVth over the horizon)
/// each chip would require, plus summary percentiles.
struct PopulationResult {
  std::vector<Volts> per_chip_margin_v;  ///< sorted ascending
  Volts mean_v{0.0};
  Volts p50_v{0.0};
  Volts p95_v{0.0};
  Volts p99_v{0.0};
  Volts worst_v{0.0};

  /// Margin at an arbitrary percentile (0..100).
  Volts margin_at(double percentile) const;
};

/// Run the population study.  Deterministic under `seed`.
PopulationResult simulate_population(const PopulationConfig& config);

}  // namespace ash::core
