#pragma once

/// \file circadian.h
/// Virtual circadian rhythm explorer — the paper's closing future-work
/// item: "exploring the prospect of periodic deep rejuvenation on a
/// periodic schedule and developing a virtual circadian rhythm ...  Since
/// the time before the next scheduled deep rejuvenation is known in
/// advance, there is a good opportunity for ... cross-layer optimization."
///
/// `explore_circadian` sweeps the schedule space (cycle period x alpha)
/// under a fixed mission profile and reports, per candidate schedule, the
/// aging metrics a designer trades against availability: the worst-case
/// DeltaVth the design must margin for, the time-average aging (expected
/// performance/power), and the permanent-wear end state.
/// `pareto_schedules` then filters the sweep to the availability-vs-margin
/// Pareto frontier — the menu of defensible design points.

#include <vector>

#include "ash/core/lifetime.h"

namespace ash::core {

/// One candidate schedule's outcome.
struct CircadianPoint {
  Seconds cycle_period_s{0.0};
  double alpha = 0.0;           ///< active/sleep ratio
  double availability = 0.0;    ///< alpha/(1+alpha)
  Volts worst_delta_vth_v{0.0};
  Volts mean_delta_vth_v{0.0};
  Volts end_permanent_v{0.0};
};

/// Sweep configuration.
struct CircadianSweepConfig {
  MissionProfile mission;
  RejuvenationKnobs knobs;  ///< voltage/temperature of the deep sleep
  /// Candidate cycle periods (seconds) and alphas.
  std::vector<double> periods_s = {6.0 * 3600.0, 24.0 * 3600.0,
                                   72.0 * 3600.0, 168.0 * 3600.0};
  std::vector<double> alphas = {2.0, 4.0, 8.0, 16.0};
  /// Horizon over which each schedule is evaluated.
  Seconds horizon_s{3.0 * 365.25 * 86400.0};
  bti::ClosedFormParameters model =
      bti::ClosedFormParameters::from_td(bti::default_td_parameters());
};

/// Evaluate every (period, alpha) candidate.
std::vector<CircadianPoint> explore_circadian(
    const CircadianSweepConfig& config);

/// Availability-vs-worst-aging Pareto frontier of a sweep result, sorted
/// by ascending availability.  A point survives if no other point has both
/// higher availability and lower worst-case aging.
std::vector<CircadianPoint> pareto_schedules(
    std::vector<CircadianPoint> points);

}  // namespace ash::core
