#pragma once

/// \file gnomo.h
/// GNOMO baseline — Gupta & Sapatnekar, "Greater-than-NOMinal Vdd
/// Operation for BTI mitigation" (ref. [12] of the paper).
///
/// GNOMO finishes the same work faster at a boosted supply and then idles
/// (passively unstressed) for the rest of the period: less stress *time*,
/// at the cost of higher stress *voltage* and quadratically higher dynamic
/// energy.  The paper positions accelerated self-healing against exactly
/// this class of during-operation mitigation, so the library ships it as a
/// first-class baseline: `run_gnomo_study` races three strategies —
/// always-on nominal, GNOMO, and nominal + accelerated-recovery sleep —
/// over the same work-per-period schedule and horizon.

#include "ash/bti/closed_form.h"
#include "ash/util/units.h"

namespace ash::core {

/// Study configuration.
struct GnomoConfig {
  Volts nominal_v{1.2};
  /// GNOMO's boosted supply (must exceed nominal).
  Volts boost_v{1.32};
  /// Threshold used by the first-order frequency model f ~ (V - Vth)/V.
  Volts vth_v{0.4};
  /// Work period and the fraction of it the workload occupies at nominal
  /// speed (utilization < 1 leaves slack both strategies exploit).
  Seconds period_s{30.0 * 3600.0};
  double utilization = 0.8;
  /// Die temperature while computing.
  Celsius temp_c{80.0};
  /// Idle/ambient temperature (GNOMO idles passively at 0 V).
  Celsius idle_temp_c{45.0};
  /// Accelerated-recovery sleep conditions for the self-healing arm.
  Volts recovery_voltage_v{-0.3};
  Celsius recovery_temp_c{110.0};
  /// Study horizon.
  Seconds horizon_s{2.0 * 365.25 * 86400.0};
  /// Device model.
  bti::ClosedFormParameters model =
      bti::ClosedFormParameters::from_td(bti::default_td_parameters());
};

/// Outcome of one strategy arm.
struct StrategyOutcome {
  Volts end_delta_vth_v{0.0};
  Volts permanent_v{0.0};
  /// Dynamic energy per period, relative to the always-on nominal arm.
  double energy_ratio = 1.0;
  /// Fraction of each period spent stressed.
  double stress_duty = 1.0;
};

/// All three arms.
struct GnomoStudy {
  StrategyOutcome nominal;       ///< always-on at nominal Vdd
  StrategyOutcome gnomo;         ///< boosted + passive idle
  StrategyOutcome self_healing;  ///< nominal + accelerated-recovery sleep
};

/// Frequency ratio f(boost)/f(nominal) of the first-order delay model.
double gnomo_speedup(const GnomoConfig& config);

/// Run the three-arm study.  Throws std::invalid_argument on bad configs.
GnomoStudy run_gnomo_study(const GnomoConfig& config);

}  // namespace ash::core
