#pragma once

/// \file planner.h
/// Rejuvenation planner: choose the cheapest sleep conditions (voltage,
/// temperature, duration) that meet a recovery target.
///
/// The paper demonstrates that several knob combinations reach "within
/// 90 % of the original margin" (Table 4) — which immediately raises the
/// engineering question its Sec. 6 gestures at: *which* combination should
/// a system use, given that heating costs power, negative rails cost a
/// charge pump, and sleep time costs availability?  `plan_recovery`
/// answers it with an exhaustive knob-grid search against the closed-form
/// recovery law (monotone in duration, so the minimal sleep per knob point
/// is found by bisection).

#include "ash/bti/closed_form.h"
#include "ash/util/units.h"

namespace ash::core {

/// Planning inputs.
struct PlannerConfig {
  /// Stress exposure to heal, in stress-reference-equivalent time.
  Seconds t1_equiv_s{24.0 * 3600.0};
  /// Required recovered fraction of the reversible+permanent damage.
  double target_recovered_fraction = 0.9;
  /// Longest sleep the schedule tolerates.
  Seconds max_sleep_s{6.0 * 3600.0};
  /// Shortest schedulable sleep: thermal ramp time plus scheduling
  /// granularity.  Without it the log-law physics always picks a
  /// minutes-long max-knob blast, which no real chamber or power domain
  /// can deliver.
  Seconds min_sleep_s{1800.0};

  /// Knob bounds (safety interlocks of Sec. 6.1).
  Volts min_voltage_v{-0.45};
  Volts max_voltage_v{0.0};
  Celsius ambient_c{20.0};
  Celsius max_temp_c{110.0};
  /// Grid resolution per knob.
  int voltage_steps = 10;
  int temp_steps = 10;

  /// Cost model.  Running costs (relative units per second of sleep):
  /// heating above ambient, negative-bias generation, and the opportunity
  /// cost of sleeping at all.
  double heat_cost_per_c = 0.02;
  double bias_cost_per_v = 8.0;
  double time_cost = 1.0;
  /// Fixed per-episode engagement costs: ramping the die/chamber up costs
  /// energy proportional to the temperature lift regardless of how short
  /// the sleep is, and using the negative rail at all means provisioning a
  /// charge pump (Sec. 6.1's implementation-feasibility challenge).
  /// These make interior knob settings competitive with the max-everything
  /// corner.
  double heat_engage_cost_per_c = 2.0;
  double bias_engage_cost = 150.0;

  /// Device model.
  bti::ClosedFormParameters model =
      bti::ClosedFormParameters::from_td(bti::default_td_parameters());
};

/// Planner output.
struct RecoveryPlan {
  bool feasible = false;
  Volts voltage_v{0.0};
  Celsius temp_c{0.0};
  Seconds sleep_s{0.0};
  double cost = 0.0;
  /// Recovered fraction the plan achieves (>= target when feasible).
  double achieved_fraction = 0.0;
};

/// Sleep-cost of a candidate (exposed for tests and ablation benches).
double plan_cost(const PlannerConfig& config, Volts voltage, Celsius temp,
                 Seconds sleep);

/// Find the cheapest feasible plan; `feasible == false` if no knob setting
/// within bounds reaches the target inside max_sleep_s.
RecoveryPlan plan_recovery(const PlannerConfig& config);

}  // namespace ash::core
