#pragma once

/// \file model_fit.h
/// Parameter extraction — "beta, A and C are fitting parameters and can be
/// extracted from measurement results" (Eq. (10)) — and the recovery-law
/// fit used for the model overlays of Figures 5–8.  Table 3 of the paper
/// is the output of exactly this procedure run on the measured campaign.

#include "ash/bti/closed_form.h"
#include "ash/util/series.h"
#include "ash/util/units.h"

namespace ash::core {

/// Fitted stress law: DeltaTd(t) = amplitude * ln(1 + t / tau) — Eq. (10)
/// with beta*A folded into one amplitude and C = 1/tau.
struct StressFit {
  Seconds amplitude_s{0.0};  ///< beta*A, in seconds of delay per ln-unit
  Seconds tau_s{0.0};        ///< 1/C
  Seconds rmse_s{0.0};       ///< residual against the fitted series
  double r_squared = 0.0;    ///< goodness of fit
  bool converged = false;

  /// Evaluate the fitted law at stress time t.
  double delta_td(double t_s) const;
};

/// Fitted recovery law: remaining(t2) = perm + (1 - perm) *
/// max(0, 1 - ln(1 + AF * t2 / tau_r) / denom), the shape of Eq. (11).
struct RecoveryFit {
  double acceleration = 1.0;   ///< AF — fitted emission acceleration
  double permanent_ratio = 0.0;  ///< unrecoverable share
  Seconds tau_recovery_s{1.0};   ///< fixed from the model prior
  double denom_ln = 1.0;         ///< ln(1 + t1_equiv/tau_s), fixed from data
  Seconds rmse_s{0.0};
  double r_squared = 0.0;
  bool converged = false;

  /// Remaining fraction of the stress damage after t2 of recovery.
  double remaining_fraction(double t2_s) const;
};

/// Extracts closed-form parameters from measured series, exactly as the
/// paper extracts Table 3 from its chip measurements.
class ModelFitter {
 public:
  /// `priors` anchor the constants the data cannot identify (tau_recovery,
  /// reference conditions); defaults derive from the calibrated TD set.
  explicit ModelFitter(bti::ClosedFormParameters priors =
                           bti::ClosedFormParameters::from_td(
                               bti::default_td_parameters()));

  /// Fit the stress law to a DeltaTd-vs-time series (seconds vs seconds).
  /// Requires >= 4 samples spanning a non-trivial time range.
  StressFit fit_stress(const Series& delay_change) const;

  /// Fit the recovery law to a DeltaTd-vs-time series taken during a
  /// recovery phase (t = 0 at the start of recovery; first value is the
  /// end-of-stress damage).  `t1_equiv_s` is the stress-phase duration in
  /// stress-reference-equivalent seconds.
  RecoveryFit fit_recovery(const Series& delay_change, double t1_equiv_s) const;

  const bti::ClosedFormParameters& priors() const { return priors_; }

 private:
  bti::ClosedFormParameters priors_;
};

}  // namespace ash::core
