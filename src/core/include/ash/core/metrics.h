#pragma once

/// \file metrics.h
/// The paper's evaluation metrics.
///
/// * **Delay change**  DeltaTd(t) = Td(t) - Td(fresh)  — Figures 5 and 8.
/// * **Frequency degradation**  1 - f(t)/f(fresh)      — Figure 4.
/// * **Recovered delay** (Eq. (16))
///     RD(t2) = Td(t1) - Td(t2) = DeltaTd(t1) - DeltaTd(t2),
///   measured from the end of the stress phase — Figures 6 and 7.  The
///   paper uses RD because fresh frequencies differ chip to chip.
/// * **Recovered fraction**  RD(t2) / DeltaTd(t1): "bring stressed chips
///   back to within 90 % of their original margin" = recovered fraction
///   >= 0.9.
/// * **Design-margin-relaxed parameter** (Table 4): RD(t2) / M where the
///   design margin M = guardband_factor * DeltaTd(t1) is the delay
///   guardband a designer budgets against end-of-stress aging.  With the
///   conventional 25 % guardband (factor 1.25), a 90 % recovered fraction
///   reads as a 72 % margin-relaxed parameter — reproducing both of the
///   paper's headline numbers from one consistent definition.

#include <cstddef>

#include "ash/tb/data_log.h"
#include "ash/util/series.h"

namespace ash::core {

/// DeltaTd(t) series from a measured delay series and the fresh baseline
/// delay (seconds).
Series delay_change_series(const Series& delay, double fresh_delay_s);

/// Fractional frequency degradation series: 1 - f(t)/f_fresh.
Series frequency_degradation_series(const Series& frequency,
                                    double fresh_frequency_hz);

/// Recovered delay (Eq. (16)) from the delay series of a recovery phase:
/// RD(t2) = Td(phase start) - Td(t2).  Precondition: non-empty.
Series recovered_delay_series(const Series& recovery_delay);

/// Fraction of the stress-phase damage recovered by the end of the
/// recovery series: RD(end) / DeltaTd(t1), where DeltaTd(t1) =
/// Td(recovery start) - fresh delay.  Clamped to [0, 1.05] (counter noise
/// can push slightly past 1).
double recovered_fraction(const Series& recovery_delay, double fresh_delay_s);

/// Margin bookkeeping for the design-margin-relaxed parameter.
struct MarginSpec {
  /// M = guardband_factor * DeltaTd(stress end).  1.25 = designing with a
  /// 25 % cushion above the accelerated-stress end-of-life shift.
  double guardband_factor = 1.25;
};

/// Design-margin-relaxed parameter (Table 4): RD(end) / M.
double design_margin_relaxed(const Series& recovery_delay,
                             double fresh_delay_s,
                             const MarginSpec& spec = {});

/// Data yield of a (possibly fault-injected) campaign: how many logged
/// samples came back clean, retried, suspect or lost.  The series-based
/// metrics above already consume flagged logs correctly (kLost samples are
/// excluded from every series); the yield quantifies how much the lab's
/// fault handling had to work for the numbers.
struct CampaignYield {
  std::size_t total = 0;
  std::size_t good = 0;
  std::size_t retried = 0;
  std::size_t suspect = 0;
  std::size_t lost = 0;

  /// Fraction of samples that carry a measurement (everything but lost).
  double usable_fraction() const {
    return total == 0 ? 1.0
                      : static_cast<double>(total - lost) /
                            static_cast<double>(total);
  }
};

/// Tally the quality flags of a campaign log.
CampaignYield campaign_yield(const tb::DataLog& log);

}  // namespace ash::core
