#pragma once

/// \file lifetime.h
/// Long-horizon scheduling study: proactive vs. reactive vs. passive
/// recovery (Sec. 2.2 of the paper) and the Fig. 9 wearout-vs-accelerated-
/// recovery cycles.
///
/// The simulator evolves a `bti::ClosedFormAger` (O(1) per schedule
/// segment) through years of mission time under one of four policies and
/// reports the metrics the paper argues about: time-to-margin lifetime,
/// availability (active fraction), worst-case and end-state aging, and the
/// number/predictability of recovery events.

#include <string>

#include "ash/bti/closed_form.h"
#include "ash/util/series.h"

namespace ash::core {

/// Recovery scheduling policy (Sec. 2.2).
enum class Policy {
  /// Never sleeps; ages continuously (the design-for-EOL baseline).
  kNoRecovery,
  /// Sleeps on the proactive schedule, but sleep is mere inactivity:
  /// power-gated at ambient temperature (the pre-paper status quo).
  kPassiveSleep,
  /// Sleeps only when aging crosses a threshold fraction of the margin,
  /// then applies accelerated recovery until a low-water mark.
  kReactive,
  /// Scheduled (circadian) accelerated recovery ahead of any threshold.
  kProactive,
};

/// Printable policy name.
std::string to_string(Policy policy);

/// Accelerated-recovery knob settings (the paper's sleep conditions).
struct RejuvenationKnobs {
  Volts voltage_v{-0.3};
  Celsius temp_c{110.0};
  /// alpha — active/sleep time ratio of the proactive schedule.
  double active_sleep_ratio = 4.0;
};

/// Mission-mode operating point.
struct MissionProfile {
  Volts supply_v{1.2};
  Celsius temp_c{80.0};
  /// Switching activity of mission workloads.
  double activity_duty = 0.5;
};

/// Full study configuration.
struct LifetimeConfig {
  MissionProfile mission;
  Policy policy = Policy::kProactive;
  RejuvenationKnobs knobs;
  /// Ambient (idle) temperature for passive sleep.
  Celsius passive_sleep_temp_c{45.0};
  /// One active+sleep cycle of the proactive/passive schedules.
  Seconds cycle_period_s{30.0 * 3600.0};
  /// Reactive policy: start recovery at this fraction of the margin...
  double reactive_high_water = 0.9;
  /// ...and return to service at this fraction.
  double reactive_low_water = 0.3;
  /// Aging budget: the DeltaVth the design margins for.
  Volts margin_delta_vth_v{25e-3};
  /// Simulated horizon.
  Seconds horizon_s{10.0 * 365.25 * 86400.0};
  /// Points in the recorded trace.
  int trace_points = 400;
  /// Device model.
  bti::ClosedFormParameters model =
      bti::ClosedFormParameters::from_td(bti::default_td_parameters());
};

/// Study outcome.
struct LifetimeResult {
  /// First time the *active* device exceeds the margin; horizon_s + cycle
  /// if never exceeded (right-censored).
  Seconds time_to_margin_s{0.0};
  bool margin_exceeded = false;
  /// Fraction of the horizon spent active (throughput proxy).
  double availability = 1.0;
  /// Number of recovery episodes taken.
  int recovery_events = 0;
  Volts worst_delta_vth_v{0.0};
  Volts end_delta_vth_v{0.0};
  Volts end_permanent_v{0.0};
  /// DeltaVth(t) trace for plotting (Fig. 9 style).
  Series trace;
};

/// Run the study.  Throws std::invalid_argument on nonsensical configs.
LifetimeResult simulate_lifetime(const LifetimeConfig& config);

}  // namespace ash::core
