#pragma once

/// \file abb.h
/// Adaptive body-bias (ABB) baseline — the "accept, track, adapt" school
/// the paper positions itself against (refs. [9]-[11]; Qi & Stan's "NBTI
/// Resilient Circuits Using Adaptive Body Biasing" among them).
///
/// ABB compensates aging-induced Vth drift with forward body bias: the
/// device keeps meeting timing, but "adaptation is no panacea since aging
/// fundamentally worsens the system metrics" (Sec. 1) — every millivolt of
/// compensation is paid in exponentially growing subthreshold leakage, and
/// the bias range eventually runs out.  `run_abb_study` quantifies exactly
/// that against a no-mitigation arm and an accelerated-self-healing arm.

#include "ash/bti/closed_form.h"
#include "ash/util/series.h"
#include "ash/util/units.h"

namespace ash::core {

/// Study configuration.
struct AbbConfig {
  /// Mission operating point.
  Volts supply_v{1.2};
  Celsius temp_c{80.0};
  double activity_duty = 0.5;
  /// Fraction of Vth drift one volt of forward body bias cancels (the
  /// body-effect coefficient), and the available bias range.
  double body_effect = 0.25;
  Volts max_body_bias_v{0.45};
  /// Subthreshold slope factor n * vT: leakage multiplies by
  /// exp(delta_vth_compensated / subthreshold_swing_v).
  Volts subthreshold_swing_v{0.039};
  /// ABB controller period (re-tune cadence) — also the self-healing arm's
  /// cycle period.
  Seconds cycle_period_s{30.0 * 3600.0};
  /// Self-healing arm: alpha and sleep conditions.
  double alpha = 4.0;
  Volts sleep_voltage_v{-0.3};
  Celsius sleep_temp_c{110.0};
  /// Horizon.
  Seconds horizon_s{5.0 * 365.25 * 86400.0};
  /// Device model.
  bti::ClosedFormParameters model =
      bti::ClosedFormParameters::from_td(bti::default_td_parameters());
};

/// One arm's outcome.
struct AbbArm {
  /// Uncompensated Vth drift at the end of the horizon.
  Volts end_delta_vth_v{0.0};
  /// Residual (post-compensation) drift the timing path actually sees.
  Volts end_residual_vth_v{0.0};
  /// Final applied body bias (ABB arm only).
  Volts end_body_bias_v{0.0};
  /// True once the controller hit its bias rail (compensation exhausted).
  bool bias_exhausted = false;
  /// Time-average leakage-power multiplier relative to fresh.
  double mean_leakage_ratio = 1.0;
  /// Work availability (1 for ABB/no-mitigation; alpha/(1+alpha) for the
  /// self-healing arm).
  double availability = 1.0;
  /// Residual-drift trace for plotting.
  Series residual_trace;
};

/// All three arms.
struct AbbStudy {
  AbbArm none;          ///< no mitigation
  AbbArm abb;           ///< perfect-tracking adaptive body bias
  AbbArm self_healing;  ///< proactive accelerated recovery
};

/// Leakage multiplier for a given compensated Vth reduction.
double leakage_ratio(const AbbConfig& config, double vth_reduction_v);

/// Run the three-arm study.
AbbStudy run_abb_study(const AbbConfig& config);

}  // namespace ash::core
