#include "ash/core/statistical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ash/util/random.h"
#include "ash/util/stats.h"

namespace ash::core {

Volts PopulationResult::margin_at(double percentile) const {
  if (per_chip_margin_v.empty()) {
    throw std::logic_error("PopulationResult: empty population");
  }
  std::vector<double> values;
  values.reserve(per_chip_margin_v.size());
  for (const Volts v : per_chip_margin_v) values.push_back(v.value());
  return Volts{ash::percentile(values, percentile)};
}

PopulationResult simulate_population(const PopulationConfig& config) {
  if (config.chips < 1) {
    throw std::invalid_argument("PopulationConfig: need >= 1 chip");
  }
  if (config.amplitude_sigma < 0.0 || config.permanent_sigma < 0.0) {
    throw std::invalid_argument("PopulationConfig: negative sigma");
  }

  PopulationResult result;
  result.per_chip_margin_v.reserve(static_cast<std::size_t>(config.chips));
  for (int i = 0; i < config.chips; ++i) {
    Rng rng(derive_seed(config.seed, static_cast<std::uint64_t>(i)));
    bti::ClosedFormParameters chip_model = config.model;
    chip_model.beta_ref_v =
        chip_model.beta_ref_v * std::exp(rng.normal(0.0, config.amplitude_sigma));
    chip_model.permanent_ratio = std::min(
        0.5, chip_model.permanent_ratio *
                 std::exp(rng.normal(0.0, config.permanent_sigma)));

    LifetimeConfig lc;
    lc.mission = config.mission;
    lc.policy = config.policy;
    lc.knobs = config.knobs;
    lc.cycle_period_s = config.cycle_period_s;
    lc.horizon_s = config.horizon_s;
    // Non-reactive policies are schedule-driven: disable the margin so the
    // run is never censored.  Reactive needs a real threshold to react to.
    lc.margin_delta_vth_v = config.policy == Policy::kReactive
                                ? config.reactive_margin_v
                                : Volts{1.0};
    lc.trace_points = 2;          // keep memory flat; worst is tracked anyway
    lc.model = chip_model;
    const LifetimeResult r = simulate_lifetime(lc);
    result.per_chip_margin_v.push_back(r.worst_delta_vth_v);
  }

  std::sort(result.per_chip_margin_v.begin(), result.per_chip_margin_v.end());
  std::vector<double> sorted_values;
  sorted_values.reserve(result.per_chip_margin_v.size());
  for (const Volts v : result.per_chip_margin_v) {
    sorted_values.push_back(v.value());
  }
  result.mean_v = Volts{mean(sorted_values)};
  result.p50_v = result.margin_at(50.0);
  result.p95_v = result.margin_at(95.0);
  result.p99_v = result.margin_at(99.0);
  result.worst_v = result.per_chip_margin_v.back();
  return result;
}

}  // namespace ash::core
