#include "ash/core/abb.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ash::core {

namespace {

void validate(const AbbConfig& c) {
  if (c.body_effect <= 0.0 || c.body_effect > 1.0) {
    throw std::invalid_argument("AbbConfig: body_effect must be in (0, 1]");
  }
  if (c.max_body_bias_v <= Volts{0.0} || c.subthreshold_swing_v <= Volts{0.0}) {
    throw std::invalid_argument("AbbConfig: non-positive bias/swing");
  }
  if (c.cycle_period_s <= Seconds{0.0} || c.horizon_s <= c.cycle_period_s) {
    throw std::invalid_argument("AbbConfig: bad period/horizon");
  }
  if (c.alpha <= 0.0) {
    throw std::invalid_argument("AbbConfig: alpha must be positive");
  }
}

}  // namespace

double leakage_ratio(const AbbConfig& config, double vth_reduction_v) {
  return std::exp(std::max(0.0, vth_reduction_v) /
                  config.subthreshold_swing_v.value());
}

AbbStudy run_abb_study(const AbbConfig& c) {
  validate(c);
  const auto active = bti::ac_stress(c.supply_v, c.temp_c, c.activity_duty);
  const auto sleep = bti::recovery(c.sleep_voltage_v, c.sleep_temp_c);
  const double active_span =
      c.cycle_period_s.value() * c.alpha / (1.0 + c.alpha);
  const double sleep_span = c.cycle_period_s.value() - active_span;
  const auto cycles = static_cast<long>(c.horizon_s / c.cycle_period_s);

  bti::ClosedFormAger ager_none(c.model);
  bti::ClosedFormAger ager_abb(c.model);
  bti::ClosedFormAger ager_heal(c.model);

  AbbStudy study;
  study.none.residual_trace.set_name("no-mitigation");
  study.abb.residual_trace.set_name("abb");
  study.self_healing.residual_trace.set_name("self-healing");

  double leak_none = 0.0;
  double leak_abb = 0.0;
  double leak_heal = 0.0;
  double bias = 0.0;

  for (long k = 0; k < cycles; ++k) {
    const double t_end = static_cast<double>(k + 1) * c.cycle_period_s.value();

    // Arm 1: no mitigation — full drift hits the timing path.
    ager_none.evolve(active, c.cycle_period_s);
    study.none.residual_trace.append(t_end, ager_none.delta_vth());
    leak_none += 1.0;

    // Arm 2: ABB — runs continuously; each cycle the controller re-tunes
    // the body bias to cancel the measured drift (perfect tracking).
    ager_abb.evolve(active, c.cycle_period_s);
    const double needed_bias =
        ager_abb.delta_vth() / c.body_effect;
    bias = std::min(needed_bias, c.max_body_bias_v.value());
    if (needed_bias > c.max_body_bias_v.value()) study.abb.bias_exhausted = true;
    const double compensated = bias * c.body_effect;
    study.abb.residual_trace.append(t_end,
                                    ager_abb.delta_vth() - compensated);
    leak_abb += leakage_ratio(c, compensated);

    // Arm 3: accelerated self-healing — the drift itself is removed.
    ager_heal.evolve(active, Seconds{active_span});
    ager_heal.evolve(sleep, Seconds{sleep_span});
    study.self_healing.residual_trace.append(t_end, ager_heal.delta_vth());
    leak_heal += 1.0;  // no Vth compensation => fresh-like leakage
  }

  const double n = static_cast<double>(cycles);
  study.none.end_delta_vth_v = Volts{ager_none.delta_vth()};
  study.none.end_residual_vth_v = Volts{ager_none.delta_vth()};
  study.none.mean_leakage_ratio = leak_none / n;
  study.none.availability = 1.0;

  study.abb.end_delta_vth_v = Volts{ager_abb.delta_vth()};
  study.abb.end_body_bias_v = Volts{bias};
  study.abb.end_residual_vth_v =
      Volts{ager_abb.delta_vth() - bias * c.body_effect};
  study.abb.mean_leakage_ratio = leak_abb / n;
  study.abb.availability = 1.0;

  study.self_healing.end_delta_vth_v = Volts{ager_heal.delta_vth()};
  study.self_healing.end_residual_vth_v = Volts{ager_heal.delta_vth()};
  study.self_healing.mean_leakage_ratio = leak_heal / n;
  study.self_healing.availability = c.alpha / (1.0 + c.alpha);

  return study;
}

}  // namespace ash::core
