#include "ash/core/planner.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ash::core {

namespace {

void validate(const PlannerConfig& c) {
  if (c.t1_equiv_s <= Seconds{0.0} || c.max_sleep_s <= Seconds{0.0}) {
    throw std::invalid_argument("PlannerConfig: non-positive times");
  }
  if (c.min_sleep_s < Seconds{0.0} || c.min_sleep_s > c.max_sleep_s) {
    throw std::invalid_argument("PlannerConfig: bad min_sleep_s");
  }
  if (c.target_recovered_fraction <= 0.0 ||
      c.target_recovered_fraction > 1.0) {
    throw std::invalid_argument("PlannerConfig: target must be in (0, 1]");
  }
  if (c.min_voltage_v > c.max_voltage_v || c.ambient_c > c.max_temp_c) {
    throw std::invalid_argument("PlannerConfig: inverted knob bounds");
  }
  if (c.voltage_steps < 1 || c.temp_steps < 1) {
    throw std::invalid_argument("PlannerConfig: need >= 1 grid step per knob");
  }
}

}  // namespace

double plan_cost(const PlannerConfig& config, Volts voltage, Celsius temp,
                 Seconds sleep) {
  const double lift_c = std::max(0.0, temp.value() - config.ambient_c.value());
  const double overdrive_v = std::max(0.0, -voltage.value());
  const double running =
      sleep.value() * (config.time_cost + config.heat_cost_per_c * lift_c +
                       config.bias_cost_per_v * overdrive_v);
  const double engage =
      config.heat_engage_cost_per_c * lift_c +
      (overdrive_v > 0.0 ? config.bias_engage_cost : 0.0);
  return running + engage;
}

RecoveryPlan plan_recovery(const PlannerConfig& config) {
  validate(config);
  const bti::ClosedFormModel model(config.model);
  const double remaining_target = 1.0 - config.target_recovered_fraction;

  RecoveryPlan best;
  best.cost = std::numeric_limits<double>::infinity();

  for (int vi = 0; vi <= config.voltage_steps; ++vi) {
    const double v = config.min_voltage_v.value() +
                     (config.max_voltage_v.value() - config.min_voltage_v.value()) * vi /
                         config.voltage_steps;
    for (int ti = 0; ti <= config.temp_steps; ++ti) {
      const double t_c = config.ambient_c.value() +
                         (config.max_temp_c.value() - config.ambient_c.value()) * ti /
                             config.temp_steps;
      const auto cond = bti::recovery(Volts{v}, Celsius{t_c});
      // Feasible at all within the sleep budget?
      if (model.remaining_fraction(config.t1_equiv_s,
                                   config.max_sleep_s, cond) >
          remaining_target) {
        continue;
      }
      // Minimal sleep by bisection (remaining is monotone non-increasing).
      double lo = 0.0;
      double hi = config.max_sleep_s.value();
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (model.remaining_fraction(config.t1_equiv_s,
                                     Seconds{mid}, cond) > remaining_target) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const double sleep = std::max(hi, config.min_sleep_s.value());
      const double cost =
          plan_cost(config, Volts{v}, Celsius{t_c}, Seconds{sleep});
      if (cost < best.cost) {
        best.feasible = true;
        best.voltage_v = Volts{v};
        best.temp_c = Celsius{t_c};
        best.sleep_s = Seconds{sleep};
        best.cost = cost;
        best.achieved_fraction =
            1.0 - model.remaining_fraction(config.t1_equiv_s,
                                           Seconds{sleep}, cond);
      }
    }
  }

  if (!best.feasible) {
    best.cost = 0.0;
  }
  return best;
}

}  // namespace ash::core
