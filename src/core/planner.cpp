#include "ash/core/planner.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ash::core {

namespace {

void validate(const PlannerConfig& c) {
  if (c.t1_equiv_s <= 0.0 || c.max_sleep_s <= 0.0) {
    throw std::invalid_argument("PlannerConfig: non-positive times");
  }
  if (c.min_sleep_s < 0.0 || c.min_sleep_s > c.max_sleep_s) {
    throw std::invalid_argument("PlannerConfig: bad min_sleep_s");
  }
  if (c.target_recovered_fraction <= 0.0 ||
      c.target_recovered_fraction > 1.0) {
    throw std::invalid_argument("PlannerConfig: target must be in (0, 1]");
  }
  if (c.min_voltage_v > c.max_voltage_v || c.ambient_c > c.max_temp_c) {
    throw std::invalid_argument("PlannerConfig: inverted knob bounds");
  }
  if (c.voltage_steps < 1 || c.temp_steps < 1) {
    throw std::invalid_argument("PlannerConfig: need >= 1 grid step per knob");
  }
}

}  // namespace

double plan_cost(const PlannerConfig& config, double voltage_v, double temp_c,
                 double sleep_s) {
  const double lift_c = std::max(0.0, temp_c - config.ambient_c);
  const double overdrive_v = std::max(0.0, -voltage_v);
  const double running =
      sleep_s * (config.time_cost + config.heat_cost_per_c * lift_c +
                 config.bias_cost_per_v * overdrive_v);
  const double engage =
      config.heat_engage_cost_per_c * lift_c +
      (overdrive_v > 0.0 ? config.bias_engage_cost : 0.0);
  return running + engage;
}

RecoveryPlan plan_recovery(const PlannerConfig& config) {
  validate(config);
  const bti::ClosedFormModel model(config.model);
  const double remaining_target = 1.0 - config.target_recovered_fraction;

  RecoveryPlan best;
  best.cost = std::numeric_limits<double>::infinity();

  for (int vi = 0; vi <= config.voltage_steps; ++vi) {
    const double v = config.min_voltage_v +
                     (config.max_voltage_v - config.min_voltage_v) * vi /
                         config.voltage_steps;
    for (int ti = 0; ti <= config.temp_steps; ++ti) {
      const double t_c = config.ambient_c +
                         (config.max_temp_c - config.ambient_c) * ti /
                             config.temp_steps;
      const auto cond = bti::recovery(Volts{v}, Celsius{t_c});
      // Feasible at all within the sleep budget?
      if (model.remaining_fraction(Seconds{config.t1_equiv_s},
                                   Seconds{config.max_sleep_s}, cond) >
          remaining_target) {
        continue;
      }
      // Minimal sleep by bisection (remaining is monotone non-increasing).
      double lo = 0.0;
      double hi = config.max_sleep_s;
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (model.remaining_fraction(Seconds{config.t1_equiv_s},
                                     Seconds{mid}, cond) > remaining_target) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const double sleep = std::max(hi, config.min_sleep_s);
      const double cost = plan_cost(config, v, t_c, sleep);
      if (cost < best.cost) {
        best.feasible = true;
        best.voltage_v = v;
        best.temp_c = t_c;
        best.sleep_s = sleep;
        best.cost = cost;
        best.achieved_fraction =
            1.0 - model.remaining_fraction(Seconds{config.t1_equiv_s},
                                           Seconds{sleep}, cond);
      }
    }
  }

  if (!best.feasible) {
    best.cost = 0.0;
  }
  return best;
}

}  // namespace ash::core
