#include "ash/core/lifetime.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/util/constants.h"

namespace ash::core {

namespace {

void validate(const LifetimeConfig& c) {
  if (c.cycle_period_s <= Seconds{0.0}) {
    throw std::invalid_argument("LifetimeConfig: cycle period must be > 0");
  }
  if (c.knobs.active_sleep_ratio <= 0.0) {
    throw std::invalid_argument("LifetimeConfig: alpha must be > 0");
  }
  if (c.margin_delta_vth_v <= Volts{0.0}) {
    throw std::invalid_argument("LifetimeConfig: margin must be > 0");
  }
  if (c.horizon_s <= Seconds{0.0}) {
    throw std::invalid_argument("LifetimeConfig: horizon must be > 0");
  }
  if (c.reactive_low_water >= c.reactive_high_water ||
      c.reactive_low_water < 0.0 || c.reactive_high_water > 1.0) {
    throw std::invalid_argument("LifetimeConfig: bad reactive thresholds");
  }
  if (c.trace_points < 2) {
    throw std::invalid_argument("LifetimeConfig: need >= 2 trace points");
  }
}

}  // namespace

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kNoRecovery: return "no-recovery";
    case Policy::kPassiveSleep: return "passive-sleep";
    case Policy::kReactive: return "reactive";
    case Policy::kProactive: return "proactive";
  }
  return "?";
}

LifetimeResult simulate_lifetime(const LifetimeConfig& config) {
  validate(config);

  bti::ClosedFormAger ager(config.model);
  const bti::OperatingCondition active = bti::ac_stress(
      config.mission.supply_v, config.mission.temp_c,
      config.mission.activity_duty);
  const bti::OperatingCondition accel_sleep =
      bti::recovery(config.knobs.voltage_v, config.knobs.temp_c);
  const bti::OperatingCondition passive_sleep =
      bti::recovery(Volts{0.0}, config.passive_sleep_temp_c);

  const double alpha = config.knobs.active_sleep_ratio;
  const double active_span =
      config.cycle_period_s.value() * alpha / (1.0 + alpha);
  const double sleep_span = config.cycle_period_s.value() - active_span;

  LifetimeResult result;
  result.trace.set_name(to_string(config.policy));

  double t = 0.0;
  double active_time = 0.0;
  const double trace_every =
      config.horizon_s.value() / static_cast<double>(config.trace_points - 1);
  double next_trace = 0.0;

  const auto record = [&](double now) {
    while (next_trace <= now + 1e-9 &&
           next_trace <= config.horizon_s.value() + 1e-9) {
      result.trace.append(next_trace, ager.delta_vth());
      next_trace += trace_every;
    }
    result.worst_delta_vth_v =
        Volts{std::max(result.worst_delta_vth_v.value(), ager.delta_vth())};
    if (!result.margin_exceeded &&
        ager.delta_vth() >= config.margin_delta_vth_v.value()) {
      result.margin_exceeded = true;
      result.time_to_margin_s = Seconds{now};
    }
  };

  // Step granularity: fine enough to catch threshold crossings, coarse
  // enough that decade horizons stay cheap.
  const double step =
      std::min(active_span, config.cycle_period_s.value() / 8.0);

  bool recovering = false;  // reactive-policy state
  record(0.0);
  while (t < config.horizon_s.value()) {
    switch (config.policy) {
      case Policy::kNoRecovery: {
        const double dt = std::min(step, config.horizon_s.value() - t);
        ager.evolve(active, Seconds{dt});
        t += dt;
        active_time += dt;
        record(t);
        break;
      }
      case Policy::kPassiveSleep:
      case Policy::kProactive: {
        const auto& sleep_cond = config.policy == Policy::kProactive
                                     ? accel_sleep
                                     : passive_sleep;
        const double dt_a =
            std::min(active_span, config.horizon_s.value() - t);
        ager.evolve(active, Seconds{dt_a});
        t += dt_a;
        active_time += dt_a;
        record(t);
        if (t >= config.horizon_s.value()) break;
        const double dt_s = std::min(sleep_span, config.horizon_s.value() - t);
        ager.evolve(sleep_cond, Seconds{dt_s});
        t += dt_s;
        ++result.recovery_events;
        record(t);
        break;
      }
      case Policy::kReactive: {
        const double dt = std::min(step, config.horizon_s.value() - t);
        if (!recovering) {
          ager.evolve(active, Seconds{dt});
          active_time += dt;
          t += dt;
          record(t);
          if (ager.delta_vth() >=
              config.reactive_high_water * config.margin_delta_vth_v.value()) {
            recovering = true;
            ++result.recovery_events;
          }
        } else {
          ager.evolve(accel_sleep, Seconds{dt});
          t += dt;
          record(t);
          const double floor_v = ager.permanent_delta_vth();
          const double target =
              config.reactive_low_water * config.margin_delta_vth_v.value();
          // Stop recovering at the low-water mark, or when permanent damage
          // makes further sleep pointless.
          if (ager.delta_vth() <= std::max(target, floor_v * 1.02)) {
            recovering = false;
          }
        }
        break;
      }
    }
  }

  if (!result.margin_exceeded) {
    // Right-censored: report one cycle past the horizon.
    result.time_to_margin_s = config.horizon_s + config.cycle_period_s;
  }
  result.availability = active_time / config.horizon_s.value();
  result.end_delta_vth_v = Volts{ager.delta_vth()};
  result.end_permanent_v = Volts{ager.permanent_delta_vth()};
  return result;
}

}  // namespace ash::core
