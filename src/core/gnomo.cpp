#include "ash/core/gnomo.h"

#include <cmath>
#include <stdexcept>

namespace ash::core {

namespace {

void validate(const GnomoConfig& c) {
  if (c.boost_v <= c.nominal_v) {
    throw std::invalid_argument("GnomoConfig: boost_v must exceed nominal_v");
  }
  if (c.utilization <= 0.0 || c.utilization > 1.0) {
    throw std::invalid_argument("GnomoConfig: utilization must be in (0, 1]");
  }
  if (c.period_s <= Seconds{0.0} || c.horizon_s <= c.period_s) {
    throw std::invalid_argument("GnomoConfig: bad period/horizon");
  }
  if (c.nominal_v <= c.vth_v) {
    throw std::invalid_argument("GnomoConfig: nominal_v must exceed vth_v");
  }
}

}  // namespace

double gnomo_speedup(const GnomoConfig& c) {
  const double f_nom = (c.nominal_v - c.vth_v).value() / c.nominal_v.value();
  const double f_boost = (c.boost_v - c.vth_v).value() / c.boost_v.value();
  return f_boost / f_nom;
}

GnomoStudy run_gnomo_study(const GnomoConfig& c) {
  validate(c);

  const double busy_nominal_s = c.utilization * c.period_s.value();
  const double speedup = gnomo_speedup(c);
  const double busy_boost_s = busy_nominal_s / speedup;

  // Dynamic energy for fixed work: E ~ C V^2 per operation, so the ratio is
  // (V_boost / V_nominal)^2 independent of how fast the work ran.
  const double gnomo_energy =
      (c.boost_v / c.nominal_v) * (c.boost_v / c.nominal_v);

  bti::ClosedFormAger nominal(c.model);
  bti::ClosedFormAger gnomo(c.model);
  bti::ClosedFormAger heal(c.model);

  const auto busy_nom = bti::ac_stress(c.nominal_v, c.temp_c);
  const auto busy_boost = bti::ac_stress(c.boost_v, c.temp_c);
  const auto idle = bti::recovery(Volts{0.0}, c.idle_temp_c);
  const auto rejuvenate =
      bti::recovery(c.recovery_voltage_v, c.recovery_temp_c);

  const auto cycles = static_cast<long>(c.horizon_s / c.period_s);  // ratio
  for (long i = 0; i < cycles; ++i) {
    // Arm 1: always-on — stressed the whole period (spare time still runs
    // background work at nominal, the design-for-EOL assumption).
    nominal.evolve(busy_nom, c.period_s);

    // Arm 2: GNOMO — same work at boost, then passive idle.
    gnomo.evolve(busy_boost, Seconds{busy_boost_s});
    gnomo.evolve(idle, Seconds{c.period_s.value() - busy_boost_s});

    // Arm 3: self-healing — same work at nominal, then accelerated sleep.
    heal.evolve(busy_nom, Seconds{busy_nominal_s});
    heal.evolve(rejuvenate, Seconds{c.period_s.value() - busy_nominal_s});
  }

  GnomoStudy study;
  study.nominal.end_delta_vth_v = Volts{nominal.delta_vth()};
  study.nominal.permanent_v = Volts{nominal.permanent_delta_vth()};
  study.nominal.energy_ratio = 1.0;
  study.nominal.stress_duty = 1.0;

  study.gnomo.end_delta_vth_v = Volts{gnomo.delta_vth()};
  study.gnomo.permanent_v = Volts{gnomo.permanent_delta_vth()};
  study.gnomo.energy_ratio = gnomo_energy;
  study.gnomo.stress_duty = busy_boost_s / c.period_s.value();

  study.self_healing.end_delta_vth_v = Volts{heal.delta_vth()};
  study.self_healing.permanent_v = Volts{heal.permanent_delta_vth()};
  study.self_healing.energy_ratio = 1.0;  // work energy; knob overhead is
                                          // reported by the planner's cost
  study.self_healing.stress_duty = c.utilization;

  return study;
}

}  // namespace ash::core
