#include "ash/tb/experiment_runner.h"

#include <algorithm>

#include "ash/util/constants.h"
#include "ash/util/random.h"

namespace ash::tb {

namespace {

/// Environment the chip sees for an aging interval.
bti::OperatingCondition phase_condition(const Phase& phase, double supply_v,
                                        double temp_k) {
  bti::OperatingCondition env;
  env.voltage_v = supply_v;
  env.temperature_k = temp_k;
  switch (phase.mode) {
    case fpga::RoMode::kAcOscillating:
      env.gate_stress_duty = phase.ac_duty;
      break;
    case fpga::RoMode::kDcFrozen:
      env.gate_stress_duty = 1.0;
      break;
    case fpga::RoMode::kSleep:
      env.gate_stress_duty = 0.0;
      break;
  }
  return env;
}

}  // namespace

ExperimentRunner::ExperimentRunner(const RunnerConfig& config)
    : config_(config) {}

DataLog ExperimentRunner::run(fpga::FpgaChip& chip,
                              const TestCase& test_case) {
  // Per-run instrument instances so a runner can serve several campaigns
  // without noise-state crosstalk.
  ChamberConfig chamber_cfg = config_.chamber;
  chamber_cfg.seed = derive_seed(config_.seed, 1);
  if (config_.instant_chamber) chamber_cfg.ramp_c_per_s = 1e9;
  if (!test_case.phases.empty()) {
    chamber_cfg.initial_c = test_case.phases.front().chamber_c;
  }
  ThermalChamber chamber(chamber_cfg);

  SupplyConfig supply_cfg = config_.supply;
  supply_cfg.seed = derive_seed(config_.seed, 2);
  PowerSupply supply(supply_cfg);

  MeasurementConfig rig_cfg = config_.measurement;
  rig_cfg.seed = derive_seed(config_.seed, 3);
  MeasurementRig rig(rig_cfg);

  DataLog log;
  double t_campaign = 0.0;

  const auto take_sample = [&](const Phase& phase, double t_phase) {
    const double temp_k = chamber.temperature_k();
    // Waking the RO for the gated count is itself a short AC stress at the
    // measurement supply (the paper's <3 s sampling overhead).  In AC
    // stress mode the ring is already running; the overhead is then just
    // part of the stress.
    const double overhead = rig.sample_duration_s();
    if (phase.mode != fpga::RoMode::kAcOscillating) {
      bti::OperatingCondition meas_env;
      meas_env.voltage_v = config_.measurement_vdd_v;
      meas_env.temperature_k = temp_k;
      meas_env.gate_stress_duty = 0.5;
      chip.evolve(fpga::RoMode::kAcOscillating, meas_env, overhead);
    }
    const Measurement m =
        rig.measure(chip.ro_frequency_hz(config_.measurement_vdd_v, temp_k));

    SampleRecord r;
    r.test_case = test_case.name;
    r.chip_id = chip.id();
    r.phase = phase.label;
    r.t_campaign_s = t_campaign;
    r.t_phase_s = t_phase;
    r.chamber_c = chamber.temperature_c();
    r.supply_v = phase.supply_v;
    r.counts = m.counts;
    r.frequency_hz = m.frequency_hz;
    r.delay_s = m.delay_s;
    log.add(r);
  };

  for (const auto& phase : test_case.phases) {
    supply.set_voltage(phase.supply_v);
    chamber.set_target_c(phase.chamber_c);

    // Stabilize the chamber before the phase clock starts; the chip keeps
    // aging in the phase's mode at the instantaneous temperature.
    while (!chamber.at_target()) {
      const double step = std::min(60.0, chamber.seconds_to_target());
      const auto env =
          phase_condition(phase, supply.output_v(), chamber.temperature_k());
      chip.evolve(phase.mode, env, step);
      chamber.advance(step);
      supply.advance(step);
      t_campaign += step;
    }

    // Sample cadence: a reading at t = 0, every sample_every_s, and at the
    // phase end.
    double t_phase = 0.0;
    take_sample(phase, t_phase);
    while (t_phase < phase.duration_s) {
      double step = phase.duration_s - t_phase;
      if (phase.sample_every_s > 0.0) {
        step = std::min(step, phase.sample_every_s);
      }
      const auto env =
          phase_condition(phase, supply.output_v(), chamber.temperature_k());
      chip.evolve(phase.mode, env, step);
      chamber.advance(step);
      supply.advance(step);
      t_phase += step;
      t_campaign += step;
      take_sample(phase, t_phase);
    }
  }

  return log;
}

}  // namespace ash::tb
