#include "ash/tb/experiment_runner.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ash/fpga/checkpoint.h"
#include "ash/obs/profile.h"
#include "ash/obs/trace.h"
#include "ash/util/constants.h"
#include "ash/util/random.h"
#include "ash/util/stats.h"
#include "ash/util/table.h"

namespace ash::tb {

namespace {

/// Environment the chip sees for an aging interval.
bti::OperatingCondition phase_condition(const Phase& phase, Volts supply,
                                        Kelvin temp) {
  bti::OperatingCondition env;
  env.voltage_v = supply;
  env.temperature_k = temp;
  switch (phase.mode) {
    case fpga::RoMode::kAcOscillating:
      env.gate_stress_duty = phase.ac_duty;
      break;
    case fpga::RoMode::kDcFrozen:
      env.gate_stress_duty = 1.0;
      break;
    case fpga::RoMode::kSleep:
      env.gate_stress_duty = 0.0;
      break;
  }
  return env;
}

/// How one sample attempt or phase attempt concluded.
enum class SampleStatus { kAccepted, kTripped, kKilled };

/// One campaign execution (fresh or resumed).  Owns the campaign clock, the
/// merged log/report and the phase attempt machinery.
class CampaignEngine {
 public:
  CampaignEngine(const RunnerConfig& config, fpga::FpgaChip& chip,
                 const TestCase& test_case)
      : cfg_(config), chip_(chip), tc_(test_case) {}

  CampaignResult run(const CampaignCheckpoint& from, int max_phases = -1) {
    fpga::restore_checkpoint(from.chip_state, chip_);
    t_campaign_ = from.t_campaign_s.value();
    log_ = from.log;
    report_ = from.faults;

    CampaignResult result;
    result.checkpoint = from;

    obs::set_sim_now(t_campaign_);
    obs::Span run_span(obs::EventKind::kRun, tc_.name, "tb.campaign");
    run_span.arg("chip", std::to_string(chip_.id()));
    run_span.arg("phases", std::to_string(tc_.phases.size()));

    const int phase_count = static_cast<int>(tc_.phases.size());
    const int stop_after =
        max_phases < 0 ? phase_count
                       : std::min(phase_count, from.next_phase + max_phases);
    for (int pi = from.next_phase; pi < stop_after; ++pi) {
      const Celsius prev_c =
          pi == from.next_phase ? from.chamber_c : tc_.phases[pi - 1].chamber_c;
      if (obs::tracing()) {
        obs::instant(
            obs::EventKind::kPhaseTransition,
            tc_.phases[static_cast<std::size_t>(pi)].label, "tb.campaign",
            {{"phase_index", std::to_string(pi)}});
      }
      // The phase-start snapshot is the boundary checkpoint we already
      // hold: at the first phase it is the restore source itself, and
      // checkpoint round-trips are byte-exact (canonical %.17g), so
      // re-serializing the untouched chip here would produce the same
      // bytes at ~70 KB of string building per phase.
      if (kill_due() || !run_phase(pi, prev_c, result.checkpoint.chip_state)) {
        // Killed: roll the chip (and clock) back to the last boundary so
        // the caller's chip matches the resumable checkpoint.
        fpga::restore_checkpoint(result.checkpoint.chip_state, chip_);
        result.log = result.checkpoint.log;
        result.faults = result.checkpoint.faults;
        result.completed = false;
        return result;
      }
      result.checkpoint.next_phase = pi + 1;
      result.checkpoint.t_campaign_s = Seconds{t_campaign_};
      result.checkpoint.chamber_c = tc_.phases[pi].chamber_c;
      result.checkpoint.chip_state = fpga::checkpoint_string(chip_);
      result.checkpoint.log = log_;
      result.checkpoint.faults = report_;
      if (obs::tracing()) {
        obs::instant(obs::EventKind::kCheckpointSave,
                     tc_.phases[static_cast<std::size_t>(pi)].label,
                     "tb.campaign",
                     {{"next_phase", std::to_string(pi + 1)},
                      {"samples", std::to_string(log_.size())}});
      }
    }
    result.log = log_;
    result.faults = report_;
    // A bounded step that stops short of the schedule is not "complete":
    // the checkpoint is the resume point for the next step.
    result.completed = result.checkpoint.next_phase >= phase_count;
    return result;
  }

 private:
  bool kill_due() const {
    return cfg_.abort_at_campaign_s >= Seconds{0.0} &&
           Seconds{t_campaign_} >= cfg_.abort_at_campaign_s;
  }

  /// Run every attempt of one phase.  Returns false when the kill switch
  /// fired (the current attempt's work is discarded; the chip is left
  /// mid-attempt and the caller restores the boundary checkpoint).
  bool run_phase(int phase_index, Celsius prev_chamber_c,
                 const std::string& snapshot) {
    // `snapshot` is the phase-start chip state — the rewind target for
    // watchdog aborts — supplied by the caller's boundary checkpoint.
    const Phase& phase = tc_.phases[static_cast<std::size_t>(phase_index)];
    const double t_phase_start = t_campaign_;

    const int max_attempts =
        cfg_.watchdog.enabled ? std::max(1, cfg_.watchdog.max_phase_attempts)
                              : 1;

    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        fpga::restore_checkpoint(snapshot, chip_);
        t_campaign_ = t_phase_start;
        obs::set_sim_now(t_campaign_);
        if (obs::tracing()) {
          obs::instant(obs::EventKind::kCheckpointRewind, phase.label,
                       "tb.campaign",
                       {{"attempt", std::to_string(attempt)}});
        }
      }
      const SampleStatus status =
          run_attempt(phase, phase_index, attempt,
                      /*allow_trip=*/attempt + 1 < max_attempts,
                      prev_chamber_c);
      if (status == SampleStatus::kKilled) return false;
      if (status == SampleStatus::kAccepted) return true;
      // kTripped: the attempt merged its report already; go around.
    }
    return true;  // unreachable: the last attempt cannot trip
  }

  /// Run one attempt of a phase.  On kAccepted the attempt's samples and
  /// report have been merged into the campaign log/report.
  SampleStatus run_attempt(const Phase& phase, int phase_index, int attempt,
                           bool allow_trip, Celsius prev_chamber_c) {
    const obs::ScopedKernelTimer timer(obs::Kernel::kTbPhaseAttempt);
    obs::set_sim_now(t_campaign_);
    obs::Span phase_span(obs::EventKind::kPhase, phase.label, "tb.phase");
    phase_span.arg("attempt", std::to_string(attempt));
    phase_span.arg("chamber_c", fmt_fixed(phase.chamber_c.value(), 1));
    phase_span.arg("supply_v", fmt_fixed(phase.supply_v.value(), 3));

    FaultReport attempt_report;
    FaultInjector faults(cfg_.fault_plan, phase_index, attempt,
                         phase.duration_s, &attempt_report);

    // Instruments are per-attempt: their noise streams derive from
    // (seed, phase, attempt), so a rewound phase re-runs with fresh noise
    // and a resumed campaign replays bit-identically.
    const std::uint64_t attempt_stream = derive_seed(
        derive_seed(cfg_.seed, static_cast<std::uint64_t>(phase_index)),
        static_cast<std::uint64_t>(attempt));

    ChamberConfig chamber_cfg = cfg_.chamber;
    chamber_cfg.seed = derive_seed(attempt_stream, 1);
    chamber_cfg.initial_c = prev_chamber_c;
    if (cfg_.instant_chamber) chamber_cfg.ramp_c_per_s = 1e9;
    ThermalChamber chamber(chamber_cfg);
    chamber.set_target(phase.chamber_c);

    SupplyConfig supply_cfg = cfg_.supply;
    supply_cfg.seed = derive_seed(attempt_stream, 2);
    PowerSupply supply(supply_cfg);
    supply.set_voltage(phase.supply_v);

    MeasurementConfig rig_cfg = cfg_.measurement;
    rig_cfg.seed = derive_seed(attempt_stream, 3);
    // A reference-clock jump is a systematic calibration bias this phase.
    rig_cfg.clock.error_ppm += faults.clock_offset_ppm();
    MeasurementRig rig(rig_cfg);

    DataLog attempt_log;
    int consecutive_implausible = 0;
    bool degraded = false;
    std::deque<double> recent_freqs;

    // Truth corruption saturates at the hardware's own limits: the chamber
    // over-temperature cutout caps an excursion, and the supply interlocks
    // cap a glitched output.
    const auto faulted_temp_c = [&](Celsius base, double t_phase) {
      const double base_c = base.value();
      const double excursed =
          base_c + faults.chamber_offset_c(Seconds{t_phase}).value();
      const double ceiling =
          std::max(base_c, cfg_.fault_plan.chamber.excursion_ceiling_c.value());
      return std::min(excursed, ceiling);
    };
    const auto faulted_supply_v = [&](Volts base, double t_phase) {
      return std::clamp(
          base.value() + faults.supply_offset_v(Seconds{t_phase}).value(),
          cfg_.supply.min_v.value(), cfg_.supply.max_v.value());
    };

    // Age the chip for `step` seconds under the phase's mode.  Fault
    // offsets (excursion, glitch) apply only inside the phase body.
    const auto age = [&](double step, bool in_body, double t_phase) {
      Kelvin temp_k = chamber.temperature_k();
      Volts supply_out = supply.output_v();
      if (in_body) {
        temp_k = Kelvin{celsius(faulted_temp_c(chamber.temperature_c(), t_phase))};
        supply_out = Volts{faulted_supply_v(supply_out, t_phase)};
      }
      const auto env = phase_condition(phase, supply_out, temp_k);
      chip_.evolve(phase.mode, env, Seconds{step});
      chamber.advance(Seconds{step});
      supply.advance(Seconds{step});
      t_campaign_ += step;
      obs::set_sim_now(t_campaign_);
    };

    // One logged sample, including retries.  kAccepted means a record was
    // added (possibly flagged); t_phase advances across retry backoffs.
    const auto take_sample = [&](double& t_phase) -> SampleStatus {
      int retries = 0;
      double backoff = cfg_.retry.backoff_s.value();
      for (;;) {
        if (kill_due()) return SampleStatus::kKilled;

        const double true_temp_c =
            faulted_temp_c(chamber.temperature_c(), t_phase);
        const double true_temp_k = celsius(true_temp_c);
        const double meas_vdd =
            faulted_supply_v(cfg_.measurement_vdd_v, t_phase);

        // Waking the RO for the gated count is itself a short AC stress at
        // the measurement supply (the paper's <3 s sampling overhead).  In
        // AC stress mode the ring is already running; the overhead is then
        // just part of the stress.
        const Seconds overhead = rig.sample_duration_s();
        if (phase.mode != fpga::RoMode::kAcOscillating) {
          bti::OperatingCondition meas_env;
          meas_env.voltage_v = Volts{meas_vdd};
          meas_env.temperature_k = Kelvin{true_temp_k};
          meas_env.gate_stress_duty = 0.5;
          chip_.evolve(fpga::RoMode::kAcOscillating, meas_env, overhead);
        }
        Measurement m = rig.measure(
            chip_.ro_frequency_hz(Volts{meas_vdd}, Kelvin{true_temp_k}),
            &faults);
        const bool comm_ok = !faults.comm_lost();
        const bool valid = comm_ok && m.valid();
        const Celsius reported_c =
            faults.reported_chamber_c(Celsius{true_temp_c}, Seconds{t_phase});

        bool implausible = false;
        if (cfg_.watchdog.enabled && valid) {
          if (std::abs((reported_c - phase.chamber_c).value()) >
              cfg_.watchdog.max_chamber_error_c.value()) {
            implausible = true;
          }
          if (!recent_freqs.empty()) {
            const double med = median(
                std::vector<double>(recent_freqs.begin(), recent_freqs.end()));
            if (med > 0.0 &&
                std::abs(m.frequency_hz.value() - med) / med >
                    cfg_.watchdog.max_frequency_deviation) {
              implausible = true;
            }
          }
        }

        const auto record = [&](SampleQuality quality) {
          SampleRecord r;
          r.test_case = tc_.name;
          r.chip_id = chip_.id();
          r.phase = phase.label;
          r.t_campaign_s = Seconds{t_campaign_};
          r.t_phase_s = Seconds{t_phase};
          r.chamber_c = reported_c;
          r.supply_v = phase.supply_v;
          r.counts = m.counts;
          r.frequency_hz = m.frequency_hz;
          r.delay_s = m.delay_s;
          r.quality = quality;
          r.retries = retries;
          attempt_log.add(r);
          if (obs::tracing()) {
            obs::instant(obs::EventKind::kMeasurement, phase.label,
                         "tb.sample",
                         {{"quality", to_string(quality)},
                          {"retries", std::to_string(retries)},
                          {"frequency_hz", strformat("%.6g", m.frequency_hz.value())},
                          {"chamber_c", fmt_fixed(reported_c.value(), 2)}});
          }
        };

        if (valid && !implausible) {
          record(retries == 0 ? SampleQuality::kGood : SampleQuality::kRetried);
          if (retries > 0) attempt_report.samples_retried++;
          consecutive_implausible = 0;
          recent_freqs.push_back(m.frequency_hz.value());
          while (static_cast<int>(recent_freqs.size()) > cfg_.watchdog.window &&
                 !recent_freqs.empty()) {
            recent_freqs.pop_front();
          }
          return SampleStatus::kAccepted;
        }

        if (retries < cfg_.retry.max_sample_retries) {
          if (obs::tracing()) {
            obs::instant(obs::EventKind::kRetry, phase.label, "tb.sample",
                         {{"retry", std::to_string(retries + 1)},
                          {"backoff_s", fmt_fixed(backoff, 1)},
                          {"reason", !comm_ok        ? "comm_lost"
                                     : !m.valid()    ? "invalid_reading"
                                                     : "implausible"}});
          }
          // Bounded backoff *in simulated time*: the lab waits, the chip
          // keeps aging in the phase's mode, and the sample grid shifts.
          age(backoff, /*in_body=*/true, t_phase);
          t_phase += backoff;
          backoff *= cfg_.retry.backoff_multiplier;
          ++retries;
          continue;
        }

        // Retries exhausted: graceful degradation — keep the sample,
        // flagged, rather than dropping it.
        if (valid) {
          record(SampleQuality::kSuspect);
          attempt_report.samples_suspect++;
          if (cfg_.watchdog.enabled) {
            ++consecutive_implausible;
            if (consecutive_implausible >= cfg_.watchdog.trip_after) {
              if (obs::tracing()) {
                obs::instant(
                    obs::EventKind::kFaultDetected, "watchdog.trip",
                    "tb.watchdog",
                    {{"phase", phase.label},
                     {"consecutive", std::to_string(consecutive_implausible)},
                     {"action", allow_trip ? "abort_phase" : "degrade"}});
              }
              if (allow_trip) return SampleStatus::kTripped;
              degraded = true;
            }
          }
        } else {
          m = Measurement{};  // no data came back: log zeros
          record(SampleQuality::kLost);
          attempt_report.samples_lost++;
        }
        return SampleStatus::kAccepted;
      }
    };

    // Stabilize the chamber before the phase clock starts; the chip keeps
    // aging in the phase's mode at the instantaneous temperature.  The
    // ramp is outside the fault-event windows.  The step is adaptive: a
    // chamber already at target settles in zero steps, a near-target
    // chamber (or an instant one) takes a single closing step of exactly
    // seconds_to_target(), and only a long physical ramp subdivides — at
    // kSettleResolutionS so the aging integral tracks the instantaneous
    // temperature (one merged step would age at the wrong temperature and
    // break bit-compatibility with recorded campaigns).
    constexpr double kSettleResolutionS = 60.0;
    while (!chamber.at_target()) {
      if (kill_due()) return SampleStatus::kKilled;
      const double step =
          std::min(kSettleResolutionS, chamber.seconds_to_target().value());
      age(step, /*in_body=*/false, 0.0);
    }

    // Sample cadence: a reading at t = 0, every sample_every_s, and at the
    // phase end (retry backoffs shift the grid).
    double t_phase = 0.0;
    SampleStatus status = take_sample(t_phase);
    while (status == SampleStatus::kAccepted &&
           t_phase < phase.duration_s.value()) {
      if (kill_due()) {
        status = SampleStatus::kKilled;
        break;
      }
      double step = phase.duration_s.value() - t_phase;
      if (phase.sample_every_s > Seconds{0.0}) {
        step = std::min(step, phase.sample_every_s.value());
      }
      age(step, /*in_body=*/true, t_phase);
      t_phase += step;
      status = take_sample(t_phase);
    }

    if (status == SampleStatus::kKilled) return status;
    if (status == SampleStatus::kTripped) {
      attempt_report.phase_aborts++;
      attempt_report.samples_discarded +=
          static_cast<int>(attempt_log.size());
      // The discarded samples leave the log, so their per-sample handling
      // tallies leave the report too; injected-event counts stay (the
      // faults really happened, the rewind just erased their damage).
      attempt_report.samples_retried = 0;
      attempt_report.samples_suspect = 0;
      attempt_report.samples_lost = 0;
      report_.merge(attempt_report);
      return status;
    }
    if (degraded) attempt_report.phases_degraded++;
    report_.merge(attempt_report);
    log_.append(attempt_log);
    return SampleStatus::kAccepted;
  }

  const RunnerConfig& cfg_;
  fpga::FpgaChip& chip_;
  const TestCase& tc_;
  DataLog log_;
  FaultReport report_;
  double t_campaign_ = 0.0;
};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("campaign checkpoint: " + what);
}

}  // namespace

void CampaignCheckpoint::save(std::ostream& os) const {
  os << "ash-campaign v2\n";
  os << "next_phase " << next_phase << "\n";
  os.precision(17);
  os << "t_campaign " << t_campaign_s.value() << "\n";
  os << "chamber_c " << chamber_c.value() << "\n";
  os << "faults " << faults.serialize() << "\n";
  os << "chip\n" << chip_state;  // the fpga checkpoint ends with "end\n"
  // v2 declares the record count so a stream cut at a CSV row boundary is
  // detected as truncation, not silently loaded as a shorter log.
  os << "log " << log.size() << "\n";
  log.write_csv(os);
}

CampaignCheckpoint CampaignCheckpoint::load(std::istream& is) {
  CampaignCheckpoint ckpt;
  std::string line;

  // Every failure names the field being parsed and where the stream
  // stopped, so a truncated or bit-flipped snapshot produces an actionable
  // error instead of UB (std::stoi on garbage) or a zero-filled state.
  const auto offset_suffix = [&]() -> std::string {
    // A failed getline leaves failbit set and tellg() pinned at -1; clear
    // it (we are about to throw anyway) so the offset of the truncation
    // point survives into the message.
    is.clear();
    const auto pos = is.tellg();  // -1 only on a non-seekable stream
    if (pos < 0) return "";
    std::ostringstream os;
    os << " (stream offset " << pos << ")";
    return os.str();
  };
  const auto fail_field = [&](const std::string& field,
                              const std::string& detail) {
    fail("field '" + field + "' " + detail + offset_suffix());
  };

  if (!std::getline(is, line)) fail("empty stream" + offset_suffix());
  if (line != "ash-campaign v2") {
    fail("bad header '" + line.substr(0, 40) + "' (want 'ash-campaign v2')" +
         offset_suffix());
  }
  const auto keyed_line = [&](const char* key) -> std::string {
    if (!std::getline(is, line)) {
      fail_field(key, "missing: stream truncated");
    }
    std::istringstream row(line);
    std::string got;
    row >> got;
    if (got != key) {
      fail_field(key, "expected, got '" + line.substr(0, 40) + "'");
    }
    std::string rest;
    std::getline(row, rest);
    // Strip the single separating space the writer emits.
    const auto first = rest.find_first_not_of(' ');
    return first == std::string::npos ? std::string() : rest.substr(first);
  };
  const auto parse_int = [&](const char* key) -> int {
    const std::string text = keyed_line(key);
    std::size_t used = 0;
    long value = 0;
    try {
      value = std::stol(text, &used, 10);
    } catch (const std::exception&) {
      fail_field(key, "is not an integer: '" + text.substr(0, 40) + "'");
    }
    if (used != text.size() || value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max()) {
      fail_field(key, "is not an integer: '" + text.substr(0, 40) + "'");
    }
    return static_cast<int>(value);
  };
  const auto parse_double = [&](const char* key) -> double {
    const std::string text = keyed_line(key);
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(text, &used);
    } catch (const std::exception&) {
      fail_field(key, "is not a number: '" + text.substr(0, 40) + "'");
    }
    if (used != text.size() || !std::isfinite(value)) {
      fail_field(key, "is not a finite number: '" + text.substr(0, 40) + "'");
    }
    return value;
  };

  ckpt.next_phase = parse_int("next_phase");
  if (ckpt.next_phase < 0) {
    fail_field("next_phase", "is negative: " + std::to_string(ckpt.next_phase));
  }
  ckpt.t_campaign_s = Seconds{parse_double("t_campaign")};
  ckpt.chamber_c = Celsius{parse_double("chamber_c")};
  try {
    ckpt.faults = FaultReport::deserialize(keyed_line("faults"));
  } catch (const std::runtime_error& e) {
    fail_field("faults", std::string("malformed: ") + e.what());
  }
  if (!std::getline(is, line) || line != "chip") {
    fail_field("chip", "section missing");
  }
  try {
    ckpt.chip_state = fpga::read_embedded_checkpoint(is);
  } catch (const std::runtime_error& e) {
    fail_field("chip", std::string("malformed: ") + e.what());
  }
  const int log_size = parse_int("log");
  if (log_size < 0) {
    fail_field("log", "has negative record count: " +
                          std::to_string(log_size));
  }
  try {
    ckpt.log = DataLog::read_csv(is);
  } catch (const std::exception& e) {
    fail_field("log", std::string("malformed: ") + e.what());
  }
  if (ckpt.log.size() != static_cast<std::size_t>(log_size)) {
    fail_field("log", "truncated: declared " + std::to_string(log_size) +
                          " record(s), parsed " +
                          std::to_string(ckpt.log.size()));
  }
  return ckpt;
}

std::string CampaignCheckpoint::serialize() const {
  std::ostringstream os;
  save(os);
  return os.str();
}

CampaignCheckpoint CampaignCheckpoint::deserialize(const std::string& bytes) {
  std::istringstream is(bytes);
  return load(is);
}

ExperimentRunner::ExperimentRunner(const RunnerConfig& config)
    : config_(config) {}

DataLog ExperimentRunner::run(fpga::FpgaChip& chip,
                              const TestCase& test_case) {
  return run_campaign(chip, test_case).log;
}

CampaignCheckpoint initial_checkpoint(const fpga::FpgaChip& chip,
                                      const TestCase& test_case,
                                      const RunnerConfig& config) {
  CampaignCheckpoint start;
  start.next_phase = 0;
  start.t_campaign_s = Seconds{0.0};
  start.chamber_c = test_case.phases.empty()
                        ? config.chamber.initial_c
                        : test_case.phases.front().chamber_c;
  start.chip_state = fpga::checkpoint_string(chip);
  return start;
}

CampaignResult ExperimentRunner::run_campaign(fpga::FpgaChip& chip,
                                              const TestCase& test_case) {
  return CampaignEngine(config_, chip, test_case)
      .run(initial_checkpoint(chip, test_case, config_));
}

CampaignResult ExperimentRunner::run_campaign(fpga::FpgaChip& chip,
                                              const TestCase& test_case,
                                              const CampaignCheckpoint& from,
                                              int max_phases) {
  return CampaignEngine(config_, chip, test_case).run(from, max_phases);
}

RunnerConfig tolerant_runner_config(const FaultPlan& plan) {
  RunnerConfig config;
  config.fault_plan = plan;
  // One extra gated reading per sample and a 25 % trimmed mean over them:
  // the min and max readings are discarded, so a single outlier or dropped
  // reading costs a little gate time instead of corrupting the sample,
  // while the surviving readings still average down the gated counter's
  // quantization (a plain median would keep a full-LSB error).
  config.measurement.readings_per_sample = 5;
  config.measurement.estimator = RobustEstimator::kTrimmedMean;
  config.measurement.trim_fraction = 0.25;
  return config;
}

RunnerConfig naive_runner_config(const FaultPlan& plan) {
  RunnerConfig config;
  config.fault_plan = plan;
  config.watchdog.enabled = false;
  config.retry.max_sample_retries = 0;
  config.measurement.estimator = RobustEstimator::kMean;
  return config;
}

}  // namespace ash::tb
