#include "ash/tb/measurement.h"

#include <stdexcept>
#include <vector>

#include "ash/tb/fault.h"

namespace ash::tb {

namespace {

fpga::CounterConfig actual_counter_config(const MeasurementConfig& c) {
  fpga::CounterConfig cc = c.counter;
  // The counter hardware is gated by the *actual* reference clock.
  cc.f_ref_hz = c.clock.actual_hz();
  return cc;
}

}  // namespace

MeasurementRig::MeasurementRig(const MeasurementConfig& config)
    : config_(config), counter_(actual_counter_config(config), Rng(config.seed)) {
  if (config_.readings_per_sample <= 0) {
    throw std::invalid_argument(
        "MeasurementRig: readings_per_sample must be positive");
  }
}

Seconds MeasurementRig::sample_duration_s() const {
  const double gate_s = static_cast<double>(config_.counter.gate_ref_periods) /
                        config_.clock.actual_hz().value();
  return Seconds{gate_s * static_cast<double>(config_.readings_per_sample)};
}

Measurement MeasurementRig::measure(Hertz true_frequency,
                                    FaultInjector* faults) {
  std::vector<double> readings;
  readings.reserve(static_cast<std::size_t>(config_.readings_per_sample));
  Measurement m;
  for (int i = 0; i < config_.readings_per_sample; ++i) {
    // The counter is gated either way: a dropped reading still costs its
    // gate time (and counter RNG state), the data just never arrives.
    double counts = counter_.measure(true_frequency).counts;
    ++m.readings_taken;
    if (faults != nullptr) {
      if (faults->reading_dropped()) continue;
      if (faults->reading_outlier()) counts = faults->corrupt_counts(counts);
    }
    readings.push_back(counts);
  }
  m.readings_used = static_cast<int>(readings.size());
  if (readings.empty()) return m;  // valid() == false, zero values

  m.counts =
      robust_location(readings, config_.estimator, config_.trim_fraction);

  // Frequency inference uses the *nominal* reference (the experimenter's
  // belief), Eq. (14): f_osc = 2 * Cout * f_ref / gate_periods.
  const double gate_s_believed =
      static_cast<double>(config_.counter.gate_ref_periods) /
      config_.clock.nominal_hz.value();
  m.frequency_hz = Hertz{2.0 * m.counts / gate_s_believed};
  m.delay_s = m.frequency_hz > Hertz{0.0}
                  ? Seconds{1.0 / (2.0 * m.frequency_hz.value())}
                  : Seconds{0.0};
  return m;
}

}  // namespace ash::tb
