#include "ash/tb/measurement.h"

#include <stdexcept>

namespace ash::tb {

namespace {

fpga::CounterConfig actual_counter_config(const MeasurementConfig& c) {
  fpga::CounterConfig cc = c.counter;
  // The counter hardware is gated by the *actual* reference clock.
  cc.f_ref_hz = c.clock.actual_hz();
  return cc;
}

}  // namespace

MeasurementRig::MeasurementRig(const MeasurementConfig& config)
    : config_(config), counter_(actual_counter_config(config), Rng(config.seed)) {
  if (config_.readings_per_sample <= 0) {
    throw std::invalid_argument(
        "MeasurementRig: readings_per_sample must be positive");
  }
}

double MeasurementRig::sample_duration_s() const {
  const double gate_s = static_cast<double>(config_.counter.gate_ref_periods) /
                        config_.clock.actual_hz();
  return gate_s * static_cast<double>(config_.readings_per_sample);
}

Measurement MeasurementRig::measure(double true_frequency_hz) {
  double counts = 0.0;
  for (int i = 0; i < config_.readings_per_sample; ++i) {
    counts += counter_.measure(true_frequency_hz).counts;
  }
  counts /= static_cast<double>(config_.readings_per_sample);

  // Frequency inference uses the *nominal* reference (the experimenter's
  // belief), Eq. (14): f_osc = 2 * Cout * f_ref / gate_periods.
  const double gate_s_believed =
      static_cast<double>(config_.counter.gate_ref_periods) /
      config_.clock.nominal_hz;
  Measurement m;
  m.counts = counts;
  m.frequency_hz = 2.0 * counts / gate_s_believed;
  m.delay_s = m.frequency_hz > 0.0 ? 1.0 / (2.0 * m.frequency_hz) : 0.0;
  return m;
}

}  // namespace ash::tb
