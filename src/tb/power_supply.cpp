#include "ash/tb/power_supply.h"

#include <stdexcept>

namespace ash::tb {

PowerSupply::PowerSupply(const SupplyConfig& config)
    : config_(config),
      setpoint_v_(config.nominal_v),
      ripple_(config.ripple_sigma_v.value(), config.ripple_tau_s.value(),
              Rng(config.seed)) {
  if (config_.min_v >= config_.max_v || config_.ripple_sigma_v < Volts{0.0} ||
      config_.ripple_tau_s <= Seconds{0.0}) {
    throw std::invalid_argument("PowerSupply: bad configuration");
  }
}

void PowerSupply::set_voltage(Volts volts) {
  if (volts < config_.min_v || volts > config_.max_v) {
    throw std::out_of_range(
        "PowerSupply::set_voltage: outside interlock window");
  }
  setpoint_v_ = volts;
}

void PowerSupply::advance(Seconds dt) {
  if (dt.value() < 0.0) {
    throw std::invalid_argument("PowerSupply::advance: negative dt");
  }
  ripple_.advance(dt);
}

}  // namespace ash::tb
