#include "ash/tb/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ash/obs/metrics.h"
#include "ash/obs/trace.h"
#include "ash/util/table.h"

namespace ash::tb {

namespace {

/// Window faults are drawn at attempt start but fire later (phase-relative
/// window); the instant records when the draw happened, the args say when
/// the fault bites.
void trace_injection(const char* channel,
                     std::vector<std::pair<std::string, std::string>> args) {
  obs::instant(obs::EventKind::kFaultInjected, channel, "tb.fault",
               std::move(args));
}

}  // namespace

bool FaultPlan::ideal() const {
  return chamber.excursion_probability == 0.0 &&
         chamber.sensor_stuck_probability == 0.0 &&
         chamber.sensor_drift_c_per_hour == 0.0 &&
         supply.glitches_per_day == 0.0 &&
         rig.dropped_reading_probability == 0.0 &&
         rig.outlier_probability == 0.0 && rig.clock_jump_probability == 0.0 &&
         comm.loss_probability == 0.0;
}

FaultPlan FaultPlan::none() { return {}; }

FaultPlan FaultPlan::representative() {
  FaultPlan p;
  p.chamber.excursion_probability = 1.0;
  p.chamber.excursion_magnitude_c = Celsius{30.0};
  p.chamber.excursion_duration_s = Seconds{5400.0};
  p.chamber.sensor_stuck_probability = 0.1;
  p.supply.glitches_per_day = 0.25;
  p.rig.dropped_reading_probability = 0.01;
  p.rig.outlier_probability = 0.01;
  p.comm.loss_probability = 0.005;
  return p;
}

FaultPlan FaultPlan::harsh() {
  FaultPlan p;
  p.chamber.excursion_probability = 1.0;
  p.chamber.excursion_magnitude_c = Celsius{40.0};
  p.chamber.excursion_duration_s = Seconds{10800.0};
  p.chamber.sensor_stuck_probability = 0.5;
  p.chamber.sensor_drift_c_per_hour = 0.5;
  p.supply.glitches_per_day = 2.0;
  p.supply.glitch_delta_v = Volts{-0.25};
  p.supply.glitch_duration_s = Seconds{600.0};
  p.rig.dropped_reading_probability = 0.05;
  p.rig.outlier_probability = 0.05;
  p.rig.clock_jump_probability = 0.25;
  p.rig.clock_jump_ppm = 300.0;
  p.comm.loss_probability = 0.03;
  return p;
}

FaultPlan FaultPlan::by_name(const std::string& name) {
  if (name == "none") return none();
  if (name == "representative") return representative();
  if (name == "harsh") return harsh();
  throw std::invalid_argument(
      "FaultPlan::by_name: unknown preset '" + name +
      "' (expected none|representative|harsh)");
}

bool FaultReport::clean() const { return *this == FaultReport{}; }

void FaultReport::merge(const FaultReport& other) {
  chamber_excursions += other.chamber_excursions;
  sensor_faults += other.sensor_faults;
  supply_glitches += other.supply_glitches;
  clock_jumps += other.clock_jumps;
  readings_dropped += other.readings_dropped;
  outlier_readings += other.outlier_readings;
  comm_losses += other.comm_losses;
  samples_retried += other.samples_retried;
  samples_suspect += other.samples_suspect;
  samples_lost += other.samples_lost;
  phase_aborts += other.phase_aborts;
  phases_degraded += other.phases_degraded;
  samples_discarded += other.samples_discarded;
}

std::string FaultReport::render() const {
  std::ostringstream os;
  os << "fault report:\n"
     << "  injected: " << chamber_excursions << " chamber excursion(s), "
     << sensor_faults << " sensor fault(s), " << supply_glitches
     << " supply glitch(es), " << clock_jumps << " clock jump(s)\n"
     << "  encountered: " << readings_dropped << " dropped reading(s), "
     << outlier_readings << " outlier reading(s), " << comm_losses
     << " comm loss(es)\n"
     << "  handled: " << samples_retried << " sample(s) retried, "
     << samples_suspect << " flagged suspect, " << samples_lost
     << " lost, " << phase_aborts << " phase abort(s) ("
     << samples_discarded << " sample(s) discarded), " << phases_degraded
     << " phase(s) degraded\n";
  return os.str();
}

std::string FaultReport::serialize() const {
  std::ostringstream os;
  os << chamber_excursions << ' ' << sensor_faults << ' ' << supply_glitches
     << ' ' << clock_jumps << ' ' << readings_dropped << ' '
     << outlier_readings << ' ' << comm_losses << ' ' << samples_retried
     << ' ' << samples_suspect << ' ' << samples_lost << ' ' << phase_aborts
     << ' ' << phases_degraded << ' ' << samples_discarded;
  return os.str();
}

FaultReport FaultReport::deserialize(const std::string& line) {
  std::istringstream is(line);
  FaultReport r;
  if (!(is >> r.chamber_excursions >> r.sensor_faults >> r.supply_glitches >>
        r.clock_jumps >> r.readings_dropped >> r.outlier_readings >>
        r.comm_losses >> r.samples_retried >> r.samples_suspect >>
        r.samples_lost >> r.phase_aborts >> r.phases_degraded >>
        r.samples_discarded)) {
    throw std::runtime_error("FaultReport::deserialize: malformed line");
  }
  return r;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int phase_index,
                             int attempt, Seconds phase_duration,
                             FaultReport* report)
    : plan_(plan),
      rng_(derive_seed(
          derive_seed(plan.seed, static_cast<std::uint64_t>(phase_index)),
          static_cast<std::uint64_t>(attempt))),
      report_(report) {
  const double phase_duration_s = phase_duration.value();
  const double recur =
      std::pow(std::clamp(plan_.event_recurrence, 0.0, 1.0), attempt);
  const double duration = std::max(phase_duration_s, 0.0);

  // Event windows start anywhere in the phase body and may overhang its
  // end: a controller runaway does not resolve itself just because the
  // schedule says the phase is over, so the samples taken at the end of a
  // phase — the ones the recovery metrics hinge on — are fair game.
  if (rng_.bernoulli(plan_.chamber.excursion_probability * recur)) {
    const double len =
        std::min(plan_.chamber.excursion_duration_s.value(), duration);
    excursion_begin_s_ = rng_.uniform(0.0, duration);
    excursion_end_s_ = excursion_begin_s_ + len;
    excursion_ = len > 0.0;
    if (excursion_ && report_) report_->chamber_excursions++;
    if (excursion_ && obs::tracing()) {
      trace_injection("chamber.excursion",
                      {{"begin_s", fmt_fixed(excursion_begin_s_, 0)},
                       {"end_s", fmt_fixed(excursion_end_s_, 0)},
                       {"magnitude_c",
                        fmt_fixed(plan_.chamber.excursion_magnitude_c.value(), 1)}});
    }
  }

  if (rng_.bernoulli(plan_.chamber.sensor_stuck_probability * recur)) {
    const double len =
        std::min(plan_.chamber.sensor_stuck_duration_s.value(), duration);
    stuck_begin_s_ = rng_.uniform(0.0, duration);
    stuck_end_s_ = stuck_begin_s_ + len;
    sensor_stuck_ = len > 0.0;
    if (sensor_stuck_ && report_) report_->sensor_faults++;
    if (sensor_stuck_ && obs::tracing()) {
      trace_injection("chamber.sensor_stuck",
                      {{"begin_s", fmt_fixed(stuck_begin_s_, 0)},
                       {"end_s", fmt_fixed(stuck_end_s_, 0)}});
    }
  }

  const double p_glitch =
      std::min(plan_.supply.glitches_per_day * duration / 86400.0, 1.0) *
      recur;
  if (rng_.bernoulli(p_glitch)) {
    const double len =
        std::min(plan_.supply.glitch_duration_s.value(), duration);
    glitch_begin_s_ = rng_.uniform(0.0, duration);
    glitch_end_s_ = glitch_begin_s_ + len;
    glitch_ = len > 0.0;
    if (glitch_ && report_) report_->supply_glitches++;
    if (glitch_ && obs::tracing()) {
      trace_injection("supply.glitch",
                      {{"begin_s", fmt_fixed(glitch_begin_s_, 0)},
                       {"end_s", fmt_fixed(glitch_end_s_, 0)},
                       {"delta_v", fmt_fixed(plan_.supply.glitch_delta_v.value(), 3)}});
    }
  }

  if (rng_.bernoulli(plan_.rig.clock_jump_probability * recur)) {
    clock_offset_ppm_ =
        (rng_.bernoulli(0.5) ? 1.0 : -1.0) * plan_.rig.clock_jump_ppm;
    if (report_) report_->clock_jumps++;
    if (obs::tracing()) {
      trace_injection("rig.clock_jump",
                      {{"offset_ppm", fmt_fixed(clock_offset_ppm_, 1)}});
    }
  }
}

Celsius FaultInjector::chamber_offset_c(Seconds t_phase) const {
  const double t_phase_s = t_phase.value();
  if (excursion_ && t_phase_s >= excursion_begin_s_ &&
      t_phase_s < excursion_end_s_) {
    return plan_.chamber.excursion_magnitude_c;
  }
  return Celsius{0.0};
}

Volts FaultInjector::supply_offset_v(Seconds t_phase) const {
  const double t_phase_s = t_phase.value();
  if (glitch_ && t_phase_s >= glitch_begin_s_ && t_phase_s < glitch_end_s_) {
    return plan_.supply.glitch_delta_v;
  }
  return Volts{0.0};
}

Celsius FaultInjector::reported_chamber_c(Celsius true_temp, Seconds t_phase) {
  const double true_c = true_temp.value();
  const double t_phase_s = t_phase.value();
  const double reported =
      true_c + plan_.chamber.sensor_drift_c_per_hour * (t_phase_s / 3600.0);
  if (sensor_stuck_ && t_phase_s >= stuck_begin_s_ &&
      t_phase_s < stuck_end_s_) {
    if (!stuck_engaged_) {
      stuck_value_c_ = have_last_reported_ ? last_reported_c_ : reported;
      stuck_engaged_ = true;
    }
    return Celsius{stuck_value_c_};
  }
  have_last_reported_ = true;
  last_reported_c_ = reported;
  return Celsius{reported};
}

bool FaultInjector::reading_dropped() {
  const bool fired = rng_.bernoulli(plan_.rig.dropped_reading_probability);
  if (fired && report_) report_->readings_dropped++;
  if (fired && obs::tracing()) trace_injection("rig.reading_dropped", {});
  return fired;
}

bool FaultInjector::reading_outlier() {
  const bool fired = rng_.bernoulli(plan_.rig.outlier_probability);
  if (fired && report_) report_->outlier_readings++;
  if (fired && obs::tracing()) trace_injection("rig.outlier", {});
  return fired;
}

double FaultInjector::corrupt_counts(double counts) {
  return counts *
         rng_.uniform(plan_.rig.outlier_factor_lo, plan_.rig.outlier_factor_hi);
}

bool FaultInjector::comm_lost() {
  const bool fired = rng_.bernoulli(plan_.comm.loss_probability);
  if (fired && report_) report_->comm_losses++;
  if (fired && obs::tracing()) trace_injection("comm.loss", {});
  return fired;
}

void FaultReport::publish(obs::Registry& registry,
                          const std::string& prefix) const {
  registry.counter(prefix + "chamber_excursions")
      .set(static_cast<std::uint64_t>(chamber_excursions));
  registry.counter(prefix + "sensor_faults")
      .set(static_cast<std::uint64_t>(sensor_faults));
  registry.counter(prefix + "supply_glitches")
      .set(static_cast<std::uint64_t>(supply_glitches));
  registry.counter(prefix + "clock_jumps")
      .set(static_cast<std::uint64_t>(clock_jumps));
  registry.counter(prefix + "readings_dropped")
      .set(static_cast<std::uint64_t>(readings_dropped));
  registry.counter(prefix + "outlier_readings")
      .set(static_cast<std::uint64_t>(outlier_readings));
  registry.counter(prefix + "comm_losses")
      .set(static_cast<std::uint64_t>(comm_losses));
  registry.counter(prefix + "samples_retried")
      .set(static_cast<std::uint64_t>(samples_retried));
  registry.counter(prefix + "samples_suspect")
      .set(static_cast<std::uint64_t>(samples_suspect));
  registry.counter(prefix + "samples_lost")
      .set(static_cast<std::uint64_t>(samples_lost));
  registry.counter(prefix + "phase_aborts")
      .set(static_cast<std::uint64_t>(phase_aborts));
  registry.counter(prefix + "phases_degraded")
      .set(static_cast<std::uint64_t>(phases_degraded));
  registry.counter(prefix + "samples_discarded")
      .set(static_cast<std::uint64_t>(samples_discarded));
}

}  // namespace ash::tb
