#include "ash/tb/test_case.h"

#include <stdexcept>

#include "ash/util/constants.h"

namespace ash::tb {

Seconds TestCase::total_duration_s() const {
  Seconds total{0.0};
  for (const auto& p : phases) total = total + p.duration_s;
  return total;
}

Phase burn_in_phase() {
  // "As a baseline all chips are stressed at 20 degC and 1.2 V for 2 hours
  // initially" — normal operation, so AC.
  Phase p;
  p.label = "BURNIN";
  p.mode = fpga::RoMode::kAcOscillating;
  p.supply_v = Volts{1.2};
  p.chamber_c = Celsius{20.0};
  p.duration_s = units::hours(2.0);
  p.sample_every_s = units::minutes(20.0);
  return p;
}

Phase ac_stress_phase(std::string label, Celsius temp, Seconds duration,
                      Seconds sample_every) {
  Phase p;
  p.label = std::move(label);
  p.mode = fpga::RoMode::kAcOscillating;
  p.supply_v = Volts{1.2};
  p.chamber_c = temp;
  p.duration_s = duration;
  p.sample_every_s = sample_every;
  return p;
}

Phase dc_stress_phase(std::string label, Celsius temp, Seconds duration,
                      Seconds sample_every) {
  Phase p;
  p.label = std::move(label);
  p.mode = fpga::RoMode::kDcFrozen;
  p.supply_v = Volts{1.2};
  p.chamber_c = temp;
  p.duration_s = duration;
  p.sample_every_s = sample_every;
  return p;
}

Phase recovery_phase(std::string label, Volts voltage, Celsius temp,
                     Seconds duration, Seconds sample_every) {
  Phase p;
  p.label = std::move(label);
  p.mode = fpga::RoMode::kSleep;
  p.supply_v = voltage;
  p.chamber_c = temp;
  p.duration_s = duration;
  p.sample_every_s = sample_every;
  return p;
}

std::vector<TestCase> paper_campaign() {
  std::vector<TestCase> campaign;

  // Chip 1: accelerated AC stress only.
  campaign.push_back(
      {"chip1", 1, {burn_in_phase(), ac_stress_phase("AS110AC24", Celsius{110.0}, units::hours(24.0))}});

  // Chip 2: DC stress, then passive recovery (power gated, room temp).
  campaign.push_back({"chip2",
                      2,
                      {burn_in_phase(), dc_stress_phase("AS110DC24", Celsius{110.0}, units::hours(24.0)),
                       recovery_phase("R20Z6", Volts{0.0}, Celsius{20.0}, units::hours(6.0))}});

  // Chip 3: DC stress, then negative-voltage recovery at room temperature.
  campaign.push_back({"chip3",
                      3,
                      {burn_in_phase(), dc_stress_phase("AS110DC24", Celsius{110.0}, units::hours(24.0)),
                       recovery_phase("AR20N6", Volts{-0.3}, Celsius{20.0}, units::hours(6.0))}});

  // Chip 4: 100 degC DC stress, then high-temperature recovery at 0 V.
  campaign.push_back({"chip4",
                      4,
                      {burn_in_phase(), dc_stress_phase("AS100DC24", Celsius{100.0}, units::hours(24.0)),
                       recovery_phase("AR110Z6", Volts{0.0}, Celsius{110.0}, units::hours(6.0))}});

  // Chip 5: DC stress + combined-knob recovery, then re-stressed for 48 h
  // and recovered for 12 h — same active/sleep ratio, different stress.
  campaign.push_back({"chip5",
                      5,
                      {burn_in_phase(), dc_stress_phase("AS110DC24", Celsius{110.0}, units::hours(24.0)),
                       recovery_phase("AR110N6", Volts{-0.3}, Celsius{110.0}, units::hours(6.0)),
                       dc_stress_phase("AS110DC48", Celsius{110.0}, units::hours(48.0)),
                       recovery_phase("AR110N12", Volts{-0.3}, Celsius{110.0}, units::hours(12.0))}});

  return campaign;
}

TestCase campaign_case(const std::string& phase_label) {
  for (const auto& tc : paper_campaign()) {
    for (const auto& p : tc.phases) {
      if (p.label == phase_label) return tc;
    }
  }
  throw std::out_of_range("campaign_case: unknown Table 1 label '" +
                          phase_label + "'");
}

}  // namespace ash::tb
