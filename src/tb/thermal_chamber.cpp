#include "ash/tb/thermal_chamber.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/util/constants.h"

namespace ash::tb {

ThermalChamber::ThermalChamber(const ChamberConfig& config)
    : config_(config),
      base_c_(config.initial_c),
      target_c_(config.initial_c),
      noise_(config.fluctuation_sigma_c, config.fluctuation_tau_s,
             Rng(config.seed)) {
  if (config_.ramp_c_per_s <= 0.0 || config_.fluctuation_sigma_c < 0.0 ||
      config_.fluctuation_tau_s <= 0.0) {
    throw std::invalid_argument("ThermalChamber: bad configuration");
  }
}

double ThermalChamber::temperature_k() const {
  return celsius(temperature_c());
}

double ThermalChamber::seconds_to_target() const {
  return std::abs(target_c_ - base_c_) / config_.ramp_c_per_s;
}

void ThermalChamber::advance(Seconds dt) {
  const double dt_s = dt.value();
  if (dt_s < 0.0) {
    throw std::invalid_argument("ThermalChamber::advance: negative dt");
  }
  const double max_step = config_.ramp_c_per_s * dt_s;
  const double error = target_c_ - base_c_;
  if (std::abs(error) <= max_step) {
    base_c_ = target_c_;
  } else {
    base_c_ += std::copysign(max_step, error);
  }
  noise_.advance(Seconds{dt_s});
}

}  // namespace ash::tb
