#include "ash/tb/thermal_chamber.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/util/constants.h"

namespace ash::tb {

ThermalChamber::ThermalChamber(const ChamberConfig& config)
    : config_(config),
      base_c_(config.initial_c.value()),
      target_c_(config.initial_c.value()),
      noise_(config.fluctuation_sigma_c.value(), config.fluctuation_tau_s.value(),
             Rng(config.seed)) {
  if (config_.ramp_c_per_s <= 0.0 || config_.fluctuation_sigma_c < Celsius{0.0} ||
      config_.fluctuation_tau_s <= Seconds{0.0}) {
    throw std::invalid_argument("ThermalChamber: bad configuration");
  }
}

Kelvin ThermalChamber::temperature_k() const {
  return units::to_kelvin(temperature_c());
}

Seconds ThermalChamber::seconds_to_target() const {
  return Seconds{std::abs(target_c_ - base_c_) / config_.ramp_c_per_s};
}

void ThermalChamber::advance(Seconds dt) {
  const double dt_s = dt.value();
  if (dt_s < 0.0) {
    throw std::invalid_argument("ThermalChamber::advance: negative dt");
  }
  const double max_step = config_.ramp_c_per_s * dt_s;
  const double error = target_c_ - base_c_;
  if (std::abs(error) <= max_step) {
    base_c_ = target_c_;
  } else {
    base_c_ += std::copysign(max_step, error);
  }
  noise_.advance(Seconds{dt_s});
}

}  // namespace ash::tb
