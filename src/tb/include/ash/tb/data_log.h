#pragma once

/// \file data_log.h
/// Campaign sample log.  Every measurement the runner takes lands here with
/// full provenance (case, chip, phase, schedule time, environment), so the
/// analysis layer (ash::core metrics, the figure benches and the CSV
/// exports) can slice it any way the paper does.

#include <iosfwd>
#include <string>
#include <vector>

#include "ash/util/series.h"

namespace ash::tb {

/// One logged measurement.
struct SampleRecord {
  std::string test_case;   ///< e.g. "chip5"
  int chip_id = 0;
  std::string phase;       ///< Table 1 label, e.g. "AR110N6"
  double t_campaign_s = 0.0;  ///< time since the campaign started
  double t_phase_s = 0.0;     ///< time since the current phase started
  double chamber_c = 0.0;     ///< chamber temperature at the sample
  double supply_v = 0.0;      ///< phase supply setpoint
  double counts = 0.0;        ///< averaged counter output
  double frequency_hz = 0.0;  ///< Eq. (14)
  double delay_s = 0.0;       ///< Eq. (15)
};

/// Append-only sample log with slicing helpers.
class DataLog {
 public:
  void add(SampleRecord record) { records_.push_back(std::move(record)); }
  void append(const DataLog& other);

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  const std::vector<SampleRecord>& records() const { return records_; }

  /// All records of one phase label, in log order.
  std::vector<SampleRecord> phase_records(const std::string& phase) const;

  /// Distinct phase labels in first-appearance order.
  std::vector<std::string> phases() const;

  /// Delay-vs-phase-time series for one phase (seconds vs seconds).
  Series delay_series(const std::string& phase) const;

  /// Frequency-vs-phase-time series for one phase.
  Series frequency_series(const std::string& phase) const;

  /// Write all records as CSV (header + rows).
  void write_csv(std::ostream& os) const;

  /// Parse a log previously produced by write_csv.
  static DataLog read_csv(std::istream& is);

 private:
  std::vector<SampleRecord> records_;
};

}  // namespace ash::tb
