#pragma once

/// \file data_log.h
/// Campaign sample log.  Every measurement the runner takes lands here with
/// full provenance (case, chip, phase, schedule time, environment), so the
/// analysis layer (ash::core metrics, the figure benches and the CSV
/// exports) can slice it any way the paper does.

#include <iosfwd>
#include <string>
#include <vector>

#include "ash/util/series.h"
#include "ash/util/units.h"

namespace ash::tb {

/// Per-sample data quality, assigned by the fault-tolerant runner.  Faulty
/// samples are flagged, never silently dropped: the log keeps the full
/// campaign story while `delay_series`/`frequency_series` exclude records
/// that carry no measurement (kLost).
enum class SampleQuality {
  kGood = 0,     ///< clean first-attempt measurement
  kRetried = 1,  ///< clean measurement obtained after >= 1 retry
  kSuspect = 2,  ///< measured, but implausible (kept and flagged)
  kLost = 3,     ///< retries exhausted, no data (value fields are zero)
};

const char* to_string(SampleQuality quality);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
SampleQuality parse_sample_quality(const std::string& name);

/// One logged measurement.
struct SampleRecord {
  std::string test_case;   ///< e.g. "chip5"
  int chip_id = 0;
  std::string phase;       ///< Table 1 label, e.g. "AR110N6"
  Seconds t_campaign_s{0.0};  ///< time since the campaign started
  Seconds t_phase_s{0.0};     ///< time since the current phase started
  Celsius chamber_c{0.0};     ///< *reported* chamber temperature (sensor)
  Volts supply_v{0.0};        ///< phase supply setpoint
  double counts = 0.0;        ///< averaged counter output
  Hertz frequency_hz{0.0};    ///< Eq. (14)
  Seconds delay_s{0.0};       ///< Eq. (15)
  SampleQuality quality = SampleQuality::kGood;
  int retries = 0;            ///< measurement attempts beyond the first

  /// True when the record carries a usable measurement (not kLost).
  bool usable() const { return quality != SampleQuality::kLost; }
};

/// Append-only sample log with slicing helpers.
class DataLog {
 public:
  void add(SampleRecord record) { records_.push_back(std::move(record)); }
  void append(const DataLog& other);

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  const std::vector<SampleRecord>& records() const { return records_; }

  /// All records of one phase label, in log order.
  std::vector<SampleRecord> phase_records(const std::string& phase) const;

  /// Distinct phase labels in first-appearance order.
  std::vector<std::string> phases() const;

  /// Number of records carrying the given quality flag.
  std::size_t count_quality(SampleQuality quality) const;

  /// Delay-vs-phase-time series for one phase (seconds vs seconds).
  /// Records without a usable measurement (kLost) are excluded; flagged but
  /// measured records (kRetried/kSuspect) are included.
  Series delay_series(const std::string& phase) const;

  /// Frequency-vs-phase-time series for one phase (same quality rules).
  Series frequency_series(const std::string& phase) const;

  /// Fractional frequency degradation over the whole log: (f_first -
  /// f_last) / f_first across usable records.  Negative when the device
  /// recovered past its first sample; 0 when fewer than two usable records
  /// (or a nonpositive first frequency) make the ratio meaningless.  The
  /// fleet service ranks shards for rejuvenation by this number.
  double fractional_degradation() const;

  /// Write all records as CSV (header + rows).
  void write_csv(std::ostream& os) const;

  /// Parse a log previously produced by write_csv.
  static DataLog read_csv(std::istream& is);

 private:
  std::vector<SampleRecord> records_;
};

}  // namespace ash::tb
