#pragma once

/// \file population_runner.h
/// The batch-engine lab: one campaign driven over a whole population of
/// chips in lockstep.
///
/// A statistical sweep runs the *same* schedule with the *same*
/// RunnerConfig on N chips that differ only in their seeds (corner,
/// mismatch, traps).  Run solo, that is N independent campaigns that
/// recompute identical instrument noise, identical fault draws and — for
/// homogeneous populations — identical trap-rate tables N times over.  The
/// PopulationRunner instead advances every chip through the schedule
/// together:
///
///   * one shared thermal chamber and supply (their noise streams derive
///     from (config.seed, phase, attempt), which the population shares, so
///     every solo run would hold bit-identical instrument state anyway);
///   * per-chip measurement rigs and fault injectors, constructed with the
///     solo derivation chains so each chip's recorded noise matches its
///     solo run bit-for-bit;
///   * the aging physics batched: one bti::BatchEnsemble per device site
///     (stage index x device index) spanning the population, so rates are
///     shared across chips whose trap kinetics coincide and the per-chip
///     work collapses to the fused occupancy update.
///
/// Determinism contract: in exact mode the per-chip sample logs are
/// bit-identical to N independent ExperimentRunner::run calls with the
/// same RunnerConfig and per-chip test cases sharing this schedule.  The
/// bench bench_ablation_chip_variation asserts that byte equality against
/// both the threaded and the process-sharded per-chip paths.
///
/// Scope: this is the *clean-lab fast path*.  Lockstep cannot survive a
/// divergent control-flow decision for a single chip — a retried sample or
/// a watchdog phase rewind ages one chip's instruments past its
/// neighbours'.  Any sample that comes back invalid or implausible, and
/// any configuration that could not replay solo (the kill switch), throws
/// instead of silently diverging; run those chips solo.

#include <vector>

#include "ash/fpga/chip.h"
#include "ash/tb/data_log.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/thread_pool.h"

namespace ash::tb {

/// Batch-engine knobs, forwarded to the per-site bti::BatchEnsemble.
struct PopulationRunnerConfig {
  /// false (default): exact mode, bit-identical to the solo runner.
  /// true: util::fast_exp physics (bounded approximation, not
  /// bit-identical — see bti::BatchConfig::fast_exp).
  bool fast_exp = false;
  /// Optional worker pool for the per-site occupancy sweeps.
  util::ThreadPool* pool = nullptr;
};

/// The lockstep population lab.
class PopulationRunner {
 public:
  /// `config` plays the role it has for ExperimentRunner and is shared by
  /// the whole population.  config.abort_at_campaign_s must stay disabled
  /// (< 0): a mid-campaign kill is a per-chip checkpoint concern the
  /// lockstep path does not model.
  explicit PopulationRunner(const RunnerConfig& config,
                            const PopulationRunnerConfig& population = {});

  /// Run the full schedule on every chip, mutating their aging state, and
  /// return one sample log per chip (in chip order).  All chips must share
  /// one RO structure (stage count).  `test_case.chip_id` is ignored, as
  /// in the solo runner — logged chip ids come from the chips themselves.
  ///
  /// Throws std::invalid_argument for an empty/null/mixed-structure
  /// population or an unsupported config, and std::logic_error when the
  /// campaign leaves the clean-lab contract (a sample retry, a watchdog
  /// trip, a lost reading) and bit-identical lockstep cannot continue.
  std::vector<DataLog> run(const std::vector<fpga::FpgaChip*>& chips,
                           const TestCase& test_case);

  const RunnerConfig& config() const { return config_; }

 private:
  RunnerConfig config_;
  PopulationRunnerConfig population_;
};

}  // namespace ash::tb
