#pragma once

/// \file power_supply.h
/// Virtual bench DC supply — "core voltage is provided by a DC power supply
/// and its nominal value is 1.2 V" (Sec. 4.3).  Supports the negative rail
/// used during accelerated recovery (-0.3 V) and enforces the safety
/// interlocks of Sec. 6.1: the lateral pn-junction breakdown bound on
/// negative bias and an absolute maximum rating on the positive side.

#include <cstdint>

#include "ash/util/ou_noise.h"
#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::tb {

/// Supply construction parameters.
struct SupplyConfig {
  Volts nominal_v{1.2};
  /// Most negative programmable output (breakdown interlock).
  Volts min_v{-0.5};
  /// Absolute maximum rating of the DUT core rail.
  Volts max_v{1.5};
  /// Output ripple: stationary sigma and correlation time.
  Volts ripple_sigma_v{1e-3};
  Seconds ripple_tau_s{5.0};
  std::uint64_t seed = default_seed(SeedStream::kSupply);
};

/// A programmable DC supply with ripple.
class PowerSupply {
 public:
  explicit PowerSupply(const SupplyConfig& config);

  /// Program the output.  Throws std::out_of_range outside the interlock
  /// window [min_v, max_v].
  void set_voltage(Volts volts);
  Volts setpoint_v() const { return setpoint_v_; }

  /// Instantaneous output including ripple.
  Volts output_v() const { return Volts{setpoint_v_.value() + ripple_.value()}; }

  /// Advance ripple state.
  void advance(Seconds dt);

  const SupplyConfig& config() const { return config_; }

 private:
  SupplyConfig config_;
  Volts setpoint_v_;
  OrnsteinUhlenbeck ripple_;
};

}  // namespace ash::tb
