#pragma once

/// \file power_supply.h
/// Virtual bench DC supply — "core voltage is provided by a DC power supply
/// and its nominal value is 1.2 V" (Sec. 4.3).  Supports the negative rail
/// used during accelerated recovery (-0.3 V) and enforces the safety
/// interlocks of Sec. 6.1: the lateral pn-junction breakdown bound on
/// negative bias and an absolute maximum rating on the positive side.

#include <cstdint>

#include "ash/util/ou_noise.h"
#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::tb {

/// Supply construction parameters.
struct SupplyConfig {
  double nominal_v = 1.2;
  /// Most negative programmable output (breakdown interlock).
  double min_v = -0.5;
  /// Absolute maximum rating of the DUT core rail.
  double max_v = 1.5;
  /// Output ripple: stationary sigma (volts) and correlation time.
  double ripple_sigma_v = 1e-3;
  double ripple_tau_s = 5.0;
  std::uint64_t seed = default_seed(SeedStream::kSupply);
};

/// A programmable DC supply with ripple.
class PowerSupply {
 public:
  explicit PowerSupply(const SupplyConfig& config);

  /// Program the output.  Throws std::out_of_range outside the interlock
  /// window [min_v, max_v].
  void set_voltage(Volts volts);
  double setpoint_v() const { return setpoint_v_; }

  /// Instantaneous output including ripple.
  double output_v() const { return setpoint_v_ + ripple_.value(); }

  /// Advance ripple state.
  void advance(Seconds dt);

  const SupplyConfig& config() const { return config_; }

 private:
  SupplyConfig config_;
  double setpoint_v_;
  OrnsteinUhlenbeck ripple_;
};

}  // namespace ash::tb
