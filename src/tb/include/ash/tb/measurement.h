#pragma once

/// \file measurement.h
/// The measurement rig: clock generator + gated counter + reading
/// averaging.
///
/// "A clock generator provides the external clock source for the counter"
/// (Sec. 4.3); "the output of the counter is read from a certain time range
/// that has stable values" (Sec. 4.2) — i.e. several gated readings are
/// taken and averaged.  The rig owns the only non-determinism of a
/// measurement (counting noise and reference-clock ppm error), so chip
/// state and measurement state stay cleanly separated.

#include <cstdint>

#include "ash/fpga/counter.h"
#include "ash/util/random.h"
#include "ash/util/stats.h"
#include "ash/util/units.h"

namespace ash::tb {

class FaultInjector;

/// Reference clock source with a static calibration error.
struct ClockGenerator {
  Hertz nominal_hz{500.0};
  /// Parts-per-million frequency error of this particular instrument.
  double error_ppm = 0.0;

  Hertz actual_hz() const { return nominal_hz * (1.0 + error_ppm * 1e-6); }
};

/// Rig configuration.
struct MeasurementConfig {
  ClockGenerator clock;
  fpga::CounterConfig counter;
  /// Readings combined per logged sample.
  int readings_per_sample = 4;
  /// How the readings of one sample are combined.  kMean reproduces the
  /// paper's plain averaging; kMedian / kTrimmedMean reject outlier
  /// readings injected by a dirty lab.
  RobustEstimator estimator = RobustEstimator::kMean;
  /// Fraction trimmed from each tail for kTrimmedMean.
  double trim_fraction = 0.25;
  std::uint64_t seed = default_seed(SeedStream::kMeasurement);
};

/// One combined measurement.
struct Measurement {
  double counts = 0.0;         ///< robust location of the gated counts
  Hertz frequency_hz{0.0};     ///< inferred oscillator frequency (Eq. 14)
  Seconds delay_s{0.0};        ///< inferred CUT delay (Eq. 15)
  int readings_taken = 0;     ///< gated readings attempted
  int readings_used = 0;      ///< readings that survived (not dropped)

  /// False when every reading of the sample was lost.
  bool valid() const { return readings_used > 0; }
};

/// Averaging frequency-measurement rig.
class MeasurementRig {
 public:
  explicit MeasurementRig(const MeasurementConfig& config);

  /// Measure a true RO frequency: `readings_per_sample` gated counts are
  /// taken and combined by the configured estimator.  The counter believes
  /// the clock is nominal, so a ppm clock error biases the inferred
  /// frequency accordingly.  With a fault injector, individual readings may
  /// be dropped or corrupted; a returned measurement with no surviving
  /// readings has valid() == false and zero values.
  Measurement measure(Hertz true_frequency, FaultInjector* faults = nullptr);

  const MeasurementConfig& config() const { return config_; }

  /// Wall-clock time one averaged sample occupies (the RO must run for
  /// this long — the paper's <3 s "data sampling overhead").
  Seconds sample_duration_s() const;

 private:
  MeasurementConfig config_;
  fpga::FrequencyCounter counter_;
};

}  // namespace ash::tb
