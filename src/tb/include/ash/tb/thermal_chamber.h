#pragma once

/// \file thermal_chamber.h
/// Virtual thermal chamber — the paper's chips "are heated up or cooled
/// down by a thermal chamber, which allows temperature fluctuation of
/// +/-0.3 degC" (Sec. 4.3).
///
/// The chamber tracks a setpoint with a finite ramp rate and wanders around
/// it with a mean-reverting (Ornstein–Uhlenbeck) error whose 3-sigma band
/// matches the published +/-0.3 degC tolerance.

#include <cstdint>

#include "ash/util/ou_noise.h"
#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::tb {

/// Chamber construction parameters.
struct ChamberConfig {
  /// Initial temperature.
  Celsius initial_c{20.0};
  /// Ramp rate toward a new setpoint (degC per second).  The default
  /// corresponds to a typical bench chamber (~3 degC/min); set to a huge
  /// value for idealized instant-setpoint experiments.
  double ramp_c_per_s = 3.0 / 60.0;
  /// Stationary sigma of the fluctuation: 0.1 degC -> +/-0.3 at 3 sigma.
  Celsius fluctuation_sigma_c{0.1};
  /// Correlation time of the fluctuation.
  Seconds fluctuation_tau_s{120.0};
  /// Noise stream seed.
  std::uint64_t seed = default_seed(SeedStream::kChamber);
};

/// A setpoint-tracking chamber with realistic fluctuation.
class ThermalChamber {
 public:
  explicit ThermalChamber(const ChamberConfig& config);

  /// Command a new setpoint.  The chamber ramps toward it.
  void set_target(Celsius target) { target_c_ = target.value(); }
  Celsius target_c() const { return Celsius{target_c_}; }

  /// Current chamber temperature, including fluctuation.
  Celsius temperature_c() const { return Celsius{base_c_ + noise_.value()}; }
  /// Same in kelvin.
  Kelvin temperature_k() const;

  /// True once the ramp has reached the setpoint (fluctuation aside).
  bool at_target() const { return base_c_ == target_c_; }

  /// Ramping time still needed to reach the setpoint.
  Seconds seconds_to_target() const;

  /// Advance chamber state by dt.
  void advance(Seconds dt);

 private:
  ChamberConfig config_;
  double base_c_;
  double target_c_;
  OrnsteinUhlenbeck noise_;
};

}  // namespace ash::tb
