#pragma once

/// \file test_case.h
/// Encoding of the paper's accelerated test schedule — Table 1.
///
/// A `TestCase` is a named sequence of phases run on one chip; a phase
/// fixes the RO mode (AC stress / DC stress / sleep), supply voltage,
/// chamber setpoint, duration and sampling cadence.  `paper_campaign()`
/// returns the exact five-chip campaign of Table 1, including the 2-hour
/// room-temperature burn-in the paper applies to every chip first and the
/// re-stress (AS110DC48 -> AR110N12) appended to chip 5.

#include <string>
#include <vector>

#include "ash/fpga/ring_oscillator.h"
#include "ash/util/units.h"

namespace ash::tb {

/// One schedule segment.
struct Phase {
  /// Case label as in Table 1, e.g. "AS110DC24" or "AR110N6".
  std::string label;
  /// RO operating mode during the phase.
  fpga::RoMode mode = fpga::RoMode::kDcFrozen;
  /// Core supply during the phase.
  Volts supply_v{1.2};
  /// Chamber setpoint.
  Celsius chamber_c{20.0};
  /// Phase duration.
  Seconds duration_s{0.0};
  /// Sampling cadence (time between logged measurements); zero disables
  /// sampling inside the phase (endpoints are always logged).
  Seconds sample_every_s{0.0};
  /// AC-stress duty (ignored for DC/sleep).
  double ac_duty = 0.5;
};

/// A named sequence of phases bound to a chip number.
struct TestCase {
  std::string name;
  int chip_id = 1;
  std::vector<Phase> phases;

  /// Total scheduled duration.
  Seconds total_duration_s() const;
};

/// Phase builders mirroring Table 1's vocabulary.  Durations are given as
/// `units::hours(...)` / `units::minutes(...)` of the printed table values.
Phase burn_in_phase();
Phase ac_stress_phase(std::string label, Celsius temp, Seconds duration,
                      Seconds sample_every = units::minutes(20.0));
Phase dc_stress_phase(std::string label, Celsius temp, Seconds duration,
                      Seconds sample_every = units::minutes(20.0));
Phase recovery_phase(std::string label, Volts voltage, Celsius temp,
                     Seconds duration, Seconds sample_every = units::minutes(30.0));

/// The exact Table 1 campaign: one TestCase per chip (chip 5 carries the
/// re-stress extension).  Every case starts with the 2 h/20 degC/1.2 V
/// burn-in baseline.
std::vector<TestCase> paper_campaign();

/// Convenience lookups into `paper_campaign()` by Table 1 case label;
/// throws std::out_of_range for unknown labels.
TestCase campaign_case(const std::string& phase_label);

}  // namespace ash::tb
