#pragma once

/// \file fault.h
/// Deterministic fault injection for the virtual lab.
///
/// Month-long accelerated campaigns on real hardware are never clean:
/// chambers overshoot their setpoints, supplies droop, counter readings get
/// dropped or come back as garbage, and the chip link flakes out.  A
/// `FaultPlan` describes such a dirty lab as a seeded scenario; a
/// `FaultInjector` replays one phase attempt of it bit-exactly.  The
/// experiment runner consults the injector at every step, so the same plan
/// and seed always produce the same corrupted campaign — fault-handling
/// code paths are as reproducible as the ideal ones.
///
/// Two kinds of corruption are distinguished:
///   * **truth corruption** (setpoint excursions, supply glitches) changes
///     what the chip physically experiences — aging really is different;
///   * **sensor corruption** (stuck/drifting chamber sensor, dropped or
///     outlier readings, clock jumps, lost chip communication) changes only
///     what the lab *records*.
///
/// Phase-level events are transient: when the runner's watchdog aborts and
/// re-runs a phase, each event recurs with its probability scaled by
/// `event_recurrence` per attempt — re-running a ruined session later
/// rarely hits the same glitch again.

#include <cstdint>
#include <string>

#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::obs {
class Registry;
}  // namespace ash::obs

namespace ash::tb {

/// Thermal-chamber faults.
struct ChamberFaults {
  /// Probability that a phase suffers a setpoint excursion (controller
  /// runaway): the *actual* chamber temperature overshoots the phase
  /// setpoint for a window of the phase body.
  double excursion_probability = 0.0;
  /// Excursion amplitude (above setpoint).
  Celsius excursion_magnitude_c{30.0};
  /// Excursion window length (clipped to the phase duration).
  Seconds excursion_duration_s{5400.0};
  /// Hardware ceiling of the chamber: an excursion saturates here no
  /// matter how far the runaway controller pushes (real chambers have an
  /// over-temperature cutout; the chip model also has a functional limit).
  Celsius excursion_ceiling_c{120.0};
  /// Probability that the chamber's *sensor* sticks for a window of the
  /// phase: the reported temperature freezes at its last value while the
  /// chamber itself keeps regulating.
  double sensor_stuck_probability = 0.0;
  /// Length of a stuck-sensor window.
  Seconds sensor_stuck_duration_s{3600.0};
  /// Slow calibration drift of the *reported* temperature (degC per hour
  /// of phase time); the chamber itself is unaffected.
  double sensor_drift_c_per_hour = 0.0;
};

/// DC-supply faults.
struct SupplyFaults {
  /// Expected droop/brownout events per simulated day; each phase draws at
  /// most one event with probability min(1, rate * phase_duration / day).
  double glitches_per_day = 0.0;
  /// Depth of the droop (added to the programmed output; negative).
  Volts glitch_delta_v{-0.15};
  /// Glitch duration.
  Seconds glitch_duration_s{120.0};
};

/// Measurement-rig faults.
struct RigFaults {
  /// Probability that one gated counter reading is dropped outright (the
  /// rig then averages over the remaining readings of the sample).
  double dropped_reading_probability = 0.0;
  /// Probability that one gated reading comes back corrupted (counter
  /// glitch / readback bus error): counts are scaled by a factor drawn
  /// uniformly from [outlier_factor_lo, outlier_factor_hi].
  double outlier_probability = 0.0;
  double outlier_factor_lo = 1.5;
  double outlier_factor_hi = 4.0;
  /// Probability that a phase runs with the reference clock jumped off
  /// calibration by +/- clock_jump_ppm (a systematic bias for the phase).
  double clock_jump_probability = 0.0;
  double clock_jump_ppm = 200.0;
};

/// Chip-communication faults.
struct CommFaults {
  /// Probability that one sample attempt loses the chip link entirely: the
  /// measurement happens (the RO wakes and ages) but no data comes back.
  double loss_probability = 0.0;
};

/// A complete, seeded fault scenario.  Default-constructed = ideal lab.
struct FaultPlan {
  ChamberFaults chamber;
  SupplyFaults supply;
  RigFaults rig;
  CommFaults comm;
  /// Per-attempt scale factor on phase-event probabilities after a
  /// watchdog abort (transient faults rarely recur on a re-run).
  double event_recurrence = 0.25;
  /// Root seed of every fault draw, independent of instrument noise.
  std::uint64_t seed = default_seed(SeedStream::kFaultPlan);

  /// True when every fault channel is disabled.
  bool ideal() const;

  /// Presets.  "representative" is the acceptance scenario: ~1 % dropped
  /// readings, one chamber excursion per phase, ~one supply glitch per
  /// multi-day campaign.  "harsh" cranks every channel up.
  static FaultPlan none();
  static FaultPlan representative();
  static FaultPlan harsh();
  /// Preset lookup by name ("none" | "representative" | "harsh"); throws
  /// std::invalid_argument for unknown names.
  static FaultPlan by_name(const std::string& name);
};

/// End-of-run tally of injected events and the runner's responses.
struct FaultReport {
  // Injected environment/instrument events.
  int chamber_excursions = 0;
  int sensor_faults = 0;
  int supply_glitches = 0;
  int clock_jumps = 0;
  // Reading/sample-level faults encountered.
  int readings_dropped = 0;
  int outlier_readings = 0;
  int comm_losses = 0;
  // Runner responses.
  int samples_retried = 0;   ///< samples that needed at least one retry
  int samples_suspect = 0;   ///< kept but implausible (flagged kSuspect)
  int samples_lost = 0;      ///< retries exhausted with no data (kLost)
  int phase_aborts = 0;      ///< watchdog trips that rewound a phase
  int phases_degraded = 0;   ///< phases accepted with the watchdog tripped
  int samples_discarded = 0; ///< samples thrown away by phase rewinds

  /// True when nothing was injected and nothing had to be handled.
  bool clean() const;
  /// Field-wise sum.
  void merge(const FaultReport& other);
  /// Multi-line human-readable summary.
  std::string render() const;
  /// One-line serialization (fixed-order integers) and its inverse.
  std::string serialize() const;
  static FaultReport deserialize(const std::string& line);

  /// Set one `prefix`-named counter per field in `registry` from this
  /// report's final tallies.  Because the counters are *set* from the same
  /// integers the report carries, the metrics snapshot and the report can
  /// never disagree.
  void publish(obs::Registry& registry,
               const std::string& prefix = "tb.fault.") const;

  bool operator==(const FaultReport&) const = default;
};

/// Fault state of one phase attempt.  Every draw derives from
/// (plan.seed, phase_index, attempt), so identical plans replay
/// bit-identically and a watchdog re-run (attempt + 1) sees fresh,
/// recurrence-scaled events.  Event windows live on the phase-body clock
/// and may overhang the end of the phase (a runaway controller does not
/// stop because the schedule says so); the pre-phase chamber
/// stabilization ramp is fault-free.
class FaultInjector {
 public:
  /// `report` (optional) is incremented as events are drawn and faults
  /// fire; it must outlive the injector.
  FaultInjector(const FaultPlan& plan, int phase_index, int attempt,
                Seconds phase_duration, FaultReport* report = nullptr);

  // --- truth corruption (changes what the chip experiences) ---
  /// Chamber temperature offset during an excursion (zero outside).
  Celsius chamber_offset_c(Seconds t_phase) const;
  /// Supply voltage offset during a glitch (zero outside).
  Volts supply_offset_v(Seconds t_phase) const;
  /// Reference-clock calibration jump for this phase (ppm).
  double clock_offset_ppm() const { return clock_offset_ppm_; }

  // --- sensor corruption (changes only what is recorded) ---
  /// The chamber temperature the lab writes into the log for a sample at
  /// t_phase, given the true (possibly excursed) temperature.  Stateful:
  /// a stuck-sensor window freezes the last reported value.
  Celsius reported_chamber_c(Celsius true_c, Seconds t_phase);

  // --- per-reading / per-sample stochastic faults (consume RNG state) ---
  bool reading_dropped();
  bool reading_outlier();
  double corrupt_counts(double counts);
  bool comm_lost();

 private:
  FaultPlan plan_;
  Rng rng_;
  FaultReport* report_;
  bool excursion_ = false;
  double excursion_begin_s_ = 0.0;
  double excursion_end_s_ = 0.0;
  bool glitch_ = false;
  double glitch_begin_s_ = 0.0;
  double glitch_end_s_ = 0.0;
  double clock_offset_ppm_ = 0.0;
  bool sensor_stuck_ = false;
  double stuck_begin_s_ = 0.0;
  double stuck_end_s_ = 0.0;
  bool stuck_engaged_ = false;
  double stuck_value_c_ = 0.0;
  bool have_last_reported_ = false;
  double last_reported_c_ = 0.0;
};

}  // namespace ash::tb
