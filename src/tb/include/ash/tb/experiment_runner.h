#pragma once

/// \file experiment_runner.h
/// Drives a TestCase on a chip inside the virtual lab.
///
/// The runner owns the instruments (thermal chamber, DC supply, measurement
/// rig) and reproduces the paper's measurement procedure:
///   * the chamber ramps to each phase's setpoint before the phase clock
///     starts (instant by default for idealized reproduction);
///   * during DC stress the RO is frozen and "enabled only every 20 minutes
///     for data recording" — each sample wakes the ring at the nominal
///     supply for the gated count (<3 s of AC overhead, which the runner
///     faithfully applies as aging);
///   * during sleep the RO "wakes up every 30 minutes for data sampling",
///     which briefly interrupts recovery the same way;
///   * every logged value passes through the counter model (quantization +
///     counting noise + averaging), never the true frequency.
///
/// On top of the ideal procedure the runner is a *fault-tolerant campaign
/// operator*: with a non-ideal `FaultPlan` it retries failed samples with
/// bounded backoff in simulated time (retries cost aging — the RO must wake
/// again), rejects outlier readings through the rig's robust estimator,
/// aborts a phase whose readings stay implausible (watchdog) and rewinds it
/// from a chip checkpoint, and annotates every logged sample with a quality
/// flag instead of silently dropping data.  Determinism contract: instrument
/// noise and fault draws derive from (seed, phase index, attempt), so the
/// same configuration replays bit-identically — including across a campaign
/// kill + checkpoint resume.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ash/fpga/chip.h"
#include "ash/tb/data_log.h"
#include "ash/tb/fault.h"
#include "ash/tb/measurement.h"
#include "ash/tb/power_supply.h"
#include "ash/tb/test_case.h"
#include "ash/tb/thermal_chamber.h"

namespace ash::tb {

/// Per-sample retry policy.  A sample attempt can fail outright (chip link
/// lost, every gated reading dropped) or come back implausible (watchdog
/// checks); either way the runner waits out a backoff *in simulated time* —
/// the chip keeps aging in the phase's mode — and measures again, paying the
/// AC measurement overhead once more.
struct RetryPolicy {
  /// Measurement attempts beyond the first (0 = naive single-shot lab).
  int max_sample_retries = 3;
  /// First backoff (in simulated time) before a retry.
  Seconds backoff_s{30.0};
  /// Multiplier on the backoff after each failed retry.
  double backoff_multiplier = 2.0;
};

/// Phase watchdog: declares a sample implausible when the reported chamber
/// temperature strays from the setpoint or the inferred frequency jumps
/// away from the recent history, and aborts the phase after too many
/// consecutive implausible samples.  An aborted phase is rewound — chip
/// state restored from the phase-start checkpoint, campaign clock rolled
/// back — and re-run as a fresh attempt with fresh instrument/fault seeds.
/// The last allowed attempt always runs to completion; samples that would
/// have tripped it are kept and flagged kSuspect (graceful degradation).
struct WatchdogConfig {
  bool enabled = true;
  /// Max |reported chamber - setpoint| tolerated.
  Celsius max_chamber_error_c{5.0};
  /// Max relative deviation of a sample's frequency from the running
  /// median of recently accepted samples of the same phase attempt.
  double max_frequency_deviation = 0.05;
  /// Number of recent accepted samples in that running median.
  int window = 5;
  /// Consecutive implausible samples (after retries) that trip the phase.
  int trip_after = 2;
  /// Total attempts per phase (first run + watchdog re-runs).
  int max_phase_attempts = 3;
};

/// Runner configuration.
struct RunnerConfig {
  MeasurementConfig measurement;
  ChamberConfig chamber;
  SupplyConfig supply;
  /// Supply applied while sampling (the RO cannot oscillate at 0/-0.3 V).
  Volts measurement_vdd_v{1.2};
  /// true: chamber reaches each setpoint instantly (idealized, default for
  /// the paper-reproduction benches); false: finite ramp, during which the
  /// chip ages under the phase's mode at the instantaneous temperature.
  bool instant_chamber = true;
  /// Root seed for instrument noise; vary to model run-to-run noise.
  /// Per-phase/per-attempt instrument streams derive from it.
  std::uint64_t seed = default_seed(SeedStream::kRunner);
  /// Fault scenario injected into the campaign (default: ideal lab).
  FaultPlan fault_plan;
  RetryPolicy retry;
  WatchdogConfig watchdog;
  /// Simulated-time kill switch: when >= 0, the campaign stops once the
  /// campaign clock reaches this value (mid-phase work of the current
  /// attempt is discarded) and the result carries completed == false plus a
  /// resumable checkpoint.  Models an operator stopping the lab.
  Seconds abort_at_campaign_s{-1.0};
};

/// Resumable campaign state at a phase boundary.  Serializes as a versioned
/// text document embedding the fpga chip checkpoint and the sample log CSV.
struct CampaignCheckpoint {
  /// Index of the next phase to run (== phase count when complete).
  int next_phase = 0;
  Seconds t_campaign_s{0.0};
  /// Chamber base temperature at the boundary (the previous setpoint).
  Celsius chamber_c{0.0};
  /// fpga::checkpoint document of the chip's aging state.
  std::string chip_state;
  DataLog log;
  FaultReport faults;

  void save(std::ostream& os) const;
  /// Throws std::runtime_error on malformed input.  The error message names
  /// the failing field and the stream offset where parsing stopped, so a
  /// truncated or corrupted snapshot is diagnosable from the exception
  /// alone ("field 't_campaign' is not a number: 'garb' (stream offset
  /// 42)").  Malformed input never yields a partially-filled checkpoint.
  static CampaignCheckpoint load(std::istream& is);

  /// String-form conveniences over save/load, used by the durable fleet
  /// store (which frames this text document in a CRC32-checked binary
  /// envelope — see ash/fleet/checkpoint_store.h).
  std::string serialize() const;
  static CampaignCheckpoint deserialize(const std::string& bytes);
};

/// The phase-0 checkpoint of a fresh campaign on `chip` — what
/// run_campaign(chip, tc) starts from.  Exposed so external schedulers
/// (the fleet supervisor) can seed a durable store before any phase runs.
CampaignCheckpoint initial_checkpoint(const fpga::FpgaChip& chip,
                                      const TestCase& test_case,
                                      const RunnerConfig& config);

/// Outcome of a campaign (or a resumed tail of one).
struct CampaignResult {
  DataLog log;
  FaultReport faults;
  /// False when the abort_at_campaign_s kill switch fired first.
  bool completed = true;
  /// State at the last completed phase boundary — the resume point when
  /// !completed, the final state otherwise.
  CampaignCheckpoint checkpoint;
};

/// The virtual lab operator.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const RunnerConfig& config);

  /// Run the full schedule on the chip, mutating its aging state, and
  /// return the sample log.  Convenience wrapper over run_campaign.
  DataLog run(fpga::FpgaChip& chip, const TestCase& test_case);

  /// Run the full schedule with fault injection and tolerance policies.
  CampaignResult run_campaign(fpga::FpgaChip& chip,
                              const TestCase& test_case);

  /// Resume a killed campaign from a checkpoint.  `chip` must be
  /// constructed with the same parameters as the original run; its aging
  /// state is overwritten from the checkpoint.  With identical runner
  /// configuration the resumed tail replays bit-identically to the
  /// uninterrupted campaign.
  ///
  /// `max_phases` bounds how many phases this call advances (< 0 = run to
  /// the end).  A bounded call returns at the next phase boundary with
  /// `completed` reflecting whether the whole schedule is done — the
  /// stepping primitive fleet workers use to checkpoint durably between
  /// phases.
  CampaignResult run_campaign(fpga::FpgaChip& chip,
                              const TestCase& test_case,
                              const CampaignCheckpoint& from,
                              int max_phases = -1);

  const RunnerConfig& config() const { return config_; }

 private:
  RunnerConfig config_;
};

/// Preset: a lab that expects `plan` and defends against it — robust
/// (median) reading estimator with one extra reading per sample, retries,
/// watchdog with checkpoint rewind.
RunnerConfig tolerant_runner_config(const FaultPlan& plan);

/// Preset: the same dirty lab run naively — single-shot samples, plain
/// mean over readings, no plausibility checks, no rewinds.
RunnerConfig naive_runner_config(const FaultPlan& plan);

}  // namespace ash::tb
