#pragma once

/// \file experiment_runner.h
/// Drives a TestCase on a chip inside the virtual lab.
///
/// The runner owns the instruments (thermal chamber, DC supply, measurement
/// rig) and reproduces the paper's measurement procedure:
///   * the chamber ramps to each phase's setpoint before the phase clock
///     starts (instant by default for idealized reproduction);
///   * during DC stress the RO is frozen and "enabled only every 20 minutes
///     for data recording" — each sample wakes the ring at the nominal
///     supply for the gated count (<3 s of AC overhead, which the runner
///     faithfully applies as aging);
///   * during sleep the RO "wakes up every 30 minutes for data sampling",
///     which briefly interrupts recovery the same way;
///   * every logged value passes through the counter model (quantization +
///     counting noise + averaging), never the true frequency.

#include <cstdint>

#include "ash/fpga/chip.h"
#include "ash/tb/data_log.h"
#include "ash/tb/measurement.h"
#include "ash/tb/power_supply.h"
#include "ash/tb/test_case.h"
#include "ash/tb/thermal_chamber.h"

namespace ash::tb {

/// Runner configuration.
struct RunnerConfig {
  MeasurementConfig measurement;
  ChamberConfig chamber;
  SupplyConfig supply;
  /// Supply applied while sampling (the RO cannot oscillate at 0/-0.3 V).
  double measurement_vdd_v = 1.2;
  /// true: chamber reaches each setpoint instantly (idealized, default for
  /// the paper-reproduction benches); false: finite ramp, during which the
  /// chip ages under the phase's mode at the instantaneous temperature.
  bool instant_chamber = true;
  /// Root seed for instrument noise; vary to model run-to-run noise.
  std::uint64_t seed = 0x99;
};

/// The virtual lab operator.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const RunnerConfig& config);

  /// Run the full schedule on the chip, mutating its aging state, and
  /// return the sample log.
  DataLog run(fpga::FpgaChip& chip, const TestCase& test_case);

  const RunnerConfig& config() const { return config_; }

 private:
  RunnerConfig config_;
};

}  // namespace ash::tb
