#include "ash/tb/population_runner.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "ash/bti/batch_ensemble.h"
#include "ash/bti/condition.h"
#include "ash/fpga/lut.h"
#include "ash/fpga/ring_oscillator.h"
#include "ash/fpga/routing.h"
#include "ash/obs/trace.h"
#include "ash/tb/fault.h"
#include "ash/tb/measurement.h"
#include "ash/tb/power_supply.h"
#include "ash/tb/thermal_chamber.h"
#include "ash/util/constants.h"
#include "ash/util/random.h"
#include "ash/util/stats.h"
#include "ash/util/table.h"

namespace ash::tb {

namespace {

/// Environment the chips see for an aging interval (the solo runner's
/// phase_condition, replicated — bit-identical env construction).
bti::OperatingCondition phase_condition(const Phase& phase, Volts supply,
                                        Kelvin temp) {
  bti::OperatingCondition env;
  env.voltage_v = supply;
  env.temperature_k = temp;
  switch (phase.mode) {
    case fpga::RoMode::kAcOscillating:
      env.gate_stress_duty = phase.ac_duty;
      break;
    case fpga::RoMode::kDcFrozen:
      env.gate_stress_duty = 1.0;
      break;
    case fpga::RoMode::kSleep:
      env.gate_stress_duty = 0.0;
      break;
  }
  return env;
}

[[noreturn]] void lockstep_violation(const std::string& what) {
  throw std::logic_error(
      "PopulationRunner: lockstep broken (" + what +
      "); this campaign needs per-chip control flow - run the chips solo");
}

constexpr int kLutDevices = static_cast<int>(fpga::kLutDeviceCount);
constexpr int kRoutingDevices = static_cast<int>(fpga::kRoutingDeviceCount);
constexpr int kSiteDevices = kLutDevices + kRoutingDevices;

/// The batched physics of one population campaign: one BatchEnsemble per
/// device site (stage x device), members in chip order, plus the write-back
/// targets inside the chips themselves.
class PopulationPhysics {
 public:
  PopulationPhysics(const std::vector<fpga::FpgaChip*>& chips,
                    const bti::BatchConfig& batch_config)
      : stages_(chips.front()->ro().stage_count()) {
    sites_.reserve(static_cast<std::size_t>(stages_ * kSiteDevices));
    targets_.reserve(sites_.capacity());
    for (int s = 0; s < stages_; ++s) {
      for (int d = 0; d < kSiteDevices; ++d) {
        std::vector<const bti::TrapEnsemble*> members;
        std::vector<bti::TrapEnsemble*> targets;
        members.reserve(chips.size());
        targets.reserve(chips.size());
        for (fpga::FpgaChip* chip : chips) {
          auto& stage = chip->ro().stage(s);
          bti::TrapEnsemble& e =
              d < kLutDevices
                  ? stage.lut.device(d).ensemble()
                  : stage.routing.device(d - kLutDevices).ensemble();
          members.push_back(&e);
          targets.push_back(&e);
        }
        sites_.emplace_back(members, batch_config);
        targets_.push_back(std::move(targets));
      }
    }
  }

  /// Age every chip for dt seconds — the batched mirror of
  /// RingOscillator::evolve + the lut/routing age_* rules.  The stressed
  /// sets and the LUT output under DC are structural (the inverter config
  /// is shared), so one bias analysis covers the population.
  void evolve(const fpga::RingOscillator& structure, fpga::RoMode mode,
              const bti::OperatingCondition& env, Seconds dt) {
    switch (mode) {
      case fpga::RoMode::kAcOscillating: {
        bti::OperatingCondition ac = env;
        if (ac.gate_stress_duty <= 0.0) ac.gate_stress_duty = 0.5;
        for (auto& site : sites_) site.evolve(ac, dt);
        break;
      }
      case fpga::RoMode::kDcFrozen: {
        bti::OperatingCondition dc = env;
        dc.gate_stress_duty = 1.0;
        bti::OperatingCondition anneal = dc;
        anneal.voltage_v = Volts{0.0};
        anneal.gate_stress_duty = 0.0;
        for (int s = 0; s < stages_; ++s) {
          const auto& stage = structure.stage(s);
          const bool in0 = fpga::RingOscillator::dc_input_of_stage(s);
          const auto lut_stressed = stage.lut.stressed_devices(in0, true);
          const auto routing_stressed =
              stage.routing.stressed_devices(stage.lut.evaluate(in0, true));
          for (int d = 0; d < kSiteDevices; ++d) {
            const bool stressed =
                d < kLutDevices
                    ? std::find(lut_stressed.begin(), lut_stressed.end(),
                                d) != lut_stressed.end()
                    : std::find(routing_stressed.begin(),
                                routing_stressed.end(),
                                d - kLutDevices) != routing_stressed.end();
            site(s, d).evolve(stressed ? dc : anneal, dt);
          }
        }
        break;
      }
      case fpga::RoMode::kSleep: {
        bti::OperatingCondition sleep = env;
        sleep.gate_stress_duty = 0.0;
        for (auto& site : sites_) site.evolve(sleep, dt);
        break;
      }
    }
  }

  /// Push the batch occupancies back into the chips so frequency reads see
  /// the current aging state (occupancies are probabilities, so the
  /// ensembles' [0, 1] validation always passes; the version bump
  /// invalidates the fpga delay caches, exactly as a solo evolve would).
  void write_back() {
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      auto& site_targets = targets_[i];
      for (int m = 0; m < static_cast<int>(site_targets.size()); ++m) {
        site_targets[static_cast<std::size_t>(m)]->set_occupancies(
            sites_[i].occupancies(m));
      }
    }
  }

 private:
  bti::BatchEnsemble& site(int stage, int device) {
    return sites_[static_cast<std::size_t>(stage * kSiteDevices + device)];
  }

  int stages_;
  std::vector<bti::BatchEnsemble> sites_;
  std::vector<std::vector<bti::TrapEnsemble*>> targets_;
};

/// Per-chip measurement-side state: the solo runner's rig, fault injector
/// and watchdog history, constructed with the solo derivation chains so the
/// chip's recorded noise matches its solo run bit-for-bit.
struct ChipLane {
  FaultReport report;
  FaultInjector faults;
  MeasurementRig rig;
  std::deque<double> recent_freqs;
  DataLog log;

  ChipLane(const RunnerConfig& cfg, const Phase& phase, int phase_index,
           std::uint64_t attempt_stream)
      : faults(cfg.fault_plan, phase_index, /*attempt=*/0,
               phase.duration_s, &report),
        rig(rig_config(cfg, attempt_stream, faults)) {}

 private:
  static MeasurementConfig rig_config(const RunnerConfig& cfg,
                                      std::uint64_t attempt_stream,
                                      const FaultInjector& faults) {
    MeasurementConfig rig_cfg = cfg.measurement;
    rig_cfg.seed = derive_seed(attempt_stream, 3);
    rig_cfg.clock.error_ppm += faults.clock_offset_ppm();
    return rig_cfg;
  }
};

}  // namespace

PopulationRunner::PopulationRunner(const RunnerConfig& config,
                                   const PopulationRunnerConfig& population)
    : config_(config), population_(population) {
  if (config_.abort_at_campaign_s >= Seconds{0.0}) {
    throw std::invalid_argument(
        "PopulationRunner: the abort_at_campaign_s kill switch is not "
        "supported on the lockstep path");
  }
}

std::vector<DataLog> PopulationRunner::run(
    const std::vector<fpga::FpgaChip*>& chips, const TestCase& tc) {
  if (chips.empty()) {
    throw std::invalid_argument("PopulationRunner: empty population");
  }
  for (const fpga::FpgaChip* chip : chips) {
    if (chip == nullptr) {
      throw std::invalid_argument("PopulationRunner: null chip");
    }
    if (chip->ro().stage_count() != chips.front()->ro().stage_count()) {
      throw std::invalid_argument(
          "PopulationRunner: chips must share one RO structure");
    }
  }

  const int n = static_cast<int>(chips.size());
  std::vector<DataLog> logs(static_cast<std::size_t>(n));
  if (tc.phases.empty()) return logs;

  bti::BatchConfig batch_config;
  batch_config.fast_exp = population_.fast_exp;
  batch_config.pool = population_.pool;
  PopulationPhysics physics(chips, batch_config);
  const fpga::RingOscillator& structure = chips.front()->ro();

  double t_campaign = 0.0;
  obs::set_sim_now(t_campaign);
  obs::Span run_span(obs::EventKind::kRun, tc.name, "tb.population");
  run_span.arg("chips", std::to_string(n));
  run_span.arg("phases", std::to_string(tc.phases.size()));

  for (int pi = 0; pi < static_cast<int>(tc.phases.size()); ++pi) {
    const Phase& phase = tc.phases[static_cast<std::size_t>(pi)];
    // Boundary chamber state as the solo engine sees it: the first phase
    // starts at its own setpoint (initial_checkpoint), later phases at the
    // previous setpoint.
    const Celsius prev_chamber_c =
        pi == 0 ? tc.phases.front().chamber_c
                : tc.phases[static_cast<std::size_t>(pi - 1)].chamber_c;

    obs::set_sim_now(t_campaign);
    obs::Span phase_span(obs::EventKind::kPhase, phase.label, "tb.phase");
    phase_span.arg("chips", std::to_string(n));
    phase_span.arg("chamber_c", fmt_fixed(phase.chamber_c.value(), 1));

    // Solo instrument streams derive from (seed, phase, attempt) — shared
    // config, attempt pinned to 0 on the lockstep path — so one chamber
    // and one supply stand in for every chip's bit-identical copies.
    const std::uint64_t attempt_stream = derive_seed(
        derive_seed(config_.seed, static_cast<std::uint64_t>(pi)), 0);

    ChamberConfig chamber_cfg = config_.chamber;
    chamber_cfg.seed = derive_seed(attempt_stream, 1);
    chamber_cfg.initial_c = prev_chamber_c;
    if (config_.instant_chamber) chamber_cfg.ramp_c_per_s = 1e9;
    ThermalChamber chamber(chamber_cfg);
    chamber.set_target(phase.chamber_c);

    SupplyConfig supply_cfg = config_.supply;
    supply_cfg.seed = derive_seed(attempt_stream, 2);
    PowerSupply supply(supply_cfg);
    supply.set_voltage(phase.supply_v);

    std::vector<ChipLane> lanes;
    lanes.reserve(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      lanes.emplace_back(config_, phase, pi, attempt_stream);
    }

    // Truth-corruption helpers, applied per lane so each injector's stream
    // advances exactly as its solo twin's would.  The injector streams
    // derive from (plan, phase, attempt) only — chip-independent — so every
    // lane returns the same offsets and lane 0's values drive the shared
    // environment.
    const auto faulted_temp_c = [&](ChipLane& lane, Celsius base,
                                    double t_phase) {
      const double base_c = base.value();
      const double excursed =
          base_c + lane.faults.chamber_offset_c(Seconds{t_phase}).value();
      const double ceiling = std::max(
          base_c, config_.fault_plan.chamber.excursion_ceiling_c.value());
      return std::min(excursed, ceiling);
    };
    const auto faulted_supply_v = [&](ChipLane& lane, Volts base,
                                      double t_phase) {
      return std::clamp(
          base.value() + lane.faults.supply_offset_v(Seconds{t_phase}).value(),
          config_.supply.min_v.value(), config_.supply.max_v.value());
    };

    // Age the whole population for `step` seconds under the phase's mode.
    const auto age = [&](double step, bool in_body, double t_phase) {
      Kelvin temp_k = chamber.temperature_k();
      Volts supply_out = supply.output_v();
      if (in_body) {
        // Every lane's injector must see the solo call sequence; the
        // returned offsets are identical, so lane 0 supplies the values.
        double temp_c0 = 0.0;
        double supply0 = 0.0;
        for (int c = 0; c < n; ++c) {
          const double t_c =
              faulted_temp_c(lanes[static_cast<std::size_t>(c)],
                             chamber.temperature_c(), t_phase);
          const double s_v = faulted_supply_v(
              lanes[static_cast<std::size_t>(c)], supply.output_v(), t_phase);
          if (c == 0) {
            temp_c0 = t_c;
            supply0 = s_v;
          }
        }
        temp_k = Kelvin{celsius(temp_c0)};
        supply_out = Volts{supply0};
      }
      const auto env = phase_condition(phase, supply_out, temp_k);
      physics.evolve(structure, phase.mode, env, Seconds{step});
      chamber.advance(Seconds{step});
      supply.advance(Seconds{step});
      t_campaign += step;
      obs::set_sim_now(t_campaign);
    };

    // One lockstep sample across the population.  Any lane that would make
    // the solo runner retry, degrade or trip cannot be followed without
    // desynchronizing the others, so it throws instead.
    const auto take_sample = [&](double t_phase) {
      // Stage 1 (per lane, solo call order): truth values for this sample.
      std::vector<double> true_temp_c(static_cast<std::size_t>(n));
      std::vector<double> meas_vdd(static_cast<std::size_t>(n));
      for (int c = 0; c < n; ++c) {
        auto& lane = lanes[static_cast<std::size_t>(c)];
        true_temp_c[static_cast<std::size_t>(c)] =
            faulted_temp_c(lane, chamber.temperature_c(), t_phase);
        meas_vdd[static_cast<std::size_t>(c)] =
            faulted_supply_v(lane, config_.measurement_vdd_v, t_phase);
      }
      const Kelvin true_temp_k{celsius(true_temp_c[0])};

      // Stage 2: outside AC stress the gated count wakes every ring — one
      // short batched AC stress at the measurement supply.
      const Seconds overhead = lanes[0].rig.sample_duration_s();
      if (phase.mode != fpga::RoMode::kAcOscillating) {
        bti::OperatingCondition meas_env;
        meas_env.voltage_v = Volts{meas_vdd[0]};
        meas_env.temperature_k = true_temp_k;
        meas_env.gate_stress_duty = 0.5;
        physics.evolve(structure, fpga::RoMode::kAcOscillating, meas_env,
                       overhead);
      }
      physics.write_back();

      // Stage 3 (per lane): measure, judge, record — the solo sample tail.
      for (int c = 0; c < n; ++c) {
        auto& lane = lanes[static_cast<std::size_t>(c)];
        const fpga::FpgaChip& chip = *chips[static_cast<std::size_t>(c)];
        Measurement m = lane.rig.measure(
            chip.ro_frequency_hz(Volts{meas_vdd[static_cast<std::size_t>(c)]},
                                 true_temp_k),
            &lane.faults);
        const bool comm_ok = !lane.faults.comm_lost();
        const bool valid = comm_ok && m.valid();
        const Celsius reported_c = lane.faults.reported_chamber_c(
            Celsius{true_temp_c[static_cast<std::size_t>(c)]},
            Seconds{t_phase});

        bool implausible = false;
        if (config_.watchdog.enabled && valid) {
          if (std::abs((reported_c - phase.chamber_c).value()) >
              config_.watchdog.max_chamber_error_c.value()) {
            implausible = true;
          }
          if (!lane.recent_freqs.empty()) {
            const double med = median(std::vector<double>(
                lane.recent_freqs.begin(), lane.recent_freqs.end()));
            if (med > 0.0 &&
                std::abs(m.frequency_hz.value() - med) / med >
                    config_.watchdog.max_frequency_deviation) {
              implausible = true;
            }
          }
        }
        if (!valid) {
          lockstep_violation(
              std::string(comm_ok ? "invalid reading" : "chip link lost") +
              " on chip " + std::to_string(chip.id()));
        }
        if (implausible) {
          lockstep_violation("implausible sample on chip " +
                             std::to_string(chip.id()));
        }

        SampleRecord r;
        r.test_case = tc.name;
        r.chip_id = chip.id();
        r.phase = phase.label;
        r.t_campaign_s = Seconds{t_campaign};
        r.t_phase_s = Seconds{t_phase};
        r.chamber_c = reported_c;
        r.supply_v = phase.supply_v;
        r.counts = m.counts;
        r.frequency_hz = m.frequency_hz;
        r.delay_s = m.delay_s;
        r.quality = SampleQuality::kGood;
        r.retries = 0;
        lane.log.add(r);

        lane.recent_freqs.push_back(m.frequency_hz.value());
        while (static_cast<int>(lane.recent_freqs.size()) >
                   config_.watchdog.window &&
               !lane.recent_freqs.empty()) {
          lane.recent_freqs.pop_front();
        }
      }
    };

    // Chamber stabilization before the phase clock starts, then the solo
    // sample cadence: t = 0, every sample_every_s, and the phase end.
    constexpr double kSettleResolutionS = 60.0;
    while (!chamber.at_target()) {
      const double step =
          std::min(kSettleResolutionS, chamber.seconds_to_target().value());
      age(step, /*in_body=*/false, 0.0);
    }

    double t_phase = 0.0;
    take_sample(t_phase);
    while (t_phase < phase.duration_s.value()) {
      double step = phase.duration_s.value() - t_phase;
      if (phase.sample_every_s > Seconds{0.0}) {
        step = std::min(step, phase.sample_every_s.value());
      }
      age(step, /*in_body=*/true, t_phase);
      t_phase += step;
      take_sample(t_phase);
    }

    for (int c = 0; c < n; ++c) {
      logs[static_cast<std::size_t>(c)].append(
          lanes[static_cast<std::size_t>(c)].log);
    }
  }

  return logs;
}

}  // namespace ash::tb
