#include "ash/tb/data_log.h"

#include <algorithm>
#include <ostream>

#include "ash/util/csv.h"
#include "ash/util/table.h"

namespace ash::tb {

void DataLog::append(const DataLog& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

std::vector<SampleRecord> DataLog::phase_records(
    const std::string& phase) const {
  std::vector<SampleRecord> out;
  for (const auto& r : records_) {
    if (r.phase == phase) out.push_back(r);
  }
  return out;
}

std::vector<std::string> DataLog::phases() const {
  std::vector<std::string> out;
  for (const auto& r : records_) {
    if (std::find(out.begin(), out.end(), r.phase) == out.end()) {
      out.push_back(r.phase);
    }
  }
  return out;
}

Series DataLog::delay_series(const std::string& phase) const {
  Series s(phase + ":delay");
  for (const auto& r : phase_records(phase)) s.append(r.t_phase_s, r.delay_s);
  return s;
}

Series DataLog::frequency_series(const std::string& phase) const {
  Series s(phase + ":frequency");
  for (const auto& r : phase_records(phase)) {
    s.append(r.t_phase_s, r.frequency_hz);
  }
  return s;
}

void DataLog::write_csv(std::ostream& os) const {
  write_csv_row(os, {"test_case", "chip_id", "phase", "t_campaign_s",
                     "t_phase_s", "chamber_c", "supply_v", "counts",
                     "frequency_hz", "delay_s"});
  for (const auto& r : records_) {
    write_csv_row(os, {r.test_case, strformat("%d", r.chip_id), r.phase,
                       strformat("%.6f", r.t_campaign_s),
                       strformat("%.6f", r.t_phase_s),
                       strformat("%.6f", r.chamber_c),
                       strformat("%.6f", r.supply_v),
                       strformat("%.6f", r.counts),
                       strformat("%.6f", r.frequency_hz),
                       strformat("%.9e", r.delay_s)});
  }
}

DataLog DataLog::read_csv(std::istream& is) {
  const CsvDocument doc = ash::read_csv(is);
  DataLog log;
  const auto col = [&](const char* name) { return doc.column(name); };
  const std::size_t c_case = col("test_case");
  const std::size_t c_chip = col("chip_id");
  const std::size_t c_phase = col("phase");
  const std::size_t c_tc = col("t_campaign_s");
  const std::size_t c_tp = col("t_phase_s");
  const std::size_t c_temp = col("chamber_c");
  const std::size_t c_v = col("supply_v");
  const std::size_t c_counts = col("counts");
  const std::size_t c_f = col("frequency_hz");
  const std::size_t c_d = col("delay_s");
  for (const auto& row : doc.rows) {
    SampleRecord r;
    r.test_case = row[c_case];
    r.chip_id = std::stoi(row[c_chip]);
    r.phase = row[c_phase];
    r.t_campaign_s = std::stod(row[c_tc]);
    r.t_phase_s = std::stod(row[c_tp]);
    r.chamber_c = std::stod(row[c_temp]);
    r.supply_v = std::stod(row[c_v]);
    r.counts = std::stod(row[c_counts]);
    r.frequency_hz = std::stod(row[c_f]);
    r.delay_s = std::stod(row[c_d]);
    log.add(std::move(r));
  }
  return log;
}

}  // namespace ash::tb
