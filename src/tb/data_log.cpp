#include "ash/tb/data_log.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "ash/util/csv.h"
#include "ash/util/table.h"

namespace ash::tb {

const char* to_string(SampleQuality quality) {
  switch (quality) {
    case SampleQuality::kGood: return "good";
    case SampleQuality::kRetried: return "retried";
    case SampleQuality::kSuspect: return "suspect";
    case SampleQuality::kLost: return "lost";
  }
  return "unknown";
}

SampleQuality parse_sample_quality(const std::string& name) {
  if (name == "good") return SampleQuality::kGood;
  if (name == "retried") return SampleQuality::kRetried;
  if (name == "suspect") return SampleQuality::kSuspect;
  if (name == "lost") return SampleQuality::kLost;
  throw std::invalid_argument("parse_sample_quality: unknown quality '" +
                              name + "' (expected good|retried|suspect|lost)");
}

void DataLog::append(const DataLog& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

std::vector<SampleRecord> DataLog::phase_records(
    const std::string& phase) const {
  std::vector<SampleRecord> out;
  for (const auto& r : records_) {
    if (r.phase == phase) out.push_back(r);
  }
  return out;
}

std::vector<std::string> DataLog::phases() const {
  std::vector<std::string> out;
  for (const auto& r : records_) {
    if (std::find(out.begin(), out.end(), r.phase) == out.end()) {
      out.push_back(r.phase);
    }
  }
  return out;
}

std::size_t DataLog::count_quality(SampleQuality quality) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.quality == quality) ++n;
  }
  return n;
}

Series DataLog::delay_series(const std::string& phase) const {
  Series s(phase + ":delay");
  for (const auto& r : phase_records(phase)) {
    if (r.usable()) s.append(r.t_phase_s.value(), r.delay_s.value());
  }
  return s;
}

Series DataLog::frequency_series(const std::string& phase) const {
  Series s(phase + ":frequency");
  for (const auto& r : phase_records(phase)) {
    if (r.usable()) s.append(r.t_phase_s.value(), r.frequency_hz.value());
  }
  return s;
}

double DataLog::fractional_degradation() const {
  const SampleRecord* first = nullptr;
  const SampleRecord* last = nullptr;
  for (const auto& r : records_) {
    if (!r.usable()) continue;
    if (first == nullptr) first = &r;
    last = &r;
  }
  if (first == nullptr || first == last) return 0.0;
  if (first->frequency_hz <= Hertz{0.0}) return 0.0;
  return (first->frequency_hz - last->frequency_hz) / first->frequency_hz;
}

void DataLog::write_csv(std::ostream& os) const {
  write_csv_row(os, {"test_case", "chip_id", "phase", "t_campaign_s",
                     "t_phase_s", "chamber_c", "supply_v", "counts",
                     "frequency_hz", "delay_s", "quality", "retries"});
  for (const auto& r : records_) {
    write_csv_row(os, {r.test_case, strformat("%d", r.chip_id), r.phase,
                       strformat("%.6f", r.t_campaign_s.value()),
                       strformat("%.6f", r.t_phase_s.value()),
                       strformat("%.6f", r.chamber_c.value()),
                       strformat("%.6f", r.supply_v.value()),
                       strformat("%.6f", r.counts),
                       strformat("%.6f", r.frequency_hz.value()),
                       strformat("%.9e", r.delay_s.value()), to_string(r.quality),
                       strformat("%d", r.retries)});
  }
}

DataLog DataLog::read_csv(std::istream& is) {
  const CsvDocument doc = ash::read_csv(is);
  DataLog log;
  const auto col = [&](const char* name) { return doc.column(name); };
  const std::size_t c_case = col("test_case");
  const std::size_t c_chip = col("chip_id");
  const std::size_t c_phase = col("phase");
  const std::size_t c_tc = col("t_campaign_s");
  const std::size_t c_tp = col("t_phase_s");
  const std::size_t c_temp = col("chamber_c");
  const std::size_t c_v = col("supply_v");
  const std::size_t c_counts = col("counts");
  const std::size_t c_f = col("frequency_hz");
  const std::size_t c_d = col("delay_s");
  // Quality columns are optional so logs written before fault tolerance
  // still load (they are all-good by construction).
  const auto optional_col = [&](const char* name) -> long {
    const auto it = std::find(doc.header.begin(), doc.header.end(), name);
    if (it == doc.header.end()) return -1;
    return it - doc.header.begin();
  };
  const long c_q = optional_col("quality");
  const long c_r = optional_col("retries");
  for (const auto& row : doc.rows) {
    SampleRecord r;
    r.test_case = row[c_case];
    r.chip_id = std::stoi(row[c_chip]);
    r.phase = row[c_phase];
    r.t_campaign_s = Seconds{std::stod(row[c_tc])};
    r.t_phase_s = Seconds{std::stod(row[c_tp])};
    r.chamber_c = Celsius{std::stod(row[c_temp])};
    r.supply_v = Volts{std::stod(row[c_v])};
    r.counts = std::stod(row[c_counts]);
    r.frequency_hz = Hertz{std::stod(row[c_f])};
    r.delay_s = Seconds{std::stod(row[c_d])};
    if (c_q >= 0) r.quality = parse_sample_quality(row[c_q]);
    if (c_r >= 0) r.retries = std::stoi(row[c_r]);
    log.add(std::move(r));
  }
  return log;
}

}  // namespace ash::tb
