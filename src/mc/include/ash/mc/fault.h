#pragma once

/// \file fault.h
/// Deterministic core-level fault injection for the multi-core runtime.
///
/// The Fig. 10 study assumes a pristine fleet: every core healthy forever,
/// every scheduler reading ground-truth aging.  Real self-healing managers
/// live with core failures, flaky rejuvenation rails and noisy wear
/// telemetry — the RAMP-style lifetime-reliability literature treats core
/// loss as the first-class event.  A `CoreFaultPlan` describes such a
/// hostile fleet as a seeded scenario (mirroring `tb/fault.h` for the
/// single-chip lab); a `CoreFaultModel` replays it bit-exactly: every draw
/// derives from `(plan.seed, core, interval)` via splitmix seed-splitting,
/// so the same plan always produces the same fault history regardless of
/// call order, and a re-run with the same scheduler reproduces the same
/// `ReliabilityReport`.
///
/// Fault channels:
///   * **transient core fault** — a machine-check / soft-error storm: the
///     core delivers no work for one interval and misses its heartbeat,
///     then recovers by itself;
///   * **permanent core death** — the core goes dark for good.  Two
///     hazards: a constant extrinsic rate, and a wearout hazard that grows
///     with the core's true `delta_vth` (aging-correlated death, the
///     reason self-healing also extends *fleet* survival);
///   * **stuck rejuvenation rail** — the negative-rail charge pump fails
///     permanently: the core can still power-gate (passive sleep) but a
///     commanded `kSleepRejuvenate` silently degrades to passive.  The
///     rail power-good monitor (`CoreStatus::rail_ok`) exposes it;
///   * **sensor corruption** — additive noise on every odometer reading,
///     dropped readings (NaN), and stuck windows that freeze the reported
///     value (the measured telemetry repeats bit-identically, which is how
///     a manager can detect the freeze).  Dead cores read NaN.

#include <cstdint>
#include <string>
#include <vector>

#include "ash/mc/scheduler.h"
#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::obs {
class Registry;
}  // namespace ash::obs

namespace ash::mc {

/// A complete, seeded core-fault scenario.  Default-constructed = ideal
/// fleet (no faults, exact telemetry).
struct CoreFaultPlan {
  /// Expected transient faults per core-day.
  double transient_per_core_day = 0.0;
  /// Constant extrinsic death hazard (expected deaths per core-year).
  double random_death_per_core_year = 0.0;
  /// Wearout death hazard at `delta_vth == wear_death_ref_v` (per
  /// core-year); scales as (delta_vth / ref)^shape below and above it.
  double wear_death_per_core_year = 0.0;
  Volts wear_death_ref_v{12e-3};
  double wear_death_shape = 2.0;
  /// Rejuvenation-rail failure hazard (expected failures per core-year).
  double stuck_rail_per_core_year = 0.0;
  /// Aging-sensor corruption: gaussian noise sigma (volts) on every
  /// reading, per-reading dropout probability (NaN), and per-interval
  /// probability of entering a stuck window of `sensor_stuck_intervals`.
  Volts sensor_noise_v{0.0};
  double sensor_dropout_probability = 0.0;
  double sensor_stuck_probability = 0.0;
  int sensor_stuck_intervals = 8;
  /// Root seed of every fault draw, independent of the BTI physics.
  std::uint64_t seed = default_seed(SeedStream::kCoreFaultPlan);

  /// True when every fault channel is disabled.
  bool ideal() const;

  /// Presets.  "representative" is the acceptance scenario: at least one
  /// permanent core death over the Fig. 10 horizon, a stuck rail or two,
  /// ~0.5 mV sensor noise with occasional dropouts.  "harsh" cranks every
  /// channel up.
  static CoreFaultPlan none();
  static CoreFaultPlan representative();
  static CoreFaultPlan harsh();
  /// Preset lookup by name ("none" | "representative" | "harsh"); throws
  /// std::invalid_argument for unknown names.
  static CoreFaultPlan by_name(const std::string& name);
};

/// End-of-run tally: injected faults, the reliability manager's responses,
/// and the mission-level outcomes.  Shared between the fault model (which
/// writes the injections), the `ReliabilityManager` (responses) and the
/// fault-aware `simulate_system` (outcomes) the way `tb::FaultReport` is
/// shared across the virtual lab.
struct ReliabilityReport {
  // --- injected (the fault plan's doing) ---
  int transient_faults = 0;
  int permanent_deaths = 0;
  int wear_deaths = 0;  ///< subset of permanent_deaths from the wearout hazard
  int stuck_rails = 0;
  int sensor_dropouts = 0;
  int sensor_stuck_windows = 0;
  // --- manager responses ---
  int cores_quarantined = 0;    ///< quarantine events (dead or margin)
  int margin_quarantines = 0;   ///< subset: aging-budget quarantines
  int quarantine_releases = 0;  ///< healed cores returned to service
  int rails_flagged = 0;        ///< stuck rails detected and marked passive-only
  int rail_downgrades = 0;      ///< rejuvenate commands rewritten to passive
  int telemetry_rejections = 0; ///< NaN/stuck readings replaced by the filter
  int assignments_repaired = 0; ///< illegal scheduler outputs repaired
  int failovers = 0;            ///< spare cores woken to cover repairs
  int thermal_trips = 0;        ///< sustained over-temperature force-sleeps
  // --- outcomes ---
  long core_intervals_lost = 0;    ///< active assignments that delivered nothing
  long deficit_core_intervals = 0; ///< demanded-but-undelivered core-intervals
  bool healthy_margin_exceeded = false;
  /// First margin crossing of the *healthy* (alive) fleet; right-censored
  /// at horizon + interval when it never crossed.
  Seconds healthy_time_to_first_margin_s{0.0};

  /// True when nothing was injected and nothing had to be handled.
  bool clean() const;
  /// Every injected fault is matched by a manager response: deaths
  /// quarantined, stuck rails flagged passive-only, dropped readings
  /// absorbed by the telemetry filter.  (A death in the final detection
  /// window of a run can legitimately still be pending.)
  bool accounted() const;
  /// Field-wise sum (mission outcomes take the worse of the two).
  void merge(const ReliabilityReport& other);
  /// Multi-line human-readable summary.
  std::string render() const;

  /// Set one `prefix`-named counter/gauge per field in `registry` from this
  /// report's final tallies, so a metrics snapshot and the report can never
  /// disagree.
  void publish(obs::Registry& registry,
               const std::string& prefix = "mc.rel.") const;

  bool operator==(const ReliabilityReport&) const = default;
};

/// Live fault state of one mission.  `begin_interval` must be called once
/// per interval, in order, before querying the per-core accessors; the
/// wearout hazard consumes the fleet's true aging.  All draws derive from
/// `(plan.seed, core, interval)`, so two missions with the same plan and
/// the same scheduler trajectory are bit-identical.
class CoreFaultModel {
 public:
  /// `report` (optional) is incremented as faults fire; it must outlive
  /// the model.
  CoreFaultModel(const CoreFaultPlan& plan, int core_count, Seconds interval,
                 ReliabilityReport* report = nullptr);

  /// Draw this interval's faults.  `true_delta_vth` (size core_count)
  /// feeds the aging-correlated death hazard.
  void begin_interval(long interval_index,
                      const std::vector<double>& true_delta_vth);

  bool dead(int core) const;
  bool transient_faulted(int core) const;  ///< this interval only
  bool rail_stuck(int core) const;
  int alive_count() const;

  /// Heartbeat + rail power-good as the manager observes them.
  CoreStatus status(int core) const;
  /// The odometer reading the scheduler receives for `core` given the
  /// true aging: noisy, possibly frozen by a stuck window, NaN when the
  /// reading dropped or the core is dead.
  double measured_delta_vth(int core, Volts true_delta);
  /// Truth-level mode the core experiences for a commanded mode (a stuck
  /// rail downgrades rejuvenating sleep to passive).
  CoreMode effective_mode(int core, CoreMode commanded) const;

 private:
  struct CoreState {
    bool dead = false;
    bool died_of_wear = false;
    bool transient = false;    // this interval
    bool rail_stuck = false;
    int stuck_left = 0;        // remaining stuck-sensor intervals
    double stuck_value_v = 0.0;
    Rng rng{0};                // re-derived every interval
  };

  CoreFaultPlan plan_;
  int core_count_;
  double interval_s_;
  ReliabilityReport* report_;
  std::vector<CoreState> cores_;
};

}  // namespace ash::mc
