#pragma once

/// \file workload.h
/// Time-varying core demand for the multi-core simulator.
///
/// The paper's circadian framing invites the obvious system-level synergy:
/// real datacenter/edge workloads already *have* a circadian rhythm, so
/// deep-rejuvenation sleep can ride the demand valleys instead of stealing
/// throughput.  A `Workload` maps simulation time to the number of cores
/// the work demands; the system simulator guarantees the scheduler honours
/// it every interval.

#include <cstdint>

#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::mc {

/// Demand source interface.
class Workload {
 public:
  virtual ~Workload() = default;
  /// Cores demanded for the interval starting at t_s.  Must be within
  /// [0, core_count]; the system clamps and validates.
  virtual int cores_needed(long interval_index, Seconds t) const = 0;
};

/// Fixed demand (the default behaviour of SystemConfig::cores_needed).
class ConstantWorkload final : public Workload {
 public:
  explicit ConstantWorkload(int cores) : cores_(cores) {}
  int cores_needed(long, Seconds) const override { return cores_; }

 private:
  int cores_;
};

/// Day/night demand: `day_cores` during the daytime window of each period,
/// `night_cores` otherwise.
class DiurnalWorkload final : public Workload {
 public:
  DiurnalWorkload(int day_cores, int night_cores,
                  Seconds period = units::hours(24.0),
                  double day_fraction = 0.58)
      : day_cores_(day_cores),
        night_cores_(night_cores),
        period_s_(period.value()),
        day_fraction_(day_fraction) {}

  int cores_needed(long, Seconds t) const override {
    const double t_s = t.value();
    const double phase = t_s - period_s_ * static_cast<long>(t_s / period_s_);
    return phase < day_fraction_ * period_s_ ? day_cores_ : night_cores_;
  }

  Seconds period_s() const { return Seconds{period_s_}; }

 private:
  int day_cores_;
  int night_cores_;
  double period_s_;
  double day_fraction_;
};

/// Random demand between [lo, hi] cores, redrawn per interval from a
/// seeded stream (deterministic: the draw depends only on the interval
/// index, not call order).
class BurstyWorkload final : public Workload {
 public:
  BurstyWorkload(int lo, int hi, std::uint64_t seed = 0xB0)
      : lo_(lo), hi_(hi), seed_(seed) {}

  int cores_needed(long interval_index, Seconds) const override {
    Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(interval_index)));
    return lo_ + static_cast<int>(
                     rng.uniform_index(static_cast<std::uint64_t>(hi_ - lo_ + 1)));
  }

 private:
  int lo_;
  int hi_;
  std::uint64_t seed_;
};

}  // namespace ash::mc
