#pragma once

/// \file reliability.h
/// The reliability manager: a fault-tolerance layer between the system
/// loop and any scheduling policy.
///
/// `ReliabilityManager` wraps a `Scheduler` and makes the Fig. 10 loop
/// survive the faults of `mc/fault.h`.  It sees only what a real fleet
/// manager sees — heartbeats, rail power-good signals, noisy odometer
/// telemetry, last interval's temperatures — and from those it:
///
///   * **filters telemetry**: NaN readings and bit-identical repeats
///     (a frozen sensor) are rejected and replaced by a per-core EMA
///     estimate, so the inner policy never sorts on NaN or stale values;
///   * **monitors health with hysteresis**: a core is declared failed
///     only after `fail_after_intervals` consecutive missed heartbeats,
///     so one-interval transients don't trigger quarantine;
///   * **quarantines**: failed cores are force-slept permanently; cores
///     whose filtered aging blows past the margin are pulled from service
///     for deep rejuvenation and released once healed (both thresholds
///     hysteretic);
///   * **fails over**: when the repaired assignment starves the (clamped)
///     demand, healthy sleepers are woken, least-aged first;
///   * **degrades gracefully**: demand beyond the healthy capacity is
///     clamped and the deficit recorded, never thrown;
///   * **guards thermals**: a core over the emergency temperature for
///     `thermal_trip_intervals` consecutive intervals is force-slept for
///     a cooldown window;
///   * **repairs illegal scheduler output** (wrong size, quarantined
///     cores marked active, starved demand) and counts every repair in
///     the shared `ReliabilityReport` instead of crashing the study.

#include <string>
#include <vector>

#include "ash/mc/fault.h"
#include "ash/mc/scheduler.h"

namespace ash::mc {

/// Tunables of the reliability layer.
struct ReliabilityConfig {
  /// Consecutive missed heartbeats before a core is declared failed.
  int fail_after_intervals = 2;
  /// Aging budget the margin quarantine protects;
  /// match SystemConfig::margin_delta_vth_v.
  Volts margin_delta_vth_v{12e-3};
  /// Margin-quarantine hysteresis, as fractions of the margin: enter
  /// above, release below.  The enter fraction sits *above* 1 on purpose:
  /// the manager rescues a core that has already blown its budget (so
  /// lifetime statistics stay honest) rather than pre-empting the margin
  /// crossing itself.
  double quarantine_enter_frac = 1.05;
  double quarantine_release_frac = 0.7;
  /// EMA weight of a fresh accepted reading in the telemetry filter.
  double telemetry_ema_alpha = 0.3;
  /// Thermal emergency guard: force-sleep after this many consecutive
  /// intervals above the emergency temperature, for `cooldown` intervals.
  Celsius emergency_temp_c{100.0};
  int thermal_trip_intervals = 3;
  int thermal_cooldown_intervals = 4;
};

/// Scheduler wrapper implementing the policies above.  Stateful across
/// intervals (filters, streaks, quarantine set); construct one per
/// mission.
class ReliabilityManager final : public Scheduler {
 public:
  /// `report` (optional) receives the manager's response counters; it
  /// must outlive the manager.  `inner` must outlive it too.
  ReliabilityManager(Scheduler& inner, ReliabilityConfig config = {},
                     ReliabilityReport* report = nullptr);

  std::string name() const override;
  Assignment assign(const SchedulerContext& context) override;

  /// Introspection for tests and benches.
  bool quarantined(int core) const;
  bool passive_only(int core) const;
  int healthy_count() const;
  /// Filtered (NaN-free) telemetry the inner scheduler last saw.
  const std::vector<double>& filtered_delta_vth() const { return filtered_; }

 private:
  struct CoreHealth {
    int missed_heartbeats = 0;
    bool failed = false;          // heartbeat quarantine (permanent)
    bool margin_quarantined = false;
    bool passive_only = false;    // rail flagged stuck
    double last_raw = 0.0;        // for frozen-sensor detection
    bool have_last_raw = false;
    bool have_filtered = false;   // EMA seeded by the first accepted reading
    int overtemp_streak = 0;
    int cooldown_left = 0;
  };

  void ensure_size(int n);
  void update_health(const SchedulerContext& ctx, int n);
  bool available(const CoreHealth& h) const;

  Scheduler* inner_;
  ReliabilityConfig config_;
  ReliabilityReport* report_;
  std::vector<CoreHealth> health_;
  std::vector<double> filtered_;
};

}  // namespace ash::mc
