#pragma once

/// \file scheduler.h
/// Sleep/rejuvenation scheduling policies for the multi-core system
/// (Sec. 6.2 of the paper).
///
/// A scheduler decides, per interval, which cores run the workload and
/// which sleep — and whether sleep is passive (power-gated) or an active
/// rejuvenation (negative bias; heat arrives for free from the active
/// neighbours).  Shipped policies:
///   * `AllActiveScheduler`       — never sleeps (design-for-EOL baseline);
///   * `RoundRobinSleepScheduler` — rotates a contiguous block of sleepers
///     (the naive energy-saving policy), passive or rejuvenating;
///   * `HeaterAwareCircadianScheduler` — rotates sleepers chosen to
///     maximize active-neighbour count (the paper's "on-chip heaters"),
///     tie-breaking toward the most-aged cores;
///   * `ReactiveScheduler` — sleeps cores only once their aging crosses a
///     threshold.

#include <memory>
#include <string>
#include <vector>

#include "ash/mc/floorplan.h"

namespace ash::mc {

/// Mode of one core for one interval.
enum class CoreMode { kActive, kSleepPassive, kSleepRejuvenate };

/// Per-interval decision: one mode per core.
using Assignment = std::vector<CoreMode>;

/// What a scheduler sees when deciding.
struct SchedulerContext {
  int interval_index = 0;
  /// Cores the workload demands this interval.
  int cores_needed = 0;
  /// Current per-core threshold shift (volts).
  std::vector<double> delta_vth;
  const Floorplan* floorplan = nullptr;
};

/// Scheduling policy interface.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  /// Must return exactly core_count() modes with at least `cores_needed`
  /// active cores (the system validates).
  virtual Assignment assign(const SchedulerContext& context) = 0;
};

/// Baseline: everything always runs.
class AllActiveScheduler final : public Scheduler {
 public:
  std::string name() const override { return "all-active"; }
  Assignment assign(const SchedulerContext& context) override;
};

/// Rotating contiguous sleeper block.
class RoundRobinSleepScheduler final : public Scheduler {
 public:
  explicit RoundRobinSleepScheduler(bool rejuvenate)
      : rejuvenate_(rejuvenate) {}
  std::string name() const override {
    return rejuvenate_ ? "round-robin-rejuvenate" : "round-robin-passive";
  }
  Assignment assign(const SchedulerContext& context) override;

 private:
  bool rejuvenate_;
};

/// Circadian rotation with heater-aware placement: every core gets its
/// sleep turn (staleness-driven), aged cores jump the queue on ties, and
/// sleepers are kept non-adjacent so each is surrounded by active heaters.
/// Stateful: tracks when each core last slept.
class HeaterAwareCircadianScheduler final : public Scheduler {
 public:
  std::string name() const override { return "heater-aware-circadian"; }
  Assignment assign(const SchedulerContext& context) override;

 private:
  std::vector<int> last_slept_;  ///< interval index of each core's last sleep
};

/// Threshold-triggered recovery.
class ReactiveScheduler final : public Scheduler {
 public:
  explicit ReactiveScheduler(double threshold_v) : threshold_v_(threshold_v) {}
  std::string name() const override { return "reactive"; }
  Assignment assign(const SchedulerContext& context) override;

 private:
  double threshold_v_;
};

/// Count of active cores in an assignment.
int active_count(const Assignment& assignment);

}  // namespace ash::mc
