#pragma once

/// \file scheduler.h
/// Sleep/rejuvenation scheduling policies for the multi-core system
/// (Sec. 6.2 of the paper).
///
/// A scheduler decides, per interval, which cores run the workload and
/// which sleep — and whether sleep is passive (power-gated) or an active
/// rejuvenation (negative bias; heat arrives for free from the active
/// neighbours).  Shipped policies:
///   * `AllActiveScheduler`       — never sleeps (design-for-EOL baseline);
///   * `RoundRobinSleepScheduler` — rotates a contiguous block of sleepers
///     (the naive energy-saving policy), passive or rejuvenating;
///   * `HeaterAwareCircadianScheduler` — rotates sleepers chosen to
///     maximize active-neighbour count (the paper's "on-chip heaters"),
///     tie-breaking toward the most-aged cores;
///   * `ReactiveScheduler` — sleeps cores only once their aging crosses a
///     threshold.

#include <memory>
#include <string>
#include <vector>

#include "ash/mc/floorplan.h"
#include "ash/util/units.h"

namespace ash::mc {

/// Mode of one core for one interval.
enum class CoreMode { kActive, kSleepPassive, kSleepRejuvenate };

/// Per-interval decision: one mode per core.
using Assignment = std::vector<CoreMode>;

/// Per-core health observables beyond the aging telemetry: the heartbeat
/// (did the core respond this interval) and the rejuvenation-rail
/// power-good monitor.  Real fleet managers see exactly these signals —
/// not ground truth — and must infer core death and rail failure from
/// them.
struct CoreStatus {
  bool responsive = true;  ///< heartbeat answered this interval
  bool rail_ok = true;     ///< negative-rail (rejuvenation) power-good
};

/// What a scheduler sees when deciding.
///
/// `delta_vth` is *measured* odometer telemetry, not ground truth: entries
/// may be noisy, stuck at a stale value, or NaN (dropped reading, dead
/// core).  Schedulers must tolerate NaN entries; the `ReliabilityManager`
/// wrapper additionally filters the stream before its inner policy sees
/// it.  `status` and `temp_c` may be empty (ideal lab, hand-built
/// contexts): empty means all-healthy / no thermal history.
struct SchedulerContext {
  int interval_index = 0;
  /// Cores granted to the workload this interval (already clamped to the
  /// core count by `set_demand`).
  int cores_needed = 0;
  /// Demand the clamp could not grant (requested - cores_needed).
  int demand_deficit = 0;
  /// Measured per-core threshold shift (volts); NaN = no reading.
  std::vector<double> delta_vth;
  /// Per-core health observables; empty = assume all healthy.
  std::vector<CoreStatus> status;
  /// Previous-interval core temperatures; empty on the first
  /// interval or when the caller has no thermal model.
  std::vector<Celsius> temp_c;
  const Floorplan* floorplan = nullptr;

  /// Record the workload's demand, clamped to [0, core_count]; the
  /// overhang lands in `demand_deficit` instead of poisoning schedulers
  /// with an unsatisfiable target.  Requires `floorplan` to be set.
  void set_demand(int requested);
};

/// Scheduling policy interface.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  /// Must return exactly core_count() modes with at least `cores_needed`
  /// active cores (the system counts any shortfall as demand deficit).
  virtual Assignment assign(const SchedulerContext& context) = 0;
};

/// Baseline: everything always runs.
class AllActiveScheduler final : public Scheduler {
 public:
  std::string name() const override { return "all-active"; }
  Assignment assign(const SchedulerContext& context) override;
};

/// Rotating contiguous sleeper block.
class RoundRobinSleepScheduler final : public Scheduler {
 public:
  explicit RoundRobinSleepScheduler(bool rejuvenate)
      : rejuvenate_(rejuvenate) {}
  std::string name() const override {
    return rejuvenate_ ? "round-robin-rejuvenate" : "round-robin-passive";
  }
  Assignment assign(const SchedulerContext& context) override;

 private:
  bool rejuvenate_;
};

/// Circadian rotation with heater-aware placement: every core gets its
/// sleep turn (staleness-driven), aged cores jump the queue on ties, and
/// sleepers are kept non-adjacent so each is surrounded by active heaters.
/// Stateful: tracks when each core last slept.
class HeaterAwareCircadianScheduler final : public Scheduler {
 public:
  std::string name() const override { return "heater-aware-circadian"; }
  Assignment assign(const SchedulerContext& context) override;

 private:
  std::vector<int> last_slept_;  ///< interval index of each core's last sleep
};

/// Threshold-triggered recovery.
class ReactiveScheduler final : public Scheduler {
 public:
  explicit ReactiveScheduler(Volts threshold) : threshold_v_(threshold.value()) {}
  std::string name() const override { return "reactive"; }
  Assignment assign(const SchedulerContext& context) override;

 private:
  double threshold_v_;
};

/// Count of active cores in an assignment.
int active_count(const Assignment& assignment);

}  // namespace ash::mc
