#pragma once

/// \file floorplan.h
/// Multi-core floorplan — the Fig. 10 layout: two rows of four cores over a
/// shared L3 cache slice.
///
/// The floorplan supplies the adjacency structure the "on-chip heater" idea
/// depends on: a sleeping core bordered by active neighbours is heated by
/// them through the lateral thermal conductances, accelerating its
/// recovery during sleep.

#include <cstddef>
#include <vector>

namespace ash::mc {

/// Node kinds of the thermal network.
enum class NodeKind { kCore, kCache };

/// The Fig. 10 grid: cores 0..3 on the top row, 4..7 on the bottom row,
/// node 8 is the shared L3 adjacent to the whole bottom row.
class Floorplan {
 public:
  /// Build the standard 2 x `columns` core grid + L3 (default 8 cores).
  explicit Floorplan(int columns = 4);

  int core_count() const { return 2 * columns_; }
  int node_count() const { return core_count() + 1; }
  int cache_node() const { return core_count(); }
  int columns() const { return columns_; }

  NodeKind kind(int node) const;

  /// Grid coordinates of a core (row 0 = top).
  int row_of(int core) const { return core / columns_; }
  int col_of(int core) const { return core % columns_; }

  /// Nodes thermally adjacent to `node` (4-neighbourhood on the core grid;
  /// the L3 couples to every bottom-row core).
  const std::vector<int>& neighbors(int node) const;

  /// True if the two nodes share a lateral boundary.
  bool adjacent(int a, int b) const;

  /// Number of *core* neighbours of a core (2 for corners, 3 for edges on
  /// the 2x4 grid).
  int core_neighbor_count(int core) const;

 private:
  int columns_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace ash::mc
