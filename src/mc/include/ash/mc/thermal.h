#pragma once

/// \file thermal.h
/// Lumped RC thermal network over the floorplan.
///
/// Each floorplan node is a thermal node with a vertical conductance to the
/// heat sink (at ambient) and lateral conductances to its neighbours.  The
/// scheduler operates on intervals (minutes to hours) that dwarf silicon
/// thermal time constants (~ms–s), so the per-interval temperature field is
/// the steady-state solution of
///     G * T = P + g_sink * T_ambient
/// which `solve_steady_state` computes by direct linear solve.  A transient
/// `step` (explicit Euler over the same network, with per-node heat
/// capacity) is provided for sub-second studies and for validating that the
/// steady state is the transient's fixed point.

#include <vector>

#include "ash/mc/floorplan.h"
#include "ash/util/units.h"

namespace ash::mc {

/// Thermal network constants.
struct ThermalConfig {
  /// Heat-sink (ambient) temperature.
  Celsius ambient_c{45.0};
  /// Vertical conductance of a core node to the sink (W/K).
  double core_to_sink_w_per_k = 0.25;
  /// Vertical conductance of the L3 node to the sink (W/K).
  double cache_to_sink_w_per_k = 1.0;
  /// Lateral conductance between adjacent nodes (W/K).  Large relative to
  /// the vertical path: neighbour heating is strong, which is what makes
  /// the "on-chip heater" scheme work.
  double lateral_w_per_k = 0.8;
  /// Per-node heat capacity (J/K), for the transient integrator.
  double heat_capacity_j_per_k = 50.0;
};

/// The assembled network.
class ThermalModel {
 public:
  ThermalModel(const Floorplan& floorplan, const ThermalConfig& config);

  /// Steady-state node temperatures (degC) for the given per-node powers
  /// (watts).  `powers.size()` must equal the floorplan node count.
  std::vector<double> solve_steady_state(
      const std::vector<double>& powers) const;

  /// One explicit-Euler transient step from `temps` under `powers`;
  /// dt must satisfy the stability bound (checked).
  std::vector<double> step(const std::vector<double>& temps,
                           const std::vector<double>& powers,
                           Seconds dt) const;

  /// Largest stable Euler step for this network.
  Seconds max_stable_dt_s() const;

  const ThermalConfig& config() const { return config_; }
  const Floorplan& floorplan() const { return *floorplan_; }

 private:
  double sink_conductance(int node) const;

  const Floorplan* floorplan_;
  ThermalConfig config_;
};

}  // namespace ash::mc
