#pragma once

/// \file system.h
/// The multi-core self-healing system simulator (Fig. 10 study).
///
/// Per scheduling interval: the policy assigns core modes; the thermal
/// model turns the resulting power map into a temperature field; every
/// core's BTI state advances under its own (voltage, temperature, duty)
/// condition.  Sleeping cores bordered by active neighbours therefore
/// recover at elevated temperature *for free* — the "on-chip heater"
/// effect the paper proposes.

#include <memory>
#include <string>
#include <vector>

#include "ash/bti/closed_form.h"
#include "ash/mc/fault.h"
#include "ash/mc/scheduler.h"
#include "ash/mc/thermal.h"
#include "ash/mc/workload.h"
#include "ash/util/series.h"

namespace ash::mc {

/// System/study configuration.
struct SystemConfig {
  int columns = 4;  ///< 2 x columns cores (Fig. 10 uses 4)
  ThermalConfig thermal;
  /// Electrical power per node by mode (watts).
  double active_power_w = 12.0;
  double sleep_power_w = 0.5;
  double cache_power_w = 3.0;
  /// Negative rail used by rejuvenating sleep.
  Volts rejuvenation_bias_v{-0.3};
  /// Mission operating point of active cores.
  Volts mission_supply_v{1.2};
  double activity_duty = 0.5;
  /// Workload demand: active cores required every interval.
  int cores_needed = 6;
  /// Scheduling interval and study horizon.
  Seconds interval_s{6.0 * 3600.0};
  Seconds horizon_s{3.0 * 365.25 * 86400.0};
  /// Aging budget per core (DeltaVth).
  Volts margin_delta_vth_v{12e-3};
  /// Thermal design power cap (watts); violations are counted.
  double tdp_w = 90.0;
  /// Points in the recorded worst-core trace.
  int trace_points = 200;
  /// Worker threads for the per-core aging fan-out.  1 (default) keeps
  /// the exact serial code path; 0 means one thread per hardware core.
  /// Results are bit-identical at any setting: each core's ager is
  /// independent and every order-dependent accumulator stays serial.
  int aging_threads = 1;
  /// Device model.
  bti::ClosedFormParameters model =
      bti::ClosedFormParameters::from_td(bti::default_td_parameters());
};

/// Study outcome for one scheduler.
struct SystemResult {
  std::string scheduler;
  /// Core-seconds of work *delivered* (an active assignment on a dead or
  /// transient-faulted core delivers nothing).
  Seconds throughput_core_s{0.0};
  /// Core-seconds of demand the fleet could not deliver: workload demand
  /// beyond the core count, starved assignments, and (under faults) work
  /// dispatched to cores that failed to do it.  The system records the
  /// shortfall instead of aborting the study.
  Seconds demand_deficit_core_s{0.0};
  /// First time any *alive* core's aging crossed the margin
  /// (right-censored at horizon + interval when never).
  Seconds time_to_first_margin_s{0.0};
  bool margin_exceeded = false;
  /// Per-core end-state aging.
  std::vector<Volts> end_delta_vth_v;
  /// Per-core permanent (unrecoverable) end-state aging — the fairness
  /// observable: rotation should spread irreversible wear evenly.
  std::vector<Volts> end_permanent_v;
  Volts worst_end_delta_vth_v{0.0};
  Volts mean_end_delta_vth_v{0.0};
  /// Time-average temperature of *sleeping* cores — the heater
  /// effect's direct observable.  NaN when no core ever slept.
  Celsius mean_sleep_temp_c{0.0};
  /// Hottest node temperature seen.
  Celsius max_temp_c{0.0};
  /// Fraction of core-intervals spent sleeping.
  double sleep_share = 0.0;
  /// Number of intervals whose total power exceeded the TDP.
  int tdp_violations = 0;
  /// Worst-core DeltaVth over time.
  Series worst_trace;
};

/// Run one scheduler over the horizon with constant demand
/// (config.cores_needed every interval).
SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler);

/// Run one scheduler against a time-varying workload.  Demand is clamped
/// to [0, core_count] per interval (the overhang is recorded as deficit);
/// config.cores_needed is ignored.
SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler,
                             const Workload& workload);

/// Fault-aware study: the scheduler sees *measured* odometer telemetry
/// (noisy/stuck/NaN per the plan) plus heartbeat and rail status, cores
/// die and glitch per the plan, and the run never aborts — lost work and
/// unmet demand are accounted instead.  Wrap the scheduler in a
/// `ReliabilityManager` sharing the same `report` to get quarantine,
/// failover and repair; pass a raw scheduler to measure how an unmanaged
/// policy degrades.  `report` (optional) receives injected-fault counts
/// and mission outcomes; margin bookkeeping covers the alive fleet.
SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler,
                             const Workload& workload,
                             const CoreFaultPlan& plan,
                             ReliabilityReport* report = nullptr);

/// Fault-aware study with constant demand (config.cores_needed).
SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler,
                             const CoreFaultPlan& plan,
                             ReliabilityReport* report = nullptr);

}  // namespace ash::mc
