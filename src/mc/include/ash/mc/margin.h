#pragma once

/// \file margin.h
/// Margin-crossing projection: "given this duty cycle, when does this
/// device cross its margin?" — the fleet service's headline query
/// (ROADMAP item 1), answered with the paper's closed-form BTI law.
///
/// The device's *current* aging comes from telemetry (the silicon
/// odometer via `ReliabilityManager::filtered_delta_vth`, or the fleet
/// service's durable per-device estimate); the *future* comes from the
/// stateless `bti::ClosedFormModel`.  The projection inverts the monotone
/// stress law to find the stress-equivalent age t0 that reproduces the
/// current DeltaVth under the queried condition, then bisects for the
/// first instant the projected shift reaches the margin.  Everything is
/// closed-form + bisection to fixed iteration count — bit-deterministic,
/// which is what lets two fleet daemons (one chaos-ridden, one not)
/// answer the same query with identical bytes.

#include <vector>

#include "ash/bti/closed_form.h"
#include "ash/util/units.h"

namespace ash::mc {

/// One margin-crossing question.
struct MarginQuery {
  /// Device's current threshold-voltage shift (odometer estimate).
  Volts delta_vth{0.0};
  /// Aging budget; default matches ReliabilityConfig::margin_delta_vth_v.
  Volts margin{12e-3};
  /// Projected mission schedule: switching duty in [0, 1] at (vdd, temp).
  double duty = 0.5;
  Volts vdd{1.2};
  Celsius temp{80.0};
  /// Search horizon; the answer is right-censored here.
  Seconds horizon{10.0 * 365.25 * 24.0 * 3600.0};
};

/// The projection's answer.
struct MarginOutlook {
  /// True when the projected shift reaches the margin within the horizon.
  bool crosses = false;
  /// First time the margin is reached (== horizon when !crosses; 0 when
  /// the device is already past its margin).
  Seconds time_to_margin{0.0};
};

/// Project the query forward under the closed-form stress law.  Throws
/// std::invalid_argument on a malformed query (negative margin/horizon,
/// duty outside [0, 1], non-finite fields).
MarginOutlook margin_outlook(const bti::ClosedFormModel& model,
                             const MarginQuery& query);

/// Batched projection — the whole-shard form of the query ("when does
/// every device of this shard cross, under one mission schedule?").  The
/// expensive condition-independent work (operating-condition construction
/// and the kMaxProjectSeconds ceiling evaluation) is hoisted once per
/// distinct (duty, vdd, temp) triple instead of once per device; the
/// per-device bisections are untouched, so each element of the result is
/// bit-identical to margin_outlook(model, queries[i]).  Validates every
/// query before projecting any (all-or-nothing on malformed input).
std::vector<MarginOutlook> margin_outlook(
    const bti::ClosedFormModel& model, const std::vector<MarginQuery>& queries);

}  // namespace ash::mc
