#include "ash/mc/system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ash::mc {

namespace {

void validate(const SystemConfig& c) {
  if (c.cores_needed < 0 || c.cores_needed > 2 * c.columns) {
    throw std::invalid_argument("SystemConfig: cores_needed out of range");
  }
  if (c.interval_s <= 0.0 || c.horizon_s < c.interval_s) {
    throw std::invalid_argument("SystemConfig: bad interval/horizon");
  }
  if (c.margin_delta_vth_v <= 0.0) {
    throw std::invalid_argument("SystemConfig: margin must be positive");
  }
  if (c.active_power_w < c.sleep_power_w) {
    throw std::invalid_argument(
        "SystemConfig: active power below sleep power");
  }
  if (c.trace_points < 2) {
    throw std::invalid_argument("SystemConfig: need >= 2 trace points");
  }
}

}  // namespace

SystemResult simulate_system(const SystemConfig& config,
                             Scheduler& scheduler) {
  const ConstantWorkload workload(config.cores_needed);
  return simulate_system(config, scheduler, workload);
}

SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler,
                             const Workload& workload) {
  validate(config);
  const Floorplan floorplan(config.columns);
  const ThermalModel thermal(floorplan, config.thermal);
  const int cores = floorplan.core_count();

  std::vector<bti::ClosedFormAger> agers(
      static_cast<std::size_t>(cores), bti::ClosedFormAger(config.model));

  SystemResult result;
  result.scheduler = scheduler.name();
  result.worst_trace.set_name(scheduler.name());

  const auto intervals =
      static_cast<long>(config.horizon_s / config.interval_s);
  const long trace_every =
      std::max<long>(1, intervals / (config.trace_points - 1));

  double sleep_temp_sum = 0.0;
  long sleep_core_intervals = 0;
  long core_intervals = 0;

  for (long k = 0; k < intervals; ++k) {
    const double t_now = static_cast<double>(k) * config.interval_s;
    const int demand = std::clamp(workload.cores_needed(k, t_now), 0, cores);
    SchedulerContext ctx;
    ctx.interval_index = static_cast<int>(k);
    ctx.cores_needed = demand;
    ctx.floorplan = &floorplan;
    ctx.delta_vth.reserve(static_cast<std::size_t>(cores));
    for (const auto& a : agers) ctx.delta_vth.push_back(a.delta_vth());

    const Assignment assignment = scheduler.assign(ctx);
    if (static_cast<int>(assignment.size()) != cores) {
      throw std::runtime_error("simulate_system: bad assignment size");
    }
    if (active_count(assignment) < demand) {
      throw std::runtime_error(
          "simulate_system: scheduler starved the workload");
    }

    // Power map and temperature field.
    std::vector<double> powers(static_cast<std::size_t>(cores) + 1,
                               config.cache_power_w);
    double total_power = config.cache_power_w;
    for (int i = 0; i < cores; ++i) {
      const double p = assignment[static_cast<std::size_t>(i)] ==
                               CoreMode::kActive
                           ? config.active_power_w
                           : config.sleep_power_w;
      powers[static_cast<std::size_t>(i)] = p;
      total_power += p;
    }
    if (total_power > config.tdp_w) ++result.tdp_violations;
    const std::vector<double> temps = thermal.solve_steady_state(powers);

    // Evolve every core under its own condition.
    for (int i = 0; i < cores; ++i) {
      const double t_c = temps[static_cast<std::size_t>(i)];
      result.max_temp_c = std::max(result.max_temp_c, t_c);
      ++core_intervals;
      bti::OperatingCondition cond;
      switch (assignment[static_cast<std::size_t>(i)]) {
        case CoreMode::kActive:
          cond = bti::ac_stress(config.mission_supply_v, t_c,
                                config.activity_duty);
          result.throughput_core_s += config.interval_s;
          break;
        case CoreMode::kSleepPassive:
          cond = bti::recovery(0.0, t_c);
          sleep_temp_sum += t_c;
          ++sleep_core_intervals;
          break;
        case CoreMode::kSleepRejuvenate:
          cond = bti::recovery(config.rejuvenation_bias_v, t_c);
          sleep_temp_sum += t_c;
          ++sleep_core_intervals;
          break;
      }
      agers[static_cast<std::size_t>(i)].evolve(cond, config.interval_s);
    }

    // Margin bookkeeping and trace.
    double worst = 0.0;
    for (const auto& a : agers) worst = std::max(worst, a.delta_vth());
    if (!result.margin_exceeded && worst >= config.margin_delta_vth_v) {
      result.margin_exceeded = true;
      result.time_to_first_margin_s =
          static_cast<double>(k + 1) * config.interval_s;
    }
    if (k % trace_every == 0 || k + 1 == intervals) {
      result.worst_trace.append(static_cast<double>(k + 1) * config.interval_s,
                                worst);
    }
  }

  if (!result.margin_exceeded) {
    result.time_to_first_margin_s = config.horizon_s + config.interval_s;
  }
  for (const auto& a : agers) {
    result.end_delta_vth_v.push_back(a.delta_vth());
    result.end_permanent_v.push_back(a.permanent_delta_vth());
  }
  result.worst_end_delta_vth_v =
      *std::max_element(result.end_delta_vth_v.begin(),
                        result.end_delta_vth_v.end());
  double sum = 0.0;
  for (double v : result.end_delta_vth_v) sum += v;
  result.mean_end_delta_vth_v = sum / static_cast<double>(cores);
  result.mean_sleep_temp_c =
      sleep_core_intervals > 0
          ? sleep_temp_sum / static_cast<double>(sleep_core_intervals)
          : std::nan("");
  result.sleep_share = core_intervals > 0
                           ? static_cast<double>(sleep_core_intervals) /
                                 static_cast<double>(core_intervals)
                           : 0.0;
  return result;
}

}  // namespace ash::mc
