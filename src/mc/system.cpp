#include "ash/mc/system.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "ash/obs/profile.h"
#include "ash/obs/trace.h"
#include "ash/util/thread_pool.h"

namespace ash::mc {

namespace {

void validate(const SystemConfig& c) {
  if (c.cores_needed < 0 || c.cores_needed > 2 * c.columns) {
    throw std::invalid_argument("SystemConfig: cores_needed out of range");
  }
  if (c.interval_s <= Seconds{0.0} || c.horizon_s < c.interval_s) {
    throw std::invalid_argument("SystemConfig: bad interval/horizon");
  }
  if (c.margin_delta_vth_v <= Volts{0.0}) {
    throw std::invalid_argument("SystemConfig: margin must be positive");
  }
  if (c.active_power_w < c.sleep_power_w) {
    throw std::invalid_argument(
        "SystemConfig: active power below sleep power");
  }
  if (c.trace_points < 2) {
    throw std::invalid_argument("SystemConfig: need >= 2 trace points");
  }
}

/// One loop serves both the ideal and the fault-aware studies: with no
/// fault model the telemetry is exact truth and every core lives forever,
/// so the ideal path reproduces the original simulator bit-for-bit.
SystemResult run(const SystemConfig& config, Scheduler& scheduler,
                 const Workload& workload, const CoreFaultPlan* plan,
                 ReliabilityReport* report) {
  validate(config);
  const Floorplan floorplan(config.columns);
  const ThermalModel thermal(floorplan, config.thermal);
  const int cores = floorplan.core_count();

  std::optional<CoreFaultModel> faults;
  if (plan != nullptr) {
    faults.emplace(*plan, cores, config.interval_s, report);
  }

  std::vector<bti::ClosedFormAger> agers(
      static_cast<std::size_t>(cores), bti::ClosedFormAger(config.model));

  SystemResult result;
  result.scheduler = scheduler.name();
  result.worst_trace.set_name(scheduler.name());

  obs::set_sim_now(0.0);
  obs::Span run_span(obs::EventKind::kRun, scheduler.name(), "mc.system");
  run_span.arg("cores", std::to_string(cores));
  run_span.arg("faulted", plan != nullptr ? "yes" : "no");

  const auto intervals =
      static_cast<long>(config.horizon_s / config.interval_s);
  const long trace_every =
      std::max<long>(1, intervals / (config.trace_points - 1));

  double sleep_temp_sum = 0.0;
  long sleep_core_intervals = 0;
  long core_intervals = 0;
  std::vector<double> prev_core_temps;  // empty on the first interval
  std::vector<double> true_vth(static_cast<std::size_t>(cores), 0.0);

  // Aging fan-out: each core's ager is independent, so the evolve calls
  // can run on a pool while every order-dependent accumulator above stays
  // serial.  The default (aging_threads = 1) is inline mode — the exact
  // serial code path.
  util::ThreadPool aging_pool(config.aging_threads);
  std::vector<bti::OperatingCondition> conds(static_cast<std::size_t>(cores));
  std::vector<std::uint8_t> should_age(static_cast<std::size_t>(cores), 0);

  for (long k = 0; k < intervals; ++k) {
    const obs::ScopedKernelTimer interval_timer(obs::Kernel::kMcInterval);
    const double t_now = static_cast<double>(k) * config.interval_s.value();
    obs::set_sim_now(t_now);
    const int requested = workload.cores_needed(k, Seconds{t_now});

    SchedulerContext ctx;
    {
      const obs::ScopedKernelTimer fault_timer(obs::Kernel::kMcFaultSample);
      for (int i = 0; i < cores; ++i) {
        true_vth[static_cast<std::size_t>(i)] =
            agers[static_cast<std::size_t>(i)].delta_vth();
      }
      if (faults) faults->begin_interval(k, true_vth);

      ctx.interval_index = static_cast<int>(k);
      ctx.floorplan = &floorplan;
      ctx.set_demand(requested);
      ctx.temp_c.reserve(prev_core_temps.size());
      for (double t : prev_core_temps) ctx.temp_c.push_back(Celsius{t});
      ctx.delta_vth.reserve(static_cast<std::size_t>(cores));
      if (faults) {
        ctx.status.reserve(static_cast<std::size_t>(cores));
        for (int i = 0; i < cores; ++i) {
          ctx.delta_vth.push_back(faults->measured_delta_vth(
              i, Volts{true_vth[static_cast<std::size_t>(i)]}));
          ctx.status.push_back(faults->status(i));
        }
      } else {
        ctx.delta_vth = true_vth;
      }
    }

    Assignment assignment;
    {
      const obs::ScopedKernelTimer sched_timer(obs::Kernel::kMcSchedDecide);
      assignment = scheduler.assign(ctx);
    }
    if (static_cast<int>(assignment.size()) != cores) {
      throw std::runtime_error("simulate_system: bad assignment size");
    }

    // Power map and temperature field.  Dead cores are dark silicon.
    std::vector<double> powers(static_cast<std::size_t>(cores) + 1,
                               config.cache_power_w);
    double total_power = config.cache_power_w;
    for (int i = 0; i < cores; ++i) {
      double p = assignment[static_cast<std::size_t>(i)] == CoreMode::kActive
                     ? config.active_power_w
                     : config.sleep_power_w;
      if (faults && faults->dead(i)) p = 0.0;
      powers[static_cast<std::size_t>(i)] = p;
      total_power += p;
    }
    if (total_power > config.tdp_w) ++result.tdp_violations;
    std::vector<double> temps;
    {
      const obs::ScopedKernelTimer thermal_timer(
          obs::Kernel::kMcThermalSolve);
      temps = thermal.solve_steady_state(powers);
    }
    prev_core_temps.assign(temps.begin(), temps.begin() + cores);

    // Evolve every core under its own condition.  Bookkeeping (serial,
    // order-dependent accumulators) first; the independent evolve calls
    // then fan out over the pool.
    int delivered = 0;
    for (int i = 0; i < cores; ++i) {
      const double t_c = temps[static_cast<std::size_t>(i)];
      result.max_temp_c = Celsius{std::max(result.max_temp_c.value(), t_c)};
      ++core_intervals;
      should_age[static_cast<std::size_t>(i)] = 0;
      if (faults && faults->dead(i)) {
        // Dark: no power, no work, no aging; the state is frozen at death.
        if (assignment[static_cast<std::size_t>(i)] == CoreMode::kActive &&
            report != nullptr) {
          report->core_intervals_lost++;
        }
        continue;
      }
      const CoreMode mode =
          faults ? faults->effective_mode(
                       i, assignment[static_cast<std::size_t>(i)])
                 : assignment[static_cast<std::size_t>(i)];
      bti::OperatingCondition cond;
      switch (mode) {
        case CoreMode::kActive:
          cond = bti::ac_stress(config.mission_supply_v, Celsius{t_c},
                                config.activity_duty);
          // A transient-faulted core is powered and stressed but does no
          // useful work that interval.
          if (faults && faults->transient_faulted(i)) {
            if (report != nullptr) report->core_intervals_lost++;
          } else {
            ++delivered;
            result.throughput_core_s =
                result.throughput_core_s + config.interval_s;
          }
          break;
        case CoreMode::kSleepPassive:
          cond = bti::recovery(Volts{0.0}, Celsius{t_c});
          sleep_temp_sum += t_c;
          ++sleep_core_intervals;
          break;
        case CoreMode::kSleepRejuvenate:
          cond = bti::recovery(config.rejuvenation_bias_v, Celsius{t_c});
          sleep_temp_sum += t_c;
          ++sleep_core_intervals;
          break;
      }
      conds[static_cast<std::size_t>(i)] = cond;
      should_age[static_cast<std::size_t>(i)] = 1;
    }
    if (aging_pool.size() == 0) {
      for (int i = 0; i < cores; ++i) {
        if (should_age[static_cast<std::size_t>(i)]) {
          agers[static_cast<std::size_t>(i)].evolve(
              conds[static_cast<std::size_t>(i)], config.interval_s);
        }
      }
    } else {
      aging_pool.parallel_for(cores, [&](int i) {
        if (should_age[static_cast<std::size_t>(i)]) {
          agers[static_cast<std::size_t>(i)].evolve(
              conds[static_cast<std::size_t>(i)], config.interval_s);
        }
        return 0;
      });
    }

    // Demand shortfall: whatever of the *requested* demand was not
    // actually delivered this interval (overload, starvation, faults).
    const int deficit = std::max(0, requested - delivered);
    if (deficit > 0) {
      result.demand_deficit_core_s = result.demand_deficit_core_s +
          static_cast<double>(deficit) * config.interval_s;
      if (report != nullptr) report->deficit_core_intervals += deficit;
    }

    // Margin bookkeeping and trace over the alive fleet.
    const obs::ScopedKernelTimer telemetry_timer(obs::Kernel::kMcTelemetry);
    double worst = 0.0;
    for (int i = 0; i < cores; ++i) {
      if (faults && faults->dead(i)) continue;
      worst = std::max(worst, agers[static_cast<std::size_t>(i)].delta_vth());
    }
    if (!result.margin_exceeded && worst >= config.margin_delta_vth_v.value()) {
      result.margin_exceeded = true;
      result.time_to_first_margin_s =
          static_cast<double>(k + 1) * config.interval_s;  // double * Seconds
    }
    if (k % trace_every == 0 || k + 1 == intervals) {
      result.worst_trace.append(
          static_cast<double>(k + 1) * config.interval_s.value(), worst);
    }
  }
  obs::set_sim_now(static_cast<double>(intervals) * config.interval_s.value());

  if (!result.margin_exceeded) {
    result.time_to_first_margin_s = config.horizon_s + config.interval_s;
  }
  for (const auto& a : agers) {
    result.end_delta_vth_v.push_back(Volts{a.delta_vth()});
    result.end_permanent_v.push_back(Volts{a.permanent_delta_vth()});
  }
  result.worst_end_delta_vth_v =
      *std::max_element(result.end_delta_vth_v.begin(),
                        result.end_delta_vth_v.end());
  double sum = 0.0;
  for (const Volts v : result.end_delta_vth_v) sum += v.value();
  result.mean_end_delta_vth_v = Volts{sum / static_cast<double>(cores)};
  result.mean_sleep_temp_c = Celsius{
      sleep_core_intervals > 0
          ? sleep_temp_sum / static_cast<double>(sleep_core_intervals)
          : std::nan("")};
  result.sleep_share = core_intervals > 0
                           ? static_cast<double>(sleep_core_intervals) /
                                 static_cast<double>(core_intervals)
                           : 0.0;
  if (report != nullptr) {
    report->healthy_margin_exceeded = result.margin_exceeded;
    report->healthy_time_to_first_margin_s = result.time_to_first_margin_s;
  }
  return result;
}

}  // namespace

SystemResult simulate_system(const SystemConfig& config,
                             Scheduler& scheduler) {
  const ConstantWorkload workload(config.cores_needed);
  return run(config, scheduler, workload, nullptr, nullptr);
}

SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler,
                             const Workload& workload) {
  return run(config, scheduler, workload, nullptr, nullptr);
}

SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler,
                             const Workload& workload,
                             const CoreFaultPlan& plan,
                             ReliabilityReport* report) {
  return run(config, scheduler, workload, &plan, report);
}

SystemResult simulate_system(const SystemConfig& config, Scheduler& scheduler,
                             const CoreFaultPlan& plan,
                             ReliabilityReport* report) {
  const ConstantWorkload workload(config.cores_needed);
  return run(config, scheduler, workload, &plan, report);
}

}  // namespace ash::mc
