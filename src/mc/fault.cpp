#include "ash/mc/fault.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ash/obs/metrics.h"
#include "ash/obs/trace.h"

namespace ash::mc {

namespace {

constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerYear = 365.25 * kSecondsPerDay;

/// Probability of at least one event over dt at a constant hazard rate.
double hazard_probability(double events_per_s, double dt_s) {
  if (events_per_s <= 0.0) return 0.0;
  return 1.0 - std::exp(-events_per_s * dt_s);
}

void trace_core_fault(const char* channel, int core) {
  obs::instant(obs::EventKind::kFaultInjected, channel, "mc.fault",
               {{"core", std::to_string(core)}});
}

}  // namespace

bool CoreFaultPlan::ideal() const {
  return transient_per_core_day == 0.0 && random_death_per_core_year == 0.0 &&
         wear_death_per_core_year == 0.0 && stuck_rail_per_core_year == 0.0 &&
         sensor_noise_v == Volts{0.0} && sensor_dropout_probability == 0.0 &&
         sensor_stuck_probability == 0.0;
}

CoreFaultPlan CoreFaultPlan::none() { return {}; }

CoreFaultPlan CoreFaultPlan::representative() {
  CoreFaultPlan p;
  p.transient_per_core_day = 0.01;
  p.random_death_per_core_year = 0.2;
  p.wear_death_per_core_year = 0.5;
  p.stuck_rail_per_core_year = 0.08;
  p.sensor_noise_v = Volts{0.5e-3};
  p.sensor_dropout_probability = 0.02;
  p.sensor_stuck_probability = 0.002;
  return p;
}

CoreFaultPlan CoreFaultPlan::harsh() {
  CoreFaultPlan p;
  p.transient_per_core_day = 0.1;
  p.random_death_per_core_year = 0.5;
  p.wear_death_per_core_year = 2.0;
  p.stuck_rail_per_core_year = 0.3;
  p.sensor_noise_v = Volts{1.5e-3};
  p.sensor_dropout_probability = 0.08;
  p.sensor_stuck_probability = 0.01;
  p.sensor_stuck_intervals = 16;
  return p;
}

CoreFaultPlan CoreFaultPlan::by_name(const std::string& name) {
  if (name == "none") return none();
  if (name == "representative") return representative();
  if (name == "harsh") return harsh();
  throw std::invalid_argument("CoreFaultPlan::by_name: unknown preset '" +
                              name + "' (expected none|representative|harsh)");
}

bool ReliabilityReport::clean() const {
  // Margin bookkeeping is a mission statistic (recorded even on an ideal
  // run), not a fault: ignore it in the comparison.
  ReliabilityReport zero;
  zero.healthy_margin_exceeded = healthy_margin_exceeded;
  zero.healthy_time_to_first_margin_s = healthy_time_to_first_margin_s;
  return *this == zero;
}

bool ReliabilityReport::accounted() const {
  return cores_quarantined >= permanent_deaths &&
         rails_flagged >= stuck_rails &&
         telemetry_rejections >= sensor_dropouts;
}

void ReliabilityReport::merge(const ReliabilityReport& other) {
  transient_faults += other.transient_faults;
  permanent_deaths += other.permanent_deaths;
  wear_deaths += other.wear_deaths;
  stuck_rails += other.stuck_rails;
  sensor_dropouts += other.sensor_dropouts;
  sensor_stuck_windows += other.sensor_stuck_windows;
  cores_quarantined += other.cores_quarantined;
  margin_quarantines += other.margin_quarantines;
  quarantine_releases += other.quarantine_releases;
  rails_flagged += other.rails_flagged;
  rail_downgrades += other.rail_downgrades;
  telemetry_rejections += other.telemetry_rejections;
  assignments_repaired += other.assignments_repaired;
  failovers += other.failovers;
  thermal_trips += other.thermal_trips;
  core_intervals_lost += other.core_intervals_lost;
  deficit_core_intervals += other.deficit_core_intervals;
  healthy_margin_exceeded =
      healthy_margin_exceeded || other.healthy_margin_exceeded;
  // 0 means "not recorded"; otherwise the earlier crossing wins.
  if (other.healthy_time_to_first_margin_s > Seconds{0.0}) {
    healthy_time_to_first_margin_s =
        healthy_time_to_first_margin_s > Seconds{0.0}
            ? std::min(healthy_time_to_first_margin_s,
                       other.healthy_time_to_first_margin_s)
            : other.healthy_time_to_first_margin_s;
  }
}

std::string ReliabilityReport::render() const {
  std::ostringstream os;
  os << "reliability report:\n"
     << "  injected: " << transient_faults << " transient fault(s), "
     << permanent_deaths << " core death(s) (" << wear_deaths
     << " wearout), " << stuck_rails << " stuck rail(s), " << sensor_dropouts
     << " sensor dropout(s), " << sensor_stuck_windows
     << " stuck-sensor window(s)\n"
     << "  responses: " << cores_quarantined << " quarantine(s) ("
     << margin_quarantines << " for margin, " << quarantine_releases
     << " released), " << rails_flagged << " rail(s) flagged ("
     << rail_downgrades << " downgrade(s)), " << telemetry_rejections
     << " telemetry rejection(s), " << assignments_repaired
     << " assignment(s) repaired (" << failovers << " failover(s)), "
     << thermal_trips << " thermal trip(s)\n"
     << "  outcomes: " << core_intervals_lost << " core-interval(s) lost, "
     << deficit_core_intervals << " core-interval(s) of demand deficit, "
     << "healthy fleet margin "
     << (healthy_margin_exceeded ? "EXCEEDED" : "held") << "\n";
  return os.str();
}

void ReliabilityReport::publish(obs::Registry& registry,
                                const std::string& prefix) const {
  const auto set = [&](const char* name, long value) {
    registry.counter(prefix + name).set(static_cast<std::uint64_t>(value));
  };
  set("transient_faults", transient_faults);
  set("permanent_deaths", permanent_deaths);
  set("wear_deaths", wear_deaths);
  set("stuck_rails", stuck_rails);
  set("sensor_dropouts", sensor_dropouts);
  set("sensor_stuck_windows", sensor_stuck_windows);
  set("cores_quarantined", cores_quarantined);
  set("margin_quarantines", margin_quarantines);
  set("quarantine_releases", quarantine_releases);
  set("rails_flagged", rails_flagged);
  set("rail_downgrades", rail_downgrades);
  set("telemetry_rejections", telemetry_rejections);
  set("assignments_repaired", assignments_repaired);
  set("failovers", failovers);
  set("thermal_trips", thermal_trips);
  set("core_intervals_lost", core_intervals_lost);
  set("deficit_core_intervals", deficit_core_intervals);
  registry.gauge(prefix + "healthy_margin_exceeded")
      .set(healthy_margin_exceeded ? 1.0 : 0.0);
  registry.gauge(prefix + "healthy_time_to_first_margin_s")
      .set(healthy_time_to_first_margin_s.value());
}

CoreFaultModel::CoreFaultModel(const CoreFaultPlan& plan, int core_count,
                               Seconds interval, ReliabilityReport* report)
    : plan_(plan),
      core_count_(core_count),
      interval_s_(interval.value()),
      report_(report),
      cores_(static_cast<std::size_t>(core_count)) {
  if (core_count <= 0) {
    throw std::invalid_argument("CoreFaultModel: core_count must be positive");
  }
  if (interval_s_ <= 0.0) {
    throw std::invalid_argument("CoreFaultModel: interval must be positive");
  }
}

void CoreFaultModel::begin_interval(long interval_index,
                                    const std::vector<double>& true_delta_vth) {
  if (true_delta_vth.size() != static_cast<std::size_t>(core_count_)) {
    throw std::invalid_argument(
        "CoreFaultModel::begin_interval: delta_vth size mismatch");
  }
  for (int i = 0; i < core_count_; ++i) {
    auto& c = cores_[static_cast<std::size_t>(i)];
    // Every (core, interval) pair owns an independent derived stream, so
    // the fault history replays bit-identically regardless of how many
    // draws any single interval consumes.
    c.rng = Rng(derive_seed(derive_seed(plan_.seed, static_cast<std::uint64_t>(i)),
                            static_cast<std::uint64_t>(interval_index)));
    c.transient = false;
    if (c.dead) continue;

    // Permanent death: constant extrinsic hazard plus the wearout hazard
    // driven by the core's true aging.
    const double dv = true_delta_vth[static_cast<std::size_t>(i)];
    double wear_rate = 0.0;
    if (plan_.wear_death_per_core_year > 0.0 && dv > 0.0 &&
        plan_.wear_death_ref_v > Volts{0.0}) {
      wear_rate = plan_.wear_death_per_core_year / kSecondsPerYear *
                  std::pow(dv / plan_.wear_death_ref_v.value(),
                           plan_.wear_death_shape);
    }
    const double random_rate = plan_.random_death_per_core_year / kSecondsPerYear;
    const double p_death =
        hazard_probability(random_rate + wear_rate, interval_s_);
    if (c.rng.bernoulli(p_death)) {
      c.dead = true;
      // Attribute the death to whichever hazard dominated the draw.
      c.died_of_wear =
          random_rate + wear_rate > 0.0 &&
          c.rng.bernoulli(wear_rate / (random_rate + wear_rate));
      if (report_) {
        report_->permanent_deaths++;
        if (c.died_of_wear) report_->wear_deaths++;
      }
      if (obs::tracing()) {
        trace_core_fault(
            c.died_of_wear ? "core.death.wearout" : "core.death.random", i);
      }
      continue;  // dead cores draw nothing further
    }

    if (c.rng.bernoulli(hazard_probability(
            plan_.transient_per_core_day / kSecondsPerDay, interval_s_))) {
      c.transient = true;
      if (report_) report_->transient_faults++;
      if (obs::tracing()) trace_core_fault("core.transient", i);
    }

    if (!c.rail_stuck &&
        c.rng.bernoulli(hazard_probability(
            plan_.stuck_rail_per_core_year / kSecondsPerYear, interval_s_))) {
      c.rail_stuck = true;
      if (report_) report_->stuck_rails++;
      if (obs::tracing()) trace_core_fault("core.rail_stuck", i);
    }

    if (c.stuck_left > 0) {
      --c.stuck_left;
    } else if (c.rng.bernoulli(plan_.sensor_stuck_probability)) {
      c.stuck_left = plan_.sensor_stuck_intervals;
      c.stuck_value_v =
          dv + c.rng.normal(0.0, plan_.sensor_noise_v.value());  // freeze
      if (report_) report_->sensor_stuck_windows++;
      if (obs::tracing()) trace_core_fault("sensor.stuck_window", i);
    }
  }
}

bool CoreFaultModel::dead(int core) const {
  return cores_[static_cast<std::size_t>(core)].dead;
}

bool CoreFaultModel::transient_faulted(int core) const {
  return cores_[static_cast<std::size_t>(core)].transient;
}

bool CoreFaultModel::rail_stuck(int core) const {
  return cores_[static_cast<std::size_t>(core)].rail_stuck;
}

int CoreFaultModel::alive_count() const {
  int alive = 0;
  for (const auto& c : cores_) alive += c.dead ? 0 : 1;
  return alive;
}

CoreStatus CoreFaultModel::status(int core) const {
  const auto& c = cores_[static_cast<std::size_t>(core)];
  CoreStatus s;
  s.responsive = !c.dead && !c.transient;
  s.rail_ok = !c.rail_stuck;
  return s;
}

double CoreFaultModel::measured_delta_vth(int core, Volts true_delta) {
  const double true_v = true_delta.value();
  auto& c = cores_[static_cast<std::size_t>(core)];
  if (c.dead) return std::nan("");
  if (c.rng.bernoulli(plan_.sensor_dropout_probability)) {
    if (report_) report_->sensor_dropouts++;
    if (obs::tracing()) trace_core_fault("sensor.dropout", core);
    return std::nan("");
  }
  if (c.stuck_left > 0) return c.stuck_value_v;
  return true_v + c.rng.normal(0.0, plan_.sensor_noise_v.value());
}

CoreMode CoreFaultModel::effective_mode(int core, CoreMode commanded) const {
  const auto& c = cores_[static_cast<std::size_t>(core)];
  if (c.rail_stuck && commanded == CoreMode::kSleepRejuvenate) {
    return CoreMode::kSleepPassive;
  }
  return commanded;
}

}  // namespace ash::mc
