#include "ash/mc/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ash::mc {

namespace {

int validate_context(const SchedulerContext& ctx) {
  if (ctx.floorplan == nullptr) {
    throw std::invalid_argument("SchedulerContext: missing floorplan");
  }
  const int n = ctx.floorplan->core_count();
  if (ctx.delta_vth.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("SchedulerContext: delta_vth size mismatch");
  }
  return n;
}

/// Demand a policy can actually satisfy.  Out-of-range demand is clamped,
/// never thrown: an overloaded fleet should degrade (and let the system
/// account the deficit), not crash the study.
int satisfiable_demand(const SchedulerContext& ctx, int n) {
  return std::clamp(ctx.cores_needed, 0, n);
}

/// Telemetry entry with NaN (dropped reading, dead core) treated as "no
/// evidence of aging": poisoned entries must not propagate into scores or
/// sort comparators, where NaN breaks strict weak ordering.
double telemetry_or_zero(const SchedulerContext& ctx, int core) {
  const double v = ctx.delta_vth[static_cast<std::size_t>(core)];
  return std::isnan(v) ? 0.0 : v;
}

}  // namespace

void SchedulerContext::set_demand(int requested) {
  if (floorplan == nullptr) {
    throw std::invalid_argument("SchedulerContext::set_demand: set floorplan first");
  }
  cores_needed = std::clamp(requested, 0, floorplan->core_count());
  demand_deficit = std::max(0, requested - cores_needed);
}

int active_count(const Assignment& assignment) {
  return static_cast<int>(
      std::count(assignment.begin(), assignment.end(), CoreMode::kActive));
}

Assignment AllActiveScheduler::assign(const SchedulerContext& ctx) {
  const int n = validate_context(ctx);
  return Assignment(static_cast<std::size_t>(n), CoreMode::kActive);
}

Assignment RoundRobinSleepScheduler::assign(const SchedulerContext& ctx) {
  const int n = validate_context(ctx);
  const int sleepers = n - satisfiable_demand(ctx, n);
  Assignment out(static_cast<std::size_t>(n), CoreMode::kActive);
  const CoreMode sleep_mode =
      rejuvenate_ ? CoreMode::kSleepRejuvenate : CoreMode::kSleepPassive;
  // Contiguous block starting at a rotating offset: every core gets its
  // turn, but sleepers cluster (adjacent sleepers shade each other from
  // the neighbour heat — the naive policy's weakness).
  const int start = sleepers > 0 ? (ctx.interval_index * sleepers) % n : 0;
  for (int k = 0; k < sleepers; ++k) {
    out[static_cast<std::size_t>((start + k) % n)] = sleep_mode;
  }
  return out;
}

Assignment HeaterAwareCircadianScheduler::assign(const SchedulerContext& ctx) {
  const int n = validate_context(ctx);
  const int sleepers = n - satisfiable_demand(ctx, n);
  Assignment out(static_cast<std::size_t>(n), CoreMode::kActive);
  if (last_slept_.size() != static_cast<std::size_t>(n)) {
    last_slept_.assign(static_cast<std::size_t>(n), -1);
  }
  if (sleepers <= 0) return out;

  // Score: staleness (intervals since last sleep) drives the circadian
  // rotation; aging breaks ties so the neediest core jumps the queue.
  // Placement: greedy picks skip cores adjacent to already-chosen sleepers
  // (so every sleeper keeps its active heaters), falling back to adjacency
  // only when the grid leaves no spread-out choice.
  std::vector<bool> sleeping(static_cast<std::size_t>(n), false);
  for (int pick = 0; pick < sleepers; ++pick) {
    int best = -1;
    double best_score = -1e300;
    for (int allow_adjacent = 0; allow_adjacent <= 1 && best < 0;
         ++allow_adjacent) {
      for (int core = 0; core < n; ++core) {
        if (sleeping[static_cast<std::size_t>(core)]) continue;
        bool next_to_sleeper = false;
        for (int nb : ctx.floorplan->neighbors(core)) {
          if (nb != ctx.floorplan->cache_node() &&
              sleeping[static_cast<std::size_t>(nb)]) {
            next_to_sleeper = true;
          }
        }
        if (next_to_sleeper && allow_adjacent == 0) continue;
        const double staleness = static_cast<double>(
            ctx.interval_index - last_slept_[static_cast<std::size_t>(core)]);
        // NaN telemetry scores as unaged: a core with no reading still
        // takes its circadian turn, it just never jumps the queue.
        const double aging_mv = telemetry_or_zero(ctx, core) / 1e-3;
        const double score = 8.0 * staleness + aging_mv;
        if (score > best_score) {
          best_score = score;
          best = core;
        }
      }
    }
    if (best < 0) break;  // defensive: no pickable core left
    sleeping[static_cast<std::size_t>(best)] = true;
    last_slept_[static_cast<std::size_t>(best)] = ctx.interval_index;
    out[static_cast<std::size_t>(best)] = CoreMode::kSleepRejuvenate;
  }
  return out;
}

Assignment ReactiveScheduler::assign(const SchedulerContext& ctx) {
  const int n = validate_context(ctx);
  const int max_sleepers = n - satisfiable_demand(ctx, n);
  Assignment out(static_cast<std::size_t>(n), CoreMode::kActive);
  if (max_sleepers <= 0) return out;

  // Most-aged cores above the threshold sleep, up to the demand cap.
  // Sorting on raw telemetry would hand NaN to the comparator (undefined
  // strict-weak-ordering), so poisoned entries sort as unaged and never
  // trigger the reactive threshold.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return telemetry_or_zero(ctx, a) > telemetry_or_zero(ctx, b);
  });
  int slept = 0;
  for (int core : order) {
    if (slept >= max_sleepers) break;
    if (telemetry_or_zero(ctx, core) < threshold_v_) break;
    out[static_cast<std::size_t>(core)] = CoreMode::kSleepRejuvenate;
    ++slept;
  }
  return out;
}

}  // namespace ash::mc
