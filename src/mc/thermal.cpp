#include "ash/mc/thermal.h"

#include <algorithm>
#include <stdexcept>

#include "ash/util/optimize.h"

namespace ash::mc {

ThermalModel::ThermalModel(const Floorplan& floorplan,
                           const ThermalConfig& config)
    : floorplan_(&floorplan), config_(config) {
  if (config_.core_to_sink_w_per_k <= 0.0 ||
      config_.cache_to_sink_w_per_k <= 0.0 || config_.lateral_w_per_k < 0.0 ||
      config_.heat_capacity_j_per_k <= 0.0) {
    throw std::invalid_argument("ThermalConfig: non-physical conductances");
  }
}

double ThermalModel::sink_conductance(int node) const {
  return floorplan_->kind(node) == NodeKind::kCache
             ? config_.cache_to_sink_w_per_k
             : config_.core_to_sink_w_per_k;
}

std::vector<double> ThermalModel::solve_steady_state(
    const std::vector<double>& powers) const {
  const int n = floorplan_->node_count();
  if (powers.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("solve_steady_state: power vector size");
  }
  // Assemble G (row-major) and the RHS.
  std::vector<double> g(static_cast<std::size_t>(n * n), 0.0);
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    double diag = sink_conductance(i);
    for (int j : floorplan_->neighbors(i)) {
      diag += config_.lateral_w_per_k;
      g[static_cast<std::size_t>(i * n + j)] -= config_.lateral_w_per_k;
    }
    g[static_cast<std::size_t>(i * n + i)] = diag;
    rhs[static_cast<std::size_t>(i)] =
        powers[static_cast<std::size_t>(i)] +
        sink_conductance(i) * config_.ambient_c.value();
  }
  return solve_linear(std::move(g), std::move(rhs));
}

std::vector<double> ThermalModel::step(const std::vector<double>& temps,
                                       const std::vector<double>& powers,
                                       Seconds dt) const {
  const double dt_s = dt.value();
  const int n = floorplan_->node_count();
  if (temps.size() != static_cast<std::size_t>(n) ||
      powers.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("step: vector size");
  }
  if (dt_s <= 0.0 || dt_s > max_stable_dt_s().value()) {
    throw std::invalid_argument("step: dt outside the stable range");
  }
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double ti = temps[static_cast<std::size_t>(i)];
    double flux = powers[static_cast<std::size_t>(i)] -
                  sink_conductance(i) * (ti - config_.ambient_c.value());
    for (int j : floorplan_->neighbors(i)) {
      flux -= config_.lateral_w_per_k *
              (ti - temps[static_cast<std::size_t>(j)]);
    }
    out[static_cast<std::size_t>(i)] =
        ti + dt_s * flux / config_.heat_capacity_j_per_k;
  }
  return out;
}

Seconds ThermalModel::max_stable_dt_s() const {
  // Explicit Euler is stable for dt < 2*C/g_max; use a conservative bound
  // from the worst-case diagonal conductance.
  double g_max = 0.0;
  const int n = floorplan_->node_count();
  for (int i = 0; i < n; ++i) {
    const double g = sink_conductance(i) +
                     config_.lateral_w_per_k *
                         static_cast<double>(floorplan_->neighbors(i).size());
    g_max = std::max(g_max, g);
  }
  return Seconds{config_.heat_capacity_j_per_k / g_max};
}

}  // namespace ash::mc
