#include "ash/mc/margin.h"

#include <cmath>
#include <stdexcept>

#include "ash/bti/condition.h"

namespace ash::mc {

namespace {

/// Fixed-iteration bisection keeps the answer bit-deterministic across
/// platforms and runs (the fleet protocol's transcript invariant).
constexpr int kBisectIterations = 200;

/// Largest projection time we ever evaluate: ~3e11 years.  The log law is
/// still finite there, and any stress-equivalent age beyond it means the
/// queried condition ages the device too slowly to matter.
constexpr double kMaxProjectSeconds = 1e19;

void validate(const MarginQuery& q) {
  const bool finite = std::isfinite(q.delta_vth.value()) &&
                      std::isfinite(q.margin.value()) &&
                      std::isfinite(q.duty) && std::isfinite(q.vdd.value()) &&
                      std::isfinite(q.temp.value()) &&
                      std::isfinite(q.horizon.value());
  if (!finite) throw std::invalid_argument("margin query: non-finite field");
  if (q.margin.value() < 0.0) {
    throw std::invalid_argument("margin query: negative margin");
  }
  if (q.horizon.value() < 0.0) {
    throw std::invalid_argument("margin query: negative horizon");
  }
  if (q.duty < 0.0 || q.duty > 1.0) {
    throw std::invalid_argument("margin query: duty outside [0, 1]");
  }
  if (q.delta_vth.value() < 0.0) {
    throw std::invalid_argument("margin query: negative delta_vth");
  }
}

/// Smallest t in [0, hi] with delta(t) >= target, assuming delta is
/// monotone nondecreasing and delta(hi) >= target.
double bisect_first_reach(const bti::ClosedFormModel& model,
                          const bti::OperatingCondition& c, double target,
                          double hi) {
  double lo = 0.0;
  for (int i = 0; i < kBisectIterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (model.stress_delta_vth(Seconds{mid}, c) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

/// The query-specific tail of the projection, with the condition and its
/// kMaxProjectSeconds ceiling supplied by the caller.  Shared by the single
/// and the batched entry points so a hoisted (condition, ceiling) pair
/// yields bit-identical answers by construction.
MarginOutlook project(const bti::ClosedFormModel& model,
                      const MarginQuery& query,
                      const bti::OperatingCondition& c, double ceiling) {
  MarginOutlook outlook;
  // If even kMaxProjectSeconds of this condition cannot reproduce the
  // current shift (or reach the margin), the condition ages the device too
  // slowly for any further growth to matter within a physical horizon.
  if (ceiling < query.margin.value() || ceiling < query.delta_vth.value()) {
    outlook.crosses = false;
    outlook.time_to_margin = query.horizon;
    return outlook;
  }
  // Invert the monotone stress law: find the stress-equivalent age t0 that
  // reproduces the device's current shift under the queried condition.
  const double t0 = bisect_first_reach(model, c, query.delta_vth.value(),
                                       kMaxProjectSeconds);

  // Does the projected shift reach the margin inside the horizon?
  const double at_horizon =
      model.stress_delta_vth(Seconds{t0 + query.horizon.value()}, c);
  if (at_horizon < query.margin.value()) {
    outlook.crosses = false;
    outlook.time_to_margin = query.horizon;
    return outlook;
  }
  const double t_cross = bisect_first_reach(model, c, query.margin.value(),
                                            t0 + query.horizon.value());
  outlook.crosses = true;
  outlook.time_to_margin = Seconds{std::max(0.0, t_cross - t0)};
  return outlook;
}

bti::OperatingCondition condition_of(const MarginQuery& query) {
  return query.duty > 0.0 ? bti::ac_stress(query.vdd, query.temp, query.duty)
                          : bti::recovery(query.vdd, query.temp);
}

}  // namespace

MarginOutlook margin_outlook(const bti::ClosedFormModel& model,
                             const MarginQuery& query) {
  validate(query);

  if (query.delta_vth.value() >= query.margin.value()) {
    // Already past budget: the crossing is now.
    MarginOutlook outlook;
    outlook.crosses = true;
    outlook.time_to_margin = Seconds{0.0};
    return outlook;
  }

  const bti::OperatingCondition c = condition_of(query);
  const double ceiling = model.stress_delta_vth(Seconds{kMaxProjectSeconds}, c);
  return project(model, query, c, ceiling);
}

std::vector<MarginOutlook> margin_outlook(
    const bti::ClosedFormModel& model,
    const std::vector<MarginQuery>& queries) {
  for (const MarginQuery& q : queries) validate(q);

  // One hoisted (condition, ceiling) per distinct mission schedule.  A
  // whole-shard query carries one schedule for every device, so the linear
  // scan stays O(1) per query in practice.
  struct Hoisted {
    double duty;
    double vdd;
    double temp;
    bti::OperatingCondition c;
    double ceiling;
  };
  std::vector<Hoisted> hoisted;

  std::vector<MarginOutlook> outlooks;
  outlooks.reserve(queries.size());
  for (const MarginQuery& q : queries) {
    if (q.delta_vth.value() >= q.margin.value()) {
      MarginOutlook outlook;
      outlook.crosses = true;
      outlook.time_to_margin = Seconds{0.0};
      outlooks.push_back(outlook);
      continue;
    }
    const Hoisted* entry = nullptr;
    for (const Hoisted& h : hoisted) {
      if (h.duty == q.duty && h.vdd == q.vdd.value() &&
          h.temp == q.temp.value()) {
        entry = &h;
        break;
      }
    }
    if (entry == nullptr) {
      Hoisted h;
      h.duty = q.duty;
      h.vdd = q.vdd.value();
      h.temp = q.temp.value();
      h.c = condition_of(q);
      h.ceiling = model.stress_delta_vth(Seconds{kMaxProjectSeconds}, h.c);
      hoisted.push_back(h);
      entry = &hoisted.back();
    }
    outlooks.push_back(project(model, q, entry->c, entry->ceiling));
  }
  return outlooks;
}

}  // namespace ash::mc
