#include "ash/mc/floorplan.h"

#include <algorithm>
#include <stdexcept>

namespace ash::mc {

Floorplan::Floorplan(int columns) : columns_(columns) {
  if (columns < 2) {
    throw std::invalid_argument("Floorplan: need at least 2 columns");
  }
  adjacency_.resize(static_cast<std::size_t>(node_count()));
  const auto connect = [&](int a, int b) {
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
  };
  for (int core = 0; core < core_count(); ++core) {
    const int r = row_of(core);
    const int c = col_of(core);
    if (c + 1 < columns_) connect(core, core + 1);          // right neighbour
    if (r == 0) connect(core, core + columns_);             // row below
    if (r == 1) connect(core, cache_node());                // L3 underneath
  }
  return;
}

NodeKind Floorplan::kind(int node) const {
  return node == cache_node() ? NodeKind::kCache : NodeKind::kCore;
}

const std::vector<int>& Floorplan::neighbors(int node) const {
  return adjacency_.at(static_cast<std::size_t>(node));
}

bool Floorplan::adjacent(int a, int b) const {
  const auto& n = neighbors(a);
  return std::find(n.begin(), n.end(), b) != n.end();
}

int Floorplan::core_neighbor_count(int core) const {
  int count = 0;
  for (int n : neighbors(core)) {
    if (n != cache_node()) ++count;
  }
  return count;
}

}  // namespace ash::mc
