#include "ash/mc/reliability.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ash/obs/trace.h"

namespace ash::mc {

namespace {

void trace_response(obs::EventKind kind, const char* name, int core) {
  obs::instant(kind, name, "mc.reliability", {{"core", std::to_string(core)}});
}

}  // namespace

ReliabilityManager::ReliabilityManager(Scheduler& inner,
                                       ReliabilityConfig config,
                                       ReliabilityReport* report)
    : inner_(&inner), config_(config), report_(report) {
  if (config_.fail_after_intervals < 1 || config_.thermal_trip_intervals < 1) {
    throw std::invalid_argument(
        "ReliabilityConfig: detection windows must be >= 1 interval");
  }
  if (config_.margin_delta_vth_v <= Volts{0.0} ||
      config_.quarantine_release_frac >= config_.quarantine_enter_frac) {
    throw std::invalid_argument(
        "ReliabilityConfig: margin hysteresis must satisfy release < enter");
  }
  if (config_.telemetry_ema_alpha <= 0.0 || config_.telemetry_ema_alpha > 1.0) {
    throw std::invalid_argument(
        "ReliabilityConfig: telemetry_ema_alpha must be in (0, 1]");
  }
}

std::string ReliabilityManager::name() const {
  return "reliability(" + inner_->name() + ")";
}

void ReliabilityManager::ensure_size(int n) {
  if (health_.size() != static_cast<std::size_t>(n)) {
    health_.assign(static_cast<std::size_t>(n), CoreHealth{});
    filtered_.assign(static_cast<std::size_t>(n), 0.0);
  }
}

bool ReliabilityManager::available(const CoreHealth& h) const {
  return !h.failed && !h.margin_quarantined && h.cooldown_left == 0;
}

void ReliabilityManager::update_health(const SchedulerContext& ctx, int n) {
  for (int i = 0; i < n; ++i) {
    auto& h = health_[static_cast<std::size_t>(i)];
    const CoreStatus st = i < static_cast<int>(ctx.status.size())
                              ? ctx.status[static_cast<std::size_t>(i)]
                              : CoreStatus{};

    // Rail power-good: once the monitor reports a stuck rail, the core is
    // passive-only for good (charge pumps don't heal).
    if (!st.rail_ok && !h.passive_only) {
      h.passive_only = true;
      if (report_) report_->rails_flagged++;
      if (obs::tracing()) {
        trace_response(obs::EventKind::kFaultDetected, "rail.flagged", i);
      }
    }

    // Heartbeat with hysteresis: one missed beat is a transient; a streak
    // is a dead core.
    if (!st.responsive) {
      ++h.missed_heartbeats;
      if (!h.failed && h.missed_heartbeats >= config_.fail_after_intervals) {
        h.failed = true;
        if (report_) report_->cores_quarantined++;
        if (obs::tracing()) {
          trace_response(obs::EventKind::kQuarantine, "quarantine.heartbeat",
                         i);
        }
      }
    } else {
      h.missed_heartbeats = 0;
    }

    // Telemetry filter: reject NaN and bit-identical repeats (a frozen
    // sensor — with live noise two honest readings never repeat exactly),
    // fold accepted readings into a per-core EMA.
    const double raw = ctx.delta_vth[static_cast<std::size_t>(i)];
    bool reject = std::isnan(raw);
    if (!reject && h.have_last_raw && raw == h.last_raw) reject = true;
    if (!std::isnan(raw)) {
      h.last_raw = raw;
      h.have_last_raw = true;
    }
    if (reject) {
      if (report_) report_->telemetry_rejections++;
    } else if (!h.have_filtered) {
      filtered_[static_cast<std::size_t>(i)] = raw;
      h.have_filtered = true;
    } else {
      const double a = config_.telemetry_ema_alpha;
      filtered_[static_cast<std::size_t>(i)] =
          (1.0 - a) * filtered_[static_cast<std::size_t>(i)] + a * raw;
    }

    // Margin quarantine (hysteresis): a core past its aging budget is
    // pulled from service for deep rejuvenation and released once healed.
    if (!h.failed) {
      const double f = filtered_[static_cast<std::size_t>(i)];
      if (!h.margin_quarantined &&
          f >= config_.quarantine_enter_frac *
                   config_.margin_delta_vth_v.value()) {
        h.margin_quarantined = true;
        if (report_) {
          report_->margin_quarantines++;
          report_->cores_quarantined++;
        }
        if (obs::tracing()) {
          trace_response(obs::EventKind::kQuarantine, "quarantine.margin", i);
        }
      } else if (h.margin_quarantined &&
                 f <= config_.quarantine_release_frac *
                          config_.margin_delta_vth_v.value()) {
        h.margin_quarantined = false;
        if (report_) report_->quarantine_releases++;
        if (obs::tracing()) {
          trace_response(obs::EventKind::kQuarantineRelease,
                         "quarantine.release", i);
        }
      }
    }

    // Thermal emergency guard: sustained over-temperature trips a forced
    // cooldown sleep.
    if (h.cooldown_left > 0) {
      --h.cooldown_left;
      h.overtemp_streak = 0;
    } else if (i < static_cast<int>(ctx.temp_c.size()) &&
               ctx.temp_c[static_cast<std::size_t>(i)] >
                   config_.emergency_temp_c) {
      if (++h.overtemp_streak >= config_.thermal_trip_intervals) {
        h.cooldown_left = config_.thermal_cooldown_intervals;
        h.overtemp_streak = 0;
        if (report_) report_->thermal_trips++;
        if (obs::tracing()) {
          trace_response(obs::EventKind::kFaultDetected, "thermal.trip", i);
        }
      }
    } else {
      h.overtemp_streak = 0;
    }
  }
}

int ReliabilityManager::healthy_count() const {
  int healthy = 0;
  for (const auto& h : health_) healthy += available(h) ? 1 : 0;
  return healthy;
}

bool ReliabilityManager::quarantined(int core) const {
  const auto& h = health_[static_cast<std::size_t>(core)];
  return h.failed || h.margin_quarantined;
}

bool ReliabilityManager::passive_only(int core) const {
  return health_[static_cast<std::size_t>(core)].passive_only;
}

Assignment ReliabilityManager::assign(const SchedulerContext& ctx) {
  if (ctx.floorplan == nullptr) {
    throw std::invalid_argument("ReliabilityManager: missing floorplan");
  }
  const int n = ctx.floorplan->core_count();
  if (ctx.delta_vth.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("ReliabilityManager: delta_vth size mismatch");
  }
  ensure_size(n);
  update_health(ctx, n);

  // Graceful degradation: demand beyond the healthy capacity is clamped
  // for the inner policy; the shortfall stays visible as deficit.
  const int healthy = healthy_count();
  const int granted = std::min(std::clamp(ctx.cores_needed, 0, n), healthy);

  SchedulerContext inner_ctx = ctx;
  inner_ctx.delta_vth = filtered_;  // sanitized, never NaN
  inner_ctx.demand_deficit = ctx.demand_deficit + (ctx.cores_needed - granted);
  inner_ctx.cores_needed = granted;

  Assignment out = inner_->assign(inner_ctx);
  bool repaired = false;
  if (static_cast<int>(out.size()) != n) {
    out.assign(static_cast<std::size_t>(n), CoreMode::kActive);
    repaired = true;
  }

  // Enforce quarantine, cooldown and rail limitations on the assignment.
  for (int i = 0; i < n; ++i) {
    auto& h = health_[static_cast<std::size_t>(i)];
    auto& mode = out[static_cast<std::size_t>(i)];
    if (h.failed || h.cooldown_left > 0) {
      if (mode == CoreMode::kActive) repaired = true;
      mode = CoreMode::kSleepPassive;
    } else if (h.margin_quarantined) {
      if (mode == CoreMode::kActive) repaired = true;
      mode = h.passive_only ? CoreMode::kSleepPassive
                            : CoreMode::kSleepRejuvenate;
    }
    if (h.passive_only && mode == CoreMode::kSleepRejuvenate) {
      mode = CoreMode::kSleepPassive;
      if (report_) report_->rail_downgrades++;
    }
  }

  // Spare-core failover: if the enforcement (or a starving inner policy)
  // dropped the active count below the granted demand, wake healthy
  // sleepers, least-aged first.
  int active = active_count(out);
  if (active < granted) {
    repaired = true;
    std::vector<int> spares;
    for (int i = 0; i < n; ++i) {
      if (out[static_cast<std::size_t>(i)] != CoreMode::kActive &&
          available(health_[static_cast<std::size_t>(i)])) {
        spares.push_back(i);
      }
    }
    std::sort(spares.begin(), spares.end(), [&](int a, int b) {
      return filtered_[static_cast<std::size_t>(a)] <
             filtered_[static_cast<std::size_t>(b)];
    });
    for (int core : spares) {
      if (active >= granted) break;
      out[static_cast<std::size_t>(core)] = CoreMode::kActive;
      ++active;
      if (report_) report_->failovers++;
      if (obs::tracing()) {
        trace_response(obs::EventKind::kFailover, "failover.wake_spare", core);
      }
    }
  }
  if (repaired && report_) report_->assignments_repaired++;
  return out;
}

}  // namespace ash::mc
