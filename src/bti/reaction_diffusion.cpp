#include "ash/bti/reaction_diffusion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ash/util/constants.h"
#include "ash/util/optimize.h"
#include "ash/util/stats.h"

namespace ash::bti {

void RdParameters::validate() const {
  if (amplitude_ref_v <= Volts{0.0} || time_exponent <= 0.0 ||
      time_exponent >= 1.0 || xi <= 0.0 ||
      stress_ref_temp_k <= Kelvin{0.0}) {
    throw std::invalid_argument("RdParameters: out of domain");
  }
}

RdModel::RdModel(RdParameters params) : params_(params) {
  params_.validate();
}

double RdModel::amplitude(Volts voltage, Kelvin temp) const {
  const double voltage_v = voltage.value();
  const double temp_k = temp.value();
  auto amp = [&](double v, double t) {
    return std::exp(-(params_.e0_ev - params_.b_ev_per_v * v) /
                    (kBoltzmannEv * t));
  };
  return params_.amplitude_ref_v.value() * amp(voltage_v, temp_k) /
         amp(params_.stress_ref_voltage_v.value(),
             params_.stress_ref_temp_k.value());
}

double RdModel::stress_delta_vth(Seconds t,
                                 const OperatingCondition& c) const {
  const double t_s = t.value();
  if (t_s <= 0.0 || !c.is_stressing()) return 0.0;
  const double duty = std::clamp(c.gate_stress_duty, 0.0, 1.0);
  return amplitude(Volts{c.voltage_v}, Kelvin{c.temperature_k}) *
         std::pow(t_s * duty, params_.time_exponent);
}

double RdModel::remaining_fraction(Seconds t1, Seconds t2) const {
  const double t1_s = t1.value();
  const double t2_s = t2.value();
  if (t1_s <= 0.0) return 1.0;
  if (t2_s <= 0.0) return 1.0;
  // The universal back-diffusion curve: depends on t2/t1 only.
  return 1.0 / (1.0 + std::sqrt(params_.xi * t2_s / t1_s));
}

RdStressFit fit_rd_stress(const ash::Series& delay_change,
                          const RdParameters& params, bool fit_exponent) {
  if (delay_change.size() < 4) {
    throw std::invalid_argument("fit_rd_stress: need at least 4 samples");
  }
  const auto residual = [&](double amp, double n) {
    double acc = 0.0;
    for (const auto& s : delay_change.samples()) {
      const double model = s.t > 0.0 ? amp * std::pow(s.t, n) : 0.0;
      acc += (s.value - model) * (s.value - model);
    }
    return acc;
  };

  // Amplitude has a closed-form LS solution for fixed n.
  const auto best_amp = [&](double n) {
    double num = 0.0;
    double den = 0.0;
    for (const auto& s : delay_change.samples()) {
      if (s.t <= 0.0) continue;
      const double x = std::pow(s.t, n);
      num += x * s.value;
      den += x * x;
    }
    return den > 0.0 ? num / den : 0.0;
  };

  RdStressFit fit;
  if (fit_exponent) {
    const double n = golden_section(
        [&](double cand) { return residual(best_amp(cand), cand); }, 0.02,
        0.6, 1e-6);
    fit.time_exponent = n;
  } else {
    fit.time_exponent = params.time_exponent;
  }
  fit.amplitude = best_amp(fit.time_exponent);

  std::vector<double> obs;
  std::vector<double> mod;
  for (const auto& s : delay_change.samples()) {
    obs.push_back(s.value);
    mod.push_back(s.t > 0.0
                      ? fit.amplitude * std::pow(s.t, fit.time_exponent)
                      : 0.0);
  }
  fit.r_squared = r_squared(obs, mod);
  return fit;
}

}  // namespace ash::bti
