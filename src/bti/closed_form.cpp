#include "ash/bti/closed_form.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/bti/acceleration.h"
#include "ash/util/constants.h"

namespace ash::bti {

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    throw std::invalid_argument(std::string("ClosedFormParameters: ") + what);
  }
}

}  // namespace

ClosedFormParameters ClosedFormParameters::from_td(const TdParameters& td) {
  td.validate();
  ClosedFormParameters p;
  // Aggregate amplitude: phi_ref * (total trappable shift) per ln-unit of
  // the tau spectrum.  The ensemble's DeltaVth(t) at the stress reference is
  // phi * total * ln(t/tau_min) / ln(tau_max/tau_min) for
  // tau_min << t << tau_max, i.e. beta = phi * total / ln(tau_max/tau_min).
  const double total_v =
      static_cast<double>(td.traps_per_device) * td.delta_vth_mean_v.value();
  const double spectrum_ln =
      std::log(td.tau_capture_max_s / td.tau_capture_min_s);
  const double phi_ref = occupancy_amplitude(td, td.stress_ref_voltage_v,
                                             td.stress_ref_temp_k);
  p.beta_ref_v = Volts{phi_ref * total_v / spectrum_ln};
  p.tau_stress_s = td.tau_capture_min_s;
  p.e0_ev = td.amp_e0_ev;
  p.b_ev_per_v = td.amp_b_ev_per_v;
  p.stress_ref_voltage_v = td.stress_ref_voltage_v;
  p.stress_ref_temp_k = td.stress_ref_temp_k;
  p.capture_ea_ev = td.capture_ea_mean_ev;
  p.capture_field_accel_per_v = td.capture_field_accel_per_v;
  p.capture_threshold_voltage_v = td.capture_threshold_voltage_v;
  p.emission_time_ratio = std::pow(10.0, td.emission_ratio_log10_mu);
  p.tau_recovery_s = p.emission_time_ratio * td.tau_capture_min_s;
  p.emission_ea_ev = td.emission_ea_mean_ev;
  p.emission_neg_bias_accel_per_v = td.emission_neg_bias_accel_per_v;
  p.recovery_ref_temp_k = td.recovery_ref_temp_k;
  p.permanent_ratio = td.permanent_fraction;
  p.validate();
  return p;
}

void ClosedFormParameters::validate() const {
  require(beta_ref_v > Volts{0.0}, "beta_ref_v must be positive");
  require(tau_stress_s > Seconds{0.0}, "tau_stress_s must be positive");
  require(stress_ref_temp_k > Kelvin{0.0},
          "stress_ref_temp_k must be positive");
  require(capture_threshold_voltage_v > Volts{0.0},
          "capture_threshold_voltage_v must be positive");
  require(emission_time_ratio >= 1.0, "emission_time_ratio must be >= 1");
  require(tau_recovery_s > Seconds{0.0}, "tau_recovery_s must be positive");
  require(recovery_ref_temp_k > Kelvin{0.0},
          "recovery_ref_temp_k must be positive");
  require(permanent_ratio >= 0.0 && permanent_ratio < 1.0,
          "permanent_ratio must be in [0, 1)");
}

ClosedFormModel::ClosedFormModel(ClosedFormParameters params)
    : params_(params) {
  params_.validate();
}

double ClosedFormModel::beta(Volts voltage, Kelvin temp) const {
  const double voltage_v = voltage.value();
  const double temp_k = temp.value();
  auto amplitude = [&](double v, double t) {
    return std::exp(-(params_.e0_ev - params_.b_ev_per_v * v) /
                    (kBoltzmannEv * t));
  };
  return params_.beta_ref_v.value() * amplitude(voltage_v, temp_k) /
         amplitude(params_.stress_ref_voltage_v.value(),
                   params_.stress_ref_temp_k.value());
}

double ClosedFormModel::emission_acceleration(Volts voltage,
                                              Kelvin temp) const {
  const double voltage_v = voltage.value();
  const double temp_k = temp.value();
  const double arr =
      std::exp(-(params_.emission_ea_ev / kBoltzmannEv) *
               (1.0 / temp_k - 1.0 / params_.recovery_ref_temp_k.value()));
  const double bias = std::exp(params_.emission_neg_bias_accel_per_v *
                               std::max(0.0, -voltage_v));
  return arr * bias;
}

double ClosedFormModel::capture_acceleration(Volts voltage,
                                             Kelvin temp) const {
  const double voltage_v = voltage.value();
  const double temp_k = temp.value();
  if (voltage < params_.capture_threshold_voltage_v) return 0.0;
  const double field =
      std::exp(params_.capture_field_accel_per_v *
               (voltage_v - params_.stress_ref_voltage_v.value()));
  const double arr =
      std::exp(-(params_.capture_ea_ev / kBoltzmannEv) *
               (1.0 / temp_k - 1.0 / params_.stress_ref_temp_k.value()));
  return field * arr;
}

double ClosedFormModel::ac_amplitude_factor(const OperatingCondition& c) const {
  const double duty = std::clamp(c.gate_stress_duty, 0.0, 1.0);
  if (duty >= 1.0) return 1.0;
  if (duty <= 0.0) return 0.0;
  // During the unbiased fraction of each cycle, fast traps emit at the
  // passive rate accelerated by the (stress) temperature; the equilibrium
  // occupancy is the capture share of the total rate.
  const double emission_af =
      emission_acceleration(Volts{0.0}, c.temperature_k);
  const double r =
      ((1.0 - duty) / duty) * emission_af / params_.emission_time_ratio;
  return 1.0 / (1.0 + r);
}

double ClosedFormModel::stress_delta_vth(Seconds t,
                                         const OperatingCondition& c) const {
  const double t_s = t.value();
  if (t_s <= 0.0 || !c.is_stressing()) return 0.0;
  const double afc = capture_acceleration(c.voltage_v, c.temperature_k);
  if (afc <= 0.0) return 0.0;
  const double t_eff = t_s * std::clamp(c.gate_stress_duty, 0.0, 1.0) * afc;
  const double amp =
      beta(c.voltage_v, c.temperature_k) * ac_amplitude_factor(c);
  return amp * std::log1p(t_eff / params_.tau_stress_s.value());
}

double ClosedFormModel::remaining_fraction(Seconds t1_equiv, Seconds t2,
                                           const OperatingCondition& c) const {
  const double t1_equiv_s = t1_equiv.value();
  const double t2_s = t2.value();
  if (t1_equiv_s <= 0.0) return 1.0;
  const double denom = std::log1p(t1_equiv_s / params_.tau_stress_s.value());
  if (denom <= 0.0) return 1.0;
  const double q =
      emission_acceleration(c.voltage_v, c.temperature_k) * std::max(0.0, t2_s);
  const double recovered =
      std::min(1.0, std::log1p(q / params_.tau_recovery_s.value()) / denom);
  return params_.permanent_ratio + (1.0 - params_.permanent_ratio) *
                                       (1.0 - recovered);
}

ClosedFormAger::ClosedFormAger(ClosedFormParameters params)
    : model_(params) {}

double ClosedFormAger::equivalent_stress_time(double beta_v) const {
  const double perm = model_.parameters().permanent_ratio;
  const double scale = (1.0 - perm) * beta_v;
  if (scale <= 0.0) return 0.0;
  // Clamp the exponent: damage deep into the spectrum corresponds to
  // astronomically long equivalent times; cap instead of overflowing.
  const double x = std::min(reversible_v_ / scale, 60.0);
  return model_.parameters().tau_stress_s.value() * std::expm1(x);
}

void ClosedFormAger::advance_stress(const OperatingCondition& c, double dt_s) {
  in_recovery_episode_ = false;
  const double afc = model_.capture_acceleration(c.voltage_v, c.temperature_k);
  if (afc <= 0.0) {
    // Biased below the capture threshold: the stressed fraction does
    // nothing; the unbiased fraction passively recovers at 0 V.
    OperatingCondition passive = c;
    passive.voltage_v = Volts{0.0};
    passive.gate_stress_duty = 0.0;
    advance_recovery(passive, (1.0 - c.gate_stress_duty) * dt_s);
    in_recovery_episode_ = false;
    return;
  }
  const double amp = model_.beta(c.voltage_v, c.temperature_k) *
                     model_.ac_amplitude_factor(c);
  if (amp <= 0.0) return;
  const double tau_s = model_.parameters().tau_stress_s.value();
  const double perm = model_.parameters().permanent_ratio;
  const double dt_eff =
      dt_s * std::clamp(c.gate_stress_duty, 0.0, 1.0) * afc;

  // Reversible traps: refill from the current (possibly healed) state —
  // fast traps recaptured first, so re-stress initially degrades fast.
  const double t_eff = equivalent_stress_time(amp);
  const double t_eff_next = t_eff + dt_eff;
  reversible_v_ = (1.0 - perm) * amp * std::log1p(t_eff_next / tau_s);
  spectrum_ln_ = std::log1p(t_eff_next / tau_s);

  // Permanent traps fill once, along the never-recovered envelope: they
  // track cumulative stress exposure, not the heal/refill cycling.  (The
  // trap ensemble has this property by construction: a permanent trap that
  // is already occupied cannot be re-captured.)
  if (perm > 0.0) {
    const double perm_scale = perm * amp;
    const double x = std::min(permanent_v_ / perm_scale, 60.0);
    const double perm_t_eff = tau_s * std::expm1(x);
    permanent_v_ = perm_scale * std::log1p((perm_t_eff + dt_eff) / tau_s);
  }
}

void ClosedFormAger::advance_recovery(const OperatingCondition& c,
                                      double dt_s) {
  if (reversible_v_ <= 0.0 || dt_s <= 0.0) return;
  if (!in_recovery_episode_) {
    in_recovery_episode_ = true;
    episode_passive_s_ = 0.0;
    episode_start_reversible_v_ = reversible_v_;
    episode_denom_ln_ = std::max(spectrum_ln_, 1e-12);
  }
  episode_passive_s_ +=
      dt_s * model_.emission_acceleration(c.voltage_v, c.temperature_k);
  const double recovered = std::min(
      1.0,
      std::log1p(episode_passive_s_ /
                 model_.parameters().tau_recovery_s.value()) /
          episode_denom_ln_);
  reversible_v_ = episode_start_reversible_v_ * (1.0 - recovered);
}

void ClosedFormAger::evolve(const OperatingCondition& c, Seconds dt) {
  const double dt_s = dt.value();
  if (dt_s < 0.0) {
    throw std::invalid_argument("ClosedFormAger::evolve: negative dt");
  }
  if (dt_s == 0.0) return;
  if (c.gate_stress_duty > 0.0) {
    advance_stress(c, dt_s);
  } else {
    advance_recovery(c, dt_s);
  }
}

void ClosedFormAger::reset() {
  reversible_v_ = 0.0;
  permanent_v_ = 0.0;
  spectrum_ln_ = 0.0;
  in_recovery_episode_ = false;
  episode_passive_s_ = 0.0;
  episode_start_reversible_v_ = 0.0;
  episode_denom_ln_ = 0.0;
}

}  // namespace ash::bti
