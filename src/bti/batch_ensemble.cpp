#include "ash/bti/batch_ensemble.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/bti/acceleration.h"
#include "ash/obs/profile.h"
#include "ash/util/constants.h"
#include "ash/util/fast_exp.h"
#include "ash/util/thread_pool.h"

namespace ash::bti {
namespace {

/// Condition-level scalars of the rate formulas — the exact expressions of
/// `TrapEnsemble::scalars_for`, parameterized on the class's kinetics
/// constants.  Always `std::exp`: a handful of calls per (condition,
/// class), so fast mode gains nothing here and exactness costs nothing.
struct CondScalars {
  double duty;
  double phi;
  double capture_field;
  double capture_arr_x;
  double emission_bias_boost;
  double emission_arr_x;
};

CondScalars scalars_for(const TdParameters& params,
                        const OperatingCondition& c) {
  CondScalars s;
  s.duty = std::clamp(c.gate_stress_duty, 0.0, 1.0);
  const double emission_bias_v = s.duty == 0.0 ? c.voltage_v.value() : 0.0;
  s.phi = s.duty > 0.0
              ? occupancy_amplitude(params, c.voltage_v, c.temperature_k)
              : 0.0;
  s.capture_field =
      c.voltage_v >= params.capture_threshold_voltage_v
          ? std::exp(params.capture_field_accel_per_v *
                     (c.voltage_v - params.stress_ref_voltage_v).value())
          : 0.0;
  s.capture_arr_x = (1.0 / c.temperature_k.value() -
                     1.0 / params.stress_ref_temp_k.value()) /
                    kBoltzmannEv;
  s.emission_bias_boost = std::exp(
      params.emission_neg_bias_accel_per_v * std::max(0.0, -emission_bias_v));
  s.emission_arr_x = (1.0 / c.temperature_k.value() -
                      1.0 / params.recovery_ref_temp_k.value()) /
                     kBoltzmannEv;
  return s;
}

/// Every TdParameters field *except* delta_vth_mean_v: the per-trap
/// DeltaVth scale is the one axis members of a trap class may differ on
/// (chip corners, PBTI ratios).  Everything else feeds the kinetics draws
/// or the rate scalars, so it must match for the class to share rates.
bool kinetics_params_equal(const TdParameters& a, const TdParameters& b) {
  return a.traps_per_device == b.traps_per_device &&
         a.tau_capture_min_s == b.tau_capture_min_s &&
         a.tau_capture_max_s == b.tau_capture_max_s &&
         a.emission_ratio_log10_mu == b.emission_ratio_log10_mu &&
         a.emission_ratio_log10_sigma == b.emission_ratio_log10_sigma &&
         a.permanent_fraction == b.permanent_fraction &&
         a.stress_ref_voltage_v == b.stress_ref_voltage_v &&
         a.stress_ref_temp_k == b.stress_ref_temp_k &&
         a.capture_field_accel_per_v == b.capture_field_accel_per_v &&
         a.capture_ea_mean_ev == b.capture_ea_mean_ev &&
         a.capture_ea_sigma_ev == b.capture_ea_sigma_ev &&
         a.capture_threshold_voltage_v == b.capture_threshold_voltage_v &&
         a.amp_prefactor == b.amp_prefactor && a.amp_e0_ev == b.amp_e0_ev &&
         a.amp_b_ev_per_v == b.amp_b_ev_per_v &&
         a.recovery_ref_voltage_v == b.recovery_ref_voltage_v &&
         a.recovery_ref_temp_k == b.recovery_ref_temp_k &&
         a.emission_ea_mean_ev == b.emission_ea_mean_ev &&
         a.emission_ea_sigma_ev == b.emission_ea_sigma_ev &&
         a.emission_neg_bias_accel_per_v == b.emission_neg_bias_accel_per_v &&
         a.min_safe_voltage_v == b.min_safe_voltage_v &&
         a.max_safe_temp_k == b.max_safe_temp_k;
}

}  // namespace

BatchEnsemble::BatchEnsemble(const std::vector<BatchMemberSpec>& specs,
                             const BatchConfig& config)
    : config_(config) {
  if (specs.empty()) {
    throw std::invalid_argument("BatchEnsemble: empty population");
  }
  for (const auto& spec : specs) {
    // Draw the member's population through the solo constructor: the batch
    // *is* those ensembles, which is what makes exact mode bit-identical.
    const TrapEnsemble source(spec.params, spec.seed);
    adopt_member(source);
  }
}

BatchEnsemble::BatchEnsemble(const std::vector<const TrapEnsemble*>& members,
                             const BatchConfig& config)
    : config_(config) {
  if (members.empty()) {
    throw std::invalid_argument("BatchEnsemble: empty population");
  }
  for (const TrapEnsemble* source : members) {
    if (source == nullptr) {
      throw std::invalid_argument("BatchEnsemble: null member");
    }
    adopt_member(*source);
  }
}

void BatchEnsemble::adopt_member(const TrapEnsemble& source) {
  const auto view = source.population_view();
  const auto n = static_cast<std::size_t>(view.trap_count);
  const TdParameters& params = source.parameters();

  // Class lookup: identical kinetics parameters *and* identical kinetics
  // draws.  Two members built from the same seed and kinetics constants
  // share every draw (the per-trap DeltaVth scale consumes exactly one
  // uniform regardless of its mean, so the streams stay aligned); distinct
  // seeds diverge at the first trap, so the element compare fails fast.
  int class_index = -1;
  for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
    const TrapClass& cls = classes_[ci];
    if (cls.tau_capture_s.size() != n) continue;
    if (!kinetics_params_equal(cls.params, params)) continue;
    if (!std::equal(cls.tau_capture_s.begin(), cls.tau_capture_s.end(),
                    view.tau_capture_s) ||
        !std::equal(cls.tau_emission_s.begin(), cls.tau_emission_s.end(),
                    view.tau_emission_s) ||
        !std::equal(cls.capture_ea_ev.begin(), cls.capture_ea_ev.end(),
                    view.capture_ea_ev) ||
        !std::equal(cls.emission_ea_ev.begin(), cls.emission_ea_ev.end(),
                    view.emission_ea_ev) ||
        !std::equal(cls.permanent.begin(), cls.permanent.end(),
                    view.permanent)) {
      continue;
    }
    class_index = static_cast<int>(ci);
    break;
  }
  if (class_index < 0) {
    TrapClass cls;
    cls.params = params;
    cls.tau_capture_s.assign(view.tau_capture_s, view.tau_capture_s + n);
    cls.tau_emission_s.assign(view.tau_emission_s, view.tau_emission_s + n);
    cls.capture_ea_ev.assign(view.capture_ea_ev, view.capture_ea_ev + n);
    cls.emission_ea_ev.assign(view.emission_ea_ev, view.emission_ea_ev + n);
    cls.permanent.assign(view.permanent, view.permanent + n);
    cls.rate_cache.resize(kRateCacheSlots);
    classes_.push_back(std::move(cls));
    class_index = static_cast<int>(classes_.size()) - 1;
  }

  const int m = member_count();
  classes_[static_cast<std::size_t>(class_index)].members.push_back(m);
  member_params_.push_back(params);
  delta_vth_v_.insert(delta_vth_v_.end(), view.delta_vth_v,
                      view.delta_vth_v + n);
  const std::vector<double> occ = source.occupancies();
  occupancy_.insert(occupancy_.end(), occ.begin(), occ.end());
  offsets_.push_back(offsets_.back() + n);
  active_entry_.push_back(nullptr);
  cached_delta_.push_back(0.0);
  cached_delta_version_.push_back(~std::uint64_t{0});
}

BatchEnsemble::RateEntry& BatchEnsemble::entry_for(
    TrapClass& cls, const OperatingCondition& c, double duty, double dt_s) {
  RateEntry* hit = nullptr;
  for (auto& e : cls.rate_cache) {
    if (e.valid && e.voltage_v == c.voltage_v &&
        e.temperature_k == c.temperature_k && e.duty == duty) {
      hit = &e;
      break;
    }
  }
  if (hit != nullptr && hit->decay_dt_s == dt_s) return *hit;

  const bool fast = config_.fast_exp;
  if (hit == nullptr) {
    // Unlike the solo ensemble there is no miss-twice promotion and no
    // store-free transient path: a rate computation amortizes over every
    // member of the class, so even a one-shot condition is cheapest as a
    // straight cache fill.  Bit-exactness is unaffected — the cached
    // values are the same doubles whichever policy computes them.
    hit = &cls.rate_cache[static_cast<std::size_t>(cls.rate_cache_next)];
    cls.rate_cache_next = (cls.rate_cache_next + 1) % kRateCacheSlots;

    const CondScalars s = scalars_for(cls.params, c);
    const auto factors = [&](FactorCache& cache, const std::vector<double>& ea,
                             double arr_x) -> const double* {
      for (auto& slot : cache.slots) {
        if (slot.valid && slot.arr_x == arr_x) return slot.f.data();
      }
      FactorCache::Slot& slot =
          cache.slots[static_cast<std::size_t>(cache.next)];
      cache.next = (cache.next + 1) % FactorCache::kSlots;
      const std::size_t count = ea.size();
      slot.f.resize(count);
      if (fast) {
        for (std::size_t i = 0; i < count; ++i) {
          slot.f[i] = util::fast_exp(-ea[i] * arr_x);
        }
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          slot.f[i] = std::exp(-ea[i] * arr_x);
        }
      }
      slot.arr_x = arr_x;
      slot.valid = true;
      return slot.f.data();
    };
    const double* exp_c =
        s.duty > 0.0
            ? factors(cls.capture_factors, cls.capture_ea_ev, s.capture_arr_x)
            : nullptr;
    const double* exp_e = s.duty < 1.0
                              ? factors(cls.emission_factors,
                                        cls.emission_ea_ev, s.emission_arr_x)
                              : nullptr;

    const std::size_t n = cls.tau_capture_s.size();
    hit->lambda.resize(n);
    hit->p_inf.resize(n);
    hit->decay.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Exact expression order of TrapEnsemble's per-trap loop.
      const double rc =
          exp_c != nullptr
              ? s.duty * (s.capture_field * exp_c[i]) / cls.tau_capture_s[i]
              : 0.0;
      const double re =
          exp_e != nullptr && cls.permanent[i] == 0
              ? (1.0 - s.duty) * (s.emission_bias_boost * exp_e[i]) /
                    cls.tau_emission_s[i]
              : 0.0;
      const double lambda = rc + re;
      hit->lambda[i] = lambda;
      hit->p_inf[i] = lambda > 0.0 ? rc * s.phi / lambda : 0.0;
    }
    hit->voltage_v = c.voltage_v;
    hit->temperature_k = c.temperature_k;
    hit->duty = s.duty;
    hit->valid = true;
    hit->decay_dt_s = -1.0;
  }

  // Decay factors for this dt (fresh entry or a condition hit with a new
  // step size).
  const std::size_t n = hit->lambda.size();
  const double* lambda = hit->lambda.data();
  double* decay = hit->decay.data();
  if (fast) {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = lambda[i] * dt_s;
      decay[i] =
          lambda[i] <= 0.0 ? 1.0 : (x > 700.0 ? 0.0 : util::fast_exp(-x));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = lambda[i] * dt_s;
      decay[i] = lambda[i] <= 0.0 ? 1.0 : (x > 700.0 ? 0.0 : std::exp(-x));
    }
  }
  hit->decay_dt_s = dt_s;
  return *hit;
}

void BatchEnsemble::apply_members(int lo, int hi) {
  for (int m = lo; m < hi; ++m) {
    const RateEntry* e = active_entry_[static_cast<std::size_t>(m)];
    const double* p_inf = e->p_inf.data();
    const double* decay = e->decay.data();
    double* occ = occupancy_.data() + offsets_[static_cast<std::size_t>(m)];
    const std::size_t n = offsets_[static_cast<std::size_t>(m) + 1] -
                          offsets_[static_cast<std::size_t>(m)];
    for (std::size_t i = 0; i < n; ++i) {
      occ[i] = p_inf[i] + (occ[i] - p_inf[i]) * decay[i];
    }
  }
}

void BatchEnsemble::evolve(const OperatingCondition& c, Seconds dt) {
  const obs::ScopedKernelTimer timer(obs::Kernel::kBtiBatchEvolve);
  const double dt_s = dt.value();
  if (dt_s < 0.0) {
    throw std::invalid_argument("BatchEnsemble::evolve: negative dt");
  }
  if (dt_s == 0.0) return;
  // Validate against every class before mutating anything: a throwing
  // evolve leaves the whole population untouched (the solo ensemble's
  // messages, so callers can't tell which engine rejected the condition).
  for (const auto& cls : classes_) {
    if (c.voltage_v < cls.params.min_safe_voltage_v) {
      throw std::invalid_argument(
          "TrapEnsemble::evolve: voltage below pn-junction breakdown limit");
    }
    if (c.temperature_k > cls.params.max_safe_temp_k) {
      throw std::invalid_argument(
          "TrapEnsemble::evolve: temperature above functional limit");
    }
  }

  const double duty = std::clamp(c.gate_stress_duty, 0.0, 1.0);

  // One rate/decay computation per (condition, trap class)...
  for (auto& cls : classes_) {
    const RateEntry& e = entry_for(cls, c, duty, dt_s);
    for (const int m : cls.members) {
      active_entry_[static_cast<std::size_t>(m)] = &e;
    }
  }

  // ...then one fused multiply-add sweep over the whole population,
  // optionally sharded over disjoint member ranges.  The update is
  // elementwise-independent, so any shard split is bit-identical to the
  // serial loop.
  const int members = member_count();
  util::ThreadPool* pool = config_.pool;
  if (pool != nullptr && pool->size() > 0 && members > 1) {
    const int shards = std::min(members, pool->size() * 4);
    pool->parallel_for(shards, [&](int shard) {
      const auto lo = static_cast<int>(
          static_cast<long long>(members) * shard / shards);
      const auto hi = static_cast<int>(
          static_cast<long long>(members) * (shard + 1) / shards);
      apply_members(lo, hi);
      return 0;
    });
  } else {
    apply_members(0, members);
  }
  ++version_;
}

double BatchEnsemble::delta_vth(int member) const {
  const auto m = static_cast<std::size_t>(member);
  if (cached_delta_version_[m] != version_) {
    const double* occ = occupancy_.data() + offsets_[m];
    const double* dv = delta_vth_v_.data() + offsets_[m];
    const std::size_t n = offsets_[m + 1] - offsets_[m];
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += occ[i] * dv[i];
    cached_delta_[m] = acc;
    cached_delta_version_[m] = version_;
  }
  return cached_delta_[m];
}

std::vector<double> BatchEnsemble::delta_vth_all() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(member_count()));
  for (int m = 0; m < member_count(); ++m) out.push_back(delta_vth(m));
  return out;
}

std::vector<double> BatchEnsemble::occupancies(int member) const {
  const auto m = static_cast<std::size_t>(member);
  return std::vector<double>(occupancy_.begin() + static_cast<std::ptrdiff_t>(
                                                      offsets_[m]),
                             occupancy_.begin() +
                                 static_cast<std::ptrdiff_t>(offsets_[m + 1]));
}

void BatchEnsemble::set_occupancies(int member,
                                    const std::vector<double>& occ) {
  const auto m = static_cast<std::size_t>(member);
  if (occ.size() != offsets_[m + 1] - offsets_[m]) {
    throw std::invalid_argument(
        "BatchEnsemble::set_occupancies: size mismatch");
  }
  for (const double v : occ) {
    if (v < 0.0 || v > 1.0) {
      throw std::invalid_argument(
          "BatchEnsemble::set_occupancies: occupancy outside [0, 1]");
    }
  }
  std::copy(occ.begin(), occ.end(),
            occupancy_.begin() + static_cast<std::ptrdiff_t>(offsets_[m]));
  ++version_;
}

void BatchEnsemble::reset() {
  std::fill(occupancy_.begin(), occupancy_.end(), 0.0);
  ++version_;
}

}  // namespace ash::bti
