#include "ash/bti/acceleration.h"

#include <algorithm>
#include <cmath>

#include "ash/util/constants.h"

namespace ash::bti {

double arrhenius_factor(double ea_ev, Kelvin temp, Kelvin ref_temp) {
  const double temp_k = temp.value();
  const double ref_temp_k = ref_temp.value();
  return std::exp(-(ea_ev / kBoltzmannEv) * (1.0 / temp_k - 1.0 / ref_temp_k));
}

double capture_acceleration(const TdParameters& p, double ea_ev, Volts voltage,
                            Kelvin temp) {
  if (voltage < p.capture_threshold_voltage_v) return 0.0;
  const double field = std::exp(p.capture_field_accel_per_v *
                                (voltage - p.stress_ref_voltage_v).value());
  return field * arrhenius_factor(ea_ev, temp, p.stress_ref_temp_k);
}

double emission_acceleration(const TdParameters& p, double ea_ev,
                             Volts voltage, Kelvin temp) {
  const double neg_overdrive = std::max(0.0, -voltage.value());
  const double bias = std::exp(p.emission_neg_bias_accel_per_v * neg_overdrive);
  return bias * arrhenius_factor(ea_ev, temp, p.recovery_ref_temp_k);
}

double occupancy_amplitude(const TdParameters& p, Volts voltage, Kelvin temp) {
  const double effective_barrier_ev =
      p.amp_e0_ev - p.amp_b_ev_per_v * voltage.value();
  const double phi =
      p.amp_prefactor *
      std::exp(-effective_barrier_ev / (kBoltzmannEv * temp.value()));
  return std::clamp(phi, 0.0, 1.0);
}

}  // namespace ash::bti
