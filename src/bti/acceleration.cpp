#include "ash/bti/acceleration.h"

#include <algorithm>
#include <cmath>

#include "ash/util/constants.h"

namespace ash::bti {

double arrhenius_factor(double ea_ev, double temp_k, double ref_temp_k) {
  return std::exp(-(ea_ev / kBoltzmannEv) * (1.0 / temp_k - 1.0 / ref_temp_k));
}

double capture_acceleration(const TdParameters& p, double ea_ev,
                            double voltage_v, double temp_k) {
  if (voltage_v < p.capture_threshold_voltage_v) return 0.0;
  const double field =
      std::exp(p.capture_field_accel_per_v * (voltage_v - p.stress_ref_voltage_v));
  return field * arrhenius_factor(ea_ev, temp_k, p.stress_ref_temp_k);
}

double emission_acceleration(const TdParameters& p, double ea_ev,
                             double voltage_v, double temp_k) {
  const double neg_overdrive = std::max(0.0, -voltage_v);
  const double bias = std::exp(p.emission_neg_bias_accel_per_v * neg_overdrive);
  return bias * arrhenius_factor(ea_ev, temp_k, p.recovery_ref_temp_k);
}

double occupancy_amplitude(const TdParameters& p, double voltage_v,
                           double temp_k) {
  const double effective_barrier_ev =
      p.amp_e0_ev - p.amp_b_ev_per_v * voltage_v;
  const double phi =
      p.amp_k * std::exp(-effective_barrier_ev / (kBoltzmannEv * temp_k));
  return std::clamp(phi, 0.0, 1.0);
}

}  // namespace ash::bti
