#include "ash/bti/electromigration.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "ash/util/constants.h"

namespace ash::bti {

void EmParameters::validate() const {
  if (ea_ev < 0.0 || current_exponent <= 0.0 || ref_temp_k <= 0.0 ||
      drift_rate_per_s <= 0.0 || failure_drift <= 0.0) {
    throw std::invalid_argument("EmParameters: out of domain");
  }
}

EmInterconnect::EmInterconnect(const EmParameters& params) : params_(params) {
  params_.validate();
}

double EmInterconnect::drift_rate(double current_density_ratio,
                                  double temp_k) const {
  if (current_density_ratio < 0.0) {
    throw std::invalid_argument("EmInterconnect: negative current density");
  }
  if (temp_k <= 0.0) {
    throw std::invalid_argument("EmInterconnect: non-positive temperature");
  }
  if (current_density_ratio == 0.0) return 0.0;
  const double arrhenius = std::exp(
      -(params_.ea_ev / kBoltzmannEv) * (1.0 / temp_k - 1.0 / params_.ref_temp_k));
  return params_.drift_rate_per_s *
         std::pow(current_density_ratio, params_.current_exponent) *
         arrhenius;
}

void EmInterconnect::evolve(double current_density_ratio, double temp_k,
                            double dt_s) {
  if (dt_s < 0.0) {
    throw std::invalid_argument("EmInterconnect: negative dt");
  }
  drift_ += drift_rate(current_density_ratio, temp_k) * dt_s;
}

double EmInterconnect::time_to_failure_s(double current_density_ratio,
                                         double temp_k) const {
  const double rate = drift_rate(current_density_ratio, temp_k);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  const double remaining = params_.failure_drift - drift_;
  return remaining <= 0.0 ? 0.0 : remaining / rate;
}

}  // namespace ash::bti
