#include "ash/bti/electromigration.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "ash/util/constants.h"

namespace ash::bti {

void EmParameters::validate() const {
  if (ea_ev < 0.0 || current_exponent <= 0.0 || ref_temp_k <= Kelvin{0.0} ||
      drift_rate_per_s <= 0.0 || failure_drift <= 0.0) {
    throw std::invalid_argument("EmParameters: out of domain");
  }
}

EmInterconnect::EmInterconnect(const EmParameters& params) : params_(params) {
  params_.validate();
}

double EmInterconnect::drift_rate(double current_density_ratio,
                                  Kelvin temp) const {
  const double temp_k = temp.value();
  if (current_density_ratio < 0.0) {
    throw std::invalid_argument("EmInterconnect: negative current density");
  }
  if (temp_k <= 0.0) {
    throw std::invalid_argument("EmInterconnect: non-positive temperature");
  }
  if (current_density_ratio == 0.0) return 0.0;
  const double arrhenius =
      std::exp(-(params_.ea_ev / kBoltzmannEv) *
               (1.0 / temp_k - 1.0 / params_.ref_temp_k.value()));
  return params_.drift_rate_per_s *
         std::pow(current_density_ratio, params_.current_exponent) *
         arrhenius;
}

void EmInterconnect::evolve(double current_density_ratio, Kelvin temp,
                            Seconds dt) {
  if (dt.value() < 0.0) {
    throw std::invalid_argument("EmInterconnect: negative dt");
  }
  drift_ += drift_rate(current_density_ratio, temp) * dt.value();
}

Seconds EmInterconnect::time_to_failure(double current_density_ratio,
                                        Kelvin temp) const {
  const double rate = drift_rate(current_density_ratio, temp);
  if (rate <= 0.0) return Seconds{std::numeric_limits<double>::infinity()};
  const double remaining = params_.failure_drift - drift_;
  return Seconds{remaining <= 0.0 ? 0.0 : remaining / rate};
}

}  // namespace ash::bti
