#include "ash/bti/trap_ensemble.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/bti/acceleration.h"
#include "ash/obs/profile.h"
#include "ash/util/constants.h"
#include "ash/util/random.h"

namespace ash::bti {

TrapEnsemble::TrapEnsemble(const TdParameters& params, std::uint64_t seed)
    : params_(params) {
  params_.validate();
  Rng rng(seed);
  traps_.reserve(static_cast<std::size_t>(params_.traps_per_device));
  for (int i = 0; i < params_.traps_per_device; ++i) {
    Trap t;
    t.delta_vth_v = rng.exponential(params_.delta_vth_mean_v);
    t.tau_capture_s =
        rng.loguniform(params_.tau_capture_min_s, params_.tau_capture_max_s);
    const double rho = std::pow(
        10.0, rng.normal(params_.emission_ratio_log10_mu,
                         params_.emission_ratio_log10_sigma));
    t.tau_emission_s = rho * t.tau_capture_s;
    t.capture_ea_ev = std::max(
        0.0, rng.normal(params_.capture_ea_mean_ev, params_.capture_ea_sigma_ev));
    t.emission_ea_ev =
        std::max(0.0, rng.normal(params_.emission_ea_mean_ev,
                                 params_.emission_ea_sigma_ev));
    t.permanent = rng.bernoulli(params_.permanent_fraction);
    traps_.push_back(t);
  }
}

void TrapEnsemble::evolve(const OperatingCondition& c, double dt_s) {
  const obs::ScopedKernelTimer timer(obs::Kernel::kTrapEnsembleEvolve);
  if (dt_s < 0.0) {
    throw std::invalid_argument("TrapEnsemble::evolve: negative dt");
  }
  if (dt_s == 0.0) return;
  if (c.voltage_v < params_.min_safe_voltage_v) {
    throw std::invalid_argument(
        "TrapEnsemble::evolve: voltage below pn-junction breakdown limit");
  }
  if (c.temperature_k > params_.max_safe_temp_k) {
    throw std::invalid_argument(
        "TrapEnsemble::evolve: temperature above functional limit");
  }
  const double duty = std::clamp(c.gate_stress_duty, 0.0, 1.0);

  // Gate bias seen during the *unstressed* fraction of the interval: a
  // recovery interval applies its own (possibly negative) bias; the
  // off-phase of an AC stress interval is simply unbiased.
  const double emission_bias_v = duty == 0.0 ? c.voltage_v : 0.0;

  // Amplitude and per-Ea Arrhenius exponents are condition-level constants;
  // hoist everything that does not depend on the individual trap.
  const double phi =
      duty > 0.0 ? occupancy_amplitude(params_, c.voltage_v, c.temperature_k)
                 : 0.0;
  const double capture_field =
      c.voltage_v >= params_.capture_threshold_voltage_v
          ? std::exp(params_.capture_field_accel_per_v *
                     (c.voltage_v - params_.stress_ref_voltage_v))
          : 0.0;
  const double capture_arr_x =
      (1.0 / c.temperature_k - 1.0 / params_.stress_ref_temp_k) / kBoltzmannEv;
  const double emission_bias_boost = std::exp(
      params_.emission_neg_bias_accel_per_v * std::max(0.0, -emission_bias_v));
  const double emission_arr_x =
      (1.0 / c.temperature_k - 1.0 / params_.recovery_ref_temp_k) /
      kBoltzmannEv;

  for (Trap& t : traps_) {
    const double af_c = capture_field * std::exp(-t.capture_ea_ev * capture_arr_x);
    const double af_e =
        emission_bias_boost * std::exp(-t.emission_ea_ev * emission_arr_x);
    const double rc = duty * af_c / t.tau_capture_s;
    const double re = (1.0 - duty) * af_e / t.tau_emission_s;
    evolve_trap(t, rc, re, phi, dt_s);
  }
}

double TrapEnsemble::delta_vth() const {
  double acc = 0.0;
  for (const Trap& t : traps_) acc += t.occupancy * t.delta_vth_v;
  return acc;
}

double TrapEnsemble::permanent_delta_vth() const {
  double acc = 0.0;
  for (const Trap& t : traps_) {
    if (t.permanent) acc += t.occupancy * t.delta_vth_v;
  }
  return acc;
}

double TrapEnsemble::max_delta_vth() const {
  double acc = 0.0;
  for (const Trap& t : traps_) acc += t.delta_vth_v;
  return acc;
}

void TrapEnsemble::reset() {
  for (Trap& t : traps_) t.occupancy = 0.0;
}

std::vector<double> TrapEnsemble::occupancies() const {
  std::vector<double> occ;
  occ.reserve(traps_.size());
  for (const Trap& t : traps_) occ.push_back(t.occupancy);
  return occ;
}

void TrapEnsemble::set_occupancies(const std::vector<double>& occ) {
  if (occ.size() != traps_.size()) {
    throw std::invalid_argument(
        "TrapEnsemble::set_occupancies: size mismatch");
  }
  for (std::size_t i = 0; i < occ.size(); ++i) {
    if (occ[i] < 0.0 || occ[i] > 1.0) {
      throw std::invalid_argument(
          "TrapEnsemble::set_occupancies: occupancy outside [0, 1]");
    }
    traps_[i].occupancy = occ[i];
  }
}

}  // namespace ash::bti
