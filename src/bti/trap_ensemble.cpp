#include "ash/bti/trap_ensemble.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/bti/acceleration.h"
#include "ash/obs/profile.h"
#include "ash/util/constants.h"
#include "ash/util/random.h"

namespace ash::bti {

TrapEnsemble::TrapEnsemble(const TdParameters& params, std::uint64_t seed)
    : params_(params) {
  params_.validate();
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(params_.traps_per_device);
  delta_vth_v_.reserve(n);
  tau_capture_s_.reserve(n);
  tau_emission_s_.reserve(n);
  capture_ea_ev_.reserve(n);
  emission_ea_ev_.reserve(n);
  permanent_.reserve(n);
  occupancy_.reserve(n);
  // Draw order matches the historical AoS constructor so existing seeds
  // reproduce the same trap populations.
  for (int i = 0; i < params_.traps_per_device; ++i) {
    delta_vth_v_.push_back(rng.exponential(params_.delta_vth_mean_v.value()));
    tau_capture_s_.push_back(rng.loguniform(params_.tau_capture_min_s.value(),
                                            params_.tau_capture_max_s.value()));
    const double rho = std::pow(
        10.0, rng.normal(params_.emission_ratio_log10_mu,
                         params_.emission_ratio_log10_sigma));
    tau_emission_s_.push_back(rho * tau_capture_s_.back());
    capture_ea_ev_.push_back(std::max(
        0.0, rng.normal(params_.capture_ea_mean_ev, params_.capture_ea_sigma_ev)));
    emission_ea_ev_.push_back(
        std::max(0.0, rng.normal(params_.emission_ea_mean_ev,
                                 params_.emission_ea_sigma_ev)));
    permanent_.push_back(rng.bernoulli(params_.permanent_fraction) ? 1 : 0);
    occupancy_.push_back(0.0);
  }
  rate_cache_.resize(kRateCacheSlots);
}

const double* TrapEnsemble::arrhenius_factors(FactorCache& cache,
                                              const std::vector<double>& ea_ev,
                                              double arr_x) {
  for (auto& s : cache.slots) {
    if (s.valid && s.arr_x == arr_x) return s.f.data();
  }
  FactorCache::Slot& s = cache.slots[static_cast<std::size_t>(cache.next)];
  cache.next = (cache.next + 1) % FactorCache::kSlots;
  const std::size_t n = ea_ev.size();
  s.f.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.f[i] = std::exp(-ea_ev[i] * arr_x);
  }
  s.arr_x = arr_x;
  s.valid = true;
  return s.f.data();
}

TrapEnsemble::CondScalars TrapEnsemble::scalars_for(
    const OperatingCondition& c) const {
  CondScalars s;
  s.duty = std::clamp(c.gate_stress_duty, 0.0, 1.0);

  // Gate bias seen during the *unstressed* fraction of the interval: a
  // recovery interval applies its own (possibly negative) bias; the
  // off-phase of an AC stress interval is simply unbiased.
  const double emission_bias_v = s.duty == 0.0 ? c.voltage_v.value() : 0.0;

  // Amplitude and per-Ea Arrhenius exponents are condition-level constants,
  // hoisted out of the per-trap loops.
  s.phi = s.duty > 0.0
              ? occupancy_amplitude(params_, c.voltage_v, c.temperature_k)
              : 0.0;
  s.capture_field =
      c.voltage_v >= params_.capture_threshold_voltage_v
          ? std::exp(params_.capture_field_accel_per_v *
                     (c.voltage_v - params_.stress_ref_voltage_v).value())
          : 0.0;
  s.capture_arr_x = (1.0 / c.temperature_k.value() -
                     1.0 / params_.stress_ref_temp_k.value()) /
                    kBoltzmannEv;
  s.emission_bias_boost = std::exp(
      params_.emission_neg_bias_accel_per_v * std::max(0.0, -emission_bias_v));
  s.emission_arr_x = (1.0 / c.temperature_k.value() -
                      1.0 / params_.recovery_ref_temp_k.value()) /
                     kBoltzmannEv;
  return s;
}

void TrapEnsemble::fill_and_step(RateEntry& e, const OperatingCondition& c,
                                 double dt_s) {
  const CondScalars s = scalars_for(c);

  // Per-trap Arrhenius factors are a function of temperature alone (the
  // voltage and duty enter only through the scalars above), so they come
  // from a temperature-keyed memo that survives voltage/duty changes.
  // Exact-zero duty multipliers are resolved here rather than per trap:
  // the historical loop computed `duty * af_c` (resp. `(1-duty) * af_e`),
  // which for a finite factor is exactly +0.0 — skipping the whole factor
  // array in those cases is bit-identical and saves one exp() per trap.
  const double* exp_c =
      s.duty > 0.0 ? arrhenius_factors(capture_factors_, capture_ea_ev_,
                                       s.capture_arr_x)
                   : nullptr;
  const double* exp_e =
      s.duty < 1.0 ? arrhenius_factors(emission_factors_, emission_ea_ev_,
                                       s.emission_arr_x)
                   : nullptr;

  // Rates, decay factor and occupancy update fused into one pass; the memo
  // arrays are filled as a side effect for the steady-state sweeps that
  // follow.
  const std::size_t n = occupancy_.size();
  e.lambda.resize(n);
  e.p_inf.resize(n);
  e.decay.resize(n);
  double* occ = occupancy_.data();
  for (std::size_t i = 0; i < n; ++i) {
    // Exact expression order of the historical per-trap loop (with the
    // memoized exp factors substituted operand-for-operand), so the cached
    // rates are bit-identical to recomputing them every call.
    const double rc =
        exp_c != nullptr
            ? s.duty * (s.capture_field * exp_c[i]) / tau_capture_s_[i]
            : 0.0;
    const double re =
        exp_e != nullptr && permanent_[i] == 0
            ? (1.0 - s.duty) * (s.emission_bias_boost * exp_e[i]) /
                  tau_emission_s_[i]
            : 0.0;
    const double lambda = rc + re;
    const double p_inf = lambda > 0.0 ? rc * s.phi / lambda : 0.0;
    const double x = lambda * dt_s;
    // lambda <= 0: with p_inf = 0, decay = 1 is the identity update.  exp
    // underflows harmlessly for large x; short-circuit to avoid the call.
    const double decay = lambda <= 0.0 ? 1.0 : (x > 700.0 ? 0.0 : std::exp(-x));
    e.lambda[i] = lambda;
    e.p_inf[i] = p_inf;
    e.decay[i] = decay;
    occ[i] = p_inf + (occ[i] - p_inf) * decay;
  }

  e.voltage_v = c.voltage_v;
  e.temperature_k = c.temperature_k;
  e.duty = s.duty;
  e.decay_dt_s = dt_s;
  e.valid = true;
}

void TrapEnsemble::transient_step(const OperatingCondition& c, double dt_s) {
  const CondScalars s = scalars_for(c);
  const double* exp_c =
      s.duty > 0.0 ? arrhenius_factors(capture_factors_, capture_ea_ev_,
                                       s.capture_arr_x)
                   : nullptr;
  const double* exp_e =
      s.duty < 1.0 ? arrhenius_factors(emission_factors_, emission_ea_ev_,
                                       s.emission_arr_x)
                   : nullptr;

  // Same per-trap math as fill_and_step, but nothing is written except the
  // occupancies: rates and decay stay in registers or a small L1-resident
  // block buffer.  Campaigns whose instruments drift (unique condition
  // every interval) spend their whole evolve budget here, and the avoided
  // memo stores — and their later cache evictions across a thousand-device
  // chip — are the dominant cost.  The rate arithmetic (division-bound) is
  // kept in its own exp-free loop so the compiler can vectorize it; the
  // exp() calls and the occupancy update follow in a second pass over the
  // same block.
  const std::size_t n = occupancy_.size();
  double* occ = occupancy_.data();
  constexpr std::size_t kBlock = 128;
  double lam[kBlock];
  double pinf[kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t len = std::min(kBlock, n - base);
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t i = base + j;
      const double rc =
          exp_c != nullptr
              ? s.duty * (s.capture_field * exp_c[i]) / tau_capture_s_[i]
              : 0.0;
      const double re =
          exp_e != nullptr && permanent_[i] == 0
              ? (1.0 - s.duty) * (s.emission_bias_boost * exp_e[i]) /
                    tau_emission_s_[i]
              : 0.0;
      const double lambda = rc + re;
      lam[j] = lambda;
      pinf[j] = lambda > 0.0 ? rc * s.phi / lambda : 0.0;
    }
    for (std::size_t j = 0; j < len; ++j) {
      const double lambda = lam[j];
      const double x = lambda * dt_s;
      const double decay =
          lambda <= 0.0 ? 1.0 : (x > 700.0 ? 0.0 : std::exp(-x));
      const std::size_t i = base + j;
      occ[i] = pinf[j] + (occ[i] - pinf[j]) * decay;
    }
  }
}

void TrapEnsemble::refill_decay_and_step(RateEntry& e, double dt_s) {
  const double* lambda = e.lambda.data();
  const double* p_inf = e.p_inf.data();
  double* decay = e.decay.data();
  double* occ = occupancy_.data();
  const std::size_t n = occupancy_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lambda[i] * dt_s;
    const double d =
        lambda[i] <= 0.0 ? 1.0 : (x > 700.0 ? 0.0 : std::exp(-x));
    decay[i] = d;
    occ[i] = p_inf[i] + (occ[i] - p_inf[i]) * d;
  }
  e.decay_dt_s = dt_s;
}

void TrapEnsemble::evolve(const OperatingCondition& c, Seconds dt) {
  const obs::ScopedKernelTimer timer(obs::Kernel::kTrapEnsembleEvolve);
  const double dt_s = dt.value();
  if (dt_s < 0.0) {
    throw std::invalid_argument("TrapEnsemble::evolve: negative dt");
  }
  if (dt_s == 0.0) return;
  if (c.voltage_v < params_.min_safe_voltage_v) {
    throw std::invalid_argument(
        "TrapEnsemble::evolve: voltage below pn-junction breakdown limit");
  }
  if (c.temperature_k > params_.max_safe_temp_k) {
    throw std::invalid_argument(
        "TrapEnsemble::evolve: temperature above functional limit");
  }

  const double duty = std::clamp(c.gate_stress_duty, 0.0, 1.0);
  RateEntry* hit = nullptr;
  for (auto& e : rate_cache_) {
    if (e.valid && e.voltage_v == c.voltage_v &&
        e.temperature_k == c.temperature_k && e.duty == duty) {
      hit = &e;
      break;
    }
  }

  if (hit == nullptr) {
    // A condition missing twice in a row is recurring (a fixed-step sweep,
    // a benchmark, a multicore mission): promote it into the rate cache so
    // the third and later steps take the exp-free sweep below.  A one-shot
    // condition (drifting instruments) takes the store-free transient path.
    const bool recurring = last_miss_valid_ &&
                           last_miss_voltage_ == c.voltage_v &&
                           last_miss_temp_ == c.temperature_k &&
                           last_miss_duty_ == duty;
    if (recurring) {
      RateEntry& e = rate_cache_[static_cast<std::size_t>(rate_cache_next_)];
      rate_cache_next_ = (rate_cache_next_ + 1) % kRateCacheSlots;
      fill_and_step(e, c, dt_s);
      last_miss_valid_ = false;
    } else {
      last_miss_voltage_ = c.voltage_v;
      last_miss_temp_ = c.temperature_k;
      last_miss_duty_ = duty;
      last_miss_valid_ = true;
      transient_step(c, dt_s);
    }
  } else if (hit->decay_dt_s != dt_s) {
    refill_decay_and_step(*hit, dt_s);
  } else {
    // Steady state (same condition, same dt — every fixed-step sweep after
    // the first): one branch-free, exp-free FMA sweep
    //   p' = p_inf + (p - p_inf) * decay
    // (the exact linear-ODE solution over the interval, see trap.h).
    const double* p_inf = hit->p_inf.data();
    const double* decay = hit->decay.data();
    double* occ = occupancy_.data();
    const std::size_t n = occupancy_.size();
    for (std::size_t i = 0; i < n; ++i) {
      occ[i] = p_inf[i] + (occ[i] - p_inf[i]) * decay[i];
    }
  }
  ++version_;
}

double TrapEnsemble::delta_vth() const {
  if (cached_delta_version_ != version_) {
    double acc = 0.0;
    const std::size_t n = occupancy_.size();
    for (std::size_t i = 0; i < n; ++i) acc += occupancy_[i] * delta_vth_v_[i];
    cached_delta_vth_ = acc;
    cached_delta_version_ = version_;
  }
  return cached_delta_vth_;
}

double TrapEnsemble::permanent_delta_vth() const {
  double acc = 0.0;
  const std::size_t n = occupancy_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (permanent_[i] != 0) acc += occupancy_[i] * delta_vth_v_[i];
  }
  return acc;
}

double TrapEnsemble::max_delta_vth() const {
  double acc = 0.0;
  for (const double v : delta_vth_v_) acc += v;
  return acc;
}

void TrapEnsemble::reset() {
  std::fill(occupancy_.begin(), occupancy_.end(), 0.0);
  ++version_;
}

std::vector<double> TrapEnsemble::occupancies() const { return occupancy_; }

TrapEnsemble::PopulationView TrapEnsemble::population_view() const {
  PopulationView v;
  v.delta_vth_v = delta_vth_v_.data();
  v.tau_capture_s = tau_capture_s_.data();
  v.tau_emission_s = tau_emission_s_.data();
  v.capture_ea_ev = capture_ea_ev_.data();
  v.emission_ea_ev = emission_ea_ev_.data();
  v.permanent = permanent_.data();
  v.trap_count = trap_count();
  return v;
}

void TrapEnsemble::set_occupancies(const std::vector<double>& occ) {
  if (occ.size() != occupancy_.size()) {
    throw std::invalid_argument(
        "TrapEnsemble::set_occupancies: size mismatch");
  }
  for (const double v : occ) {
    if (v < 0.0 || v > 1.0) {
      throw std::invalid_argument(
          "TrapEnsemble::set_occupancies: occupancy outside [0, 1]");
    }
  }
  occupancy_ = occ;
  // A rewind is a state change like any other: bump the version so the
  // delta_vth dot product and every downstream delay cache refresh.
  ++version_;
}

}  // namespace ash::bti
