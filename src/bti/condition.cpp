#include "ash/bti/condition.h"

#include "ash/util/constants.h"
#include "ash/util/table.h"

namespace ash::bti {

std::string OperatingCondition::describe() const {
  return strformat("%.2fV/%.1fC/duty=%.2f", voltage_v,
                   to_celsius(temperature_k), gate_stress_duty);
}

OperatingCondition dc_stress(double voltage_v, double temp_c) {
  return {.voltage_v = voltage_v,
          .temperature_k = celsius(temp_c),
          .gate_stress_duty = 1.0};
}

OperatingCondition ac_stress(double voltage_v, double temp_c, double duty) {
  return {.voltage_v = voltage_v,
          .temperature_k = celsius(temp_c),
          .gate_stress_duty = duty};
}

OperatingCondition recovery(double voltage_v, double temp_c) {
  return {.voltage_v = voltage_v,
          .temperature_k = celsius(temp_c),
          .gate_stress_duty = 0.0};
}

}  // namespace ash::bti
