#include "ash/bti/condition.h"

#include "ash/util/constants.h"
#include "ash/util/table.h"

namespace ash::bti {

std::string OperatingCondition::describe() const {
  return strformat("%.2fV/%.1fC/duty=%.2f", voltage_v.value(),
                   units::to_celsius(temperature_k).value(), gate_stress_duty);
}

OperatingCondition dc_stress(Volts voltage, Celsius temp) {
  return {.voltage_v = voltage,
          .temperature_k = units::to_kelvin(temp),
          .gate_stress_duty = 1.0};
}

OperatingCondition ac_stress(Volts voltage, Celsius temp, double duty) {
  return {.voltage_v = voltage,
          .temperature_k = units::to_kelvin(temp),
          .gate_stress_duty = duty};
}

OperatingCondition recovery(Volts voltage, Celsius temp) {
  return {.voltage_v = voltage,
          .temperature_k = units::to_kelvin(temp),
          .gate_stress_duty = 0.0};
}

}  // namespace ash::bti
