#pragma once

/// \file batch_ensemble.h
/// The batch-of-chips SoA engine: one fused aging pass over a whole
/// population of devices (DESIGN.md Sec. 13).
///
/// The paper's fleet-scale story (Fig. 10, Table 5) needs population
/// sweeps over 10^4..10^6 chips, but a `TrapEnsemble` per chip repays the
/// full rate computation — two exponentials and two divisions per trap —
/// once *per chip* whenever the operating condition moves (a drifting
/// chamber, a noisy campaign).  `BatchEnsemble` restructures the work
/// *across* devices: members are grouped into **trap classes** (identical
/// kinetics draws — same seed and same kinetics parameters; members of a
/// class may still differ in their per-trap DeltaVth contributions, which
/// is how per-chip corner/mismatch scales enter), and the per-condition
/// rates, equilibrium occupancies and decay factors are computed once per
/// (condition, trap-class) instead of once per chip.  What remains per
/// member is the fused occupancy update
///
///     occ[i] = p_inf[i] + (occ[i] - p_inf[i]) * decay[i]
///
/// over contiguous per-field arrays — one multiply-add sweep for the whole
/// population, optionally sharded over disjoint member ranges by a
/// `util::ThreadPool` (elementwise-independent, so bit-identical under any
/// scheduling; pinned by the tsan job).
///
/// Exactness contract: in the default exact mode every cached value is
/// computed with the *identical expression order* of
/// `TrapEnsemble::evolve`, and members are adopted through
/// `TrapEnsemble::population_view()` — so a batch trajectory is bit-for-bit
/// equal to N independent `TrapEnsemble` runs (asserted for a seeded
/// 64-chip population in tests/bti/batch_ensemble_test.cpp, and for the
/// full 20-chip Table-1 campaign in bench_ablation_chip_variation).
///
/// Fast-physics mode (`BatchConfig::fast_exp`, default off) swaps the
/// per-trap exponentials — the Arrhenius factor arrays and the decay
/// factors — for `util::fast_exp` (relative error <= kFastExpRelErr,
/// pinned by tests/util/fast_exp_test.cpp).  Condition-level scalars (a
/// handful of exp() per condition) stay `std::exp`.  Fast mode is still
/// fully deterministic, just not bit-equal to exact mode: bit-exactness
/// becomes a per-run choice.

#include <cstdint>
#include <vector>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/bti/trap_ensemble.h"

namespace ash::util {
class ThreadPool;
}

namespace ash::bti {

/// One member of a seeded population: the same (parameters, seed) pair a
/// solo `TrapEnsemble` would be built from.
struct BatchMemberSpec {
  TdParameters params;
  std::uint64_t seed = 0;
};

/// Per-batch knobs.
struct BatchConfig {
  /// Use util::fast_exp for the per-trap exponentials.  Default off: exact
  /// mode is bit-identical to the per-chip path.
  bool fast_exp = false;
  /// Optional worker pool for the occupancy apply sweep.  Null (or an
  /// inline pool) runs the sweep on the calling thread; results are
  /// bit-identical either way.
  util::ThreadPool* pool = nullptr;
};

/// A population of trap ensembles evolved in lockstep, one fused pass per
/// interval.  Value-semantic and deterministic like `TrapEnsemble`.
class BatchEnsemble {
 public:
  /// Build a fresh population.  Equivalent to constructing
  /// `TrapEnsemble(specs[m].params, specs[m].seed)` for every member (and
  /// bit-identical to doing so — the members *are* those populations).
  explicit BatchEnsemble(const std::vector<BatchMemberSpec>& specs,
                         const BatchConfig& config = {});

  /// Adopt existing ensembles (kinetics arrays and *current* occupancies
  /// are copied; the sources are not retained).  This is how the
  /// population runner batches the transistors of N structurally identical
  /// chips.  Throws std::invalid_argument on an empty list or a null entry.
  explicit BatchEnsemble(const std::vector<const TrapEnsemble*>& members,
                         const BatchConfig& config = {});

  /// Advance every member by dt under one shared operating condition.
  /// Validation (negative dt, breakdown voltage, thermal limit) matches
  /// `TrapEnsemble::evolve` and runs against every trap class before any
  /// state changes, so a throwing call leaves the population untouched.
  void evolve(const OperatingCondition& condition, Seconds dt);

  int member_count() const { return static_cast<int>(member_params_.size()); }
  /// Number of distinct trap classes (rate computations per condition).
  /// A homogeneous-kinetics population has class_count() == 1 no matter
  /// how many members it holds.
  int class_count() const { return static_cast<int>(classes_.size()); }
  int trap_count(int member) const {
    return static_cast<int>(offsets_[static_cast<std::size_t>(member) + 1] -
                            offsets_[static_cast<std::size_t>(member)]);
  }
  const TdParameters& parameters(int member) const {
    return member_params_[static_cast<std::size_t>(member)];
  }

  /// Member m's threshold-voltage shift, computed with the exact reduction
  /// order of `TrapEnsemble::delta_vth` and cached per member between
  /// state changes.
  double delta_vth(int member) const;
  /// All members' shifts, ordered by member index.
  std::vector<double> delta_vth_all() const;

  /// Snapshot / restore of one member's occupancies (the checkpoint
  /// currency shared with `TrapEnsemble`).  `set_occupancies` validates
  /// size and [0, 1] range and bumps the state version.
  std::vector<double> occupancies(int member) const;
  void set_occupancies(int member, const std::vector<double>& occ);

  /// Restore the factory-fresh state (all traps of all members empty).
  void reset();

  /// Monotonic population state version (same contract as
  /// `TrapEnsemble::state_version`).
  std::uint64_t state_version() const { return version_; }

  const BatchConfig& config() const { return config_; }

 private:
  /// Per-(condition, class) memo — the batch-level counterpart of
  /// `TrapEnsemble::RateEntry`, holding the class's lambda / p_inf arrays
  /// plus the decay factors for the most recent dt.
  struct RateEntry {
    Volts voltage_v{0.0};
    Kelvin temperature_k{0.0};
    double duty = 0.0;
    bool valid = false;
    std::vector<double> lambda;
    std::vector<double> p_inf;
    double decay_dt_s = -1.0;
    std::vector<double> decay;
  };

  /// Temperature-keyed Arrhenius factor memo (same shape as the solo
  /// ensemble's).
  struct FactorCache {
    struct Slot {
      double arr_x = 0.0;
      bool valid = false;
      std::vector<double> f;
    };
    static constexpr int kSlots = 2;
    Slot slots[kSlots];
    int next = 0;
  };

  /// One kinetics equivalence class: members sharing identical kinetics
  /// draws (tau, Ea, permanence) and kinetics parameters.  The class owns
  /// the arrays the rate computation reads and every per-condition cache.
  struct TrapClass {
    TdParameters params;  // kinetics fields authoritative for the class
    std::vector<double> tau_capture_s;
    std::vector<double> tau_emission_s;
    std::vector<double> capture_ea_ev;
    std::vector<double> emission_ea_ev;
    std::vector<std::uint8_t> permanent;
    std::vector<int> members;
    FactorCache capture_factors;
    FactorCache emission_factors;
    std::vector<RateEntry> rate_cache;
    int rate_cache_next = 0;
  };

  /// Conditions recur far more across a population sweep than inside one
  /// chip's campaign (stress + recovery + measurement wake per phase), so
  /// the batch cache is deeper than the solo ensemble's 6 slots — and a
  /// miss is promoted immediately: its cost amortizes over every member of
  /// the class, so there is no one-shot transient path here.
  static constexpr int kRateCacheSlots = 16;

  void adopt_member(const TrapEnsemble& source);
  RateEntry& entry_for(TrapClass& cls, const OperatingCondition& condition,
                       double duty, double dt_s);
  void apply_members(int lo, int hi);

  BatchConfig config_;

  std::vector<TrapClass> classes_;
  std::vector<TdParameters> member_params_;

  // --- population state, structure-of-arrays across members --------------
  /// Member m's traps live at [offsets_[m], offsets_[m + 1]).
  std::vector<std::size_t> offsets_{0};
  std::vector<double> delta_vth_v_;
  std::vector<double> occupancy_;

  /// Per-member pointers into the active rate entries, rebuilt each evolve
  /// before the apply sweep (kept as a member to avoid per-call allocs).
  std::vector<const RateEntry*> active_entry_;

  std::uint64_t version_ = 0;
  mutable std::vector<double> cached_delta_;
  mutable std::vector<std::uint64_t> cached_delta_version_;
};

}  // namespace ash::bti
