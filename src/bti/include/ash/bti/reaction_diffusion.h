#pragma once

/// \file reaction_diffusion.h
/// The classic Reaction-Diffusion (RD) NBTI model — the TD model's
/// historical rival, included as a scientific control.
///
/// RD attributes NBTI to interface-bond breaking with hydrogen diffusing
/// away: stress follows a power law DeltaVth ~ t^n (n ~ 1/6 for H2
/// diffusion), and recovery is the *universal* back-diffusion curve
///   remaining(t2) = 1 / (1 + sqrt(xi * t2 / t1)),
/// a function of t2/t1 only.  That universality is RD's testable failure
/// mode against this paper's data: measured recovery depends strongly on
/// the sleep *conditions* (negative bias, temperature), which RD has no
/// knob for — exactly the argument of ref. [15] ("Physics Matters") for
/// preferring Trapping/Detrapping.  bench_ablation_model_selection runs
/// the comparison on the virtual campaign.

#include "ash/bti/condition.h"
#include "ash/util/series.h"
#include "ash/util/units.h"

namespace ash::bti {

/// RD model constants.
struct RdParameters {
  /// Amplitude at the stress reference condition: DeltaVth at t = 1 s
  /// would be amplitude_ref_v * 1^n; calibrate/fit against data.
  Volts amplitude_ref_v{3.0e-3};
  /// Power-law exponent n; 1/6 for neutral H2 diffusion, 1/4 for atomic H.
  double time_exponent = 1.0 / 6.0;
  /// Universal-recovery shape constant xi (~0.5 in the literature).
  double xi = 0.5;
  /// Amplitude activation/field constants (same form as the TD model's
  /// Eq. (2) amplitude so stress-side fits are comparable).
  double e0_ev = 0.44;
  double b_ev_per_v = 0.10;
  Volts stress_ref_voltage_v{1.2};
  Kelvin stress_ref_temp_k{383.15};

  /// Throws std::invalid_argument when out of domain.
  void validate() const;
};

/// Stateless RD evaluations, mirroring ClosedFormModel's interface subset
/// so the two models can be raced on identical data.
class RdModel {
 public:
  explicit RdModel(RdParameters params);

  const RdParameters& parameters() const { return params_; }

  /// Amplitude at (V, T), normalized to amplitude_ref_v at the reference.
  double amplitude(Volts voltage, Kelvin temp) const;

  /// DeltaVth after stressing a fresh device for t_s seconds.
  double stress_delta_vth(Seconds t, const OperatingCondition& c) const;

  /// Fraction of the stress damage remaining after t2_s of recovery
  /// following a t1_s stress.  NOTE: deliberately independent of the
  /// recovery condition — that is the RD physics under test.
  double remaining_fraction(Seconds t1, Seconds t2) const;

 private:
  RdParameters params_;
};

/// Least-squares fit of the RD amplitude (exponent fixed) to a measured
/// DeltaTd-vs-time stress series; returns the fitted amplitude (same
/// units as the series values at t = 1 s) and the R^2 of the fit.
struct RdStressFit {
  double amplitude = 0.0;
  double time_exponent = 0.0;
  double r_squared = 0.0;
};

/// Fit amplitude and (optionally) the exponent of the RD stress law to a
/// series; `fit_exponent` false pins n to params.time_exponent.
RdStressFit fit_rd_stress(const ash::Series& delay_change,
                          const RdParameters& params,
                          bool fit_exponent = false);

}  // namespace ash::bti
