#pragma once

/// \file trap_ensemble.h
/// The stochastic Trapping/Detrapping model: an ensemble of oxide traps per
/// device.
///
/// This is the ground-truth physics layer of the reproduction (the stand-in
/// for the paper's actual 40 nm silicon).  Its macroscopic behaviour —
/// log(1+Ct) stress growth, amplitude ∝ phi(V,T), fast-then-log partial
/// recovery, AC ≈ ½ DC — *emerges* from the microscopic trap kinetics; the
/// paper's closed-form Eqs. (1)–(4) are then fit against it exactly as the
/// authors fit their equations against chip measurements.

#include <cstdint>
#include <vector>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/bti/trap.h"

namespace ash::bti {

/// Ensemble of traps belonging to one transistor's gate oxide.
///
/// Value-semantic: copying an ensemble snapshots the full degradation state
/// (used by the what-if planner).  Deterministic: the trap population is a
/// pure function of (parameters, seed).
class TrapEnsemble {
 public:
  /// Build a fresh (unstressed) device.  `seed` individualizes the trap
  /// population — two devices with different seeds age statistically alike
  /// but not identically, which is how chip-to-chip variation on aging
  /// enters the virtual fabric.
  TrapEnsemble(const TdParameters& params, std::uint64_t seed);

  /// Advance the device by dt seconds under a constant operating condition.
  /// Stress intervals capture (and, for AC duty < 1, concurrently emit
  /// during the unbiased half-cycles); recovery intervals only emit, at a
  /// rate accelerated by temperature and negative bias.
  void evolve(const OperatingCondition& condition, double dt_s);

  /// Current threshold-voltage shift (volts): sum of occupied trap
  /// contributions.
  double delta_vth() const;

  /// Shift carried by permanent (never-recoverable) traps only.
  double permanent_delta_vth() const;

  /// Upper bound on the shift if every trap were occupied.
  double max_delta_vth() const;

  /// Restore the factory-fresh state (all traps empty).
  void reset();

  int trap_count() const { return static_cast<int>(traps_.size()); }
  const TdParameters& parameters() const { return params_; }

  /// Snapshot / restore of the mutable state (occupancies), for
  /// checkpointing long campaigns.  `set_occupancies` requires a vector of
  /// exactly trap_count() values in [0, 1].
  std::vector<double> occupancies() const;
  void set_occupancies(const std::vector<double>& occ);

 private:
  TdParameters params_;
  std::vector<Trap> traps_;
};

}  // namespace ash::bti
