#pragma once

/// \file trap_ensemble.h
/// The stochastic Trapping/Detrapping model: an ensemble of oxide traps per
/// device.
///
/// This is the ground-truth physics layer of the reproduction (the stand-in
/// for the paper's actual 40 nm silicon).  Its macroscopic behaviour —
/// log(1+Ct) stress growth, amplitude ∝ phi(V,T), fast-then-log partial
/// recovery, AC ≈ ½ DC — *emerges* from the microscopic trap kinetics; the
/// paper's closed-form Eqs. (1)–(4) are then fit against it exactly as the
/// authors fit their equations against chip measurements.
///
/// Performance architecture (DESIGN.md Sec. 8): the trap population is
/// stored structure-of-arrays so the per-step occupancy sweep touches only
/// the two arrays it needs, and the per-condition rate constants (two
/// exponentials and two divisions per trap in the naive formulation) are
/// memoized in a small per-ensemble `RateCache` keyed on the operating
/// condition.  Campaigns apply the same handful of conditions for millions
/// of steps, so the steady-state cost of `evolve` is one fused
/// multiply-add sweep over the ensemble — no `exp()` at all when the
/// (condition, dt) pair repeats.  All cached values are computed with the
/// exact expression order of the original per-trap loop, so trajectories
/// stay bit-identical (enforced by tests/perf/golden_trajectory_test.cpp).

#include <cstdint>
#include <vector>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"

namespace ash::bti {

/// Ensemble of traps belonging to one transistor's gate oxide.
///
/// Value-semantic: copying an ensemble snapshots the full degradation state
/// (used by the what-if planner).  Deterministic: the trap population is a
/// pure function of (parameters, seed).
class TrapEnsemble {
 public:
  /// Build a fresh (unstressed) device.  `seed` individualizes the trap
  /// population — two devices with different seeds age statistically alike
  /// but not identically, which is how chip-to-chip variation on aging
  /// enters the virtual fabric.
  TrapEnsemble(const TdParameters& params, std::uint64_t seed);

  /// Advance the device by dt seconds under a constant operating condition.
  /// Stress intervals capture (and, for AC duty < 1, concurrently emit
  /// during the unbiased half-cycles); recovery intervals only emit, at a
  /// rate accelerated by temperature and negative bias.
  void evolve(const OperatingCondition& condition, Seconds dt);

  /// Current threshold-voltage shift (volts): dot product of occupancies
  /// and per-trap contributions.  Cached between state changes, so
  /// repeated reads after the same aging step are O(1).
  double delta_vth() const;

  /// Shift carried by permanent (never-recoverable) traps only.
  double permanent_delta_vth() const;

  /// Upper bound on the shift if every trap were occupied.
  double max_delta_vth() const;

  /// Restore the factory-fresh state (all traps empty).
  void reset();

  int trap_count() const { return static_cast<int>(occupancy_.size()); }
  const TdParameters& parameters() const { return params_; }

  /// Snapshot / restore of the mutable state (occupancies), for
  /// checkpointing long campaigns.  `set_occupancies` requires a vector of
  /// exactly trap_count() values in [0, 1], and — like `evolve` and
  /// `reset` — invalidates every cached derived quantity (the delta_vth
  /// dot product here, delay caches in the fpga layer via the version
  /// counter), so a checkpoint rewind is immediately visible to readers.
  std::vector<double> occupancies() const;
  void set_occupancies(const std::vector<double>& occ);

  /// Monotonic state-change counter: bumped by every `evolve` (with
  /// dt > 0), `set_occupancies` and `reset`.  Higher layers (fpga delay
  /// caches) use it as a cheap dirty flag: equal versions guarantee the
  /// occupancies — and anything derived from them — are unchanged.
  std::uint64_t state_version() const { return version_; }

  /// Read-only view of the trap population's SoA arrays (trap_count()
  /// entries each).  `bti::BatchEnsemble` adopts members through this view
  /// so a batch is constructed from the *same* drawn population a solo
  /// ensemble would evolve — the foundation of the batch engine's
  /// bit-exactness contract (DESIGN.md Sec. 13).  Pointers are invalidated
  /// by destroying or moving the ensemble; the arrays themselves are
  /// immutable after construction.
  struct PopulationView {
    const double* delta_vth_v = nullptr;
    const double* tau_capture_s = nullptr;
    const double* tau_emission_s = nullptr;
    const double* capture_ea_ev = nullptr;
    const double* emission_ea_ev = nullptr;
    const std::uint8_t* permanent = nullptr;
    int trap_count = 0;
  };
  PopulationView population_view() const;

 private:
  /// Per-condition memo: everything of the exact occupancy update
  ///   p' = p_inf + (p - p_inf) * exp(-lambda * dt)
  /// that does not depend on dt (lambda, p_inf), plus the decay factors
  /// for the most recent dt.  Traps with lambda <= 0 store p_inf = 0 and
  /// decay = 1, which leaves their occupancy bit-exactly unchanged —
  /// the branch-free equivalent of the old early return.
  struct RateEntry {
    Volts voltage_v{0.0};
    Kelvin temperature_k{0.0};
    double duty = 0.0;
    bool valid = false;
    std::vector<double> lambda;
    std::vector<double> p_inf;
    double decay_dt_s = -1.0;
    std::vector<double> decay;
  };

  /// Per-temperature memo of the per-trap Arrhenius factors
  /// exp(-Ea_i * arr_x).  The condition's voltage and duty enter the rate
  /// formulas only through scalars, so these arrays are reusable across
  /// conditions sharing a temperature — which the testbench produces
  /// naturally (a measurement wake and the following aging step read the
  /// same chamber state).
  struct FactorCache {
    struct Slot {
      double arr_x = 0.0;
      bool valid = false;
      std::vector<double> f;
    };
    static constexpr int kSlots = 2;
    Slot slots[kSlots];
    int next = 0;
  };

  /// Condition-level scalars of the rate formulas, hoisted out of the
  /// per-trap loops.
  struct CondScalars {
    double duty;
    double phi;
    double capture_field;
    double capture_arr_x;
    double emission_bias_boost;
    double emission_arr_x;
  };
  CondScalars scalars_for(const OperatingCondition& condition) const;

  /// Factors exp(-ea[i] * arr_x) for the whole population, memoized.
  const double* arrhenius_factors(FactorCache& cache,
                                  const std::vector<double>& ea_ev,
                                  double arr_x);

  /// Cache miss on a *recurring* condition: compute rates + decay into the
  /// memo entry and advance occupancies in one fused pass.
  void fill_and_step(RateEntry& entry, const OperatingCondition& condition,
                     double dt_s);
  /// Condition hit, new dt: recompute decay factors and advance.
  void refill_decay_and_step(RateEntry& entry, double dt_s);
  /// Cache miss on a *one-shot* condition (e.g. a drifting chamber
  /// temperature, where every interval is unique): advance occupancies
  /// without writing any memo arrays — the rate/decay values live only in
  /// registers, which roughly halves the memory traffic of a miss.
  void transient_step(const OperatingCondition& condition, double dt_s);

  TdParameters params_;

  // --- trap population, structure-of-arrays ------------------------------
  std::vector<double> delta_vth_v_;
  std::vector<double> tau_capture_s_;
  std::vector<double> tau_emission_s_;
  std::vector<double> capture_ea_ev_;
  std::vector<double> emission_ea_ev_;
  std::vector<std::uint8_t> permanent_;
  std::vector<double> occupancy_;

  // --- caches ------------------------------------------------------------
  /// Small round-robin condition cache; campaigns cycle through a handful
  /// of (stress, recovery, measurement) conditions.
  static constexpr int kRateCacheSlots = 6;
  std::vector<RateEntry> rate_cache_;
  int rate_cache_next_ = 0;

  /// Temperature-keyed Arrhenius factor memos (capture and emission use
  /// different reference temperatures, hence separate caches).
  FactorCache capture_factors_;
  FactorCache emission_factors_;

  /// Key of the most recent one-shot miss: a condition missing twice in a
  /// row is recurring and gets promoted into the rate cache.
  Volts last_miss_voltage_{0.0};
  Kelvin last_miss_temp_{0.0};
  double last_miss_duty_ = 0.0;
  bool last_miss_valid_ = false;

  std::uint64_t version_ = 0;
  mutable double cached_delta_vth_ = 0.0;
  mutable std::uint64_t cached_delta_version_ = ~std::uint64_t{0};
};

}  // namespace ash::bti
