#pragma once

/// \file closed_form.h
/// The paper's first-order closed-form BTI model (Eqs. (1)–(4) at the
/// device level; Eqs. (8)–(13) lift it to delay) plus a stateful fast-path
/// ager for cyclic schedules (Eq. (12)'s alpha-parameterized wear/heal
/// cycles).
///
/// Two uses:
///  1. *Model overlay & fitting* — Figures 5–8 show the model curve on top
///     of measurements; `ash::core::ModelFitter` extracts these parameters
///     from measured series (Table 3).
///  2. *Fast simulation path* — the multi-core simulator and the lifetime
///     estimator evolve hundreds of simulated years; the stateful
///     `ClosedFormAger` is O(1) per schedule segment where the trap
///     ensemble is O(traps).

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/util/units.h"

namespace ash::bti {

/// Parameters of the closed-form law.  The stress law is
///   DeltaVth(t) = beta(V, T) * ln(1 + t / tau_stress_s)
/// with the multiplicative amplitude of Eq. (2):
///   beta(V, T) = beta_ref_v * exp(-(e0_ev - b_ev_per_v*V)/(kT)) /
///                             exp(-(e0_ev - b_ev_per_v*Vref)/(kTref)).
/// The recovery law after a stress phase of effective duration t1 is
///   remaining(t2) = perm + (1 - perm) *
///                   max(0, 1 - ln(1 + AFe(V,T)*t2 / tau_recovery_s)
///                              / ln(1 + t1 / tau_stress_s))
/// where AFe is the emission acceleration (Arrhenius + negative-bias
/// boost) — the same fast-start, log-tail, never-complete behaviour the
/// paper derives from Eq. (3).
struct ClosedFormParameters {
  /// Amplitude at the stress reference condition, volts per ln-unit.
  Volts beta_ref_v{5.04e-3};
  /// Stress onset time constant (1/C of Eq. (1)).
  Seconds tau_stress_s{120.0};
  /// Amplitude activation energy and voltage factor (Eq. (2)).
  double e0_ev = 0.44;
  double b_ev_per_v = 0.10;
  /// Stress reference condition for the amplitude normalization.
  Volts stress_ref_voltage_v{1.2};
  Kelvin stress_ref_temp_k{383.15};

  /// Capture kinetics used to convert wall-clock stress time into
  /// stress-reference-equivalent time: t_eff = t * duty * AFc(V, T).
  double capture_ea_ev = 0.20;
  double capture_field_accel_per_v = 3.5;
  Volts capture_threshold_voltage_v{0.6};

  /// Median emission/capture time-constant ratio (rho of the TD spectrum);
  /// sets the AC-stress equilibrium amplitude (capture racing concurrent
  /// emission during the unbiased half-cycles).  ~6.8 (with the 0.37 eV
  /// emission barrier) puts the device-level AC/DC shift ratio near 0.27,
  /// i.e. circuit-level AC ~ half of DC.
  double emission_time_ratio = 6.8;

  /// Recovery onset time constant at the passive reference (20 degC, 0 V).
  Seconds tau_recovery_s{816.0};
  /// Emission acceleration constants (shared semantics with TdParameters).
  double emission_ea_ev = 0.37;
  double emission_neg_bias_accel_per_v = 10.0;
  Kelvin recovery_ref_temp_k{293.15};

  /// Fraction of accumulated damage that is irreversible.
  double permanent_ratio = 0.04;

  /// Derive closed-form constants from a trap-ensemble parameter set so the
  /// two layers start mutually consistent (fitting then refines).
  static ClosedFormParameters from_td(const TdParameters& td);

  /// Throws std::invalid_argument if out of domain.
  void validate() const;
};

/// Stateless evaluations of the closed-form laws.
class ClosedFormModel {
 public:
  explicit ClosedFormModel(ClosedFormParameters params);

  const ClosedFormParameters& parameters() const { return params_; }

  /// Amplitude beta(V, T) in volts per ln-unit.
  double beta(Volts voltage, Kelvin temp) const;

  /// Emission acceleration factor AFe(V, T) relative to passive recovery.
  double emission_acceleration(Volts voltage, Kelvin temp) const;

  /// Capture (stress-time) acceleration factor AFc(V, T) relative to the
  /// stress reference; 0 below the capture threshold voltage.
  double capture_acceleration(Volts voltage, Kelvin temp) const;

  /// Amplitude de-rating for AC operation (duty < 1): capture racing the
  /// concurrent emission of the unbiased half-cycles.  1 for DC.
  double ac_amplitude_factor(const OperatingCondition& c) const;

  /// DeltaVth after stressing a fresh device for t_s seconds (Eq. (1)).
  /// `duty` scales the effective stress time (AC operation).
  double stress_delta_vth(Seconds t, const OperatingCondition& c) const;

  /// Fraction of a stress phase's DeltaVth remaining after recovering for
  /// t2_s seconds under `c`, given the stress phase lasted t1_equiv_s at
  /// the *stress reference* condition (Eq. (3) rearranged).  In
  /// [permanent_ratio, 1].
  double remaining_fraction(Seconds t1_equiv, Seconds t2,
                            const OperatingCondition& c) const;

 private:
  ClosedFormParameters params_;
};

/// Stateful fast-path ager: evolves a single scalar damage state through an
/// arbitrary piecewise-constant schedule of stress and recovery segments.
///
/// State: reversible damage `v_r` (volts), permanent damage `v_p`, plus the
/// bookkeeping needed to keep consecutive recovery segments on one
/// consistent log-law episode.  Complexity is O(1) per segment, which is
/// what makes decade-long multi-core simulations (Sec. 6) tractable.
class ClosedFormAger {
 public:
  explicit ClosedFormAger(ClosedFormParameters params);

  /// Advance by dt seconds under the given condition.  Stress intervals
  /// (duty > 0) accrue damage along the log law; recovery intervals heal
  /// the reversible part along the recovery law.
  void evolve(const OperatingCondition& c, Seconds dt);

  /// Current total threshold-voltage shift (volts).
  double delta_vth() const { return reversible_v_ + permanent_v_; }
  /// Permanent (unrecoverable) part of the shift.
  double permanent_delta_vth() const { return permanent_v_; }

  /// Restore the fresh state.
  void reset();

  const ClosedFormParameters& parameters() const {
    return model_.parameters();
  }

 private:
  /// Equivalent stress-reference seconds that would produce the current
  /// reversible damage at effective amplitude `beta_v`.
  double equivalent_stress_time(double beta_v) const;

  void advance_stress(const OperatingCondition& c, double dt_s);
  void advance_recovery(const OperatingCondition& c, double dt_s);

  ClosedFormModel model_;
  double reversible_v_ = 0.0;
  double permanent_v_ = 0.0;

  /// Log-width ln(1 + t_eff/tau_s) of the captured trap spectrum after the
  /// most recent stress segment — the denominator of the recovery law.
  double spectrum_ln_ = 0.0;

  // Recovery-episode bookkeeping: equivalent passive-reference seconds of
  // healing accumulated in the current contiguous recovery episode, and the
  // reversible damage / spectrum width captured when the episode began.
  bool in_recovery_episode_ = false;
  double episode_passive_s_ = 0.0;
  double episode_start_reversible_v_ = 0.0;
  double episode_denom_ln_ = 0.0;
};

}  // namespace ash::bti
