#pragma once

/// \file electromigration.h
/// Electromigration (EM) interconnect wear — the aging mechanism the paper
/// lists as a limitation of its first-order model ("ignores other aging
/// effects, such as Electromigration").
///
/// EM is everything BTI recovery is not: driven by *current*, not bias;
/// cumulative and irreversible; thermally accelerated with a large
/// activation energy.  Modeling it alongside BTI answers the natural
/// question about accelerated self-healing: does hot rejuvenation burn EM
/// lifetime?  (Answer, quantified by bench_ablation_em: no — power-gated
/// sleep carries no current, so EM stops during recovery; sleep schedules
/// actually *extend* EM life through their duty-cycle reduction.)
///
/// The model integrates Black's-equation-consistent damage:
///   d(drift)/dt = rate_ref * (J/J_ref)^n * exp(-(Ea/k)(1/T - 1/Tref))
/// where drift is the fractional resistance increase of the worst
/// interconnect segment; the segment fails (void) past `failure_drift`.

#include "ash/bti/parameters.h"
#include "ash/util/units.h"

namespace ash::bti {

/// EM physics constants.
struct EmParameters {
  /// Activation energy (eV); Cu interconnect ~0.85-0.9.
  double ea_ev = 0.9;
  /// Black's current-density exponent n.
  double current_exponent = 2.0;
  /// Reference conditions at which `drift_rate_per_s` is specified:
  /// nominal switching current density at a typical qual temperature.
  Kelvin ref_temp_k{378.15};  // 105 degC
  /// Fractional resistance drift per second at reference conditions.
  /// Calibrated for ~10 years to failure at continuous nominal current
  /// and 105 degC: 0.10 / (10 * 3.156e7 s).
  double drift_rate_per_s = 3.17e-10;
  /// Fractional resistance increase at which the segment is considered
  /// failed (void nucleation / EOL criterion).
  double failure_drift = 0.10;

  /// Throws std::invalid_argument when out of domain.
  void validate() const;
};

/// One interconnect segment's cumulative EM state.
class EmInterconnect {
 public:
  explicit EmInterconnect(const EmParameters& params);

  /// Accumulate EM damage over dt seconds at the given current-density
  /// ratio (J/J_ref; 0 when power-gated, ~1 at nominal switching, >1 for
  /// overdriven GNOMO-style operation) and metal temperature.
  void evolve(double current_density_ratio, Kelvin temp, Seconds dt);

  /// Fractional resistance increase accumulated so far.
  double drift() const { return drift_; }

  /// True once the failure criterion is exceeded.
  bool failed() const { return drift_ >= params_.failure_drift; }

  /// Remaining-life estimate (seconds) if operated at the given condition
  /// from now on; infinity when J = 0.
  Seconds time_to_failure(double current_density_ratio, Kelvin temp) const;

  /// Instantaneous drift rate (1/s) at a condition.
  double drift_rate(double current_density_ratio, Kelvin temp) const;

  const EmParameters& parameters() const { return params_; }

 private:
  EmParameters params_;
  double drift_ = 0.0;
};

}  // namespace ash::bti
