#pragma once

/// \file trap.h
/// A single oxide trap and its two-state occupancy kinetics.
///
/// The TD model's elementary object: a trap captures a carrier under stress
/// (raising |Vth| by `delta_vth_v`) and emits it during recovery.  The
/// library tracks the *expected* occupancy p in [0, 1] (the mean-field of
/// the underlying telegraph process), which evolves under piecewise-constant
/// conditions by the exact linear-ODE solution — no time-step error, so a
/// 24-hour stress phase is one update.

#include <cmath>

#include "ash/util/units.h"

namespace ash::bti {

/// Immutable physical identity of one trap plus its mutable occupancy.
struct Trap {
  /// Threshold-voltage contribution when occupied.
  Volts delta_vth_v{0.0};
  /// Capture time constant at the stress reference condition.
  Seconds tau_capture_s{1.0};
  /// Emission time constant at the passive-recovery reference.
  Seconds tau_emission_s{1.0};
  /// Activation energy of the capture process (eV).
  double capture_ea_ev = 0.2;
  /// Activation energy of the emission process (eV).
  double emission_ea_ev = 0.6;
  /// Irreversible trap: once filled it never emits (interface damage).
  bool permanent = false;

  /// Expected occupancy in [0, 1].
  double occupancy = 0.0;
};

/// Advance one trap by dt seconds under constant effective rates.
///
/// Dynamics: dp/dt = rc * (phi - p) - re * p, where
///   rc  — effective capture rate (1/s), already duty- and
///         acceleration-scaled by the caller;
///   re  — effective emission rate (1/s), zero for permanent traps;
///   phi — equilibrium trapped amplitude (Eq. (2)); capture drives p toward
///         phi, not 1, which gives the model its multiplicative
///         voltage/temperature amplitude.
///
/// Exact solution over the interval:
///   p(dt) = p_inf + (p0 - p_inf) * exp(-(rc + re) * dt),
///   p_inf = rc * phi / (rc + re).
inline void evolve_trap(Trap& trap, Hertz capture_rate, Hertz emission_rate,
                        double phi, Seconds dt) {
  const double rc = capture_rate.value();
  const double re = trap.permanent ? 0.0 : emission_rate.value();
  const double dt_s = dt.value();
  const double lambda = rc + re;
  if (lambda <= 0.0 || dt_s <= 0.0) return;
  const double p_inf = rc * phi / lambda;
  const double x = lambda * dt_s;
  // exp underflows harmlessly for large x; short-circuit to avoid the call.
  const double decay = x > 700.0 ? 0.0 : std::exp(-x);
  trap.occupancy = p_inf + (trap.occupancy - p_inf) * decay;
}

}  // namespace ash::bti
