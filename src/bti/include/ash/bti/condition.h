#pragma once

/// \file condition.h
/// Operating conditions for BTI stress and recovery phases.
///
/// The paper's experimental "knobs" (Sec. 4.1) are voltage, time,
/// temperature, switching activity and the active/sleep ratio alpha.  An
/// `OperatingCondition` captures the first three plus activity; schedules
/// (ash::tb) sequence conditions over time, and alpha emerges from the
/// schedule.

#include <string>

#include "ash/util/units.h"

namespace ash::bti {

/// Which BTI flavour a transistor experiences.  NBTI: PMOS under negative
/// gate-source bias.  PBTI: NMOS under positive bias (significant at
/// high-k/metal-gate nodes, Sec. 1 of the paper).
enum class StressType { kNbti, kPbti };

/// Gate bias condition of one interval, from the device's point of view.
///
/// `gate_stress_duty` is the fraction of the interval during which the gate
/// sees full stress bias:
///   * 1.0  — DC stress (input static, gate biased the whole time);
///   * ~0.5 — AC stress (input switching; the paper observes AC degradation
///            is about half of DC because each half-cycle of stress is
///            followed by a recovery half-cycle);
///   * 0.0  — recovery / sleep (no stress at all).
struct OperatingCondition {
  /// Supply/gate magnitude.  1.2 V is nominal for the 40 nm parts;
  /// recovery uses 0 V (power gated) or -0.3 V (active reverse bias).
  Volts voltage_v{1.2};

  /// Junction temperature.
  Kelvin temperature_k{293.15};

  /// Fraction of time under stress bias within this interval, in [0, 1].
  double gate_stress_duty = 0.0;

  /// True when any stress is applied during the interval.
  bool is_stressing() const { return gate_stress_duty > 0.0; }

  /// Human-readable summary, e.g. "1.20V/110.0C/duty=1.00".
  std::string describe() const;
};

/// Convenience constructors mirroring the paper's test vocabulary.
/// Temperatures are given in degrees Celsius as in Table 1.
OperatingCondition dc_stress(Volts voltage, Celsius temp);
OperatingCondition ac_stress(Volts voltage, Celsius temp, double duty = 0.5);
OperatingCondition recovery(Volts voltage, Celsius temp);

}  // namespace ash::bti
