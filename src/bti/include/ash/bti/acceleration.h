#pragma once

/// \file acceleration.h
/// Voltage/temperature acceleration factors of the TD model.
///
/// These free functions are the analytic kernel shared by the stochastic
/// ensemble (per-trap rates) and the closed-form model (Eq. (2)/(4)'s
/// phi_1/phi_2 factors).  Keeping them in one place guarantees the two model
/// layers agree on the physics by construction.

#include "ash/bti/parameters.h"
#include "ash/util/units.h"

namespace ash::bti {

/// Arrhenius rate multiplier between temperature T and reference Tref for a
/// process with activation energy ea_ev:
///   exp(-(ea/k) * (1/T - 1/Tref))  — >1 for T > Tref.
double arrhenius_factor(double ea_ev, Kelvin temp, Kelvin ref_temp);

/// Capture-rate multiplier at (V, T) relative to the stress reference
/// condition: oxide-field exponential x Arrhenius.  Returns 0 when the gate
/// magnitude is below the capture threshold (no capture during sleep).
double capture_acceleration(const TdParameters& p, double ea_ev, Volts voltage,
                            Kelvin temp);

/// Emission-rate multiplier at (V, T) relative to the passive-recovery
/// reference: Arrhenius x negative-bias boost.  This is the quantitative
/// heart of "accelerated self-healing": at 110 degC and -0.3 V the default
/// calibration yields a multiplier of several hundred.
double emission_acceleration(const TdParameters& p, double ea_ev,
                             Volts voltage, Kelvin temp);

/// Equilibrium trapped-fraction amplitude phi(V, T) in [0, 1] — Eq. (2)'s
/// multiplicative amplitude.  Only meaningful under stress bias.
double occupancy_amplitude(const TdParameters& p, Volts voltage, Kelvin temp);

}  // namespace ash::bti
