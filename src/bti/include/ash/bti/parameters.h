#pragma once

/// \file parameters.h
/// Calibration constants of the stochastic Trapping/Detrapping (TD) model.
///
/// The paper builds on the device-level TD model of Velamala et al.
/// (DAC'12, ref. [15]): threshold-voltage shift is carried by oxide traps
/// that capture carriers under stress and emit them during recovery, with
/// capture/emission time constants spread over many decades.  The
/// log-uniform spread of time constants is what produces the measured
/// DeltaVth ~ A*phi*log(1 + C*t) stress law (Eq. (1)) and the
/// fast-then-logarithmic recovery law (Eq. (3)).
///
/// `TdParameters` gathers every physical constant with the calibration
/// rationale next to it.  Defaults are calibrated so that the virtual 40 nm
/// FPGA reproduces the paper's headline measurements (see DESIGN.md §5):
///   * 24 h DC stress @110 degC/1.2 V  => ~2.2 % RO frequency degradation;
///   * same @100 degC                  => ~1.7 %;
///   * AC stress                       => about half of DC;
///   * 6 h recovery (alpha = 4) @110 degC/-0.3 V => back to >=90 % of the
///     original margin.

#include <cstdint>

#include "ash/util/units.h"

namespace ash::bti {

/// All constants of the trap-ensemble model.  A value-semantic bag; pass by
/// const& and treat as immutable after validation.
struct TdParameters {
  // --- Trap population -----------------------------------------------------
  /// Number of traps simulated per device (per transistor gate oxide).
  /// Enough for a smooth log(1+Ct) aggregate without noisy steps.
  int traps_per_device = 160;

  /// Mean per-trap threshold-voltage contribution (exponentially
  /// distributed).  Sets the overall DeltaVth magnitude:
  /// traps_per_device * delta_vth_mean_v bounds the fully-trapped shift.
  /// Calibrated so 24 h of reference DC stress shifts Vth by ~37 mV, which
  /// the RO delay model maps to the paper's ~2.2 % frequency degradation.
  Volts delta_vth_mean_v{765e-6};

  /// Capture time constants are log-uniform over
  /// [tau_capture_min_s, tau_capture_max_s] *at the stress reference
  /// condition* (1.2 V, 110 degC).  The 120 s floor reproduces the
  /// measured curve shape at the paper's 20-minute sampling cadence
  /// (~50 % of the 24 h damage lands in the first hour, ~65 % by 3 h,
  /// Fig. 4); faster traps live in fast equilibrium and are invisible to
  /// gated RO measurements.
  Seconds tau_capture_min_s{120.0};
  Seconds tau_capture_max_s{1e10};

  /// Emission constant: tau_e = rho * tau_c with log10(rho) ~ N(mu, sigma).
  /// rho >> 1 encodes "recovery is slower than degradation" (Sec. 3.1);
  /// the spread keeps recovery log-like rather than a single exponential.
  /// rho also sets the AC-stress equilibrium (capture racing the concurrent
  /// emission of the unbiased half-cycles): at rho ~ 7 with the 0.37 eV
  /// emission barrier, a device under 50 % duty at 110 degC reaches ~0.27x
  /// the DC shift, which — combined with DC stress aging only one of the
  /// two RO transition paths — lands the *measured* AC/DC frequency-
  /// degradation ratio at the paper's "about half" (Fig. 4).
  double emission_ratio_log10_mu = 0.83;
  double emission_ratio_log10_sigma = 0.25;

  /// Fraction of traps whose damage is irreversible (interface states that
  /// never anneal at these temperatures).  Bounds the best achievable
  /// recovery — the paper reports chips return to *within 90 %* of the
  /// original margin, never fully fresh.
  double permanent_fraction = 0.04;

  // --- Capture kinetics (stress acceleration) -------------------------------
  /// Reference stress condition at which tau_capture_* are specified.
  Volts stress_ref_voltage_v{1.2};
  Kelvin stress_ref_temp_k{383.15};  // 110 degC

  /// Oxide-field acceleration of capture: rate *= exp(Bv*(V - Vref)).
  /// 3.5 /V gives ~2x per 200 mV overdrive, typical of 40 nm NBTI data.
  double capture_field_accel_per_v = 3.5;

  /// Mean/spread of the capture activation energy in eV (Arrhenius rate
  /// factor exp(-Ea/k * (1/T - 1/Tref))).
  double capture_ea_mean_ev = 0.20;
  double capture_ea_sigma_ev = 0.05;

  /// Below this gate magnitude no capture occurs at all: recovery at 0 V or
  /// negative bias only emits.
  Volts capture_threshold_voltage_v{0.6};

  // --- Equilibrium occupancy amplitude (Eq. (2)'s phi) ----------------------
  /// Under stress, the equilibrium trapped fraction is
  ///   phi(V, T) =
  ///     clamp(amp_prefactor * exp(-(amp_e0_ev - amp_b_ev_per_v*V)/(k*T)))
  /// which reproduces the multiplicative exp(-E0/kT)*exp(B*V/kT) amplitude
  /// of Eq. (2): occupancy of a trap level depends on the Fermi-level
  /// alignment set by field and temperature.  Calibrated so
  /// phi(1.2 V, 383 K) ~ 0.75 and phi(1.2 V, 373 K)/phi(1.2 V, 383 K) ~ 0.77
  /// (the measured 1.7 % / 2.2 % ratio of Table 2).  Dimensionless.
  double amp_prefactor = 1.23e4;
  double amp_e0_ev = 0.44;
  double amp_b_ev_per_v = 0.10;

  // --- Emission kinetics (recovery acceleration) ----------------------------
  /// Reference recovery condition at which tau_e is specified: passive
  /// recovery, power gated at room temperature (the R20Z6 baseline case).
  Volts recovery_ref_voltage_v{0.0};
  Kelvin recovery_ref_temp_k{293.15};  // 20 degC

  /// Emission activation energy (eV): 110 degC vs 20 degC accelerates
  /// emission by exp(Ea/k*(1/293-1/383)) ~ 31x at 0.37 eV.  Because the
  /// measurable trap spectrum spans only ~2.9 decades at the 24 h stress
  /// point, that modest factor is enough for AR110Z6 (temperature alone)
  /// to reach ~90 % recovery in one quarter of the stress time — while the
  /// same constant keeps the AC-stress equilibrium consistent with Fig. 4.
  double emission_ea_mean_ev = 0.37;
  double emission_ea_sigma_ev = 0.05;

  /// Negative-gate boost of emission (field-assisted detrapping):
  /// rate *= exp(Br * max(0, -V)).  10 /V makes the paper's "modest"
  /// -0.3 V worth ~20x, letting AR20N6 (negative bias alone, room
  /// temperature) reach ~87 % recovery (Fig. 6a) — slightly less than
  /// temperature alone, matching the Fig. 8 ordering.
  double emission_neg_bias_accel_per_v = 10.0;

  // --- Safety limits ---------------------------------------------------------
  /// Lateral pn-junction breakdown limit (Sec. 6.1 challenge (1)): the
  /// library refuses recovery conditions more negative than this.
  Volts min_safe_voltage_v{-0.5};
  /// Chip ceases to function above this temperature; the paper chose 100
  /// and 110 degC as "above the upper [rated] limit but not too high".
  Kelvin max_safe_temp_k{273.15 + 125.0};

  /// Throws std::invalid_argument with a descriptive message if any
  /// constant is out of its physical domain.
  void validate() const;
};

/// The default-calibrated parameter set for the 40 nm FPGA reproduction.
const TdParameters& default_td_parameters();

}  // namespace ash::bti
