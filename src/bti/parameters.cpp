#include "ash/bti/parameters.h"

#include <stdexcept>
#include <string>

namespace ash::bti {

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    throw std::invalid_argument(std::string("TdParameters: ") + what);
  }
}

}  // namespace

void TdParameters::validate() const {
  require(traps_per_device > 0, "traps_per_device must be positive");
  require(delta_vth_mean_v > Volts{0.0}, "delta_vth_mean_v must be positive");
  require(tau_capture_min_s > Seconds{0.0},
          "tau_capture_min_s must be positive");
  require(tau_capture_max_s > tau_capture_min_s,
          "tau_capture_max_s must exceed tau_capture_min_s");
  require(emission_ratio_log10_sigma >= 0.0,
          "emission_ratio_log10_sigma must be non-negative");
  require(permanent_fraction >= 0.0 && permanent_fraction < 1.0,
          "permanent_fraction must be in [0, 1)");
  require(stress_ref_voltage_v > Volts{0.0},
          "stress_ref_voltage_v must be positive");
  require(stress_ref_temp_k > Kelvin{0.0},
          "stress_ref_temp_k must be positive");
  require(capture_field_accel_per_v >= 0.0,
          "capture_field_accel_per_v must be non-negative");
  require(capture_ea_mean_ev >= 0.0, "capture_ea_mean_ev must be non-negative");
  require(capture_ea_sigma_ev >= 0.0,
          "capture_ea_sigma_ev must be non-negative");
  require(capture_threshold_voltage_v > Volts{0.0},
          "capture_threshold_voltage_v must be positive");
  require(amp_prefactor > 0.0, "amp_prefactor must be positive");
  require(recovery_ref_temp_k > Kelvin{0.0},
          "recovery_ref_temp_k must be positive");
  require(emission_ea_mean_ev >= 0.0,
          "emission_ea_mean_ev must be non-negative");
  require(emission_ea_sigma_ev >= 0.0,
          "emission_ea_sigma_ev must be non-negative");
  require(emission_neg_bias_accel_per_v >= 0.0,
          "emission_neg_bias_accel_per_v must be non-negative");
  require(min_safe_voltage_v < Volts{0.0},
          "min_safe_voltage_v must be negative");
  require(max_safe_temp_k > stress_ref_temp_k,
          "max_safe_temp_k must exceed the stress reference temperature");
}

const TdParameters& default_td_parameters() {
  static const TdParameters params = [] {
    TdParameters p;
    p.validate();
    return p;
  }();
  return params;
}

}  // namespace ash::bti
