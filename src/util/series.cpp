#include "ash/util/series.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ash {

void Series::append(double t, double value) {
  if (!samples_.empty() && t < samples_.back().t) {
    throw std::invalid_argument("Series::append: time must be non-decreasing");
  }
  samples_.push_back({t, value});
}

double Series::at(double t) const {
  assert(!samples_.empty());
  if (t <= samples_.front().t) return samples_.front().value;
  if (t >= samples_.back().t) return samples_.back().value;
  // Binary search for the first sample with time > t.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double lhs, const Sample& s) { return lhs < s.t; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  if (hi.t == lo.t) return lo.value;
  const double w = (t - lo.t) / (hi.t - lo.t);
  return lo.value + w * (hi.value - lo.value);
}

Series Series::resampled(std::size_t n) const {
  assert(n >= 2 && !samples_.empty());
  Series out(name_);
  const double t0 = t_begin();
  const double t1 = t_end();
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    out.append(t, at(t));
  }
  return out;
}

Series Series::time_shifted(double dt) const {
  Series out(name_);
  for (const auto& s : samples_) out.append(s.t + dt, s.value);
  return out;
}

double Series::t_begin() const {
  assert(!samples_.empty());
  return samples_.front().t;
}

double Series::t_end() const {
  assert(!samples_.empty());
  return samples_.back().t;
}

double Series::min_value() const {
  assert(!samples_.empty());
  return std::min_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double Series::max_value() const {
  assert(!samples_.empty());
  return std::max_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double Series::rmse_against(const Series& other) const {
  assert(!samples_.empty() && !other.empty());
  double acc = 0.0;
  for (const auto& s : samples_) {
    const double d = s.value - other.at(s.t);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

bool Series::is_non_decreasing(double eps) const {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].value < samples_[i - 1].value - eps) return false;
  }
  return true;
}

bool Series::is_non_increasing(double eps) const {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].value > samples_[i - 1].value + eps) return false;
  }
  return true;
}

}  // namespace ash
