#include "ash/util/thread_pool.h"

#include <algorithm>

namespace ash::util {

ThreadPool::ThreadPool(int threads) {
  int n = threads;
  if (n == 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (n <= 1) return;  // inline mode
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task: exceptions land in the caller's future
  }
}

int recommended_pool_size(int task_count) {
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(0, std::min(task_count, cores));
}

}  // namespace ash::util
