#include "ash/util/optimize.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ash {

namespace {

/// Spread of simplex costs (max - min).
double cost_spread(const std::vector<double>& costs) {
  const auto [mn, mx] = std::minmax_element(costs.begin(), costs.end());
  return *mx - *mn;
}

/// Max L-inf distance of any vertex from the best vertex.
double parameter_spread(const std::vector<std::vector<double>>& simplex,
                        std::size_t best) {
  double spread = 0.0;
  for (const auto& v : simplex) {
    for (std::size_t j = 0; j < v.size(); ++j) {
      spread = std::max(spread, std::abs(v[j] - simplex[best][j]));
    }
  }
  return spread;
}

}  // namespace

OptimizeResult nelder_mead(const Objective& f, std::vector<double> x0,
                           const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  assert(n >= 1);

  // Standard NM coefficients.
  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  // Build the initial simplex around x0.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    double step = options.initial_step_relative * std::abs(x0[i]);
    if (step < options.initial_step_floor) step = options.initial_step_floor;
    simplex[i + 1][i] += step;
  }
  std::vector<double> costs(n + 1);
  for (std::size_t i = 0; i <= n; ++i) costs[i] = f(simplex[i]);

  OptimizeResult result;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Order: best, ..., worst.
    std::vector<std::size_t> order(n + 1);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return costs[a] < costs[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    if (cost_spread(costs) < options.cost_tolerance &&
        parameter_spread(simplex, best) < options.parameter_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all vertices except the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + coeff * (simplex[worst][j] - centroid[j]);
      }
      return p;
    };

    const auto reflected = blend(-kReflect);
    const double f_reflected = f(reflected);

    if (f_reflected < costs[best]) {
      const auto expanded = blend(-kExpand);
      const double f_expanded = f(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        costs[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        costs[worst] = f_reflected;
      }
    } else if (f_reflected < costs[second_worst]) {
      simplex[worst] = reflected;
      costs[worst] = f_reflected;
    } else {
      // Contract toward the better of (worst, reflected).
      const bool outside = f_reflected < costs[worst];
      const auto contracted = blend(outside ? -kContract : kContract);
      const double f_contracted = f(contracted);
      const double f_compare = outside ? f_reflected : costs[worst];
      if (f_contracted < f_compare) {
        simplex[worst] = contracted;
        costs[worst] = f_contracted;
      } else {
        // Shrink everything toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t j = 0; j < n; ++j) {
            simplex[i][j] = simplex[best][j] +
                            kShrink * (simplex[i][j] - simplex[best][j]);
          }
          costs[i] = f(simplex[i]);
        }
      }
    }
  }

  const auto best_it = std::min_element(costs.begin(), costs.end());
  const auto best_idx =
      static_cast<std::size_t>(std::distance(costs.begin(), best_it));
  result.x = simplex[best_idx];
  result.cost = costs[best_idx];
  result.iterations = iter;
  return result;
}

double golden_section(const std::function<double(double)>& f, double lo,
                      double hi, double tolerance) {
  assert(lo <= hi);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tolerance) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  assert(a.size() == n * n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot * n + col]) < 1e-14) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[pivot * n + j], a[col * n + j]);
      }
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        a[row * n + j] -= factor * a[col * n + j];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back-substitute.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a[i * n + j] * x[j];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

std::vector<double> linear_least_squares(const std::vector<double>& x_rows,
                                         std::size_t n_cols,
                                         const std::vector<double>& y) {
  const std::size_t m = y.size();
  assert(n_cols >= 1 && m >= n_cols);
  assert(x_rows.size() == m * n_cols);
  // Normal equations: (X^T X) c = X^T y.
  std::vector<double> xtx(n_cols * n_cols, 0.0);
  std::vector<double> xty(n_cols, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t i = 0; i < n_cols; ++i) {
      const double xi = x_rows[r * n_cols + i];
      xty[i] += xi * y[r];
      for (std::size_t j = 0; j < n_cols; ++j) {
        xtx[i * n_cols + j] += xi * x_rows[r * n_cols + j];
      }
    }
  }
  return solve_linear(std::move(xtx), std::move(xty));
}

}  // namespace ash
