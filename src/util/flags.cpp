#include "ash/util/flags.h"

#include <algorithm>
#include <stdexcept>

namespace ash {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("flags: bare '--' is not a flag");
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_.emplace_back(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // "--name value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_.emplace_back(body, argv[i + 1]);
      ++i;
    } else {
      flags_.emplace_back(body, "");  // boolean form
    }
  }
}

const std::string* Flags::find(const std::string& name) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool Flags::has(const std::string& name) const {
  return find(name) != nullptr;
}

std::string Flags::get(const std::string& name,
                       const std::string& default_value) const {
  const auto* v = find(name);
  return v != nullptr ? *v : default_value;
}

double Flags::get(const std::string& name, double default_value) const {
  const auto* v = find(name);
  if (v == nullptr) return default_value;
  try {
    std::size_t used = 0;
    const double out = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

int Flags::get(const std::string& name, int default_value) const {
  const auto* v = find(name);
  if (v == nullptr) return default_value;
  try {
    std::size_t used = 0;
    const int out = std::stoi(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + name +
                                " expects an integer, got '" + *v + "'");
  }
}

bool Flags::get(const std::string& name, bool default_value) const {
  const auto* v = find(name);
  if (v == nullptr) return default_value;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flags: --" + name + " expects a boolean, got '" +
                              *v + "'");
}

void Flags::check_known(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : flags_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("flags: unknown flag --" + key);
    }
  }
}

}  // namespace ash
