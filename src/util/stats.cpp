#include "ash/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ash {

double mean(std::span<const double> xs) {
  assert(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double variance_population(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double trimmed_mean(std::vector<double> xs, double trim_fraction) {
  assert(!xs.empty());
  trim_fraction = std::clamp(trim_fraction, 0.0, 0.4999);
  const auto drop = static_cast<std::size_t>(
      trim_fraction * static_cast<double>(xs.size()));
  std::sort(xs.begin(), xs.end());
  const std::span<const double> kept(xs.data() + drop,
                                     xs.size() - 2 * drop);
  return mean(kept);
}

double median_abs_deviation(std::vector<double> xs) {
  assert(!xs.empty());
  const double m = median(xs);
  for (auto& x : xs) x = std::abs(x - m);
  return median(std::move(xs));
}

const char* to_string(RobustEstimator estimator) {
  switch (estimator) {
    case RobustEstimator::kMean:
      return "mean";
    case RobustEstimator::kMedian:
      return "median";
    case RobustEstimator::kTrimmedMean:
      return "trimmed-mean";
  }
  return "?";
}

double robust_location(std::vector<double> xs, RobustEstimator estimator,
                       double trim_fraction) {
  assert(!xs.empty());
  switch (estimator) {
    case RobustEstimator::kMean:
      return mean(xs);
    case RobustEstimator::kMedian:
      return median(std::move(xs));
    case RobustEstimator::kTrimmedMean:
      return trimmed_mean(std::move(xs), trim_fraction);
  }
  return mean(xs);
}

double rmse(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size() && !a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double r_squared(std::span<const double> observed,
                 std::span<const double> model) {
  assert(observed.size() == model.size() && !observed.empty());
  const double m = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - model[i]) * (observed[i] - model[i]);
    ss_tot += (observed[i] - m) * (observed[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size() && !xs.empty());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ash
