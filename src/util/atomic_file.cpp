#include "ash/util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <system_error>

namespace ash::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::system_error(errno, std::generic_category(), what + " " + path);
}

/// RAII fd that closes on scope exit.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  /// Close now, reporting the result (close can surface deferred errors).
  int close_now() {
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc;
  }

 private:
  int fd_;
};

void write_all(int fd, const std::string& bytes, const std::string& path) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool writable_directory(const std::string& path) {
  return ::access(path.c_str(), W_OK | X_OK) == 0;
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string dir = dirname_of(path);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (fd.get() < 0) fail("cannot create", tmp);
  try {
    write_all(fd.get(), bytes, tmp);
    if (::fsync(fd.get()) != 0) fail("cannot fsync", tmp);
    if (fd.close_now() != 0) fail("cannot close", tmp);
    if (::rename(tmp.c_str(), path.c_str()) != 0) fail("cannot rename", path);
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }

  // Persist the rename itself: without the directory fsync a crash can
  // forget that the new name exists even though its data blocks are safe.
  Fd dfd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (dfd.get() >= 0) (void)::fsync(dfd.get());
}

std::string read_file(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.get() < 0) fail("cannot open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace ash::util
