#include "ash/util/csv.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace ash {

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvDocument: no column named '" + name + "'");
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    os << csv_escape(cells[i]);
  }
  os << '\n';
}

CsvDocument read_csv(std::istream& is) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    if (doc.header.empty()) {
      doc.header = std::move(row);
    } else {
      doc.rows.push_back(std::move(row));
    }
    row.clear();
    row_has_content = false;
  };

  char c = 0;
  while (is.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (is.peek() == '"') {
          is.get(c);
          cell.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      row_has_content = true;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) end_row();
        break;
      default:
        cell.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !cell.empty() || !row.empty()) end_row();

  for (const auto& r : doc.rows) {
    if (r.size() != doc.header.size()) {
      throw std::runtime_error("read_csv: ragged row");
    }
  }
  return doc;
}

}  // namespace ash
