#include "ash/util/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace ash {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  aligns_.assign(header_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

void Table::set_align(std::size_t column, Align align) {
  assert(column < aligns_.size());
  aligns_[column] = align;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&](char corner, char fill) {
    std::string s(1, corner);
    for (std::size_t w : widths) {
      s.append(w + 2, fill);
      s.push_back(corner);
    }
    s.push_back('\n');
    return s;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t pad = widths[i] - row[i].size();
      s.push_back(' ');
      if (aligns_[i] == Align::kRight) s.append(pad, ' ');
      s += row[i];
      if (aligns_[i] == Align::kLeft) s.append(pad, ' ');
      s.push_back(' ');
      s.push_back('|');
    }
    s.push_back('\n');
    return s;
  };

  std::string out = rule('+', '-');
  out += line(header_);
  out += rule('+', '=');
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule('+', '-');
    } else {
      out += line(row);
    }
  }
  out += rule('+', '-');
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string fmt_fixed(double v, int decimals) {
  return strformat("%.*f", decimals, v);
}

std::string fmt_percent(double fraction, int decimals) {
  return strformat("%.*f%%", decimals, fraction * 100.0);
}

std::string ascii_chart(const std::vector<std::string>& labels,
                        const std::vector<std::vector<double>>& rows,
                        std::size_t width, std::size_t height) {
  assert(labels.size() == rows.size());
  if (rows.empty()) return {};
  double lo = rows[0].empty() ? 0.0 : rows[0][0];
  double hi = lo;
  for (const auto& r : rows) {
    for (double v : r) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi == lo) hi = lo + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  const char marks[] = "*o+x#@%&";
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const auto& r = rows[s];
    if (r.empty()) continue;
    const char mark = marks[s % (sizeof(marks) - 1)];
    for (std::size_t i = 0; i < r.size(); ++i) {
      const std::size_t col =
          r.size() == 1 ? 0
                        : static_cast<std::size_t>(
                              std::llround(static_cast<double>(i) *
                                           static_cast<double>(width - 1) /
                                           static_cast<double>(r.size() - 1)));
      const double norm = (r[i] - lo) / (hi - lo);
      const auto row_idx = static_cast<std::size_t>(
          std::llround((1.0 - norm) * static_cast<double>(height - 1)));
      grid[row_idx][col] = mark;
    }
  }

  std::ostringstream out;
  out << strformat("%12.4g |", hi);
  out << '\n';
  for (std::size_t r = 0; r < height; ++r) {
    out << "             |" << grid[r] << '\n';
  }
  out << strformat("%12.4g +", lo) << std::string(width, '-') << '\n';
  out << "             legend:";
  for (std::size_t s = 0; s < labels.size(); ++s) {
    out << "  [" << marks[s % (sizeof(marks) - 1)] << "] " << labels[s];
  }
  out << '\n';
  return out.str();
}

}  // namespace ash
