#pragma once

/// \file constants.h
/// Physical constants and unit helpers used throughout libash.
///
/// All BTI physics in this library works in the (eV, K, s, V) unit system:
/// energies in electron-volts, temperatures in kelvin, times in seconds and
/// voltages in volts.  Delays are in seconds (helpers for ns exist in
/// units.h).

namespace ash {

/// Boltzmann constant in eV/K.  The TD-model acceleration factors
/// (Eq. (2)/(4) of the paper) are expressed as exp(-E0 / (k T)) with E0 in
/// eV, so this is the only flavour of k the library needs.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Absolute zero offset: T[K] = T[degC] + kCelsiusToKelvin.
inline constexpr double kCelsiusToKelvin = 273.15;

/// Convert degrees Celsius to kelvin.
constexpr double celsius(double deg_c) { return deg_c + kCelsiusToKelvin; }

/// Convert kelvin to degrees Celsius.
constexpr double to_celsius(double kelvin) { return kelvin - kCelsiusToKelvin; }

/// Seconds in one hour / one day; the paper quotes all schedules in hours.
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 24.0 * kSecondsPerHour;

/// Convert hours to seconds (the internal time unit).
constexpr double hours(double h) { return h * kSecondsPerHour; }

/// Convert seconds to hours (for reporting).
constexpr double to_hours(double s) { return s / kSecondsPerHour; }

}  // namespace ash
