#pragma once

/// \file random.h
/// Deterministic random-number utilities.
///
/// Every stochastic object in libash (trap ensembles, process variation,
/// measurement noise, thermal-chamber fluctuation, workloads) is seeded
/// explicitly so that experiments — like the hardware campaign in the paper,
/// which reuses the *same five chips* across test cases — are exactly
/// reproducible.  `Rng` wraps a SplitMix64-seeded xoshiro256** generator;
/// `derive_seed` provides stable stream splitting (chip 3's LUT 17 always
/// sees the same randomness regardless of construction order).

#include <cstdint>
#include <cmath>
#include <limits>

namespace ash {

/// SplitMix64 step; used both as a seed scrambler and for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive a child seed from a parent seed and a stream index.  Used to give
/// every chip / transistor / trap its own independent, order-insensitive
/// random stream.
constexpr std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  std::uint64_t s = parent ^ (0x632be59bd9b4e019ULL * (stream + 1));
  return splitmix64(s);
}

/// Root seed of the library's default randomness.  Every default instrument
/// seed is split off this one value (below), so no two instruments ever
/// share a raw seed by accident.
inline constexpr std::uint64_t kDefaultSeedRoot = 0xA5E1F0A11ABC0DE5ULL;

/// Named default seed streams.  One entry per stochastic subsystem that has
/// a seed default; instruments constructed with library defaults draw from
/// provably distinct streams of `kDefaultSeedRoot`.
enum class SeedStream : std::uint64_t {
  kRunner = 1,       ///< ExperimentRunner root (instruments re-derive per phase)
  kMeasurement = 2,  ///< MeasurementRig counting noise
  kChamber = 3,      ///< ThermalChamber fluctuation
  kSupply = 4,       ///< PowerSupply ripple
  kFaultPlan = 5,    ///< FaultInjector event/corruption draws
  kCoreFaultPlan = 6,  ///< mc::CoreFaultModel core-fault draws
  kFleetFaultPlan = 7,  ///< fleet::FleetFaultPlan process-chaos draws
  kFleetService = 8,  ///< fleet::Service per-device aging priors
};

/// The default seed of one named stream.
constexpr std::uint64_t default_seed(SeedStream stream) {
  return derive_seed(kDefaultSeedRoot, static_cast<std::uint64_t>(stream));
}

/// Small, fast, high-quality PRNG (xoshiro256**), value-semantic and
/// trivially copyable so simulation state snapshots capture RNG state too.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free approximation is fine here —
    // these draws parameterize physics, not cryptography.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal via Box–Muller (uses two uniforms per pair; the spare
  /// is cached).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Log-normal: exp(N(mu, sigma)) where mu/sigma act in log space.
  double lognormal(double mu_log, double sigma_log) {
    return std::exp(normal(mu_log, sigma_log));
  }

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Log-uniform over [lo, hi] (both > 0): uniform in log space.  This is
  /// the distribution of trap time constants that produces the log(1+Ct)
  /// BTI law.
  double loguniform(double lo, double hi) {
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  /// Bernoulli draw with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ash
