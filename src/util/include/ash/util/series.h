#pragma once

/// \file series.h
/// Time-series container shared by the measurement, modeling and reporting
/// layers.  A `Series` is an ordered list of (time, value) samples — e.g.
/// RO-frequency degradation vs. time, recovered delay vs. time — with the
/// small set of operations the experiment pipeline needs: interpolation,
/// resampling, pointwise arithmetic and summary statistics.

#include <cstddef>
#include <string>
#include <vector>

namespace ash {

/// One (time, value) sample.  Time is in seconds, value unit depends on the
/// series (fraction, ns, volts, ...).
struct Sample {
  double t = 0.0;
  double value = 0.0;
};

/// Ordered time series.  Invariant: samples are sorted by non-decreasing t
/// (enforced by `append`, asserted by `validate`).
class Series {
 public:
  Series() = default;
  explicit Series(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const& { return samples_; }
  // Calling samples() on a temporary (e.g. `s.resampled(n).samples()`)
  // would dangle in a range-for; forbid it at compile time.
  const std::vector<Sample>& samples() const&& = delete;

  const Sample& front() const { return samples_.front(); }
  const Sample& back() const { return samples_.back(); }

  /// Append a sample; t must be >= the last appended t.
  void append(double t, double value);

  /// Linear interpolation at time t.  Clamps to the end values outside the
  /// sampled range.  Precondition: non-empty.
  double at(double t) const;

  /// Resample onto a uniform grid of n points spanning [t_begin(), t_end()].
  Series resampled(std::size_t n) const;

  /// Pointwise transform: value -> f(value), times untouched.
  template <typename F>
  Series mapped(F&& f) const {
    Series out(name_);
    out.samples_.reserve(samples_.size());
    for (const auto& s : samples_) out.samples_.push_back({s.t, f(s.value)});
    return out;
  }

  /// Shift all times by dt (e.g. re-zero a recovery phase at its start).
  Series time_shifted(double dt) const;

  double t_begin() const;
  double t_end() const;
  double min_value() const;
  double max_value() const;

  /// Root-mean-square error against another series, evaluated at this
  /// series' sample times (other is interpolated).  Preconditions: both
  /// non-empty.
  double rmse_against(const Series& other) const;

  /// True if values never decrease (within tolerance eps) with time.
  bool is_non_decreasing(double eps = 0.0) const;
  /// True if values never increase (within tolerance eps) with time.
  bool is_non_increasing(double eps = 0.0) const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace ash
