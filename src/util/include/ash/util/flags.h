#pragma once

/// \file flags.h
/// Tiny command-line flag parser for the library's tools.
///
/// Supports `--name value`, `--name=value` and boolean `--name`; leftover
/// words are positional arguments.  No registration step: call-site lookup
/// with typed accessors and defaults, plus an unknown-flag check so typos
/// fail loudly.

#include <string>
#include <vector>

namespace ash {

/// Parsed command line.
class Flags {
 public:
  /// Parse argv (argv[0] is skipped).  Throws std::invalid_argument on a
  /// malformed token (e.g. "--" with no name).
  Flags(int argc, const char* const* argv);

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  /// Typed accessors with defaults.  Throw std::invalid_argument when the
  /// flag is present but not parseable as the requested type.
  std::string get(const std::string& name,
                  const std::string& default_value) const;
  double get(const std::string& name, double default_value) const;
  int get(const std::string& name, int default_value) const;
  bool get(const std::string& name, bool default_value) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws std::invalid_argument if any flag is not in `known` —
  /// catches typos like --chp.
  void check_known(const std::vector<std::string>& known) const;

 private:
  const std::string* find(const std::string& name) const;

  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ash
