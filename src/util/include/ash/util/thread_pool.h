#pragma once

/// \file thread_pool.h
/// A small fixed-size worker pool for embarrassingly parallel campaign
/// work (DESIGN.md Sec. 8): independent chips of a Table-1 run, ablation
/// sweep points, per-core aging in the multicore runtime.
///
/// Design constraints, in order:
///   1. *Determinism* — the pool never decides what work exists or how
///      results combine; callers submit a fixed task list and merge results
///      by index.  `parallel_for` guarantees the result layout (and thus
///      any later reduction order) is identical to the serial loop, so
///      parallel campaigns are bit-identical to serial ones as long as the
///      tasks themselves share no mutable state.
///   2. *No dependencies* — std::thread + mutex + condition_variable only.
///   3. *Exception transparency* — a throwing task does not kill a worker;
///      the exception is rethrown on the caller's thread.
///
/// A pool of size <= 1 (including the default on single-core machines)
/// degenerates to running tasks inline on the calling thread, which keeps
/// single-core CI runs and unit tests on the exact serial code path.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace ash::util {

class ThreadPool {
 public:
  /// Start `threads` workers.  0 means "one per hardware thread"; on a
  /// single-core machine (or when hardware_concurrency is unknown) the
  /// pool runs tasks inline and starts no workers at all.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 = inline mode).
  int size() const { return static_cast<int>(workers_.size()); }

  /// Submit one task; the future carries its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline mode: run on the caller, exception goes to fut
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and return the
  /// results ordered by index.  Blocks until every task finished; if any
  /// task threw, rethrows the lowest-index exception after all tasks have
  /// completed (no task is left running on pool state).
  template <typename Fn>
  auto parallel_for(int count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn, int>> {
    using R = std::invoke_result_t<Fn, int>;
    std::vector<std::future<R>> futures;
    futures.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      futures.push_back(submit([&fn, i] { return fn(i); }));
    }
    std::vector<R> results;
    results.reserve(static_cast<std::size_t>(count));
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        results.push_back(f.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// The pool size to use for a campaign-level fan-out: min(tasks, cores),
/// never negative.  Returns 0 or 1 (inline) on single-core machines.
int recommended_pool_size(int task_count);

}  // namespace ash::util
