#pragma once

/// \file ou_noise.h
/// Ornstein–Uhlenbeck process used to model slowly-wandering physical
/// disturbances: the thermal chamber's +/-0.3 degC fluctuation around its
/// setpoint and supply-voltage ripple.  An OU process is the natural choice
/// because chamber temperature error is mean-reverting and temporally
/// correlated — white noise would let consecutive samples jump unphysically.

#include <cmath>

#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash {

/// Mean-reverting Gaussian process
///   dx = -(x/tau) dt + sigma_stat * sqrt(2/tau) dW
/// with stationary standard deviation `sigma_stat` and correlation time
/// `tau` seconds.  `advance(dt)` uses the exact discrete-time solution, so
/// any step size is unbiased.
class OrnsteinUhlenbeck {
 public:
  OrnsteinUhlenbeck(double sigma_stationary, double correlation_time_s,
                    Rng rng)
      : sigma_(sigma_stationary), tau_(correlation_time_s), rng_(rng) {}

  /// Current deviation from the mean.
  double value() const { return x_; }

  /// Advance the process by dt and return the new value.
  double advance(Seconds dt) {
    const double decay = std::exp(-dt.value() / tau_);
    const double stddev = sigma_ * std::sqrt(1.0 - decay * decay);
    x_ = x_ * decay + rng_.normal(0.0, stddev);
    return x_;
  }

  /// Stationary standard deviation.
  double sigma() const { return sigma_; }
  /// Correlation time in seconds.
  double tau() const { return tau_; }

 private:
  double sigma_;
  double tau_;
  Rng rng_;
  double x_ = 0.0;
};

}  // namespace ash
