#pragma once

/// \file optimize.h
/// Small derivative-free optimization toolkit used for model parameter
/// extraction (Table 3 of the paper fits beta, A, C of Eq. (10) to measured
/// delay-shift curves) and for the rejuvenation planner's knob search.
///
/// Contents:
///  * `nelder_mead`     — simplex minimizer for smooth low-dimensional
///                        objectives (the fits here are 2–5 dimensional);
///  * `golden_section`  — 1-D unimodal minimizer;
///  * `linear_least_squares` — dense normal-equation solver for small
///                        linear models (log-space prefits seed the simplex);
///  * `solve_linear`    — Gaussian elimination with partial pivoting.

#include <functional>
#include <vector>

namespace ash {

/// Objective: maps a parameter vector to a scalar cost.
using Objective = std::function<double(const std::vector<double>&)>;

/// Options controlling the Nelder–Mead run.
struct NelderMeadOptions {
  int max_iterations = 2000;
  /// Converged when the simplex cost spread falls below this.
  double cost_tolerance = 1e-12;
  /// Converged when the simplex parameter spread falls below this.
  double parameter_tolerance = 1e-10;
  /// Initial simplex edge, relative to |x0| per coordinate (absolute floor
  /// `initial_step_floor` for zero coordinates).
  double initial_step_relative = 0.10;
  double initial_step_floor = 1e-3;
};

/// Result of a minimization.
struct OptimizeResult {
  std::vector<double> x;       ///< best parameter vector found
  double cost = 0.0;           ///< objective at x
  int iterations = 0;          ///< iterations consumed
  bool converged = false;      ///< tolerance met before iteration cap
};

/// Derivative-free Nelder–Mead simplex minimization starting at x0.
/// The objective must be finite on the search region it explores; callers
/// enforce domain constraints by returning a large penalty cost.
OptimizeResult nelder_mead(const Objective& f, std::vector<double> x0,
                           const NelderMeadOptions& options = {});

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
/// Returns the abscissa of the minimum to within `tolerance`.
double golden_section(const std::function<double(double)>& f, double lo,
                      double hi, double tolerance = 1e-9);

/// Solve the square system a*x = b in-place via Gaussian elimination with
/// partial pivoting.  `a` is row-major n*n.  Throws std::runtime_error on a
/// (numerically) singular matrix.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b);

/// Ordinary least squares: given rows of predictors X (m rows, n columns,
/// row-major) and targets y (m), returns the n coefficients minimizing
/// ||X c - y||^2 via the normal equations.  m >= n required.
std::vector<double> linear_least_squares(const std::vector<double>& x_rows,
                                         std::size_t n_cols,
                                         const std::vector<double>& y);

}  // namespace ash
