#pragma once

/// \file syscall.h
/// EINTR-safe syscall wrapper.
///
/// Every blocking syscall in the fleet layer (`read`, `write`, `poll`,
/// `waitpid`, `accept`, `connect`, ...) can fail spuriously with EINTR when
/// a signal lands mid-call — and the fleet layer *guarantees* signals:
/// SIGCHLD from dying workers, SIGTERM from operators draining a daemon.
/// An unguarded call site turns an unrelated signal into a phantom I/O
/// error, which in a recovery path means a spurious strike, a dropped
/// heartbeat, or a lost response.
///
/// `retry_eintr` retries the wrapped call while it fails with EINTR and is
/// transparent otherwise.  The `eintr` rule of `tools/ash_lint.py` fails
/// the build when a bare syscall appears in `src/fleet/` outside this
/// wrapper, so unguarded call sites regress loudly.
///
/// Deliberately NOT wrapped: `close(2)` — POSIX leaves the fd state
/// unspecified after EINTR, and retrying can close a recycled descriptor.

#include <cerrno>
#include <utility>

namespace ash::util {

/// Invoke `call()` until it returns without failing with EINTR; returns the
/// final result.  `call` must follow the POSIX convention of returning a
/// negative value with errno set on failure.
template <class Call>
auto retry_eintr(Call&& call) -> decltype(call()) {
  for (;;) {
    const auto result = call();
    if (result >= 0 || errno != EINTR) return result;
  }
}

}  // namespace ash::util
