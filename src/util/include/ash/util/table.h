#pragma once

/// \file table.h
/// ASCII table rendering for the benchmark harness.  Every figure/table
/// bench prints its reproduced rows in this format, side by side with the
/// paper's reported values, so the output can be eyeballed against the
/// publication.

#include <cstddef>
#include <string>
#include <vector>

namespace ash {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// Simple text table.  Usage:
///   Table t({"Case", "Paper", "Measured"});
///   t.add_row({"AS110DC24", "2.2%", fmt});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Number of columns, fixed at construction.
  std::size_t columns() const { return header_.size(); }

  /// Add a data row; must have exactly `columns()` cells.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  /// Set alignment for one column (default: left for col 0, right others).
  void set_align(std::size_t column, Align align);

  /// Render with box-drawing borders.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
  std::vector<Align> aligns_;
};

/// printf-style helper returning std::string (benches format cells with it).
std::string strformat(const char* fmt, ...);

/// Format a double with the given precision, e.g. fmt_fixed(2.236, 2) ==
/// "2.24".
std::string fmt_fixed(double v, int decimals);

/// Format as a percentage with the given precision: fmt_percent(0.0224, 1)
/// == "2.2%".  Input is a fraction.
std::string fmt_percent(double fraction, int decimals);

/// Render a crude ASCII chart of one or more series sampled on a shared
/// uniform grid — the bench binaries use it to show figure *shapes* inline.
/// `labels` and `rows` must be the same length; each row is a vector of
/// y-values on the shared x grid.
std::string ascii_chart(const std::vector<std::string>& labels,
                        const std::vector<std::vector<double>>& rows,
                        std::size_t width = 64, std::size_t height = 16);

}  // namespace ash
