#pragma once

/// \file csv.h
/// Minimal CSV emission/ingestion for experiment logs.  The virtual lab
/// (`ash::tb::DataLog`) records every RO-frequency sample of a campaign; the
/// examples dump these to CSV for offline plotting, and tests round-trip
/// them.

#include <iosfwd>
#include <string>
#include <vector>

namespace ash {

/// One parsed CSV document: a header row plus data rows of equal width.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if absent.
  std::size_t column(const std::string& name) const;
};

/// Quote a cell if it contains a comma, quote or newline (RFC 4180 style).
std::string csv_escape(const std::string& cell);

/// Write one CSV row (escaping each cell) terminated by '\n'.
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

/// Parse a complete CSV document from a stream.  Handles quoted cells with
/// embedded commas/newlines/doubled quotes.  The first row is the header.
CsvDocument read_csv(std::istream& is);

}  // namespace ash
