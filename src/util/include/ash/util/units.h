#pragma once

/// \file units.h
/// Zero-cost strong types for the physical quantities that cross libash
/// API boundaries: seconds, volts, kelvin, degrees Celsius and hertz.
///
/// The BTI physics (Eqs. (1)-(13) of the paper) mixes seconds, volts and
/// kelvin through long call chains; before this header the unit of every
/// `double` parameter lived only in a doxygen comment and a `_s`/`_v`/`_k`
/// suffix.  A strong type turns a volts-for-seconds argument swap into a
/// compile error while costing nothing at runtime: each type is a trivially
/// copyable wrapper around one `double`, passed and returned in the same
/// SSE register as the raw value, and every operation below is a `constexpr`
/// identity over the wrapped arithmetic — adopting these types is bit-exact
/// by construction.
///
/// Conventions:
///   * construction is explicit (`Volts{1.2}`), never implicit from
///     `double`;
///   * `.value()` unwraps for internal math (implementation files work in
///     raw doubles exactly as before);
///   * cross-unit conversions are named free functions (`to_kelvin`,
///     `to_celsius`, `hours`, `minutes`) using the very same constants as
///     `ash/util/constants.h`, so converted values are bit-identical to the
///     pre-units code paths;
///   * the five unit names are hoisted into namespace `ash` for signature
///     brevity; the helpers stay in `ash::units` to avoid colliding with
///     the raw-double helpers in constants.h.
///
/// Enforcement: `tools/ash_lint.py` rule `raw-double-api` fails the build
/// when a unit-suffixed `double` parameter appears in a public header of
/// the adopted modules (bti, fpga, tb, mc).

#include "ash/util/constants.h"

namespace ash::units {

namespace detail {

/// One physical dimension.  `Tag` distinguishes dimensions at compile time;
/// the wrapped representation is always a double in the library's canonical
/// unit for that dimension (s, V, K, degC, Hz).
template <class Tag>
struct Quantity {
  constexpr Quantity() = default;
  explicit constexpr Quantity(double value) : value_(value) {}

  /// Unwrap to the canonical-unit double.
  constexpr double value() const { return value_; }

  // Same-dimension arithmetic (offsets, sums of durations, ...).
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Quantity a, Quantity b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.value_ >= b.value_;
  }

 private:
  double value_ = 0.0;
};

}  // namespace detail

/// Duration or time constant, in seconds (the internal time unit).
using Seconds = detail::Quantity<struct SecondsTag>;
/// Electric potential, in volts.
using Volts = detail::Quantity<struct VoltsTag>;
/// Absolute temperature, in kelvin.
using Kelvin = detail::Quantity<struct KelvinTag>;
/// Temperature on the Celsius scale (chamber setpoints, Table 1 labels).
using Celsius = detail::Quantity<struct CelsiusTag>;
/// Frequency, in hertz.
using Hertz = detail::Quantity<struct HertzTag>;

/// Celsius -> kelvin, bit-identical to `ash::celsius()`.
constexpr Kelvin to_kelvin(Celsius c) {
  return Kelvin{c.value() + kCelsiusToKelvin};
}

/// Kelvin -> Celsius, bit-identical to `ash::to_celsius()`.
constexpr Celsius to_celsius(Kelvin k) {
  return Celsius{k.value() - kCelsiusToKelvin};
}

/// Hours -> Seconds, bit-identical to `ash::hours()`.
constexpr Seconds hours(double h) { return Seconds{h * kSecondsPerHour}; }

/// Minutes -> Seconds.
constexpr Seconds minutes(double m) { return Seconds{m * 60.0}; }

/// Period -> frequency (f = 1 / T).
constexpr Hertz frequency_of(Seconds period) {
  return Hertz{1.0 / period.value()};
}

/// Frequency -> period (T = 1 / f).
constexpr Seconds period_of(Hertz f) { return Seconds{1.0 / f.value()}; }

}  // namespace ash::units

namespace ash {

// The unit names appear in nearly every public signature of bti/fpga/tb/mc;
// hoist them so headers read `Volts vdd` rather than `units::Volts vdd`.
using units::Celsius;
using units::Hertz;
using units::Kelvin;
using units::Seconds;
using units::Volts;

}  // namespace ash
