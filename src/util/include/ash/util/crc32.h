#pragma once

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// The fleet layer frames every durable checkpoint with a CRC so that torn
/// writes, bit rot and deliberate corruption are *detected* instead of
/// deserialized.  The implementation is the classic table-driven byte-at-a-
/// time loop — a few GB/s, far faster than the checkpoint serialization it
/// guards — and incremental: `Crc32` accumulates over multiple `update`
/// calls so framing code can checksum header and payload without
/// concatenating them.
///
/// The check value of the ASCII string "123456789" is 0xCBF43926.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ash::util {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  void update(const void* data, std::size_t size);
  void update(std::string_view bytes) { update(bytes.data(), bytes.size()); }

  /// The CRC of everything fed so far (final XOR applied).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
std::uint32_t crc32(const void* data, std::size_t size);
inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace ash::util
