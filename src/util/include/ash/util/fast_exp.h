#pragma once

/// \file fast_exp.h
/// The repo's single approximate exponential — the opt-in "fast physics"
/// kernel behind `bti::BatchConfig::fast_exp` (DESIGN.md Sec. 13).
///
/// Everything physical in this library decays or accelerates through
/// `exp()`: trap capture/emission rates (Arrhenius), field acceleration and
/// the per-interval occupancy decay.  The noisy-campaign regime is
/// exp-bound (ROADMAP: ~1.7x end-to-end), so population sweeps amortize a
/// cheaper exponential over 10^4..10^6 chips — but only as a *per-run
/// choice*: exact mode stays `std::exp` and bit-identical to the per-chip
/// kernels, fast mode trades a documented relative error for throughput.
///
/// Contract (pinned by tests/util/fast_exp_test.cpp over the domains the
/// trap kernels actually use — decay exponents in [-700, 0] and Arrhenius
/// exponents in [-40, 40]):
///
///   * relative error  |fast_exp(x) - exp(x)| / exp(x)  <=  kFastExpRelErr
///     for every x in [-708, 708];
///   * x < -708: returns exactly 0.0 (exp(x) < DBL_MIN there; occupancy
///     decay factors that small are a dead trap either way — the exact
///     kernel short-circuits x < -700 to 0 itself);
///   * x > 708: falls back to std::exp (overflow edge, never hot);
///   * NaN propagates; +/-inf behave like std::exp.
///
/// Deterministic: pure integer/double arithmetic, no tables, no platform
/// intrinsics, no FMA dependence (the repo builds at the SSE2 baseline), so
/// fast mode is as replayable as exact mode — just not bit-equal to it.
///
/// ash-lint `float-physics` enforces that this header stays the *only*
/// non-`std::exp` exponential implementation in the tree: physics code
/// either calls std::exp or routes through util::fast_exp.

#include <cmath>
#include <cstdint>
#include <cstring>

namespace ash::util {

/// Documented worst-case relative error of fast_exp over [-708, 708].
/// Degree-7 Taylor on |r| <= ln(2)/2 after range reduction; the measured
/// sweep maximum is ~7e-9, pinned with headroom at 2e-8.
inline constexpr double kFastExpRelErr = 2e-8;

/// Approximate e^x.  See the file comment for the error contract.
inline double fast_exp(double x) {
  // Range edges first: keep the hot path branch-predictable (both edges
  // are cold in every trap-kernel sweep).
  if (!(x >= -708.0)) {  // catches NaN too (NaN fails every comparison)
    if (std::isnan(x)) return x;
    return x <= -708.0 ? 0.0 : std::exp(x);  // -inf lands here -> 0
  }
  if (x > 708.0) return std::exp(x);

  // exp(x) = 2^k * exp(r) with k = round(x * log2(e)), r = x - k*ln(2),
  // |r| <= ln(2)/2.  The rounding uses the shift-by-2^52 trick (exact for
  // |z| < 2^51, far beyond the clamped domain) so there is no libm call
  // and no rounding-mode dependence worth worrying about: the default
  // round-to-nearest is part of the determinism contract.
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;

  double kd = x * kLog2e + kShift;
  std::int64_t k;
  std::memcpy(&k, &kd, sizeof k);
  k = static_cast<std::int32_t>(k);  // low word holds the rounded integer
  kd -= kShift;

  // Two-part ln(2) keeps r accurate to ~1 ulp even for |k| ~ 1000.
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;

  // exp(r) by degree-7 Taylor (Horner).  |r| <= 0.3466 makes the
  // truncation term r^8/8! < 5.2e-9 relative; coefficients are the exact
  // rationals so the polynomial is transparent to review.
  const double p =
      1.0 +
      r * (1.0 +
           r * (1.0 / 2 +
                r * (1.0 / 6 +
                     r * (1.0 / 24 +
                          r * (1.0 / 120 +
                               r * (1.0 / 720 + r * (1.0 / 5040)))))));

  // Assemble 2^k by exponent-field arithmetic.  |x| <= 708 keeps
  // k in [-1022, 1022]... almost: k can reach -1022 while p < 1 would
  // land the product in the subnormals; split the scale in two exact
  // halves so each factor stays normal.
  const std::int64_t k1 = k / 2;
  const std::int64_t k2 = k - k1;
  const auto pow2 = [](std::int64_t e) {
    const std::uint64_t bits = static_cast<std::uint64_t>(e + 1023) << 52;
    double s;
    std::memcpy(&s, &bits, sizeof s);
    return s;
  };
  return (p * pow2(k1)) * pow2(k2);
}

}  // namespace ash::util
