#pragma once

/// \file atomic_file.h
/// Crash-safe file persistence: write-to-temp, fsync, rename, fsync-dir.
///
/// A checkpoint that a crash can tear in half is worse than no checkpoint —
/// it poisons the recovery path.  `atomic_write_file` guarantees that after
/// any crash the destination path holds either the complete previous
/// content or the complete new content, never a prefix:
///
///   1. the bytes are written to a unique sibling temp file
///      (`<name>.tmp.<pid>`) in the *same directory* (rename(2) is only
///      atomic within a filesystem);
///   2. the temp file is fsync'ed, so the data is on disk before it can
///      become reachable under the final name;
///   3. rename(2) installs it over the destination atomically;
///   4. the directory is fsync'ed, so the rename itself survives a crash.
///
/// Failures are reported as `std::system_error` carrying errno and the
/// path; a failed write unlinks its temp file, so aborted attempts leave
/// no debris for directory scans to trip over.

#include <string>

namespace ash::util {

/// Atomically replace (or create) `path` with `bytes`.  Throws
/// std::system_error on any I/O failure; on failure `path` is untouched.
void atomic_write_file(const std::string& path, const std::string& bytes);

/// Read a whole file into a string.  Throws std::system_error when the
/// file cannot be opened or read.
std::string read_file(const std::string& path);

/// The directory component of `path` ("." when there is none).
std::string dirname_of(const std::string& path);

/// True when `path` names an existing, writable directory — the up-front
/// check tools run before a long campaign so a typo'd --out / --checkpoint
/// directory fails in milliseconds, not after hours of simulation.
bool writable_directory(const std::string& path);

}  // namespace ash::util
