#pragma once

/// \file stats.h
/// Summary statistics used by the measurement pipeline and the model
/// validation code: mean/stddev/percentiles, RMSE, and coefficient of
/// determination (R^2) for model-vs-measurement fits (Figs. 5–8 of the
/// paper overlay model curves on measured points; tests gate on R^2).

#include <cstddef>
#include <span>
#include <vector>

namespace ash {

/// Arithmetic mean.  Precondition: non-empty.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator).  Returns 0 for n < 2.
double stddev(std::span<const double> xs);

/// Population variance helper (n denominator).  Returns 0 for empty input.
double variance_population(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].  Precondition: non-empty.
double percentile(std::vector<double> xs, double p);

/// Median (50th percentile).
double median(std::vector<double> xs);

/// Root-mean-square error between two equal-length spans.
double rmse(std::span<const double> a, std::span<const double> b);

/// Coefficient of determination of `model` against `observed`.
/// 1.0 = perfect fit; can be negative for fits worse than the mean.
double r_squared(std::span<const double> observed,
                 std::span<const double> model);

/// Pearson correlation coefficient.  Returns 0 when either input has zero
/// variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Streaming accumulator for mean/variance (Welford) — used by long
/// simulations that cannot retain every sample.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ash
